/**
 * @file
 * Unit tests for the minic parser: declaration/statement/expression
 * structure, operator precedence and associativity, and syntax errors.
 */
#include <gtest/gtest.h>

#include "lang/parser.h"
#include "support/error.h"

namespace ifprob::lang {
namespace {

Unit
parseOk(std::string_view src)
{
    return parse(src);
}

const FuncDecl &
onlyFunction(const Unit &unit)
{
    EXPECT_EQ(unit.functions.size(), 1u);
    return unit.functions.front();
}

/** Parse "int f() { return EXPR; }" and hand back the expression. */
const Expr &
parseExprFrom(Unit &unit, const std::string &expr)
{
    unit = parse("int f() { return " + expr + "; }");
    auto &ret = static_cast<ReturnStmt &>(
        *onlyFunction(unit).body->stmts.at(0));
    return *ret.value;
}

TEST(Parser, GlobalScalarsAndArrays)
{
    Unit unit = parseOk("int a; float b = 1.5; int c[10]; "
                        "int d[4] = {1, 2, 3}; int e, f = 2;");
    ASSERT_EQ(unit.globals.size(), 6u);
    EXPECT_EQ(unit.globals[0].name, "a");
    EXPECT_EQ(unit.globals[0].array_size, -1);
    EXPECT_EQ(unit.globals[1].type, Type::kFloat);
    ASSERT_NE(unit.globals[1].init, nullptr);
    EXPECT_EQ(unit.globals[2].array_size, 10);
    EXPECT_EQ(unit.globals[3].init_list.size(), 3u);
    EXPECT_EQ(unit.globals[4].name, "e");
    EXPECT_EQ(unit.globals[5].name, "f");
}

TEST(Parser, FunctionSignatures)
{
    Unit unit = parseOk("void f() {} int g(int a, float b) { return 0; } "
                        "float h(void) { return 1.0; }");
    ASSERT_EQ(unit.functions.size(), 3u);
    EXPECT_EQ(unit.functions[0].return_type, Type::kVoid);
    EXPECT_TRUE(unit.functions[0].params.empty());
    ASSERT_EQ(unit.functions[1].params.size(), 2u);
    EXPECT_EQ(unit.functions[1].params[0].type, Type::kInt);
    EXPECT_EQ(unit.functions[1].params[1].type, Type::kFloat);
    EXPECT_TRUE(unit.functions[2].params.empty()); // f(void) idiom
}

TEST(Parser, PrecedenceMulOverAdd)
{
    Unit unit;
    const Expr &e = parseExprFrom(unit, "1 + 2 * 3");
    ASSERT_EQ(e.kind, ExprKind::kBinary);
    const auto &add = static_cast<const BinaryExpr &>(e);
    EXPECT_EQ(add.op, BinaryOp::kAdd);
    ASSERT_EQ(add.rhs->kind, ExprKind::kBinary);
    EXPECT_EQ(static_cast<const BinaryExpr &>(*add.rhs).op, BinaryOp::kMul);
}

TEST(Parser, PrecedenceComparisonOverLogical)
{
    Unit unit;
    const Expr &e = parseExprFrom(unit, "a < b && c > d");
    const auto &land = static_cast<const BinaryExpr &>(e);
    EXPECT_EQ(land.op, BinaryOp::kLogAnd);
    EXPECT_EQ(static_cast<const BinaryExpr &>(*land.lhs).op, BinaryOp::kLt);
    EXPECT_EQ(static_cast<const BinaryExpr &>(*land.rhs).op, BinaryOp::kGt);
}

TEST(Parser, PrecedenceShiftBindsTighterThanCompare)
{
    Unit unit;
    const Expr &e = parseExprFrom(unit, "a << 2 < b");
    const auto &cmp = static_cast<const BinaryExpr &>(e);
    EXPECT_EQ(cmp.op, BinaryOp::kLt);
    EXPECT_EQ(static_cast<const BinaryExpr &>(*cmp.lhs).op, BinaryOp::kShl);
}

TEST(Parser, SubtractionIsLeftAssociative)
{
    Unit unit;
    const Expr &e = parseExprFrom(unit, "10 - 3 - 2");
    const auto &outer = static_cast<const BinaryExpr &>(e);
    EXPECT_EQ(outer.op, BinaryOp::kSub);
    // (10 - 3) - 2: lhs is itself a subtraction.
    EXPECT_EQ(static_cast<const BinaryExpr &>(*outer.lhs).op,
              BinaryOp::kSub);
    EXPECT_EQ(outer.rhs->kind, ExprKind::kIntLit);
}

TEST(Parser, AssignmentIsRightAssociative)
{
    Unit unit = parseOk("int f() { int a, b; a = b = 1; return a; }");
    const auto &stmt = static_cast<const ExprStmt &>(
        *onlyFunction(unit).body->stmts.at(1));
    const auto &outer = static_cast<const AssignExpr &>(*stmt.expr);
    EXPECT_EQ(outer.value->kind, ExprKind::kAssign);
}

TEST(Parser, TernaryNestsInElseBranch)
{
    Unit unit;
    const Expr &e = parseExprFrom(unit, "a ? 1 : b ? 2 : 3");
    const auto &outer = static_cast<const TernaryExpr &>(e);
    EXPECT_EQ(outer.else_value->kind, ExprKind::kTernary);
}

TEST(Parser, CallsIndexingAndFuncAddr)
{
    Unit unit;
    const Expr &e = parseExprFrom(unit, "g(a[i + 1], &h, 3)");
    const auto &call = static_cast<const CallExpr &>(e);
    EXPECT_EQ(call.callee, "g");
    ASSERT_EQ(call.args.size(), 3u);
    EXPECT_EQ(call.args[0]->kind, ExprKind::kIndex);
    EXPECT_EQ(call.args[1]->kind, ExprKind::kFuncAddr);
}

TEST(Parser, StatementKinds)
{
    Unit unit = parseOk(R"(
        int f() {
            int x = 0;
            if (x) x = 1; else x = 2;
            while (x) x = x - 1;
            do x = x + 1; while (x < 3);
            for (int i = 0; i < 10; i++) x += i;
            for (;;) break;
            switch (x) { case 1: break; default: x = 0; }
            continue;
            ;
            return x;
        })");
    const auto &stmts = onlyFunction(unit).body->stmts;
    ASSERT_EQ(stmts.size(), 10u);
    EXPECT_EQ(stmts[0]->kind, StmtKind::kVarDecl);
    EXPECT_EQ(stmts[1]->kind, StmtKind::kIf);
    EXPECT_EQ(stmts[2]->kind, StmtKind::kWhile);
    EXPECT_EQ(stmts[3]->kind, StmtKind::kDoWhile);
    EXPECT_EQ(stmts[4]->kind, StmtKind::kFor);
    EXPECT_EQ(stmts[5]->kind, StmtKind::kFor);
    EXPECT_EQ(stmts[6]->kind, StmtKind::kSwitch);
    EXPECT_EQ(stmts[7]->kind, StmtKind::kContinue);
    EXPECT_EQ(stmts[8]->kind, StmtKind::kEmpty);
    EXPECT_EQ(stmts[9]->kind, StmtKind::kReturn);
}

TEST(Parser, DanglingElseBindsToInnerIf)
{
    Unit unit = parseOk("int f(int a, int b) {"
                        " if (a) if (b) return 1; else return 2;"
                        " return 3; }");
    const auto &outer = static_cast<const IfStmt &>(
        *onlyFunction(unit).body->stmts.at(0));
    EXPECT_EQ(outer.else_stmt, nullptr);
    const auto &inner = static_cast<const IfStmt &>(*outer.then_stmt);
    EXPECT_NE(inner.else_stmt, nullptr);
}

TEST(Parser, SwitchArmsWithSharedAndNegativeLabels)
{
    Unit unit = parseOk(R"(
        int f(int x) {
            switch (x) {
              case 1:
              case 2:
                return 12;
              case -3:
                return 3;
              case 'a':
                return 97;
              default:
                return 0;
            }
        })");
    const auto &sw = static_cast<const SwitchStmt &>(
        *onlyFunction(unit).body->stmts.at(0));
    ASSERT_EQ(sw.arms.size(), 4u);
    EXPECT_EQ(sw.arms[0].labels, (std::vector<int64_t>{1, 2}));
    EXPECT_EQ(sw.arms[1].labels, (std::vector<int64_t>{-3}));
    EXPECT_EQ(sw.arms[2].labels, (std::vector<int64_t>{'a'}));
    EXPECT_TRUE(sw.arms[3].is_default);
}

struct BadSource
{
    const char *label;
    const char *source;
};

class ParserErrorTest : public ::testing::TestWithParam<BadSource>
{
};

TEST_P(ParserErrorTest, Rejects)
{
    EXPECT_THROW(parse(GetParam().source), ifprob::CompileError)
        << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    SyntaxErrors, ParserErrorTest,
    ::testing::Values(
        BadSource{"missing_semi", "int f() { return 1 }"},
        BadSource{"unclosed_block", "int f() { return 1;"},
        BadSource{"unclosed_paren", "int f() { return (1; }"},
        BadSource{"assign_to_literal", "int f() { 1 = 2; return 0; }"},
        BadSource{"inc_rvalue", "int f() { return (1 + 2)++; }"},
        BadSource{"local_array", "int f() { int a[4]; return 0; }"},
        BadSource{"void_global", "void x;"},
        BadSource{"void_param", "int f(void v) { return 0; }"},
        BadSource{"case_outside", "int f() { case 1: return 0; }"},
        BadSource{"duplicate_default",
                  "int f(int x) { switch (x) { default: return 1; "
                  "default: return 2; } }"},
        BadSource{"switch_stmt_before_label",
                  "int f(int x) { switch (x) { return 1; } }"},
        BadSource{"missing_while", "int f() { do {} (1); return 0; }"},
        BadSource{"bad_array_size", "int a[x];"},
        BadSource{"stray_star_expression", "int f() { * ; return 0; }"}),
    [](const ::testing::TestParamInfo<BadSource> &info) {
        return info.param.label;
    });

} // namespace
} // namespace ifprob::lang

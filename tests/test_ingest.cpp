/**
 * @file
 * Tests for the ingest plane: ProfileStore folding and merge-on-read
 * snapshots (bit-identical to the reference ProfileDb::merge in every
 * mode, under any thread interleaving), batch validation, and the
 * IFPROBPS segment format's round-trip and corruption rejection.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "ingest/profile_store.h"
#include "ingest/segment.h"
#include "profile/profile_db.h"
#include "support/error.h"
#include "support/rng.h"

namespace ifprob::ingest {
namespace {

using profile::MergeMode;
using profile::ProfileDb;

constexpr MergeMode kAllModes[] = {MergeMode::kUnscaled,
                                   MergeMode::kScaled,
                                   MergeMode::kPolling};

/** Bit-level equality: the acceptance bar is byte-identical doubles,
 *  not EXPECT_DOUBLE_EQ's value equality. */
void
expectSameBits(const ProfileDb &got, const ProfileDb &want)
{
    EXPECT_EQ(got.programName(), want.programName());
    EXPECT_EQ(got.fingerprint(), want.fingerprint());
    ASSERT_EQ(got.numSites(), want.numSites());
    for (size_t i = 0; i < got.numSites(); ++i) {
        EXPECT_EQ(std::memcmp(&got.site(i), &want.site(i),
                              sizeof(profile::BranchWeight)),
                  0)
            << "site " << i << ": got (" << got.site(i).executed << ", "
            << got.site(i).taken << ") want (" << want.site(i).executed
            << ", " << want.site(i).taken << ")";
    }
}

/** The reference path: per-source databases in lexicographic source
 *  order through ProfileDb::merge. */
ProfileDb
referenceMerge(const ProfileStore &store,
               const ProfileStore::ImageKey &key, MergeMode mode)
{
    std::vector<ProfileDb> inputs;
    for (const auto &[name, batches] : store.sources(key))
        inputs.push_back(store.sourceDb(key, name));
    return ProfileDb::merge(inputs, mode);
}

RunReport
report(std::string program, uint64_t fingerprint, std::string source,
       uint32_t num_sites, std::vector<SiteDelta> deltas)
{
    RunReport r;
    r.program = std::move(program);
    r.fingerprint = fingerprint;
    r.source = std::move(source);
    r.num_sites = num_sites;
    r.deltas = std::move(deltas);
    return r;
}

TEST(IngestStore, FoldAccumulatesPerSource)
{
    ProfileStore store;
    store.fold(report("p", 1, "alpha", 4, {{0, 10, 7}, {2, 5, 5}}));
    store.fold(report("p", 1, "alpha", 4, {{0, 2, 1}}));
    store.fold(report("p", 1, "beta", 4, {{3, 8, 0}}));

    ProfileDb alpha = store.sourceDb({"p", 1}, "alpha");
    EXPECT_DOUBLE_EQ(alpha.site(0).executed, 12.0);
    EXPECT_DOUBLE_EQ(alpha.site(0).taken, 8.0);
    EXPECT_DOUBLE_EQ(alpha.site(1).executed, 0.0);
    EXPECT_DOUBLE_EQ(alpha.site(2).executed, 5.0);

    auto sources = store.sources({"p", 1});
    ASSERT_EQ(sources.size(), 2u);
    EXPECT_EQ(sources[0].first, "alpha");
    EXPECT_EQ(sources[0].second, 2);
    EXPECT_EQ(sources[1].first, "beta");
    EXPECT_EQ(sources[1].second, 1);

    auto stats = store.stats();
    EXPECT_EQ(stats.batches, 3);
    EXPECT_EQ(stats.events, 4);
    EXPECT_EQ(stats.rejected_batches, 0);
}

TEST(IngestStore, SnapshotMatchesReferenceMergeAllModes)
{
    ProfileStore store;
    // Uneven totals so scaled mode produces non-representable
    // fractions (1/3, 1/7, ...) where value-vs-bit differences show.
    store.fold(report("p", 7, "alpha", 5,
                      {{0, 3, 1}, {1, 7, 2}, {4, 1, 1}}));
    store.fold(report("p", 7, "beta", 5, {{0, 11, 11}, {2, 13, 6}}));
    store.fold(report("p", 7, "gamma", 5, {{3, 1, 0}}));
    for (MergeMode mode : kAllModes) {
        expectSameBits(store.snapshot({"p", 7}, mode),
                       referenceMerge(store, {"p", 7}, mode));
    }
    EXPECT_EQ(store.stats().snapshots, 3);
}

TEST(IngestStore, ScaledSkipsAllZeroSourceLikeReference)
{
    ProfileStore store;
    store.fold(report("p", 7, "live", 3, {{0, 4, 3}}));
    store.fold(report("p", 7, "empty", 3, {{1, 0, 0}}));
    for (MergeMode mode : kAllModes) {
        expectSameBits(store.snapshot({"p", 7}, mode),
                       referenceMerge(store, {"p", 7}, mode));
    }
    ProfileDb scaled = store.snapshot({"p", 7}, MergeMode::kScaled);
    EXPECT_DOUBLE_EQ(scaled.totalExecuted(), 1.0); // only "live" counts
}

TEST(IngestStore, TracksImagesIndependently)
{
    ProfileStore store;
    store.fold(report("p", 1, "s", 2, {{0, 1, 1}}));
    store.fold(report("p", 2, "s", 9, {{8, 3, 0}}));
    store.fold(report("q", 1, "s", 4, {{1, 2, 2}}));
    auto images = store.images();
    ASSERT_EQ(images.size(), 3u);
    EXPECT_EQ(store.numSites({"p", 1}), 2u);
    EXPECT_EQ(store.numSites({"p", 2}), 9u);
    EXPECT_EQ(store.numSites({"q", 1}), 4u);
}

TEST(IngestStore, RejectsInvalidBatchesWithoutSideEffects)
{
    ProfileStore store;
    store.fold(report("p", 1, "s", 4, {{0, 6, 2}}));
    const ProfileDb before = store.snapshot({"p", 1}, MergeMode::kUnscaled);

    // Site out of range.
    EXPECT_THROW(store.fold(report("p", 1, "s", 4, {{4, 1, 0}})), Error);
    // Negative executed.
    EXPECT_THROW(store.fold(report("p", 1, "s", 4, {{0, -1, 0}})), Error);
    // taken > executed.
    EXPECT_THROW(store.fold(report("p", 1, "s", 4, {{0, 1, 2}})), Error);
    // Site count disagrees with the image's established geometry.
    EXPECT_THROW(store.fold(report("p", 1, "s", 5, {{0, 1, 0}})), Error);
    // A rejected batch for a brand-new image must not create it.
    EXPECT_THROW(store.fold(report("new", 9, "s", 4, {{9, 1, 0}})),
                 Error);
    EXPECT_THROW(store.snapshot({"new", 9}, MergeMode::kUnscaled), Error);

    expectSameBits(store.snapshot({"p", 1}, MergeMode::kUnscaled),
                   before);
    EXPECT_EQ(store.stats().rejected_batches, 5);
    EXPECT_EQ(store.stats().batches, 1);
}

TEST(IngestStore, SnapshotOfUnknownImageThrows)
{
    ProfileStore store;
    EXPECT_THROW(store.snapshot({"nope", 1}, MergeMode::kUnscaled),
                 Error);
    EXPECT_THROW(store.sourceDb({"nope", 1}, "s"), Error);
    EXPECT_THROW(store.numSites({"nope", 1}), Error);
}

/** Deterministic batch generator shared by the hammer tests. */
std::vector<RunReport>
makeBatches(uint64_t seed, int count)
{
    static const struct
    {
        const char *program;
        uint64_t fingerprint;
        uint32_t num_sites;
    } kImages[] = {{"prog_a", 0xA, 97}, {"prog_b", 0xB, 33}};
    static const char *kSources[] = {"alpha", "beta", "gamma", "delta"};

    Rng rng(seed);
    std::vector<RunReport> out;
    out.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        const auto &img = kImages[rng.below(2)];
        RunReport r;
        r.program = img.program;
        r.fingerprint = img.fingerprint;
        r.source = kSources[rng.below(4)];
        r.num_sites = img.num_sites;
        const int deltas = static_cast<int>(rng.range(1, 20));
        for (int d = 0; d < deltas; ++d) {
            const int64_t executed = rng.range(0, 1000);
            r.deltas.push_back(
                {static_cast<uint32_t>(rng.below(img.num_sites)),
                 executed, rng.range(0, executed)});
        }
        out.push_back(std::move(r));
    }
    return out;
}

/** Serial ground truth: the same batches folded into plain maps, then
 *  through ProfileDb::merge — no store code involved. */
std::map<ProfileStore::ImageKey, ProfileDb>
groundTruth(const std::vector<std::vector<RunReport>> &batches,
            MergeMode mode)
{
    std::map<ProfileStore::ImageKey,
             std::pair<uint32_t,
                       std::map<std::string,
                                std::vector<vm::BranchCounts>>>>
        model;
    for (const auto &thread_batches : batches) {
        for (const RunReport &r : thread_batches) {
            auto &[num_sites, sources] =
                model[{r.program, r.fingerprint}];
            num_sites = r.num_sites;
            auto &counts = sources[r.source];
            counts.resize(r.num_sites);
            for (const SiteDelta &d : r.deltas) {
                counts[d.site].executed += d.executed;
                counts[d.site].taken += d.taken;
            }
        }
    }
    std::map<ProfileStore::ImageKey, ProfileDb> out;
    for (const auto &[key, image] : model) {
        std::vector<ProfileDb> inputs;
        for (const auto &[name, counts] : image.second) {
            std::vector<profile::BranchWeight> weights(image.first);
            for (size_t i = 0; i < counts.size(); ++i) {
                weights[i].executed =
                    static_cast<double>(counts[i].executed);
                weights[i].taken = static_cast<double>(counts[i].taken);
            }
            inputs.emplace_back(key.first, key.second,
                                std::move(weights));
        }
        out.emplace(key, ProfileDb::merge(inputs, mode));
    }
    return out;
}

TEST(IngestHammer, ConcurrentFoldsMatchSerialGroundTruth)
{
    constexpr int kThreads = 8;
    constexpr int kBatchesPerThread = 150;

    std::vector<std::vector<RunReport>> batches;
    for (int t = 0; t < kThreads; ++t)
        batches.push_back(makeBatches(1000 + t, kBatchesPerThread));

    ProfileStore store;
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&store, &batches, t] {
            for (const RunReport &r : batches[static_cast<size_t>(t)])
                store.fold(r);
        });
    }
    for (auto &w : writers)
        w.join();

    EXPECT_EQ(store.stats().batches, kThreads * kBatchesPerThread);
    for (MergeMode mode : kAllModes) {
        for (const auto &[key, want] : groundTruth(batches, mode)) {
            expectSameBits(store.snapshot(key, mode), want);
            expectSameBits(store.snapshot(key, mode),
                           referenceMerge(store, key, mode));
        }
    }
}

TEST(IngestHammer, SnapshotsDuringFoldsSettleToGroundTruth)
{
    constexpr int kWriters = 4;
    constexpr int kBatchesPerThread = 120;

    std::vector<std::vector<RunReport>> batches;
    for (int t = 0; t < kWriters; ++t)
        batches.push_back(makeBatches(2000 + t, kBatchesPerThread));

    ProfileStore store;
    // Seed both images so readers never race image creation itself.
    store.fold(report("prog_a", 0xA, "alpha", 97, {{0, 0, 0}}));
    store.fold(report("prog_b", 0xB, "alpha", 33, {{0, 0, 0}}));

    std::atomic<bool> done{false};
    std::atomic<int64_t> reads{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&store, &done, &reads, r] {
            int i = 0;
            while (!done.load(std::memory_order_acquire)) {
                const MergeMode mode =
                    kAllModes[static_cast<size_t>(r + i++) % 3];
                ProfileDb db = store.snapshot({"prog_a", 0xA}, mode);
                // Monotonic sanity: weights never go negative.
                EXPECT_GE(db.totalExecuted(), 0.0);
                reads.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t) {
        writers.emplace_back([&store, &batches, t] {
            for (const RunReport &r : batches[static_cast<size_t>(t)])
                store.fold(r);
        });
    }
    for (auto &w : writers)
        w.join();
    done.store(true, std::memory_order_release);
    for (auto &r : readers)
        r.join();
    EXPECT_GT(reads.load(), 0);

    // The seeding batches are all-zero deltas: they change no counts,
    // only the "alpha" batch totals, so the quiesced ground truth of
    // the generated batches plus two extra alpha batches must match.
    for (MergeMode mode : kAllModes) {
        for (const auto &[key, want] : groundTruth(batches, mode))
            expectSameBits(store.snapshot(key, mode), want);
    }
}

// --- IFPROBPS segments ------------------------------------------------------

Segment
sampleSegment()
{
    Segment seg;
    seg.program = "prog";
    seg.fingerprint = 0xfeedface;
    seg.num_sites = 9;
    SegmentSource a;
    a.name = "alpha";
    a.batches = 3;
    a.entries = {{0, {10, 7}}, {4, {5, 0}}, {8, {2, 2}}};
    SegmentSource b;
    b.name = "beta";
    b.batches = 1;
    b.entries = {{1, {1, 1}}};
    seg.sources = {a, b};
    return seg;
}

TEST(IngestSegment, RoundTripsThroughTheBinaryFormat)
{
    Segment seg = sampleSegment();
    std::stringstream ss;
    seg.save(ss);
    Segment loaded = Segment::load(ss);
    EXPECT_EQ(loaded.program, seg.program);
    EXPECT_EQ(loaded.fingerprint, seg.fingerprint);
    EXPECT_EQ(loaded.num_sites, seg.num_sites);
    ASSERT_EQ(loaded.sources.size(), 2u);
    EXPECT_EQ(loaded.sources[0].name, "alpha");
    EXPECT_EQ(loaded.sources[0].batches, 3);
    ASSERT_EQ(loaded.sources[0].entries.size(), 3u);
    EXPECT_EQ(loaded.sources[0].entries[1].first, 4u);
    EXPECT_EQ(loaded.sources[0].entries[1].second.executed, 5);
    EXPECT_EQ(loaded.sources[1].name, "beta");
}

TEST(IngestSegment, RejectsBadMagicVersionAndCorruption)
{
    Segment seg = sampleSegment();
    std::stringstream ss;
    seg.save(ss);
    const std::string bytes = ss.str();

    auto loadFrom = [](std::string data) {
        std::stringstream in(std::move(data));
        return Segment::load(in);
    };

    {
        std::string bad = bytes;
        bad[0] = 'X';
        EXPECT_THROW(loadFrom(bad), Error);
    }
    {
        std::string bad = bytes;
        bad[8] = 9; // version
        EXPECT_THROW(loadFrom(bad), Error);
    }
    {
        // Flip one payload byte: checksum must catch it.
        std::string bad = bytes;
        bad[bytes.size() - 3] ^= 0x40;
        EXPECT_THROW(loadFrom(bad), Error);
    }
    {
        // Truncations at every prefix length must throw, never crash.
        for (size_t n = 0; n < bytes.size(); n += 7)
            EXPECT_THROW(loadFrom(bytes.substr(0, n)), Error);
    }
    {
        std::string bad = bytes + "extra";
        EXPECT_THROW(loadFrom(bad), Error);
    }
}

TEST(IngestSegment, RejectsInconsistentEntries)
{
    // Build logically invalid segments and push them through
    // save(): load() must reject what the writer never produces.
    {
        Segment seg = sampleSegment();
        seg.sources[0].entries[1].first = 0; // out of order
        std::stringstream ss;
        seg.save(ss);
        EXPECT_THROW(Segment::load(ss), Error);
    }
    {
        Segment seg = sampleSegment();
        seg.sources[0].entries[0].second = {3, 5}; // taken > executed
        std::stringstream ss;
        seg.save(ss);
        EXPECT_THROW(Segment::load(ss), Error);
    }
    {
        Segment seg = sampleSegment();
        std::swap(seg.sources[0], seg.sources[1]); // names out of order
        std::stringstream ss;
        seg.save(ss);
        EXPECT_THROW(Segment::load(ss), Error);
    }
    {
        Segment seg = sampleSegment();
        seg.sources[0].entries[2].first = 99; // site >= num_sites
        std::stringstream ss;
        seg.save(ss);
        EXPECT_THROW(Segment::load(ss), Error);
    }
}

// --- Store persistence ------------------------------------------------------

class IngestPersistence : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               "ifprob_ingest_test";
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string dir() const { return dir_.string(); }

    std::filesystem::path dir_;
};

TEST_F(IngestPersistence, SegmentsRoundTripTheWholeStore)
{
    ProfileStore store;
    for (const RunReport &r : makeBatches(42, 60))
        store.fold(r);
    ASSERT_EQ(store.saveSegments(dir()), 2u); // one file per image

    ProfileStore reloaded;
    EXPECT_EQ(reloaded.loadSegments(dir()), 2u);
    ASSERT_EQ(reloaded.images().size(), store.images().size());
    for (const auto &key : store.images()) {
        EXPECT_EQ(reloaded.sources(key), store.sources(key));
        for (MergeMode mode : kAllModes) {
            expectSameBits(reloaded.snapshot(key, mode),
                           store.snapshot(key, mode));
        }
    }
    auto stats = reloaded.stats();
    EXPECT_EQ(stats.segments_loaded, 2);
    EXPECT_EQ(stats.segment_failures, 0);
}

TEST_F(IngestPersistence, CorruptSegmentIsCountedAndSkipped)
{
    ProfileStore store;
    store.fold(report("good", 1, "s", 3, {{0, 5, 2}}));
    store.fold(report("evil", 2, "s", 3, {{1, 9, 9}}));
    ASSERT_EQ(store.saveSegments(dir()), 2u);

    // Flip a payload byte in the "evil" segment.
    const std::string victim =
        (std::filesystem::path(dir()) / "evil.0000000000000002.seg")
            .string();
    {
        std::fstream f(victim,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekp(-2, std::ios::end);
        f.put('\x7f');
    }

    ProfileStore reloaded;
    EXPECT_EQ(reloaded.loadSegments(dir()), 1u);
    auto stats = reloaded.stats();
    EXPECT_EQ(stats.segments_loaded, 1);
    EXPECT_EQ(stats.segment_failures, 1);
    ASSERT_EQ(stats.failures.size(), 1u);
    EXPECT_NE(stats.failures[0].find("evil"), std::string::npos);
    // The good image survived; the corrupt one is simply absent,
    // waiting for re-ingestion.
    expectSameBits(reloaded.snapshot({"good", 1}, MergeMode::kUnscaled),
                   store.snapshot({"good", 1}, MergeMode::kUnscaled));
    EXPECT_THROW(reloaded.snapshot({"evil", 2}, MergeMode::kUnscaled),
                 Error);

    // Re-ingesting the lost batch restores the store.
    reloaded.fold(report("evil", 2, "s", 3, {{1, 9, 9}}));
    expectSameBits(reloaded.snapshot({"evil", 2}, MergeMode::kUnscaled),
                   store.snapshot({"evil", 2}, MergeMode::kUnscaled));
}

TEST_F(IngestPersistence, TruncatedSegmentIsCountedAndSkipped)
{
    ProfileStore store;
    store.fold(report("only", 1, "s", 3, {{0, 5, 2}, {2, 1, 0}}));
    ASSERT_EQ(store.saveSegments(dir()), 1u);

    const auto path =
        std::filesystem::path(dir()) / "only.0000000000000001.seg";
    ASSERT_TRUE(std::filesystem::exists(path));
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) / 2);

    ProfileStore reloaded;
    EXPECT_EQ(reloaded.loadSegments(dir()), 0u);
    EXPECT_EQ(reloaded.stats().segment_failures, 1);
    EXPECT_TRUE(reloaded.images().empty());
}

TEST_F(IngestPersistence, LoadIntoPopulatedStoreFoldsOnTop)
{
    ProfileStore store;
    store.fold(report("p", 1, "alpha", 3, {{0, 4, 1}}));
    ASSERT_EQ(store.saveSegments(dir()), 1u);

    // Load the segment into a store that already has counts for the
    // same image: segment counts fold in like any other batch.
    ProfileStore other;
    other.fold(report("p", 1, "alpha", 3, {{0, 1, 1}}));
    other.fold(report("p", 1, "beta", 3, {{2, 2, 0}}));
    EXPECT_EQ(other.loadSegments(dir()), 1u);

    ProfileDb alpha = other.sourceDb({"p", 1}, "alpha");
    EXPECT_DOUBLE_EQ(alpha.site(0).executed, 5.0);
    EXPECT_DOUBLE_EQ(alpha.site(0).taken, 2.0);
    auto sources = other.sources({"p", 1});
    ASSERT_EQ(sources.size(), 2u);
    EXPECT_EQ(sources[0].second, 2); // alpha: 1 live + 1 from segment
    for (MergeMode mode : kAllModes) {
        expectSameBits(other.snapshot({"p", 1}, mode),
                       referenceMerge(other, {"p", 1}, mode));
    }
}

} // namespace
} // namespace ifprob::ingest

/**
 * @file
 * Property-based tests. The central ones:
 *
 *  - Random integer expression programs evaluate identically on the VM
 *    (at every optimization level) and on a host-side oracle that
 *    mirrors minic's semantics.
 *  - LZW compress ∘ uncompress is the identity on random byte streams.
 *  - Self-prediction dominates every other static predictor.
 *  - Merging a profile with itself never changes predictions.
 */
#include <gtest/gtest.h>

#include <string>

#include "compiler/pipeline.h"
#include "predict/evaluate.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "support/rng.h"
#include "support/str.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace ifprob {
namespace {

/**
 * Generate a random integer expression over variables a..d, together
 * with a host-side evaluation. Division/modulo use guarded divisors
 * (| 1 masks) so the oracle and the VM never trap.
 */
struct ExprGen
{
    explicit ExprGen(uint64_t seed) : rng(seed) {}

    std::string
    gen(int depth, const int64_t *vars, int64_t *value)
    {
        if (depth == 0 || rng.chance(0.3)) {
            if (rng.chance(0.5)) {
                int v = static_cast<int>(rng.below(4));
                *value = vars[v];
                return std::string(1, static_cast<char>('a' + v));
            }
            int64_t lit = rng.range(-100, 100);
            *value = lit;
            if (lit < 0)
                return strPrintf("(%lld)", static_cast<long long>(lit));
            return strPrintf("%lld", static_cast<long long>(lit));
        }
        int64_t lhs_value = 0, rhs_value = 0;
        std::string lhs = gen(depth - 1, vars, &lhs_value);
        std::string rhs = gen(depth - 1, vars, &rhs_value);
        // Wraparound helpers matching the VM's defined two's-complement
        // semantics.
        auto wadd = [](int64_t x, int64_t y) {
            return static_cast<int64_t>(static_cast<uint64_t>(x) +
                                        static_cast<uint64_t>(y));
        };
        auto wsub = [](int64_t x, int64_t y) {
            return static_cast<int64_t>(static_cast<uint64_t>(x) -
                                        static_cast<uint64_t>(y));
        };
        auto wmul = [](int64_t x, int64_t y) {
            return static_cast<int64_t>(static_cast<uint64_t>(x) *
                                        static_cast<uint64_t>(y));
        };
        switch (rng.below(12)) {
          case 0:
            *value = wadd(lhs_value, rhs_value);
            return "(" + lhs + " + " + rhs + ")";
          case 1:
            *value = wsub(lhs_value, rhs_value);
            return "(" + lhs + " - " + rhs + ")";
          case 2:
            *value = wmul(lhs_value, rhs_value);
            return "(" + lhs + " * " + rhs + ")";
          case 3: {
            int64_t divisor = (rhs_value & 1023) | 1; // strictly positive
            *value = lhs_value / divisor;
            return "(" + lhs + " / ((" + rhs + " & 1023) | 1))";
          }
          case 4: {
            int64_t divisor = (rhs_value & 1023) | 1;
            *value = lhs_value % divisor;
            return "(" + lhs + " % ((" + rhs + " & 1023) | 1))";
          }
          case 5:
            *value = lhs_value & rhs_value;
            return "(" + lhs + " & " + rhs + ")";
          case 6:
            *value = lhs_value | rhs_value;
            return "(" + lhs + " | " + rhs + ")";
          case 7:
            *value = lhs_value ^ rhs_value;
            return "(" + lhs + " ^ " + rhs + ")";
          case 8:
            *value = lhs_value < rhs_value;
            return "(" + lhs + " < " + rhs + ")";
          case 9:
            *value = lhs_value == rhs_value;
            return "(" + lhs + " == " + rhs + ")";
          case 10:
            *value = (lhs_value != 0) && (rhs_value != 0);
            return "(" + lhs + " && " + rhs + ")";
          default:
            *value = lhs_value != 0 ? lhs_value : rhs_value;
            // Ternary exercising both select and branch lowering.
            return "(" + lhs + " != 0 ? " + lhs + " : " + rhs + ")";
        }
    }

    Rng rng;
};

class RandomExprTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomExprTest, VmMatchesOracleAtEveryOptLevel)
{
    ExprGen gen(0xABCD0000u + static_cast<uint64_t>(GetParam()));
    const int64_t vars[4] = {
        gen.rng.range(-1000, 1000), gen.rng.range(-1000, 1000),
        gen.rng.range(-5, 5), gen.rng.range(0, 7)};
    int64_t expected = 0;
    std::string expr = gen.gen(4, vars, &expected);
    std::string source = strPrintf(
        "int main() {\n"
        "    int a = %lld, b = %lld, c = %lld, d = %lld;\n"
        "    int r = %s;\n"
        "    puti(r);\n"
        "    return 0;\n"
        "}\n",
        static_cast<long long>(vars[0]), static_cast<long long>(vars[1]),
        static_cast<long long>(vars[2]), static_cast<long long>(vars[3]),
        expr.c_str());

    for (int level = 0; level < 3; ++level) {
        CompileOptions options;
        options.optimize = level >= 1;
        options.eliminate_dead_code = level >= 2;
        isa::Program p = compile(source, options);
        vm::Machine m(p);
        auto r = m.run("");
        EXPECT_EQ(r.output, std::to_string(expected))
            << "level " << level << "\n" << source;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExprTest, ::testing::Range(0, 40));

class CompressRoundTripTest : public ::testing::TestWithParam<int>
{
};

TEST_P(CompressRoundTripTest, IdentityOnRandomStreams)
{
    Rng rng(0xC0FFEE00u + static_cast<uint64_t>(GetParam()));
    // Vary the texture: pure noise, runs, tiny alphabet.
    std::string data;
    size_t len = 100 + rng.below(8000);
    int alphabet = GetParam() % 3 == 0 ? 256 : (GetParam() % 3 == 1 ? 4 : 30);
    while (data.size() < len) {
        if (rng.chance(0.2)) {
            data.append(rng.below(20) + 1,
                        static_cast<char>(rng.below(
                            static_cast<uint64_t>(alphabet))));
        } else {
            data.push_back(static_cast<char>(
                rng.below(static_cast<uint64_t>(alphabet))));
        }
    }

    static const isa::Program program =
        compile(workloads::get("compress").source);
    vm::Machine machine(program);
    auto compressed = machine.run("C" + data);
    auto restored = machine.run("D" + compressed.output);
    ASSERT_EQ(restored.output.size(), data.size());
    EXPECT_TRUE(restored.output == data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressRoundTripTest,
                         ::testing::Range(0, 12));

TEST(Properties, EmptyAndOneByteCompressRoundTrip)
{
    isa::Program program = compile(workloads::get("compress").source);
    vm::Machine machine(program);
    for (std::string data : {std::string(), std::string("x"),
                             std::string("\0", 1), std::string(2, 'a')}) {
        auto compressed = machine.run("C" + data);
        auto restored = machine.run("D" + compressed.output);
        EXPECT_TRUE(restored.output == data) << "len=" << data.size();
    }
}

class SelfDominanceTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SelfDominanceTest, SelfProfileBeatsRandomPredictors)
{
    Rng rng(0x5E1F0000u + static_cast<uint64_t>(GetParam()));
    vm::RunStats stats;
    size_t sites = 1 + rng.below(40);
    for (size_t i = 0; i < sites; ++i) {
        int64_t executed = static_cast<int64_t>(rng.below(1000));
        int64_t taken = executed > 0
                            ? static_cast<int64_t>(rng.below(
                                  static_cast<uint64_t>(executed + 1)))
                            : 0;
        stats.branches.push_back({executed, taken});
        stats.cond_branches += executed;
        stats.taken_branches += taken;
    }
    predict::ProfilePredictor self(profile::ProfileDb("p", 1, stats));
    auto self_quality = predict::evaluate(stats, self);

    class RandomPredictor : public predict::StaticPredictor
    {
      public:
        RandomPredictor(uint64_t seed, size_t n)
        {
            Rng r(seed);
            for (size_t i = 0; i < n; ++i)
                decisions_.push_back(r.chance(0.5));
        }
        bool
        predictTaken(int site) const override
        {
            return decisions_[static_cast<size_t>(site)];
        }

      private:
        std::vector<bool> decisions_;
    };
    for (int trial = 0; trial < 20; ++trial) {
        RandomPredictor other(rng.next(), sites);
        EXPECT_GE(self_quality.correct,
                  predict::evaluate(stats, other).correct);
    }
    // And accuracy is always at least 50% (majority choice per site).
    if (self_quality.executed > 0) {
        EXPECT_GE(self_quality.percentCorrect(), 50.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelfDominanceTest, ::testing::Range(0, 10));

TEST(Properties, MergingProfileWithItselfIsIdempotentForPredictions)
{
    Rng rng(42);
    vm::RunStats stats;
    for (int i = 0; i < 25; ++i) {
        int64_t executed = static_cast<int64_t>(rng.below(500)) + 1;
        int64_t taken = static_cast<int64_t>(
            rng.below(static_cast<uint64_t>(executed + 1)));
        stats.branches.push_back({executed, taken});
    }
    profile::ProfileDb db("p", 1, stats);
    for (auto mode :
         {profile::MergeMode::kScaled, profile::MergeMode::kUnscaled,
          profile::MergeMode::kPolling}) {
        std::vector<profile::ProfileDb> three{db, db, db};
        profile::ProfileDb merged = profile::ProfileDb::merge(three, mode);
        predict::ProfilePredictor p_original(db);
        predict::ProfilePredictor p_merged(merged);
        for (size_t i = 0; i < db.numSites(); ++i) {
            EXPECT_EQ(p_original.predictTaken(static_cast<int>(i)),
                      p_merged.predictTaken(static_cast<int>(i)))
                << "mode " << static_cast<int>(mode) << " site " << i;
        }
    }
}

TEST(Properties, ScaledAndUnscaledAgreeForSinglePredictor)
{
    // With one predictor dataset the three modes pick identical
    // directions (scaling is a positive constant; polling votes match
    // the majority).
    Rng rng(77);
    vm::RunStats stats;
    for (int i = 0; i < 30; ++i) {
        int64_t executed = static_cast<int64_t>(rng.below(300));
        int64_t taken = executed > 0 ? static_cast<int64_t>(rng.below(
                                           static_cast<uint64_t>(executed + 1)))
                                     : 0;
        stats.branches.push_back({executed, taken});
    }
    profile::ProfileDb db("p", 1, stats);
    std::vector<profile::ProfileDb> one{db};
    predict::ProfilePredictor scaled(
        profile::ProfileDb::merge(one, profile::MergeMode::kScaled));
    predict::ProfilePredictor unscaled(
        profile::ProfileDb::merge(one, profile::MergeMode::kUnscaled));
    for (size_t i = 0; i < db.numSites(); ++i) {
        EXPECT_EQ(scaled.predictTaken(static_cast<int>(i)),
                  unscaled.predictTaken(static_cast<int>(i)));
    }
}

TEST(Properties, InstructionCountMonotoneInOptimization)
{
    // For every workload: optimized dynamic instruction count <= raw,
    // and DCE <= optimized (on the primary dataset).
    for (const char *name : {"eqntott", "mcc", "spiff"}) {
        const auto &w = workloads::get(name);
        CompileOptions raw_options;
        raw_options.optimize = false;
        CompileOptions opt_options;
        CompileOptions dce_options;
        dce_options.eliminate_dead_code = true;

        isa::Program raw_program = compile(w.source, raw_options);
        isa::Program opt_program = compile(w.source, opt_options);
        isa::Program dce_program = compile(w.source, dce_options);
        vm::Machine raw(raw_program);
        vm::Machine opt(opt_program);
        vm::Machine dce(dce_program);
        const auto &input = w.datasets.front().input;
        auto r_raw = raw.run(input);
        auto r_opt = opt.run(input);
        auto r_dce = dce.run(input);
        EXPECT_LE(r_opt.stats.instructions, r_raw.stats.instructions)
            << name;
        EXPECT_LE(r_dce.stats.instructions, r_opt.stats.instructions)
            << name;
        // Output identical everywhere.
        EXPECT_EQ(r_raw.output, r_opt.output) << name;
        EXPECT_EQ(r_raw.output, r_dce.output) << name;
    }
}

} // namespace
} // namespace ifprob

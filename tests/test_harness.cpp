/**
 * @file
 * Integration tests for the experiment harness: runner caching (memory
 * and disk), experiment row structure, and cross-checks between the
 * experiment helpers and direct metric computation.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "harness/experiments.h"
#include "harness/runner.h"
#include "metrics/breaks.h"
#include "predict/profile_predictor.h"
#include "support/error.h"

namespace ifprob::harness {
namespace {

/** Scoped IFPROB_CACHE override pointing at a fresh temp directory. */
class CacheDirGuard
{
  public:
    CacheDirGuard()
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("ifprob-test-cache-" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        ::setenv("IFPROB_CACHE", dir_.c_str(), 1);
    }

    ~CacheDirGuard()
    {
        ::unsetenv("IFPROB_CACHE");
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    const std::filesystem::path &dir() const { return dir_; }

  private:
    std::filesystem::path dir_;
};

TEST(Runner, StatsAreCachedOnDiskAndReloaded)
{
    CacheDirGuard cache;
    {
        Runner runner;
        const auto &stats = runner.stats("mcc", "c_metric");
        EXPECT_GT(stats.instructions, 0);
    }
    // One cache file materialized.
    size_t files = 0;
    for (auto &entry : std::filesystem::directory_iterator(cache.dir()))
        files += entry.is_regular_file();
    EXPECT_EQ(files, 1u);

    // A second runner must load rather than re-run; verify by checking
    // identical counters (and implicitly by the file round trip).
    Runner runner2;
    const auto &again = runner2.stats("mcc", "c_metric");
    Runner no_cache_runner;
    ::setenv("IFPROB_CACHE", "off", 1);
    Runner uncached;
    const auto &fresh = uncached.stats("mcc", "c_metric");
    EXPECT_EQ(again.instructions, fresh.instructions);
    EXPECT_EQ(again.cond_branches, fresh.cond_branches);
}

TEST(Runner, CorruptCacheEntryIsIgnored)
{
    CacheDirGuard cache;
    {
        Runner runner;
        runner.stats("mcc", "c_metric");
    }
    for (auto &entry : std::filesystem::directory_iterator(cache.dir())) {
        std::ofstream out(entry.path());
        out << "garbage";
    }
    Runner runner;
    const auto &stats = runner.stats("mcc", "c_metric");
    EXPECT_GT(stats.instructions, 0);
}

TEST(Runner, UnknownNamesThrow)
{
    ::setenv("IFPROB_CACHE", "off", 1);
    Runner runner;
    EXPECT_THROW(runner.stats("no-such-workload", "x"), Error);
    EXPECT_THROW(runner.stats("mcc", "no-such-dataset"), Error);
}

class ExperimentsTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        // Share one runner (and its in-memory stats) across these tests;
        // use the default on-disk cache so repeated suite runs are fast.
        runner_ = new Runner();
    }

    static void TearDownTestSuite()
    {
        delete runner_;
        runner_ = nullptr;
    }

    static Runner *runner_;
};

Runner *ExperimentsTest::runner_ = nullptr;

TEST_F(ExperimentsTest, Figure1CoversEveryDataset)
{
    auto rows = figure1(*runner_);
    size_t expected = 0;
    for (const auto &w : workloads::all())
        expected += w.datasets.size();
    EXPECT_EQ(rows.size(), expected);
    for (const auto &r : rows) {
        EXPECT_GT(r.per_break, 1.0) << r.program << "/" << r.dataset;
        // Counting calls can only add breaks.
        EXPECT_LE(r.per_break_with_calls, r.per_break + 1e-9);
    }
}

TEST_F(ExperimentsTest, Figure2SelfIsUpperBound)
{
    auto rows = figure2(*runner_);
    for (const auto &r : rows) {
        EXPECT_GE(r.self_per_break + 1e-9, r.others_per_break)
            << r.program << "/" << r.dataset;
        // Prediction can only help versus no prediction.
        const auto &stats = runner_->stats(r.program, r.dataset);
        double unpredicted =
            metrics::breaksWithoutPrediction(stats).instructionsPerBreak();
        EXPECT_GE(r.self_per_break + 1e-9, unpredicted);
    }
}

TEST_F(ExperimentsTest, Figure3PercentagesAreSane)
{
    auto rows = figure3(*runner_);
    for (const auto &r : rows) {
        EXPECT_GT(r.worst_pct, 0.0);
        EXPECT_LE(r.worst_pct, r.best_pct + 1e-9);
        EXPECT_LE(r.best_pct, 100.0 + 1e-9)
            << r.program << "/" << r.dataset;
        EXPECT_FALSE(r.best_predictor.empty());
        EXPECT_NE(r.best_predictor, r.dataset);
    }
    // Only multi-dataset programs appear.
    for (const auto &r : rows) {
        EXPECT_GE(workloads::get(r.program).datasets.size(), 2u);
    }
}

TEST_F(ExperimentsTest, SelfPredictionHelperMatchesDirectComputation)
{
    const auto &stats = runner_->stats("li", "8queens");
    predict::ProfilePredictor self(profileOf(*runner_, "li", "8queens"));
    double direct = metrics::breaksWithPredictor(stats, self)
                        .instructionsPerBreak();
    EXPECT_DOUBLE_EQ(selfPredictedPerBreak(*runner_, "li", "8queens"),
                     direct);
}

TEST_F(ExperimentsTest, SingleDatasetOthersFallsBackToSelf)
{
    EXPECT_DOUBLE_EQ(
        othersPredictedPerBreak(*runner_, "tomcatv", "(builtin)",
                                profile::MergeMode::kScaled),
        selfPredictedPerBreak(*runner_, "tomcatv", "(builtin)"));
}

TEST_F(ExperimentsTest, PercentTakenRowsCoverEverything)
{
    auto rows = percentTaken(*runner_);
    for (const auto &r : rows) {
        EXPECT_GE(r.percent_taken, 0.0);
        EXPECT_LE(r.percent_taken, 100.0);
    }
}

TEST_F(ExperimentsTest, HeuristicRowsAreBoundedBySelf)
{
    for (const auto &r : heuristics(*runner_)) {
        EXPECT_GE(r.self_per_break + 1e-9, r.backward_taken_per_break)
            << r.program << "/" << r.dataset;
        EXPECT_GE(r.self_per_break + 1e-9, r.opcode_rules_per_break);
        EXPECT_GE(r.self_per_break + 1e-9, r.always_taken_per_break);
    }
}

TEST(Experiments, Table1FractionsInRange)
{
    auto rows = table1();
    EXPECT_EQ(rows.size(), workloads::all().size());
    double max_fraction = 0.0;
    for (const auto &r : rows) {
        EXPECT_GE(r.dead_fraction, 0.0) << r.program;
        EXPECT_LT(r.dead_fraction, 0.6) << r.program;
        max_fraction = std::max(max_fraction, r.dead_fraction);
    }
    // At least one program carries substantial disabled generality
    // (matrix300 in both the paper and this reproduction).
    EXPECT_GT(max_fraction, 0.10);
}

} // namespace
} // namespace ifprob::harness

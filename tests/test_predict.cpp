/**
 * @file
 * Unit tests for the predictors: profile-based decisions (majority,
 * ties, unseen-site policies and heuristic fallback), heuristic rules,
 * dynamic 1-/2-bit predictors, and the closed-form evaluate() scoring.
 */
#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "predict/dynamic_predictor.h"
#include "predict/evaluate.h"
#include "predict/heuristic_predictor.h"
#include "predict/profile_predictor.h"
#include "support/rng.h"
#include "vm/machine.h"

namespace ifprob::predict {
namespace {

vm::RunStats
statsWith(std::vector<std::pair<int64_t, int64_t>> branches)
{
    vm::RunStats stats;
    for (auto [executed, taken] : branches) {
        stats.branches.push_back({executed, taken});
        stats.cond_branches += executed;
        stats.taken_branches += taken;
    }
    return stats;
}

profile::ProfileDb
dbWith(std::vector<std::pair<int64_t, int64_t>> branches)
{
    return profile::ProfileDb("p", 1, statsWith(std::move(branches)));
}

TEST(ProfilePredictor, MajorityDirection)
{
    ProfilePredictor p(dbWith({{10, 9}, {10, 1}, {10, 6}, {10, 4}}));
    EXPECT_TRUE(p.predictTaken(0));
    EXPECT_FALSE(p.predictTaken(1));
    EXPECT_TRUE(p.predictTaken(2));
    EXPECT_FALSE(p.predictTaken(3));
}

TEST(ProfilePredictor, TiePredictsNotTaken)
{
    ProfilePredictor p(dbWith({{10, 5}}));
    EXPECT_FALSE(p.predictTaken(0));
}

TEST(ProfilePredictor, UnseenPolicy)
{
    ProfilePredictor not_taken(dbWith({{0, 0}}), UnseenPolicy::kNotTaken);
    EXPECT_FALSE(not_taken.predictTaken(0));
    ProfilePredictor taken(dbWith({{0, 0}}), UnseenPolicy::kTaken);
    EXPECT_TRUE(taken.predictTaken(0));
}

TEST(ProfilePredictor, HeuristicFallbackForUnseenSites)
{
    // Program with one loop (backward) branch; profile that never saw it.
    CompileOptions options;
    options.include_prelude = false;
    isa::Program prog = compile(
        "int main() { int n = 0; while (n < getc()) n++; return n; }",
        options);
    HeuristicPredictor heuristic(prog, Heuristic::kBackwardTaken);
    profile::ProfileDb empty("p", prog.fingerprint(),
                             prog.branch_sites.size());
    ProfilePredictor p(empty, heuristic);
    // Find the backward loop site and check the fallback applied.
    bool found = false;
    for (size_t i = 0; i < prog.branch_sites.size(); ++i) {
        if (prog.branch_sites[i].backward) {
            EXPECT_TRUE(p.predictTaken(static_cast<int>(i)));
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Evaluate, ClosedFormScoring)
{
    auto stats = statsWith({{10, 9}, {10, 2}});
    ProfilePredictor p(dbWith({{10, 9}, {10, 2}}));
    auto q = evaluate(stats, p);
    EXPECT_EQ(q.executed, 20);
    EXPECT_EQ(q.correct, 9 + 8);
    EXPECT_EQ(q.mispredicted, 1 + 2);
    EXPECT_DOUBLE_EQ(q.percentCorrect(), 85.0);
}

TEST(Evaluate, SelfPredictionIsOptimalPerSite)
{
    // Against any other static predictor, the self profile is at least
    // as good on every site (it picks the majority).
    auto stats = statsWith({{100, 73}, {50, 2}, {7, 7}, {9, 5}});
    ProfilePredictor self(
        profile::ProfileDb("p", 1, stats));
    auto self_quality = evaluate(stats, self);
    for (int mask = 0; mask < 16; ++mask) {
        // Enumerate all 16 possible static predictors over 4 sites.
        class Fixed : public StaticPredictor
        {
          public:
            explicit Fixed(int mask) : mask_(mask) {}
            bool
            predictTaken(int site) const override
            {
                return (mask_ >> site) & 1;
            }

          private:
            int mask_;
        };
        Fixed other(mask);
        EXPECT_GE(self_quality.correct, evaluate(stats, other).correct)
            << "mask " << mask;
    }
}

TEST(Evaluate, AgreesWithEventByEventScoring)
{
    // The closed-form evaluate() must match StaticAsDynamic observed on
    // the actual event stream.
    isa::Program prog = compile(R"(
        int main() {
            int x = 7, n = 0;
            for (int i = 0; i < 500; i++) {
                x = (x * 1103515245 + 12345) % 2147483648;
                if (x & 1) n++;
                if (x % 10 == 0) n += 2;
            }
            return n & 255;
        })");
    vm::Machine machine(prog);
    vm::RunResult first = machine.run("");
    ProfilePredictor predictor(
        profile::ProfileDb("p", prog.fingerprint(), first.stats));
    StaticAsDynamic observer(predictor);
    machine.run("", {}, &observer);
    auto closed_form = evaluate(first.stats, predictor);
    EXPECT_EQ(observer.total(), closed_form.executed);
    EXPECT_EQ(observer.correct(), closed_form.correct);
}

TEST(Heuristics, AlwaysTakenAndNot)
{
    CompileOptions options;
    options.include_prelude = false;
    isa::Program prog = compile(
        "int main() { if (getc()) return 1; return 0; }", options);
    HeuristicPredictor taken(prog, Heuristic::kAlwaysTaken);
    HeuristicPredictor not_taken(prog, Heuristic::kAlwaysNotTaken);
    for (size_t i = 0; i < prog.branch_sites.size(); ++i) {
        EXPECT_TRUE(taken.predictTaken(static_cast<int>(i)));
        EXPECT_FALSE(not_taken.predictTaken(static_cast<int>(i)));
    }
}

TEST(Heuristics, OpcodeRules)
{
    CompileOptions options;
    options.include_prelude = false;
    isa::Program prog = compile(R"(
        int main() {
            int x = getc(), n = 0;
            while (n < x) n++;       // loop -> taken
            if (x == 5) n += 1;      // equality -> not taken
            if (x != 9) n += 2;      // inequality -> taken
            switch (x) { case 1: n = 0; }  // case -> not taken
            return n;
        })",
        options);
    HeuristicPredictor p(prog, Heuristic::kOpcodeRules);
    for (size_t i = 0; i < prog.branch_sites.size(); ++i) {
        const auto &site = prog.branch_sites[i];
        bool predicted = p.predictTaken(static_cast<int>(i));
        if (site.kind == isa::BranchKind::kLoop && site.backward)
            EXPECT_TRUE(predicted);
        else if (site.kind == isa::BranchKind::kSwitchCase)
            EXPECT_FALSE(predicted);
        else if (site.compare == isa::Opcode::kCmpEq &&
                 site.kind == isa::BranchKind::kIf) {
            EXPECT_FALSE(predicted);
        } else if (site.compare == isa::Opcode::kCmpNe &&
                   site.kind == isa::BranchKind::kIf && !site.backward) {
            EXPECT_TRUE(predicted);
        }
    }
}

TEST(Dynamic, OneBitFollowsLastDirection)
{
    OneBitPredictor p(1);
    // Initial prediction: not taken.
    p.onBranch(0, true);  // predicted not-taken, was taken: miss
    p.onBranch(0, true);  // predicted taken: hit
    p.onBranch(0, false); // predicted taken: miss
    p.onBranch(0, false); // predicted not-taken: hit
    EXPECT_EQ(p.total(), 4);
    EXPECT_EQ(p.correct(), 2);
    EXPECT_EQ(p.mispredicted(), 2);
}

TEST(Dynamic, TwoBitHysteresis)
{
    TwoBitPredictor p(1); // starts weakly not-taken (1)
    // First taken event is mispredicted (counter 1 -> 2); the second is
    // predicted taken (counter 2 -> 3).
    p.onBranch(0, true);
    p.onBranch(0, true);
    EXPECT_EQ(p.correct(), 1);
    // One not-taken blip: predicted taken (counter 3 -> 2): miss.
    p.onBranch(0, false);
    EXPECT_EQ(p.correct(), 1);
    // Still predicts taken after a single blip (the 2-bit advantage).
    p.onBranch(0, true);
    EXPECT_EQ(p.correct(), 2);
    EXPECT_EQ(p.total(), 4);
}

TEST(Dynamic, TwoBitBeatsOneBitOnAlternatingBlips)
{
    // Pattern: T T T N T T T N ... classic case where 1-bit pays twice
    // per blip and 2-bit pays once.
    OneBitPredictor one(1);
    TwoBitPredictor two(1);
    for (int i = 0; i < 400; ++i) {
        bool taken = i % 4 != 3;
        one.onBranch(0, taken);
        two.onBranch(0, taken);
    }
    EXPECT_GT(two.correct(), one.correct());
}

TEST(Dynamic, GShareLearnsHistoryCorrelatedPatterns)
{
    // A strict alternation T N T N ... on one site defeats a per-site
    // 2-bit counter (~50%) but is perfectly predictable from one bit of
    // global history once gshare's counters warm up.
    TwoBitPredictor two_bit(1);
    GSharePredictor gshare(/*log2_entries=*/10, /*history_bits=*/4);
    for (int i = 0; i < 2000; ++i) {
        bool taken = (i & 1) == 0;
        two_bit.onBranch(0, taken);
        gshare.onBranch(0, taken);
    }
    EXPECT_LT(two_bit.percentCorrect(), 60.0);
    EXPECT_GT(gshare.percentCorrect(), 95.0);
}

TEST(Dynamic, GShareAliasingHurtsAtTinyTables)
{
    // Many independent biased branches visited in random order: global
    // history carries no signal here, so compare pure table-size
    // aliasing with history disabled. A 2-entry table smashes opposing
    // biases together (~50%); a large table separates the sites.
    Rng rng(123);
    GSharePredictor tiny(/*log2_entries=*/1, /*history_bits=*/0);
    GSharePredictor big(/*log2_entries=*/14, /*history_bits=*/0);
    for (int i = 0; i < 20000; ++i) {
        int site = static_cast<int>(rng.below(64));
        // Per-site fixed bias keyed to bit 1, so a 2-entry table (which
        // indexes by bit 0) sees a 50/50 mix in each slot.
        bool taken = (site & 2) ? !rng.chance(0.05) : rng.chance(0.05);
        tiny.onBranch(site, taken);
        big.onBranch(site, taken);
    }
    EXPECT_GT(big.percentCorrect(), tiny.percentCorrect() + 20.0);
    EXPECT_GT(big.percentCorrect(), 90.0);
    EXPECT_LT(tiny.percentCorrect(), 65.0);
}

TEST(Dynamic, PercentCorrectEmptyIsHundred)
{
    OneBitPredictor p(4);
    EXPECT_DOUBLE_EQ(p.percentCorrect(), 100.0);
}

TEST(Heuristics, Names)
{
    EXPECT_EQ(heuristicName(Heuristic::kAlwaysTaken), "always-taken");
    EXPECT_EQ(heuristicName(Heuristic::kBackwardTaken), "backward-taken");
    EXPECT_EQ(heuristicName(Heuristic::kOpcodeRules), "opcode-rules");
}

} // namespace
} // namespace ifprob::predict

/**
 * @file
 * Tests for the branch observatory (src/characterize/): fingerprint
 * math on hand-checked direction streams (entropies, run lengths, RLE
 * proxy, best-static loss, local-vs-global history agreement),
 * RunLengthHist bucket/merge behaviour, SiteSummary stability
 * accounting, and replay determinism — the property the CI byte-diff
 * of bench/characterize at different job counts rests on.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "characterize/characterize.h"
#include "characterize/fingerprint.h"
#include "compiler/pipeline.h"
#include "ilp/runlength.h"
#include "trace/trace.h"
#include "vm/machine.h"

namespace ifprob::characterize {
namespace {

/** Drive one site with a direction pattern and return its fingerprint. */
BranchFingerprint
fingerprintOf(const std::vector<bool> &stream)
{
    FingerprintBuilder builder(1);
    for (bool taken : stream)
        builder.onBranch(0, taken, 0);
    auto sites = std::move(builder).take();
    EXPECT_EQ(sites.size(), 1u);
    return sites.front();
}

TEST(CharacterizeFingerprint, CountsAndBestStaticLoss)
{
    // T T T T T N N N: majority taken, so the optimal static direction
    // is "taken" and the loss is the 3 not-taken executions.
    auto fp = fingerprintOf({true, true, true, true, true, false, false,
                             false});
    EXPECT_EQ(fp.executed, 8);
    EXPECT_EQ(fp.taken, 5);
    EXPECT_DOUBLE_EQ(fp.takenRate(), 5.0 / 8.0);
    EXPECT_EQ(fp.bestStaticLoss(), 3);
}

TEST(CharacterizeFingerprint, EntropyH0)
{
    // 50/50 stream: H0 = 1 bit exactly.
    auto balanced = fingerprintOf({true, false, true, false});
    EXPECT_DOUBLE_EQ(balanced.entropyH0(), 1.0);

    // Constant stream: H0 = 0 (0 log 0 convention).
    auto constant = fingerprintOf({true, true, true, true});
    EXPECT_DOUBLE_EQ(constant.entropyH0(), 0.0);

    // p = 1/4: H(1/4) = 2 - (3/4) log2 3 ~ 0.8113.
    auto biased = fingerprintOf({true, false, false, false});
    EXPECT_NEAR(biased.entropyH0(), 0.811278, 1e-6);
}

TEST(CharacterizeFingerprint, EntropyH1SeesStructureH0Misses)
{
    // Strict alternation: H0 = 1 bit (50/50), but knowing the previous
    // direction determines the next one, so H1 = 0.
    std::vector<bool> alternating;
    for (int i = 0; i < 64; ++i)
        alternating.push_back(i % 2 == 0);
    auto fp = fingerprintOf(alternating);
    EXPECT_DOUBLE_EQ(fp.entropyH0(), 1.0);
    EXPECT_DOUBLE_EQ(fp.entropyH1(), 0.0);
    // Transitions: 63 of them, all direction flips.
    EXPECT_EQ(fp.transitions[0][1] + fp.transitions[1][0], 63);
    EXPECT_EQ(fp.transitions[0][0] + fp.transitions[1][1], 0);

    // Single execution: no transitions, H1 defined as 0.
    auto single = fingerprintOf({true});
    EXPECT_DOUBLE_EQ(single.entropyH1(), 0.0);
}

TEST(CharacterizeFingerprint, RunLengthsAndRleProxy)
{
    // T T T T N N T: runs 4, 2, and the still-open 1 (closed by take()).
    auto fp = fingerprintOf(
        {true, true, true, true, false, false, true});
    EXPECT_EQ(fp.runs.count, 3);
    EXPECT_EQ(fp.runs.sum, 7);
    EXPECT_EQ(fp.runs.max, 4);
    // Each run length fits one LEB128 byte.
    EXPECT_EQ(fp.rle_bytes, 3);
    EXPECT_DOUBLE_EQ(fp.rleBitsPerBranch(), 8.0 * 3.0 / 7.0);

    // A 200-long constant streak needs two varint bytes (200 >= 128)
    // and compresses to well under one bit per branch.
    std::vector<bool> streak(200, true);
    auto constant = fingerprintOf(streak);
    EXPECT_EQ(constant.runs.count, 1);
    EXPECT_EQ(constant.rle_bytes, 2);
    EXPECT_LT(constant.rleBitsPerBranch(), 0.1);

    // Strict alternation: every branch is its own one-byte run.
    std::vector<bool> alternating;
    for (int i = 0; i < 64; ++i)
        alternating.push_back(i % 2 == 0);
    auto flip = fingerprintOf(alternating);
    EXPECT_EQ(flip.runs.count, 64);
    EXPECT_DOUBLE_EQ(flip.rleBitsPerBranch(), 8.0);
}

TEST(CharacterizeFingerprint, SelfCorrelatedBranchFavorsLocalHistory)
{
    // Site 0 strictly alternates (perfectly predicted by its own last
    // direction); site 1 is pseudo-random noise that pollutes the
    // shared global history register between site 0's executions.
    FingerprintBuilder builder(2);
    uint64_t lcg = 0x2545F4914F6CDD1Dull;
    for (int i = 0; i < 400; ++i) {
        builder.onBranch(0, i % 2 == 0, 0);
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        builder.onBranch(1, (lcg >> 33) & 1, 0);
    }
    auto sites = std::move(builder).take();
    ASSERT_EQ(sites.size(), 2u);
    const BranchFingerprint &self = sites[0];
    // depth index 0 is k = 1.
    EXPECT_GE(self.localAgreement(0), 95.0);
    EXPECT_LE(self.globalAgreement(0), 80.0);
}

TEST(CharacterizeFingerprint, NeighborCorrelatedBranchFavorsGlobalHistory)
{
    // Site 1 copies whatever site 0 just did; site 0 itself is
    // pseudo-random. Site 1's own history is noise, but the last bit of
    // the global register *is* site 0's outcome — exactly the
    // correlation a shared-history predictor exploits.
    FingerprintBuilder builder(2);
    uint64_t lcg = 0x9E3779B97F4A7C15ull;
    for (int i = 0; i < 400; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const bool coin = (lcg >> 33) & 1;
        builder.onBranch(0, coin, 0);
        builder.onBranch(1, coin, 0);
    }
    auto sites = std::move(builder).take();
    ASSERT_EQ(sites.size(), 2u);
    const BranchFingerprint &copier = sites[1];
    EXPECT_GE(copier.globalAgreement(0), 95.0);
    EXPECT_LE(copier.localAgreement(0), 80.0);
}

TEST(CharacterizeFingerprint, IgnoresOutOfRangeSites)
{
    FingerprintBuilder builder(1);
    builder.onBranch(-1, true, 0);
    builder.onBranch(7, true, 0);
    builder.onBranch(0, true, 0);
    auto sites = std::move(builder).take();
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0].executed, 1);
}

// --- RunLengthHist ----------------------------------------------------------

TEST(CharacterizeRunLengthHist, BucketsAndPercentiles)
{
    ilp::RunLengthHist h;
    EXPECT_EQ(h.percentileUpperBound(50.0), 0);
    h.add(0);  // ignored
    h.add(-3); // ignored
    h.add(1);  // bucket 0: [1,1]
    h.add(2);  // bucket 1: [2,3]
    h.add(3);  // bucket 1
    h.add(40); // bucket 5: [32,63]
    EXPECT_EQ(h.count, 4);
    EXPECT_EQ(h.sum, 46);
    EXPECT_EQ(h.max, 40);
    EXPECT_DOUBLE_EQ(h.mean(), 46.0 / 4.0);
    EXPECT_EQ(h.histogram[0], 1);
    EXPECT_EQ(h.histogram[1], 2);
    EXPECT_EQ(h.histogram[5], 1);
    // Median of 4 lands in bucket 1 -> inclusive bound 3.
    EXPECT_EQ(h.percentileUpperBound(50.0), 3);
    EXPECT_EQ(h.percentileUpperBound(100.0), 63);
}

TEST(CharacterizeRunLengthHist, MergeMatchesSequentialAdds)
{
    ilp::RunLengthHist a, b, both;
    for (int64_t run : {1, 5, 9})
        a.add(run);
    for (int64_t run : {2, 5, 700})
        b.add(run);
    for (int64_t run : {1, 5, 9, 2, 5, 700})
        both.add(run);
    a.merge(b);
    EXPECT_EQ(a.count, both.count);
    EXPECT_EQ(a.sum, both.sum);
    EXPECT_EQ(a.max, both.max);
    EXPECT_EQ(a.histogram, both.histogram);
}

// --- SiteSummary ------------------------------------------------------------

TEST(CharacterizeSiteSummary, StabilityAndFlipLoss)
{
    SiteSummary s;
    EXPECT_DOUBLE_EQ(s.stabilityPct(), 100.0); // vacuous when unexecuted
    s.datasets_executed = 4;
    s.datasets_agreeing = 3;
    s.best_static_loss = 100;
    s.pooled_static_loss = 140;
    EXPECT_DOUBLE_EQ(s.stabilityPct(), 75.0);
    EXPECT_EQ(s.flipLoss(), 40);
}

// --- replay determinism -----------------------------------------------------

TEST(CharacterizeReplay, DoubleReplayIsBitIdentical)
{
    // The property the jobs=1 vs jobs=4 byte-diff in CI rests on:
    // fingerprinting is a pure function of the recorded trace.
    const char *source = R"(
int main() {
    int i, x, count;
    x = 9973;
    count = 0;
    for (i = 0; i < 5000; i++) {
        x = (x * 1103515245 + 12345) % 2147483648;
        if (x & 1)
            count = count + 1;
        if ((x & 3) == 2)
            count = count + 2;
    }
    return count & 255;
})";
    isa::Program p = compile(source);
    trace::Trace t =
        trace::record(p, "", vm::RunLimits{}, "kernel", "builtin");
    ASSERT_GT(t.branch_events, 0);

    DatasetFingerprint a = fingerprintTrace(t, p.branch_sites.size());
    DatasetFingerprint b = fingerprintTrace(t, p.branch_sites.size());
    EXPECT_EQ(a.instructions, t.stats.instructions);
    EXPECT_EQ(a.branches, t.branch_events);
    ASSERT_EQ(a.sites.size(), b.sites.size());
    ASSERT_FALSE(a.sites.empty());
    int64_t executed_total = 0;
    for (size_t i = 0; i < a.sites.size(); ++i) {
        const BranchFingerprint &fa = a.sites[i];
        const BranchFingerprint &fb = b.sites[i];
        EXPECT_EQ(fa.site_id, fb.site_id);
        EXPECT_EQ(fa.executed, fb.executed);
        EXPECT_EQ(fa.taken, fb.taken);
        EXPECT_EQ(fa.transitions, fb.transitions);
        EXPECT_EQ(fa.rle_bytes, fb.rle_bytes);
        EXPECT_EQ(fa.runs.histogram, fb.runs.histogram);
        EXPECT_EQ(fa.local_correct, fb.local_correct);
        EXPECT_EQ(fa.global_correct, fb.global_correct);
        executed_total += fa.executed;
        // Run lengths partition the stream: sum == executed.
        EXPECT_EQ(fa.runs.sum, fa.executed);
    }
    EXPECT_EQ(executed_total, t.branch_events);
}

} // namespace
} // namespace ifprob::characterize

/**
 * @file
 * Unit tests for the CFG block graph and trace selection.
 */
#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "ilp/trace.h"
#include "isa/cfg.h"
#include "predict/heuristic_predictor.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "vm/machine.h"

namespace ifprob {
namespace {

isa::Program
compileBare(std::string_view src)
{
    CompileOptions options;
    options.include_prelude = false;
    return compile(src, options);
}

TEST(BlockGraph, StraightLineIsOneBlock)
{
    isa::Program p = compileBare("int main() { return 1 + 2; }");
    isa::BlockGraph g(p.functions[static_cast<size_t>(p.entry)]);
    // Two blocks: [movi, ret] plus the unreachable defensive epilogue
    // the code generator appends.
    EXPECT_EQ(g.numBlocks(), 2);
    EXPECT_EQ(g.size(0), 2);
    EXPECT_TRUE(g.successors(0).empty()); // ends in ret
    EXPECT_TRUE(g.predecessors(1).empty()); // epilogue is unreachable
}

TEST(BlockGraph, DiamondHasFourBlocksAndEdges)
{
    isa::Program p = compileBare(
        "int main() { int x = getc(); int n; if (x > 0) n = 1; else "
        "n = 2; return n; }");
    const auto &fn = p.functions[static_cast<size_t>(p.entry)];
    isa::BlockGraph g(fn);
    ASSERT_GE(g.numBlocks(), 4);
    // Entry block ends with the branch: two successor edges with the
    // branch site attached.
    int entry_block = g.blockOf(0);
    const auto &succs = g.successors(entry_block);
    ASSERT_EQ(succs.size(), 2u);
    EXPECT_EQ(succs[0].kind, isa::EdgeKind::kBranchTaken);
    EXPECT_EQ(succs[1].kind, isa::EdgeKind::kBranchFall);
    EXPECT_EQ(succs[0].branch_site, succs[1].branch_site);
    EXPECT_GE(succs[0].branch_site, 0);
    // Every pc maps into a block whose [start, end) contains it.
    for (int pc = 0; pc < static_cast<int>(fn.code.size()); ++pc) {
        int b = g.blockOf(pc);
        EXPECT_GE(pc, g.start(b));
        EXPECT_LT(pc, g.end(b));
    }
}

TEST(BlockGraph, PredecessorsMirrorSuccessors)
{
    isa::Program p = compileBare(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 10; i++)
                if (i & 1)
                    n += i;
            return n;
        })");
    const auto &fn = p.functions[static_cast<size_t>(p.entry)];
    isa::BlockGraph g(fn);
    int edge_count = 0, pred_count = 0;
    for (int b = 0; b < g.numBlocks(); ++b) {
        edge_count += static_cast<int>(g.successors(b).size());
        pred_count += static_cast<int>(g.predecessors(b).size());
        for (const auto &edge : g.successors(b)) {
            // The reverse edge exists.
            bool found = false;
            for (const auto &pred : g.predecessors(edge.to))
                found = found || pred.to == b;
            EXPECT_TRUE(found);
        }
    }
    EXPECT_EQ(edge_count, pred_count);
}

TEST(TraceSelection, FollowsPredictedHotPath)
{
    // A loop whose body branch is taken 90% of the time; feedback should
    // build one long trace through loop body + hot side.
    const char *src = R"(
        int main() {
            int x = 7, n = 0;
            for (int i = 0; i < 1000; i++) {
                x = (x * 1103515245 + 12345) % 2147483648;
                if (x % 10 != 0) {      // hot: ~90% taken
                    n += 1;
                } else {
                    n += 100;
                }
            }
            return n & 255;
        })";
    isa::Program p = compileBare(src);
    vm::Machine m(p);
    auto run = m.run("");
    profile::ProfileDb db("p", p.fingerprint(), run.stats);
    predict::ProfilePredictor feedback(db);
    auto traces = ilp::selectTraces(p, feedback, db);
    ASSERT_FALSE(traces.traces.empty());
    // The hottest trace covers the loop body including the hot arm.
    const ilp::Trace *hot = &traces.traces[0];
    for (const auto &t : traces.traces)
        if (t.weight > hot->weight)
            hot = &t;
    EXPECT_GE(hot->blocks.size(), 3u);
    EXPECT_GT(hot->instructions, 10);

    // An anti-predictor (predict everything opposite to feedback) must
    // not produce a better weighted mean.
    class Inverted : public predict::StaticPredictor
    {
      public:
        explicit Inverted(const predict::StaticPredictor &inner)
            : inner_(inner)
        {
        }
        bool
        predictTaken(int site) const override
        {
            return !inner_.predictTaken(site);
        }

      private:
        const predict::StaticPredictor &inner_;
    };
    Inverted inverted(feedback);
    auto bad_traces = ilp::selectTraces(p, inverted, db);
    EXPECT_GE(traces.weightedMeanLength(),
              bad_traces.weightedMeanLength());
}

TEST(TraceSelection, EveryBlockAssignedExactlyOnce)
{
    isa::Program p = compileBare(R"(
        int f(int v) {
            if (v > 10)
                return v * 2;
            return v + 1;
        }
        int main() {
            int n = 0;
            for (int i = 0; i < 50; i++) {
                switch (i % 3) {
                  case 0: n += f(i); break;
                  case 1: n -= 1; break;
                  default: n += 2;
                }
            }
            return n & 255;
        })");
    vm::Machine m(p);
    auto run = m.run("");
    profile::ProfileDb db("p", p.fingerprint(), run.stats);
    predict::ProfilePredictor feedback(db);
    auto traces = ilp::selectTraces(p, feedback, db);

    // Per function: the union of trace blocks partitions the blocks.
    for (size_t fi = 0; fi < p.functions.size(); ++fi) {
        isa::BlockGraph g(p.functions[fi]);
        std::vector<int> seen(static_cast<size_t>(g.numBlocks()), 0);
        for (const auto &t : traces.traces) {
            if (t.function != static_cast<int>(fi))
                continue;
            for (int b : t.blocks)
                ++seen[static_cast<size_t>(b)];
        }
        for (int b = 0; b < g.numBlocks(); ++b)
            EXPECT_EQ(seen[static_cast<size_t>(b)], 1)
                << "function " << fi << " block " << b;
    }
    // Total instructions across traces == total code size.
    int64_t total = 0;
    for (const auto &t : traces.traces)
        total += t.instructions;
    EXPECT_EQ(total, p.staticSize());
}

TEST(TraceSelection, TracesAreAcyclic)
{
    isa::Program p = compileBare(R"(
        int main() {
            int n = 0;
            while (n < 100)
                n += 3;
            return n;
        })");
    vm::Machine m(p);
    auto run = m.run("");
    profile::ProfileDb db("p", p.fingerprint(), run.stats);
    predict::ProfilePredictor feedback(db);
    auto traces = ilp::selectTraces(p, feedback, db);
    for (const auto &t : traces.traces) {
        // No block repeats within a trace (acyclicity).
        auto blocks = t.blocks;
        std::sort(blocks.begin(), blocks.end());
        EXPECT_TRUE(std::adjacent_find(blocks.begin(), blocks.end()) ==
                    blocks.end());
    }
}

} // namespace
} // namespace ifprob

/**
 * @file
 * Unit tests for the CFG block graph, trace selection, and the
 * branch-trace record/replay plane (TracePlane*, docs/trace.md).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <tuple>

#include <unistd.h>

#include "analysis/soa.h"
#include "characterize/fingerprint.h"
#include "compiler/pipeline.h"
#include "exec/pool.h"
#include "harness/runner.h"
#include "ilp/runlength.h"
#include "ilp/trace.h"
#include "isa/cfg.h"
#include "predict/dynamic_predictor.h"
#include "predict/heuristic_predictor.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "support/error.h"
#include "support/mapped_file.h"
#include "trace/trace.h"
#include "vm/machine.h"
#include "vm/observer.h"
#include "workloads/workload.h"

namespace ifprob {
namespace {

isa::Program
compileBare(std::string_view src)
{
    CompileOptions options;
    options.include_prelude = false;
    return compile(src, options);
}

TEST(BlockGraph, StraightLineIsOneBlock)
{
    isa::Program p = compileBare("int main() { return 1 + 2; }");
    isa::BlockGraph g(p.functions[static_cast<size_t>(p.entry)]);
    // Two blocks: [movi, ret] plus the unreachable defensive epilogue
    // the code generator appends.
    EXPECT_EQ(g.numBlocks(), 2);
    EXPECT_EQ(g.size(0), 2);
    EXPECT_TRUE(g.successors(0).empty()); // ends in ret
    EXPECT_TRUE(g.predecessors(1).empty()); // epilogue is unreachable
}

TEST(BlockGraph, DiamondHasFourBlocksAndEdges)
{
    isa::Program p = compileBare(
        "int main() { int x = getc(); int n; if (x > 0) n = 1; else "
        "n = 2; return n; }");
    const auto &fn = p.functions[static_cast<size_t>(p.entry)];
    isa::BlockGraph g(fn);
    ASSERT_GE(g.numBlocks(), 4);
    // Entry block ends with the branch: two successor edges with the
    // branch site attached.
    int entry_block = g.blockOf(0);
    const auto &succs = g.successors(entry_block);
    ASSERT_EQ(succs.size(), 2u);
    EXPECT_EQ(succs[0].kind, isa::EdgeKind::kBranchTaken);
    EXPECT_EQ(succs[1].kind, isa::EdgeKind::kBranchFall);
    EXPECT_EQ(succs[0].branch_site, succs[1].branch_site);
    EXPECT_GE(succs[0].branch_site, 0);
    // Every pc maps into a block whose [start, end) contains it.
    for (int pc = 0; pc < static_cast<int>(fn.code.size()); ++pc) {
        int b = g.blockOf(pc);
        EXPECT_GE(pc, g.start(b));
        EXPECT_LT(pc, g.end(b));
    }
}

TEST(BlockGraph, PredecessorsMirrorSuccessors)
{
    isa::Program p = compileBare(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 10; i++)
                if (i & 1)
                    n += i;
            return n;
        })");
    const auto &fn = p.functions[static_cast<size_t>(p.entry)];
    isa::BlockGraph g(fn);
    int edge_count = 0, pred_count = 0;
    for (int b = 0; b < g.numBlocks(); ++b) {
        edge_count += static_cast<int>(g.successors(b).size());
        pred_count += static_cast<int>(g.predecessors(b).size());
        for (const auto &edge : g.successors(b)) {
            // The reverse edge exists.
            bool found = false;
            for (const auto &pred : g.predecessors(edge.to))
                found = found || pred.to == b;
            EXPECT_TRUE(found);
        }
    }
    EXPECT_EQ(edge_count, pred_count);
}

TEST(TraceSelection, FollowsPredictedHotPath)
{
    // A loop whose body branch is taken 90% of the time; feedback should
    // build one long trace through loop body + hot side.
    const char *src = R"(
        int main() {
            int x = 7, n = 0;
            for (int i = 0; i < 1000; i++) {
                x = (x * 1103515245 + 12345) % 2147483648;
                if (x % 10 != 0) {      // hot: ~90% taken
                    n += 1;
                } else {
                    n += 100;
                }
            }
            return n & 255;
        })";
    isa::Program p = compileBare(src);
    vm::Machine m(p);
    auto run = m.run("");
    profile::ProfileDb db("p", p.fingerprint(), run.stats);
    predict::ProfilePredictor feedback(db);
    auto traces = ilp::selectTraces(p, feedback, db);
    ASSERT_FALSE(traces.traces.empty());
    // The hottest trace covers the loop body including the hot arm.
    const ilp::Trace *hot = &traces.traces[0];
    for (const auto &t : traces.traces)
        if (t.weight > hot->weight)
            hot = &t;
    EXPECT_GE(hot->blocks.size(), 3u);
    EXPECT_GT(hot->instructions, 10);

    // An anti-predictor (predict everything opposite to feedback) must
    // not produce a better weighted mean.
    class Inverted : public predict::StaticPredictor
    {
      public:
        explicit Inverted(const predict::StaticPredictor &inner)
            : inner_(inner)
        {
        }
        bool
        predictTaken(int site) const override
        {
            return !inner_.predictTaken(site);
        }

      private:
        const predict::StaticPredictor &inner_;
    };
    Inverted inverted(feedback);
    auto bad_traces = ilp::selectTraces(p, inverted, db);
    EXPECT_GE(traces.weightedMeanLength(),
              bad_traces.weightedMeanLength());
}

TEST(TraceSelection, EveryBlockAssignedExactlyOnce)
{
    isa::Program p = compileBare(R"(
        int f(int v) {
            if (v > 10)
                return v * 2;
            return v + 1;
        }
        int main() {
            int n = 0;
            for (int i = 0; i < 50; i++) {
                switch (i % 3) {
                  case 0: n += f(i); break;
                  case 1: n -= 1; break;
                  default: n += 2;
                }
            }
            return n & 255;
        })");
    vm::Machine m(p);
    auto run = m.run("");
    profile::ProfileDb db("p", p.fingerprint(), run.stats);
    predict::ProfilePredictor feedback(db);
    auto traces = ilp::selectTraces(p, feedback, db);

    // Per function: the union of trace blocks partitions the blocks.
    for (size_t fi = 0; fi < p.functions.size(); ++fi) {
        isa::BlockGraph g(p.functions[fi]);
        std::vector<int> seen(static_cast<size_t>(g.numBlocks()), 0);
        for (const auto &t : traces.traces) {
            if (t.function != static_cast<int>(fi))
                continue;
            for (int b : t.blocks)
                ++seen[static_cast<size_t>(b)];
        }
        for (int b = 0; b < g.numBlocks(); ++b)
            EXPECT_EQ(seen[static_cast<size_t>(b)], 1)
                << "function " << fi << " block " << b;
    }
    // Total instructions across traces == total code size.
    int64_t total = 0;
    for (const auto &t : traces.traces)
        total += t.instructions;
    EXPECT_EQ(total, p.staticSize());
}

TEST(TraceSelection, TracesAreAcyclic)
{
    isa::Program p = compileBare(R"(
        int main() {
            int n = 0;
            while (n < 100)
                n += 3;
            return n;
        })");
    vm::Machine m(p);
    auto run = m.run("");
    profile::ProfileDb db("p", p.fingerprint(), run.stats);
    predict::ProfilePredictor feedback(db);
    auto traces = ilp::selectTraces(p, feedback, db);
    for (const auto &t : traces.traces) {
        // No block repeats within a trace (acyclicity).
        auto blocks = t.blocks;
        std::sort(blocks.begin(), blocks.end());
        EXPECT_TRUE(std::adjacent_find(blocks.begin(), blocks.end()) ==
                    blocks.end());
    }
}

// ---------------------------------------------------------------------------
// TracePlane: the branch-trace record/replay plane (docs/trace.md).
// ---------------------------------------------------------------------------

/** Observer that logs every event verbatim, for order/parity checks. */
struct EventLog final : vm::BranchObserver
{
    struct Event
    {
        bool is_break;
        int site;
        bool taken;
        int64_t instructions;

        bool
        operator==(const Event &o) const
        {
            return is_break == o.is_break && site == o.site &&
                   taken == o.taken && instructions == o.instructions;
        }
    };
    std::vector<Event> events;

    void
    onBranch(int site, bool taken, int64_t instructions) override
    {
        events.push_back({false, site, taken, instructions});
    }
    void
    onUnavoidableBreak(int64_t instructions) override
    {
        events.push_back({true, 0, false, instructions});
    }
};

const char *kBranchySource = R"(
int main() {
    int i, x, count;
    x = 12345;
    count = 0;
    for (i = 0; i < 2000; i++) {
        x = (x * 1103515245 + 12345) % 2147483648;
        if (x & 1)
            count = count + 1;
        if ((x & 7) == 3)
            count = count - 1;
    }
    return count & 255;
})";

/** Round-trip @p t through the binary format. */
trace::Trace
roundTrip(const trace::Trace &t, uint64_t expected_fingerprint = 0)
{
    std::ostringstream os(std::ios::binary);
    t.save(os);
    std::istringstream is(os.str(), std::ios::binary);
    return trace::Trace::load(is, expected_fingerprint);
}

TEST(TracePlane, RecordRoundTripPreservesEventStream)
{
    isa::Program p = compile(kBranchySource);
    trace::Trace t =
        trace::record(p, "", vm::RunLimits{}, "kernel", "builtin");
    EXPECT_GT(t.branch_events, 4000);
    EXPECT_EQ(t.events, t.branch_events + t.break_events);
    EXPECT_EQ(t.stats.instructions, vm::Machine(p).run("").stats.instructions);

    trace::Trace back = roundTrip(t, p.fingerprint());
    EXPECT_EQ(back.fingerprint, t.fingerprint);
    EXPECT_EQ(back.workload, "kernel");
    EXPECT_EQ(back.dataset, "builtin");
    EXPECT_EQ(back.site_dict, t.site_dict);
    EXPECT_EQ(back.deltas, t.deltas);
    EXPECT_EQ(back.tags, t.tags);
    EXPECT_EQ(back.taken, t.taken);
    EXPECT_EQ(back.sites, t.sites);
    EXPECT_EQ(back.stats.instructions, t.stats.instructions);
    EXPECT_EQ(back.stats.cond_branches, t.stats.cond_branches);

    EventLog from_original, from_loaded, live;
    trace::replay(t, from_original);
    trace::replay(back, from_loaded);
    vm::Machine(p).run("", vm::RunLimits{}, &live);
    EXPECT_EQ(from_original.events, live.events);
    EXPECT_EQ(from_loaded.events, live.events);
}

TEST(TracePlane, BreakInterleavingAndHugeDeltasRoundTrip)
{
    // Drive the Recorder directly: breaks interleaved between branches,
    // plus instruction-count gaps beyond 2^32, which must survive the
    // varint encoding exactly.
    const int64_t kHuge = (int64_t{1} << 37) + 12345;
    EventLog driven;
    trace::Recorder recorder;
    auto branch = [&](int site, bool taken, int64_t at) {
        recorder.onBranch(site, taken, at);
        driven.onBranch(site, taken, at);
    };
    auto brk = [&](int64_t at) {
        recorder.onUnavoidableBreak(at);
        driven.onUnavoidableBreak(at);
    };
    branch(7, true, 10);
    brk(12);
    branch(3, false, 15);
    branch(3, true, 15); // zero delta: two events, same count
    brk(kHuge);          // > 2^32 gap
    branch(900001, true, kHuge + 42); // site id beyond any dense table
    brk(kHuge + 42 + kHuge);

    trace::Trace t = std::move(recorder).take();
    t.fingerprint = 0xfeedfacecafebeefull;
    t.workload = "synthetic";
    t.dataset = "driven";
    EXPECT_EQ(t.events, 7);
    EXPECT_EQ(t.branch_events, 4);
    EXPECT_EQ(t.break_events, 3);
    // Dictionary lists sites in first-appearance order.
    EXPECT_EQ(t.site_dict, (std::vector<int32_t>{7, 3, 900001}));

    trace::Trace back = roundTrip(t, t.fingerprint);
    EventLog replayed;
    trace::replay(back, replayed);
    EXPECT_EQ(replayed.events, driven.events);
}

TEST(TracePlane, LoadRejectsFingerprintMismatch)
{
    isa::Program p = compile(kBranchySource);
    trace::Trace t =
        trace::record(p, "", vm::RunLimits{}, "kernel", "builtin");
    EXPECT_THROW(roundTrip(t, t.fingerprint + 1), Error);
}

/** The dynamic_baselines observer set, live vs replayed, one cell. */
void
expectReplayMatchesLive(harness::Runner &runner,
                        const std::string &workload,
                        const std::string &dataset)
{
    SCOPED_TRACE(workload + "/" + dataset);
    const isa::Program &prog = runner.program(workload);
    const auto &w = workloads::get(workload);
    const workloads::Dataset *ds = nullptr;
    for (const auto &d : w.datasets) {
        if (d.name == dataset)
            ds = &d;
    }
    ASSERT_NE(ds, nullptr);
    vm::RunLimits limits;
    limits.max_instructions = 4'000'000'000ll;

    predict::OneBitPredictor live_1bit(prog.branch_sites.size());
    predict::TwoBitPredictor live_2bit(prog.branch_sites.size());
    predict::GSharePredictor live_gshare(12, 12);
    profile::ProfileDb db(workload, prog.fingerprint(),
                          runner.stats(workload, dataset));
    predict::ProfilePredictor self(db);
    ilp::RunLengthAnalyzer live_runlength(self);
    vm::Machine machine(prog);
    machine.run(ds->input, limits, &live_1bit);
    machine.run(ds->input, limits, &live_2bit);
    machine.run(ds->input, limits, &live_gshare);
    machine.run(ds->input, limits, &live_runlength);

    const trace::Trace &t = runner.traceOf(workload, dataset);
    predict::OneBitPredictor replay_1bit(prog.branch_sites.size());
    predict::TwoBitPredictor replay_2bit(prog.branch_sites.size());
    predict::GSharePredictor replay_gshare(12, 12);
    ilp::RunLengthAnalyzer replay_runlength(self);
    trace::replay(t, {&replay_1bit, &replay_2bit, &replay_gshare,
                      &replay_runlength});

    EXPECT_EQ(replay_1bit.total(), live_1bit.total());
    EXPECT_EQ(replay_1bit.correct(), live_1bit.correct());
    EXPECT_EQ(replay_2bit.total(), live_2bit.total());
    EXPECT_EQ(replay_2bit.correct(), live_2bit.correct());
    EXPECT_EQ(replay_gshare.total(), live_gshare.total());
    EXPECT_EQ(replay_gshare.correct(), live_gshare.correct());

    auto live_summary =
        std::move(live_runlength).summary(t.stats.instructions);
    auto replay_summary =
        std::move(replay_runlength).summary(t.stats.instructions);
    EXPECT_EQ(replay_summary.runs, live_summary.runs);
    EXPECT_EQ(replay_summary.histogram, live_summary.histogram);
    EXPECT_EQ(replay_summary.breaks, live_summary.breaks);
}

const std::vector<std::pair<const char *, const char *>> kMatrixSample = {
    {"eqntott", "add4"},
    {"compress", "cmprssc"},
    {"mcc", "c_metric"},
    {"espresso", "bca"},
};

TEST(TracePlane, ReplayMatchesLiveSerial)
{
    ::setenv("IFPROB_CACHE", "off", 1);
    {
        harness::Runner runner;
        for (const auto &[w, d] : kMatrixSample)
            expectReplayMatchesLive(runner, w, d);
    }
    ::unsetenv("IFPROB_CACHE");
}

TEST(TracePlane, ReplayMatchesLiveParallel)
{
    // jobs=4: the same differential with every cell in flight at once,
    // hammering traceOf's record-once path from the pool workers.
    ::setenv("IFPROB_CACHE", "off", 1);
    {
        harness::Runner runner;
        exec::Pool pool(4);
        exec::parallelFor(pool, kMatrixSample.size(), [&](size_t i) {
            expectReplayMatchesLive(runner, kMatrixSample[i].first,
                                    kMatrixSample[i].second);
        });
    }
    ::unsetenv("IFPROB_CACHE");
}

TEST(TracePlane, MultiObserverMatchesSequentialDelivery)
{
    isa::Program p = compile(kBranchySource);

    // Live fan-out vs sequential live runs.
    predict::OneBitPredictor fan_1bit(p.branch_sites.size());
    predict::TwoBitPredictor fan_2bit(p.branch_sites.size());
    EventLog fan_log;
    vm::MultiObserver fan({&fan_1bit, &fan_2bit, &fan_log});
    vm::Machine m(p);
    m.run("", vm::RunLimits{}, &fan);

    predict::OneBitPredictor seq_1bit(p.branch_sites.size());
    predict::TwoBitPredictor seq_2bit(p.branch_sites.size());
    EventLog seq_log;
    m.run("", vm::RunLimits{}, &seq_1bit);
    m.run("", vm::RunLimits{}, &seq_2bit);
    m.run("", vm::RunLimits{}, &seq_log);

    EXPECT_EQ(fan_1bit.total(), seq_1bit.total());
    EXPECT_EQ(fan_1bit.correct(), seq_1bit.correct());
    EXPECT_EQ(fan_2bit.total(), seq_2bit.total());
    EXPECT_EQ(fan_2bit.correct(), seq_2bit.correct());
    EXPECT_EQ(fan_log.events, seq_log.events);

    // Replay fan-out vs sequential replays of the same trace.
    trace::Trace t =
        trace::record(p, "", vm::RunLimits{}, "kernel", "builtin");
    predict::TwoBitPredictor rf_2bit(p.branch_sites.size());
    EventLog rf_log;
    trace::replay(t, {&rf_2bit, &rf_log});
    predict::TwoBitPredictor rs_2bit(p.branch_sites.size());
    EventLog rs_log;
    trace::replay(t, rs_2bit);
    trace::replay(t, rs_log);
    EXPECT_EQ(rf_2bit.total(), rs_2bit.total());
    EXPECT_EQ(rf_2bit.correct(), rs_2bit.correct());
    EXPECT_EQ(rf_log.events, rs_log.events);
    EXPECT_EQ(rf_log.events, fan_log.events);
}

/** Scoped IFPROB_CACHE override pointing at a fresh temp directory. */
class TraceCacheDirGuard
{
  public:
    TraceCacheDirGuard()
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("ifprob-trace-cache-" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        ::setenv("IFPROB_CACHE", dir_.c_str(), 1);
    }

    ~TraceCacheDirGuard()
    {
        ::unsetenv("IFPROB_CACHE");
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::filesystem::path
    onlyTraceFile() const
    {
        std::filesystem::path found;
        for (auto &entry : std::filesystem::directory_iterator(dir_)) {
            if (entry.path().extension() == ".trace") {
                EXPECT_TRUE(found.empty());
                found = entry.path();
            }
        }
        EXPECT_FALSE(found.empty());
        return found;
    }

  private:
    std::filesystem::path dir_;
};

TEST(TracePlane, CorruptCacheEntryFallsBackToRerecord)
{
    TraceCacheDirGuard cache;
    int64_t events = 0;
    {
        harness::Runner runner;
        events = runner.traceOf("eqntott", "add4").events;
        EXPECT_EQ(runner.cacheStats().trace_misses, 1);
    }
    // Flip one payload byte mid-file: the checksum must catch it.
    auto path = cache.onlyTraceFile();
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(std::filesystem::file_size(path) / 2);
        f.put('\x5a');
    }
    harness::Runner runner;
    const trace::Trace &t = runner.traceOf("eqntott", "add4");
    EXPECT_EQ(t.events, events);
    auto stats = runner.cacheStats();
    EXPECT_EQ(stats.trace_read_failures, 1);
    ASSERT_EQ(stats.failures.size(), 1u);
    EXPECT_NE(stats.failures[0].find(".trace"), std::string::npos);
    // The re-record overwrote the corrupt entry: a third Runner hits.
    harness::Runner third;
    EXPECT_EQ(third.traceOf("eqntott", "add4").events, events);
    EXPECT_EQ(third.cacheStats().trace_hits, 1);
    EXPECT_EQ(third.cacheStats().trace_read_failures, 0);
}

TEST(TracePlane, TruncatedCacheEntryFallsBackToRerecord)
{
    TraceCacheDirGuard cache;
    int64_t events = 0;
    {
        harness::Runner runner;
        events = runner.traceOf("eqntott", "add4").events;
    }
    auto path = cache.onlyTraceFile();
    std::filesystem::resize_file(path,
                                 std::filesystem::file_size(path) / 3);
    harness::Runner runner;
    EXPECT_EQ(runner.traceOf("eqntott", "add4").events, events);
    EXPECT_EQ(runner.cacheStats().trace_read_failures, 1);
}

TEST(TracePlane, RecordsOnceUnderConcurrentTraceOf)
{
    ::setenv("IFPROB_CACHE", "off", 1);
    {
        harness::Runner runner;
        constexpr int kThreads = 8;
        std::vector<const trace::Trace *> seen(kThreads, nullptr);
        std::vector<std::thread> threads;
        for (int i = 0; i < kThreads; ++i) {
            threads.emplace_back([&, i] {
                seen[static_cast<size_t>(i)] =
                    &runner.traceOf("eqntott", "add4");
            });
        }
        for (auto &th : threads)
            th.join();
        for (int i = 1; i < kThreads; ++i)
            EXPECT_EQ(seen[static_cast<size_t>(i)], seen[0]);
        // Exactly one recording happened (cache off -> one miss).
        EXPECT_EQ(runner.cacheStats().trace_misses, 1);
        EXPECT_EQ(runner.cacheStats().trace_hits, 0);
    }
    ::unsetenv("IFPROB_CACHE");
}

// ---------------------------------------------------------------------------
// Batched replay: scalar differential, decode fuzz, mapped-cache hammer.
// ---------------------------------------------------------------------------

/** Scoped IFPROB_TRACE_BATCH override ("on"/"off"), restored on exit. */
class BatchModeGuard
{
  public:
    explicit BatchModeGuard(const char *mode)
    {
        ::setenv("IFPROB_TRACE_BATCH", mode, 1);
    }
    ~BatchModeGuard() { ::unsetenv("IFPROB_TRACE_BATCH"); }
};

/** Everything every in-tree observer accumulates over one replay. */
struct AllObserverState
{
    int64_t one_total, one_correct;
    int64_t two_total, two_correct;
    int64_t gshare_total, gshare_correct;
    int64_t static_total, static_correct;
    analysis::SiteCounts counts;
    std::vector<characterize::BranchFingerprint> fingerprints;
    std::vector<EventLog::Event> log;
    ilp::RunLengthSummary runlength;
};

/**
 * Replay @p t through every in-tree observer under the given batch
 * mode — first fanned out (a mixed set where EventLog and the
 * run-length analyzer still want instruction counts), then the pure
 * counting observer alone (the set where the decoder skips
 * materializing instruction counts entirely).
 */
AllObserverState
replayEverything(const trace::Trace &t, const isa::Program &p,
                 const char *mode)
{
    BatchModeGuard guard(mode);
    const size_t num_sites = p.branch_sites.size();
    predict::OneBitPredictor one(num_sites);
    predict::TwoBitPredictor two(num_sites);
    predict::GSharePredictor gshare(12, 12);
    profile::ProfileDb db("w", p.fingerprint(), t.stats);
    predict::ProfilePredictor self(db);
    predict::StaticAsDynamic as_dynamic(self);
    characterize::FingerprintBuilder builder(num_sites);
    EventLog log;
    ilp::RunLengthAnalyzer runlength(self);
    trace::replay(t, {&one, &two, &gshare, &as_dynamic, &builder, &log,
                      &runlength});

    analysis::SiteCountObserver counting(num_sites);
    trace::replay(t, counting);

    AllObserverState st{one.total(),
                        one.correct(),
                        two.total(),
                        two.correct(),
                        gshare.total(),
                        gshare.correct(),
                        as_dynamic.total(),
                        as_dynamic.correct(),
                        counting.counts(),
                        std::move(builder).take(),
                        log.events,
                        std::move(runlength).summary(
                            t.stats.instructions)};
    return st;
}

void
expectSameState(const AllObserverState &a, const AllObserverState &b)
{
    EXPECT_EQ(a.one_total, b.one_total);
    EXPECT_EQ(a.one_correct, b.one_correct);
    EXPECT_EQ(a.two_total, b.two_total);
    EXPECT_EQ(a.two_correct, b.two_correct);
    EXPECT_EQ(a.gshare_total, b.gshare_total);
    EXPECT_EQ(a.gshare_correct, b.gshare_correct);
    EXPECT_EQ(a.static_total, b.static_total);
    EXPECT_EQ(a.static_correct, b.static_correct);
    EXPECT_EQ(a.counts.executed, b.counts.executed);
    EXPECT_EQ(a.counts.taken, b.counts.taken);
    EXPECT_EQ(a.log, b.log);
    EXPECT_EQ(a.runlength.runs, b.runlength.runs);
    EXPECT_EQ(a.runlength.histogram, b.runlength.histogram);
    EXPECT_EQ(a.runlength.breaks, b.runlength.breaks);
    ASSERT_EQ(a.fingerprints.size(), b.fingerprints.size());
    for (size_t i = 0; i < a.fingerprints.size(); ++i) {
        const auto &fa = a.fingerprints[i];
        const auto &fb = b.fingerprints[i];
        EXPECT_EQ(fa.site_id, fb.site_id);
        EXPECT_EQ(fa.executed, fb.executed);
        EXPECT_EQ(fa.taken, fb.taken);
        EXPECT_EQ(fa.transitions, fb.transitions);
        EXPECT_EQ(fa.rle_bytes, fb.rle_bytes);
        EXPECT_EQ(fa.local_correct, fb.local_correct);
        EXPECT_EQ(fa.global_correct, fb.global_correct);
        EXPECT_EQ(fa.runs.count, fb.runs.count);
        EXPECT_EQ(fa.runs.sum, fb.runs.sum);
        EXPECT_EQ(fa.runs.max, fb.runs.max);
        EXPECT_EQ(fa.runs.histogram, fb.runs.histogram);
    }
}

TEST(TracePlane, BatchMatchesScalarAcrossAllObservers)
{
    isa::Program p = compile(kBranchySource);
    trace::Trace t =
        trace::record(p, "", vm::RunLimits{}, "kernel", "builtin");
    expectSameState(replayEverything(t, p, "off"),
                    replayEverything(t, p, "on"));
}

TEST(TracePlane, BatchMatchesScalarParallel)
{
    // jobs=4: four cells' batch-vs-scalar differentials in flight at
    // once, each pair replaying a Runner-cached trace from pool workers.
    ::setenv("IFPROB_CACHE", "off", 1);
    {
        harness::Runner runner;
        exec::Pool pool(4);
        exec::parallelFor(pool, kMatrixSample.size(), [&](size_t i) {
            const auto &[w, d] = kMatrixSample[i];
            const isa::Program &prog = runner.program(w);
            const trace::Trace &t = runner.traceOf(w, d);
            expectSameState(replayEverything(t, prog, "off"),
                            replayEverything(t, prog, "on"));
        });
    }
    ::unsetenv("IFPROB_CACHE");
}

TEST(TracePlane, BatchHandlesBreaksAndMaskedSites)
{
    // Synthetic stream: breaks interleaved between branches, zero
    // deltas, >2^32 deltas, and a site id far beyond the observers'
    // tables (masked by SiteCountObserver/FingerprintBuilder under both
    // paths). Scalar-vs-batch on the masking observers plus EventLog.
    trace::Recorder recorder;
    const int64_t kHuge = (int64_t{1} << 37) + 99;
    recorder.onBranch(3, true, 10);
    recorder.onUnavoidableBreak(12);
    recorder.onBranch(1, false, 15);
    recorder.onBranch(1, true, 15);
    recorder.onBranch(900001, true, kHuge);
    recorder.onUnavoidableBreak(kHuge + 7);
    recorder.onBranch(3, false, kHuge + 9);
    trace::Trace t = std::move(recorder).take();

    auto run = [&](const char *mode) {
        BatchModeGuard guard(mode);
        analysis::SiteCountObserver counting(8);
        characterize::FingerprintBuilder builder(8);
        EventLog log;
        trace::replay(t, {&counting, &builder, &log});
        return std::tuple(counting.counts().executed,
                          counting.counts().taken,
                          std::move(builder).take().size(), log.events);
    };
    auto scalar = run("off");
    auto batch = run("on");
    EXPECT_EQ(std::get<0>(scalar), std::get<0>(batch));
    EXPECT_EQ(std::get<1>(scalar), std::get<1>(batch));
    EXPECT_EQ(std::get<2>(scalar), std::get<2>(batch));
    EXPECT_EQ(std::get<3>(scalar), std::get<3>(batch));
    // The masked site contributed nothing; site 1 counted both ways.
    EXPECT_EQ(std::get<0>(batch)[1], 2);
    EXPECT_EQ(std::get<1>(batch)[1], 1);
    EXPECT_EQ(std::get<0>(batch)[3], 2);
}

TEST(TracePlane, ReplayRejectsCorruptStreamsUnderBothPaths)
{
    isa::Program p = compile(kBranchySource);
    trace::Trace good =
        trace::record(p, "", vm::RunLimits{}, "kernel", "builtin");

    // Each mutation must raise Error from replay on the scalar path and
    // the batched path alike — fuzz parity is what lets CI flip
    // IFPROB_TRACE_BATCH=off as a pure differential oracle.
    struct Case
    {
        const char *name;
        void (*mutate)(trace::Trace &);
    };
    const Case kCases[] = {
        {"truncated deltas",
         [](trace::Trace &t) { t.deltas.resize(t.deltas.size() / 2); }},
        {"truncated sites",
         [](trace::Trace &t) { t.sites.resize(t.sites.size() / 2); }},
        {"trailing delta bytes",
         [](trace::Trace &t) { t.deltas.push_back('\x01'); }},
        {"oversize taken bitstream",
         [](trace::Trace &t) { t.taken.push_back('\x00'); }},
        {"short tags bitstream",
         [](trace::Trace &t) { t.tags.resize(t.tags.size() - 1); }},
        {"tag population mismatch",
         [](trace::Trace &t) { t.tags[0] ^= '\x01'; }},
        {"site index out of dictionary",
         [](trace::Trace &t) { t.sites[0] = '\x7f'; }},
        {"dangling varint continuation",
         [](trace::Trace &t) { t.deltas.back() = '\xff'; }},
    };
    for (const auto &c : kCases) {
        SCOPED_TRACE(c.name);
        trace::Trace bad = good;
        c.mutate(bad);
        {
            BatchModeGuard guard("off");
            EventLog log;
            EXPECT_THROW(trace::replay(bad, log), Error);
        }
        {
            BatchModeGuard guard("on");
            EventLog log;
            EXPECT_THROW(trace::replay(bad, log), Error);
        }
    }
}

TEST(TracePlane, MappedLoadMatchesStreamLoad)
{
    TraceCacheDirGuard cache;
    harness::Runner recorder_runner;
    trace::Trace expected = recorder_runner.traceOf("eqntott", "add4");
    const auto path = cache.onlyTraceFile();

    auto mapped = support::MappedFile::tryOpen(path.string());
    ASSERT_NE(mapped, nullptr);
    trace::Trace t = trace::Trace::loadMapped(mapped);
    EXPECT_EQ(t.events, expected.events);
    EXPECT_EQ(t.branch_events, expected.branch_events);
    EXPECT_EQ(t.site_dict, expected.site_dict);
    EXPECT_EQ(t.deltasBytes(), std::string_view(expected.deltas));
    EXPECT_EQ(t.tagsBytes(), std::string_view(expected.tags));
    EXPECT_EQ(t.takenBytes(), std::string_view(expected.taken));
    EXPECT_EQ(t.sitesBytes(), std::string_view(expected.sites));
    EXPECT_EQ(t.stats.instructions, expected.stats.instructions);

    // The buffered fallback parses identically.
    ::setenv("IFPROB_NO_MMAP", "1", 1);
    auto buffered = support::MappedFile::tryOpen(path.string());
    ::unsetenv("IFPROB_NO_MMAP");
    ASSERT_NE(buffered, nullptr);
    EXPECT_FALSE(buffered->isMapped());
    trace::Trace b = trace::Trace::loadMapped(buffered);
    EXPECT_EQ(b.deltasBytes(), t.deltasBytes());
    EXPECT_EQ(b.events, t.events);
}

TEST(TracePlane, MappedCacheReplayHammer)
{
    // Eight threads replaying one mmap-backed trace concurrently: the
    // decode cursors are per-BlockReader, so the only shared state is
    // the read-only mapping itself. Run under TSan in CI.
    TraceCacheDirGuard cache;
    harness::Runner recorder_runner;
    const isa::Program &p = recorder_runner.program("eqntott");
    const int64_t events = recorder_runner.traceOf("eqntott", "add4").events;
    const auto path = cache.onlyTraceFile();

    auto mapped = support::MappedFile::tryOpen(path.string());
    ASSERT_NE(mapped, nullptr);
    const trace::Trace t = trace::Trace::loadMapped(mapped);

    constexpr int kThreads = 8;
    std::vector<int64_t> totals(kThreads, 0);
    std::vector<int64_t> correct(kThreads, 0);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            predict::TwoBitPredictor two(p.branch_sites.size());
            analysis::SiteCountObserver counting(p.branch_sites.size());
            trace::replay(t, {&two, &counting});
            totals[static_cast<size_t>(i)] = two.total();
            correct[static_cast<size_t>(i)] = two.correct();
        });
    }
    for (auto &th : threads)
        th.join();
    for (int i = 0; i < kThreads; ++i) {
        EXPECT_EQ(totals[static_cast<size_t>(i)], totals[0]);
        EXPECT_EQ(correct[static_cast<size_t>(i)], correct[0]);
    }
    EXPECT_EQ(t.events, events);
    EXPECT_GT(totals[0], 0);
}

TEST(TracePlane, VariantTracesKeyedByFingerprint)
{
    ::setenv("IFPROB_CACHE", "off", 1);
    {
        harness::Runner runner;
        const trace::Trace &base = runner.traceOf("eqntott", "add4");
        // The same image passed explicitly dedups onto the same slot.
        const trace::Trace &same = runner.traceOf(
            "eqntott", "add4", runner.program("eqntott"));
        EXPECT_EQ(&base, &same);
    }
    ::unsetenv("IFPROB_CACHE");
}

} // namespace
} // namespace ifprob

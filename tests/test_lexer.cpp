/**
 * @file
 * Unit tests for the minic lexer: token kinds, literal values, escapes,
 * comments, source locations, and lexical errors.
 */
#include <gtest/gtest.h>

#include "lang/lexer.h"
#include "support/error.h"

namespace ifprob::lang {
namespace {

std::vector<Token>
lexAll(std::string_view src)
{
    return lex(src);
}

TEST(Lexer, EmptyInputYieldsEof)
{
    auto toks = lexAll("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, TokenKind::kEof);
}

TEST(Lexer, IdentifiersAndKeywords)
{
    auto toks = lexAll("int foo while whilefoo _bar x1");
    ASSERT_EQ(toks.size(), 7u);
    EXPECT_EQ(toks[0].kind, TokenKind::kKwInt);
    EXPECT_EQ(toks[1].kind, TokenKind::kIdent);
    EXPECT_EQ(toks[1].text, "foo");
    EXPECT_EQ(toks[2].kind, TokenKind::kKwWhile);
    EXPECT_EQ(toks[3].kind, TokenKind::kIdent);
    EXPECT_EQ(toks[3].text, "whilefoo");
    EXPECT_EQ(toks[4].text, "_bar");
    EXPECT_EQ(toks[5].text, "x1");
}

TEST(Lexer, IntegerLiterals)
{
    auto toks = lexAll("0 42 123456789012345 0x1f 0XFF");
    EXPECT_EQ(toks[0].int_value, 0);
    EXPECT_EQ(toks[1].int_value, 42);
    EXPECT_EQ(toks[2].int_value, 123456789012345ll);
    EXPECT_EQ(toks[3].int_value, 0x1f);
    EXPECT_EQ(toks[4].int_value, 0xff);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(toks[static_cast<size_t>(i)].kind, TokenKind::kIntLit);
}

TEST(Lexer, FloatLiterals)
{
    auto toks = lexAll("1.5 0.25 2.0e3 1.5E-2 7.0e+1");
    EXPECT_DOUBLE_EQ(toks[0].float_value, 1.5);
    EXPECT_DOUBLE_EQ(toks[1].float_value, 0.25);
    EXPECT_DOUBLE_EQ(toks[2].float_value, 2000.0);
    EXPECT_DOUBLE_EQ(toks[3].float_value, 0.015);
    EXPECT_DOUBLE_EQ(toks[4].float_value, 70.0);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(toks[static_cast<size_t>(i)].kind, TokenKind::kFloatLit);
}

TEST(Lexer, IntegerDotDigitDisambiguation)
{
    // A fraction requires a digit after the dot; a lone '.' is not a
    // token in minic at all (there is no member access).
    auto toks = lexAll("3.14 3 14");
    EXPECT_EQ(toks[0].kind, TokenKind::kFloatLit);
    EXPECT_EQ(toks[1].kind, TokenKind::kIntLit);
    EXPECT_EQ(toks[2].kind, TokenKind::kIntLit);
    EXPECT_THROW(lexAll("x . y"), ifprob::CompileError);
}

TEST(Lexer, CharLiterals)
{
    auto toks = lexAll(R"('a' '0' '\n' '\t' '\\' '\'' '\0')");
    EXPECT_EQ(toks[0].int_value, 'a');
    EXPECT_EQ(toks[1].int_value, '0');
    EXPECT_EQ(toks[2].int_value, '\n');
    EXPECT_EQ(toks[3].int_value, '\t');
    EXPECT_EQ(toks[4].int_value, '\\');
    EXPECT_EQ(toks[5].int_value, '\'');
    EXPECT_EQ(toks[6].int_value, 0);
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(toks[static_cast<size_t>(i)].kind, TokenKind::kCharLit);
}

TEST(Lexer, StringLiteralsResolveEscapes)
{
    auto toks = lexAll(R"("hello\nworld" "" "a\"b")");
    EXPECT_EQ(toks[0].kind, TokenKind::kStringLit);
    EXPECT_EQ(toks[0].text, "hello\nworld");
    EXPECT_EQ(toks[1].text, "");
    EXPECT_EQ(toks[2].text, "a\"b");
}

TEST(Lexer, CommentsAreSkipped)
{
    auto toks = lexAll("a // line comment\nb /* block\ncomment */ c");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, SourceLocations)
{
    auto toks = lexAll("a\n  b\n    c");
    EXPECT_EQ(toks[0].loc.line, 1);
    EXPECT_EQ(toks[0].loc.col, 1);
    EXPECT_EQ(toks[1].loc.line, 2);
    EXPECT_EQ(toks[1].loc.col, 3);
    EXPECT_EQ(toks[2].loc.line, 3);
    EXPECT_EQ(toks[2].loc.col, 5);
}

TEST(Lexer, ErrorOnUnterminatedString)
{
    EXPECT_THROW(lexAll("\"oops"), CompileError);
}

TEST(Lexer, ErrorOnUnterminatedBlockComment)
{
    EXPECT_THROW(lexAll("/* never closed"), CompileError);
}

TEST(Lexer, ErrorOnUnterminatedChar)
{
    EXPECT_THROW(lexAll("'a"), CompileError);
}

TEST(Lexer, ErrorOnStrayCharacter)
{
    EXPECT_THROW(lexAll("int $x;"), CompileError);
    EXPECT_THROW(lexAll("a @ b"), CompileError);
}

TEST(Lexer, ErrorOnUnknownEscape)
{
    EXPECT_THROW(lexAll("'\\q'"), CompileError);
}

/** Parameterized check that each operator spelling lexes to its kind. */
struct OperatorCase
{
    const char *text;
    TokenKind kind;
};

class LexerOperatorTest : public ::testing::TestWithParam<OperatorCase>
{
};

TEST_P(LexerOperatorTest, LexesToExpectedKind)
{
    auto toks = lexAll(GetParam().text);
    ASSERT_EQ(toks.size(), 2u) << GetParam().text;
    EXPECT_EQ(toks[0].kind, GetParam().kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, LexerOperatorTest,
    ::testing::Values(
        OperatorCase{"+", TokenKind::kPlus},
        OperatorCase{"-", TokenKind::kMinus},
        OperatorCase{"*", TokenKind::kStar},
        OperatorCase{"/", TokenKind::kSlash},
        OperatorCase{"%", TokenKind::kPercent},
        OperatorCase{"+=", TokenKind::kPlusAssign},
        OperatorCase{"-=", TokenKind::kMinusAssign},
        OperatorCase{"*=", TokenKind::kStarAssign},
        OperatorCase{"/=", TokenKind::kSlashAssign},
        OperatorCase{"%=", TokenKind::kPercentAssign},
        OperatorCase{"++", TokenKind::kPlusPlus},
        OperatorCase{"--", TokenKind::kMinusMinus},
        OperatorCase{"&", TokenKind::kAmp},
        OperatorCase{"|", TokenKind::kPipe},
        OperatorCase{"^", TokenKind::kCaret},
        OperatorCase{"~", TokenKind::kTilde},
        OperatorCase{"<<", TokenKind::kShl},
        OperatorCase{">>", TokenKind::kShr},
        OperatorCase{"&&", TokenKind::kAmpAmp},
        OperatorCase{"||", TokenKind::kPipePipe},
        OperatorCase{"!", TokenKind::kBang},
        OperatorCase{"==", TokenKind::kEq},
        OperatorCase{"!=", TokenKind::kNe},
        OperatorCase{"<", TokenKind::kLt},
        OperatorCase{"<=", TokenKind::kLe},
        OperatorCase{">", TokenKind::kGt},
        OperatorCase{">=", TokenKind::kGe},
        OperatorCase{"=", TokenKind::kAssign},
        OperatorCase{"?", TokenKind::kQuestion},
        OperatorCase{":", TokenKind::kColon},
        OperatorCase{";", TokenKind::kSemi},
        OperatorCase{",", TokenKind::kComma},
        OperatorCase{"(", TokenKind::kLParen},
        OperatorCase{")", TokenKind::kRParen},
        OperatorCase{"{", TokenKind::kLBrace},
        OperatorCase{"}", TokenKind::kRBrace},
        OperatorCase{"[", TokenKind::kLBracket},
        OperatorCase{"]", TokenKind::kRBracket}));

TEST(Lexer, MaximalMunch)
{
    auto toks = lexAll("a+++b");
    // a ++ + b
    ASSERT_EQ(toks.size(), 5u);
    EXPECT_EQ(toks[1].kind, TokenKind::kPlusPlus);
    EXPECT_EQ(toks[2].kind, TokenKind::kPlus);

    auto toks2 = lexAll("a<<=b"); // << then =
    EXPECT_EQ(toks2[1].kind, TokenKind::kShl);
    EXPECT_EQ(toks2[2].kind, TokenKind::kAssign);
}

} // namespace
} // namespace ifprob::lang

/**
 * @file
 * Tests for the inliner: behaviour preservation, call elimination,
 * recursion safety, branch-site sharing across inlined copies, and the
 * caller-growth cap.
 */
#include <gtest/gtest.h>

#include "compiler/inline.h"
#include "compiler/pipeline.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace ifprob {
namespace {

struct InlineFixture
{
    InlineFixture(std::string_view src, std::string_view input,
                  InlineOptions options = {})
        : program(compile(src))
    {
        vm::Machine machine(program);
        before = machine.run(input);
        inlined_program = program;
        inlined_count = inlineProgram(inlined_program, options);
        vm::Machine inlined_machine(inlined_program);
        after = inlined_machine.run(input);
    }

    isa::Program program;
    isa::Program inlined_program;
    vm::RunResult before;
    vm::RunResult after;
    int inlined_count = 0;
};

TEST(Inline, EliminatesHotLeafCalls)
{
    InlineFixture f(R"(
        int square(int x) { return x * x; }
        int main() {
            int sum = 0;
            for (int i = 0; i < 1000; i++)
                sum += square(i) & 1023;
            return sum & 255;
        })",
        "");
    EXPECT_GT(f.inlined_count, 0);
    EXPECT_EQ(f.after.stats.exit_code, f.before.stats.exit_code);
    // The 1000 dynamic calls are gone.
    EXPECT_EQ(f.after.stats.direct_calls, 0);
    EXPECT_EQ(f.after.stats.direct_returns, 0);
    // Fewer instructions overall (call/arg/ret overhead removed).
    EXPECT_LT(f.after.stats.instructions, f.before.stats.instructions);
}

TEST(Inline, PreservesBehaviourWithBranchesAndFloats)
{
    InlineFixture f(R"(
        float clamp(float v, float lo, float hi) {
            if (v < lo)
                return lo;
            if (v > hi)
                return hi;
            return v;
        }
        int mix(int a, int b) {
            if (a > b)
                return a - b;
            return b - a + 1;
        }
        int main() {
            float acc = 0.0;
            int n = 0;
            for (int i = 0; i < 500; i++) {
                acc = acc + clamp(i * 0.37 - 50.0, -3.0, 3.0);
                n += mix(i & 15, i % 7);
            }
            putf(acc);
            putc(' ');
            puti(n);
            return 0;
        })",
        "");
    EXPECT_GT(f.inlined_count, 0);
    EXPECT_EQ(f.after.output, f.before.output);
    EXPECT_EQ(f.after.stats.direct_calls, 0);
}

TEST(Inline, InlinedCopiesShareBranchSites)
{
    // `sign` is called from two sites; both inlined copies must share
    // the same branch-site counters (source-level keying).
    InlineFixture f(R"(
        int sign(int v) {
            if (v < 0)
                return -1;
            return 1;
        }
        int main() {
            int n = 0;
            for (int i = 0; i < 100; i++) {
                n += sign(i - 50);        // copy 1: ~50/50
                n += sign(i - 1000);      // copy 2: always negative
            }
            return n & 255;
        })",
        "");
    EXPECT_EQ(f.after.stats.exit_code, f.before.stats.exit_code);
    // Site table unchanged...
    ASSERT_EQ(f.inlined_program.branch_sites.size(),
              f.program.branch_sites.size());
    // ...and per-site dynamic counts identical to the un-inlined run
    // (copies aggregate into the same counters).
    for (size_t i = 0; i < f.after.stats.branches.size(); ++i) {
        EXPECT_EQ(f.after.stats.branches[i].executed,
                  f.before.stats.branches[i].executed);
        EXPECT_EQ(f.after.stats.branches[i].taken,
                  f.before.stats.branches[i].taken);
    }
    // The shared site now appears on two kBr instructions.
    std::vector<int> count(f.inlined_program.branch_sites.size(), 0);
    for (const auto &fn : f.inlined_program.functions)
        for (const auto &insn : fn.code)
            if (insn.op == isa::Opcode::kBr)
                ++count[static_cast<size_t>(insn.imm)];
    EXPECT_GE(*std::max_element(count.begin(), count.end()), 2);
}

TEST(Inline, RecursionIsNotInlined)
{
    InlineFixture f(R"(
        int fib(int n) {
            if (n < 2)
                return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(15) & 255; }
    )",
        "");
    EXPECT_EQ(f.after.stats.exit_code, f.before.stats.exit_code);
    // fib still calls itself.
    EXPECT_GT(f.after.stats.direct_calls, 100);
}

TEST(Inline, ChainsCollapseAcrossRounds)
{
    InlineFixture f(R"(
        int add1(int x) { return x + 1; }
        int add2(int x) { return add1(add1(x)); }
        int add4(int x) { return add2(add2(x)); }
        int main() {
            int n = 0;
            for (int i = 0; i < 200; i++)
                n += add4(i);
            return n & 255;
        })",
        "");
    EXPECT_EQ(f.after.stats.exit_code, f.before.stats.exit_code);
    EXPECT_EQ(f.after.stats.direct_calls, 0);
}

TEST(Inline, GrowthCapRespected)
{
    InlineOptions tight;
    tight.max_callee_size = 4; // `work` does not fit (tiny prelude
                               // helpers like ungetch still may)
    InlineFixture f(R"(
        int work(int x) {
            int a = x * 3, b = x + 7, c = a ^ b;
            return (a + b + c) & 1023;
        }
        int main() {
            int n = 0;
            for (int i = 0; i < 100; i++)
                n += work(i);
            return n & 255;
        })",
        "", tight);
    EXPECT_EQ(f.after.stats.exit_code, f.before.stats.exit_code);
    // The 100 calls to `work` survive the size cap.
    EXPECT_GE(f.after.stats.direct_calls, 100);
}

TEST(Inline, WholeWorkloadsSurviveInlining)
{
    for (const char *name : {"eqntott", "doduc", "spiff"}) {
        SCOPED_TRACE(name);
        const auto &w = workloads::get(name);
        InlineFixture f(w.source, w.datasets.front().input);
        EXPECT_EQ(f.after.output, f.before.output);
        EXPECT_LE(f.after.stats.direct_calls, f.before.stats.direct_calls);
    }
}

TEST(Inline, IndirectCallsAndTargetsStay)
{
    // Functions reached by icall still exist and work; functions that
    // make icalls are not inlined.
    InlineFixture f(R"(
        int dbl(int x) { return x * 2; }
        int dispatch(int f, int v) { return icall(f, v); }
        int main() {
            int n = 0;
            for (int i = 0; i < 50; i++)
                n += dispatch(&dbl, i);
            return n & 255;
        })",
        "");
    EXPECT_EQ(f.after.stats.exit_code, f.before.stats.exit_code);
    EXPECT_EQ(f.after.stats.indirect_calls, f.before.stats.indirect_calls);
}

} // namespace
} // namespace ifprob

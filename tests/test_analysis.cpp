/**
 * @file
 * Tests for the analysis plane (src/analysis/): differential equivalence
 * of the memoized AnalysisCache path against the reference
 * (IFPROB_ANALYSIS=reference) path, leave-one-out merge equivalence for
 * every MergeMode including exact-tie sites, SoA kernel equivalence
 * against virtual-dispatch evaluation, the binary RunStats cache format
 * (round trip, corruption fallback), and concurrency (the Analysis*
 * suites run under TSan in CI).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "analysis/analysis_cache.h"
#include "analysis/loo.h"
#include "analysis/soa.h"
#include "harness/experiments.h"
#include "harness/runner.h"
#include "metrics/breaks.h"
#include "predict/evaluate.h"
#include "predict/heuristic_predictor.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "support/error.h"
#include "vm/run_stats.h"
#include "workloads/workload.h"

namespace ifprob::analysis {
namespace {

using harness::Runner;
using predict::ProfilePredictor;
using profile::MergeMode;
using profile::ProfileDb;

constexpr MergeMode kAllModes[] = {MergeMode::kUnscaled,
                                   MergeMode::kScaled,
                                   MergeMode::kPolling};

/** Scoped IFPROB_ANALYSIS override (restores the prior value). */
class AnalysisEnvGuard
{
  public:
    explicit AnalysisEnvGuard(const char *value)
    {
        const char *old = std::getenv("IFPROB_ANALYSIS");
        if (old) {
            had_ = true;
            old_ = old;
        }
        if (value)
            ::setenv("IFPROB_ANALYSIS", value, 1);
        else
            ::unsetenv("IFPROB_ANALYSIS");
    }

    ~AnalysisEnvGuard()
    {
        if (had_)
            ::setenv("IFPROB_ANALYSIS", old_.c_str(), 1);
        else
            ::unsetenv("IFPROB_ANALYSIS");
    }

  private:
    bool had_ = false;
    std::string old_;
};

/** Scoped IFPROB_CACHE override pointing at a fresh temp directory. */
class CacheDirGuard
{
  public:
    CacheDirGuard()
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("ifprob-analysis-cache-" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
        ::setenv("IFPROB_CACHE", dir_.c_str(), 1);
    }

    ~CacheDirGuard()
    {
        ::unsetenv("IFPROB_CACHE");
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    const std::filesystem::path &dir() const { return dir_; }

    std::filesystem::path
    onlyFile() const
    {
        std::filesystem::path found;
        for (auto &entry : std::filesystem::directory_iterator(dir_)) {
            if (entry.is_regular_file()) {
                EXPECT_TRUE(found.empty());
                found = entry.path();
            }
        }
        EXPECT_FALSE(found.empty());
        return found;
    }

  private:
    std::filesystem::path dir_;
};

/** Synthetic stats with deliberately awkward sites: unseen, exact ties
 *  (taken * 2 == executed), strong majorities either way. */
vm::RunStats
syntheticStats(int64_t salt)
{
    vm::RunStats stats;
    stats.branches.resize(8);
    stats.branches[0] = {0, 0};                    // never executed
    stats.branches[1] = {4 + 2 * salt, 2 + salt};  // exact tie
    stats.branches[2] = {100, 99};                 // strongly taken
    stats.branches[3] = {100, 1};                  // strongly not taken
    stats.branches[4] = {1, 1};                    // single taken
    stats.branches[5] = {1, 0};                    // single not taken
    stats.branches[6] = {50 + salt, 25};           // salt-dependent lean
    stats.branches[7] = {2, 1};                    // tiny exact tie
    for (const auto &b : stats.branches) {
        stats.cond_branches += b.executed;
        stats.taken_branches += b.taken;
    }
    stats.instructions = 10 * stats.cond_branches + 17;
    return stats;
}

std::vector<ProfileDb>
syntheticProfiles(size_t n)
{
    std::vector<ProfileDb> dbs;
    for (size_t i = 0; i < n; ++i)
        dbs.emplace_back("synthetic", 0x1234u,
                         syntheticStats(static_cast<int64_t>(i)));
    return dbs;
}

// --- leave-one-out equivalence ---------------------------------------------

TEST(AnalysisLoo, MatchesFullRemergeForEveryModeAndTarget)
{
    auto dbs = syntheticProfiles(5);
    for (MergeMode mode : kAllModes) {
        LeaveOneOutTable table = leaveOneOutTable(dbs, mode);
        ASSERT_EQ(table.directions.size(), dbs.size());
        for (size_t t = 0; t < dbs.size(); ++t) {
            std::vector<ProfileDb> others;
            for (size_t j = 0; j < dbs.size(); ++j) {
                if (j != t)
                    others.push_back(dbs[j]);
            }
            ProfileDb merged = ProfileDb::merge(others, mode);
            ProfilePredictor reference(merged);
            for (size_t site = 0; site < merged.numSites(); ++site) {
                EXPECT_EQ(table.directions[t][site] != 0,
                          reference.predictTaken(site))
                    << "mode " << static_cast<int>(mode) << " target "
                    << t << " site " << site;
                EXPECT_EQ(table.seen[t][site] != 0,
                          merged.site(site).executed > 0.0)
                    << "mode " << static_cast<int>(mode) << " target "
                    << t << " site " << site;
            }
        }
    }
}

TEST(AnalysisLoo, ExactTieSitesPredictNotTaken)
{
    // Sites 1 and 7 of every synthetic dataset are exact ties; any
    // merge of them stays a tie, and the ProfilePredictor convention
    // (strict majority) must resolve a tie to not-taken in both the
    // reference and the prefix/suffix path.
    auto dbs = syntheticProfiles(4);
    for (MergeMode mode : kAllModes) {
        LeaveOneOutTable table = leaveOneOutTable(dbs, mode);
        for (size_t t = 0; t < dbs.size(); ++t) {
            EXPECT_EQ(table.directions[t][1], 0);
            EXPECT_EQ(table.directions[t][7], 0);
            EXPECT_EQ(table.directions[t][0], 0); // unseen default
            EXPECT_EQ(table.seen[t][0], 0);
        }
    }
}

TEST(AnalysisLoo, SingleInputYieldsEmptyMerge)
{
    auto dbs = syntheticProfiles(1);
    for (MergeMode mode : kAllModes) {
        LeaveOneOutTable table = leaveOneOutTable(dbs, mode);
        ASSERT_EQ(table.directions.size(), 1u);
        for (size_t site = 0; site < dbs[0].numSites(); ++site) {
            EXPECT_EQ(table.directions[0][site], 0); // nothing merged
            EXPECT_EQ(table.seen[0][site], 0);
        }
    }
}

TEST(AnalysisLoo, EmptyInputThrows)
{
    std::vector<ProfileDb> none;
    EXPECT_THROW(leaveOneOutTable(none, MergeMode::kScaled), Error);
    // The reference merge it mirrors must also reject an empty span
    // (not silently return an empty database).
    EXPECT_THROW(ProfileDb::merge(none, MergeMode::kScaled), Error);
    EXPECT_THROW(ProfileDb::merge(none, MergeMode::kUnscaled), Error);
    EXPECT_THROW(ProfileDb::merge(none, MergeMode::kPolling), Error);
}

TEST(AnalysisLoo, MismatchedInputsThrow)
{
    auto dbs = syntheticProfiles(2);
    vm::RunStats small;
    small.branches.resize(2);
    dbs.emplace_back("synthetic", 0x1234u, small);
    EXPECT_THROW(leaveOneOutTable(dbs, MergeMode::kScaled), Error);
}

// --- SoA kernels -----------------------------------------------------------

TEST(AnalysisKernels, MispredictsMatchVirtualEvaluate)
{
    vm::RunStats stats = syntheticStats(3);
    SiteCounts counts = SiteCounts::fromStats(stats);
    ProfileDb db("synthetic", 0x1234u, syntheticStats(9));
    ProfilePredictor predictor(db);
    auto dir = predict::lowerPredictor(predictor, counts.size());
    EXPECT_EQ(mispredictsLowered(counts, dir),
              predict::evaluate(stats, predictor).mispredicted);
}

TEST(AnalysisKernels, SelfMispredictsIsMinSum)
{
    vm::RunStats stats = syntheticStats(2);
    SiteCounts counts = SiteCounts::fromStats(stats);
    int64_t expected = 0;
    for (const auto &b : stats.branches)
        expected += std::min(b.taken, b.executed - b.taken);
    EXPECT_EQ(selfMispredicts(counts), expected);
    // A self-directed predictor achieves exactly the bound.
    ProfileDb self("synthetic", 0x1234u, stats);
    ProfilePredictor predictor(self);
    auto dir = predict::lowerPredictor(predictor, counts.size());
    EXPECT_EQ(mispredictsLowered(counts, dir), expected);
}

TEST(AnalysisKernels, PairKernelMatchesScalarAccounting)
{
    vm::RunStats target = syntheticStats(1);
    vm::RunStats source = syntheticStats(7);
    SiteCounts target_counts = SiteCounts::fromStats(target);
    ProfileDb predictor_db("synthetic", 0x1234u, source);
    ProfilePredictor predictor(predictor_db);
    auto dir = predict::lowerPredictor(predictor, target_counts.size());
    std::vector<uint8_t> seen(target_counts.size());
    for (size_t i = 0; i < seen.size(); ++i)
        seen[i] = predictor_db.site(i).executed > 0.0 ? 1 : 0;

    PairTallies tallies = pairKernel(target_counts, dir, seen);

    int64_t total = 0, unseen = 0, disagree = 0;
    for (size_t i = 0; i < target.branches.size(); ++i) {
        int64_t executed = target.branches[i].executed;
        if (executed == 0)
            continue;
        total += executed;
        const auto &pw = predictor_db.site(i);
        if (pw.executed <= 0.0) {
            unseen += executed;
            continue;
        }
        bool predictor_taken = pw.taken * 2.0 > pw.executed;
        bool target_taken = 2 * target.branches[i].taken > executed;
        if (predictor_taken != target_taken)
            disagree += executed;
    }
    EXPECT_EQ(tallies.total, total);
    EXPECT_EQ(tallies.unseen, unseen);
    EXPECT_EQ(tallies.disagree, disagree);
    EXPECT_EQ(tallies.mispredicted,
              predict::evaluate(target, predictor).mispredicted);
}

// --- RunStats invariants (audit: no NaN on zero input) ---------------------

TEST(AnalysisRunStats, ZeroBranchStatsYieldZeroNotNaN)
{
    vm::RunStats empty;
    EXPECT_EQ(empty.percentTaken(), 0.0);
    EXPECT_EQ(empty.branchDensity(), 0.0);

    vm::RunStats no_branches;
    no_branches.instructions = 1000;
    EXPECT_EQ(no_branches.percentTaken(), 0.0);
    EXPECT_EQ(no_branches.branchDensity(), 0.0);
}

// --- binary cache format ---------------------------------------------------

TEST(AnalysisBinaryFormat, RoundTripPreservesEveryField)
{
    vm::RunStats stats = syntheticStats(5);
    stats.jumps = 11;
    stats.direct_calls = 12;
    stats.indirect_calls = 13;
    stats.direct_returns = 14;
    stats.indirect_returns = 15;
    stats.selects = 16;
    stats.exit_code = 17;

    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    stats.saveBinary(buf, 0xdeadbeefcafef00dull);
    EXPECT_TRUE(vm::RunStats::sniffBinary(buf));
    vm::RunStats loaded =
        vm::RunStats::loadBinary(buf, 0xdeadbeefcafef00dull);

    EXPECT_EQ(loaded.instructions, stats.instructions);
    EXPECT_EQ(loaded.cond_branches, stats.cond_branches);
    EXPECT_EQ(loaded.taken_branches, stats.taken_branches);
    EXPECT_EQ(loaded.jumps, stats.jumps);
    EXPECT_EQ(loaded.direct_calls, stats.direct_calls);
    EXPECT_EQ(loaded.indirect_calls, stats.indirect_calls);
    EXPECT_EQ(loaded.direct_returns, stats.direct_returns);
    EXPECT_EQ(loaded.indirect_returns, stats.indirect_returns);
    EXPECT_EQ(loaded.selects, stats.selects);
    EXPECT_EQ(loaded.exit_code, stats.exit_code);
    ASSERT_EQ(loaded.branches.size(), stats.branches.size());
    for (size_t i = 0; i < stats.branches.size(); ++i) {
        EXPECT_EQ(loaded.branches[i].executed, stats.branches[i].executed);
        EXPECT_EQ(loaded.branches[i].taken, stats.branches[i].taken);
    }
}

TEST(AnalysisBinaryFormat, RejectsWrongFingerprintMagicAndTruncation)
{
    vm::RunStats stats = syntheticStats(0);
    std::stringstream buf(std::ios::in | std::ios::out |
                          std::ios::binary);
    stats.saveBinary(buf, 1111);
    EXPECT_THROW(vm::RunStats::loadBinary(buf, 2222), Error);

    std::stringstream text(std::ios::in | std::ios::out |
                           std::ios::binary);
    stats.save(text);
    EXPECT_FALSE(vm::RunStats::sniffBinary(text));
    EXPECT_THROW(vm::RunStats::loadBinary(text), Error);
    // loadBinary consumed header bytes before rejecting; rewind the way
    // the Runner's sniff-then-dispatch read path never has to.
    text.clear();
    text.seekg(0, std::ios::beg);
    vm::RunStats fallback = vm::RunStats::load(text);
    EXPECT_EQ(fallback.instructions, stats.instructions);

    std::stringstream full(std::ios::in | std::ios::out |
                           std::ios::binary);
    stats.saveBinary(full, 1111);
    std::string bytes = full.str();
    for (size_t cut : {size_t{4}, size_t{20}, bytes.size() - 3}) {
        std::stringstream truncated(bytes.substr(0, cut),
                                    std::ios::in | std::ios::binary);
        EXPECT_THROW(vm::RunStats::loadBinary(truncated), Error)
            << "cut at " << cut;
    }
}

TEST(AnalysisBinaryFormat, RunnerWritesBinaryAndReloadsIt)
{
    CacheDirGuard cache;
    {
        Runner runner;
        runner.stats("mcc", "c_metric");
        EXPECT_EQ(runner.cacheStats().misses, 1);
    }
    // The cache entry leads with the binary magic.
    std::ifstream in(cache.onlyFile(), std::ios::binary);
    char magic[8] = {};
    in.read(magic, 8);
    EXPECT_EQ(std::string_view(magic, 8),
              std::string_view(vm::RunStats::kBinaryMagic, 8));

    Runner warm;
    warm.stats("mcc", "c_metric");
    harness::CacheStats cs = warm.cacheStats();
    EXPECT_EQ(cs.hits, 1);
    EXPECT_EQ(cs.binary_hits, 1);
    EXPECT_EQ(cs.text_hits, 0);
}

TEST(AnalysisBinaryFormat, RunnerStillReadsLegacyTextEntries)
{
    CacheDirGuard cache;
    vm::RunStats fresh;
    {
        Runner runner;
        fresh = runner.stats("mcc", "c_metric");
    }
    // Rewrite the entry in the pre-binary text format.
    {
        std::ofstream out(cache.onlyFile());
        fresh.save(out);
    }
    Runner runner;
    const vm::RunStats &loaded = runner.stats("mcc", "c_metric");
    EXPECT_EQ(loaded.instructions, fresh.instructions);
    harness::CacheStats cs = runner.cacheStats();
    EXPECT_EQ(cs.binary_hits, 0);
    EXPECT_EQ(cs.text_hits, 1);
}

TEST(AnalysisBinaryFormat, CorruptBinaryEntryFallsBackToReExecution)
{
    CacheDirGuard cache;
    vm::RunStats fresh;
    {
        Runner runner;
        fresh = runner.stats("mcc", "c_metric");
    }
    // Truncate the binary entry mid-payload: magic intact, body gone.
    std::filesystem::path path = cache.onlyFile();
    std::filesystem::resize_file(path, 16);
    Runner runner;
    const vm::RunStats &recovered = runner.stats("mcc", "c_metric");
    EXPECT_EQ(recovered.instructions, fresh.instructions);
    harness::CacheStats cs = runner.cacheStats();
    EXPECT_EQ(cs.read_failures, 1);
    EXPECT_EQ(cs.binary_hits, 0);
    ASSERT_EQ(cs.failures.size(), 1u);
    EXPECT_NE(cs.failures[0].find(path.string()), std::string::npos);
}

// --- differential: cached plane vs reference plane -------------------------

class AnalysisDifferentialTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        // Default on-disk stats cache: the matrix only runs once across
        // suites. One shared Runner; both planes read the same stats.
        runner_ = new Runner();
    }

    static void
    TearDownTestSuite()
    {
        delete runner_;
        runner_ = nullptr;
    }

    static Runner *runner_;
};

Runner *AnalysisDifferentialTest::runner_ = nullptr;

TEST_F(AnalysisDifferentialTest, HelperValuesAreBitIdentical)
{
    for (const auto &w : workloads::all()) {
        for (const auto &d : w.datasets) {
            double self_fast, self_ref;
            std::vector<double> others_fast, others_ref;
            {
                AnalysisEnvGuard env(nullptr);
                self_fast = harness::selfPredictedPerBreak(*runner_,
                                                           w.name, d.name);
                for (MergeMode mode : kAllModes)
                    others_fast.push_back(harness::othersPredictedPerBreak(
                        *runner_, w.name, d.name, mode));
            }
            {
                AnalysisEnvGuard env("reference");
                self_ref = harness::selfPredictedPerBreak(*runner_,
                                                          w.name, d.name);
                for (MergeMode mode : kAllModes)
                    others_ref.push_back(harness::othersPredictedPerBreak(
                        *runner_, w.name, d.name, mode));
            }
            // Exact equality: the fast plane must be bit-identical, not
            // merely close.
            EXPECT_EQ(self_fast, self_ref) << w.name << "/" << d.name;
            for (size_t m = 0; m < others_fast.size(); ++m) {
                EXPECT_EQ(others_fast[m], others_ref[m])
                    << w.name << "/" << d.name << " mode " << m;
            }
        }
    }
}

TEST_F(AnalysisDifferentialTest, LeaveOneOutDirectionsMatchPerSite)
{
    for (const auto &w : workloads::all()) {
        if (w.datasets.size() < 2)
            continue;
        std::vector<ProfileDb> dbs;
        for (const auto &d : w.datasets)
            dbs.push_back(harness::profileOf(*runner_, w.name, d.name));
        for (MergeMode mode : kAllModes) {
            const LeaveOneOutTable &table =
                runner_->analysis().leaveOneOut(w.name, mode);
            for (size_t t = 0; t < dbs.size(); ++t) {
                std::vector<ProfileDb> others;
                for (size_t j = 0; j < dbs.size(); ++j) {
                    if (j != t)
                        others.push_back(dbs[j]);
                }
                ProfileDb merged = ProfileDb::merge(others, mode);
                ProfilePredictor reference(merged);
                for (size_t s = 0; s < merged.numSites(); ++s) {
                    ASSERT_EQ(table.directions[t][s] != 0,
                              reference.predictTaken(s))
                        << w.name << " target " << w.datasets[t].name
                        << " mode " << static_cast<int>(mode) << " site "
                        << s;
                }
            }
        }
    }
}

TEST_F(AnalysisDifferentialTest, ExperimentRowsAreBitIdentical)
{
    std::vector<harness::Fig2Row> fig2_fast, fig2_ref;
    std::vector<harness::Fig3Row> fig3_fast, fig3_ref;
    std::vector<harness::CoverageRow> cov_fast, cov_ref;
    {
        AnalysisEnvGuard env(nullptr);
        fig2_fast = harness::figure2(*runner_);
        fig3_fast = harness::figure3(*runner_);
        cov_fast = harness::coverageStudy(*runner_);
    }
    {
        AnalysisEnvGuard env("reference");
        fig2_ref = harness::figure2(*runner_);
        fig3_ref = harness::figure3(*runner_);
        cov_ref = harness::coverageStudy(*runner_);
    }

    ASSERT_EQ(fig2_fast.size(), fig2_ref.size());
    for (size_t i = 0; i < fig2_fast.size(); ++i) {
        EXPECT_EQ(fig2_fast[i].self_per_break, fig2_ref[i].self_per_break);
        EXPECT_EQ(fig2_fast[i].others_per_break,
                  fig2_ref[i].others_per_break)
            << fig2_fast[i].program << "/" << fig2_fast[i].dataset;
    }

    ASSERT_EQ(fig3_fast.size(), fig3_ref.size());
    for (size_t i = 0; i < fig3_fast.size(); ++i) {
        EXPECT_EQ(fig3_fast[i].best_pct, fig3_ref[i].best_pct)
            << fig3_fast[i].program << "/" << fig3_fast[i].dataset;
        EXPECT_EQ(fig3_fast[i].worst_pct, fig3_ref[i].worst_pct);
        EXPECT_EQ(fig3_fast[i].best_predictor, fig3_ref[i].best_predictor);
        EXPECT_EQ(fig3_fast[i].worst_predictor,
                  fig3_ref[i].worst_predictor);
    }

    ASSERT_EQ(cov_fast.size(), cov_ref.size());
    for (size_t i = 0; i < cov_fast.size(); ++i) {
        EXPECT_EQ(cov_fast[i].target, cov_ref[i].target);
        EXPECT_EQ(cov_fast[i].predictor, cov_ref[i].predictor);
        EXPECT_EQ(cov_fast[i].coverage_gap_pct, cov_ref[i].coverage_gap_pct)
            << cov_fast[i].program << " " << cov_fast[i].target << "<-"
            << cov_fast[i].predictor;
        EXPECT_EQ(cov_fast[i].disagreement_pct, cov_ref[i].disagreement_pct);
        EXPECT_EQ(cov_fast[i].quality_pct, cov_ref[i].quality_pct);
    }
}

TEST_F(AnalysisDifferentialTest, HeuristicRowsAreBitIdentical)
{
    std::vector<harness::HeuristicRow> fast, ref;
    {
        AnalysisEnvGuard env(nullptr);
        fast = harness::heuristics(*runner_);
    }
    {
        AnalysisEnvGuard env("reference");
        ref = harness::heuristics(*runner_);
    }
    ASSERT_EQ(fast.size(), ref.size());
    for (size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(fast[i].self_per_break, ref[i].self_per_break)
            << fast[i].program << "/" << fast[i].dataset;
        EXPECT_EQ(fast[i].others_per_break, ref[i].others_per_break);
        EXPECT_EQ(fast[i].backward_taken_per_break,
                  ref[i].backward_taken_per_break);
        EXPECT_EQ(fast[i].opcode_rules_per_break,
                  ref[i].opcode_rules_per_break);
        EXPECT_EQ(fast[i].always_taken_per_break,
                  ref[i].always_taken_per_break);
    }
}

// --- cache behaviour and concurrency ---------------------------------------

TEST(AnalysisCacheSharing, ProfilesAreMaterializedOnceAndShared)
{
    ::setenv("IFPROB_CACHE", "off", 1);
    Runner runner;
    ::unsetenv("IFPROB_CACHE");
    AnalysisCache &cache = runner.analysis();
    const auto &wp1 = cache.workload("mcc");
    const auto &wp2 = cache.workload("mcc");
    EXPECT_EQ(&wp1, &wp2); // same materialization, by reference
    EXPECT_EQ(wp1.dataset_names.size(),
              workloads::get("mcc").datasets.size());
    const ProfileDb &db = cache.profile("mcc", wp1.dataset_names[0]);
    EXPECT_EQ(&db, &wp1.profiles[0]);
    // Dropping the cache invalidates nothing retroactively but builds a
    // fresh entry on next use.
    runner.resetAnalysis();
    const auto &wp3 = runner.analysis().workload("mcc");
    EXPECT_EQ(wp3.dataset_names, wp1.dataset_names);
}

TEST(AnalysisCacheConcurrency, ParallelAccessorsSeeOneMaterialization)
{
    ::setenv("IFPROB_CACHE", "off", 1);
    Runner runner;
    ::unsetenv("IFPROB_CACHE");
    constexpr int kThreads = 8;
    std::vector<const AnalysisCache::WorkloadProfiles *> seen(kThreads);
    std::vector<double> others(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            AnalysisCache &cache = runner.analysis();
            seen[i] = &cache.workload("mcc");
            MergeMode mode = kAllModes[i % 3];
            const auto &names = seen[i]->dataset_names;
            others[i] = cache.othersPerBreak(
                "mcc", names[i % names.size()], mode);
        });
    }
    for (auto &t : threads)
        t.join();
    for (int i = 1; i < kThreads; ++i)
        EXPECT_EQ(seen[i], seen[0]);
    for (int i = 0; i < kThreads; ++i)
        EXPECT_GT(others[i], 0.0);
}

} // namespace
} // namespace ifprob::analysis

/**
 * @file
 * End-to-end smoke tests: compile minic source, run it on the VM, check
 * output, exit codes, and counter plumbing.
 */
#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "support/error.h"
#include "vm/machine.h"

namespace ifprob {
namespace {

vm::RunResult
compileAndRun(std::string_view source, std::string_view input = "",
              CompileOptions options = {})
{
    isa::Program program = compile(source, options);
    vm::Machine machine(program);
    return machine.run(input);
}

TEST(EndToEnd, ReturnsExitCode)
{
    auto r = compileAndRun("int main() { return 42; }");
    EXPECT_EQ(r.stats.exit_code, 42);
    EXPECT_TRUE(r.output.empty());
}

TEST(EndToEnd, ArithmeticExpression)
{
    auto r = compileAndRun("int main() { return (3 + 4) * 5 - 100 / 4; }");
    EXPECT_EQ(r.stats.exit_code, 10);
}

TEST(EndToEnd, WhileLoopSum)
{
    auto r = compileAndRun(R"(
        int main() {
            int i, sum;
            i = 1;
            sum = 0;
            while (i <= 100) {
                sum = sum + i;
                i = i + 1;
            }
            return sum;
        })");
    EXPECT_EQ(r.stats.exit_code, 5050);
}

TEST(EndToEnd, ForLoopWithBreakContinue)
{
    auto r = compileAndRun(R"(
        int main() {
            int sum = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0)
                    continue;
                if (i > 10)
                    break;
                sum += i;
            }
            return sum;  // 1+3+5+7+9 = 25
        })");
    EXPECT_EQ(r.stats.exit_code, 25);
}

TEST(EndToEnd, PutsAndPutc)
{
    auto r = compileAndRun(R"(
        int main() {
            puts("hi ");
            putc('x');
            putc(10);
            return 0;
        })");
    EXPECT_EQ(r.output, "hi x\n");
}

TEST(EndToEnd, EchoInput)
{
    auto r = compileAndRun(R"(
        int main() {
            int c;
            c = getc();
            while (c != -1) {
                putc(c);
                c = getc();
            }
            return 0;
        })",
        "hello world");
    EXPECT_EQ(r.output, "hello world");
}

TEST(EndToEnd, GlobalArraysAndFunctions)
{
    auto r = compileAndRun(R"(
        int fib[30];
        int compute(int n) {
            fib[0] = 0;
            fib[1] = 1;
            for (int i = 2; i <= n; i++)
                fib[i] = fib[i - 1] + fib[i - 2];
            return fib[n];
        }
        int main() { return compute(20); }
    )");
    EXPECT_EQ(r.stats.exit_code, 6765);
}

TEST(EndToEnd, RecursionFactorial)
{
    auto r = compileAndRun(R"(
        int fact(int n) {
            if (n <= 1)
                return 1;
            return n * fact(n - 1);
        }
        int main() { return fact(10); }
    )");
    EXPECT_EQ(r.stats.exit_code, 3628800);
}

TEST(EndToEnd, FloatArithmetic)
{
    auto r = compileAndRun(R"(
        int main() {
            float x = 2.0;
            float y = sqrt(x);
            // y*y should be very close to 2
            float err = fabs(y * y - 2.0);
            if (err < 1.0e-12)
                return 1;
            return 0;
        })");
    EXPECT_EQ(r.stats.exit_code, 1);
}

TEST(EndToEnd, PutFFormatsDoubles)
{
    auto r = compileAndRun("int main() { putf(3.25); return 0; }");
    EXPECT_EQ(r.output, "3.25");
}

TEST(EndToEnd, SwitchWithFallthrough)
{
    auto r = compileAndRun(R"(
        int classify(int c) {
            int score = 0;
            switch (c) {
              case 1:
              case 2:
                score += 10;
                break;
              case 3:
                score += 1;
                // fallthrough
              case 4:
                score += 2;
                break;
              default:
                score = -1;
            }
            return score;
        }
        int main() {
            if (classify(1) != 10) return 1;
            if (classify(2) != 10) return 2;
            if (classify(3) != 3) return 3;
            if (classify(4) != 2) return 4;
            if (classify(99) != -1) return 5;
            return 0;
        })");
    EXPECT_EQ(r.stats.exit_code, 0);
}

TEST(EndToEnd, TernaryAndSelect)
{
    // Operands come from input so the constant folder cannot remove the
    // selects.
    auto r = compileAndRun(R"(
        int main() {
            int a = geti(), b = geti();
            int big = a > b ? a : b;
            int small = a < b ? a : b;
            return big * 10 + small;
        })",
        "7 9");
    EXPECT_EQ(r.stats.exit_code, 97);
    // Simple ternaries should lower to SELECT: no extra branch sites.
    EXPECT_GT(r.stats.selects, 0);
}

TEST(EndToEnd, ShortCircuitEvaluation)
{
    auto r = compileAndRun(R"(
        int calls = 0;
        int bump() { calls = calls + 1; return 1; }
        int main() {
            int t = 1, f = 0;
            if (f && bump()) {}
            if (t || bump()) {}
            if (t && bump()) {}
            if (f || bump()) {}
            return calls;  // only the last two calls execute
        })");
    EXPECT_EQ(r.stats.exit_code, 2);
}

TEST(EndToEnd, IndirectCalls)
{
    auto r = compileAndRun(R"(
        int add(int a, int b) { return a + b; }
        int mul(int a, int b) { return a * b; }
        int main() {
            int fadd = &add;
            int fmul = &mul;
            int x = icall(fadd, 3, 4);
            int y = icall(fmul, 3, 4);
            return x * 100 + y;
        })");
    EXPECT_EQ(r.stats.exit_code, 712);
    EXPECT_EQ(r.stats.indirect_calls, 2);
    EXPECT_EQ(r.stats.indirect_returns, 2);
}

TEST(EndToEnd, PreludeIntegerIo)
{
    auto r = compileAndRun(R"(
        int main() {
            int a = geti();
            int b = geti();
            puti(a + b);
            putc('\n');
            puti(a - b);
            return 0;
        })",
        " 120\n -35 ");
    EXPECT_EQ(r.output, "85\n155");
}

TEST(EndToEnd, PreludeFloatParsing)
{
    auto r = compileAndRun(R"(
        int main() {
            float x = getf();
            float y = getf();
            putf(x + y);
            return 0;
        })",
        "1.5 2.25");
    EXPECT_EQ(r.output, "3.75");
}

TEST(EndToEnd, PreludeFloatExponent)
{
    auto r = compileAndRun(R"(
        int main() {
            float x = getf();
            if (fabs(x - 1500.0) < 1.0e-6)
                return 1;
            return 0;
        })",
        "1.5e3");
    EXPECT_EQ(r.stats.exit_code, 1);
}

TEST(EndToEnd, BranchCountersRecorded)
{
    auto r = compileAndRun(R"(
        int main() {
            int taken = 0;
            for (int i = 0; i < 10; i++)
                if (i < 3)
                    taken = taken + 1;
            return taken;
        })");
    EXPECT_EQ(r.stats.exit_code, 3);
    EXPECT_GT(r.stats.cond_branches, 0);
    // Sum of per-site counters must equal the global counter.
    int64_t executed = 0, taken = 0;
    for (const auto &b : r.stats.branches) {
        executed += b.executed;
        taken += b.taken;
    }
    EXPECT_EQ(executed, r.stats.cond_branches);
    EXPECT_EQ(taken, r.stats.taken_branches);
}

TEST(EndToEnd, DoWhileRunsAtLeastOnce)
{
    auto r = compileAndRun(R"(
        int main() {
            int n = 0;
            do {
                n = n + 1;
            } while (n < 0);
            return n;
        })");
    EXPECT_EQ(r.stats.exit_code, 1);
}

TEST(EndToEnd, CompileErrorOnUndeclared)
{
    EXPECT_THROW(compileAndRun("int main() { return nope; }"), CompileError);
}

TEST(EndToEnd, CompileErrorOnBadTypes)
{
    EXPECT_THROW(compileAndRun("int main() { float f = 1.5; return f % 2; }"),
                 CompileError);
}

TEST(EndToEnd, RuntimeTrapOnDivByZero)
{
    EXPECT_THROW(compileAndRun(R"(
        int main() {
            int zero = geti();   // 0, unknown at compile time
            return 5 / zero;
        })",
        "0"),
        RuntimeError);
}

TEST(EndToEnd, RuntimeTrapOnOutOfBounds)
{
    EXPECT_THROW(compileAndRun(R"(
        int a[4];
        int main() {
            int i = geti();
            return a[i];
        })",
        "100000"),
        RuntimeError);
}

TEST(EndToEnd, GlobalInitializers)
{
    auto r = compileAndRun(R"(
        int x = 40 + 2;
        int table[5] = {1, 2, 3};
        float pi = 3.0 + 0.14159;
        int main() {
            if (table[0] != 1) return 1;
            if (table[2] != 3) return 2;
            if (table[4] != 0) return 3;
            if (pi < 3.14 || pi > 3.15) return 4;
            return x;
        })");
    EXPECT_EQ(r.stats.exit_code, 42);
}

TEST(EndToEnd, IncDecOperators)
{
    auto r = compileAndRun(R"(
        int a[3];
        int main() {
            int i = 5;
            int x = i++;   // x=5 i=6
            int y = ++i;   // y=7 i=7
            int z = i--;   // z=7 i=6
            a[0] = 10;
            a[0]++;
            return x * 1000 + y * 100 + z * 10 + (a[0] - 10) + i - 6;
        })");
    EXPECT_EQ(r.stats.exit_code, 5 * 1000 + 7 * 100 + 7 * 10 + 1);
}

TEST(EndToEnd, DeadCodeEliminationPreservesBehaviour)
{
    const char *source = R"(
        int debug = 0;
        int main() {
            int sum = 0;
            for (int i = 0; i < 50; i++) {
                if (debug > 1000000) {  // never true, but not constant
                    putc('!');
                }
                sum += i;
            }
            if (0) {
                sum = -1;   // statically dead
            }
            return sum;
        })";
    auto plain = compileAndRun(source);
    CompileOptions dce;
    dce.eliminate_dead_code = true;
    auto optimized = compileAndRun(source, "", dce);
    EXPECT_EQ(plain.stats.exit_code, optimized.stats.exit_code);
    EXPECT_LE(optimized.stats.instructions, plain.stats.instructions);
}

TEST(EndToEnd, LoopBranchesAreBackwardTaken)
{
    isa::Program program = compile(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 1000; i++)
                n += i;
            return n & 1023;
        })");
    // Loops are rotated, so the final test of a loop condition branches
    // backward. (Early operands of && / || loop conditions legitimately
    // branch forward to the next check, so not every kLoop site is
    // backward — but the simple single-compare loop here must be.)
    bool found_backward_loop = false;
    for (const auto &site : program.branch_sites) {
        if (site.kind == isa::BranchKind::kLoop && site.backward)
            found_backward_loop = true;
    }
    EXPECT_TRUE(found_backward_loop);
}

} // namespace
} // namespace ifprob

/**
 * @file
 * Domain-correctness tests for the workloads: the circuit simulator must
 * obey device physics, the PLA minimizer must actually minimize, the
 * numeric analogues must scale the way their SPEC namesakes do. These
 * guard against the workloads degenerating into branchy no-ops.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>

#include "compiler/pipeline.h"
#include "support/error.h"
#include "support/str.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace ifprob {
namespace {

vm::RunResult
runWorkload(const std::string &name, const std::string &dataset)
{
    const auto &w = workloads::get(name);
    static std::map<std::string, isa::Program> cache;
    if (!cache.count(name))
        cache.emplace(name, compile(w.source));
    vm::Machine machine(cache.at(name));
    for (const auto &d : w.datasets) {
        if (d.name == dataset) {
            vm::RunLimits limits;
            limits.max_instructions = 2'000'000'000;
            return machine.run(d.input, limits);
        }
    }
    throw Error("no dataset " + dataset);
}

double
nodeVoltage(const std::string &output, int node)
{
    std::string key = strPrintf("v%d=", node);
    auto pos = output.find(key);
    EXPECT_NE(pos, std::string::npos) << output;
    return std::strtod(output.c_str() + pos + key.size(), nullptr);
}

TEST(Physics, SpiceDiodeForwardDrop)
{
    // circuit3: V(3) - R(100) - D(2->3) ... the first diode conducts;
    // a silicon junction drops roughly 0.5-0.8 V at these currents.
    auto r = runWorkload("spice", "circuit3");
    double v2 = nodeVoltage(r.output, 2);
    double v3 = nodeVoltage(r.output, 3);
    double drop = v2 - v3;
    EXPECT_GT(drop, 0.4) << r.output;
    EXPECT_LT(drop, 0.9) << r.output;
    // And current flows: the cathode-side resistor sees a real voltage.
    EXPECT_GT(v3, 0.5);
}

TEST(Physics, SpiceBjtInverterSaturates)
{
    // circuit4: base driven at 0.72 V through the BE junction with a
    // 2.2k collector load — enough base current to saturate: the
    // collector must sit well below Vcc/2, but not below ground.
    auto r = runWorkload("spice", "circuit4");
    double vc = nodeVoltage(r.output, 3);
    EXPECT_LT(vc, 1.5) << r.output;
    EXPECT_GT(vc, -0.2) << r.output;
}

TEST(Physics, SpiceMosfetInverterInverts)
{
    // add_fet: gates driven at 2.5 V (on). First drain is pulled low,
    // which turns the second stage off, whose drain floats high, etc.
    auto r = runWorkload("spice", "add_fet");
    double d1 = nodeVoltage(r.output, 3);
    double d2 = nodeVoltage(r.output, 4);
    EXPECT_LT(d1, 1.5) << r.output;  // on-transistor pulls low
    EXPECT_GT(d2, 3.0) << r.output;  // next stage off, pulled up
}

TEST(Physics, SpiceGreyRunsScaleWithSteps)
{
    auto small = runWorkload("spice", "greysmall");
    auto big = runWorkload("spice", "greybig");
    // Identical netlist, ~34x the transient steps: instruction counts
    // scale accordingly and final states agree (both settled).
    double ratio = static_cast<double>(big.stats.instructions) /
                   static_cast<double>(small.stats.instructions);
    EXPECT_GT(ratio, 15.0);
    EXPECT_LT(ratio, 60.0);
    EXPECT_NEAR(nodeVoltage(big.output, 3), nodeVoltage(small.output, 3),
                0.05);
}

TEST(Physics, EspressoReducesLiteralCount)
{
    // Minimization must strictly reduce the literal count (raised
    // don't-cares) on every reference dataset.
    for (const char *dataset : {"bca", "cps", "ti", "tial"}) {
        SCOPED_TRACE(dataset);
        const auto &w = workloads::get("espresso");
        std::string input;
        for (const auto &d : w.datasets)
            if (d.name == dataset)
                input = d.input;
        auto r = runWorkload("espresso", dataset);
        auto literals = [](const std::string &pla) {
            int64_t n = 0;
            for (char c : pla)
                n += c == '0' || c == '1';
            return n;
        };
        EXPECT_LT(literals(r.output), literals(input));
    }
}

TEST(Physics, EqntottAdd5MatchesArithmetic)
{
    auto r = runWorkload("eqntott", "add5");
    auto lines = split(r.output, '\n');
    const int bits = 5;
    ASSERT_GE(lines.size(), 1u << (2 * bits + 1));
    for (int row = 0; row < (1 << (2 * bits + 1)); row += 97) {
        int a = row & 0x1f;
        int b = (row >> bits) & 0x1f;
        int cin = (row >> (2 * bits)) & 1;
        const std::string &outs = lines[static_cast<size_t>(row)];
        int sum = 0;
        for (int i = 0; i < bits; ++i)
            sum |= (outs[static_cast<size_t>(2 * i)] - '0') << i;
        int carry = outs[static_cast<size_t>(2 * bits - 1)] - '0';
        EXPECT_EQ(sum | (carry << bits), a + b + cin)
            << "row " << row;
    }
}

TEST(Physics, DoducScalesWithSimulatedTime)
{
    auto tiny = runWorkload("doduc", "tiny");
    auto small = runWorkload("doduc", "small");
    auto ref = runWorkload("doduc", "ref");
    EXPECT_LT(tiny.stats.instructions, small.stats.instructions);
    EXPECT_LT(small.stats.instructions, ref.stats.instructions);
    // steps 400 -> 1200 -> 4000: roughly 3x and ~3.3x.
    double r1 = static_cast<double>(small.stats.instructions) /
                static_cast<double>(tiny.stats.instructions);
    EXPECT_GT(r1, 2.0);
    EXPECT_LT(r1, 4.5);
}

TEST(Physics, FppppScalesWithShellPairs)
{
    auto four = runWorkload("fpppp", "4atoms");
    auto eight = runWorkload("fpppp", "8atoms");
    // Shell pairs: C(80,2)/C(40,2) = 3160/780 ~ 4.05x.
    double ratio = static_cast<double>(eight.stats.instructions) /
                   static_cast<double>(four.stats.instructions);
    EXPECT_GT(ratio, 3.3);
    EXPECT_LT(ratio, 4.8);
}

TEST(Physics, CompressRatiosTrackEntropy)
{
    const auto &w = workloads::get("compress");
    isa::Program p = compile(w.source);
    vm::Machine m(p);
    auto ratio = [&](const char *name) {
        for (const auto &d : w.datasets) {
            if (d.name == name) {
                auto r = m.run(d.input);
                return static_cast<double>(r.output.size()) /
                       static_cast<double>(d.input.size() - 1);
            }
        }
        return -1.0;
    };
    double prose = ratio("long");
    double c_src = ratio("cmprssc");
    double binary = ratio("cmprss");
    // Word-repetitive prose compresses hardest; binary-ish data with
    // noise segments compresses worst.
    EXPECT_LT(prose, 0.55);
    EXPECT_LT(c_src, 0.75);
    EXPECT_GT(binary, prose);
}

TEST(Physics, MccEmitsBalancedPrograms)
{
    auto r = runWorkload("mcc", "c_metric");
    // Label definitions ('B n') must cover every jump target ('Z n',
    // 'J n') exactly: collect ids.
    std::set<long> defined, referenced;
    for (const auto &line : split(r.output, '\n')) {
        if (line.size() < 3 || line[1] != ' ')
            continue;
        long id = std::strtol(line.c_str() + 2, nullptr, 10);
        if (line[0] == 'B')
            defined.insert(id);
        else if (line[0] == 'Z' || line[0] == 'J')
            referenced.insert(id);
    }
    EXPECT_FALSE(defined.empty());
    for (long id : referenced)
        EXPECT_TRUE(defined.count(id)) << "undefined label " << id;
}

TEST(Physics, TomcatvResidualIsSmallAfterRelaxation)
{
    auto r = runWorkload("tomcatv", "(builtin)");
    // First output line is the final max residual of the SOR sweep.
    double residual = std::strtod(r.output.c_str(), nullptr);
    EXPECT_GT(residual, 0.0);
    EXPECT_LT(residual, 0.05) << r.output;
}

} // namespace
} // namespace ifprob

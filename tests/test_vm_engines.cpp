/**
 * @file
 * Differential tests holding the three interpreter cores to the
 * stats-equivalence contract (docs/vm.md): for every program, input,
 * and limit, the fast pre-decoded engine and the trace-compiling tier
 * (both its BTFNT-static and profile-guided plans) must produce
 * bit-for-bit identical RunResults to the reference switch engine —
 * same counters, same per-site branch counts, same output and exit
 * code, the same observer event sequence, and on trap paths the same
 * RuntimeError message with identical partial statistics (fuel
 * exhaustion included, at the exact same instruction count).
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compiler/pipeline.h"
#include "isa/instruction.h"
#include "isa/program.h"
#include "obs/metrics.h"
#include "support/error.h"
#include "vm/decode.h"
#include "vm/engine.h"
#include "vm/jit/superblock.h"
#include "vm/jit/trace_compile.h"
#include "vm/jit/trace_unit.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace ifprob {
namespace {

/** One engine's run: the filled-in result plus the trap message, if any.
 *  Uses the engine entry points directly so trap paths leave their
 *  partial statistics visible for comparison. */
struct EngineOutcome
{
    vm::RunResult result;
    std::string error; ///< empty when the run completed
};

/** Run @p p through the full jit pipeline (selection, template
 *  compilation, patched-stream execution). A null @p profile selects
 *  with the BTFNT heuristic; a non-null one exercises the
 *  profile-guided planner exactly as the tier controller does. */
EngineOutcome
runTraceTier(const isa::Program &p, std::string_view input,
             const vm::RunLimits &limits = {},
             vm::BranchObserver *observer = nullptr,
             const std::vector<vm::BranchCounts> *profile = nullptr)
{
    EngineOutcome out;
    try {
        vm::DecodedProgram decoded = vm::decodeProgram(p);
        vm::jit::SuperblockPlan plan =
            vm::jit::selectSuperblocks(p, decoded, profile);
        vm::jit::TraceProgram tier = vm::jit::compileTraces(
            p, decoded, plan, profile != nullptr ? "profile" : "static");
        vm::runTraceEngine(p, tier, input, limits, observer, out.result);
    } catch (const RuntimeError &e) {
        out.error = e.what();
    }
    return out;
}

EngineOutcome
runEngine(const isa::Program &p, vm::Engine engine, std::string_view input,
          const vm::RunLimits &limits = {},
          vm::BranchObserver *observer = nullptr)
{
    EngineOutcome out;
    try {
        if (engine == vm::Engine::kFast) {
            vm::DecodedProgram decoded = vm::decodeProgram(p);
            vm::runFastEngine(p, decoded, input, limits, observer,
                              out.result);
        } else if (engine == vm::Engine::kTrace) {
            return runTraceTier(p, input, limits, observer);
        } else {
            vm::runSwitchEngine(p, input, limits, observer, out.result);
        }
    } catch (const RuntimeError &e) {
        out.error = e.what();
    }
    return out;
}

void
expectIdenticalStats(const vm::RunStats &fast, const vm::RunStats &ref,
                     const std::string &label)
{
    EXPECT_EQ(fast.instructions, ref.instructions) << label;
    EXPECT_EQ(fast.cond_branches, ref.cond_branches) << label;
    EXPECT_EQ(fast.taken_branches, ref.taken_branches) << label;
    EXPECT_EQ(fast.jumps, ref.jumps) << label;
    EXPECT_EQ(fast.direct_calls, ref.direct_calls) << label;
    EXPECT_EQ(fast.indirect_calls, ref.indirect_calls) << label;
    EXPECT_EQ(fast.direct_returns, ref.direct_returns) << label;
    EXPECT_EQ(fast.indirect_returns, ref.indirect_returns) << label;
    EXPECT_EQ(fast.selects, ref.selects) << label;
    EXPECT_EQ(fast.exit_code, ref.exit_code) << label;
    ASSERT_EQ(fast.branches.size(), ref.branches.size()) << label;
    for (size_t i = 0; i < fast.branches.size(); ++i) {
        EXPECT_EQ(fast.branches[i].executed, ref.branches[i].executed)
            << label << " site " << i;
        EXPECT_EQ(fast.branches[i].taken, ref.branches[i].taken)
            << label << " site " << i;
    }
}

void
expectIdenticalOutcomes(const EngineOutcome &fast,
                        const EngineOutcome &ref, const std::string &label)
{
    EXPECT_EQ(fast.error, ref.error) << label;
    EXPECT_EQ(fast.result.output, ref.result.output) << label;
    expectIdenticalStats(fast.result.stats, ref.result.stats, label);
}

/** Run @p p on all three engines (the trace tier twice: BTFNT-static
 *  and profile-guided from the reference run's own site counts) and
 *  require identical outcomes; returns the (shared) outcome for further
 *  assertions. */
EngineOutcome
diffRun(const isa::Program &p, std::string_view input,
        const vm::RunLimits &limits = {}, const std::string &label = "")
{
    EngineOutcome ref = runEngine(p, vm::Engine::kSwitch, input, limits);
    EngineOutcome fast = runEngine(p, vm::Engine::kFast, input, limits);
    expectIdenticalOutcomes(fast, ref, label + " [fast]");
    EngineOutcome trace = runTraceTier(p, input, limits);
    expectIdenticalOutcomes(trace, ref, label + " [trace/static]");
    // The reference run's per-site counts stand in for the tier
    // controller's accumulated profile (same shape, same source).
    EngineOutcome profiled = runTraceTier(p, input, limits, nullptr,
                                          &ref.result.stats.branches);
    expectIdenticalOutcomes(profiled, ref, label + " [trace/profile]");
    return ref;
}

struct RecordingObserver : vm::BranchObserver
{
    struct Event
    {
        int kind; ///< 0 = branch, 1 = unavoidable break
        int site;
        bool taken;
        int64_t at;

        bool operator==(const Event &o) const
        {
            return kind == o.kind && site == o.site && taken == o.taken &&
                   at == o.at;
        }
    };
    std::vector<Event> events;

    void onBranch(int site_id, bool taken, int64_t instructions) override
    {
        events.push_back({0, site_id, taken, instructions});
    }
    void onUnavoidableBreak(int64_t instructions) override
    {
        events.push_back({1, -1, false, instructions});
    }
};

isa::Program
compileNoPrelude(std::string_view src)
{
    CompileOptions options;
    options.include_prelude = false;
    return compile(src, options);
}

// --- completed-run parity across the whole workload suite ---

TEST(VmEngines, WorkloadsBitIdenticalAcrossDatasetSample)
{
    vm::RunLimits limits;
    limits.max_instructions = 4'000'000'000ll;
    for (const auto &w : workloads::all()) {
        isa::Program p = compile(w.source);
        // Sample: first and last dataset (identical when only one).
        std::vector<const workloads::Dataset *> sample = {
            &w.datasets.front(), &w.datasets.back()};
        if (sample[0] == sample[1])
            sample.pop_back();
        for (const auto *ds : sample) {
            EngineOutcome out = diffRun(p, ds->input, limits,
                                        w.name + "/" + ds->name);
            EXPECT_TRUE(out.error.empty())
                << w.name << "/" << ds->name << ": " << out.error;
        }
    }
}

TEST(VmEngines, ObserverEventStreamsIdentical)
{
    // Conditional branches and indirect calls/returns, so both observer
    // callbacks fire.
    isa::Program p = compileNoPrelude(R"(
        int id(int x) { return x; }
        int main() {
            int f = &id;
            int n = 0;
            for (int i = 0; i < 200; i++) {
                if (i % 3 == 0)
                    n += icall(f, i);
                else
                    n += id(i);
            }
            return n & 255;
        })");
    RecordingObserver fast_obs, ref_obs, trace_obs, profiled_obs;
    EngineOutcome fast =
        runEngine(p, vm::Engine::kFast, "", {}, &fast_obs);
    EngineOutcome ref =
        runEngine(p, vm::Engine::kSwitch, "", {}, &ref_obs);
    expectIdenticalOutcomes(fast, ref, "observer run");
    EngineOutcome trace = runTraceTier(p, "", {}, &trace_obs);
    expectIdenticalOutcomes(trace, ref, "observer run [trace/static]");
    EngineOutcome profiled = runTraceTier(p, "", {}, &profiled_obs,
                                          &ref.result.stats.branches);
    expectIdenticalOutcomes(profiled, ref, "observer run [trace/profile]");
    ASSERT_FALSE(fast_obs.events.empty());
    EXPECT_EQ(fast_obs.events, ref_obs.events);
    EXPECT_EQ(trace_obs.events, ref_obs.events);
    EXPECT_EQ(profiled_obs.events, ref_obs.events);
}

TEST(VmEngines, ObserverEventsIdenticalInsideHotLoopTraces)
{
    // A hot biased loop the superblock selector definitely compiles, so
    // observer events fire from *inside* runTraceUnit — the inline
    // callback path with prefix-derived instruction counts, both on
    // predicted guards and on the mispredicted side exits every 7th
    // iteration.
    isa::Program p = compileNoPrelude(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 5000; i++) {
                if (i % 7 == 0)
                    n += 3;
                else
                    n += 1;
            }
            return n & 255;
        })");
    RecordingObserver ref_obs, trace_obs, profiled_obs;
    EngineOutcome ref =
        runEngine(p, vm::Engine::kSwitch, "", {}, &ref_obs);
    EngineOutcome trace = runTraceTier(p, "", {}, &trace_obs);
    expectIdenticalOutcomes(trace, ref, "hot loop [trace/static]");
    EngineOutcome profiled = runTraceTier(p, "", {}, &profiled_obs,
                                          &ref.result.stats.branches);
    expectIdenticalOutcomes(profiled, ref, "hot loop [trace/profile]");
    ASSERT_GT(ref_obs.events.size(), 5000u);
    EXPECT_EQ(trace_obs.events, ref_obs.events);
    EXPECT_EQ(profiled_obs.events, ref_obs.events);
    // The compiled tier must actually have run traces, not degraded to
    // plain fast-path dispatch.
    EXPECT_GT(trace.result.jit.trace_entries, 0);
    EXPECT_GT(profiled.result.jit.trace_entries, 0);
}

// --- trap-path parity ---

TEST(VmEngines, BadLoadTrapParity)
{
    isa::Program p = compileNoPrelude(
        "int a[2]; int main() { return a[getc()]; }");
    EngineOutcome out =
        diffRun(p, std::string(1, char(200)), {}, "bad load");
    EXPECT_NE(out.error.find("load address"), std::string::npos)
        << out.error;
}

TEST(VmEngines, StackOverflowTrapParity)
{
    isa::Program p = compileNoPrelude(
        "int f(int n) { return f(n + 1); } int main() { return f(0); }");
    vm::RunLimits limits;
    limits.max_call_depth = 64;
    EngineOutcome out = diffRun(p, "", limits, "stack overflow");
    EXPECT_NE(out.error.find("call stack overflow"), std::string::npos)
        << out.error;
}

TEST(VmEngines, DivisionByZeroTrapParity)
{
    isa::Program p = compileNoPrelude(
        "int main() { int x = getc() - getc(); return 1 / x; }");
    EngineOutcome out = diffRun(p, "aa", {}, "div by zero");
    EXPECT_NE(out.error.find("division by zero"), std::string::npos)
        << out.error;
}

TEST(VmEngines, FuelExhaustionTrapsAtExactSameInstruction)
{
    isa::Program p = compileNoPrelude(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 100000; i++)
                if (i & 1)
                    n += i;
            return n & 255;
        })");
    // Budgets chosen to land the exhaustion point at different phases of
    // the fast loop — including mid-block values that force the
    // unchecked loop to yield to the checked tail at varying distances
    // from the limit.
    for (int64_t budget : {1, 2, 7, 137, 1000, 4242, 65537}) {
        vm::RunLimits limits;
        limits.max_instructions = budget;
        std::string label =
            "budget " + std::to_string(budget);
        EngineOutcome out = diffRun(p, "", limits, label);
        EXPECT_NE(out.error.find("instruction budget exceeded"),
                  std::string::npos)
            << label << ": " << out.error;
        // The trapping instruction is counted, and nothing after it runs.
        EXPECT_EQ(out.result.stats.instructions, budget + 1) << label;
    }
}

TEST(VmEngines, BudgetExactlySufficientDoesNotTrap)
{
    isa::Program p = compileNoPrelude("int main() { return 42; }");
    EngineOutcome unlimited = diffRun(p, "", {}, "unlimited");
    vm::RunLimits limits;
    limits.max_instructions = unlimited.result.stats.instructions;
    EngineOutcome exact = diffRun(p, "", limits, "exact budget");
    EXPECT_TRUE(exact.error.empty()) << exact.error;
    EXPECT_EQ(exact.result.stats.exit_code, 42);
}

// --- argument-staging checks (both engines, same messages) ---

TEST(VmEngines, DirectCallArityMismatchTraps)
{
    // Hand-built: the code generator always stages callee.num_params
    // arguments, so a mismatched direct call can only be constructed at
    // the isa layer.
    isa::Program p;
    isa::Function callee;
    callee.name = "callee";
    callee.num_params = 2;
    callee.num_regs = 2;
    callee.code = {isa::makeRet(0)};
    isa::Function main_fn;
    main_fn.name = "main";
    main_fn.num_regs = 2;
    main_fn.code = {
        isa::makeMovI(0, 7),
        isa::makeArg(0, 0), // stages 1 arg; callee expects 2
        isa::makeCall(1, 0),
        isa::makeRet(1),
    };
    p.functions = {callee, main_fn};
    p.entry = 1;
    EngineOutcome out = diffRun(p, "", {}, "direct call arity");
    EXPECT_NE(out.error.find("call to callee: 1 args staged, 2 expected"),
              std::string::npos)
        << out.error;
}

TEST(VmEngines, DirectCallMatchingArityStillWorks)
{
    isa::Program p = compileNoPrelude(
        "int add(int a, int b) { return a + b; } "
        "int main() { return add(40, 2); }");
    EngineOutcome out = diffRun(p, "", {}, "matching arity");
    EXPECT_TRUE(out.error.empty()) << out.error;
    EXPECT_EQ(out.result.stats.exit_code, 42);
}

TEST(VmEngines, NegativeArgIndexTraps)
{
    isa::Program p;
    isa::Function main_fn;
    main_fn.name = "main";
    main_fn.num_regs = 1;
    main_fn.code = {
        isa::makeMovI(0, 1),
        isa::makeArg(-1, 0),
        isa::makeRet(0),
    };
    p.functions = {main_fn};
    p.entry = 0;
    EngineOutcome out = diffRun(p, "", {}, "negative arg index");
    EXPECT_NE(out.error.find("negative call argument index"),
              std::string::npos)
        << out.error;
}

// --- decode/fusion structural checks ---

TEST(VmEngines, FusedPairStaysEnterableAtSecondSlot)
{
    // A jump lands directly on the ALU slot of a fused movI+ALU pair;
    // the constant-staging movI at slot 3 must be skipped.
    isa::Program p;
    isa::Function main_fn;
    main_fn.name = "main";
    main_fn.num_regs = 3;
    main_fn.code = {
        isa::makeMovI(0, 7),    // 0: r0 = 7
        isa::makeMovI(1, 100),  // 1: r1 = 100
        isa::makeJmp(4),        // 2: enter the pair mid-way
        isa::makeMovI(1, 3),    // 3: fused movI+add head (never entered)
        isa::makeBinary(isa::Opcode::kAdd, 2, 0, 1), // 4: r2 = r0 + r1
        isa::makeRet(2),        // 5
    };
    p.functions = {main_fn};
    p.entry = 0;

    vm::DecodedProgram decoded = vm::decodeProgram(p);
    EXPECT_EQ(decoded.stats.fused_movi_alu, 1);
    EngineOutcome out = diffRun(p, "", {}, "mid-pair entry");
    EXPECT_TRUE(out.error.empty()) << out.error;
    EXPECT_EQ(out.result.stats.exit_code, 107);
}

TEST(VmEngines, DecodeFindsFusionInBranchyCode)
{
    isa::Program p = compileNoPrelude(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 100; i++)
                if (i & 3)
                    n = n + 2;
            return n & 255;
        })");
    vm::DecodedProgram decoded = vm::decodeProgram(p);
    EXPECT_GT(decoded.stats.fusedSlots(), 0);
    EXPECT_GT(decoded.stats.fusionRate(), 0.0);
    EXPECT_EQ(decoded.stats.fused_cmp_br +
                  decoded.stats.fused_movi_alu +
                  decoded.stats.fused_movi_alu_br,
              decoded.stats.fusedSlots());
    // Sentinel slots are appended per function but not counted.
    int64_t slots = 0;
    for (const auto &f : p.functions)
        slots += static_cast<int64_t>(f.code.size());
    EXPECT_EQ(decoded.stats.instructions, slots);
}

// --- Machine-level engine selection and trapped-run accounting ---

TEST(VmEngines, MachineEngineSelection)
{
    isa::Program p = compileNoPrelude("int main() { return 3; }");
    vm::Machine fast(p, vm::Engine::kFast);
    vm::Machine ref(p, vm::Engine::kSwitch);
    vm::Machine trace(p, vm::Engine::kTrace);
    EXPECT_EQ(fast.engine(), vm::Engine::kFast);
    EXPECT_EQ(ref.engine(), vm::Engine::kSwitch);
    EXPECT_EQ(trace.engine(), vm::Engine::kTrace);
    EXPECT_EQ(vm::engineName(fast.engine()), "fast");
    EXPECT_EQ(vm::engineName(ref.engine()), "switch");
    EXPECT_EQ(vm::engineName(trace.engine()), "trace");
    // Only the pre-decoding engines pay for (and account) a decode.
    EXPECT_GT(fast.decodeStats().instructions, 0);
    EXPECT_EQ(ref.decodeStats().instructions, 0);
    EXPECT_GT(trace.decodeStats().instructions, 0);
    EXPECT_EQ(fast.run("").stats.exit_code, 3);
    EXPECT_EQ(ref.run("").stats.exit_code, 3);
    EXPECT_EQ(trace.run("").stats.exit_code, 3);
}

TEST(VmEngines, ParseEngineNameRoundTrips)
{
    EXPECT_EQ(vm::parseEngineName("fast"), vm::Engine::kFast);
    EXPECT_EQ(vm::parseEngineName("switch"), vm::Engine::kSwitch);
    EXPECT_EQ(vm::parseEngineName("reference"), vm::Engine::kSwitch);
    EXPECT_EQ(vm::parseEngineName("trace"), vm::Engine::kTrace);
}

TEST(VmEngines, UnknownEngineNameIsAHardErrorNamingTheValidEngines)
{
    // A typo'd IFPROB_VM_ENGINE must fail loudly, never fall back to a
    // default — and the message must tell the user what is accepted.
    try {
        vm::parseEngineName("turbo");
        FAIL() << "parseEngineName accepted an unknown engine";
    } catch (const Error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown engine \"turbo\""), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("\"fast\""), std::string::npos) << msg;
        EXPECT_NE(msg.find("\"switch\""), std::string::npos) << msg;
        EXPECT_NE(msg.find("\"trace\""), std::string::npos) << msg;
    }
}

TEST(VmEngines, TrappedRunRecordsPartialStats)
{
    // Machine::run must record the statistics accumulated up to the
    // trap, not zeros (visible through the vm.instructions counter).
    isa::Program p = compileNoPrelude(
        "int main() { while (1) {} return 0; }");
    vm::RunLimits limits;
    limits.max_instructions = 1000;
    for (vm::Engine engine : {vm::Engine::kFast, vm::Engine::kSwitch,
                              vm::Engine::kTrace}) {
        vm::Machine m(p, engine);
        const int64_t before = obs::counter("vm.instructions").value();
        EXPECT_THROW(m.run("", limits), RuntimeError);
        const int64_t delta =
            obs::counter("vm.instructions").value() - before;
        EXPECT_EQ(delta, limits.max_instructions + 1)
            << vm::engineName(engine);
    }
}

} // namespace
} // namespace ifprob

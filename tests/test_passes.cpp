/**
 * @file
 * Unit tests for the optimization passes: constant folding, copy
 * propagation, dead-write removal, jump threading, unreachable-code
 * removal, read-only-global promotion, branch-site compaction — and the
 * central safety properties (behaviour preservation; site preservation
 * in the default pipeline).
 */
#include <gtest/gtest.h>

#include "compiler/passes.h"
#include "support/error.h"
#include "compiler/pipeline.h"
#include "vm/machine.h"

namespace ifprob {
namespace {

isa::Program
compileWith(std::string_view src, bool optimize, bool dce)
{
    CompileOptions options;
    options.include_prelude = false;
    options.optimize = optimize;
    options.eliminate_dead_code = dce;
    return compile(src, options);
}

vm::RunResult
runProgram(const isa::Program &p, std::string_view input = "")
{
    vm::Machine m(p);
    return m.run(input);
}

int64_t
countOps(const isa::Program &p, isa::Opcode op)
{
    int64_t n = 0;
    for (const auto &fn : p.functions)
        for (const auto &insn : fn.code)
            n += insn.op == op;
    return n;
}

TEST(Passes, ConstantFoldingShrinksStraightLineCode)
{
    const char *src = "int main() { return (3 + 4) * (10 - 2) / 7; }";
    isa::Program raw = compileWith(src, false, false);
    isa::Program opt = compileWith(src, true, false);
    EXPECT_LT(opt.staticSize(), raw.staticSize());
    EXPECT_EQ(runProgram(opt).stats.exit_code, 8);
    EXPECT_EQ(runProgram(raw).stats.exit_code, 8);
    // Fully folded: no arithmetic survives.
    EXPECT_EQ(countOps(opt, isa::Opcode::kMul), 0);
    EXPECT_EQ(countOps(opt, isa::Opcode::kDiv), 0);
}

TEST(Passes, ConstantFoldingNeverFoldsTrappingDivision)
{
    // 1/0 must remain a runtime trap, not a compile-time crash or a
    // silently folded value.
    const char *src = "int main() { if (getc() == -1) return 1 / 0; "
                      "return 0; }";
    isa::Program opt = compileWith(src, true, false);
    EXPECT_GT(countOps(opt, isa::Opcode::kDiv), 0);
    EXPECT_THROW(runProgram(opt, ""), RuntimeError);
    EXPECT_EQ(runProgram(opt, "x").stats.exit_code, 0);
}

TEST(Passes, DefaultPipelinePreservesBranchSites)
{
    const char *src = R"(
        int main() {
            int x = getc(), n = 0;
            if (0) n = 99;           // constant-false guard
            if (x > 0) n = 1;
            while (n < 10) n += 3;
            return n;
        })";
    isa::Program raw = compileWith(src, false, false);
    isa::Program opt = compileWith(src, true, false);
    // The optimizer may not remove or renumber branch sites (profile
    // identity) — though constant conditions never created sites at all.
    EXPECT_EQ(raw.branch_sites.size(), opt.branch_sites.size());
    for (size_t i = 0; i < raw.branch_sites.size(); ++i) {
        EXPECT_EQ(raw.branch_sites[i].kind, opt.branch_sites[i].kind);
        EXPECT_EQ(raw.branch_sites[i].line, opt.branch_sites[i].line);
    }
    // And the per-site dynamic counts are identical.
    auto r_raw = runProgram(raw, "a");
    auto r_opt = runProgram(opt, "a");
    ASSERT_EQ(r_raw.stats.branches.size(), r_opt.stats.branches.size());
    for (size_t i = 0; i < r_raw.stats.branches.size(); ++i) {
        EXPECT_EQ(r_raw.stats.branches[i].executed,
                  r_opt.stats.branches[i].executed);
        EXPECT_EQ(r_raw.stats.branches[i].taken,
                  r_opt.stats.branches[i].taken);
    }
}

TEST(Passes, DcePipelineFoldsConstantGuardedBranches)
{
    const char *src = R"(
        int debug = 0;
        int main() {
            int n = 0;
            for (int i = 0; i < 100; i++) {
                if (debug)
                    putc('!');
                n += i;
            }
            return n & 255;
        })";
    isa::Program plain = compileWith(src, true, false);
    isa::Program dce = compileWith(src, true, true);
    auto r_plain = runProgram(plain);
    auto r_dce = runProgram(dce);
    EXPECT_EQ(r_plain.stats.exit_code, r_dce.stats.exit_code);
    EXPECT_EQ(r_plain.output, r_dce.output);
    // The guard branch is gone: fewer sites and fewer dynamic branches.
    EXPECT_LT(dce.branch_sites.size(), plain.branch_sites.size());
    EXPECT_LT(r_dce.stats.cond_branches, r_plain.stats.cond_branches);
    EXPECT_LT(r_dce.stats.instructions, r_plain.stats.instructions);
}

TEST(Passes, PromotionRespectsWrittenGlobals)
{
    // `mode` is written, so its guard must NOT fold even under DCE.
    const char *src = R"(
        int mode = 0;
        int main() {
            int n = 0;
            mode = getc() == 'x';
            for (int i = 0; i < 10; i++)
                if (mode)
                    n++;
            return n;
        })";
    isa::Program dce = compileWith(src, true, true);
    EXPECT_EQ(runProgram(dce, "x").stats.exit_code, 10);
    EXPECT_EQ(runProgram(dce, "y").stats.exit_code, 0);
}

TEST(Passes, PromotionHandlesArrayAliasing)
{
    // Writing through the array must not let the promoter treat the
    // array's own elements as constants; the scalar before it stays
    // promotable.
    const char *src = R"(
        int flag = 0;
        int arr[4] = {5, 6, 7, 8};
        int main() {
            arr[getc() - '0'] = 42;
            if (flag)
                return -1;
            return arr[1];
        })";
    isa::Program dce = compileWith(src, true, true);
    EXPECT_EQ(runProgram(dce, "1").stats.exit_code, 42);
    EXPECT_EQ(runProgram(dce, "0").stats.exit_code, 6);
}

TEST(Passes, DceRemovesUnreachableFunctionsCode)
{
    const char *src = R"(
        int unused_helper(int x) {
            int acc = 0;
            for (int i = 0; i < x; i++)
                acc += i * i;
            return acc;
        }
        int main() { return 7; }
    )";
    isa::Program plain = compileWith(src, true, false);
    isa::Program dce = compileWith(src, true, true);
    // Static size shrinks (the helper body itself is still compiled but
    // main's code is minimal either way); at minimum nothing breaks and
    // behaviour is identical.
    EXPECT_EQ(runProgram(plain).stats.exit_code, 7);
    EXPECT_EQ(runProgram(dce).stats.exit_code, 7);
    EXPECT_LE(dce.staticSize(), plain.staticSize());
}

TEST(Passes, CompactBranchSitesRenumbersDensely)
{
    const char *src = R"(
        int off = 0;
        int main() {
            int x = getc(), n = 0;
            if (off) n = 1;       // folds away under DCE
            if (x > 0) n = 2;     // survives
            if (off) n = 3;       // folds away
            if (x > 5) n = 4;     // survives
            return n;
        })";
    isa::Program dce = compileWith(src, true, true);
    ASSERT_EQ(dce.branch_sites.size(), 2u);
    std::vector<int> ids;
    for (const auto &fn : dce.functions)
        for (const auto &insn : fn.code)
            if (insn.op == isa::Opcode::kBr)
                ids.push_back(static_cast<int>(insn.imm));
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], 0);
    EXPECT_EQ(ids[1], 1);
    // Fingerprint differs from the non-DCE image, so profiles cannot be
    // applied across the two compilations by mistake.
    isa::Program plain = compileWith(src, true, false);
    EXPECT_NE(plain.fingerprint(), dce.fingerprint());
}

TEST(Passes, JumpThreadingRemovesJumpChains)
{
    // Nested if/else producing jmp-to-jmp patterns; after optimization
    // the dynamic jump count must not exceed the unoptimized count.
    const char *src = R"(
        int main() {
            int x = getc(), n = 0;
            if (x > 0) {
                if (x > 10) {
                    n = 1;
                } else {
                    n = 2;
                }
            } else {
                n = 3;
            }
            return n;
        })";
    isa::Program raw = compileWith(src, false, false);
    isa::Program opt = compileWith(src, true, false);
    auto r_raw = runProgram(raw, "a");
    auto r_opt = runProgram(opt, "a");
    EXPECT_EQ(r_raw.stats.exit_code, r_opt.stats.exit_code);
    EXPECT_LE(r_opt.stats.jumps, r_raw.stats.jumps);
    EXPECT_LE(r_opt.stats.instructions, r_raw.stats.instructions);
}

TEST(Passes, DeadWriteRemovalKeepsSideEffects)
{
    // The unused result of getc() must not remove the getc itself
    // (it consumes input).
    const char *src = R"(
        int main() {
            getc();
            return getc();
        })";
    isa::Program opt = compileWith(src, true, false);
    EXPECT_EQ(runProgram(opt, "ab").stats.exit_code, 'b');
    EXPECT_EQ(countOps(opt, isa::Opcode::kGetc), 2);
}

TEST(Passes, OptimizationLevelsPreserveWorkloadBehaviour)
{
    // A branchy program exercising every statement form, run at all
    // three pipeline settings over several inputs.
    const char *src = R"(
        int tab[16];
        int hash(int x) { return (x * 2654435761) & 15; }
        int main() {
            int c = getc(), n = 0;
            while (c != -1) {
                tab[hash(c)] += c % 7 == 0 ? 2 : 1;
                switch (c & 3) {
                  case 0: n += 1; break;
                  case 1: n += tab[hash(c)]; break;
                  default: n -= 1;
                }
                c = getc();
            }
            int sum = 0;
            for (int i = 0; i < 16; i++)
                sum += tab[i];
            return (n + sum) & 255;
        })";
    isa::Program raw = compileWith(src, false, false);
    isa::Program opt = compileWith(src, true, false);
    isa::Program dce = compileWith(src, true, true);
    for (const char *input :
         {"", "a", "hello world", "zzzzzzzzzz", "\x01\x02\x03\x7f"}) {
        auto e0 = runProgram(raw, input).stats.exit_code;
        EXPECT_EQ(runProgram(opt, input).stats.exit_code, e0) << input;
        EXPECT_EQ(runProgram(dce, input).stats.exit_code, e0) << input;
    }
    EXPECT_LE(opt.staticSize(), raw.staticSize());
}

TEST(Passes, IdempotentOnFixpoint)
{
    const char *src = "int main() { int x = getc(); "
                      "return x > 0 ? x * 2 : 0 - x; }";
    isa::Program once = compileWith(src, true, false);
    isa::Program again = once; // run the pipeline a second time
    optimizeProgram(again, true, false);
    EXPECT_EQ(once.fingerprint(), again.fingerprint());
}

} // namespace
} // namespace ifprob

/**
 * @file
 * Tests for the minic runtime prelude: formatted input (geti/getf with
 * signs, whitespace, exponents, pushback, EOF), formatted output (puti),
 * and the select-based min/max helpers.
 */
#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "support/str.h"
#include "vm/machine.h"

namespace ifprob {
namespace {

vm::RunResult
run(std::string_view src, std::string_view input)
{
    isa::Program p = compile(src);
    vm::Machine m(p);
    return m.run(input);
}

TEST(Prelude, GetiParsesSignsAndSeparators)
{
    auto r = run(R"(
        int main() {
            puti(geti()); putc(' ');
            puti(geti()); putc(' ');
            puti(geti()); putc(' ');
            puti(geti());
            return 0;
        })",
        "  42,-17\n\t0   +unparsed");
    // '+' is not consumed by geti; the fourth read hits it and reports 0
    // with geti_eof set.
    EXPECT_EQ(r.output, "42 -17 0 0");
}

TEST(Prelude, GetiSetsEofFlag)
{
    auto r = run(R"(
        int main() {
            int a = geti();
            int ok1 = geti_eof;
            int b = geti();
            return ok1 * 100 + geti_eof * 10 + (a == 7) + (b == 0);
        })",
        "7");
    // First read fine (flag 0), second read EOF (flag 1).
    EXPECT_EQ(r.stats.exit_code, 0 * 100 + 10 + 1 + 1);
}

struct FloatCase
{
    const char *text;
    double expected;
};

class PreludeGetfTest : public ::testing::TestWithParam<FloatCase>
{
};

TEST_P(PreludeGetfTest, ParsesWithinTolerance)
{
    std::string src = strPrintf(R"(
        int main() {
            float x = getf();
            float want = %.17g;
            float mag = fabs(want) + 1.0e-12;
            if (fabs(x - want) / mag < 1.0e-9)
                return 1;
            putf(x);
            return 0;
        })",
        GetParam().expected);
    auto r = run(src, GetParam().text);
    EXPECT_EQ(r.stats.exit_code, 1) << GetParam().text << " -> " << r.output;
}

INSTANTIATE_TEST_SUITE_P(
    Formats, PreludeGetfTest,
    ::testing::Values(FloatCase{"0", 0.0}, FloatCase{"3", 3.0},
                      FloatCase{"3.25", 3.25}, FloatCase{"-2.5", -2.5},
                      FloatCase{".5", 0.5}, FloatCase{"1e3", 1000.0},
                      FloatCase{"1.5e-3", 0.0015},
                      FloatCase{"2.5E+2", 250.0},
                      FloatCase{"  \n 7.125", 7.125},
                      FloatCase{"0.001", 0.001},
                      FloatCase{"123456.789", 123456.789}));

TEST(Prelude, GetfThenGetiSequencing)
{
    // The pushback character from getf must not corrupt the next geti.
    auto r = run(R"(
        int main() {
            float x = getf();
            int n = geti();
            puti(ftoi(x * 10.0));
            putc(' ');
            puti(n);
            return 0;
        })",
        "2.5 42");
    EXPECT_EQ(r.output, "25 42");
}

TEST(Prelude, PutiEdgeCases)
{
    auto r = run(R"(
        int main() {
            puti(0); putc(' ');
            puti(-1); putc(' ');
            puti(1000000); putc(' ');
            puti(-987654321);
            return 0;
        })",
        "");
    EXPECT_EQ(r.output, "0 -1 1000000 -987654321");
}

TEST(Prelude, MinMaxHelpers)
{
    auto r = run(R"(
        int main() {
            if (imin(3, 7) != 3) return 1;
            if (imax(3, 7) != 7) return 2;
            if (imin(-3, -7) != -7) return 3;
            if (fmin2(1.5, 2.5) > 1.6) return 4;
            if (fmax2(1.5, 2.5) < 2.4) return 5;
            return 0;
        })",
        "");
    EXPECT_EQ(r.stats.exit_code, 0);
}

TEST(Prelude, UngetchRoundTrip)
{
    auto r = run(R"(
        int main() {
            int a = ngetc();
            ungetch(a);
            int b = ngetc();
            return (a == 'x') + (b == 'x');
        })",
        "x");
    EXPECT_EQ(r.stats.exit_code, 2);
}

TEST(Prelude, HelpersAddNoUnexpectedOutput)
{
    // geti/getf must not print anything themselves.
    auto r = run("int main() { geti(); getf(); return 0; }", "1 2.0");
    EXPECT_TRUE(r.output.empty());
}

} // namespace
} // namespace ifprob

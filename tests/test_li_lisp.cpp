/**
 * @file
 * Language-semantics tests for the li workload's Lisp interpreter,
 * driven by small Lisp programs fed as input. The interpreter is the
 * largest minic program in the suite, so its evaluator, reader,
 * environments, and builtins get their own coverage beyond the bundled
 * datasets.
 */
#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace ifprob {
namespace {

class LiLisp : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        program_ = new isa::Program(compile(workloads::get("li").source));
        machine_ = new vm::Machine(*program_);
    }

    static void
    TearDownTestSuite()
    {
        delete machine_;
        delete program_;
        machine_ = nullptr;
        program_ = nullptr;
    }

    static std::string
    eval(const std::string &lisp)
    {
        vm::RunLimits limits;
        limits.max_instructions = 500'000'000;
        return machine_->run(lisp, limits).output;
    }

    static isa::Program *program_;
    static vm::Machine *machine_;
};

isa::Program *LiLisp::program_ = nullptr;
vm::Machine *LiLisp::machine_ = nullptr;

TEST_F(LiLisp, Arithmetic)
{
    EXPECT_EQ(eval("(print (+ 2 3))"), "5");
    EXPECT_EQ(eval("(print (- 2 5))"), "-3");
    EXPECT_EQ(eval("(print (* 6 7))"), "42");
    EXPECT_EQ(eval("(print (/ 17 5))"), "3");
    EXPECT_EQ(eval("(print (rem 17 5))"), "2");
    EXPECT_EQ(eval("(print (+ (* 2 3) (/ 10 2)))"), "11");
}

TEST_F(LiLisp, Comparisons)
{
    EXPECT_EQ(eval("(print (< 1 2))"), "t");
    EXPECT_EQ(eval("(print (> 1 2))"), "nil");
    EXPECT_EQ(eval("(print (= 3 3))"), "t");
    EXPECT_EQ(eval("(print (<= 3 3))"), "t");
    EXPECT_EQ(eval("(print (>= 2 3))"), "nil");
}

TEST_F(LiLisp, QuoteAndListOps)
{
    EXPECT_EQ(eval("(print (quote (1 2 3)))"), "(1 2 3)");
    EXPECT_EQ(eval("(print '(a b))"), "(a b)");
    EXPECT_EQ(eval("(print (car '(1 2 3)))"), "1");
    EXPECT_EQ(eval("(print (cdr '(1 2 3)))"), "(2 3)");
    EXPECT_EQ(eval("(print (cons 1 '(2 3)))"), "(1 2 3)");
    EXPECT_EQ(eval("(print (cons 1 2))"), "(1 . 2)");
    EXPECT_EQ(eval("(print (null '()))"), "t");
    EXPECT_EQ(eval("(print (null '(1)))"), "nil");
    EXPECT_EQ(eval("(print (atom 5))"), "t");
    EXPECT_EQ(eval("(print (atom '(1)))"), "nil");
}

TEST_F(LiLisp, IfAndTruthiness)
{
    EXPECT_EQ(eval("(print (if t 1 2))"), "1");
    EXPECT_EQ(eval("(print (if nil 1 2))"), "2");
    EXPECT_EQ(eval("(print (if nil 1))"), "nil");
    // Integers (even 0) are truthy; only nil is false.
    EXPECT_EQ(eval("(print (if 0 'yes 'no))"), "yes");
    EXPECT_EQ(eval("(print (not nil))"), "t");
    EXPECT_EQ(eval("(print (not 5))"), "nil");
}

TEST_F(LiLisp, DefineLambdaClosures)
{
    EXPECT_EQ(eval("(define sq (lambda (x) (* x x))) (print (sq 9))"),
              "81");
    // Lexical capture: make-adder closes over n.
    EXPECT_EQ(eval("(define make-adder (lambda (n) (lambda (x) (+ x n))))"
                   "(define add5 (make-adder 5))"
                   "(print (add5 37))"),
              "42");
    // Shadowing: inner parameter hides outer binding.
    EXPECT_EQ(eval("(define x 100)"
                   "(define f (lambda (x) (+ x 1)))"
                   "(print (f 5)) (terpri) (print x)"),
              "6\n100");
}

TEST_F(LiLisp, SetBangMutatesNearestBinding)
{
    // set! on a parameter mutates the local binding only.
    EXPECT_EQ(eval("(define x 1)"
                   "(define f (lambda (x) (begin (set! x 99) x)))"
                   "(print (f 5)) (terpri) (print x)"),
              "99\n1");
    // set! on a global.
    EXPECT_EQ(eval("(define g 10) (set! g 20) (print g)"), "20");
}

TEST_F(LiLisp, WhileAndBegin)
{
    EXPECT_EQ(eval("(define i 0) (define sum 0)"
                   "(while (< i 10)"
                   "  (begin (set! sum (+ sum i)) (set! i (+ i 1))))"
                   "(print sum)"),
              "45");
    EXPECT_EQ(eval("(print (begin 1 2 3))"), "3");
}

TEST_F(LiLisp, RecursionDeepEnough)
{
    EXPECT_EQ(eval("(define sum-to (lambda (n)"
                   "  (if (= n 0) 0 (+ n (sum-to (- n 1))))))"
                   "(print (sum-to 200))"),
              "20100");
}

TEST_F(LiLisp, HigherOrderFunctions)
{
    EXPECT_EQ(eval("(define map1 (lambda (f xs)"
                   "  (if (null xs) '()"
                   "      (cons (f (car xs)) (map1 f (cdr xs))))))"
                   "(print (map1 (lambda (x) (* x x)) '(1 2 3 4)))"),
              "(1 4 9 16)");
}

TEST_F(LiLisp, EqIsIdentity)
{
    EXPECT_EQ(eval("(print (eq 'a 'a))"), "t");  // interned symbols
    EXPECT_EQ(eval("(print (eq 'a 'b))"), "nil");
    EXPECT_EQ(eval("(define l '(1 2)) (print (eq l l))"), "t");
    // Fresh conses are distinct objects.
    EXPECT_EQ(eval("(print (eq (cons 1 2) (cons 1 2)))"), "nil");
}

TEST_F(LiLisp, NegativeNumbersAndSymbolsWithDash)
{
    EXPECT_EQ(eval("(print -5)"), "-5");
    EXPECT_EQ(eval("(print (+ -3 -4))"), "-7");
    EXPECT_EQ(eval("(define my-var 7) (print my-var)"), "7");
    EXPECT_EQ(eval("(define - (lambda (a b) a)) (print 1)"), "1");
}

TEST_F(LiLisp, CommentsAndWhitespace)
{
    EXPECT_EQ(eval("; leading comment\n(print ; inline\n 42)\n; trailing"),
              "42");
    EXPECT_EQ(eval("  \t\r\n (print 1)"), "1");
}

TEST_F(LiLisp, ErrorsHaltWithMessage)
{
    EXPECT_EQ(eval("(print undefined-symbol)"), "unbound symbol\n");
    EXPECT_EQ(eval("(print (/ 1 0))"), "division by zero\n");
    EXPECT_EQ(eval("(print (+ 'a 1))"), "expected integer\n");
    EXPECT_EQ(eval("(5 6)"), "apply: not a function\n");
}

TEST_F(LiLisp, TerpriAndMultiplePrints)
{
    EXPECT_EQ(eval("(print 1) (terpri) (print 2) (terpri)"), "1\n2\n");
}

} // namespace
} // namespace ifprob

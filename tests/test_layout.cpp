/**
 * @file
 * Tests for profile-guided code layout: behaviour preservation, branch
 * site preservation, jump reduction, and backward-flag refresh.
 */
#include <gtest/gtest.h>

#include "compiler/layout.h"
#include "support/error.h"
#include "compiler/pipeline.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace ifprob {
namespace {

struct LayoutFixture
{
    explicit LayoutFixture(std::string_view src, std::string_view input)
        : program(compile(src))
    {
        vm::Machine machine(program);
        baseline = machine.run(input);
        db = std::make_unique<profile::ProfileDb>(
            "p", program.fingerprint(), baseline.stats);
        predictor = std::make_unique<predict::ProfilePredictor>(*db);
        laid_out = program;
        layoutProgram(laid_out, *predictor, *db);
    }

    isa::Program program;
    isa::Program laid_out;
    vm::RunResult baseline;
    std::unique_ptr<profile::ProfileDb> db;
    std::unique_ptr<predict::ProfilePredictor> predictor;
};

const char *kBranchy = R"(
    int classify(int x) {
        if (x % 17 == 0)
            return 3;       // cold path
        if (x & 1)
            return 1;
        return 2;
    }
    int main() {
        int x = 7, n = 0;
        for (int i = 0; i < 3000; i++) {
            x = (x * 1103515245 + 12345) % 2147483648;
            switch (classify(x)) {
              case 1: n += 1; break;
              case 2: n += 2; break;
              default: n -= 1;
            }
        }
        return n & 255;
    })";

TEST(Layout, PreservesBehaviour)
{
    LayoutFixture f(kBranchy, "");
    vm::Machine machine(f.laid_out);
    auto after = machine.run("");
    EXPECT_EQ(after.stats.exit_code, f.baseline.stats.exit_code);
    EXPECT_EQ(after.output, f.baseline.output);
    // Branch behaviour identical site by site.
    ASSERT_EQ(after.stats.branches.size(),
              f.baseline.stats.branches.size());
    for (size_t i = 0; i < after.stats.branches.size(); ++i) {
        EXPECT_EQ(after.stats.branches[i].executed,
                  f.baseline.stats.branches[i].executed);
        EXPECT_EQ(after.stats.branches[i].taken,
                  f.baseline.stats.branches[i].taken);
    }
}

TEST(Layout, ReducesDynamicJumps)
{
    LayoutFixture f(kBranchy, "");
    vm::Machine machine(f.laid_out);
    auto after = machine.run("");
    EXPECT_LT(after.stats.jumps, f.baseline.stats.jumps);
    EXPECT_LT(after.stats.instructions, f.baseline.stats.instructions);
}

TEST(Layout, PreservesBranchSiteIds)
{
    LayoutFixture f(kBranchy, "");
    EXPECT_EQ(f.laid_out.branch_sites.size(),
              f.program.branch_sites.size());
    // Every site id still appears on exactly one kBr.
    std::vector<int> count(f.laid_out.branch_sites.size(), 0);
    for (const auto &fn : f.laid_out.functions)
        for (const auto &insn : fn.code)
            if (insn.op == isa::Opcode::kBr)
                ++count[static_cast<size_t>(insn.imm)];
    for (size_t i = 0; i < count.size(); ++i)
        EXPECT_EQ(count[i], 1) << "site " << i;
}

TEST(Layout, RecomputesBackwardFlags)
{
    LayoutFixture f(kBranchy, "");
    for (const auto &fn : f.laid_out.functions) {
        for (size_t pc = 0; pc < fn.code.size(); ++pc) {
            const auto &insn = fn.code[pc];
            if (insn.op != isa::Opcode::kBr)
                continue;
            EXPECT_EQ(f.laid_out.branch_sites[static_cast<size_t>(insn.imm)]
                          .backward,
                      insn.b <= static_cast<int>(pc));
        }
    }
}

TEST(Layout, FingerprintChangesAndProfilesRefuse)
{
    LayoutFixture f(kBranchy, "");
    EXPECT_NE(f.laid_out.fingerprint(), f.program.fingerprint());
    // A profile of the old image cannot be accumulated into one of the
    // new image.
    vm::Machine machine(f.laid_out);
    auto after = machine.run("");
    profile::ProfileDb new_db("p", f.laid_out.fingerprint(), after.stats);
    EXPECT_THROW(new_db.accumulate(*f.db), Error);
}

TEST(Layout, WorksOnRealWorkloads)
{
    for (const char *name : {"mcc", "eqntott"}) {
        SCOPED_TRACE(name);
        const auto &w = workloads::get(name);
        LayoutFixture f(w.source, w.datasets.front().input);
        vm::Machine machine(f.laid_out);
        auto after = machine.run(w.datasets.front().input);
        EXPECT_EQ(after.output, f.baseline.output);
        EXPECT_LE(after.stats.jumps, f.baseline.stats.jumps);
    }
}

} // namespace
} // namespace ifprob

/**
 * @file
 * Unit tests for the virtual machine: operation semantics (checked
 * against host arithmetic via the shared ALU), traps, limits, I/O,
 * counter categories, and the branch observer.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "compiler/pipeline.h"
#include "isa/alu.h"
#include "support/error.h"
#include "vm/machine.h"

namespace ifprob {
namespace {

vm::RunResult
run(std::string_view src, std::string_view input = "",
    vm::RunLimits limits = {}, vm::BranchObserver *obs = nullptr)
{
    CompileOptions options;
    options.include_prelude = false;
    isa::Program p = compile(src, options);
    vm::Machine m(p);
    return m.run(input, limits, obs);
}

// --- ALU semantics (shared between interpreter and constant folder) ---

TEST(Alu, IntegerOps)
{
    using isa::Opcode;
    EXPECT_EQ(isa::evalBinaryAlu(Opcode::kAdd, 3, 4), 7);
    EXPECT_EQ(isa::evalBinaryAlu(Opcode::kSub, 3, 4), -1);
    EXPECT_EQ(isa::evalBinaryAlu(Opcode::kMul, -3, 4), -12);
    EXPECT_EQ(isa::evalBinaryAlu(Opcode::kDiv, -7, 2), -3);
    EXPECT_EQ(isa::evalBinaryAlu(Opcode::kRem, -7, 2), -1);
    EXPECT_EQ(isa::evalBinaryAlu(Opcode::kDiv, 7, 0), std::nullopt);
    EXPECT_EQ(isa::evalBinaryAlu(Opcode::kRem, 7, 0), std::nullopt);
    EXPECT_EQ(isa::evalBinaryAlu(Opcode::kDiv, INT64_MIN, -1),
              std::nullopt); // overflow treated as unevaluable, VM traps
    EXPECT_EQ(isa::evalBinaryAlu(Opcode::kShl, 1, 65), 2); // masked count
    EXPECT_EQ(isa::evalBinaryAlu(Opcode::kShr, -8, 1), -4); // arithmetic
    EXPECT_EQ(isa::evalBinaryAlu(Opcode::kCmpLt, 2, 3), 1);
    EXPECT_EQ(isa::evalBinaryAlu(Opcode::kCmpGe, 2, 3), 0);
}

TEST(Alu, FloatOpsRoundTripThroughBits)
{
    using isa::Opcode;
    int64_t a = isa::fromF(1.5), b = isa::fromF(2.25);
    EXPECT_DOUBLE_EQ(isa::asF(*isa::evalBinaryAlu(Opcode::kFAdd, a, b)),
                     3.75);
    EXPECT_DOUBLE_EQ(isa::asF(*isa::evalBinaryAlu(Opcode::kFMul, a, b)),
                     3.375);
    EXPECT_EQ(*isa::evalBinaryAlu(Opcode::kFCmpLt, a, b), 1);
    EXPECT_DOUBLE_EQ(isa::asF(*isa::evalUnaryAlu(Opcode::kFSqrt,
                                                 isa::fromF(9.0))),
                     3.0);
}

TEST(Alu, FtoISaturatesInsteadOfUb)
{
    using isa::Opcode;
    EXPECT_EQ(*isa::evalUnaryAlu(Opcode::kFtoI, isa::fromF(1e300)),
              INT64_MAX);
    EXPECT_EQ(*isa::evalUnaryAlu(Opcode::kFtoI, isa::fromF(-1e300)),
              INT64_MIN);
    EXPECT_EQ(*isa::evalUnaryAlu(Opcode::kFtoI,
                                 isa::fromF(std::nan(""))),
              0);
    EXPECT_EQ(*isa::evalUnaryAlu(Opcode::kFtoI, isa::fromF(-2.9)), -2);
}

// --- traps and limits ---

TEST(Vm, TrapMessagesNameFunctionAndPc)
{
    try {
        run("int f(int x) { return 1 / x; } "
            "int main() { return f(getc() - getc()); }",
            "aa");
        FAIL() << "expected RuntimeError";
    } catch (const RuntimeError &e) {
        EXPECT_NE(std::string(e.what()).find("f+"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("division"),
                  std::string::npos);
    }
}

TEST(Vm, InstructionBudgetTrap)
{
    vm::RunLimits limits;
    limits.max_instructions = 1000;
    EXPECT_THROW(run("int main() { while (1) {} return 0; }", "", limits),
                 RuntimeError);
}

TEST(Vm, CallDepthTrap)
{
    vm::RunLimits limits;
    limits.max_call_depth = 64;
    EXPECT_THROW(run("int f(int n) { return f(n + 1); } "
                     "int main() { return f(0); }",
                     "", limits),
                 RuntimeError);
}

TEST(Vm, DeepButBoundedRecursionSucceeds)
{
    auto r = run("int f(int n) { if (n == 0) return 0; "
                 "return 1 + f(n - 1); } "
                 "int main() { return f(5000) - 4744; }");
    EXPECT_EQ(r.stats.exit_code, 256);
}

TEST(Vm, IndirectCallArityMismatchTraps)
{
    EXPECT_THROW(run("int f(int a, int b) { return a + b; } "
                     "int main() { return icall(&f, 1); }"),
                 RuntimeError);
}

TEST(Vm, IndirectCallBadTargetTraps)
{
    EXPECT_THROW(run("int main() { return icall(999); }"), RuntimeError);
}

TEST(Vm, LoadStoreBoundsTraps)
{
    EXPECT_THROW(run("int a[2]; int main() { return a[getc()]; }",
                     std::string(1, char(200))),
                 RuntimeError);
    EXPECT_THROW(run("int a[2]; int main() { a[0 - getc()] = 1; return 0; }",
                     "c"),
                 RuntimeError);
}

// --- I/O and halt ---

TEST(Vm, GetcReturnsMinusOneAtEofForever)
{
    auto r = run("int main() { int a = getc(), b = getc(), c = getc(); "
                 "return (a == 'x') + (b == -1) + (c == -1); }",
                 "x");
    EXPECT_EQ(r.stats.exit_code, 3);
}

TEST(Vm, PutcTruncatesToByte)
{
    auto r = run("int main() { putc(65 + 256 * 7); return 0; }");
    EXPECT_EQ(r.output, "A");
}

TEST(Vm, HaltStopsImmediately)
{
    auto r = run("int main() { putc('a'); halt(); putc('b'); return 9; }");
    EXPECT_EQ(r.output, "a");
    EXPECT_EQ(r.stats.exit_code, 0);
}

// --- counter categories ---

TEST(Vm, CounterCategoriesAreConsistent)
{
    auto r = run(R"(
        int id(int x) { return x; }
        int main() {
            int f = &id;
            int n = 0;
            for (int i = 0; i < 10; i++)
                n += id(i) + icall(f, i);
            return n & 255;
        })");
    EXPECT_EQ(r.stats.direct_calls, 10);
    EXPECT_EQ(r.stats.indirect_calls, 10);
    EXPECT_EQ(r.stats.direct_returns, 10);
    EXPECT_EQ(r.stats.indirect_returns, 10);
    EXPECT_GT(r.stats.jumps, 0);
    // Per-site counters sum to the totals.
    int64_t executed = 0, taken = 0;
    for (const auto &b : r.stats.branches) {
        executed += b.executed;
        taken += b.taken;
    }
    EXPECT_EQ(executed, r.stats.cond_branches);
    EXPECT_EQ(taken, r.stats.taken_branches);
    // The main return's kRet is a direct return of the entry frame... no:
    // entry return ends the run before being classified; totals above
    // already matched, which is the point.
}

TEST(Vm, SelectCountsAsOneInstructionNoBranch)
{
    auto before = run("int main() { int x = getc(); return x; }", "a");
    auto with_select = run(
        "int main() { int x = getc(); return x > 0 ? 1 : 2; }", "a");
    EXPECT_EQ(with_select.stats.selects, 1);
    EXPECT_EQ(with_select.stats.cond_branches,
              before.stats.cond_branches); // no extra branch
}

// --- observer ---

class RecordingObserver : public vm::BranchObserver
{
  public:
    void
    onBranch(int site, bool taken, int64_t instructions) override
    {
        events.emplace_back(site, taken);
        EXPECT_GT(instructions, last_instructions);
        last_instructions = instructions;
    }
    std::vector<std::pair<int, bool>> events;
    int64_t last_instructions = 0;
};

TEST(Vm, ObserverSeesEveryBranchInOrder)
{
    RecordingObserver obs;
    auto r = run(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 3; i++)
                n += i;
            return n;
        })",
        "", {}, &obs);
    EXPECT_EQ(static_cast<int64_t>(obs.events.size()),
              r.stats.cond_branches);
    // Rotated loop: taken, taken, taken, not-taken.
    ASSERT_EQ(obs.events.size(), 4u);
    EXPECT_TRUE(obs.events[0].second);
    EXPECT_TRUE(obs.events[1].second);
    EXPECT_TRUE(obs.events[2].second);
    EXPECT_FALSE(obs.events[3].second);
}

TEST(Vm, RegistersAreZeroInitializedPerCall)
{
    // A function reading an uninitialized local (declared without init
    // in a fresh frame) must see 0 every call, not stale data.
    auto r = run(R"(
        int f(int set) {
            int local;
            if (set)
                local = 77;
            return local;
        }
        int main() {
            f(1);
            return f(0);
        })");
    EXPECT_EQ(r.stats.exit_code, 0);
}

TEST(Vm, ExitCodeFromMainReturn)
{
    EXPECT_EQ(run("int main() { return 123; }").stats.exit_code, 123);
    EXPECT_EQ(run("int main() { return -5; }").stats.exit_code, -5);
}

TEST(Vm, RunStatsSaveLoadRoundTrip)
{
    auto r = run(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 100; i++)
                if (i & 1)
                    n++;
            return n;
        })");
    std::stringstream ss;
    r.stats.save(ss);
    vm::RunStats loaded = vm::RunStats::load(ss);
    EXPECT_EQ(loaded.instructions, r.stats.instructions);
    EXPECT_EQ(loaded.cond_branches, r.stats.cond_branches);
    EXPECT_EQ(loaded.taken_branches, r.stats.taken_branches);
    EXPECT_EQ(loaded.branches.size(), r.stats.branches.size());
    for (size_t i = 0; i < loaded.branches.size(); ++i) {
        EXPECT_EQ(loaded.branches[i].executed, r.stats.branches[i].executed);
        EXPECT_EQ(loaded.branches[i].taken, r.stats.branches[i].taken);
    }
}

TEST(Vm, RunStatsAccumulate)
{
    auto r1 = run("int main() { int n = 0; for (int i = 0; i < 5; i++) "
                  "n++; return n; }");
    vm::RunStats sum = r1.stats;
    sum.accumulate(r1.stats);
    EXPECT_EQ(sum.instructions, 2 * r1.stats.instructions);
    EXPECT_EQ(sum.cond_branches, 2 * r1.stats.cond_branches);
    EXPECT_EQ(sum.branches[0].executed, 2 * r1.stats.branches[0].executed);
    // Mismatched tables are rejected.
    vm::RunStats other;
    other.branches.resize(sum.branches.size() + 1);
    EXPECT_THROW(sum.accumulate(other), Error);
}

} // namespace
} // namespace ifprob

/**
 * @file
 * Unit tests for the breaks-in-control accounting and the text report
 * renderer.
 */
#include <gtest/gtest.h>

#include "metrics/breaks.h"
#include "metrics/report.h"
#include "support/str.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"

namespace ifprob::metrics {
namespace {

vm::RunStats
sampleStats()
{
    vm::RunStats stats;
    stats.instructions = 1000;
    stats.cond_branches = 100;
    stats.taken_branches = 80;
    stats.jumps = 50;
    stats.direct_calls = 10;
    stats.direct_returns = 10;
    stats.indirect_calls = 3;
    stats.indirect_returns = 3;
    stats.branches = {{60, 55}, {40, 25}};
    return stats;
}

TEST(Breaks, NoPredictionCountsEveryBranch)
{
    auto stats = sampleStats();
    BreakSummary s = breaksWithoutPrediction(stats);
    EXPECT_EQ(s.instructions, 1000);
    EXPECT_EQ(s.cond_branch_breaks, 100);
    EXPECT_EQ(s.unavoidable_breaks, 6); // 3 icalls + 3 ireturns
    EXPECT_EQ(s.call_breaks, 0);
    EXPECT_EQ(s.totalBreaks(), 106);
    EXPECT_NEAR(s.instructionsPerBreak(), 1000.0 / 106, 1e-12);
}

TEST(Breaks, CallCountingIsOptional)
{
    auto stats = sampleStats();
    BreakConfig with_calls{.count_calls = true};
    BreakSummary s = breaksWithoutPrediction(stats, with_calls);
    EXPECT_EQ(s.call_breaks, 20); // 10 calls + 10 returns
    EXPECT_EQ(s.totalBreaks(), 126);
}

TEST(Breaks, JumpsNeverCount)
{
    // The 50 jumps must not appear anywhere (assumed eliminated by code
    // layout, as the paper assumes).
    auto stats = sampleStats();
    BreakConfig with_calls{.count_calls = true};
    EXPECT_EQ(breaksWithoutPrediction(stats, with_calls).totalBreaks(),
              100 + 6 + 20);
}

TEST(Breaks, WithPredictorCountsOnlyMispredicts)
{
    auto stats = sampleStats();
    // Self profile: site0 -> taken (5 misses), site1 -> taken (15
    // misses); wait 25/40 taken -> predict taken, 15 miss.
    profile::ProfileDb db("p", 1, stats);
    predict::ProfilePredictor predictor(db);
    BreakSummary s = breaksWithPredictor(stats, predictor);
    EXPECT_EQ(s.cond_branch_breaks, 5 + 15);
    EXPECT_EQ(s.unavoidable_breaks, 6);
    EXPECT_EQ(s.totalBreaks(), 26);
}

TEST(Breaks, ZeroBreaksFallsBackToInstructionCount)
{
    vm::RunStats stats;
    stats.instructions = 777;
    BreakSummary s = breaksWithoutPrediction(stats);
    EXPECT_DOUBLE_EQ(s.instructionsPerBreak(), 777.0);
}

TEST(Breaks, DeadCodeFraction)
{
    EXPECT_DOUBLE_EQ(deadCodeFraction(100, 71), 0.29);
    EXPECT_DOUBLE_EQ(deadCodeFraction(100, 100), 0.0);
    // DCE can only shrink; a larger "optimized" count clamps to zero.
    EXPECT_DOUBLE_EQ(deadCodeFraction(100, 110), 0.0);
    EXPECT_DOUBLE_EQ(deadCodeFraction(0, 0), 0.0);
}

TEST(Report, TableAlignsColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "12,345"});
    std::string out = t.render();
    // Header, rule, two rows.
    auto lines = split(out, '\n');
    ASSERT_GE(lines.size(), 4u);
    EXPECT_NE(lines[1].find('+'), std::string::npos); // header rule
    // Numbers right-aligned: "1" ends in the same column as "12,345".
    EXPECT_EQ(lines[2].find('1'), lines[3].find("12,345") + 5);
}

TEST(Report, TableHandlesRulesAndRaggedRows)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"x"});
    t.addRule();
    t.addRow({"y", "z", "w"});
    std::string out = t.render();
    EXPECT_NE(out.find("-+-"), std::string::npos);
    EXPECT_NE(out.find('y'), std::string::npos);
}

TEST(Report, AsciiBar)
{
    EXPECT_EQ(asciiBar(50, 100, 10), "#####     ");
    EXPECT_EQ(asciiBar(100, 100, 4), "####");
    EXPECT_EQ(asciiBar(0, 100, 4), "    ");
    EXPECT_EQ(asciiBar(200, 100, 4), "####");  // clamped
    EXPECT_EQ(asciiBar(5, 0, 4), "    ");      // degenerate max
    EXPECT_EQ(asciiBar(1, 2, 0), "");
}

TEST(Report, EmptyTableRendersEmpty)
{
    TextTable t;
    EXPECT_EQ(t.render(), "");
}

} // namespace
} // namespace ifprob::metrics

/**
 * @file
 * Tests for the observability layer: metrics registry math, Chrome
 * trace-event well-formedness and env gating, run-report JSONL schema
 * round trips, and the Runner's cache-failure surfacing.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/runner.h"
#include "metrics/report.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/str.h"

namespace ifprob::obs {
namespace {

std::filesystem::path
tempPath(const char *stem)
{
    return std::filesystem::temp_directory_path() /
           (std::string(stem) + "-" + std::to_string(::getpid()));
}

// --- metrics ---------------------------------------------------------------

TEST(ObsMetrics, CounterAndGaugeArithmetic)
{
    Counter c;
    EXPECT_EQ(c.value(), 0);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    c.reset();
    EXPECT_EQ(c.value(), 0);

    Gauge g;
    g.set(7);
    g.set(-3);
    EXPECT_EQ(g.value(), -3);
}

TEST(ObsMetrics, HistogramBucketsAndPercentiles)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.percentileUpperBound(50.0), 0);

    h.record(0);  // bucket 0
    h.record(1);  // bucket 1: [1,1]
    h.record(2);  // bucket 2: [2,3]
    h.record(3);  // bucket 2
    h.record(900); // bucket 10: [512,1023]
    EXPECT_EQ(h.count(), 5);
    EXPECT_EQ(h.sum(), 906);
    EXPECT_EQ(h.max(), 900);
    EXPECT_DOUBLE_EQ(h.mean(), 906.0 / 5.0);
    EXPECT_EQ(h.bucketCount(0), 1);
    EXPECT_EQ(h.bucketCount(1), 1);
    EXPECT_EQ(h.bucketCount(2), 2);
    EXPECT_EQ(h.bucketCount(10), 1);

    // Median of 5 samples falls in bucket 2 -> upper bound 3.
    EXPECT_EQ(h.percentileUpperBound(50.0), 3);
    EXPECT_EQ(h.percentileUpperBound(100.0), 1023);

    h.reset();
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.max(), 0);
}

TEST(ObsMetrics, HistogramClampsHugeValues)
{
    Histogram h;
    h.record(int64_t{1} << 60); // beyond the last bucket
    EXPECT_EQ(h.count(), 1);
    EXPECT_EQ(h.bucketCount(Histogram::kBuckets - 1), 1);
}

TEST(ObsMetrics, HistogramZeroObservations)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.sum(), 0);
    EXPECT_EQ(h.max(), 0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentileUpperBound(0.0), 0);
    EXPECT_EQ(h.percentileUpperBound(50.0), 0);
    EXPECT_EQ(h.percentileUpperBound(100.0), 0);
    for (int i = 0; i < Histogram::kBuckets; ++i)
        EXPECT_EQ(h.bucketCount(i), 0);
}

TEST(ObsMetrics, HistogramSingleBucket)
{
    // 4..7 all land in bucket 3, so every percentile reads its bound.
    Histogram h;
    h.record(4);
    h.record(5);
    h.record(7);
    EXPECT_EQ(h.count(), 3);
    EXPECT_EQ(h.bucketCount(3), 3);
    EXPECT_EQ(h.max(), 7);
    EXPECT_DOUBLE_EQ(h.mean(), 16.0 / 3.0);
    EXPECT_EQ(h.percentileUpperBound(1.0), 7);
    EXPECT_EQ(h.percentileUpperBound(50.0), 7);
    EXPECT_EQ(h.percentileUpperBound(100.0), 7);
}

TEST(ObsMetrics, HistogramTopBucketOverflow)
{
    // Values past 2^(kBuckets-1) all clamp into the last bucket; the
    // percentile reads the clamped bound while sum/max keep exact values.
    Histogram h;
    const int64_t big = int64_t{1} << 60;
    h.record(big);
    h.record(2 * big);
    EXPECT_EQ(h.count(), 2);
    EXPECT_EQ(h.bucketCount(Histogram::kBuckets - 1), 2);
    EXPECT_EQ(h.max(), 2 * big);
    EXPECT_EQ(h.sum(), 3 * big);
    EXPECT_EQ(h.percentileUpperBound(50.0),
              Histogram::bucketUpperBound(Histogram::kBuckets - 1));
    EXPECT_EQ(h.percentileUpperBound(100.0),
              Histogram::bucketUpperBound(Histogram::kBuckets - 1));
}

TEST(ObsMetrics, RegistryHandsOutStableNamedInstruments)
{
    auto &c1 = counter("test_obs.registry.counter");
    auto &c2 = counter("test_obs.registry.counter");
    EXPECT_EQ(&c1, &c2);
    c1.reset();
    c1.add(5);
    EXPECT_EQ(c2.value(), 5);

    histogram("test_obs.registry.hist").record(100);
    bool found_counter = false, found_hist = false;
    for (const auto &s : Registry::instance().snapshot()) {
        if (s.name == "test_obs.registry.counter") {
            found_counter = true;
            EXPECT_EQ(s.value, 5);
            EXPECT_EQ(s.kind, MetricSample::Kind::kCounter);
        }
        if (s.name == "test_obs.registry.hist")
            found_hist = true;
    }
    EXPECT_TRUE(found_counter);
    EXPECT_TRUE(found_hist);
    EXPECT_NE(Registry::instance().renderText().find(
                  "test_obs.registry.counter"),
              std::string::npos);
}

// --- JSON ------------------------------------------------------------------

TEST(ObsJson, EscapeAndBuild)
{
    JsonObject o;
    o.field("s", "a\"b\\c\nd").field("n", int64_t{-7}).field("b", true);
    EXPECT_EQ(o.str(), "{\"s\":\"a\\\"b\\\\c\\nd\",\"n\":-7,\"b\":true}");
}

TEST(ObsJson, FlatObjectRoundTrip)
{
    auto rec = parseFlatObject(
        "{\"s\":\"hi\\n\",\"i\":42,\"d\":2.5,\"t\":true,\"f\":false,"
        "\"z\":null,\"nested\":{\"dropped\":[1,2]},\"after\":\"kept\"}");
    EXPECT_EQ(rec.at("s").str, "hi\n");
    EXPECT_EQ(rec.at("i").asInt(), 42);
    EXPECT_DOUBLE_EQ(rec.at("d").num, 2.5);
    EXPECT_TRUE(rec.at("t").boolean);
    EXPECT_FALSE(rec.at("f").boolean);
    EXPECT_EQ(rec.at("z").kind, JsonValue::Kind::kNull);
    EXPECT_EQ(rec.count("nested"), 0u); // nested values are skipped
    EXPECT_EQ(rec.at("after").str, "kept");
}

TEST(ObsJson, MalformedInputThrows)
{
    EXPECT_THROW(parseFlatObject("{\"a\":}"), Error);
    EXPECT_THROW(parseFlatObject("{\"a\":1"), Error);
    EXPECT_THROW(parseFlatObject("not json"), Error);
}

// --- tracing ---------------------------------------------------------------

TEST(ObsTrace, DisabledSessionWritesNothing)
{
    auto path = tempPath("ifprob-trace-disabled");
    std::filesystem::remove(path);
    {
        TraceSession session; // no path: disabled
        EXPECT_FALSE(session.enabled());
        ScopedSpan span("x", "test", &session);
        EXPECT_FALSE(span.active());
        span.arg("k", int64_t{1});
        session.flush();
        EXPECT_EQ(session.eventCount(), 0u);
    }
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ObsTrace, GlobalSessionDisabledWithoutEnvVar)
{
    // ctest never sets IFPROB_TRACE; the global session must be off and
    // spans must be free no-ops.
    ::unsetenv("IFPROB_TRACE");
    EXPECT_FALSE(TraceSession::global().enabled());
    ScopedSpan span("noop");
    EXPECT_FALSE(span.active());
}

TEST(ObsTrace, EmitsWellFormedChromeTraceEvents)
{
    auto path = tempPath("ifprob-trace.json");
    {
        TraceSession session(path.string());
        EXPECT_TRUE(session.enabled());
        {
            ScopedSpan span("unit.work", "test", &session);
            EXPECT_TRUE(span.active());
            span.arg("items", int64_t{3});
            span.arg("label", "abc");
        }
        session.emitInstant("unit.instant", "test", nowMicros(),
                            JsonObject().field("why", "because"));
        EXPECT_EQ(session.eventCount(), 2u);
        session.flush();
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();

    // The whole document parses (the traceEvents array is walked by the
    // nested-value skipper, so imbalanced brackets/quotes would throw).
    auto doc = parseFlatObject(text);
    EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");

    // And each event line is itself a valid flat object with the
    // chrome://tracing required fields.
    size_t events = 0;
    for (auto line : split(text, '\n')) {
        std::string_view t = trim(line);
        if (!startsWith(t, "{\"name\":")) // event lines only
            continue;
        if (t.back() == ',')
            t.remove_suffix(1);
        auto ev = parseFlatObject(t);
        ++events;
        EXPECT_FALSE(ev.at("name").str.empty());
        EXPECT_TRUE(ev.at("ph").str == "X" || ev.at("ph").str == "i");
        EXPECT_GE(ev.at("ts").num, 0.0);
        if (ev.at("ph").str == "X") {
            EXPECT_GE(ev.at("dur").num, 0.0);
        }
    }
    EXPECT_EQ(events, 2u);
    std::filesystem::remove(path);
}

// --- run reports -----------------------------------------------------------

TEST(ObsRunReport, RecordRoundTripsThroughJsonl)
{
    RunRecord r;
    r.workload = "li";
    r.dataset = "8queens";
    r.fingerprint = "00ff00ff00ff00ff";
    r.cache = "miss";
    r.instructions = 123456789;
    r.cond_branches = 2345678;
    r.taken_branches = 1234567;
    r.self_mispredicts = 98765;
    r.instr_per_mispredict = 1249.9;
    r.compile_micros = 1500;
    r.execute_micros = 250000;
    r.engine = "fast";
    r.decode_micros = 42;

    std::string line = renderRunRecord(r);
    RunRecord back = parseRunRecord(line);
    EXPECT_EQ(back.workload, r.workload);
    EXPECT_EQ(back.dataset, r.dataset);
    EXPECT_EQ(back.fingerprint, r.fingerprint);
    EXPECT_EQ(back.cache, r.cache);
    EXPECT_EQ(back.instructions, r.instructions);
    EXPECT_EQ(back.cond_branches, r.cond_branches);
    EXPECT_EQ(back.taken_branches, r.taken_branches);
    EXPECT_EQ(back.self_mispredicts, r.self_mispredicts);
    EXPECT_DOUBLE_EQ(back.instr_per_mispredict, r.instr_per_mispredict);
    EXPECT_EQ(back.compile_micros, r.compile_micros);
    EXPECT_EQ(back.execute_micros, r.execute_micros);
    EXPECT_EQ(back.engine, r.engine);
    EXPECT_EQ(back.decode_micros, r.decode_micros);
}

TEST(ObsRunReport, ParseToleratesRecordsWithoutEngineFields)
{
    // Lines written before the engine/decode fields existed still parse.
    RunRecord back = parseRunRecord(
        "{\"schema\":\"ifprob.run.v1\",\"workload\":\"li\"}");
    EXPECT_EQ(back.workload, "li");
    EXPECT_EQ(back.engine, "");
    EXPECT_EQ(back.decode_micros, 0);
}

TEST(ObsRunReport, WrongSchemaIsRejected)
{
    EXPECT_THROW(parseRunRecord("{\"schema\":\"ifprob.run.v999\"}"),
                 Error);
    EXPECT_THROW(parseRunRecord("{\"workload\":\"li\"}"), Error);
}

TEST(ObsRunReport, SinkAppendsJsonlLines)
{
    auto dir = tempPath("ifprob-report");
    std::filesystem::remove_all(dir);
    std::string path = (dir / "run_report.jsonl").string();
    {
        ReportSink sink(path);
        EXPECT_TRUE(sink.enabled());
        RunRecord r;
        r.workload = "w";
        r.dataset = "d";
        r.cache = "miss";
        r.instructions = 10;
        sink.write(r);
        sink.write(r);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        RunRecord back = parseRunRecord(line);
        EXPECT_EQ(back.workload, "w");
        EXPECT_EQ(back.instructions, 10);
    }
    EXPECT_EQ(lines, 2u);
    std::filesystem::remove_all(dir);
}

TEST(ObsRunReport, DisabledSinkWritesNoFile)
{
    ReportSink sink;
    EXPECT_FALSE(sink.enabled());
    RunRecord r;
    r.workload = "w";
    sink.write(r); // must not crash or create anything
}

// --- TextTable JSONL mirror ------------------------------------------------

TEST(ObsTable, RenderJsonlMirrorsRows)
{
    metrics::TextTable table;
    table.setHeader({"program", "value"});
    table.addRow({"li", "1,234"});
    table.addRule(); // skipped in JSONL
    table.addRow({"mcc", "5"});
    std::string jsonl = table.renderJsonl("unit_table");
    auto lines = split(jsonl, '\n');
    ASSERT_GE(lines.size(), 2u);
    auto first = parseFlatObject(lines[0]);
    EXPECT_EQ(first.at("schema").str, kTableRecordSchema);
    EXPECT_EQ(first.at("table").str, "unit_table");
    EXPECT_EQ(first.at("program").str, "li");
    EXPECT_EQ(first.at("value").str, "1,234");
    auto second = parseFlatObject(lines[1]);
    EXPECT_EQ(second.at("program").str, "mcc");
}

// --- Runner cache accounting ------------------------------------------------

class RunnerCacheStatsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = tempPath("ifprob-obs-cache");
        std::filesystem::remove_all(dir_);
        ::setenv("IFPROB_CACHE", dir_.c_str(), 1);
    }

    void TearDown() override
    {
        ::unsetenv("IFPROB_CACHE");
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::filesystem::path dir_;
};

TEST_F(RunnerCacheStatsTest, HitsMissesAndFailuresAreSurfaced)
{
    {
        harness::Runner runner;
        runner.stats("mcc", "c_metric");
        EXPECT_EQ(runner.cacheStats().hits, 0);
        EXPECT_EQ(runner.cacheStats().misses, 1);
        EXPECT_EQ(runner.cacheStats().read_failures, 0);
        EXPECT_GT(runner.cacheStats().bytes_written, 0);
    }
    {
        harness::Runner runner;
        runner.stats("mcc", "c_metric");
        EXPECT_EQ(runner.cacheStats().hits, 1);
        EXPECT_EQ(runner.cacheStats().misses, 0);
        EXPECT_GT(runner.cacheStats().bytes_read, 0);
        // Memoized second lookup does not touch the disk again.
        runner.stats("mcc", "c_metric");
        EXPECT_EQ(runner.cacheStats().hits, 1);
    }
    // Corrupt the entry: the Runner must re-run AND record the failure.
    for (auto &entry : std::filesystem::directory_iterator(dir_)) {
        std::ofstream out(entry.path(), std::ios::trunc);
        out << "garbage";
    }
    harness::Runner runner;
    const auto &stats = runner.stats("mcc", "c_metric");
    EXPECT_GT(stats.instructions, 0);
    EXPECT_EQ(runner.cacheStats().read_failures, 1);
    ASSERT_EQ(runner.cacheStats().failures.size(), 1u);
    EXPECT_NE(runner.cacheStats().failures[0].find("mcc"),
              std::string::npos);
}

} // namespace
} // namespace ifprob::obs

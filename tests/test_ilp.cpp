/**
 * @file
 * Unit tests for the ILP run-length analysis: break detection under a
 * predictor, histogram/percentile math, and consistency with the
 * aggregate break accounting.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "compiler/pipeline.h"
#include "ilp/runlength.h"
#include "metrics/breaks.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "vm/machine.h"

namespace ifprob::ilp {
namespace {

/** Predictor with one fixed answer for every site. */
class ConstPredictor : public predict::StaticPredictor
{
  public:
    explicit ConstPredictor(bool taken) : taken_(taken) {}
    bool predictTaken(int) const override { return taken_; }

  private:
    bool taken_;
};

TEST(RunLength, PerfectPredictionYieldsOneRun)
{
    CompileOptions options;
    options.include_prelude = false;
    isa::Program p = compile(
        "int main() { int n = 0; for (int i = 0; i < 50; i++) n += i; "
        "return n & 255; }",
        options);
    vm::Machine m(p);
    // The rotated loop branch is taken 50x then falls through once; an
    // always-taken predictor mispredicts exactly once (the exit).
    ConstPredictor taken(true);
    RunLengthAnalyzer analyzer(taken);
    auto r = m.run("", {}, &analyzer);
    auto s = std::move(analyzer).summary(r.stats.instructions);
    EXPECT_EQ(s.breaks, 2); // exit mispredict + final tail run
    EXPECT_EQ(s.instructions, r.stats.instructions);
}

TEST(RunLength, SummaryMatchesBreakAccounting)
{
    // Mean run length from the analyzer == instructionsPerBreak from the
    // aggregate metrics (same definition of break), modulo the final
    // tail run which the aggregate counts as break-free.
    isa::Program p = compile(R"(
        int main() {
            int x = 7, n = 0;
            for (int i = 0; i < 2000; i++) {
                x = (x * 1103515245 + 12345) % 2147483648;
                if (x & 1)
                    n++;
            }
            return n & 255;
        })");
    vm::Machine m(p);
    auto baseline = m.run("");
    profile::ProfileDb db("p", p.fingerprint(), baseline.stats);
    predict::ProfilePredictor self(db);

    RunLengthAnalyzer analyzer(self);
    auto r = m.run("", {}, &analyzer);
    auto s = std::move(analyzer).summary(r.stats.instructions);

    auto agg = metrics::breaksWithPredictor(r.stats, self);
    // runs = breaks + 1 (tail); total instructions match exactly.
    EXPECT_EQ(s.breaks, agg.totalBreaks() + 1);
    EXPECT_EQ(s.instructions, r.stats.instructions);
    EXPECT_NEAR(s.mean,
                static_cast<double>(r.stats.instructions) /
                    static_cast<double>(s.breaks),
                1e-9);
}

TEST(RunLength, PercentilesAndHistogram)
{
    RunLengthSummary s;
    {
        ConstPredictor dummy(true);
        RunLengthAnalyzer analyzer(dummy);
        // Feed synthetic breaks directly: runs of 1,2,4,8,...,512.
        int64_t at = 0;
        for (int i = 0; i < 10; ++i) {
            at += 1ll << i;
            analyzer.onUnavoidableBreak(at);
        }
        s = std::move(analyzer).summary(at); // no tail
    }
    EXPECT_EQ(s.breaks, 10);
    EXPECT_EQ(s.instructions, 1023);
    for (int b = 0; b < 10; ++b)
        EXPECT_EQ(s.histogram[static_cast<size_t>(b)], 1) << b;
    EXPECT_EQ(s.p50, 1 << 5); // index round(0.5*9)=5 on sorted runs
    EXPECT_EQ(s.p10, 1 << 1);
    EXPECT_EQ(s.p90, 1 << 8);
    EXPECT_NEAR(s.mean, 102.3, 0.01);
    // Geomean of 2^0..2^9 = 2^4.5.
    EXPECT_NEAR(s.geomean, std::pow(2.0, 4.5), 1e-6);
    // Runs >= 64: 64+128+256+512 = 960 of 1023.
    EXPECT_NEAR(s.fractionInRunsAtLeast(64), 960.0 / 1023.0, 1e-12);
}

TEST(RunLength, UnavoidableBreaksCountEvenWhenPredicted)
{
    CompileOptions options;
    options.include_prelude = false;
    isa::Program p = compile(R"(
        int id(int x) { return x; }
        int main() {
            int f = &id, n = 0;
            for (int i = 0; i < 10; i++)
                n += icall(f, i);
            return n;
        })",
        options);
    vm::Machine m(p);
    auto baseline = m.run("");
    profile::ProfileDb db("p", p.fingerprint(), baseline.stats);
    predict::ProfilePredictor self(db);
    RunLengthAnalyzer analyzer(self);
    auto r = m.run("", {}, &analyzer);
    auto s = std::move(analyzer).summary(r.stats.instructions);
    auto agg = metrics::breaksWithPredictor(r.stats, self);
    // 10 icalls + 10 indirect returns are breaks regardless of branch
    // prediction quality.
    EXPECT_GE(agg.unavoidable_breaks, 20);
    EXPECT_EQ(s.breaks, agg.totalBreaks() + 1);
}

} // namespace
} // namespace ifprob::ilp

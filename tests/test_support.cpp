/**
 * @file
 * Tests for the support layer (string helpers, RNG determinism), the
 * dataset generators, and the disassembler.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "compiler/pipeline.h"
#include "isa/disasm.h"
#include "support/atomic_file.h"
#include "support/mapped_file.h"
#include "support/rng.h"
#include "support/sharded_map.h"
#include "support/str.h"
#include "workloads/datagen.h"

namespace ifprob {
namespace {

TEST(Str, StrPrintf)
{
    EXPECT_EQ(strPrintf("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(strPrintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strPrintf("empty"), "empty");
    // Long output is not truncated.
    std::string big(500, 'a');
    EXPECT_EQ(strPrintf("%s!", big.c_str()).size(), 501u);
}

TEST(Str, Split)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Str, SplitWhitespace)
{
    EXPECT_EQ(splitWhitespace("  a \t b\nc  "),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(Str, TrimAndStartsWith)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n"), "");
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
}

TEST(Str, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567), "1,234,567");
    EXPECT_EQ(withCommas(-1234567), "-1,234,567");
}

TEST(Str, SanitizeFileName)
{
    EXPECT_EQ(sanitizeFileName("prog_a1"), "prog_a1");
    EXPECT_EQ(sanitizeFileName("a/b c:d"), "a_b_c_d");
    EXPECT_EQ(sanitizeFileName(""), "");
    EXPECT_EQ(sanitizeFileName("../../etc"), "______etc");
}

TEST(ShardedSlotMapTest, OneSlotPerKeyAcrossThreads)
{
    struct Slot
    {
        std::atomic<int> hits{0};
    };
    ShardedSlotMap<std::string, Slot> map;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&map] {
            for (int i = 0; i < 100; ++i)
                map.slot("key" + std::to_string(i % 10))->hits.fetch_add(1);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(map.size(), 10u);
    int total = 0;
    for (const std::string &key : map.keys())
        total += map.peek(key)->hits.load();
    EXPECT_EQ(total, 800);
}

TEST(ShardedSlotMapTest, KeysAreGloballySortedAndPeekNeverCreates)
{
    ShardedSlotMap<std::string, int> map;
    for (const char *k : {"zeta", "alpha", "mid"})
        map.slot(k);
    EXPECT_EQ(map.keys(),
              (std::vector<std::string>{"alpha", "mid", "zeta"}));
    EXPECT_EQ(map.peek("missing"), nullptr);
    EXPECT_EQ(map.size(), 3u);

    // Slots survive clear() through their shared_ptrs.
    auto held = map.slot("alpha");
    *held = 7;
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(*held, 7);
}

TEST(AtomicFile, WritesViaTempAndRename)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     "ifprob_atomic_file_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "payload.bin").string();

    EXPECT_EQ(fileSizeOf(path), 0); // missing file stats as empty
    const int64_t bytes = writeFileAtomically(
        path, [](std::ofstream &out) { out << "hello"; });
    EXPECT_EQ(bytes, 5);
    EXPECT_EQ(fileSizeOf(path), 5);
    // No temp droppings left behind.
    size_t entries = 0;
    for ([[maybe_unused]] auto &e :
         std::filesystem::directory_iterator(dir))
        ++entries;
    EXPECT_EQ(entries, 1u);

    // A failed write leaves the previous contents intact.
    const int64_t failed = writeFileAtomically(
        (dir / "nosuchdir" / "x").string(),
        [](std::ofstream &out) { out << "y"; });
    EXPECT_EQ(failed, 0);
    EXPECT_EQ(fileSizeOf(path), 5);
    std::filesystem::remove_all(dir);
}

TEST(MappedFile, MapsRegularFilesAndFallsBackWhenDisabled)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     "ifprob_mapped_file_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "blob.bin").string();
    const std::string payload("mapped\0bytes\xff survive", 21);
    {
        std::ofstream out(path, std::ios::binary);
        out << payload;
    }

    auto mapped = support::MappedFile::tryOpen(path);
    ASSERT_NE(mapped, nullptr);
    EXPECT_EQ(mapped->view(), std::string_view(payload));

    ::setenv("IFPROB_NO_MMAP", "1", 1);
    auto buffered = support::MappedFile::tryOpen(path);
    ::unsetenv("IFPROB_NO_MMAP");
    ASSERT_NE(buffered, nullptr);
    EXPECT_FALSE(buffered->isMapped());
    EXPECT_EQ(buffered->view(), std::string_view(payload));

    // Missing files return null rather than throwing — the cache-miss
    // signal Runner::traceOf branches on.
    EXPECT_EQ(support::MappedFile::tryOpen((dir / "absent").string()),
              nullptr);
    std::filesystem::remove_all(dir);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Rng c(43);
    EXPECT_NE(Rng(42).next(), c.next());
}

TEST(Rng, RangesRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(10), 10u);
        int64_t v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        double r = rng.real();
        EXPECT_GE(r, 0.0);
        EXPECT_LT(r, 1.0);
    }
}

TEST(Datagen, DeterministicAndSized)
{
    EXPECT_EQ(workloads::generateCSource(1, 5000),
              workloads::generateCSource(1, 5000));
    EXPECT_NE(workloads::generateCSource(1, 5000),
              workloads::generateCSource(2, 5000));
    EXPECT_EQ(workloads::generateCSource(1, 5000).size(), 5000u);
    EXPECT_EQ(workloads::generateProse(9, 3000).size(), 3000u);
    EXPECT_EQ(workloads::generateBinaryish(9, 3000).size(), 3000u);
    EXPECT_EQ(workloads::generateFortranSource(9, 3000).size(), 3000u);
}

TEST(Datagen, TexturesDiffer)
{
    // The C-source flavour must contain C keywords; the prose must not.
    std::string c = workloads::generateCSource(3, 8000);
    std::string prose = workloads::generateProse(3, 8000);
    EXPECT_NE(c.find("return"), std::string::npos);
    EXPECT_NE(c.find("static int"), std::string::npos);
    EXPECT_EQ(prose.find("static int"), std::string::npos);
    // Number tables parse as floats.
    std::string nums = workloads::generateNumberTable(3, 5, 3);
    auto fields = splitWhitespace(nums);
    EXPECT_EQ(fields.size(), 15u);
    for (const auto &f : fields)
        EXPECT_NE(f.find('.'), std::string::npos);
}

TEST(Disasm, RendersAllOperandShapes)
{
    CompileOptions options;
    options.include_prelude = false;
    isa::Program p = compile(R"(
        int g[4];
        float pi = 3.25;
        int f(int a) { return a * 2; }
        int main() {
            int x = getc();
            g[x & 3] = f(x) + (x > 0 ? 1 : 2);
            putf(pi + 0.125);   // float literal -> movf in code
            if (x == 'q')
                return icall(&f, x);
            return g[0];
        })",
        options);
    std::string text = isa::disassemble(p);
    EXPECT_NE(text.find("movi"), std::string::npos);
    EXPECT_NE(text.find("movf"), std::string::npos);
    EXPECT_NE(text.find("load"), std::string::npos);
    EXPECT_NE(text.find("store"), std::string::npos);
    EXPECT_NE(text.find("br"), std::string::npos);
    EXPECT_NE(text.find("; site"), std::string::npos);
    EXPECT_NE(text.find("call"), std::string::npos);
    EXPECT_NE(text.find("icall"), std::string::npos);
    EXPECT_NE(text.find("select"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
    EXPECT_NE(text.find("putf"), std::string::npos);
    EXPECT_NE(text.find("0.125"), std::string::npos);
    EXPECT_NE(text.find("main"), std::string::npos);
    EXPECT_NE(text.find("; entry"), std::string::npos);
}

TEST(Disasm, SingleInstructionForms)
{
    EXPECT_EQ(isa::disassemble(isa::makeMovI(3, -7)), "movi    r3, -7");
    EXPECT_EQ(isa::disassemble(isa::makeBinary(isa::Opcode::kAdd, 1, 2, 3)),
              "add     r1, r2, r3");
    EXPECT_EQ(isa::disassemble(isa::makeJmp(9)), "jmp     @9");
    EXPECT_EQ(isa::disassemble(isa::makeRet(-1)), "ret");
    EXPECT_EQ(isa::disassemble(isa::makeSelect(1, 2, 3, 4)),
              "select  r1, r2 ? r3 : r4");
    EXPECT_EQ(isa::disassemble(isa::makeLoad(1, -1, 100)),
              "load    r1, [100]");
    EXPECT_EQ(isa::disassemble(isa::makeStore(1, 2, 8)),
              "store   [r2+8], r1");
}

} // namespace
} // namespace ifprob

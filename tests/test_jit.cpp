/**
 * @file
 * Unit and integration tests for the trace-JIT tier (src/vm/jit/):
 * superblock selection (BTFNT and profile-guided), template
 * compilation and head-slot patching, the trace executor's side-exit
 * and trap-exit paths, the on-disk code cache (round-trip, corruption
 * fallback, cold-vs-warm determinism), and the hotness-triggered tier
 * controller including its thread safety (these run under TSan in CI).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "compiler/pipeline.h"
#include "isa/program.h"
#include "support/error.h"
#include "vm/decode.h"
#include "vm/engine.h"
#include "vm/jit/code_cache.h"
#include "vm/jit/superblock.h"
#include "vm/jit/tier.h"
#include "vm/jit/trace_compile.h"
#include "vm/jit/trace_unit.h"
#include "vm/machine.h"
#include "vm/observer.h"

namespace ifprob {
namespace {

namespace fs = std::filesystem;

isa::Program
compileNoPrelude(std::string_view src)
{
    CompileOptions options;
    options.include_prelude = false;
    return compile(src, options);
}

/** Outcome of one engine run, trap message included. */
struct Outcome
{
    vm::RunResult result;
    std::string error;
};

Outcome
runSwitch(const isa::Program &p, std::string_view input = "",
          const vm::RunLimits &limits = {},
          vm::BranchObserver *observer = nullptr)
{
    Outcome out;
    try {
        vm::runSwitchEngine(p, input, limits, observer, out.result);
    } catch (const RuntimeError &e) {
        out.error = e.what();
    }
    return out;
}

Outcome
runTrace(const isa::Program &p, std::string_view input = "",
         const vm::RunLimits &limits = {},
         vm::BranchObserver *observer = nullptr,
         const std::vector<vm::BranchCounts> *profile = nullptr)
{
    Outcome out;
    try {
        vm::DecodedProgram decoded = vm::decodeProgram(p);
        vm::jit::SuperblockPlan plan =
            vm::jit::selectSuperblocks(p, decoded, profile);
        vm::jit::TraceProgram tier = vm::jit::compileTraces(
            p, decoded, plan, profile != nullptr ? "profile" : "static");
        vm::runTraceEngine(p, tier, input, limits, observer, out.result);
    } catch (const RuntimeError &e) {
        out.error = e.what();
    }
    return out;
}

void
expectSameOutcome(const Outcome &trace, const Outcome &ref,
                  const std::string &label)
{
    EXPECT_EQ(trace.error, ref.error) << label;
    EXPECT_EQ(trace.result.output, ref.result.output) << label;
    const vm::RunStats &a = trace.result.stats;
    const vm::RunStats &b = ref.result.stats;
    EXPECT_EQ(a.instructions, b.instructions) << label;
    EXPECT_EQ(a.cond_branches, b.cond_branches) << label;
    EXPECT_EQ(a.taken_branches, b.taken_branches) << label;
    EXPECT_EQ(a.jumps, b.jumps) << label;
    EXPECT_EQ(a.selects, b.selects) << label;
    EXPECT_EQ(a.exit_code, b.exit_code) << label;
    ASSERT_EQ(a.branches.size(), b.branches.size()) << label;
    for (size_t i = 0; i < a.branches.size(); ++i) {
        EXPECT_EQ(a.branches[i].executed, b.branches[i].executed)
            << label << " site " << i;
        EXPECT_EQ(a.branches[i].taken, b.branches[i].taken)
            << label << " site " << i;
    }
}

/** Scoped IFPROB_JIT_CACHE_DIR pointing at a fresh temp directory. */
struct ScopedCacheDir
{
    fs::path dir;

    explicit ScopedCacheDir(const std::string &tag)
    {
        dir = fs::temp_directory_path() /
              ("ifprob_jit_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(dir);
        fs::create_directories(dir);
        ::setenv("IFPROB_JIT_CACHE_DIR", dir.c_str(), 1);
    }
    ~ScopedCacheDir()
    {
        ::unsetenv("IFPROB_JIT_CACHE_DIR");
        std::error_code ec;
        fs::remove_all(dir, ec);
    }
};

constexpr const char *kHotLoopSrc = R"(
    int main() {
        int n = 0;
        for (int i = 0; i < 25000; i++) {
            if (i % 7 == 0)
                n += 3;
            else
                n += 1;
        }
        return n & 255;
    })";

// --- superblock selection ---

TEST(JitSelection, BtfntSeedsLoopHeadsAndPredictsBackwardTaken)
{
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    vm::DecodedProgram decoded = vm::decodeProgram(p);
    vm::jit::SuperblockPlan plan =
        vm::jit::selectSuperblocks(p, decoded, nullptr);
    EXPECT_FALSE(plan.profile_guided);
    ASSERT_FALSE(plan.blocks.empty());
    for (const auto &b : plan.blocks) {
        EXPECT_GE(b.steps, 3) << "below min_steps";
        EXPECT_LT(b.head_pc,
                  static_cast<int32_t>(p.functions[b.func].code.size()));
    }
}

TEST(JitSelection, ProfileBiasThresholdGatesGuardCrossing)
{
    // One branch alternating 50/50 inside a loop: the static plan
    // guards through it (BTFNT calls the forward branch not-taken), but
    // a measured 50/50 profile is below min_bias, so the profile-guided
    // trace must end at the branch instead of guarding it.
    isa::Program p = compileNoPrelude(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 1000; i++) {
                if (i & 1)
                    n += 2;
                else
                    n += 1;
            }
            return n & 255;
        })");
    vm::DecodedProgram decoded = vm::decodeProgram(p);
    Outcome ref = runSwitch(p);
    ASSERT_TRUE(ref.error.empty()) << ref.error;

    vm::jit::SuperblockPlan fifty = vm::jit::selectSuperblocks(
        p, decoded, &ref.result.stats.branches);
    EXPECT_TRUE(fifty.profile_guided);
    // Heavily bias the same shape: every site taken 100%.
    std::vector<vm::BranchCounts> biased = ref.result.stats.branches;
    for (auto &site : biased) {
        site.executed = 1000;
        site.taken = 1000;
    }
    vm::jit::SuperblockPlan hot =
        vm::jit::selectSuperblocks(p, decoded, &biased);
    auto guards = [](const vm::jit::SuperblockPlan &plan) {
        size_t n = 0;
        for (const auto &b : plan.blocks)
            n += b.guard_taken.size();
        return n;
    };
    // The fully biased profile crosses strictly more branches than the
    // 50/50 one (which must stop at the alternating site).
    EXPECT_GT(guards(hot), guards(fifty));
}

TEST(JitSelection, ColdSitesFallBackToEndingTheTrace)
{
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    vm::DecodedProgram decoded = vm::decodeProgram(p);
    // All-zero profile: every site is below min_site_executed, so no
    // guard direction can be trusted; selection still terminates and
    // produces a valid (possibly empty) plan.
    std::vector<vm::BranchCounts> cold(64);
    vm::jit::SuperblockPlan plan =
        vm::jit::selectSuperblocks(p, decoded, &cold);
    EXPECT_TRUE(plan.profile_guided);
    Outcome trace = runTrace(p, "", {}, nullptr, &cold);
    Outcome ref = runSwitch(p);
    expectSameOutcome(trace, ref, "cold profile");
}

TEST(JitSelection, TraceOpNamesAreDistinct)
{
    for (uint16_t op = 0; op < vm::jit::kNumTraceOps; ++op)
        EXPECT_FALSE(
            vm::jit::traceOpName(static_cast<vm::jit::TraceOp>(op)).empty());
    EXPECT_EQ(vm::jit::traceOpName(vm::jit::kTGuard), "TGuard");
    EXPECT_EQ(vm::jit::traceOpName(vm::jit::kTEnd), "TEnd");
}

// --- template compilation ---

TEST(JitCompile, PatchesOnlyHeadHandlersInACopy)
{
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    vm::DecodedProgram decoded = vm::decodeProgram(p);
    vm::jit::SuperblockPlan plan =
        vm::jit::selectSuperblocks(p, decoded, nullptr);
    vm::jit::TraceProgram tier =
        vm::jit::compileTraces(p, decoded, plan, "static");
    ASSERT_FALSE(tier.units.empty());
    EXPECT_EQ(tier.build.traces,
              static_cast<int64_t>(tier.units.size()));
    EXPECT_EQ(tier.build.source, "static");

    for (size_t u = 0; u < tier.units.size(); ++u) {
        const vm::jit::CompiledTrace &t = tier.units[u];
        const vm::DecodedInsn &patched =
            tier.decoded.functions[t.func].code[t.head_pc];
        const vm::DecodedInsn &original =
            decoded.functions[t.func].code[t.head_pc];
        // The copy's head slot dispatches into the trace; its unfused
        // handler (the checked tail's path) is untouched, and the saved
        // head_handler is exactly what the slot dispatched before.
        EXPECT_EQ(patched.handler, vm::kHEnterTrace);
        EXPECT_EQ(patched.unfused, original.unfused);
        EXPECT_EQ(t.head_handler, original.handler);
        EXPECT_NE(original.handler, vm::kHEnterTrace);
        // The entry table maps the head back to this unit.
        EXPECT_EQ(tier.entry[t.func][t.head_pc],
                  static_cast<int32_t>(u));
        // Steps end in exactly one TEnd carrying the pass cost.
        ASSERT_FALSE(t.steps.empty());
        EXPECT_EQ(t.steps.back().op, vm::jit::kTEnd);
        EXPECT_GT(t.total_cost, 0);
    }
    // The source stream was not mutated: no slot dispatches the trace.
    for (const auto &f : decoded.functions)
        for (const auto &insn : f.code)
            EXPECT_NE(insn.handler, vm::kHEnterTrace);
}

TEST(JitCompile, ClosingTransferFusesIntoThePassEnd)
{
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    vm::DecodedProgram decoded = vm::decodeProgram(p);
    vm::jit::SuperblockPlan plan =
        vm::jit::selectSuperblocks(p, decoded, nullptr);
    vm::jit::TraceProgram tier =
        vm::jit::compileTraces(p, decoded, plan, "static");
    ASSERT_FALSE(tier.units.empty());
    bool saw_fused_close = false;
    for (const vm::jit::CompiledTrace &t : tier.units) {
        if (!t.loops || t.steps.size() < 2)
            continue;
        const vm::jit::TraceStep &last = t.steps[t.steps.size() - 2];
        // Every looping trace ends the pass in one dispatch: a trailing
        // jump dispatches the fused end, and a trailing guard (rotated
        // loop's bottom test — the shape minic's jump threading leaves)
        // carries the closes-pass flag. Base ops stay single-op so
        // replay accounting is unchanged.
        if (last.base == vm::jit::kTJmp) {
            EXPECT_EQ(last.op, vm::jit::kTJmpEnd);
            saw_fused_close = true;
        } else if (last.base == vm::jit::kTGuard) {
            EXPECT_NE(last.flags & vm::jit::kStepClosesPass, 0);
            saw_fused_close = true;
        }
    }
    EXPECT_TRUE(saw_fused_close);
}

TEST(JitCompile, StalePlanBlocksAreDroppedNotCompiled)
{
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    vm::DecodedProgram decoded = vm::decodeProgram(p);
    vm::jit::SuperblockPlan plan =
        vm::jit::selectSuperblocks(p, decoded, nullptr);
    ASSERT_FALSE(plan.blocks.empty());
    // Corrupt the first block the way a stale disk plan would be: a
    // guard-direction vector that no longer matches the walk.
    vm::jit::SuperblockPlan stale = plan;
    stale.blocks[0].guard_taken.push_back(1);
    stale.blocks[0].guard_taken.push_back(0);
    vm::jit::TraceProgram tier =
        vm::jit::compileTraces(p, decoded, stale, "disk");
    EXPECT_LT(tier.units.size(), plan.blocks.size() + 1);
    // Whatever survived still executes to the reference outcome.
    vm::RunResult result;
    vm::runTraceEngine(p, tier, "", {}, nullptr, result);
    Outcome ref = runSwitch(p);
    EXPECT_EQ(result.stats.exit_code, ref.result.stats.exit_code);
    EXPECT_EQ(result.stats.instructions, ref.result.stats.instructions);
}

// --- the trace executor's exit paths ---

TEST(JitExecutor, HotLoopCommitsPassesWithoutSideExits)
{
    // 'n += i' loop with a single always-taken backward guard: every
    // pass commits, so side exits only happen at the loop's final
    // (mispredicted) iteration.
    isa::Program p = compileNoPrelude(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 10000; i++)
                n += i;
            return n & 255;
        })");
    Outcome trace = runTrace(p);
    Outcome ref = runSwitch(p);
    expectSameOutcome(trace, ref, "hot loop");
    EXPECT_GT(trace.result.jit.trace_entries, 0);
    EXPECT_GT(trace.result.jit.trace_loop_iterations, 1000);
    EXPECT_GT(trace.result.jit.trace_instructions, 10000);
    // One mispredict per entry (the exit), not one per iteration.
    EXPECT_LT(trace.result.jit.side_exits,
              trace.result.jit.trace_loop_iterations / 10);
}

TEST(JitExecutor, MidTraceDivisionByZeroTrapsWithReferenceMessage)
{
    // The divide sits inside a hot loop trace and only traps at
    // i == 500 — after hundreds of committed passes. The trap-guard
    // side exit must replay the prefix, hand the instruction back to
    // the fast engine, and trap with the reference message at the
    // reference instruction count.
    isa::Program p = compileNoPrelude(R"(
        int main() {
            int n = 0;
            for (int i = 0; i < 1000; i++)
                n += 100 / (500 - i);
            return n & 255;
        })");
    Outcome trace = runTrace(p);
    Outcome ref = runSwitch(p);
    expectSameOutcome(trace, ref, "mid-trace div zero");
    ASSERT_FALSE(ref.error.empty());
    EXPECT_NE(ref.error.find("division by zero"), std::string::npos);
    EXPECT_GT(trace.result.jit.trace_entries, 0);
    EXPECT_GT(trace.result.jit.trap_exits, 0);
}

TEST(JitExecutor, MidTraceLoadOutOfBoundsTrapsWithReferenceMessage)
{
    isa::Program p = compileNoPrelude(R"(
        int a[10];
        int main() {
            int n = 0;
            for (int i = 0; i < 2000; i++)
                n += a[i / 100];
            return n & 255;
        })");
    Outcome trace = runTrace(p);
    Outcome ref = runSwitch(p);
    expectSameOutcome(trace, ref, "mid-trace load oob");
    ASSERT_FALSE(ref.error.empty());
    EXPECT_NE(ref.error.find("load address"), std::string::npos);
    EXPECT_GT(trace.result.jit.trace_entries, 0);
}

TEST(JitExecutor, FuelExhaustionMidSuperblockTrapsAtExactInstruction)
{
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    // Budgets landing at every phase: before the loop warms up, mid
    // pass (the entry guard refuses and the checked tail finishes), and
    // deep into committed passes.
    for (int64_t budget :
         {5, 23, 97, 1000, 10007, 50000, 100003, 140001}) {
        vm::RunLimits limits;
        limits.max_instructions = budget;
        const std::string label = "budget " + std::to_string(budget);
        Outcome trace = runTrace(p, "", limits);
        Outcome ref = runSwitch(p, "", limits);
        expectSameOutcome(trace, ref, label);
        ASSERT_FALSE(ref.error.empty()) << label;
        EXPECT_EQ(trace.result.stats.instructions, budget + 1) << label;
    }
}

TEST(JitExecutor, MultiObserverFanOutSeesIdenticalEventsInTraces)
{
    struct Recorder : vm::BranchObserver
    {
        std::vector<std::tuple<int, bool, int64_t>> events;
        void onBranch(int site, bool taken, int64_t at) override
        {
            events.emplace_back(site, taken, at);
        }
    };
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    Recorder ref_rec;
    Outcome ref = runSwitch(p, "", {}, &ref_rec);
    ASSERT_TRUE(ref.error.empty()) << ref.error;

    Recorder a, b;
    vm::MultiObserver fan({&a, &b});
    Outcome trace = runTrace(p, "", {}, &fan);
    expectSameOutcome(trace, ref, "multi-observer");
    ASSERT_FALSE(ref_rec.events.empty());
    EXPECT_EQ(a.events, ref_rec.events);
    EXPECT_EQ(b.events, ref_rec.events);
    EXPECT_GT(trace.result.jit.trace_entries, 0);
}

// --- on-disk code cache ---

TEST(JitCodeCache, PlanRoundTripsThroughEncodeAndDecode)
{
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    vm::DecodedProgram decoded = vm::decodeProgram(p);
    Outcome ref = runSwitch(p);
    vm::jit::SuperblockPlan plan = vm::jit::selectSuperblocks(
        p, decoded, &ref.result.stats.branches);
    ASSERT_FALSE(plan.blocks.empty());

    const uint64_t fp = p.fingerprint();
    const std::string payload = vm::jit::encodePlan(plan, fp);
    std::optional<vm::jit::SuperblockPlan> loaded =
        vm::jit::decodePlan(payload, fp);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->profile_guided);
    ASSERT_EQ(loaded->blocks.size(), plan.blocks.size());
    for (size_t i = 0; i < plan.blocks.size(); ++i) {
        EXPECT_EQ(loaded->blocks[i].func, plan.blocks[i].func);
        EXPECT_EQ(loaded->blocks[i].head_pc, plan.blocks[i].head_pc);
        EXPECT_EQ(loaded->blocks[i].steps, plan.blocks[i].steps);
        EXPECT_EQ(loaded->blocks[i].guard_taken,
                  plan.blocks[i].guard_taken);
    }
}

TEST(JitCodeCache, DecodeRejectsEveryCorruption)
{
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    vm::DecodedProgram decoded = vm::decodeProgram(p);
    Outcome ref = runSwitch(p);
    vm::jit::SuperblockPlan plan = vm::jit::selectSuperblocks(
        p, decoded, &ref.result.stats.branches);
    const uint64_t fp = p.fingerprint();
    const std::string good = vm::jit::encodePlan(plan, fp);

    EXPECT_FALSE(vm::jit::decodePlan("", fp).has_value());
    EXPECT_FALSE(vm::jit::decodePlan("garbage", fp).has_value());
    // Fingerprint mismatch: a cache entry for another program.
    EXPECT_FALSE(vm::jit::decodePlan(good, fp ^ 1).has_value());
    // Truncation at every prefix length must fail cleanly.
    for (size_t len : {size_t{4}, size_t{12}, good.size() / 2,
                       good.size() - 1})
        EXPECT_FALSE(
            vm::jit::decodePlan(good.substr(0, len), fp).has_value())
            << "truncated to " << len;
    // A single flipped payload byte breaks the checksum.
    std::string flipped = good;
    flipped[flipped.size() / 2] =
        static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
    EXPECT_FALSE(vm::jit::decodePlan(flipped, fp).has_value());
}

TEST(JitCodeCache, CorruptCacheEntryFallsBackToFreshSelection)
{
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    ScopedCacheDir cache("corrupt");
    // Plant garbage exactly where the tier would look.
    {
        std::ofstream out(
            vm::jit::codeCachePath(cache.dir.string(), p.fingerprint()),
            std::ios::binary);
        out << "IFPROBJC but definitely not a plan";
    }
    vm::Machine m(p, vm::Engine::kTrace);
    // The corrupt entry is ignored: the tier compiled the BTFNT plan.
    EXPECT_EQ(m.jitBuildStats().source, "static");
    Outcome ref = runSwitch(p);
    vm::RunResult result = m.run("");
    EXPECT_EQ(result.stats.exit_code, ref.result.stats.exit_code);
    EXPECT_EQ(result.stats.instructions, ref.result.stats.instructions);
}

TEST(JitCodeCache, ColdThenWarmMachinesAreBitIdentical)
{
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    Outcome ref = runSwitch(p);
    ScopedCacheDir cache("warm");

    // Cold machine: starts on the static plan, crosses hot_threshold
    // (25000 branches > 20000) after the first run, tiers up, persists
    // the profile-guided plan.
    vm::Machine cold(p, vm::Engine::kTrace);
    EXPECT_EQ(cold.jitBuildStats().source, "static");
    vm::RunResult first = cold.run("");
    EXPECT_EQ(cold.jitBuildStats().source, "profile");
    EXPECT_TRUE(fs::exists(
        vm::jit::codeCachePath(cache.dir.string(), p.fingerprint())));
    vm::RunResult second = cold.run("");

    // Warm machine: picks the persisted plan straight up.
    vm::Machine warm(p, vm::Engine::kTrace);
    EXPECT_EQ(warm.jitBuildStats().source, "disk");
    vm::RunResult warm_run = warm.run("");

    for (const vm::RunResult *r : {&first, &second, &warm_run}) {
        EXPECT_EQ(r->stats.exit_code, ref.result.stats.exit_code);
        EXPECT_EQ(r->stats.instructions, ref.result.stats.instructions);
        EXPECT_EQ(r->stats.taken_branches, ref.result.stats.taken_branches);
        EXPECT_EQ(r->output, ref.result.output);
    }
    EXPECT_GT(warm_run.jit.trace_entries, 0);
}

// --- the tier controller ---

TEST(JitTier, TierUpTriggersExactlyOnceAtThreshold)
{
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    vm::DecodedProgram decoded = vm::decodeProgram(p);
    Outcome ref = runSwitch(p);
    ASSERT_TRUE(ref.error.empty()) << ref.error;

    vm::jit::TierController::Config config;
    config.hot_threshold = ref.result.stats.cond_branches + 1;
    vm::jit::TierController tier(p, decoded, config);
    EXPECT_EQ(tier.buildStats().source, "static");
    EXPECT_EQ(tier.tierUps(), 0);

    // First run lands just below the threshold; second crosses it.
    tier.onRunCompleted(ref.result.stats);
    EXPECT_EQ(tier.tierUps(), 0);
    auto before = tier.current();
    tier.onRunCompleted(ref.result.stats);
    EXPECT_EQ(tier.tierUps(), 1);
    EXPECT_EQ(tier.buildStats().source, "profile");
    EXPECT_NE(tier.current(), before);
    // Further profiles are ignored: the tier recompiles at most once.
    tier.onRunCompleted(ref.result.stats);
    EXPECT_EQ(tier.tierUps(), 1);
    EXPECT_GE(tier.compileMicros(), 0);
}

TEST(JitTier, MachineTierUpKeepsResultsBitIdentical)
{
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    Outcome ref = runSwitch(p);
    vm::Machine m(p, vm::Engine::kTrace);
    // Run enough times to cross the default threshold and keep going
    // after the swap; every run must match the reference exactly.
    for (int round = 0; round < 3; ++round) {
        vm::RunResult r = m.run("");
        EXPECT_EQ(r.stats.exit_code, ref.result.stats.exit_code) << round;
        EXPECT_EQ(r.stats.instructions, ref.result.stats.instructions)
            << round;
        EXPECT_EQ(r.stats.taken_branches, ref.result.stats.taken_branches)
            << round;
    }
    EXPECT_EQ(m.jitBuildStats().source, "profile");
    EXPECT_GT(m.jitBuildStats().traces, 0);
    EXPECT_GE(m.jitCompileMicros(), 0);
}

TEST(JitTier, ConcurrentRunsRaceTierSwapSafely)
{
    // Four threads run the machine while the tier controller swaps the
    // live TraceProgram underneath them — the shared_ptr handoff must
    // keep every in-flight run valid (TSan verifies in CI).
    isa::Program p = compileNoPrelude(kHotLoopSrc);
    Outcome ref = runSwitch(p);
    vm::Machine m(p, vm::Engine::kTrace);
    std::vector<std::thread> threads;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 8; ++i) {
                vm::RunResult r = m.run("");
                if (r.stats.instructions != ref.result.stats.instructions ||
                    r.stats.exit_code != ref.result.stats.exit_code)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(m.jitBuildStats().source, "profile");
}

} // namespace
} // namespace ifprob

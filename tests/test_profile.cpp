/**
 * @file
 * Unit tests for the profile database: construction from runs,
 * accumulation across runs, the three merge modes, serialization, and
 * fingerprint guarding.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "profile/profile_db.h"
#include "support/error.h"

namespace ifprob::profile {
namespace {

vm::RunStats
statsWith(std::vector<std::pair<int64_t, int64_t>> branches)
{
    vm::RunStats stats;
    for (auto [executed, taken] : branches) {
        stats.branches.push_back({executed, taken});
        stats.cond_branches += executed;
        stats.taken_branches += taken;
    }
    stats.instructions = stats.cond_branches * 10;
    return stats;
}

TEST(ProfileDb, BuildFromRun)
{
    ProfileDb db("prog", 0x1234, statsWith({{10, 7}, {0, 0}, {5, 5}}));
    EXPECT_EQ(db.programName(), "prog");
    EXPECT_EQ(db.fingerprint(), 0x1234u);
    ASSERT_EQ(db.numSites(), 3u);
    EXPECT_DOUBLE_EQ(db.site(0).executed, 10.0);
    EXPECT_DOUBLE_EQ(db.site(0).taken, 7.0);
    EXPECT_DOUBLE_EQ(db.site(0).notTaken(), 3.0);
    EXPECT_DOUBLE_EQ(db.totalExecuted(), 15.0);
}

TEST(ProfileDb, AccumulateAcrossRuns)
{
    ProfileDb db("prog", 1, 2);
    db.accumulate(statsWith({{10, 3}, {4, 4}}));
    db.accumulate(statsWith({{2, 2}, {6, 0}}));
    EXPECT_DOUBLE_EQ(db.site(0).executed, 12.0);
    EXPECT_DOUBLE_EQ(db.site(0).taken, 5.0);
    EXPECT_DOUBLE_EQ(db.site(1).executed, 10.0);
    EXPECT_DOUBLE_EQ(db.site(1).taken, 4.0);
}

TEST(ProfileDb, AccumulateRejectsMismatchedSizes)
{
    ProfileDb db("prog", 1, 2);
    EXPECT_THROW(db.accumulate(statsWith({{1, 1}})), Error);
    ProfileDb other("prog", 2, 2); // wrong fingerprint
    EXPECT_THROW(db.accumulate(other), Error);
}

TEST(ProfileDb, MergeUnscaledAddsRawCounts)
{
    ProfileDb a("p", 9, statsWith({{100, 90}, {10, 1}}));
    ProfileDb b("p", 9, statsWith({{2, 0}, {2, 2}}));
    std::vector<ProfileDb> inputs{a, b};
    ProfileDb merged = ProfileDb::merge(inputs, MergeMode::kUnscaled);
    EXPECT_DOUBLE_EQ(merged.site(0).executed, 102.0);
    EXPECT_DOUBLE_EQ(merged.site(0).taken, 90.0);
    EXPECT_DOUBLE_EQ(merged.site(1).executed, 12.0);
    EXPECT_DOUBLE_EQ(merged.site(1).taken, 3.0);
}

TEST(ProfileDb, MergeScaledGivesDatasetsEqualWeight)
{
    // Dataset a is 100x bigger; scaled merging must not let it dominate.
    // Site 0: a says taken (90/100), b says not-taken (0/2 of its 4).
    ProfileDb a("p", 9, statsWith({{100, 90}, {10, 10}}));
    ProfileDb b("p", 9, statsWith({{2, 0}, {2, 2}}));
    std::vector<ProfileDb> inputs{a, b};
    ProfileDb merged = ProfileDb::merge(inputs, MergeMode::kScaled);
    // a's weights: site0 (100/110, 90/110); b's: site0 (2/4, 0/4).
    EXPECT_NEAR(merged.site(0).executed, 100.0 / 110 + 0.5, 1e-12);
    EXPECT_NEAR(merged.site(0).taken, 90.0 / 110, 1e-12);
    // In unscaled mode site 0 is predicted taken; in scaled mode the
    // small dataset's not-taken vote carries weight:
    // taken (0.818) vs executed (1.409): majority taken still. The
    // difference is in the weights, which the numbers above pin down.
}

TEST(ProfileDb, MergePollingOneVotePerDataset)
{
    ProfileDb a("p", 9, statsWith({{1000, 1000}, {8, 3}}));
    ProfileDb b("p", 9, statsWith({{1, 0}, {8, 5}}));
    ProfileDb c("p", 9, statsWith({{1, 0}, {0, 0}}));
    std::vector<ProfileDb> inputs{a, b, c};
    ProfileDb merged = ProfileDb::merge(inputs, MergeMode::kPolling);
    // Site 0: votes taken/not/not -> executed 3, taken 1.
    EXPECT_DOUBLE_EQ(merged.site(0).executed, 3.0);
    EXPECT_DOUBLE_EQ(merged.site(0).taken, 1.0);
    // Site 1: c never saw it -> only two votes (not-taken, taken).
    EXPECT_DOUBLE_EQ(merged.site(1).executed, 2.0);
    EXPECT_DOUBLE_EQ(merged.site(1).taken, 1.0);
}

TEST(ProfileDb, MergeRejectsEmptyAndMismatched)
{
    std::vector<ProfileDb> empty;
    EXPECT_THROW(ProfileDb::merge(empty, MergeMode::kScaled), Error);
    ProfileDb a("p", 1, 2);
    ProfileDb b("p", 2, 2);
    std::vector<ProfileDb> mismatched{a, b};
    EXPECT_THROW(ProfileDb::merge(mismatched, MergeMode::kScaled), Error);
}

TEST(ProfileDb, SaveLoadRoundTrip)
{
    ProfileDb db("my_prog", 0xdeadbeefcafe1234ull,
                 statsWith({{10, 7}, {0, 0}, {123456789, 987654}}));
    std::stringstream ss;
    db.save(ss);
    ProfileDb loaded = ProfileDb::load(ss);
    EXPECT_EQ(loaded.programName(), "my_prog");
    EXPECT_EQ(loaded.fingerprint(), 0xdeadbeefcafe1234ull);
    ASSERT_EQ(loaded.numSites(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(loaded.site(i).executed, db.site(i).executed);
        EXPECT_DOUBLE_EQ(loaded.site(i).taken, db.site(i).taken);
    }
}

TEST(ProfileDb, SaveLoadPreservesFractionalWeights)
{
    ProfileDb a("p", 9, statsWith({{3, 1}}));
    ProfileDb b("p", 9, statsWith({{7, 6}}));
    std::vector<ProfileDb> inputs{a, b};
    ProfileDb merged = ProfileDb::merge(inputs, MergeMode::kScaled);
    std::stringstream ss;
    merged.save(ss);
    ProfileDb loaded = ProfileDb::load(ss);
    EXPECT_DOUBLE_EQ(loaded.site(0).executed, merged.site(0).executed);
    EXPECT_DOUBLE_EQ(loaded.site(0).taken, merged.site(0).taken);
}

TEST(ProfileDb, SaveLoadRoundTripsDoublesBitExactly)
{
    // Scaled merging over odd totals produces weights like 1/3 and
    // 6/7 that have no finite decimal expansion; max_digits10
    // significant digits must still reproduce the exact bits.
    std::vector<ProfileDb> inputs;
    for (int64_t total : {3, 7, 10, 11, 13, 999}) {
        inputs.push_back(ProfileDb(
            "p", 9, statsWith({{total, total / 3}, {total * 2, 1}})));
    }
    ProfileDb merged = ProfileDb::merge(inputs, MergeMode::kScaled);
    std::stringstream ss;
    merged.save(ss);
    ProfileDb loaded = ProfileDb::load(ss);
    ASSERT_EQ(loaded.numSites(), merged.numSites());
    for (size_t i = 0; i < merged.numSites(); ++i) {
        EXPECT_EQ(std::memcmp(&loaded.site(i), &merged.site(i),
                              sizeof(BranchWeight)),
                  0)
            << "site " << i << " did not round-trip bit-exactly";
    }
}

TEST(ProfileDb, SaveRestoresTheStreamPrecision)
{
    std::stringstream ss;
    ss.precision(3);
    ProfileDb("p", 1, statsWith({{1, 1}})).save(ss);
    EXPECT_EQ(ss.precision(), 3);
    ss << 1.0 / 3.0;
    EXPECT_TRUE(ss.str().ends_with("0.333"));
}

TEST(ProfileDb, LoadRejectsGarbage)
{
    std::stringstream bad1("not a profile");
    EXPECT_THROW(ProfileDb::load(bad1), Error);
    std::stringstream bad2("ifprob-profile v1\nprog\n00ff\n5\n1 1\n");
    EXPECT_THROW(ProfileDb::load(bad2), Error); // truncated table
}

TEST(ProfileDb, MergeModeNames)
{
    EXPECT_EQ(mergeModeName(MergeMode::kScaled), "scaled");
    EXPECT_EQ(mergeModeName(MergeMode::kUnscaled), "unscaled");
    EXPECT_EQ(mergeModeName(MergeMode::kPolling), "polling");
}

} // namespace
} // namespace ifprob::profile

/**
 * @file
 * Unit and differential tests for the predictor zoo (Predictors*,
 * docs/predictors.md): shared sat2 primitives, per-predictor batched
 * kernel vs scalar reference vs live-VM parity, TAGE allocation and
 * useful-counter mechanics, perceptron learning, the MultiObserver
 * batch-forwarding regression, and scheduler determinism across pool
 * widths. The suite prefix matters: CI runs Predictors* under TSan.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "compiler/pipeline.h"
#include "exec/pool.h"
#include "harness/runner.h"
#include "predict/dynamic_predictor.h"
#include "predict/sat2.h"
#include "predict/zoo/bimodal.h"
#include "predict/zoo/perceptron.h"
#include "predict/zoo/scheduler.h"
#include "predict/zoo/static_kernel.h"
#include "predict/zoo/tage.h"
#include "predict/zoo/twolevel.h"
#include "predict/zoo/zoo.h"
#include "support/error.h"
#include "support/rng.h"
#include "trace/trace.h"
#include "vm/machine.h"
#include "vm/observer.h"

namespace ifprob::predict {
namespace {

/** Branchy program with a mix of patterns: a biased loop branch, a
 *  data-dependent branch, an alternating branch, and a correlated pair
 *  — enough to exercise counters, history tables, and allocation. */
const char *kZooSource = R"(
int main() {
    int i, x, count, flip;
    x = 12345;
    count = 0;
    flip = 0;
    for (i = 0; i < 3000; i++) {
        x = (x * 1103515245 + 12345) % 2147483648;
        if (x & 1)
            count = count + 1;
        if ((x & 12) == 4)
            count = count + 2;
        flip = 1 - flip;
        if (flip)
            count = count - 1;
        if (x & 1) {
            if (x & 2)
                count = count + 3;
        }
    }
    return count & 255;
})";

struct ZooFixture
{
    isa::Program program;
    trace::Trace trace;

    ZooFixture()
        : program(compile(kZooSource)),
          trace(trace::record(program, "", vm::RunLimits{}, "zoo",
                              "builtin"))
    {
    }

    zoo::ZooContext
    context() const
    {
        return {program, trace.stats, trace.fingerprint, "zoo"};
    }
};

/** Batch on/off env toggle, restoring the prior value on scope exit. */
struct BatchGuard
{
    explicit BatchGuard(const char *value)
    {
        const char *prev = ::getenv("IFPROB_TRACE_BATCH");
        had_prev_ = prev != nullptr;
        if (had_prev_)
            prev_ = prev;
        ::setenv("IFPROB_TRACE_BATCH", value, 1);
    }
    ~BatchGuard()
    {
        if (had_prev_)
            ::setenv("IFPROB_TRACE_BATCH", prev_.c_str(), 1);
        else
            ::unsetenv("IFPROB_TRACE_BATCH");
    }
    bool had_prev_ = false;
    std::string prev_;
};

// ---------------------------------------------------------------------------
// PredictorsSat2: the shared 2-bit saturating-counter primitive.
// ---------------------------------------------------------------------------

TEST(PredictorsSat2, TransitionsSaturateAndPredict)
{
    EXPECT_FALSE(sat2Taken(0));
    EXPECT_FALSE(sat2Taken(1));
    EXPECT_TRUE(sat2Taken(2));
    EXPECT_TRUE(sat2Taken(3));
    // Saturation at both ends, +/-1 in between.
    EXPECT_EQ(sat2Next(0, 0), 0);
    EXPECT_EQ(sat2Next(0, 1), 1);
    EXPECT_EQ(sat2Next(1, 0), 0);
    EXPECT_EQ(sat2Next(1, 1), 2);
    EXPECT_EQ(sat2Next(2, 0), 1);
    EXPECT_EQ(sat2Next(2, 1), 3);
    EXPECT_EQ(sat2Next(3, 0), 2);
    EXPECT_EQ(sat2Next(3, 1), 3);
}

TEST(PredictorsSat2, PackedTableRoundTripsAllSlots)
{
    PackedSat2Table table(100);
    for (size_t i = 0; i < 100; ++i)
        EXPECT_EQ(table.get(i), kSat2WeaklyNotTaken) << i;
    for (size_t i = 0; i < 100; ++i)
        table.set(i, static_cast<uint8_t>(i & 3));
    for (size_t i = 0; i < 100; ++i)
        EXPECT_EQ(table.get(i), i & 3) << i;
}

// ---------------------------------------------------------------------------
// PredictorsZoo: roster sanity plus the three-way differential the
// acceptance criteria pin: batched kernel == scalar reference ==
// live-VM observer, per predictor, bit-identical counts.
// ---------------------------------------------------------------------------

TEST(PredictorsZoo, RosterNamesAreUniqueAndLookupWorks)
{
    const auto &zoo = zoo::defaultZoo();
    ASSERT_GE(zoo.size(), 14u);
    for (size_t i = 0; i < zoo.size(); ++i)
        for (size_t j = i + 1; j < zoo.size(); ++j)
            EXPECT_NE(zoo[i].name, zoo[j].name);
    EXPECT_EQ(zoo::zooSpec("tage-4x1k").family, "tage");
    EXPECT_THROW(zoo::zooSpec("no-such-predictor"), Error);
}

TEST(PredictorsZoo, BatchedKernelMatchesScalarReference)
{
    ZooFixture fx;
    const zoo::ZooContext context = fx.context();
    for (const zoo::ZooSpec &spec : zoo::defaultZoo()) {
        SCOPED_TRACE(spec.name);
        auto batched = spec.make(context);
        auto scalar = spec.make(context);
        {
            BatchGuard on("1");
            trace::replay(fx.trace, *batched);
        }
        {
            BatchGuard off("off");
            trace::replay(fx.trace, *scalar);
        }
        EXPECT_EQ(batched->total(), scalar->total());
        EXPECT_EQ(batched->correct(), scalar->correct());
        EXPECT_EQ(batched->mispredicted(), scalar->mispredicted());
        EXPECT_GT(batched->total(), 0);
    }
}

TEST(PredictorsZoo, ReplayMatchesLiveVmObservation)
{
    ZooFixture fx;
    const zoo::ZooContext context = fx.context();
    vm::Machine machine(fx.program);
    for (const zoo::ZooSpec &spec : zoo::defaultZoo()) {
        SCOPED_TRACE(spec.name);
        auto live = spec.make(context);
        auto replayed = spec.make(context);
        machine.run("", vm::RunLimits{}, live.get());
        trace::replay(fx.trace, *replayed);
        EXPECT_EQ(replayed->total(), live->total());
        EXPECT_EQ(replayed->correct(), live->correct());
    }
}

TEST(PredictorsZoo, FanOutMatchesSequentialReplays)
{
    ZooFixture fx;
    const zoo::ZooContext context = fx.context();
    const auto &zoo = zoo::defaultZoo();

    std::vector<std::unique_ptr<DynamicPredictor>> fanout;
    std::vector<vm::BranchObserver *> observers;
    for (const zoo::ZooSpec &spec : zoo) {
        fanout.push_back(spec.make(context));
        observers.push_back(fanout.back().get());
    }
    trace::replay(fx.trace, observers);

    for (size_t i = 0; i < zoo.size(); ++i) {
        SCOPED_TRACE(zoo[i].name);
        auto alone = zoo[i].make(context);
        trace::replay(fx.trace, *alone);
        EXPECT_EQ(fanout[i]->total(), alone->total());
        EXPECT_EQ(fanout[i]->correct(), alone->correct());
    }
}

// ---------------------------------------------------------------------------
// PredictorsBimodal / PredictorsPerceptron / PredictorsTage: scheme
// mechanics beyond the generic differentials.
// ---------------------------------------------------------------------------

TEST(PredictorsBimodal, PackedTableMatchesByteCountersWithoutAliasing)
{
    // 100 sites in a 128-entry table: no aliasing, so the packed
    // bimodal must agree with the idealized byte-per-site TwoBit
    // predictor event for event.
    zoo::BimodalPredictor packed(7);
    TwoBitPredictor bytes(100);
    Rng rng(42);
    for (int i = 0; i < 20000; ++i) {
        const int site = static_cast<int>(rng.next() % 100);
        const bool taken = ((rng.next() >> 7) & 3) != 0; // ~75% taken
        packed.onBranch(site, taken);
        bytes.onBranch(site, taken);
    }
    EXPECT_EQ(packed.total(), bytes.total());
    EXPECT_EQ(packed.correct(), bytes.correct());
}

TEST(PredictorsPerceptron, LearnsAlternationACounterCannot)
{
    zoo::PerceptronPredictor perceptron;
    TwoBitPredictor counter(1);
    for (int i = 0; i < 4000; ++i) {
        const bool taken = (i & 1) != 0;
        perceptron.onBranch(0, taken);
        counter.onBranch(0, taken);
    }
    EXPECT_GT(perceptron.trainings(), 0);
    // The perceptron reads the alternation out of its history register;
    // a 2-bit counter on the same stream is wrong about half the time.
    EXPECT_GT(perceptron.percentCorrect(), 95.0);
    EXPECT_LT(counter.percentCorrect(), 60.0);
}

TEST(PredictorsPerceptron, BatchMatchesScalarOnWeightRailStreams)
{
    // Heavily biased streams drive the int8 weights onto the +127/-128
    // rails with adjacent extreme lanes — the corner where an earlier
    // batched dot-product diverged from the scalar reference even
    // though random-stream differentials all agreed. Feed identical
    // blocks through onBatch and the scalar onBranch path and demand
    // bit-identical mispredict and training counts after every block.
    uint64_t lcg = 0x2545f4914f6cdd1dull;
    for (int config = 0; config < 3; ++config) {
        SCOPED_TRACE(config);
        zoo::PerceptronPredictor batch(9, 16);
        zoo::PerceptronPredictor scalar(9, 16);
        vm::EventBlock block;
        for (int blk = 0; blk < 200; ++blk) {
            block.size = 1024;
            int branches = 0;
            for (int i = 0; i < block.size; ++i) {
                lcg = lcg * 6364136223846793005ull +
                      1442695040888963407ull;
                if (((lcg >> 40) & 63) == 0) {
                    block.site_id[i] = -1; // break marker
                    block.taken[i] = 0;
                    continue;
                }
                ++branches;
                uint32_t site, tk;
                switch (config) {
                case 0: // few sites, near-always-taken: +127 rail
                    site = (lcg >> 33) & 7;
                    tk = ((lcg >> 21) & 31) != 0;
                    break;
                case 1: // few sites, near-never-taken: -128 rail
                    site = (lcg >> 33) & 7;
                    tk = ((lcg >> 21) & 31) == 0;
                    break;
                default: // alternating bias per site: mixed rails
                    site = (lcg >> 33) & 15;
                    tk = (site & 1) ? (((lcg >> 21) & 15) != 0)
                                    : (((lcg >> 21) & 15) == 0);
                    break;
                }
                block.site_id[i] = static_cast<int32_t>(site);
                block.taken[i] = static_cast<uint8_t>(tk);
            }
            block.branch_count = branches;
            block.max_site = 15;
            batch.onBatch(block);
            for (int i = 0; i < block.size; ++i)
                if (block.site_id[i] >= 0)
                    scalar.onBranch(block.site_id[i],
                                    block.taken[i] != 0);
            ASSERT_EQ(batch.mispredicted(), scalar.mispredicted())
                << "block " << blk;
            ASSERT_EQ(batch.trainings(), scalar.trainings())
                << "block " << blk;
        }
        EXPECT_GT(batch.trainings(), 0);
    }
}

TEST(PredictorsTage, AllocatesAndBeatsBaseOnPeriodicPattern)
{
    // Period-4 pattern TTTN: the base bimodal saturates toward taken
    // and eats the N every cycle; a 4-bit-history tagged table learns
    // it exactly, so allocation must fire and accuracy must recover.
    zoo::TagePredictor tage;
    int64_t late_correct = 0;
    const int kEvents = 8000;
    for (int i = 0; i < kEvents; ++i) {
        const bool taken = (i & 3) != 3;
        const int64_t before = tage.correct();
        tage.onBranch(0, taken);
        if (i >= kEvents / 2)
            late_correct += tage.correct() - before;
    }
    const auto &stats = tage.tageStats();
    EXPECT_GT(stats.allocations, 0);
    EXPECT_GT(stats.tagged_hits, 0);
    // Second half: essentially perfect (>99%) once the tagged entries
    // own the pattern; the base alone would sit near 75%.
    EXPECT_GT(static_cast<double>(late_correct) / (kEvents / 2), 0.99);
}

TEST(PredictorsTage, UsefulCountersDefendOccupiedEntries)
{
    // Degenerate geometry — one entry per tagged table, zero-length
    // histories — so every event contends for the same four slots and
    // the replacement policy is fully observable. Four sites each
    // claim one table with the sequence N then T x 6: the N trains the
    // base not-taken, the first T mispredicts and allocates, and the
    // remaining Ts are provider-correct while the (frozen) base
    // alternate is wrong, driving the useful counter to saturation.
    zoo::TagePredictor::Config config;
    config.log2_entries = 0;
    config.history_lengths = {0, 0, 0, 0};
    zoo::TagePredictor tage(config);
    for (int site = 1; site <= 4; ++site) {
        tage.onBranch(site, false);
        for (int i = 0; i < 6; ++i)
            tage.onBranch(site, true);
    }
    ASSERT_EQ(tage.tageStats().allocations, 4); // one table per site
    ASSERT_EQ(tage.tageStats().alloc_failures, 0);

    // A fifth site alternates and mispredicts every event; all four
    // slots defend themselves (u == 3), so three allocation attempts
    // must fail — each decaying every candidate's u by one — before
    // the fourth finally claims a slot.
    for (int i = 0; i < 4; ++i)
        tage.onBranch(5, (i & 1) == 0);
    EXPECT_EQ(tage.tageStats().alloc_failures, 3);
    EXPECT_EQ(tage.tageStats().allocations, 5);
}

TEST(PredictorsTage, PeriodicUsefulResetFiresOnSchedule)
{
    zoo::TagePredictor::Config config;
    config.useful_reset_period = 256;
    zoo::TagePredictor tage(config);
    for (int i = 0; i < 1000; ++i)
        tage.onBranch(0, (i & 7) != 7);
    // Ticks 256, 512, 768 halve every useful counter.
    EXPECT_EQ(tage.tageStats().useful_resets, 3);
}

TEST(PredictorsStatic, DirectionKernelScoresLoweredBytes)
{
    zoo::StaticDirectionPredictor predictor({1, 0, 1});
    predictor.onBranch(0, true);  // correct
    predictor.onBranch(0, false); // wrong
    predictor.onBranch(1, false); // correct
    predictor.onBranch(2, true);  // correct
    EXPECT_EQ(predictor.total(), 4);
    EXPECT_EQ(predictor.correct(), 3);
    EXPECT_EQ(predictor.mispredicted(), 1);
}

TEST(PredictorsStatic, ConstantTableBatchMatchesScalar)
{
    // All-same direction tables (always-taken / always-not-taken) take
    // the byte-sum fast path in onBatch; score the same block — break
    // markers included — through the scalar path and compare.
    for (const uint8_t dir : {uint8_t{1}, uint8_t{0}}) {
        SCOPED_TRACE(static_cast<int>(dir));
        zoo::StaticDirectionPredictor batch(
            std::vector<uint8_t>(16, dir));
        zoo::StaticDirectionPredictor scalar(
            std::vector<uint8_t>(16, dir));
        vm::EventBlock block;
        block.size = 1000;
        int branches = 0;
        uint64_t lcg = 99;
        for (int i = 0; i < block.size; ++i) {
            lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
            if ((lcg >> 60) == 0) {
                block.site_id[i] = -1; // break marker
                block.taken[i] = 0;
                continue;
            }
            ++branches;
            block.site_id[i] = static_cast<int32_t>((lcg >> 33) & 15);
            block.taken[i] = static_cast<uint8_t>((lcg >> 21) & 1);
        }
        block.branch_count = branches;
        block.max_site = 15;
        batch.onBatch(block);
        for (int i = 0; i < block.size; ++i)
            if (block.site_id[i] >= 0)
                scalar.onBranch(block.site_id[i], block.taken[i] != 0);
        EXPECT_EQ(batch.total(), scalar.total());
        EXPECT_EQ(batch.correct(), scalar.correct());
    }
}

// ---------------------------------------------------------------------------
// PredictorsMultiObserver: the regression the zoo depends on — a
// fan-out must forward each decoded block once per observer, not
// degrade to one scalar loop per observer per event.
// ---------------------------------------------------------------------------

struct BatchCountingObserver final : vm::BranchObserver
{
    int batch_calls = 0;
    int scalar_calls = 0;
    int64_t events_seen = 0;

    void
    onBranch(int, bool, int64_t) override
    {
        ++scalar_calls;
        ++events_seen;
    }
    void
    onBatch(const vm::EventBlock &block) override
    {
        ++batch_calls;
        events_seen += block.size;
    }
};

TEST(PredictorsMultiObserver, ForwardsEachBlockOncePerObserver)
{
    vm::EventBlock block;
    block.size = 3;
    block.branch_count = 3;
    block.max_site = 2;
    block.site_id[0] = 0;
    block.site_id[1] = 1;
    block.site_id[2] = 2;
    block.taken[0] = 1;
    block.taken[1] = 0;
    block.taken[2] = 1;

    BatchCountingObserver a, b;
    vm::MultiObserver fanout({&a, &b});
    fanout.onBatch(block);
    fanout.onBatch(block);

    for (const BatchCountingObserver *o : {&a, &b}) {
        EXPECT_EQ(o->batch_calls, 2);
        EXPECT_EQ(o->scalar_calls, 0); // no per-event degradation
        EXPECT_EQ(o->events_seen, 6);
    }
}

TEST(PredictorsMultiObserver, BatchParityWithScalarPath)
{
    ZooFixture fx;
    const zoo::ZooContext context = fx.context();

    auto batched = zoo::zooSpec("tage-4x1k").make(context);
    auto scalar = zoo::zooSpec("tage-4x1k").make(context);
    vm::MultiObserver batched_fanout({batched.get()});
    vm::MultiObserver scalar_fanout({scalar.get()});
    {
        BatchGuard on("1");
        trace::replay(fx.trace, batched_fanout);
    }
    {
        BatchGuard off("off");
        trace::replay(fx.trace, scalar_fanout);
    }
    EXPECT_EQ(batched->total(), scalar->total());
    EXPECT_EQ(batched->correct(), scalar->correct());
}

// ---------------------------------------------------------------------------
// PredictorsScheduler: tournament determinism across pool widths.
// ---------------------------------------------------------------------------

TEST(PredictorsScheduler, ScoresBitIdenticalAtJobs1And4)
{
    ::setenv("IFPROB_CACHE", "off", 1);
    {
        const std::vector<zoo::Cell> cells = {
            {"li", workloads::get("li").datasets.front().name},
            {"eqntott", workloads::get("eqntott").datasets.front().name},
            {"fpppp", workloads::get("fpppp").datasets.front().name},
        };
        const auto &zoo = zoo::defaultZoo();

        harness::Runner runner_j1;
        exec::Pool pool_j1(1);
        const auto serial =
            zoo::runTournament(runner_j1, cells, zoo, &pool_j1);

        harness::Runner runner_j4;
        exec::Pool pool_j4(4);
        const auto parallel =
            zoo::runTournament(runner_j4, cells, zoo, &pool_j4);

        ASSERT_EQ(serial.size(), parallel.size());
        for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].instructions, parallel[i].instructions);
            EXPECT_EQ(serial[i].branch_events,
                      parallel[i].branch_events);
            EXPECT_EQ(serial[i].branches, parallel[i].branches);
            EXPECT_EQ(serial[i].mispredicts, parallel[i].mispredicts);
            EXPECT_GT(serial[i].branch_events, 0);
        }

        int64_t instructions = 0;
        const auto scores = zoo::aggregate(serial, zoo, &instructions);
        ASSERT_EQ(scores.size(), zoo.size());
        EXPECT_GT(instructions, 0);
        for (const auto &score : scores) {
            EXPECT_EQ(score.branches,
                      serial[0].branch_events + serial[1].branch_events +
                          serial[2].branch_events);
            EXPECT_GE(score.mispredicts, 0);
            EXPECT_LE(score.mispredicts, score.branches);
        }
    }
    ::unsetenv("IFPROB_CACHE");
}

} // namespace
} // namespace ifprob::predict

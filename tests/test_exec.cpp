/**
 * @file
 * Tests for the src/exec/ parallel experiment engine: pool lifecycle
 * and exception propagation, job-graph dependency ordering, the
 * determinism of parallelFor versus a serial loop, and the Runner's
 * thread-safety contract (identical stats and exactly one compile per
 * workload when hammered from many threads).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "exec/graph.h"
#include "exec/pool.h"
#include "harness/runner.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace ifprob {
namespace {

// --- Pool -------------------------------------------------------------------

TEST(ExecPool, InlineModeRunsJobsImmediatelyInOrder)
{
    exec::Pool pool(1);
    EXPECT_EQ(pool.jobs(), 1);
    EXPECT_EQ(pool.workers(), 0);
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        exec::Job job = pool.submit([&order, i] { order.push_back(i); });
        // Inline mode completes before submit() returns.
        EXPECT_TRUE(job.done());
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ExecPool, WorkersRunEveryJob)
{
    exec::Pool pool(4);
    EXPECT_EQ(pool.workers(), 4);
    std::atomic<int> sum{0};
    std::vector<exec::Job> jobs;
    for (int i = 0; i < 200; ++i)
        jobs.push_back(pool.submit([&sum] { sum.fetch_add(1); }));
    for (const auto &job : jobs)
        job.wait();
    EXPECT_EQ(sum.load(), 200);
}

TEST(ExecPool, DestructorDrainsPendingJobs)
{
    std::atomic<int> ran{0};
    {
        exec::Pool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        // No explicit wait: the destructor must drain the queues.
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(ExecPool, ExceptionIsCapturedAndRethrownByGet)
{
    for (int jobs : {1, 3}) {
        exec::Pool pool(jobs);
        exec::Job ok = pool.submit([] {});
        exec::Job bad =
            pool.submit([] { throw std::runtime_error("task failed"); });
        EXPECT_NO_THROW(ok.get());
        bad.wait(); // wait() never throws
        try {
            bad.get();
            FAIL() << "get() must rethrow (jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "task failed");
        }
    }
}

TEST(ExecPool, ParallelForMatchesSerialResults)
{
    auto compute = [](exec::Pool &pool) {
        std::vector<int64_t> out(97, 0);
        exec::parallelFor(pool, out.size(), [&out](size_t i) {
            int64_t v = static_cast<int64_t>(i);
            out[i] = v * v + 7 * v + 3;
        });
        return out;
    };
    exec::Pool serial(1);
    exec::Pool parallel(4);
    EXPECT_EQ(compute(serial), compute(parallel));
}

TEST(ExecPool, ParallelForRethrowsLowestIndexFailure)
{
    exec::Pool pool(4);
    std::atomic<int> ran{0};
    try {
        exec::parallelFor(pool, 16, [&ran](size_t i) {
            ran.fetch_add(1);
            if (i == 3 || i == 11)
                throw std::runtime_error("failed at " + std::to_string(i));
        });
        FAIL() << "parallelFor must rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "failed at 3");
    }
    // No iteration is skipped even when some fail.
    EXPECT_EQ(ran.load(), 16);
}

// --- Graph ------------------------------------------------------------------

TEST(ExecGraph, RespectsDependencyOrdering)
{
    for (int jobs : {1, 4}) {
        exec::Graph graph;
        std::mutex mu;
        std::vector<size_t> finish_order;
        auto node = [&](size_t id) {
            return [&, id] {
                std::lock_guard<std::mutex> lock(mu);
                finish_order.push_back(id);
            };
        };
        // Diamond per "workload" plus a cross-stage fan-in, twice.
        auto a = graph.add("a", node(0));
        auto b = graph.add("b", node(1));
        auto c = graph.add("c", node(2), {a, b});
        auto d = graph.add("d", node(3), {a});
        auto e = graph.add("e", node(4), {c, d});
        (void)e;
        exec::Pool pool(jobs);
        graph.run(pool);

        ASSERT_EQ(finish_order.size(), 5u) << "jobs=" << jobs;
        std::vector<size_t> pos(5);
        for (size_t i = 0; i < finish_order.size(); ++i)
            pos[finish_order[i]] = i;
        EXPECT_LT(pos[0], pos[2]);
        EXPECT_LT(pos[1], pos[2]);
        EXPECT_LT(pos[0], pos[3]);
        EXPECT_LT(pos[2], pos[4]);
        EXPECT_LT(pos[3], pos[4]);
    }
}

TEST(ExecGraph, FailureSkipsTransitiveDependentsOnly)
{
    for (int jobs : {1, 4}) {
        exec::Graph graph;
        std::atomic<bool> c_ran{false}, d_ran{false};
        graph.add("a", [] {});
        auto b = graph.add("b", [] { throw Error("b exploded"); });
        auto c = graph.add("c", [&c_ran] { c_ran = true; }, {b});
        graph.add("c2", [] {}, {c}); // transitively skipped
        graph.add("d", [&d_ran] { d_ran = true; });
        exec::Pool pool(jobs);
        try {
            graph.run(pool);
            FAIL() << "run() must rethrow (jobs=" << jobs << ")";
        } catch (const Error &e) {
            EXPECT_STREQ(e.what(), "b exploded");
        }
        EXPECT_FALSE(c_ran.load());
        EXPECT_TRUE(d_ran.load());
        EXPECT_EQ(graph.skipped(), 2u);
    }
}

TEST(ExecGraph, ForwardDependenciesAreRejected)
{
    exec::Graph graph;
    graph.add("a", [] {});
    EXPECT_THROW(graph.add("b", [] {}, {5}), Error);
}

TEST(ExecGraph, RunIsSingleShot)
{
    exec::Graph graph;
    graph.add("a", [] {});
    exec::Pool pool(1);
    graph.run(pool);
    EXPECT_THROW(graph.run(pool), Error);
}

TEST(ExecGraph, SerialRunIsDeterministic)
{
    auto order_of = [] {
        exec::Graph graph;
        std::vector<size_t> order;
        auto s0 = graph.add("s0", [&order] { order.push_back(0); });
        auto s1 = graph.add("s1", [&order] { order.push_back(1); });
        graph.add("r0", [&order] { order.push_back(2); }, {s0, s1});
        graph.add("r1", [&order] { order.push_back(3); }, {s0, s1});
        exec::Pool pool(1);
        graph.run(pool);
        return order;
    };
    auto first = order_of();
    EXPECT_EQ(first, order_of());
    // Stats nodes before their rows, rows in id order.
    EXPECT_EQ(first, (std::vector<size_t>{0, 1, 2, 3}));
}

// --- plannedJobs / defaultJobs ---------------------------------------------

TEST(ExecJobs, EnvironmentVariableControlsDefault)
{
    ::setenv("IFPROB_JOBS", "7", 1);
    EXPECT_EQ(exec::defaultJobs(), 7);
    ::setenv("IFPROB_JOBS", "0", 1); // invalid: falls back to hardware
    EXPECT_GE(exec::defaultJobs(), 1);
    ::unsetenv("IFPROB_JOBS");
    EXPECT_GE(exec::defaultJobs(), 1);
}

// --- CacheStats failure cap -------------------------------------------------

TEST(CacheStatsCap, FailureDetailsAreCapped)
{
    harness::CacheStats stats;
    for (int i = 0; i < 40; ++i)
        stats.noteFailure("failure " + std::to_string(i));
    EXPECT_EQ(stats.failures.size(), harness::CacheStats::kMaxFailureDetails);
    EXPECT_EQ(stats.failures.front(), "failure 0");
    EXPECT_EQ(stats.failures.back(), "failure 31");
    EXPECT_EQ(stats.failures_dropped, 8);
}

// --- Runner thread safety ---------------------------------------------------

class RunnerConcurrency : public ::testing::Test
{
  protected:
    void SetUp() override { ::setenv("IFPROB_CACHE", "off", 1); }
    void TearDown() override { ::unsetenv("IFPROB_CACHE"); }
};

TEST_F(RunnerConcurrency, EightThreadsSeeOneCompileAndIdenticalStats)
{
    harness::Runner runner;
    const std::string workload = "mcc";
    const auto datasets = runner.datasetNames(workload);
    ASSERT_GE(datasets.size(), 1u);

    const int64_t compiles_before =
        obs::counter("compiler.compiles").value();

    constexpr int kThreads = 8;
    std::vector<const isa::Program *> programs(kThreads, nullptr);
    std::vector<std::vector<const vm::RunStats *>> stats(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            programs[t] = &runner.program(workload);
            for (const auto &d : datasets)
                stats[t].push_back(&runner.stats(workload, d));
        });
    }
    for (auto &thread : threads)
        thread.join();

    // Exactly one compile for the workload, despite 8 racing callers.
    EXPECT_EQ(obs::counter("compiler.compiles").value() - compiles_before,
              1);
    // Every thread got the same Program and the same RunStats objects
    // (same address == computed exactly once, identical by construction).
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(programs[t], programs[0]);
        for (size_t d = 0; d < datasets.size(); ++d)
            EXPECT_EQ(stats[t][d], stats[0][d]);
    }
    for (size_t d = 0; d < datasets.size(); ++d)
        EXPECT_GT(stats[0][d]->instructions, 0);
}

TEST_F(RunnerConcurrency, ConcurrentRunnersShareDiskCacheWithoutTearing)
{
    auto dir = std::filesystem::temp_directory_path() /
               ("ifprob-exec-cache-" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    ::setenv("IFPROB_CACHE", dir.c_str(), 1);

    // Several Runners race to populate and read the same cache entry.
    // Atomic temp-file + rename writes mean a reader sees either no
    // file (miss -> re-run) or a complete one — never a torn entry.
    constexpr int kRunners = 4;
    std::vector<int64_t> instructions(kRunners, 0);
    int64_t read_failures = 0;
    std::vector<std::thread> threads;
    std::mutex mu;
    for (int t = 0; t < kRunners; ++t) {
        threads.emplace_back([&, t] {
            harness::Runner runner;
            instructions[t] =
                runner.stats("mcc", "c_metric").instructions;
            std::lock_guard<std::mutex> lock(mu);
            read_failures += runner.cacheStats().read_failures;
        });
    }
    for (auto &thread : threads)
        thread.join();

    for (int t = 1; t < kRunners; ++t)
        EXPECT_EQ(instructions[t], instructions[0]);
    EXPECT_GT(instructions[0], 0);
    EXPECT_EQ(read_failures, 0) << "a torn cache entry was observed";

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

} // namespace
} // namespace ifprob

/**
 * @file
 * Golden tests for the workload suite: every program compiles, every
 * dataset runs to completion, and each program's output is functionally
 * verified (round-trips, known combinatorial counts, residuals, cover
 * equivalence, reference diffs).
 */
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <functional>

#include "support/error.h"

#include "compiler/inline.h"
#include "compiler/layout.h"
#include "compiler/pipeline.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "support/str.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace ifprob {
namespace {

vm::RunResult
runWorkload(const workloads::Workload &w, const std::string &input)
{
    isa::Program program = compile(w.source);
    vm::Machine machine(program);
    vm::RunLimits limits;
    limits.max_instructions = 2'000'000'000;
    return machine.run(input, limits);
}

const workloads::Dataset &
dataset(const workloads::Workload &w, std::string_view name)
{
    for (const auto &d : w.datasets) {
        if (d.name == name)
            return d;
    }
    throw Error("no dataset " + std::string(name));
}

TEST(Workloads, RegistryShape)
{
    const auto &all = workloads::all();
    EXPECT_EQ(all.size(), 14u);
    int fortran = 0, c = 0;
    for (const auto &w : all) {
        EXPECT_FALSE(w.name.empty());
        EXPECT_FALSE(w.source.empty());
        EXPECT_FALSE(w.datasets.empty());
        (w.fortran_like ? fortran : c) += 1;
    }
    EXPECT_EQ(fortran, 7);
    EXPECT_EQ(c, 7);
}

TEST(Workloads, EveryDatasetRuns)
{
    for (const auto &w : workloads::all()) {
        isa::Program program = compile(w.source);
        vm::Machine machine(program);
        vm::RunLimits limits;
        limits.max_instructions = 2'000'000'000;
        for (const auto &d : w.datasets) {
            SCOPED_TRACE(w.name + "/" + d.name);
            vm::RunResult r;
            ASSERT_NO_THROW(r = machine.run(d.input, limits));
            EXPECT_EQ(r.stats.exit_code, 0);
            EXPECT_GT(r.stats.instructions, 1000);
            EXPECT_GT(r.stats.cond_branches, 0);
        }
    }
}

TEST(Workloads, CompressRoundTripsEveryDataset)
{
    const auto &comp = workloads::get("compress");
    const auto &uncomp = workloads::get("uncompress");
    ASSERT_EQ(comp.datasets.size(), uncomp.datasets.size());
    for (size_t i = 0; i < comp.datasets.size(); ++i) {
        SCOPED_TRACE(comp.datasets[i].name);
        const std::string &raw =
            comp.datasets[i].input.substr(1); // strip 'C'
        auto compressed = runWorkload(comp, comp.datasets[i].input);
        // The uncompress dataset must be exactly 'D' + compressed output.
        EXPECT_EQ(uncomp.datasets[i].input, "D" + compressed.output);
        auto restored = runWorkload(uncomp, uncomp.datasets[i].input);
        EXPECT_EQ(restored.output, raw);
        // And compression should actually compress the compressible sets.
        if (comp.datasets[i].name == "long") {
            EXPECT_LT(compressed.output.size(), raw.size());
        }
    }
}

TEST(Workloads, LiSolvesQueens)
{
    const auto &li = workloads::get("li");
    auto r8 = runWorkload(li, dataset(li, "8queens").input);
    EXPECT_EQ(r8.output, "92\n");
    auto r9 = runWorkload(li, dataset(li, "9queens").input);
    EXPECT_EQ(r9.output, "352\n");
}

TEST(Workloads, LiSieveCountsPrimes)
{
    const auto &li = workloads::get("li");
    auto r = runWorkload(li, dataset(li, "sievel").input);
    // Primes <= 600: 109 of them; the largest is 599.
    EXPECT_EQ(r.output, "109\n599\n");
}

TEST(Workloads, LiKittyvConverges)
{
    const auto &li = workloads::get("li");
    auto r = runWorkload(li, dataset(li, "kittyv").input);
    // Deterministic integer relaxation: output is a single integer line.
    ASSERT_FALSE(r.output.empty());
    long total = std::strtol(r.output.c_str(), nullptr, 10);
    EXPECT_GT(total, 0);
}

/** Host-side truth-table oracle for the eqntott equation format. */
std::string
truthTableOracle(const std::string &eqns)
{
    // Minimal recursive-descent evaluator mirroring the minic program.
    struct Parser
    {
        const std::string &s;
        size_t p = 0;
        std::vector<std::array<int, 3>> nodes; // op, a, b
        int ni = 0, no = 0;
        std::vector<int> roots;

        explicit Parser(const std::string &text) : s(text) {}

        void skip()
        {
            while (p < s.size() && (s[p] == ' ' || s[p] == '\n'))
                ++p;
        }
        char
        peek()
        {
            skip();
            return p < s.size() ? s[p] : '\0';
        }
        char next()
        {
            char c = peek();
            ++p;
            return c;
        }
        int
        number()
        {
            skip();
            int v = 0;
            while (p < s.size() && isdigit(static_cast<unsigned char>(s[p])))
                v = v * 10 + (s[p++] - '0');
            return v;
        }
        int
        factor()
        {
            char c = next();
            if (c == '!') {
                int n = factor();
                nodes.push_back({3, n, -1});
                return static_cast<int>(nodes.size()) - 1;
            }
            if (c == '(') {
                int n = expr();
                next(); // ')'
                return n;
            }
            if (c == 'x') {
                nodes.push_back({0, number(), -1});
                return static_cast<int>(nodes.size()) - 1;
            }
            nodes.push_back({4, number(), -1}); // z-ref
            return static_cast<int>(nodes.size()) - 1;
        }
        int
        term()
        {
            int n = factor();
            while (peek() == '&') {
                next();
                nodes.push_back({1, n, factor()});
                n = static_cast<int>(nodes.size()) - 1;
            }
            return n;
        }
        int
        expr()
        {
            int n = term();
            while (peek() == '|') {
                next();
                nodes.push_back({2, n, term()});
                n = static_cast<int>(nodes.size()) - 1;
            }
            return n;
        }
    };

    Parser parser(eqns);
    parser.next(); // 'i'
    parser.ni = parser.number();
    parser.next(); // 'o'
    parser.no = parser.number();
    for (int i = 0; i < parser.no; ++i) {
        parser.next();   // 'z'
        parser.number(); // index
        parser.next();   // '='
        parser.roots.push_back(parser.expr());
        parser.next();   // ';'
    }
    std::vector<int> zval(static_cast<size_t>(parser.no));
    std::string out;
    std::function<int(int, int)> eval = [&](int n, int row) -> int {
        auto &node = parser.nodes[static_cast<size_t>(n)];
        switch (node[0]) {
          case 0: return (row >> node[1]) & 1;
          case 1: return eval(node[1], row) && eval(node[2], row);
          case 2: return eval(node[1], row) || eval(node[2], row);
          case 3: return !eval(node[1], row);
          default: return zval[static_cast<size_t>(node[1])];
        }
    };
    for (int row = 0; row < (1 << parser.ni); ++row) {
        for (int z = 0; z < parser.no; ++z) {
            zval[static_cast<size_t>(z)] = eval(parser.roots[static_cast<size_t>(z)], row);
            out.push_back(static_cast<char>('0' + zval[static_cast<size_t>(z)]));
        }
        out.push_back('\n');
    }
    return out;
}

TEST(Workloads, EqntottMatchesOracle)
{
    const auto &eq = workloads::get("eqntott");
    for (const char *name : {"add4", "intpri"}) {
        SCOPED_TRACE(name);
        const auto &d = dataset(eq, name);
        auto r = runWorkload(eq, d.input);
        EXPECT_EQ(r.output, truthTableOracle(d.input));
    }
}

TEST(Workloads, EqntottAdderIsAnAdder)
{
    // Decode the add4 truth table rows and verify real addition.
    const auto &eq = workloads::get("eqntott");
    const auto &d = dataset(eq, "add4");
    auto r = runWorkload(eq, d.input);
    auto lines = split(r.output, '\n');
    const int bits = 4;
    for (int row = 0; row < (1 << (2 * bits + 1)); row += 37) {
        int a = row & 0xf;
        int b = (row >> bits) & 0xf;
        int cin = (row >> (2 * bits)) & 1;
        const std::string &outs = lines[static_cast<size_t>(row)];
        // Outputs alternate sum/carry per bit: z0=s0, z1=c1, z2=s1, ...
        int sum = 0;
        for (int i = 0; i < bits; ++i)
            sum |= (outs[static_cast<size_t>(2 * i)] - '0') << i;
        int carry_out = outs[static_cast<size_t>(2 * bits - 1)] - '0';
        int expect = a + b + cin;
        EXPECT_EQ(sum | (carry_out << bits), expect)
            << "row " << row << " a=" << a << " b=" << b << " cin=" << cin;
    }
}

/** Parse a PLA text into cubes for the espresso equivalence check. */
struct Pla
{
    int ni = 0, no = 0;
    std::vector<std::pair<std::string, std::string>> cubes;
};

Pla
parsePla(const std::string &text)
{
    Pla pla;
    for (const auto &line : split(text, '\n')) {
        auto t = trim(line);
        if (t.empty())
            continue;
        if (t[0] == '.') {
            auto fields = splitWhitespace(t);
            if (fields[0] == ".i")
                pla.ni = std::atoi(fields[1].c_str());
            else if (fields[0] == ".o")
                pla.no = std::atoi(fields[1].c_str());
            continue;
        }
        auto fields = splitWhitespace(t);
        if (fields.size() == 2)
            pla.cubes.emplace_back(fields[0], fields[1]);
    }
    return pla;
}

bool
plaCovers(const Pla &pla, int minterm, int output)
{
    for (const auto &[in, out] : pla.cubes) {
        if (out[static_cast<size_t>(output)] != '1')
            continue;
        bool match = true;
        for (int v = 0; v < pla.ni; ++v) {
            char lit = in[static_cast<size_t>(v)];
            int bit = (minterm >> v) & 1;
            if (lit != '-' && lit - '0' != bit) {
                match = false;
                break;
            }
        }
        if (match)
            return true;
    }
    return false;
}

TEST(Workloads, EspressoPreservesFunctionAndShrinksCover)
{
    const auto &esp = workloads::get("espresso");
    for (const auto &d : esp.datasets) {
        SCOPED_TRACE(d.name);
        auto r = runWorkload(esp, d.input);
        Pla before = parsePla(d.input);
        Pla after = parsePla(r.output);
        after.ni = before.ni;
        after.no = before.no;
        ASSERT_GT(before.cubes.size(), 0u);
        ASSERT_GT(after.cubes.size(), 0u);
        EXPECT_LE(after.cubes.size(), before.cubes.size());
        for (int o = 0; o < before.no; ++o) {
            for (int m = 0; m < (1 << before.ni); ++m) {
                ASSERT_EQ(plaCovers(after, m, o), plaCovers(before, m, o))
                    << "minterm " << m << " output " << o;
            }
        }
    }
}

TEST(Workloads, MccCompilesCleanly)
{
    const auto &mcc = workloads::get("mcc");
    for (const auto &d : mcc.datasets) {
        SCOPED_TRACE(d.name);
        auto r = runWorkload(mcc, d.input);
        // The trailer line reports op/sym/error counts.
        auto pos = r.output.rfind("; ops=");
        ASSERT_NE(pos, std::string::npos);
        EXPECT_NE(r.output.find(" errs=0\n"), std::string::npos)
            << r.output.substr(pos);
    }
}

TEST(Workloads, SpiffFindsPlantedDifferences)
{
    const auto &spiff = workloads::get("spiff");
    // case2 plants ~12% big perturbations over 180 lines.
    auto r2 = runWorkload(spiff, dataset(spiff, "case2").input);
    auto pos = r2.output.find("common=");
    ASSERT_NE(pos, std::string::npos);
    int common = 0, del = 0, add = 0;
    ASSERT_EQ(std::sscanf(r2.output.c_str() + pos,
                          "common=%d del=%d add=%d", &common, &del, &add),
              3);
    EXPECT_GT(common, 50);
    EXPECT_GT(del, 10);
    EXPECT_EQ(del, add); // same-length files, substitutions only
    EXPECT_EQ(common + del, 180);

    // case3: 26 common listing lines, 1 deleted trailer, 2 added lines.
    auto r3 = runWorkload(spiff, dataset(spiff, "case3").input);
    EXPECT_NE(r3.output.find("common=26 del=1 add=2"), std::string::npos)
        << r3.output;
}

TEST(Workloads, SpiceResistorDividerIsExact)
{
    const auto &spice = workloads::get("spice");
    auto r = runWorkload(spice, dataset(spice, "circuit1").input);
    // 5V across 1k + 1k + 2k: v2 = 3.75, v3 = 2.5.
    double v2 = 0, v3 = 0;
    auto pos2 = r.output.find("v2=");
    auto pos3 = r.output.find("v3=");
    ASSERT_NE(pos2, std::string::npos);
    ASSERT_NE(pos3, std::string::npos);
    v2 = std::strtod(r.output.c_str() + pos2 + 3, nullptr);
    v3 = std::strtod(r.output.c_str() + pos3 + 3, nullptr);
    EXPECT_NEAR(v2, 3.75, 0.01);
    EXPECT_NEAR(v3, 2.5, 0.01);
}

TEST(Workloads, SpiceRcChargesTowardSource)
{
    const auto &spice = workloads::get("spice");
    auto r = runWorkload(spice, dataset(spice, "circuit2").input);
    auto pos = r.output.find("v2=");
    ASSERT_NE(pos, std::string::npos);
    double v2 = std::strtod(r.output.c_str() + pos + 3, nullptr);
    // After 4 time constants the cap sits near 5V.
    EXPECT_GT(v2, 4.5);
    EXPECT_LT(v2, 5.01);
    EXPECT_NE(r.output.find("nonconv=0"), std::string::npos) << r.output;
}

TEST(Workloads, SpiceNonlinearCircuitsConverge)
{
    const auto &spice = workloads::get("spice");
    for (const char *name :
         {"circuit3", "circuit4", "circuit5", "add_bjt", "add_fet",
          "greysmall"}) {
        SCOPED_TRACE(name);
        auto r = runWorkload(spice, dataset(spice, name).input);
        EXPECT_NE(r.output.find("nonconv=0"), std::string::npos)
            << r.output;
    }
}

TEST(Workloads, NumericKernelsProduceFiniteOutput)
{
    for (const char *name :
         {"tomcatv", "matrix300", "nasa7", "lfk", "fpppp", "doduc"}) {
        SCOPED_TRACE(name);
        const auto &w = workloads::get(name);
        auto r = runWorkload(w, w.datasets[0].input);
        EXPECT_EQ(r.stats.exit_code, 0);
        ASSERT_FALSE(r.output.empty());
        EXPECT_EQ(r.output.find("nan"), std::string::npos) << r.output;
        EXPECT_EQ(r.output.find("inf"), std::string::npos) << r.output;
    }
}

TEST(Workloads, OptimizationLevelsPreserveEveryProgram)
{
    // Suite-wide differential test: each workload's primary dataset
    // produces identical output at every optimization level.
    for (const auto &w : workloads::all()) {
        SCOPED_TRACE(w.name);
        CompileOptions raw_options;
        raw_options.optimize = false;
        CompileOptions dce_options;
        dce_options.eliminate_dead_code = true;
        isa::Program raw_program = compile(w.source, raw_options);
        isa::Program opt_program = compile(w.source);
        isa::Program dce_program = compile(w.source, dce_options);
        vm::Machine raw(raw_program);
        vm::Machine opt(opt_program);
        vm::Machine dce(dce_program);
        vm::RunLimits limits;
        limits.max_instructions = 4'000'000'000ll;
        const auto &input = w.datasets.front().input;
        auto r_raw = raw.run(input, limits);
        auto r_opt = opt.run(input, limits);
        auto r_dce = dce.run(input, limits);
        EXPECT_EQ(r_opt.output, r_raw.output);
        EXPECT_EQ(r_dce.output, r_raw.output);
        EXPECT_LE(r_opt.stats.instructions, r_raw.stats.instructions);
        EXPECT_LE(r_dce.stats.instructions, r_opt.stats.instructions);
    }
}

TEST(Workloads, InlineAndLayoutPreserveEveryProgram)
{
    // The two profile-guided transformations applied together must not
    // change any workload's behaviour.
    for (const auto &w : workloads::all()) {
        SCOPED_TRACE(w.name);
        isa::Program program = compile(w.source);
        vm::Machine machine(program);
        vm::RunLimits limits;
        limits.max_instructions = 4'000'000'000ll;
        const auto &input = w.datasets.front().input;
        auto before = machine.run(input, limits);

        profile::ProfileDb db(w.name, program.fingerprint(),
                              before.stats);
        isa::Program transformed = program;
        inlineProgram(transformed);
        predict::ProfilePredictor feedback(db);
        layoutProgram(transformed, feedback, db);
        vm::Machine transformed_machine(transformed);
        auto after = transformed_machine.run(input, limits);
        EXPECT_EQ(after.output, before.output);
        EXPECT_EQ(after.stats.exit_code, before.stats.exit_code);
    }
}

TEST(Workloads, FppppHasLowBranchDensity)
{
    // The paper's motivating anomaly: fpppp executes a branch every ~170
    // instructions, li every ~10. Verify the density gap reproduces.
    const auto &fpppp = workloads::get("fpppp");
    auto rf = runWorkload(fpppp, dataset(fpppp, "4atoms").input);
    const auto &li = workloads::get("li");
    auto rl = runWorkload(li, dataset(li, "8queens").input);
    double fpppp_per_branch = 1.0 / rf.stats.branchDensity();
    double li_per_branch = 1.0 / rl.stats.branchDensity();
    EXPECT_GT(fpppp_per_branch, 40.0);
    EXPECT_LT(li_per_branch, 15.0);
    EXPECT_GT(fpppp_per_branch, 4.0 * li_per_branch);
}

} // namespace
} // namespace ifprob

/**
 * @file
 * Unit tests for semantic analysis and code generation: diagnostics,
 * type rules, branch-site metadata, select lowering, switch cascades,
 * and program structure.
 */
#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "support/error.h"
#include "vm/machine.h"

namespace ifprob {
namespace {

isa::Program
compileBare(std::string_view src)
{
    CompileOptions options;
    options.include_prelude = false;
    return compile(src, options);
}

int64_t
runBare(std::string_view src, std::string_view input = "")
{
    isa::Program p = compileBare(src);
    vm::Machine m(p);
    return m.run(input).stats.exit_code;
}

struct BadSource
{
    const char *label;
    const char *source;
};

class SemanticErrorTest : public ::testing::TestWithParam<BadSource>
{
};

TEST_P(SemanticErrorTest, Rejects)
{
    EXPECT_THROW(compileBare(GetParam().source), CompileError)
        << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    SemanticErrors, SemanticErrorTest,
    ::testing::Values(
        BadSource{"undeclared_var", "int main() { return nope; }"},
        BadSource{"undeclared_fn", "int main() { return nope(); }"},
        BadSource{"no_main", "int f() { return 0; }"},
        BadSource{"main_with_params", "int main(int argc) { return 0; }"},
        BadSource{"duplicate_global", "int a; float a; int main() { return 0; }"},
        BadSource{"duplicate_function",
                  "int f() { return 0; } int f() { return 1; } "
                  "int main() { return 0; }"},
        BadSource{"global_vs_function_clash",
                  "int f; int f() { return 0; } int main() { return 0; }"},
        BadSource{"redefine_builtin",
                  "int getc() { return 0; } int main() { return 0; }"},
        BadSource{"duplicate_local",
                  "int main() { int a; int a; return 0; }"},
        BadSource{"duplicate_param",
                  "int f(int a, int a) { return a; } "
                  "int main() { return 0; }"},
        BadSource{"float_modulo",
                  "int main() { float f = 1.0; return f % 2; }"},
        BadSource{"float_shift",
                  "int main() { float f = 1.0; return f << 1; }"},
        BadSource{"float_bitand",
                  "int main() { float f = 1.0; return f & 1; }"},
        BadSource{"void_in_arith",
                  "void f() {} int main() { return f() + 1; }"},
        BadSource{"void_condition",
                  "void f() {} int main() { if (f()) return 1; return 0; }"},
        BadSource{"wrong_arity",
                  "int f(int a) { return a; } int main() { return f(); }"},
        BadSource{"array_without_index",
                  "int a[4]; int main() { return a; }"},
        BadSource{"index_non_array", "int a; int main() { return a[0]; }"},
        BadSource{"assign_to_array",
                  "int a[4]; int main() { a = 1; return 0; }"},
        BadSource{"function_as_value",
                  "int f() { return 0; } int main() { return f + 1; }"},
        BadSource{"unknown_func_addr", "int main() { return &nope; }"},
        BadSource{"break_outside", "int main() { break; return 0; }"},
        BadSource{"continue_outside", "int main() { continue; return 0; }"},
        BadSource{"void_returns_value",
                  "void f() { return 1; } int main() { return 0; }"},
        BadSource{"missing_return_value",
                  "int f() { return; } int main() { return 0; }"},
        BadSource{"string_outside_puts",
                  "int main() { return \"x\"; }"},
        BadSource{"puts_non_literal",
                  "int main() { int x; puts(x); return 0; }"},
        BadSource{"nonconst_global_init",
                  "int f() { return 1; } int g = f(); "
                  "int main() { return 0; }"},
        BadSource{"too_many_array_inits",
                  "int a[2] = {1, 2, 3}; int main() { return 0; }"},
        BadSource{"negative_array_size",
                  "int a[0]; int main() { return 0; }"},
        BadSource{"builtin_arity", "int main() { return getc(1); }"}),
    [](const ::testing::TestParamInfo<BadSource> &info) {
        return info.param.label;
    });

TEST(Codegen, ErrorMessagesCarryLocations)
{
    try {
        compileBare("int main() {\n    return nope;\n}");
        FAIL() << "expected CompileError";
    } catch (const CompileError &e) {
        EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
    }
}

TEST(Codegen, MultipleErrorsReportedTogether)
{
    try {
        compileBare("int main() { return a + b; }");
        FAIL() << "expected CompileError";
    } catch (const CompileError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("'a'"), std::string::npos);
        EXPECT_NE(msg.find("'b'"), std::string::npos);
    }
}

TEST(Codegen, BranchSiteKindsRecorded)
{
    isa::Program p = compileBare(R"(
        int main() {
            int x = getc(), n = 0;
            if (x > 0) n = 1;                 // kIf
            while (x > n) n++;                // kLoop
            if (x > 1 && x < 9) n = 2;        // two sites from &&? no:
                                              // both carry kIf (stmt kind)
            int v = (x & 1) == 1 ? getc() : 0; // kTernary (impure arm)
            switch (x) { case 1: n = 3; }     // kSwitchCase
            int flag = x > 3 || x < -3;       // kLogical (value position)
            return n + v + flag;
        })");
    int counts[5] = {0, 0, 0, 0, 0};
    for (const auto &site : p.branch_sites)
        ++counts[static_cast<int>(site.kind)];
    EXPECT_GT(counts[static_cast<int>(isa::BranchKind::kIf)], 0);
    EXPECT_GT(counts[static_cast<int>(isa::BranchKind::kLoop)], 0);
    EXPECT_GT(counts[static_cast<int>(isa::BranchKind::kLogical)], 0);
    EXPECT_GT(counts[static_cast<int>(isa::BranchKind::kSwitchCase)], 0);
    EXPECT_GT(counts[static_cast<int>(isa::BranchKind::kTernary)], 0);
}

TEST(Codegen, CompareOpcodeRecordedOnSites)
{
    isa::Program p = compileBare(R"(
        int main() {
            int x = getc(), n = 0;
            if (x == 1) n = 1;
            if (x < 5) n = 2;
            return n;
        })");
    bool saw_eq = false, saw_lt = false;
    for (const auto &site : p.branch_sites) {
        saw_eq = saw_eq || site.compare == isa::Opcode::kCmpEq;
        saw_lt = saw_lt || site.compare == isa::Opcode::kCmpLt;
    }
    EXPECT_TRUE(saw_eq);
    EXPECT_TRUE(saw_lt);
}

TEST(Codegen, SelectUsedForSimpleTernaryOnly)
{
    CompileOptions options;
    options.include_prelude = false;
    // Simple arms -> select, no ternary branch site.
    isa::Program simple = compile(
        "int main() { int x = getc(); return x > 0 ? x : -x; }", options);
    bool has_select = false;
    for (const auto &insn : simple.functions[0].code)
        has_select |= insn.op == isa::Opcode::kSelect;
    EXPECT_TRUE(has_select);

    // Impure arm (call) -> branch diamond instead.
    isa::Program impure = compile(
        "int main() { int x = getc(); return x > 0 ? getc() : 0; }",
        options);
    bool impure_select = false;
    for (const auto &insn : impure.functions[0].code)
        impure_select |= insn.op == isa::Opcode::kSelect;
    EXPECT_FALSE(impure_select);

    // use_select=false disables the lowering entirely.
    options.use_select = false;
    isa::Program disabled = compile(
        "int main() { int x = getc(); return x > 0 ? x : -x; }", options);
    bool disabled_select = false;
    for (const auto &fn : disabled.functions)
        for (const auto &insn : fn.code)
            disabled_select |= insn.op == isa::Opcode::kSelect;
    EXPECT_FALSE(disabled_select);
}

TEST(Codegen, SwitchLowersToCascadedConditionals)
{
    // A 4-label switch must produce 4 kSwitchCase sites (linear cascade,
    // as the paper's compiler lowered multi-destination branches).
    isa::Program p = compileBare(R"(
        int main() {
            switch (getc()) {
              case 1: return 1;
              case 2: return 2;
              case 3: return 3;
              case 4: return 4;
            }
            return 0;
        })");
    int cascade = 0;
    for (const auto &site : p.branch_sites)
        cascade += site.kind == isa::BranchKind::kSwitchCase;
    EXPECT_EQ(cascade, 4);
}

TEST(Codegen, ImplicitConversions)
{
    EXPECT_EQ(runBare("int main() { float f = 3; int i = 3.9; "
                      "return i * 10 + ftoi(f); }"),
              33); // 3.9 truncates to 3, f holds 3.0
    EXPECT_EQ(runBare("float g(float x) { return x * 2; } "
                      "int main() { return g(3) > 5.9; }"),
              1);
}

TEST(Codegen, NegativeDivisionTruncatesTowardZero)
{
    EXPECT_EQ(runBare("int main() { return -7 / 2; }") , -3);
    EXPECT_EQ(runBare("int main() { return -7 % 2; }") , -1);
    EXPECT_EQ(runBare("int main() { return 7 / -2; }") , -3);
}

TEST(Codegen, LocalsZeroInitialized)
{
    EXPECT_EQ(runBare("int main() { int a; float f; "
                      "return a + ftoi(f); }"),
              0);
}

TEST(Codegen, GlobalsZeroInitializedAndOrdered)
{
    isa::Program p = compileBare(
        "int a; int b[3]; float c = 2.5; int main() { return 0; }");
    ASSERT_EQ(p.globals.size(), 3u);
    EXPECT_EQ(p.globals[0].address, 0);
    EXPECT_EQ(p.globals[1].address, 1);
    EXPECT_EQ(p.globals[1].size, 3);
    EXPECT_EQ(p.globals[2].address, 4);
    EXPECT_EQ(p.memory_words, 5);
}

TEST(Codegen, FingerprintStableAndSensitive)
{
    const char *src = "int main() { return getc() + 1; }";
    isa::Program a = compileBare(src);
    isa::Program b = compileBare(src);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    isa::Program c = compileBare("int main() { return getc() + 2; }");
    EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(Codegen, BranchSiteIdsAreDenseAndOrdered)
{
    isa::Program p = compileBare(R"(
        int main() {
            int x = getc(), n = 0;
            if (x > 0) n++;
            if (x > 1) n++;
            if (x > 2) n++;
            return n;
        })");
    std::vector<int> seen;
    for (const auto &insn : p.functions[static_cast<size_t>(p.entry)].code) {
        if (insn.op == isa::Opcode::kBr)
            seen.push_back(static_cast<int>(insn.imm));
    }
    ASSERT_EQ(seen.size(), p.branch_sites.size());
    for (size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], static_cast<int>(i));
}

TEST(Codegen, CommaListGlobalsAndForScope)
{
    EXPECT_EQ(runBare(R"(
        int a = 1, b = 2, c;
        int main() {
            for (int i = 0; i < 3; i++)
                c += i;
            for (int i = 10; i < 12; i++)   // re-declare in new scope
                c += i;
            return a + b + c;   // 1 + 2 + (0+1+2) + (10+11)
        })"),
              27);
}

TEST(Codegen, NestedIndirectCallsAndArgStaging)
{
    // Nested calls inside argument lists must not clobber staged args.
    EXPECT_EQ(runBare(R"(
        int add3(int a, int b, int c) { return a + b + c; }
        int twice(int x) { return x * 2; }
        int main() {
            return add3(twice(1), add3(twice(2), 3, 4), twice(5));
        })"),
              2 + (4 + 3 + 4) + 10);
}

TEST(Codegen, WithoutPreludeNoPreludeNames)
{
    EXPECT_THROW(compileBare("int main() { return geti(); }"),
                 CompileError);
    // With the prelude (default) the same program compiles.
    isa::Program p = compile("int main() { return geti(); }");
    EXPECT_GE(p.functions.size(), 2u);
}

} // namespace
} // namespace ifprob

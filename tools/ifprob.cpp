/**
 * @file
 * The ifprob command-line driver: compile and run minic programs,
 * collect and accumulate IFPROBBER profile databases, evaluate static
 * predictions, and regenerate the paper's experiment report — the
 * library's whole workflow from a shell.
 *
 * Usage:
 *   ifprob compile <file.mc> [--dce] [--no-opt] [--disasm]
 *   ifprob run <file.mc> [--input <file>] [--stats]
 *   ifprob profile <file.mc> --db <db> [--input <file>]
 *   ifprob predict <file.mc> --db <db> [--input <file>]
 *   ifprob workloads
 *   ifprob report
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/pipeline.h"
#include "harness/experiments.h"
#include "isa/disasm.h"
#include "metrics/breaks.h"
#include "metrics/report.h"
#include "predict/evaluate.h"
#include "predict/heuristic_predictor.h"
#include "predict/profile_predictor.h"
#include "profile/profile_db.h"
#include "support/error.h"
#include "support/str.h"
#include "vm/machine.h"
#include "workloads/workload.h"

namespace {

using namespace ifprob;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  ifprob compile <file.mc> [--dce] [--no-opt] [--disasm]\n"
                 "  ifprob run <file.mc> [--input <file>] [--stats]\n"
                 "  ifprob profile <file.mc> --db <db> [--input <file>]\n"
                 "  ifprob predict <file.mc> --db <db> [--input <file>]\n"
                 "  ifprob workloads\n"
                 "  ifprob report\n"
                 "\n"
                 "A workload name (e.g. li:8queens) may replace <file.mc>;\n"
                 "its bundled dataset is then the default input.\n");
    std::exit(2);
}

struct Args
{
    std::string positional;
    std::string input_path;
    std::string db_path;
    bool dce = false;
    bool no_opt = false;
    bool disasm = false;
    bool stats = false;
};

Args
parseArgs(int argc, char **argv, int start)
{
    Args args;
    for (int i = start; i < argc; ++i) {
        std::string_view arg = argv[i];
        auto value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                usage();
            }
            return argv[++i];
        };
        if (arg == "--input")
            args.input_path = value("--input");
        else if (arg == "--db")
            args.db_path = value("--db");
        else if (arg == "--dce")
            args.dce = true;
        else if (arg == "--no-opt")
            args.no_opt = true;
        else if (arg == "--disasm")
            args.disasm = true;
        else if (arg == "--stats")
            args.stats = true;
        else if (!arg.empty() && arg[0] == '-')
            usage();
        else if (args.positional.empty())
            args.positional = arg;
        else
            usage();
    }
    return args;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw Error("cannot open " + path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Resolve <file.mc> or workload[:dataset] into source + default input. */
void
resolveTarget(const std::string &target, std::string *source,
              std::string *default_input)
{
    auto colon = target.find(':');
    std::string name = target.substr(0, colon);
    // Workload names take precedence when they match exactly.
    for (const auto &w : workloads::all()) {
        if (w.name == name) {
            *source = w.source;
            std::string dataset = colon == std::string::npos
                                      ? w.datasets.front().name
                                      : target.substr(colon + 1);
            for (const auto &d : w.datasets) {
                if (d.name == dataset) {
                    *default_input = d.input;
                    return;
                }
            }
            throw Error("workload " + name + " has no dataset " + dataset);
        }
    }
    *source = readFile(target);
}

isa::Program
compileTarget(const Args &args, std::string *default_input)
{
    std::string source;
    resolveTarget(args.positional, &source, default_input);
    CompileOptions options;
    options.optimize = !args.no_opt;
    options.eliminate_dead_code = args.dce;
    return compile(source, options);
}

std::string
loadInput(const Args &args, const std::string &default_input)
{
    if (args.input_path.empty())
        return default_input;
    return readFile(args.input_path);
}

int
cmdCompile(const Args &args)
{
    std::string default_input;
    isa::Program program = compileTarget(args, &default_input);
    std::printf("functions: %zu, static instructions: %lld, branch "
                "sites: %zu, memory words: %lld\n",
                program.functions.size(),
                static_cast<long long>(program.staticSize()),
                program.branch_sites.size(),
                static_cast<long long>(program.memory_words));
    std::printf("fingerprint: %016llx\n",
                static_cast<unsigned long long>(program.fingerprint()));
    if (args.disasm)
        std::fputs(isa::disassemble(program).c_str(), stdout);
    return 0;
}

int
cmdRun(const Args &args)
{
    std::string default_input;
    isa::Program program = compileTarget(args, &default_input);
    vm::Machine machine(program);
    vm::RunResult result = machine.run(loadInput(args, default_input));
    std::fputs(result.output.c_str(), stdout);
    if (args.stats) {
        const auto &s = result.stats;
        std::fprintf(stderr,
                     "instructions:     %s\n"
                     "cond branches:    %s (%.1f%% taken)\n"
                     "jumps:            %s\n"
                     "calls:            %s direct, %s indirect\n"
                     "selects:          %s\n"
                     "exit code:        %lld\n",
                     withCommas(s.instructions).c_str(),
                     withCommas(s.cond_branches).c_str(), s.percentTaken(),
                     withCommas(s.jumps).c_str(),
                     withCommas(s.direct_calls).c_str(),
                     withCommas(s.indirect_calls).c_str(),
                     withCommas(s.selects).c_str(),
                     static_cast<long long>(s.exit_code));
    }
    return static_cast<int>(result.stats.exit_code & 0xff);
}

int
cmdProfile(const Args &args)
{
    if (args.db_path.empty())
        usage();
    std::string default_input;
    isa::Program program = compileTarget(args, &default_input);
    vm::Machine machine(program);
    vm::RunResult result = machine.run(loadInput(args, default_input));

    // Accumulate into an existing database when present (the IFPROBBER
    // augments its database on every run).
    profile::ProfileDb db("cli", program.fingerprint(),
                          program.branch_sites.size());
    {
        std::ifstream existing(args.db_path);
        if (existing)
            db = profile::ProfileDb::load(existing);
    }
    db.accumulate(result.stats);
    std::ofstream out(args.db_path);
    if (!out)
        throw Error("cannot write " + args.db_path);
    db.save(out);
    std::fprintf(stderr,
                 "recorded %s branch executions over %zu sites into %s\n",
                 withCommas(result.stats.cond_branches).c_str(),
                 db.numSites(), args.db_path.c_str());
    return 0;
}

int
cmdPredict(const Args &args)
{
    if (args.db_path.empty())
        usage();
    std::string default_input;
    isa::Program program = compileTarget(args, &default_input);
    std::ifstream db_in(args.db_path);
    if (!db_in)
        throw Error("cannot open " + args.db_path);
    profile::ProfileDb db = profile::ProfileDb::load(db_in);

    vm::Machine machine(program);
    vm::RunResult result = machine.run(loadInput(args, default_input));

    metrics::TextTable table;
    table.setHeader({"predictor", "% branches correct", "instrs/break"});
    auto add = [&](const char *name,
                   const predict::StaticPredictor &predictor) {
        auto quality = predict::evaluate(result.stats, predictor);
        auto breaks =
            metrics::breaksWithPredictor(result.stats, predictor);
        table.addRow({name, strPrintf("%.2f%%", quality.percentCorrect()),
                      strPrintf("%.1f", breaks.instructionsPerBreak())});
    };
    predict::ProfilePredictor feedback(db);
    profile::ProfileDb self_db("cli", program.fingerprint(), result.stats);
    predict::ProfilePredictor self(self_db);
    predict::HeuristicPredictor backward(
        program, predict::Heuristic::kBackwardTaken);
    predict::HeuristicPredictor opcode(program,
                                       predict::Heuristic::kOpcodeRules);
    add("this run (bound)", self);
    add("profile database", feedback);
    add("backward-taken", backward);
    add("opcode-rules", opcode);
    std::fputs(table.render().c_str(), stdout);
    return 0;
}

int
cmdWorkloads()
{
    metrics::TextTable table;
    table.setHeader({"name", "class", "datasets", "description"});
    for (const auto &w : workloads::all()) {
        std::string datasets;
        for (const auto &d : w.datasets) {
            if (!datasets.empty())
                datasets += " ";
            datasets += d.name;
        }
        table.addRow({w.name, w.fortran_like ? "FORTRAN/FP" : "C/integer",
                      datasets, w.description});
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}

int
cmdReport()
{
    harness::Runner runner;
    metrics::TextTable fig2;
    fig2.setHeader({"program", "dataset", "self instrs/break",
                    "others instrs/break"});
    for (const auto &row : harness::figure2(runner)) {
        fig2.addRow({row.program, row.dataset,
                     strPrintf("%.1f", row.self_per_break),
                     strPrintf("%.1f", row.others_per_break)});
    }
    std::printf("Instructions per mispredicted branch (paper Fig 2):\n%s\n",
                fig2.render().c_str());
    std::printf("Run the binaries under bench/ for the full per-figure "
                "report.\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string_view command = argv[1];
    try {
        if (command == "workloads")
            return cmdWorkloads();
        if (command == "report")
            return cmdReport();
        Args args = parseArgs(argc, argv, 2);
        if (args.positional.empty())
            usage();
        if (command == "compile")
            return cmdCompile(args);
        if (command == "run")
            return cmdRun(args);
        if (command == "profile")
            return cmdProfile(args);
        if (command == "predict")
            return cmdPredict(args);
        usage();
    } catch (const Error &e) {
        std::fprintf(stderr, "ifprob: %s\n", e.what());
        return 1;
    }
}

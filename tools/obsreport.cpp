/**
 * @file
 * obsreport — aggregate "ifprob.run.v1" JSONL run reports (emitted by
 * the bench binaries under bench/out/, see docs/observability.md) into
 * a human-readable summary table and a machine-readable
 * BENCH_report.json for tracking the perf trajectory across PRs.
 *
 *   $ build/tools/obsreport bench/out/run_report.jsonl
 *   $ build/tools/obsreport -o BENCH_report.json bench/out/more.jsonl
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "metrics/report.h"
#include "obs/json.h"
#include "obs/run_report.h"
#include "support/error.h"
#include "support/str.h"

using namespace ifprob;

namespace {

/** Aggregated view of every run record mentioning one workload. */
struct WorkloadAgg
{
    int64_t runs = 0;
    std::map<std::string, int64_t> datasets; ///< dataset -> record count
    int64_t instructions = 0;
    int64_t cond_branches = 0;
    int64_t self_mispredicts = 0;
    int64_t compile_micros = 0;
    int64_t execute_micros = 0;
    int64_t trace_micros = 0; ///< trace-plane encode + cache-write time
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t cache_errors = 0;

    double perMispredict() const
    {
        return static_cast<double>(instructions) /
               static_cast<double>(std::max<int64_t>(self_mispredicts, 1));
    }
};

struct Totals
{
    int64_t run_records = 0;
    int64_t table_records = 0;
    int64_t skipped_records = 0;
    int64_t parse_errors = 0;
    /** Cache hits split by serialization format (stats_cache_format). */
    int64_t binary_hits = 0;
    int64_t text_hits = 0;

    /** Last ifprob.vm_bench.v1/.v2 record seen (micro_vm --ab). The
     *  v2 fields (trace tier) stay zero when only v1 records exist. */
    struct VmBench
    {
        int64_t records = 0;
        int64_t version = 0; ///< highest schema version seen
        int64_t computed_goto = 0;
        std::string dispatch;
        int64_t trace_tier = 0;
        double worst_speedup = 0.0;
        double worst_fast_speedup = 0.0;
        double worst_trace_speedup = 0.0;
        double worst_trace_vs_fast = 0.0;
        double trace_coverage = 0.0;
        double side_exit_rate = 0.0;
        int64_t pass = 0;
    } vm;

    /** One ifprob.characterize.v1 per-workload record (bench/characterize;
     *  records without a "workload" field are the rollup line). */
    struct CharRow
    {
        int64_t datasets = 0;
        int64_t branches = 0;
        int64_t best_static_loss = 0;
        int64_t pooled_static_loss = 0;
        double instr_per_mispredict = 0.0;
        double stable_branch_pct = 0.0;
        double full_coverage_pct = 0.0;
    };
    struct Characterize
    {
        int64_t records = 0; ///< per-workload + rollup lines
        std::map<std::string, CharRow> workloads;
    } characterize;

    /** Last ifprob.analysis_bench.v1 record seen (micro_analysis --ab). */
    struct AnalysisBench
    {
        int64_t records = 0;
        double speedup_cold = 0.0;
        double speedup_warm = 0.0;
        int64_t reference_micros = 0;
        int64_t cached_cold_micros = 0;
        int64_t cached_warm_micros = 0;
    } analysis;

    /** Last ifprob.trace_bench.v1/.v2 record seen (micro_trace --ab).
     *  The v2 fields (counting path, decode/dispatch split, batch flag)
     *  are only meaningful when version >= 2. */
    struct TraceBench
    {
        int64_t records = 0;
        int64_t version = 0;
        double speedup_cold = 0.0;
        double speedup_warm = 0.0;
        double speedup_hot = 0.0;
        int64_t live_micros = 0;
        int64_t cold_micros = 0;
        int64_t warm_micros = 0;
        int64_t hot_micros = 0;
        int64_t events_total = 0;
        int64_t trace_bytes_total = 0;
        int64_t cache_hits = 0;
        int64_t cache_misses = 0;
        int64_t cache_read_failures = 0;
        // v2: the batched-replay counting path and its phase split.
        int64_t batch = 0;
        double speedup_hot_counting = 0.0;
        int64_t counting_live_micros = 0;
        int64_t counting_hot_micros = 0;
        int64_t cold_decode_micros = 0;
        int64_t cold_dispatch_micros = 0;
        int64_t warm_decode_micros = 0;
        int64_t warm_dispatch_micros = 0;
        int64_t hot_decode_micros = 0;
        int64_t hot_dispatch_micros = 0;
        int64_t counting_decode_micros = 0;
        int64_t counting_dispatch_micros = 0;
        int64_t replay_blocks = 0;
        int64_t pass = 0;
    } trace;

    /** ifprob.predictors.v1 records (bench/predictors): one row per
     *  zoo predictor (records with a "predictor" field) plus a rollup
     *  line carrying the batched-vs-scalar zoo speedup. */
    struct PredictorRow
    {
        std::string family;
        std::string kind;
        int64_t branches = 0;
        int64_t mispredicts = 0;
        double mispredict_pct = 0.0;
        double instr_per_mispredict = 0.0;
        double ns_per_event = 0.0;
    };
    struct Predictors
    {
        int64_t records = 0; ///< per-predictor + rollup lines
        std::map<std::string, PredictorRow> rows;
        int64_t predictors = 0;
        int64_t cells = 0;
        int64_t jobs = 0;
        int64_t events_total = 0;
        int64_t batched_micros = 0;
        int64_t scalar_micros = 0;
        double zoo_speedup = 0.0;
        double min_zoo_speedup = 0.0;
        int64_t pass = 0;
        bool have_rollup = false;
    } predictors;

    /** Last ifprob.ingest_bench.v1 record seen (micro_ingest --ab). */
    struct IngestBench
    {
        int64_t records = 0;
        int64_t events = 0;
        int64_t batches = 0;
        double events_per_sec = 0.0;
        int64_t fold_p50_micros = 0;
        int64_t fold_p99_micros = 0;
        int64_t snapshots = 0;
        int64_t snapshot_p99_micros = 0;
        int64_t segments = 0;
        int64_t segment_bytes = 0;
        int64_t bit_identical = 0;
        int64_t pass = 0;
    } ingest;
};

std::string
usage()
{
    return "usage: obsreport [-o BENCH_report.json] run_report.jsonl...\n"
           "  Aggregates ifprob.run.v1 JSONL records (one line per\n"
           "  workload/dataset execution) into a summary table on stdout\n"
           "  and a machine-readable JSON report. Any line with an\n"
           "  unknown schema or a parse error is reported to stderr\n"
           "  with its file:line and makes the exit status nonzero.\n";
}

/** Every schema this tool understands; unknown ones are hard errors so
 *  a schema bump cannot silently drop records from the report. */
const char *const kKnownSchemas[] = {
    "ifprob.run.v1",        "ifprob.table.v1",
    "ifprob.analysis_bench.v1", "ifprob.trace_bench.v1",
    "ifprob.trace_bench.v2",
    "ifprob.vm_bench.v1",   "ifprob.vm_bench.v2",
    "ifprob.characterize.v1",
    "ifprob.ingest_bench.v1",
    "ifprob.predictors.v1",
};

std::string
knownSchemaList()
{
    std::string out;
    for (const char *s : kKnownSchemas) {
        if (!out.empty())
            out += ", ";
        out += s;
    }
    return out;
}

void
consumeLine(const std::string &file, int64_t lineno,
            const std::string &line,
            std::map<std::string, WorkloadAgg> &workloads, Totals &totals)
{
    std::string_view trimmed = trim(line);
    if (trimmed.empty())
        return;
    obs::JsonRecord rec;
    try {
        rec = obs::parseFlatObject(trimmed);
    } catch (const Error &e) {
        std::fprintf(stderr, "obsreport: %s:%lld: parse error: %s\n",
                     file.c_str(), static_cast<long long>(lineno),
                     e.what());
        ++totals.parse_errors;
        return;
    }
    auto schema_it = rec.find("schema");
    std::string schema =
        schema_it != rec.end() ? schema_it->second.str : "";
    if (schema == obs::kTableRecordSchema) {
        ++totals.table_records; // tables are pass-through context
        return;
    }
    if (schema == "ifprob.analysis_bench.v1") {
        auto num = [&](const char *k) {
            auto it = rec.find(k);
            return it != rec.end() ? it->second.num : 0.0;
        };
        ++totals.analysis.records;
        totals.analysis.speedup_cold = num("speedup_cold");
        totals.analysis.speedup_warm = num("speedup_warm");
        totals.analysis.reference_micros =
            static_cast<int64_t>(num("reference_micros"));
        totals.analysis.cached_cold_micros =
            static_cast<int64_t>(num("cached_cold_micros"));
        totals.analysis.cached_warm_micros =
            static_cast<int64_t>(num("cached_warm_micros"));
        return;
    }
    if (schema == "ifprob.trace_bench.v1") {
        auto num = [&](const char *k) {
            auto it = rec.find(k);
            return it != rec.end() ? it->second.num : 0.0;
        };
        ++totals.trace.records;
        totals.trace.version = std::max<int64_t>(totals.trace.version, 1);
        totals.trace.speedup_cold = num("speedup_cold");
        totals.trace.speedup_warm = num("speedup_warm");
        totals.trace.speedup_hot = num("speedup_hot");
        totals.trace.live_micros =
            static_cast<int64_t>(num("live_micros"));
        totals.trace.cold_micros =
            static_cast<int64_t>(num("cold_micros"));
        totals.trace.warm_micros =
            static_cast<int64_t>(num("warm_micros"));
        totals.trace.hot_micros = static_cast<int64_t>(num("hot_micros"));
        totals.trace.events_total =
            static_cast<int64_t>(num("events_total"));
        totals.trace.trace_bytes_total =
            static_cast<int64_t>(num("trace_bytes_total"));
        totals.trace.cache_hits =
            static_cast<int64_t>(num("trace_cache_hits"));
        totals.trace.cache_misses =
            static_cast<int64_t>(num("trace_cache_misses"));
        totals.trace.cache_read_failures =
            static_cast<int64_t>(num("trace_cache_read_failures"));
        return;
    }
    if (schema == "ifprob.trace_bench.v2") {
        // Strict: a v2 record missing any batched-replay field is a
        // parse error, so a micro_trace/obsreport version skew cannot
        // silently report zeros as measurements.
        for (const char *k :
             {"batch", "live_micros", "cold_micros", "warm_micros",
              "hot_micros", "counting_live_micros", "counting_hot_micros",
              "speedup_cold", "speedup_warm", "speedup_hot",
              "speedup_hot_counting", "cold_decode_micros",
              "cold_dispatch_micros", "warm_decode_micros",
              "warm_dispatch_micros", "hot_decode_micros",
              "hot_dispatch_micros", "counting_decode_micros",
              "counting_dispatch_micros", "replay_blocks", "events_total",
              "trace_bytes_total", "trace_cache_hits",
              "trace_cache_misses", "trace_cache_read_failures",
              "pass"}) {
            if (rec.find(k) == rec.end()) {
                std::fprintf(stderr,
                             "obsreport: %s:%lld: trace_bench.v2 record "
                             "missing field \"%s\"\n",
                             file.c_str(),
                             static_cast<long long>(lineno), k);
                ++totals.parse_errors;
                return;
            }
        }
        auto num = [&](const char *k) { return rec.find(k)->second.num; };
        ++totals.trace.records;
        totals.trace.version = std::max<int64_t>(totals.trace.version, 2);
        totals.trace.batch = static_cast<int64_t>(num("batch"));
        totals.trace.speedup_cold = num("speedup_cold");
        totals.trace.speedup_warm = num("speedup_warm");
        totals.trace.speedup_hot = num("speedup_hot");
        totals.trace.speedup_hot_counting = num("speedup_hot_counting");
        totals.trace.live_micros =
            static_cast<int64_t>(num("live_micros"));
        totals.trace.cold_micros =
            static_cast<int64_t>(num("cold_micros"));
        totals.trace.warm_micros =
            static_cast<int64_t>(num("warm_micros"));
        totals.trace.hot_micros = static_cast<int64_t>(num("hot_micros"));
        totals.trace.counting_live_micros =
            static_cast<int64_t>(num("counting_live_micros"));
        totals.trace.counting_hot_micros =
            static_cast<int64_t>(num("counting_hot_micros"));
        totals.trace.cold_decode_micros =
            static_cast<int64_t>(num("cold_decode_micros"));
        totals.trace.cold_dispatch_micros =
            static_cast<int64_t>(num("cold_dispatch_micros"));
        totals.trace.warm_decode_micros =
            static_cast<int64_t>(num("warm_decode_micros"));
        totals.trace.warm_dispatch_micros =
            static_cast<int64_t>(num("warm_dispatch_micros"));
        totals.trace.hot_decode_micros =
            static_cast<int64_t>(num("hot_decode_micros"));
        totals.trace.hot_dispatch_micros =
            static_cast<int64_t>(num("hot_dispatch_micros"));
        totals.trace.counting_decode_micros =
            static_cast<int64_t>(num("counting_decode_micros"));
        totals.trace.counting_dispatch_micros =
            static_cast<int64_t>(num("counting_dispatch_micros"));
        totals.trace.replay_blocks =
            static_cast<int64_t>(num("replay_blocks"));
        totals.trace.events_total =
            static_cast<int64_t>(num("events_total"));
        totals.trace.trace_bytes_total =
            static_cast<int64_t>(num("trace_bytes_total"));
        totals.trace.cache_hits =
            static_cast<int64_t>(num("trace_cache_hits"));
        totals.trace.cache_misses =
            static_cast<int64_t>(num("trace_cache_misses"));
        totals.trace.cache_read_failures =
            static_cast<int64_t>(num("trace_cache_read_failures"));
        totals.trace.pass = static_cast<int64_t>(num("pass"));
        return;
    }
    if (schema == "ifprob.ingest_bench.v1") {
        auto num = [&](const char *k) {
            auto it = rec.find(k);
            return it != rec.end() ? it->second.num : 0.0;
        };
        ++totals.ingest.records;
        totals.ingest.events = static_cast<int64_t>(num("events"));
        totals.ingest.batches = static_cast<int64_t>(num("batches"));
        totals.ingest.events_per_sec = num("events_per_sec");
        totals.ingest.fold_p50_micros =
            static_cast<int64_t>(num("fold_p50_micros"));
        totals.ingest.fold_p99_micros =
            static_cast<int64_t>(num("fold_p99_micros"));
        totals.ingest.snapshots = static_cast<int64_t>(num("snapshots"));
        totals.ingest.snapshot_p99_micros =
            static_cast<int64_t>(num("snapshot_p99_micros"));
        totals.ingest.segments = static_cast<int64_t>(num("segments"));
        totals.ingest.segment_bytes =
            static_cast<int64_t>(num("segment_bytes"));
        totals.ingest.bit_identical =
            static_cast<int64_t>(num("bit_identical"));
        totals.ingest.pass = static_cast<int64_t>(num("pass"));
        return;
    }
    if (schema == "ifprob.predictors.v1") {
        // Strict: both record shapes carry a fixed field set; a missing
        // field is a parse error so a bench/obsreport version skew
        // cannot silently report zeros as measurements.
        const bool is_row = rec.find("predictor") != rec.end();
        auto require = [&](std::initializer_list<const char *> keys) {
            for (const char *k : keys) {
                if (rec.find(k) == rec.end()) {
                    std::fprintf(stderr,
                                 "obsreport: %s:%lld: predictors.v1 %s "
                                 "record missing field \"%s\"\n",
                                 file.c_str(),
                                 static_cast<long long>(lineno),
                                 is_row ? "predictor" : "rollup", k);
                    ++totals.parse_errors;
                    return false;
                }
            }
            return true;
        };
        auto num = [&](const char *k) { return rec.find(k)->second.num; };
        if (is_row) {
            if (!require({"family", "kind", "branches", "mispredicts",
                          "mispredict_pct", "instr_per_mispredict",
                          "ns_per_event"}))
                return;
            ++totals.predictors.records;
            Totals::PredictorRow &row =
                totals.predictors.rows[rec.find("predictor")->second.str];
            row.family = rec.find("family")->second.str;
            row.kind = rec.find("kind")->second.str;
            row.branches = static_cast<int64_t>(num("branches"));
            row.mispredicts = static_cast<int64_t>(num("mispredicts"));
            row.mispredict_pct = num("mispredict_pct");
            row.instr_per_mispredict = num("instr_per_mispredict");
            row.ns_per_event = num("ns_per_event");
            return;
        }
        if (!require({"predictors", "cells", "jobs", "events_total",
                      "batched_micros", "scalar_micros", "zoo_speedup",
                      "min_zoo_speedup", "pass"}))
            return;
        ++totals.predictors.records;
        totals.predictors.have_rollup = true;
        totals.predictors.predictors =
            static_cast<int64_t>(num("predictors"));
        totals.predictors.cells = static_cast<int64_t>(num("cells"));
        totals.predictors.jobs = static_cast<int64_t>(num("jobs"));
        totals.predictors.events_total =
            static_cast<int64_t>(num("events_total"));
        totals.predictors.batched_micros =
            static_cast<int64_t>(num("batched_micros"));
        totals.predictors.scalar_micros =
            static_cast<int64_t>(num("scalar_micros"));
        totals.predictors.zoo_speedup = num("zoo_speedup");
        totals.predictors.min_zoo_speedup = num("min_zoo_speedup");
        totals.predictors.pass = static_cast<int64_t>(num("pass"));
        return;
    }
    if (schema == "ifprob.vm_bench.v1") {
        auto num = [&](const char *k) {
            auto it = rec.find(k);
            return it != rec.end() ? it->second.num : 0.0;
        };
        ++totals.vm.records;
        totals.vm.version = std::max<int64_t>(totals.vm.version, 1);
        totals.vm.computed_goto =
            static_cast<int64_t>(num("computed_goto"));
        totals.vm.worst_speedup = num("worst_speedup");
        totals.vm.pass = static_cast<int64_t>(num("pass"));
        return;
    }
    if (schema == "ifprob.vm_bench.v2") {
        // Strict: a v2 record missing any trace-tier field is a parse
        // error, so a micro_vm/obsreport version skew cannot silently
        // report zeros as measurements.
        for (const char *k :
             {"computed_goto", "dispatch", "trace_tier", "worst_speedup",
              "worst_fast_speedup", "worst_trace_speedup",
              "worst_trace_vs_fast", "trace_coverage", "side_exit_rate",
              "pass"}) {
            if (rec.find(k) == rec.end()) {
                std::fprintf(stderr,
                             "obsreport: %s:%lld: vm_bench.v2 record "
                             "missing field \"%s\"\n",
                             file.c_str(),
                             static_cast<long long>(lineno), k);
                ++totals.parse_errors;
                return;
            }
        }
        auto num = [&](const char *k) { return rec.find(k)->second.num; };
        ++totals.vm.records;
        totals.vm.version = std::max<int64_t>(totals.vm.version, 2);
        totals.vm.computed_goto =
            static_cast<int64_t>(num("computed_goto"));
        totals.vm.dispatch = rec.find("dispatch")->second.str;
        totals.vm.trace_tier = static_cast<int64_t>(num("trace_tier"));
        totals.vm.worst_speedup = num("worst_speedup");
        totals.vm.worst_fast_speedup = num("worst_fast_speedup");
        totals.vm.worst_trace_speedup = num("worst_trace_speedup");
        totals.vm.worst_trace_vs_fast = num("worst_trace_vs_fast");
        totals.vm.trace_coverage = num("trace_coverage");
        totals.vm.side_exit_rate = num("side_exit_rate");
        totals.vm.pass = static_cast<int64_t>(num("pass"));
        return;
    }
    if (schema == "ifprob.characterize.v1") {
        auto num = [&](const char *k) {
            auto it = rec.find(k);
            return it != rec.end() ? it->second.num : 0.0;
        };
        ++totals.characterize.records;
        auto workload_it = rec.find("workload");
        if (workload_it == rec.end())
            return; // the rollup line; per-workload rows carry the data
        Totals::CharRow &row =
            totals.characterize.workloads[workload_it->second.str];
        row.datasets = static_cast<int64_t>(num("datasets"));
        row.branches = static_cast<int64_t>(num("branches"));
        row.best_static_loss =
            static_cast<int64_t>(num("best_static_loss"));
        row.pooled_static_loss =
            static_cast<int64_t>(num("pooled_static_loss"));
        row.instr_per_mispredict = num("instr_per_mispredict");
        row.stable_branch_pct = num("stable_branch_pct");
        row.full_coverage_pct = num("full_coverage_pct");
        return;
    }
    if (schema != obs::kRunRecordSchema) {
        std::fprintf(stderr,
                     "obsreport: %s:%lld: unknown schema \"%s\" "
                     "(known: %s)\n",
                     file.c_str(), static_cast<long long>(lineno),
                     schema.c_str(), knownSchemaList().c_str());
        ++totals.skipped_records;
        return;
    }
    obs::RunRecord r;
    try {
        r = obs::parseRunRecord(trimmed);
    } catch (const Error &e) {
        std::fprintf(stderr,
                     "obsreport: %s:%lld: corrupt %s record: %s\n",
                     file.c_str(), static_cast<long long>(lineno),
                     obs::kRunRecordSchema, e.what());
        ++totals.parse_errors;
        return;
    }
    ++totals.run_records;
    WorkloadAgg &agg = workloads[r.workload];
    ++agg.runs;
    ++agg.datasets[r.dataset];
    agg.instructions += r.instructions;
    agg.cond_branches += r.cond_branches;
    agg.self_mispredicts += r.self_mispredicts;
    agg.compile_micros += r.compile_micros;
    agg.execute_micros += r.execute_micros;
    agg.trace_micros += r.trace_micros;
    if (r.cache == "hit") {
        ++agg.cache_hits;
        if (r.stats_cache_format == "binary")
            ++totals.binary_hits;
        else if (r.stats_cache_format == "text")
            ++totals.text_hits;
    } else if (r.cache == "error") {
        ++agg.cache_errors;
    } else {
        ++agg.cache_misses; // "miss" and "off" both mean "had to run"
    }
}

std::string
renderJsonReport(const std::vector<std::string> &files,
                 const std::map<std::string, WorkloadAgg> &workloads,
                 const Totals &totals)
{
    std::string files_json = "[";
    for (size_t i = 0; i < files.size(); ++i) {
        if (i)
            files_json += ",";
        files_json += "\"" + obs::jsonEscape(files[i]) + "\"";
    }
    files_json += "]";

    WorkloadAgg grand;
    std::string workloads_json = "[";
    bool first = true;
    for (const auto &[name, agg] : workloads) {
        obs::JsonObject w;
        w.field("workload", name)
            .field("datasets", static_cast<int64_t>(agg.datasets.size()))
            .field("runs", agg.runs)
            .field("instructions", agg.instructions)
            .field("cond_branches", agg.cond_branches)
            .field("self_mispredicts", agg.self_mispredicts)
            .field("instr_per_mispredict", agg.perMispredict())
            .field("compile_micros", agg.compile_micros)
            .field("execute_micros", agg.execute_micros)
            .field("trace_micros", agg.trace_micros)
            .field("cache_hits", agg.cache_hits)
            .field("cache_misses", agg.cache_misses)
            .field("cache_errors", agg.cache_errors);
        if (!first)
            workloads_json += ",";
        first = false;
        workloads_json += "\n  " + w.str();
        grand.runs += agg.runs;
        grand.instructions += agg.instructions;
        grand.cond_branches += agg.cond_branches;
        grand.self_mispredicts += agg.self_mispredicts;
        grand.compile_micros += agg.compile_micros;
        grand.execute_micros += agg.execute_micros;
        grand.trace_micros += agg.trace_micros;
        grand.cache_hits += agg.cache_hits;
        grand.cache_misses += agg.cache_misses;
        grand.cache_errors += agg.cache_errors;
    }
    workloads_json += "\n]";

    obs::JsonObject totals_json;
    totals_json.field("runs", grand.runs)
        .field("instructions", grand.instructions)
        .field("cond_branches", grand.cond_branches)
        .field("self_mispredicts", grand.self_mispredicts)
        .field("instr_per_mispredict", grand.perMispredict())
        .field("compile_micros", grand.compile_micros)
        .field("execute_micros", grand.execute_micros)
        .field("trace_micros", grand.trace_micros)
        .field("cache_hits", grand.cache_hits)
        .field("cache_misses", grand.cache_misses)
        .field("cache_errors", grand.cache_errors)
        .field("cache_hits_binary", totals.binary_hits)
        .field("cache_hits_text", totals.text_hits)
        .field("table_records", totals.table_records)
        .field("skipped_records", totals.skipped_records)
        .field("parse_errors", totals.parse_errors);

    obs::JsonObject report;
    report.field("schema", "ifprob.bench_report.v1")
        .fieldRaw("source_files", files_json)
        .fieldRaw("workloads", workloads_json)
        .fieldRaw("totals", totals_json.str());
    if (totals.analysis.records > 0) {
        obs::JsonObject ab;
        ab.field("records", totals.analysis.records)
            .field("speedup_cold", totals.analysis.speedup_cold)
            .field("speedup_warm", totals.analysis.speedup_warm)
            .field("reference_micros", totals.analysis.reference_micros)
            .field("cached_cold_micros",
                   totals.analysis.cached_cold_micros)
            .field("cached_warm_micros",
                   totals.analysis.cached_warm_micros);
        report.fieldRaw("analysis_bench", ab.str());
    }
    if (totals.vm.records > 0) {
        obs::JsonObject vb;
        vb.field("records", totals.vm.records)
            .field("version", totals.vm.version)
            .field("computed_goto", totals.vm.computed_goto)
            .field("worst_speedup", totals.vm.worst_speedup)
            .field("pass", totals.vm.pass);
        if (totals.vm.version >= 2) {
            vb.field("dispatch", totals.vm.dispatch)
                .field("trace_tier", totals.vm.trace_tier)
                .field("worst_fast_speedup", totals.vm.worst_fast_speedup)
                .field("worst_trace_speedup",
                       totals.vm.worst_trace_speedup)
                .field("worst_trace_vs_fast",
                       totals.vm.worst_trace_vs_fast)
                .field("trace_coverage", totals.vm.trace_coverage)
                .field("side_exit_rate", totals.vm.side_exit_rate);
        }
        report.fieldRaw("vm_bench", vb.str());
    }
    if (totals.characterize.records > 0) {
        std::string rows = "[";
        bool first_row = true;
        for (const auto &[name, row] : totals.characterize.workloads) {
            obs::JsonObject c;
            c.field("workload", name)
                .field("datasets", row.datasets)
                .field("branches", row.branches)
                .field("best_static_loss", row.best_static_loss)
                .field("pooled_static_loss", row.pooled_static_loss)
                .field("instr_per_mispredict", row.instr_per_mispredict)
                .field("stable_branch_pct", row.stable_branch_pct)
                .field("full_coverage_pct", row.full_coverage_pct);
            if (!first_row)
                rows += ",";
            first_row = false;
            rows += "\n  " + c.str();
        }
        rows += "\n]";
        obs::JsonObject cb;
        cb.field("records", totals.characterize.records)
            .fieldRaw("workloads", rows);
        report.fieldRaw("characterize", cb.str());
    }
    if (totals.trace.records > 0) {
        obs::JsonObject tb;
        tb.field("records", totals.trace.records)
            .field("version", totals.trace.version)
            .field("speedup_cold", totals.trace.speedup_cold)
            .field("speedup_warm", totals.trace.speedup_warm)
            .field("speedup_hot", totals.trace.speedup_hot)
            .field("live_micros", totals.trace.live_micros)
            .field("cold_micros", totals.trace.cold_micros)
            .field("warm_micros", totals.trace.warm_micros)
            .field("hot_micros", totals.trace.hot_micros)
            .field("events_total", totals.trace.events_total)
            .field("trace_bytes_total", totals.trace.trace_bytes_total)
            .field("trace_cache_hits", totals.trace.cache_hits)
            .field("trace_cache_misses", totals.trace.cache_misses)
            .field("trace_cache_read_failures",
                   totals.trace.cache_read_failures);
        if (totals.trace.version >= 2) {
            tb.field("batch", totals.trace.batch)
                .field("speedup_hot_counting",
                       totals.trace.speedup_hot_counting)
                .field("counting_live_micros",
                       totals.trace.counting_live_micros)
                .field("counting_hot_micros",
                       totals.trace.counting_hot_micros)
                .field("cold_decode_micros",
                       totals.trace.cold_decode_micros)
                .field("cold_dispatch_micros",
                       totals.trace.cold_dispatch_micros)
                .field("warm_decode_micros",
                       totals.trace.warm_decode_micros)
                .field("warm_dispatch_micros",
                       totals.trace.warm_dispatch_micros)
                .field("hot_decode_micros", totals.trace.hot_decode_micros)
                .field("hot_dispatch_micros",
                       totals.trace.hot_dispatch_micros)
                .field("counting_decode_micros",
                       totals.trace.counting_decode_micros)
                .field("counting_dispatch_micros",
                       totals.trace.counting_dispatch_micros)
                .field("replay_blocks", totals.trace.replay_blocks)
                .field("pass", totals.trace.pass);
        }
        report.fieldRaw("trace_bench", tb.str());
    }
    if (totals.predictors.records > 0) {
        std::string rows = "[";
        bool first_row = true;
        for (const auto &[name, row] : totals.predictors.rows) {
            obs::JsonObject p;
            p.field("predictor", name)
                .field("family", row.family)
                .field("kind", row.kind)
                .field("branches", row.branches)
                .field("mispredicts", row.mispredicts)
                .field("mispredict_pct", row.mispredict_pct)
                .field("instr_per_mispredict", row.instr_per_mispredict)
                .field("ns_per_event", row.ns_per_event);
            if (!first_row)
                rows += ",";
            first_row = false;
            rows += "\n  " + p.str();
        }
        rows += "\n]";
        obs::JsonObject pb;
        pb.field("records", totals.predictors.records)
            .field("predictors", totals.predictors.predictors)
            .field("cells", totals.predictors.cells)
            .field("jobs", totals.predictors.jobs)
            .field("events_total", totals.predictors.events_total)
            .field("batched_micros", totals.predictors.batched_micros)
            .field("scalar_micros", totals.predictors.scalar_micros)
            .field("zoo_speedup", totals.predictors.zoo_speedup)
            .field("min_zoo_speedup", totals.predictors.min_zoo_speedup)
            .field("pass", totals.predictors.pass)
            .fieldRaw("rows", rows);
        report.fieldRaw("predictors", pb.str());
    }
    if (totals.ingest.records > 0) {
        obs::JsonObject ib;
        ib.field("records", totals.ingest.records)
            .field("events", totals.ingest.events)
            .field("batches", totals.ingest.batches)
            .field("events_per_sec", totals.ingest.events_per_sec)
            .field("fold_p50_micros", totals.ingest.fold_p50_micros)
            .field("fold_p99_micros", totals.ingest.fold_p99_micros)
            .field("snapshots", totals.ingest.snapshots)
            .field("snapshot_p99_micros",
                   totals.ingest.snapshot_p99_micros)
            .field("segments", totals.ingest.segments)
            .field("segment_bytes", totals.ingest.segment_bytes)
            .field("bit_identical", totals.ingest.bit_identical)
            .field("pass", totals.ingest.pass);
        report.fieldRaw("ingest_bench", ib.str());
    }
    return report.str() + "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_report.json";
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "-h") == 0 ||
                   std::strcmp(argv[i], "--help") == 0) {
            std::printf("%s", usage().c_str());
            return 0;
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.empty()) {
        std::fprintf(stderr, "%s", usage().c_str());
        return 2;
    }

    std::map<std::string, WorkloadAgg> workloads;
    Totals totals;
    for (const auto &file : files) {
        std::ifstream in(file);
        if (!in) {
            std::fprintf(stderr, "obsreport: cannot open %s\n",
                         file.c_str());
            return 1;
        }
        std::string line;
        int64_t lineno = 0;
        while (std::getline(in, line))
            consumeLine(file, ++lineno, line, workloads, totals);
    }

    metrics::TextTable table;
    table.setHeader({"workload", "runs", "instructions", "branches",
                     "instrs/mispredict", "compile ms", "execute ms",
                     "cache hit/miss/err"});
    for (const auto &[name, agg] : workloads) {
        table.addRow(
            {name, strPrintf("%lld", static_cast<long long>(agg.runs)),
             withCommas(agg.instructions), withCommas(agg.cond_branches),
             strPrintf("%.1f", agg.perMispredict()),
             strPrintf("%.1f",
                       static_cast<double>(agg.compile_micros) / 1000.0),
             strPrintf("%.1f",
                       static_cast<double>(agg.execute_micros) / 1000.0),
             strPrintf("%lld/%lld/%lld",
                       static_cast<long long>(agg.cache_hits),
                       static_cast<long long>(agg.cache_misses),
                       static_cast<long long>(agg.cache_errors))});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n%lld run records, %lld table records, %lld skipped "
                "(unknown schema), %lld parse errors\n",
                static_cast<long long>(totals.run_records),
                static_cast<long long>(totals.table_records),
                static_cast<long long>(totals.skipped_records),
                static_cast<long long>(totals.parse_errors));
    if (totals.binary_hits + totals.text_hits > 0)
        std::printf("stats cache hits by format: %lld binary, %lld text\n",
                    static_cast<long long>(totals.binary_hits),
                    static_cast<long long>(totals.text_hits));
    if (totals.analysis.records > 0)
        std::printf("analysis bench: reference %.1fms, cached cold "
                    "%.1fms (%.2fx), warm %.1fms (%.2fx)\n",
                    static_cast<double>(
                        totals.analysis.reference_micros) /
                        1e3,
                    static_cast<double>(
                        totals.analysis.cached_cold_micros) /
                        1e3,
                    totals.analysis.speedup_cold,
                    static_cast<double>(
                        totals.analysis.cached_warm_micros) /
                        1e3,
                    totals.analysis.speedup_warm);
    if (totals.vm.records > 0) {
        std::printf("vm bench: worst speedup %.2fx (computed_goto=%lld): "
                    "%s\n",
                    totals.vm.worst_speedup,
                    static_cast<long long>(totals.vm.computed_goto),
                    totals.vm.pass ? "PASS" : "FAIL");
        if (totals.vm.version >= 2)
            std::printf("  trace tier: worst %.2fx vs switch, %.2fx vs "
                        "fast (branchy), coverage %.1f%%, side-exit "
                        "%.2f%%\n",
                        totals.vm.worst_trace_speedup,
                        totals.vm.worst_trace_vs_fast,
                        100.0 * totals.vm.trace_coverage,
                        100.0 * totals.vm.side_exit_rate);
    }
    if (totals.characterize.records > 0) {
        std::printf("characterize: %zu workload(s)\n",
                    totals.characterize.workloads.size());
        for (const auto &[name, row] : totals.characterize.workloads)
            std::printf("  %-10s %s branches, instr/mispredict %.1f, "
                        "stable %.1f%%, covered %.1f%%\n",
                        name.c_str(), withCommas(row.branches).c_str(),
                        row.instr_per_mispredict, row.stable_branch_pct,
                        row.full_coverage_pct);
    }
    if (totals.trace.records > 0) {
        std::printf("trace bench: live %.1fms, cold %.1fms (%.2fx), "
                    "warm %.1fms (%.2fx), hot %.1fms (%.2fx); "
                    "%s events in %s trace bytes\n",
                    static_cast<double>(totals.trace.live_micros) / 1e3,
                    static_cast<double>(totals.trace.cold_micros) / 1e3,
                    totals.trace.speedup_cold,
                    static_cast<double>(totals.trace.warm_micros) / 1e3,
                    totals.trace.speedup_warm,
                    static_cast<double>(totals.trace.hot_micros) / 1e3,
                    totals.trace.speedup_hot,
                    withCommas(totals.trace.events_total).c_str(),
                    withCommas(totals.trace.trace_bytes_total).c_str());
        if (totals.trace.version >= 2)
            std::printf("  counting: live %.1fms, hot %.1fms (%.2fx), "
                        "hot decode %.1fms + dispatch %.1fms, "
                        "%s blocks, batch=%lld: %s\n",
                        static_cast<double>(
                            totals.trace.counting_live_micros) / 1e3,
                        static_cast<double>(
                            totals.trace.counting_hot_micros) / 1e3,
                        totals.trace.speedup_hot_counting,
                        static_cast<double>(
                            totals.trace.counting_decode_micros) / 1e3,
                        static_cast<double>(
                            totals.trace.counting_dispatch_micros) / 1e3,
                        withCommas(totals.trace.replay_blocks).c_str(),
                        static_cast<long long>(totals.trace.batch),
                        totals.trace.pass ? "PASS" : "FAIL");
    }

    if (totals.predictors.records > 0) {
        std::printf("predictors: %zu predictor(s)",
                    totals.predictors.rows.size());
        if (totals.predictors.have_rollup)
            std::printf(", %s events/predictor over %lld cells, "
                        "batched %.1fms vs scalar %.1fms, zoo speedup "
                        "%.2fx (bar %.2fx): %s",
                        withCommas(totals.predictors.events_total).c_str(),
                        static_cast<long long>(totals.predictors.cells),
                        static_cast<double>(
                            totals.predictors.batched_micros) / 1e3,
                        static_cast<double>(
                            totals.predictors.scalar_micros) / 1e3,
                        totals.predictors.zoo_speedup,
                        totals.predictors.min_zoo_speedup,
                        totals.predictors.pass ? "PASS" : "FAIL");
        std::printf("\n");
        for (const auto &[name, row] : totals.predictors.rows)
            std::printf("  %-18s %-12s mispredict %5.2f%%, i/mp %7.1f, "
                        "%5.2f ns/event\n",
                        name.c_str(), row.family.c_str(),
                        row.mispredict_pct, row.instr_per_mispredict,
                        row.ns_per_event);
    }

    if (totals.ingest.records > 0)
        std::printf("ingest bench: %s events in %s batches, %s "
                    "events/sec, fold p99 %lldus, snapshot p99 %lldus, "
                    "bit_identical=%lld: %s\n",
                    withCommas(totals.ingest.events).c_str(),
                    withCommas(totals.ingest.batches).c_str(),
                    withCommas(static_cast<int64_t>(
                                   totals.ingest.events_per_sec))
                        .c_str(),
                    static_cast<long long>(totals.ingest.fold_p99_micros),
                    static_cast<long long>(
                        totals.ingest.snapshot_p99_micros),
                    static_cast<long long>(totals.ingest.bit_identical),
                    totals.ingest.pass ? "PASS" : "FAIL");

    int64_t cache_errors = 0;
    for (const auto &[name, agg] : workloads)
        cache_errors += agg.cache_errors;
    if (cache_errors > 0)
        std::printf("note: %lld cache read failure(s); each runner keeps "
                    "only the first %zu failure details "
                    "(CacheStats::kMaxFailureDetails), the overflow is "
                    "counted in failures_dropped\n",
                    static_cast<long long>(cache_errors),
                    harness::CacheStats::kMaxFailureDetails);

    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "obsreport: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    out << renderJsonReport(files, workloads, totals);
    std::printf("wrote %s\n", out_path.c_str());

    // Strict exit: every line must have parsed as a known schema (the
    // per-line diagnostics already went to stderr), and the stream must
    // have carried at least one consumable record.
    if (totals.skipped_records > 0 || totals.parse_errors > 0) {
        std::fprintf(stderr,
                     "obsreport: %lld unknown-schema line(s), %lld parse "
                     "error(s) — failing\n",
                     static_cast<long long>(totals.skipped_records),
                     static_cast<long long>(totals.parse_errors));
        return 1;
    }
    const int64_t consumed = totals.run_records + totals.table_records +
                             totals.analysis.records +
                             totals.trace.records + totals.vm.records +
                             totals.characterize.records +
                             totals.ingest.records +
                             totals.predictors.records;
    return consumed > 0 ? 0 : 1;
}

#include "lang/parser.h"

#include "lang/lexer.h"
#include "support/error.h"
#include "support/str.h"

namespace ifprob::lang {

std::string_view
typeName(Type type)
{
    switch (type) {
      case Type::kInt: return "int";
      case Type::kFloat: return "float";
      case Type::kVoid: return "void";
    }
    return "?";
}

namespace {

/**
 * Recursive-descent parser with precedence climbing for binary operators.
 *
 * Error strategy: the first syntax error aborts the parse (minic sources
 * are machine-generated or small, so cascading recovery buys little), but
 * the thrown CompileError message carries the precise location.
 */
class Parser
{
  public:
    explicit Parser(std::string_view src) : tokens_(lex(src)) {}

    Unit
    run()
    {
        Unit unit;
        while (!at(TokenKind::kEof))
            parseTopLevel(unit);
        return unit;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg)
    {
        const Token &tok = cur();
        throw CompileError(strPrintf("parse error at %d:%d: %s (found %s)",
                                     tok.loc.line, tok.loc.col, msg.c_str(),
                                     std::string(tokenKindName(tok.kind)).c_str()));
    }

    const Token &cur() const { return tokens_[pos_]; }
    const Token &
    peekAhead(int n) const
    {
        size_t i = pos_ + static_cast<size_t>(n);
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    bool at(TokenKind kind) const { return cur().kind == kind; }

    Token
    advance()
    {
        Token tok = cur();
        if (tok.kind != TokenKind::kEof)
            ++pos_;
        return tok;
    }

    bool
    accept(TokenKind kind)
    {
        if (!at(kind))
            return false;
        advance();
        return true;
    }

    Token
    expect(TokenKind kind, const char *context)
    {
        if (!at(kind))
            fail(strPrintf("expected %s %s",
                           std::string(tokenKindName(kind)).c_str(), context));
        return advance();
    }

    bool
    atType() const
    {
        return at(TokenKind::kKwInt) || at(TokenKind::kKwFloat) ||
               at(TokenKind::kKwVoid);
    }

    Type
    parseType()
    {
        if (accept(TokenKind::kKwInt))
            return Type::kInt;
        if (accept(TokenKind::kKwFloat))
            return Type::kFloat;
        if (accept(TokenKind::kKwVoid))
            return Type::kVoid;
        fail("expected a type");
    }

    // --- top level ---------------------------------------------------------

    void
    parseTopLevel(Unit &unit)
    {
        SourceLoc loc = cur().loc;
        Type type = parseType();
        Token name = expect(TokenKind::kIdent, "after type");

        if (at(TokenKind::kLParen)) {
            unit.functions.push_back(parseFunction(type, name, loc));
            return;
        }
        if (type == Type::kVoid)
            fail("global variables cannot be void");

        // One or more global declarators.
        parseGlobalDeclarator(unit, type, name, loc);
        while (accept(TokenKind::kComma)) {
            Token next_name = expect(TokenKind::kIdent, "in declaration list");
            parseGlobalDeclarator(unit, type, next_name, loc);
        }
        expect(TokenKind::kSemi, "after global declaration");
    }

    void
    parseGlobalDeclarator(Unit &unit, Type type, const Token &name,
                          SourceLoc loc)
    {
        GlobalVarDecl decl;
        decl.type = type;
        decl.name = name.text;
        decl.loc = loc;
        if (accept(TokenKind::kLBracket)) {
            decl.array_size = parseConstSize();
            expect(TokenKind::kRBracket, "after array size");
            if (accept(TokenKind::kAssign)) {
                expect(TokenKind::kLBrace, "to open array initializer");
                if (!at(TokenKind::kRBrace)) {
                    decl.init_list.push_back(parseTernary());
                    while (accept(TokenKind::kComma)) {
                        if (at(TokenKind::kRBrace))
                            break; // trailing comma
                        decl.init_list.push_back(parseTernary());
                    }
                }
                expect(TokenKind::kRBrace, "to close array initializer");
            }
        } else if (accept(TokenKind::kAssign)) {
            decl.init = parseTernary();
        }
        unit.globals.push_back(std::move(decl));
    }

    int64_t
    parseConstSize()
    {
        // Array sizes must be plain integer literals; anything fancier is
        // evaluated by the compiler's constant folder at a later stage, but
        // sizes must be known here to keep the grammar simple.
        Token tok = expect(TokenKind::kIntLit, "as array size");
        return tok.int_value;
    }

    FuncDecl
    parseFunction(Type ret, const Token &name, SourceLoc loc)
    {
        FuncDecl fn;
        fn.return_type = ret;
        fn.name = name.text;
        fn.loc = loc;
        expect(TokenKind::kLParen, "to open parameter list");
        if (!at(TokenKind::kRParen)) {
            do {
                Param p;
                p.loc = cur().loc;
                p.type = parseType();
                if (p.type == Type::kVoid) {
                    // Allow the C idiom f(void).
                    if (fn.params.empty() && at(TokenKind::kRParen))
                        break;
                    fail("parameters cannot be void");
                }
                Token pname = expect(TokenKind::kIdent, "as parameter name");
                p.name = pname.text;
                fn.params.push_back(std::move(p));
            } while (accept(TokenKind::kComma));
        }
        expect(TokenKind::kRParen, "to close parameter list");
        fn.body = parseBlock();
        return fn;
    }

    // --- statements --------------------------------------------------------

    std::unique_ptr<BlockStmt>
    parseBlock()
    {
        auto block = std::make_unique<BlockStmt>();
        block->loc = cur().loc;
        expect(TokenKind::kLBrace, "to open block");
        while (!at(TokenKind::kRBrace)) {
            if (at(TokenKind::kEof))
                fail("unterminated block");
            block->stmts.push_back(parseStmt());
        }
        expect(TokenKind::kRBrace, "to close block");
        return block;
    }

    StmtPtr
    parseStmt()
    {
        SourceLoc loc = cur().loc;
        switch (cur().kind) {
          case TokenKind::kLBrace:
            return parseBlock();
          case TokenKind::kKwInt:
          case TokenKind::kKwFloat:
            return parseVarDecl();
          case TokenKind::kKwIf: {
            advance();
            auto stmt = std::make_unique<IfStmt>();
            stmt->loc = loc;
            expect(TokenKind::kLParen, "after 'if'");
            stmt->cond = parseExpr();
            expect(TokenKind::kRParen, "after if condition");
            stmt->then_stmt = parseStmt();
            if (accept(TokenKind::kKwElse))
                stmt->else_stmt = parseStmt();
            return stmt;
          }
          case TokenKind::kKwWhile: {
            advance();
            auto stmt = std::make_unique<WhileStmt>();
            stmt->loc = loc;
            expect(TokenKind::kLParen, "after 'while'");
            stmt->cond = parseExpr();
            expect(TokenKind::kRParen, "after while condition");
            stmt->body = parseStmt();
            return stmt;
          }
          case TokenKind::kKwDo: {
            advance();
            auto stmt = std::make_unique<DoWhileStmt>();
            stmt->loc = loc;
            stmt->body = parseStmt();
            expect(TokenKind::kKwWhile, "after do body");
            expect(TokenKind::kLParen, "after 'while'");
            stmt->cond = parseExpr();
            expect(TokenKind::kRParen, "after do-while condition");
            expect(TokenKind::kSemi, "after do-while");
            return stmt;
          }
          case TokenKind::kKwFor: {
            advance();
            auto stmt = std::make_unique<ForStmt>();
            stmt->loc = loc;
            expect(TokenKind::kLParen, "after 'for'");
            if (at(TokenKind::kKwInt) || at(TokenKind::kKwFloat)) {
                stmt->init = parseVarDecl();
            } else if (!accept(TokenKind::kSemi)) {
                auto init = std::make_unique<ExprStmt>();
                init->loc = cur().loc;
                init->expr = parseExpr();
                stmt->init = std::move(init);
                expect(TokenKind::kSemi, "after for initializer");
            }
            if (!at(TokenKind::kSemi))
                stmt->cond = parseExpr();
            expect(TokenKind::kSemi, "after for condition");
            if (!at(TokenKind::kRParen))
                stmt->step = parseExpr();
            expect(TokenKind::kRParen, "after for clauses");
            stmt->body = parseStmt();
            return stmt;
          }
          case TokenKind::kKwSwitch:
            return parseSwitch();
          case TokenKind::kKwBreak: {
            advance();
            expect(TokenKind::kSemi, "after 'break'");
            auto stmt = std::make_unique<BreakStmt>();
            stmt->loc = loc;
            return stmt;
          }
          case TokenKind::kKwContinue: {
            advance();
            expect(TokenKind::kSemi, "after 'continue'");
            auto stmt = std::make_unique<ContinueStmt>();
            stmt->loc = loc;
            return stmt;
          }
          case TokenKind::kKwReturn: {
            advance();
            auto stmt = std::make_unique<ReturnStmt>();
            stmt->loc = loc;
            if (!at(TokenKind::kSemi))
                stmt->value = parseExpr();
            expect(TokenKind::kSemi, "after return");
            return stmt;
          }
          case TokenKind::kSemi: {
            advance();
            auto stmt = std::make_unique<EmptyStmt>();
            stmt->loc = loc;
            return stmt;
          }
          default: {
            auto stmt = std::make_unique<ExprStmt>();
            stmt->loc = loc;
            stmt->expr = parseExpr();
            expect(TokenKind::kSemi, "after expression statement");
            return stmt;
          }
        }
    }

    StmtPtr
    parseVarDecl()
    {
        auto stmt = std::make_unique<VarDeclStmt>();
        stmt->loc = cur().loc;
        stmt->type = parseType();
        if (stmt->type == Type::kVoid)
            fail("local variables cannot be void");
        do {
            VarDeclStmt::Declarator d;
            d.loc = cur().loc;
            Token name = expect(TokenKind::kIdent, "as variable name");
            d.name = name.text;
            if (at(TokenKind::kLBracket))
                fail("local arrays are not supported; declare arrays at "
                     "global scope");
            if (accept(TokenKind::kAssign))
                d.init = parseAssignment();
            stmt->vars.push_back(std::move(d));
        } while (accept(TokenKind::kComma));
        expect(TokenKind::kSemi, "after variable declaration");
        return stmt;
    }

    StmtPtr
    parseSwitch()
    {
        SourceLoc loc = cur().loc;
        advance(); // switch
        auto stmt = std::make_unique<SwitchStmt>();
        stmt->loc = loc;
        expect(TokenKind::kLParen, "after 'switch'");
        stmt->value = parseExpr();
        expect(TokenKind::kRParen, "after switch value");
        expect(TokenKind::kLBrace, "to open switch body");

        bool saw_default = false;
        while (!at(TokenKind::kRBrace)) {
            if (at(TokenKind::kEof))
                fail("unterminated switch");
            SwitchStmt::Arm arm;
            arm.loc = cur().loc;
            // Collect one run of case/default labels.
            bool have_label = false;
            while (at(TokenKind::kKwCase) || at(TokenKind::kKwDefault)) {
                if (accept(TokenKind::kKwCase)) {
                    bool neg = accept(TokenKind::kMinus);
                    Token v;
                    if (at(TokenKind::kCharLit))
                        v = advance();
                    else
                        v = expect(TokenKind::kIntLit, "as case label");
                    arm.labels.push_back(neg ? -v.int_value : v.int_value);
                } else {
                    advance(); // default
                    if (saw_default)
                        fail("duplicate default label");
                    saw_default = true;
                    arm.is_default = true;
                }
                expect(TokenKind::kColon, "after case label");
                have_label = true;
            }
            if (!have_label)
                fail("expected 'case' or 'default' in switch body");
            // Statements up to the next label or the closing brace.
            while (!at(TokenKind::kKwCase) && !at(TokenKind::kKwDefault) &&
                   !at(TokenKind::kRBrace)) {
                if (at(TokenKind::kEof))
                    fail("unterminated switch");
                arm.body.push_back(parseStmt());
            }
            stmt->arms.push_back(std::move(arm));
        }
        expect(TokenKind::kRBrace, "to close switch body");
        return stmt;
    }

    // --- expressions --------------------------------------------------------

    ExprPtr
    parseExpr()
    {
        return parseAssignment();
    }

    static bool
    isLvalue(const Expr &e)
    {
        return e.kind == ExprKind::kVarRef || e.kind == ExprKind::kIndex;
    }

    ExprPtr
    parseAssignment()
    {
        ExprPtr lhs = parseTernary();
        std::optional<BinaryOp> compound;
        switch (cur().kind) {
          case TokenKind::kAssign: break;
          case TokenKind::kPlusAssign: compound = BinaryOp::kAdd; break;
          case TokenKind::kMinusAssign: compound = BinaryOp::kSub; break;
          case TokenKind::kStarAssign: compound = BinaryOp::kMul; break;
          case TokenKind::kSlashAssign: compound = BinaryOp::kDiv; break;
          case TokenKind::kPercentAssign: compound = BinaryOp::kRem; break;
          default:
            return lhs;
        }
        SourceLoc loc = cur().loc;
        advance();
        if (!isLvalue(*lhs))
            fail("left-hand side of assignment is not assignable");
        auto assign = std::make_unique<AssignExpr>();
        assign->loc = loc;
        assign->target = std::move(lhs);
        assign->compound = compound;
        assign->value = parseAssignment();
        return assign;
    }

    ExprPtr
    parseTernary()
    {
        ExprPtr cond = parseBinary(0);
        if (!at(TokenKind::kQuestion))
            return cond;
        SourceLoc loc = cur().loc;
        advance();
        auto expr = std::make_unique<TernaryExpr>();
        expr->loc = loc;
        expr->cond = std::move(cond);
        expr->then_value = parseExpr();
        expect(TokenKind::kColon, "in conditional expression");
        expr->else_value = parseTernary();
        return expr;
    }

    /** Binding power of a binary operator token; -1 when not binary. */
    static int
    precedence(TokenKind kind)
    {
        switch (kind) {
          case TokenKind::kPipePipe: return 1;
          case TokenKind::kAmpAmp: return 2;
          case TokenKind::kPipe: return 3;
          case TokenKind::kCaret: return 4;
          case TokenKind::kAmp: return 5;
          case TokenKind::kEq:
          case TokenKind::kNe: return 6;
          case TokenKind::kLt:
          case TokenKind::kLe:
          case TokenKind::kGt:
          case TokenKind::kGe: return 7;
          case TokenKind::kShl:
          case TokenKind::kShr: return 8;
          case TokenKind::kPlus:
          case TokenKind::kMinus: return 9;
          case TokenKind::kStar:
          case TokenKind::kSlash:
          case TokenKind::kPercent: return 10;
          default: return -1;
        }
    }

    static BinaryOp
    binaryOpFor(TokenKind kind)
    {
        switch (kind) {
          case TokenKind::kPipePipe: return BinaryOp::kLogOr;
          case TokenKind::kAmpAmp: return BinaryOp::kLogAnd;
          case TokenKind::kPipe: return BinaryOp::kBitOr;
          case TokenKind::kCaret: return BinaryOp::kBitXor;
          case TokenKind::kAmp: return BinaryOp::kBitAnd;
          case TokenKind::kEq: return BinaryOp::kEq;
          case TokenKind::kNe: return BinaryOp::kNe;
          case TokenKind::kLt: return BinaryOp::kLt;
          case TokenKind::kLe: return BinaryOp::kLe;
          case TokenKind::kGt: return BinaryOp::kGt;
          case TokenKind::kGe: return BinaryOp::kGe;
          case TokenKind::kShl: return BinaryOp::kShl;
          case TokenKind::kShr: return BinaryOp::kShr;
          case TokenKind::kPlus: return BinaryOp::kAdd;
          case TokenKind::kMinus: return BinaryOp::kSub;
          case TokenKind::kStar: return BinaryOp::kMul;
          case TokenKind::kSlash: return BinaryOp::kDiv;
          case TokenKind::kPercent: return BinaryOp::kRem;
          default: return BinaryOp::kAdd; // unreachable
        }
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        while (true) {
            int prec = precedence(cur().kind);
            if (prec < 0 || prec < min_prec)
                return lhs;
            Token op = advance();
            ExprPtr rhs = parseBinary(prec + 1);
            auto expr = std::make_unique<BinaryExpr>();
            expr->loc = op.loc;
            expr->op = binaryOpFor(op.kind);
            expr->lhs = std::move(lhs);
            expr->rhs = std::move(rhs);
            lhs = std::move(expr);
        }
    }

    ExprPtr
    parseUnary()
    {
        SourceLoc loc = cur().loc;
        if (accept(TokenKind::kMinus)) {
            auto expr = std::make_unique<UnaryExpr>();
            expr->loc = loc;
            expr->op = UnaryOp::kNeg;
            expr->operand = parseUnary();
            return expr;
        }
        if (accept(TokenKind::kBang)) {
            auto expr = std::make_unique<UnaryExpr>();
            expr->loc = loc;
            expr->op = UnaryOp::kLogNot;
            expr->operand = parseUnary();
            return expr;
        }
        if (accept(TokenKind::kTilde)) {
            auto expr = std::make_unique<UnaryExpr>();
            expr->loc = loc;
            expr->op = UnaryOp::kBitNot;
            expr->operand = parseUnary();
            return expr;
        }
        if (accept(TokenKind::kPlus))
            return parseUnary();
        if (accept(TokenKind::kPlusPlus)) {
            auto expr = std::make_unique<UnaryExpr>();
            expr->loc = loc;
            expr->op = UnaryOp::kPreInc;
            expr->operand = parseUnary();
            if (!isLvalue(*expr->operand))
                fail("operand of ++ is not assignable");
            return expr;
        }
        if (accept(TokenKind::kMinusMinus)) {
            auto expr = std::make_unique<UnaryExpr>();
            expr->loc = loc;
            expr->op = UnaryOp::kPreDec;
            expr->operand = parseUnary();
            if (!isLvalue(*expr->operand))
                fail("operand of -- is not assignable");
            return expr;
        }
        if (accept(TokenKind::kAmp)) {
            // &name takes the address of a function.
            Token name = expect(TokenKind::kIdent, "after '&'");
            auto expr = std::make_unique<FuncAddrExpr>();
            expr->loc = loc;
            expr->name = name.text;
            return expr;
        }
        return parsePostfix();
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr expr = parsePrimary();
        while (true) {
            SourceLoc loc = cur().loc;
            if (accept(TokenKind::kPlusPlus)) {
                if (!isLvalue(*expr))
                    fail("operand of ++ is not assignable");
                auto unary = std::make_unique<UnaryExpr>();
                unary->loc = loc;
                unary->op = UnaryOp::kPostInc;
                unary->operand = std::move(expr);
                expr = std::move(unary);
            } else if (accept(TokenKind::kMinusMinus)) {
                if (!isLvalue(*expr))
                    fail("operand of -- is not assignable");
                auto unary = std::make_unique<UnaryExpr>();
                unary->loc = loc;
                unary->op = UnaryOp::kPostDec;
                unary->operand = std::move(expr);
                expr = std::move(unary);
            } else {
                return expr;
            }
        }
    }

    ExprPtr
    parsePrimary()
    {
        SourceLoc loc = cur().loc;
        switch (cur().kind) {
          case TokenKind::kIntLit: {
            Token tok = advance();
            auto lit = std::make_unique<IntLit>();
            lit->loc = loc;
            lit->value = tok.int_value;
            return lit;
          }
          case TokenKind::kCharLit: {
            Token tok = advance();
            auto lit = std::make_unique<IntLit>();
            lit->loc = loc;
            lit->value = tok.int_value;
            return lit;
          }
          case TokenKind::kFloatLit: {
            Token tok = advance();
            auto lit = std::make_unique<FloatLit>();
            lit->loc = loc;
            lit->value = tok.float_value;
            return lit;
          }
          case TokenKind::kStringLit: {
            Token tok = advance();
            auto lit = std::make_unique<StringLit>();
            lit->loc = loc;
            lit->value = tok.text;
            return lit;
          }
          case TokenKind::kLParen: {
            advance();
            ExprPtr expr = parseExpr();
            expect(TokenKind::kRParen, "to close parenthesized expression");
            return expr;
          }
          case TokenKind::kIdent: {
            Token name = advance();
            if (at(TokenKind::kLParen)) {
                advance();
                auto call = std::make_unique<CallExpr>();
                call->loc = loc;
                call->callee = name.text;
                if (!at(TokenKind::kRParen)) {
                    do {
                        call->args.push_back(parseAssignment());
                    } while (accept(TokenKind::kComma));
                }
                expect(TokenKind::kRParen, "to close call arguments");
                return call;
            }
            if (at(TokenKind::kLBracket)) {
                advance();
                auto index = std::make_unique<IndexExpr>();
                index->loc = loc;
                index->array = name.text;
                index->index = parseExpr();
                expect(TokenKind::kRBracket, "to close array index");
                return index;
            }
            auto var = std::make_unique<VarRef>();
            var->loc = loc;
            var->name = name.text;
            return var;
          }
          default:
            fail("expected an expression");
        }
    }

    std::vector<Token> tokens_;
    size_t pos_ = 0;
};

} // namespace

Unit
parse(std::string_view source)
{
    return Parser(source).run();
}

} // namespace ifprob::lang

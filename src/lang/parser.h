#ifndef IFPROB_LANG_PARSER_H
#define IFPROB_LANG_PARSER_H

#include <string_view>

#include "lang/ast.h"

namespace ifprob::lang {

/**
 * Parse a minic translation unit.
 *
 * Throws ifprob::CompileError with all collected diagnostics (one per
 * line, each prefixed "line:col:") if the source is syntactically invalid.
 */
Unit parse(std::string_view source);

} // namespace ifprob::lang

#endif // IFPROB_LANG_PARSER_H

#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "support/error.h"
#include "support/str.h"

namespace ifprob::lang {

std::string_view
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::kEof: return "end of input";
      case TokenKind::kIdent: return "identifier";
      case TokenKind::kIntLit: return "integer literal";
      case TokenKind::kFloatLit: return "float literal";
      case TokenKind::kCharLit: return "character literal";
      case TokenKind::kStringLit: return "string literal";
      case TokenKind::kKwInt: return "'int'";
      case TokenKind::kKwFloat: return "'float'";
      case TokenKind::kKwVoid: return "'void'";
      case TokenKind::kKwIf: return "'if'";
      case TokenKind::kKwElse: return "'else'";
      case TokenKind::kKwWhile: return "'while'";
      case TokenKind::kKwFor: return "'for'";
      case TokenKind::kKwDo: return "'do'";
      case TokenKind::kKwSwitch: return "'switch'";
      case TokenKind::kKwCase: return "'case'";
      case TokenKind::kKwDefault: return "'default'";
      case TokenKind::kKwBreak: return "'break'";
      case TokenKind::kKwContinue: return "'continue'";
      case TokenKind::kKwReturn: return "'return'";
      case TokenKind::kLParen: return "'('";
      case TokenKind::kRParen: return "')'";
      case TokenKind::kLBrace: return "'{'";
      case TokenKind::kRBrace: return "'}'";
      case TokenKind::kLBracket: return "'['";
      case TokenKind::kRBracket: return "']'";
      case TokenKind::kComma: return "','";
      case TokenKind::kSemi: return "';'";
      case TokenKind::kColon: return "':'";
      case TokenKind::kQuestion: return "'?'";
      case TokenKind::kAssign: return "'='";
      case TokenKind::kPlus: return "'+'";
      case TokenKind::kMinus: return "'-'";
      case TokenKind::kStar: return "'*'";
      case TokenKind::kSlash: return "'/'";
      case TokenKind::kPercent: return "'%'";
      case TokenKind::kPlusAssign: return "'+='";
      case TokenKind::kMinusAssign: return "'-='";
      case TokenKind::kStarAssign: return "'*='";
      case TokenKind::kSlashAssign: return "'/='";
      case TokenKind::kPercentAssign: return "'%='";
      case TokenKind::kPlusPlus: return "'++'";
      case TokenKind::kMinusMinus: return "'--'";
      case TokenKind::kAmp: return "'&'";
      case TokenKind::kPipe: return "'|'";
      case TokenKind::kCaret: return "'^'";
      case TokenKind::kTilde: return "'~'";
      case TokenKind::kShl: return "'<<'";
      case TokenKind::kShr: return "'>>'";
      case TokenKind::kAmpAmp: return "'&&'";
      case TokenKind::kPipePipe: return "'||'";
      case TokenKind::kBang: return "'!'";
      case TokenKind::kEq: return "'=='";
      case TokenKind::kNe: return "'!='";
      case TokenKind::kLt: return "'<'";
      case TokenKind::kLe: return "'<='";
      case TokenKind::kGt: return "'>'";
      case TokenKind::kGe: return "'>='";
    }
    return "?";
}

namespace {

const std::unordered_map<std::string_view, TokenKind> kKeywords = {
    {"int", TokenKind::kKwInt},       {"float", TokenKind::kKwFloat},
    {"void", TokenKind::kKwVoid},     {"if", TokenKind::kKwIf},
    {"else", TokenKind::kKwElse},     {"while", TokenKind::kKwWhile},
    {"for", TokenKind::kKwFor},       {"do", TokenKind::kKwDo},
    {"switch", TokenKind::kKwSwitch}, {"case", TokenKind::kKwCase},
    {"default", TokenKind::kKwDefault}, {"break", TokenKind::kKwBreak},
    {"continue", TokenKind::kKwContinue}, {"return", TokenKind::kKwReturn},
};

class Lexer
{
  public:
    explicit Lexer(std::string_view src) : src_(src) {}

    std::vector<Token>
    run()
    {
        std::vector<Token> out;
        while (true) {
            skipWhitespaceAndComments();
            Token tok = next();
            bool eof = tok.kind == TokenKind::kEof;
            out.push_back(std::move(tok));
            if (eof)
                break;
        }
        return out;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg)
    {
        throw CompileError(strPrintf("lex error at %d:%d: %s", line_, col_,
                                     msg.c_str()));
    }

    bool atEnd() const { return pos_ >= src_.size(); }
    char peek() const { return atEnd() ? '\0' : src_[pos_]; }
    char
    peek2() const
    {
        return pos_ + 1 < src_.size() ? src_[pos_ + 1] : '\0';
    }

    char
    advance()
    {
        char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    bool
    match(char expected)
    {
        if (peek() != expected)
            return false;
        advance();
        return true;
    }

    void
    skipWhitespaceAndComments()
    {
        while (!atEnd()) {
            char c = peek();
            if (std::isspace(static_cast<unsigned char>(c))) {
                advance();
            } else if (c == '/' && peek2() == '/') {
                while (!atEnd() && peek() != '\n')
                    advance();
            } else if (c == '/' && peek2() == '*') {
                advance();
                advance();
                while (!atEnd() && !(peek() == '*' && peek2() == '/'))
                    advance();
                if (atEnd())
                    fail("unterminated block comment");
                advance();
                advance();
            } else {
                break;
            }
        }
    }

    char
    readEscape()
    {
        if (atEnd())
            fail("unterminated escape");
        char c = advance();
        switch (c) {
          case 'n': return '\n';
          case 't': return '\t';
          case 'r': return '\r';
          case '0': return '\0';
          case '\\': return '\\';
          case '\'': return '\'';
          case '"': return '"';
          default:
            fail(strPrintf("unknown escape '\\%c'", c));
        }
    }

    Token
    next()
    {
        Token tok;
        tok.loc = {line_, col_};
        if (atEnd()) {
            tok.kind = TokenKind::kEof;
            return tok;
        }
        char c = advance();

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string ident(1, c);
            while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                                peek() == '_')) {
                ident.push_back(advance());
            }
            auto it = kKeywords.find(ident);
            if (it != kKeywords.end()) {
                tok.kind = it->second;
            } else {
                tok.kind = TokenKind::kIdent;
                tok.text = std::move(ident);
            }
            return tok;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::string num(1, c);
            bool is_float = false;
            if (c == '0' && (peek() == 'x' || peek() == 'X')) {
                num.push_back(advance());
                while (!atEnd() && std::isxdigit(static_cast<unsigned char>(peek())))
                    num.push_back(advance());
                tok.kind = TokenKind::kIntLit;
                tok.int_value = std::strtoll(num.c_str(), nullptr, 16);
                return tok;
            }
            while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
                num.push_back(advance());
            if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek2()))) {
                is_float = true;
                num.push_back(advance());
                while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
                    num.push_back(advance());
            }
            if (peek() == 'e' || peek() == 'E') {
                char after = peek2();
                size_t save = pos_;
                if (std::isdigit(static_cast<unsigned char>(after)) ||
                    after == '+' || after == '-') {
                    is_float = true;
                    num.push_back(advance()); // e
                    if (peek() == '+' || peek() == '-')
                        num.push_back(advance());
                    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
                        pos_ = save; // malformed exponent: back off
                        is_float = num.find('.') != std::string::npos;
                    } else {
                        while (!atEnd() &&
                               std::isdigit(static_cast<unsigned char>(peek())))
                            num.push_back(advance());
                    }
                }
            }
            if (is_float) {
                tok.kind = TokenKind::kFloatLit;
                tok.float_value = std::strtod(num.c_str(), nullptr);
            } else {
                tok.kind = TokenKind::kIntLit;
                tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
            }
            return tok;
        }

        if (c == '\'') {
            if (atEnd())
                fail("unterminated character literal");
            char v = advance();
            if (v == '\\')
                v = readEscape();
            if (!match('\''))
                fail("unterminated character literal");
            tok.kind = TokenKind::kCharLit;
            tok.int_value = static_cast<unsigned char>(v);
            return tok;
        }

        if (c == '"') {
            std::string text;
            while (!atEnd() && peek() != '"') {
                char v = advance();
                if (v == '\\')
                    v = readEscape();
                text.push_back(v);
            }
            if (!match('"'))
                fail("unterminated string literal");
            tok.kind = TokenKind::kStringLit;
            tok.text = std::move(text);
            return tok;
        }

        switch (c) {
          case '(': tok.kind = TokenKind::kLParen; return tok;
          case ')': tok.kind = TokenKind::kRParen; return tok;
          case '{': tok.kind = TokenKind::kLBrace; return tok;
          case '}': tok.kind = TokenKind::kRBrace; return tok;
          case '[': tok.kind = TokenKind::kLBracket; return tok;
          case ']': tok.kind = TokenKind::kRBracket; return tok;
          case ',': tok.kind = TokenKind::kComma; return tok;
          case ';': tok.kind = TokenKind::kSemi; return tok;
          case ':': tok.kind = TokenKind::kColon; return tok;
          case '?': tok.kind = TokenKind::kQuestion; return tok;
          case '~': tok.kind = TokenKind::kTilde; return tok;
          case '^': tok.kind = TokenKind::kCaret; return tok;
          case '+':
            if (match('='))
                tok.kind = TokenKind::kPlusAssign;
            else if (match('+'))
                tok.kind = TokenKind::kPlusPlus;
            else
                tok.kind = TokenKind::kPlus;
            return tok;
          case '-':
            if (match('='))
                tok.kind = TokenKind::kMinusAssign;
            else if (match('-'))
                tok.kind = TokenKind::kMinusMinus;
            else
                tok.kind = TokenKind::kMinus;
            return tok;
          case '*':
            tok.kind = match('=') ? TokenKind::kStarAssign : TokenKind::kStar;
            return tok;
          case '/':
            tok.kind = match('=') ? TokenKind::kSlashAssign : TokenKind::kSlash;
            return tok;
          case '%':
            tok.kind = match('=') ? TokenKind::kPercentAssign : TokenKind::kPercent;
            return tok;
          case '&':
            tok.kind = match('&') ? TokenKind::kAmpAmp : TokenKind::kAmp;
            return tok;
          case '|':
            tok.kind = match('|') ? TokenKind::kPipePipe : TokenKind::kPipe;
            return tok;
          case '!':
            tok.kind = match('=') ? TokenKind::kNe : TokenKind::kBang;
            return tok;
          case '=':
            tok.kind = match('=') ? TokenKind::kEq : TokenKind::kAssign;
            return tok;
          case '<':
            if (match('<'))
                tok.kind = TokenKind::kShl;
            else if (match('='))
                tok.kind = TokenKind::kLe;
            else
                tok.kind = TokenKind::kLt;
            return tok;
          case '>':
            if (match('>'))
                tok.kind = TokenKind::kShr;
            else if (match('='))
                tok.kind = TokenKind::kGe;
            else
                tok.kind = TokenKind::kGt;
            return tok;
          default:
            fail(strPrintf("stray character '%c' (0x%02x)", c,
                           static_cast<unsigned char>(c)));
        }
    }

    std::string_view src_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

} // namespace

std::vector<Token>
lex(std::string_view source)
{
    return Lexer(source).run();
}

} // namespace ifprob::lang

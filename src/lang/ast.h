#ifndef IFPROB_LANG_AST_H
#define IFPROB_LANG_AST_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lang/token.h"

namespace ifprob::lang {

/** minic value types. kVoid appears only as a function return type. */
enum class Type : uint8_t { kInt, kFloat, kVoid };

/** Name of a Type, for diagnostics. */
std::string_view typeName(Type type);

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : uint8_t {
    kIntLit, kFloatLit, kStringLit,
    kVarRef, kIndex,
    kUnary, kBinary, kAssign, kTernary,
    kCall, kFuncAddr,
};

enum class UnaryOp : uint8_t {
    kNeg,      // -x
    kLogNot,   // !x
    kBitNot,   // ~x
    kPreInc, kPreDec, kPostInc, kPostDec,
};

enum class BinaryOp : uint8_t {
    kAdd, kSub, kMul, kDiv, kRem,
    kBitAnd, kBitOr, kBitXor, kShl, kShr,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kLogAnd, kLogOr,
};

struct Expr
{
    ExprKind kind;
    SourceLoc loc;
    /** Filled in by the compiler's type checker. */
    Type type = Type::kInt;

    explicit Expr(ExprKind k) : kind(k) {}
    virtual ~Expr() = default;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLit : Expr
{
    int64_t value = 0;
    IntLit() : Expr(ExprKind::kIntLit) {}
};

struct FloatLit : Expr
{
    double value = 0.0;
    FloatLit() : Expr(ExprKind::kFloatLit) {}
};

/** String literals are only legal as the argument of puts(). */
struct StringLit : Expr
{
    std::string value;
    StringLit() : Expr(ExprKind::kStringLit) {}
};

struct VarRef : Expr
{
    std::string name;
    VarRef() : Expr(ExprKind::kVarRef) {}
};

/** array[index]; arrays are global and one-dimensional. */
struct IndexExpr : Expr
{
    std::string array;
    ExprPtr index;
    IndexExpr() : Expr(ExprKind::kIndex) {}
};

struct UnaryExpr : Expr
{
    UnaryOp op = UnaryOp::kNeg;
    ExprPtr operand;
    UnaryExpr() : Expr(ExprKind::kUnary) {}
};

struct BinaryExpr : Expr
{
    BinaryOp op = BinaryOp::kAdd;
    ExprPtr lhs;
    ExprPtr rhs;
    BinaryExpr() : Expr(ExprKind::kBinary) {}
};

/**
 * target = value, or compound (target op= value). The target must be a
 * VarRef or IndexExpr; the expression's value is the assigned value.
 */
struct AssignExpr : Expr
{
    ExprPtr target;
    /** Compound operator, absent for plain '='. */
    std::optional<BinaryOp> compound;
    ExprPtr value;
    AssignExpr() : Expr(ExprKind::kAssign) {}
};

struct TernaryExpr : Expr
{
    ExprPtr cond;
    ExprPtr then_value;
    ExprPtr else_value;
    TernaryExpr() : Expr(ExprKind::kTernary) {}
};

/**
 * Direct call of a named function or builtin, or an indirect call via the
 * builtin spelling icall(fn_expr, args...).
 */
struct CallExpr : Expr
{
    std::string callee;
    std::vector<ExprPtr> args;
    CallExpr() : Expr(ExprKind::kCall) {}
};

/** &name — the address (function table index) of a function. */
struct FuncAddrExpr : Expr
{
    std::string name;
    FuncAddrExpr() : Expr(ExprKind::kFuncAddr) {}
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : uint8_t {
    kExpr, kVarDecl, kIf, kWhile, kDoWhile, kFor, kSwitch,
    kBreak, kContinue, kReturn, kBlock, kEmpty,
};

struct Stmt
{
    StmtKind kind;
    SourceLoc loc;
    explicit Stmt(StmtKind k) : kind(k) {}
    virtual ~Stmt() = default;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct ExprStmt : Stmt
{
    ExprPtr expr;
    ExprStmt() : Stmt(StmtKind::kExpr) {}
};

/** Local scalar declarations: `int a = 1, b;`. */
struct VarDeclStmt : Stmt
{
    Type type = Type::kInt;
    struct Declarator
    {
        std::string name;
        ExprPtr init; ///< may be null
        SourceLoc loc;
    };
    std::vector<Declarator> vars;
    VarDeclStmt() : Stmt(StmtKind::kVarDecl) {}
};

struct IfStmt : Stmt
{
    ExprPtr cond;
    StmtPtr then_stmt;
    StmtPtr else_stmt; ///< may be null
    IfStmt() : Stmt(StmtKind::kIf) {}
};

struct WhileStmt : Stmt
{
    ExprPtr cond;
    StmtPtr body;
    WhileStmt() : Stmt(StmtKind::kWhile) {}
};

struct DoWhileStmt : Stmt
{
    StmtPtr body;
    ExprPtr cond;
    DoWhileStmt() : Stmt(StmtKind::kDoWhile) {}
};

struct ForStmt : Stmt
{
    StmtPtr init;  ///< VarDeclStmt, ExprStmt, or null
    ExprPtr cond;  ///< may be null (infinite)
    ExprPtr step;  ///< may be null
    StmtPtr body;
    ForStmt() : Stmt(StmtKind::kFor) {}
};

/**
 * switch with C semantics (fallthrough between arms unless break).
 * Lowered by the code generator to a cascade of conditional branches, the
 * transformation the paper's compiler applied to multi-destination branches.
 */
struct SwitchStmt : Stmt
{
    ExprPtr value;
    struct Arm
    {
        std::vector<int64_t> labels; ///< empty plus is_default for default:
        bool is_default = false;
        std::vector<StmtPtr> body;
        SourceLoc loc;
    };
    std::vector<Arm> arms;
    SwitchStmt() : Stmt(StmtKind::kSwitch) {}
};

struct BreakStmt : Stmt
{
    BreakStmt() : Stmt(StmtKind::kBreak) {}
};

struct ContinueStmt : Stmt
{
    ContinueStmt() : Stmt(StmtKind::kContinue) {}
};

struct ReturnStmt : Stmt
{
    ExprPtr value; ///< null for void return
    ReturnStmt() : Stmt(StmtKind::kReturn) {}
};

struct BlockStmt : Stmt
{
    std::vector<StmtPtr> stmts;
    BlockStmt() : Stmt(StmtKind::kBlock) {}
};

struct EmptyStmt : Stmt
{
    EmptyStmt() : Stmt(StmtKind::kEmpty) {}
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

/** A global scalar or one-dimensional array. */
struct GlobalVarDecl
{
    Type type = Type::kInt;
    std::string name;
    /** -1 for scalars; otherwise the compile-time array size. */
    int64_t array_size = -1;
    /** Scalar initializer (constant expression), may be null. */
    ExprPtr init;
    /** Array initializer list (constant expressions); shorter than the
     *  array is allowed, the tail is zero. */
    std::vector<ExprPtr> init_list;
    SourceLoc loc;
};

struct Param
{
    Type type = Type::kInt;
    std::string name;
    SourceLoc loc;
};

struct FuncDecl
{
    Type return_type = Type::kVoid;
    std::string name;
    std::vector<Param> params;
    std::unique_ptr<BlockStmt> body;
    SourceLoc loc;
};

/** One parsed translation unit. */
struct Unit
{
    std::vector<GlobalVarDecl> globals;
    std::vector<FuncDecl> functions;
};

} // namespace ifprob::lang

#endif // IFPROB_LANG_AST_H

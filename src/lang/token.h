#ifndef IFPROB_LANG_TOKEN_H
#define IFPROB_LANG_TOKEN_H

#include <cstdint>
#include <string>
#include <string_view>

namespace ifprob::lang {

/** A position in minic source text (1-based). */
struct SourceLoc
{
    int line = 1;
    int col = 1;
};

/** Lexical token kinds for the minic language. */
enum class TokenKind : uint8_t {
    kEof,
    kIdent,
    kIntLit,
    kFloatLit,
    kCharLit,    ///< value carried in int_value
    kStringLit,  ///< text carried in text (escapes resolved)

    // Keywords.
    kKwInt, kKwFloat, kKwVoid,
    kKwIf, kKwElse, kKwWhile, kKwFor, kKwDo,
    kKwSwitch, kKwCase, kKwDefault,
    kKwBreak, kKwContinue, kKwReturn,

    // Punctuation / operators.
    kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
    kComma, kSemi, kColon, kQuestion,
    kAssign,            // =
    kPlus, kMinus, kStar, kSlash, kPercent,
    kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign, kPercentAssign,
    kPlusPlus, kMinusMinus,
    kAmp, kPipe, kCaret, kTilde, kShl, kShr,
    kAmpAmp, kPipePipe, kBang,
    kEq, kNe, kLt, kLe, kGt, kGe,
};

/** Human-readable token kind name, used in parse diagnostics. */
std::string_view tokenKindName(TokenKind kind);

/** One lexed token. */
struct Token
{
    TokenKind kind = TokenKind::kEof;
    SourceLoc loc;
    std::string text;      ///< identifier spelling or resolved string literal
    int64_t int_value = 0; ///< for kIntLit / kCharLit
    double float_value = 0.0;
};

} // namespace ifprob::lang

#endif // IFPROB_LANG_TOKEN_H

#ifndef IFPROB_LANG_LEXER_H
#define IFPROB_LANG_LEXER_H

#include <string_view>
#include <vector>

#include "lang/token.h"

namespace ifprob::lang {

/**
 * Tokenize a whole minic source buffer.
 *
 * The returned vector always ends with a kEof token. Lexical errors
 * (unterminated literals, stray characters) raise ifprob::CompileError
 * with a line/column in the message.
 */
std::vector<Token> lex(std::string_view source);

} // namespace ifprob::lang

#endif // IFPROB_LANG_LEXER_H

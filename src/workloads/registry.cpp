#include "workloads/workload.h"

#include <mutex>

#include "support/error.h"

namespace ifprob::workloads {

namespace {

std::vector<Workload>
build()
{
    std::vector<Workload> out;
    // FORTRAN/floating-point analogues (paper Table 2, upper half).
    out.push_back(makeSpice());
    out.push_back(makeDoduc());
    out.push_back(makeNasa7());
    out.push_back(makeMatrix300());
    out.push_back(makeFpppp());
    out.push_back(makeTomcatv());
    out.push_back(makeLfk());
    // C/integer analogues (paper Table 2, lower half).
    out.push_back(makeEspresso());
    out.push_back(makeLi());
    out.push_back(makeEqntott());
    out.push_back(makeCompress());
    out.push_back(makeUncompress());
    out.push_back(makeMcc());
    out.push_back(makeSpiff());
    return out;
}

} // namespace

const std::vector<Workload> &
all()
{
    static std::once_flag once;
    static std::vector<Workload> cache;
    std::call_once(once, [] { cache = build(); });
    return cache;
}

const Workload &
get(std::string_view name)
{
    for (const Workload &w : all()) {
        if (w.name == name)
            return w;
    }
    throw Error("unknown workload: " + std::string(name));
}

} // namespace ifprob::workloads

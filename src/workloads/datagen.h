#ifndef IFPROB_WORKLOADS_DATAGEN_H
#define IFPROB_WORKLOADS_DATAGEN_H

#include <cstdint>
#include <string>

namespace ifprob::workloads {

/**
 * Deterministic text generators for the dataset inputs. The paper's
 * datasets were real files (C sources, FORTRAN sources, SPEC reference
 * inputs); these produce synthetic streams with the same statistical
 * texture (identifier/keyword mix, indentation, numeric density) from a
 * fixed seed, so the whole experiment is reproducible offline.
 */

/** Systems-style C source text of roughly @p target_bytes. */
std::string generateCSource(uint64_t seed, size_t target_bytes);

/** Numeric FORTRAN-style source text of roughly @p target_bytes. */
std::string generateFortranSource(uint64_t seed, size_t target_bytes);

/** English-like word text (the SPEC "long" reference flavour). */
std::string generateProse(uint64_t seed, size_t target_bytes);

/** Whitespace-separated decimal numbers, e.g. tabulated simulator output. */
std::string generateNumberTable(uint64_t seed, size_t rows, size_t cols);

/** Semi-compressible binary-ish byte stream (object-file flavour). */
std::string generateBinaryish(uint64_t seed, size_t target_bytes);

} // namespace ifprob::workloads

#endif // IFPROB_WORKLOADS_DATAGEN_H

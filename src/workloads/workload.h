#ifndef IFPROB_WORKLOADS_WORKLOAD_H
#define IFPROB_WORKLOADS_WORKLOAD_H

#include <string>
#include <string_view>
#include <vector>

namespace ifprob::workloads {

/** One input dataset for a workload program. */
struct Dataset
{
    std::string name;  ///< e.g. "8queens"; "(builtin)" when input-free
    std::string input; ///< the raw byte stream fed to the VM
};

/**
 * One program of the sample base: minic source plus its datasets.
 *
 * The suite mirrors the paper's Table 2: FORTRAN/floating-point analogues
 * (tomcatv, matrix300, nasa7, fpppp, lfk, doduc, spice) and C/integer
 * analogues (compress, uncompress, li, eqntott, espresso, mcc, spiff).
 * Programs the paper lists as "does not read a dataset" get one synthetic
 * dataset named "(builtin)" with empty input.
 */
struct Workload
{
    std::string name;
    std::string description;
    /** Category used to split Figures 1a/2a (FORTRAN/FP) from 1b/2b
     *  (C/integer). */
    bool fortran_like = false;
    /** minic source text. */
    std::string source;
    std::vector<Dataset> datasets;
};

/** All workloads, constructed once and cached (dataset generation is
 *  deterministic). Order is stable: FORTRAN programs first. */
const std::vector<Workload> &all();

/** Look up one workload by name; throws ifprob::Error when missing. */
const Workload &get(std::string_view name);

// Individual factories (exposed for targeted tests).
Workload makeTomcatv();
Workload makeMatrix300();
Workload makeNasa7();
Workload makeFpppp();
Workload makeLfk();
Workload makeDoduc();
Workload makeSpice();
Workload makeCompress();
Workload makeUncompress();
Workload makeLi();
Workload makeEqntott();
Workload makeEspresso();
Workload makeMcc();
Workload makeSpiff();

} // namespace ifprob::workloads

#endif // IFPROB_WORKLOADS_WORKLOAD_H

#include "workloads/workload.h"

namespace ifprob::workloads {

/**
 * doduc analogue: Monte-Carlo-flavoured time-stepped simulation of a
 * nuclear reactor's thermo-hydraulics. Many small routines with
 * data-dependent floating-point threshold branches — a FORTRAN program
 * with comparatively *low* instructions-per-break (paper Table 3:
 * ~257-275). Datasets vary only in simulated length, as in SPEC
 * (tiny/small/ref).
 */
Workload
makeDoduc()
{
    Workload w;
    w.name = "doduc";
    w.description = "time-stepped reactor simulation with threshold branches";
    w.fortran_like = true;
    w.source = R"(
// doduc analogue: lots of small routines, data-dependent FP branches.
// Disabled event logging (paper: 2% dynamic dead code).
int log_events = 0;
int events = 0;
float temp[64];
float flow[64];
float press[64];
int seed = 99;
int trips = 0;
int interp_hits = 0;

float frand() {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed / 2147483648.0;
}

// Table interpolation with a linear scan: classic doduc-style hot spot.
float tabx[32] = {0};
float taby[32] = {0};

void mktable() {
    int i;
    for (i = 0; i < 32; i++) {
        tabx[i] = i * 0.125;
        taby[i] = sin(i * 0.125) + 0.3 * cos(i * 0.4);
    }
}

float interp(float v) {
    int i;
    i = 0;
    while (i < 31 && tabx[i + 1] < v)
        i = i + 1;
    interp_hits = interp_hits + 1;
    if (i >= 31)
        return taby[31];
    return taby[i] + (taby[i + 1] - taby[i]) * (v - tabx[i]) /
           (tabx[i + 1] - tabx[i] + 1.0e-12);
}

float channel(int c, float dt) {
    float q, dq, t;
    if (log_events)
        events = events + 1;
    t = temp[c];
    q = flow[c];
    dq = (press[c] - q * q * 0.37) * dt;
    q = q + dq;
    if (q < 0.01)
        q = 0.01;
    // Heat transfer regime selection: data-dependent branch nest.
    if (t > 2.8) {
        t = t - (0.11 + 0.02 * q) * dt * (t - 1.9);
        if (q > 1.2)
            t = t - 0.01 * dt;
    } else if (t > 1.4) {
        t = t + dt * (interp(q) * 0.35 - (t - 1.4) * 0.08);
    } else {
        t = t + dt * (0.21 * q + 0.02);
        if (t > 1.4)
            trips = trips + 1;
    }
    flow[c] = q;
    temp[c] = t;
    return t;
}

void pressures(float dt) {
    int c;
    float avg;
    avg = 0.0;
    for (c = 0; c < 64; c++)
        avg = avg + press[c];
    avg = avg / 64.0;
    for (c = 0; c < 64; c++) {
        press[c] = press[c] + dt * (avg - press[c]) * 0.4
                 + (frand() - 0.5) * 0.02;
        if (press[c] < 0.1)
            press[c] = 0.1;
        if (press[c] > 4.0)
            press[c] = 4.0;
    }
}

int main() {
    int steps, s, c;
    float dt, tmax, checksum;
    steps = geti();
    dt = 0.01;
    for (c = 0; c < 64; c++) {
        temp[c] = 1.0 + 0.03 * c;
        flow[c] = 0.8;
        press[c] = 1.0 + 0.01 * c;
    }
    mktable();
    tmax = 0.0;
    for (s = 0; s < steps; s++) {
        pressures(dt);
        for (c = 0; c < 64; c++)
            tmax = fmax2(tmax, channel(c, dt));
        // Control system: another data-dependent regime.
        if (tmax > 3.5) {
            for (c = 0; c < 64; c++)
                flow[c] = flow[c] * 1.02;
            tmax = tmax * 0.98;
        }
    }
    checksum = 0.0;
    for (c = 0; c < 64; c++)
        checksum = checksum + temp[c] + flow[c] + press[c];
    putf(checksum);
    putc('\n');
    puti(trips);
    putc('\n');
    return 0;
}
)";
    w.datasets.push_back({"tiny", "400\n"});
    w.datasets.push_back({"small", "1200\n"});
    w.datasets.push_back({"ref", "4000\n"});
    return w;
}

} // namespace ifprob::workloads

#include "workloads/workload.h"

#include "support/str.h"

namespace ifprob::workloads {

namespace {

/**
 * Build the giant straight-line basic block that characterizes fpppp:
 * the paper describes its inner loop as "a giant expression with no flow
 * of control" executing roughly 170 instructions per branch. We generate
 * a long chain of dependent floating-point statements (a synthetic
 * two-electron-integral kernel) so the block's size dwarfs its loop
 * overhead.
 */
std::string
bigBlock(int statements)
{
    // Every template is a contraction on [-1.2, 1.2], so the chain of
    // hundreds of dependent statements stays bounded (no NaN/Inf) while
    // remaining straight-line floating-point code.
    std::string out;
    for (int i = 0; i < statements; ++i) {
        switch (i % 5) {
          case 0:
            out += ifprob::strPrintf(
                "    t%d = 0.31 * t%d + 0.27 * t%d - 0.24 * t%d;\n",
                (i + 4) % 8, i % 8, (i + 1) % 8, (i + 2) % 8);
            break;
          case 1:
            out += ifprob::strPrintf(
                "    t%d = t%d / (t%d * t%d + 1.37) + 0.1 * r12;\n",
                (i + 4) % 8, (i + 3) % 8, i % 8, i % 8);
            break;
          case 2:
            out += ifprob::strPrintf(
                "    t%d = 0.5 * t%d * t%d + 0.%03d;\n", (i + 4) % 8,
                i % 8, (i + 1) % 8, (i * 37) % 300);
            break;
          case 3:
            out += ifprob::strPrintf(
                "    t%d = 0.8 * t%d + g4 * (0.3 * t%d - 0.4 * t%d);\n",
                (i + 4) % 8, i % 8, (i + 1) % 8, (i + 2) % 8);
            break;
          default:
            out += ifprob::strPrintf(
                "    acc = acc + 0.001 * t%d * t%d;\n", i % 8, (i + 4) % 8);
            break;
        }
    }
    return out;
}

} // namespace

/**
 * fpppp analogue: quantum-chemistry two-electron integral evaluation with
 * one enormous basic block per shell pair. The dataset is the atom count
 * (the paper ran 4atoms and 8atoms); more atoms means more shell pairs.
 */
Workload
makeFpppp()
{
    Workload w;
    w.name = "fpppp";
    w.description = "two-electron integral kernel with a giant basic block";
    w.fortran_like = true;

    std::string source = R"(
// fpppp analogue: giant straight-line FP block per shell pair.
// Disabled integral screening statistics (paper: 1% dead code).
int count_integrals = 0;
int integrals = 0;
float shells[1024];
float acc = 0.0;
float g1 = 1.104;
float g2 = 0.9273;
float g3 = 0.4181;
float g4 = 0.2113;

void setup(int nshell) {
    int i;
    for (i = 0; i < nshell; i++)
        shells[i] = 0.31 + 0.07 * sin(i * 0.61);
}

float pair(float za, float zb) {
    float t0, t1, t2, t3, t4, t5, t6, t7, r12;
    int rep;
    if (count_integrals)
        integrals = integrals + 1;
    t0 = za;
    t1 = zb;
    t2 = za * zb;
    t3 = za + zb;
    t4 = 1.0 / (t3 + 0.001);
    t5 = exp(0.0 - t2 * t4);
    t6 = sqrt(t3);
    t7 = t5 * t6;
    r12 = t4 * t7 + 0.01;
    for (rep = 0; rep < 5; rep++) {
)" + bigBlock(48) + R"(
    }
    return acc;
}

int main() {
    int natoms, nshell, i, j;
    float result;
    natoms = geti();
    nshell = natoms * 10;
    setup(nshell);
    result = 0.0;
    for (i = 0; i < nshell; i++) {
        for (j = i + 1; j < nshell; j++) {
            acc = 0.0;
            result = result + pair(shells[i], shells[j]);
        }
    }
    putf(result);
    putc('\n');
    return 0;
}
)";
    w.source = std::move(source);
    w.datasets.push_back({"4atoms", "4\n"});
    w.datasets.push_back({"8atoms", "8\n"});
    return w;
}

} // namespace ifprob::workloads

#include "workloads/workload.h"

#include "support/rng.h"
#include "support/str.h"

namespace ifprob::workloads {

namespace {

/**
 * Generate source text in the "tiny" language mcc compiles. The two
 * dataset flavours mirror the paper's mfcom inputs: c_metric (systems
 * C — branchy conditionals, flag twiddling) and fortran_metric
 * (scientific subroutines — deep loop nests, long arithmetic chains).
 */
std::string
generateTinyProgram(uint64_t seed, size_t target_bytes, bool numeric_flavour)
{
    Rng rng(seed);
    std::string out;
    out.reserve(target_bytes + 512);
    const char *vars[12] = {"a", "b", "c", "d", "i", "j", "k", "n", "sum",
                            "tmp", "flag", "best"};
    for (const char *v : vars)
        out += strPrintf("var %s;\n", v);

    auto var = [&]() { return vars[rng.below(12)]; };
    auto expr = [&]() {
        std::string e = strPrintf("%s", var());
        int terms = static_cast<int>(rng.range(1, numeric_flavour ? 5 : 2));
        for (int t = 0; t < terms; ++t) {
            const char *ops = numeric_flavour ? "+-*" : "+-";
            char op = ops[rng.below(numeric_flavour ? 3 : 2)];
            if (rng.chance(0.4))
                e += strPrintf(" %c %lld", op,
                               static_cast<long long>(rng.range(1, 99)));
            else
                e += strPrintf(" %c %s", op, var());
        }
        return e;
    };

    while (out.size() < target_bytes) {
        if (numeric_flavour) {
            // Loop nest with arithmetic body.
            out += strPrintf("i = 0;\nwhile (i < %lld) {\n",
                             static_cast<long long>(rng.range(8, 64)));
            out += strPrintf("  %s = %s;\n", var(), expr().c_str());
            if (rng.chance(0.6)) {
                out += strPrintf("  j = 0;\n  while (j < %lld) {\n"
                                 "    %s = %s;\n    j = j + 1;\n  }\n",
                                 static_cast<long long>(rng.range(4, 32)),
                                 var(), expr().c_str());
            }
            out += "  i = i + 1;\n}\n";
        } else {
            // Conditional soup.
            switch (rng.below(4)) {
              case 0:
                out += strPrintf("if (%s < %s) {\n  %s = %s;\n} else {\n"
                                 "  %s = %s;\n}\n",
                                 var(), var(), var(), expr().c_str(), var(),
                                 expr().c_str());
                break;
              case 1:
                out += strPrintf("if (%s == %lld) %s = %s;\n", var(),
                                 static_cast<long long>(rng.range(0, 8)),
                                 var(), expr().c_str());
                break;
              case 2:
                out += strPrintf("%s = %s;\n", var(), expr().c_str());
                break;
              default:
                out += strPrintf("if (flag != 0) {\n  if (%s > %s) "
                                 "print %s;\n  flag = 0;\n}\n",
                                 var(), var(), var());
                break;
            }
        }
        if (rng.chance(0.1))
            out += strPrintf("print %s;\n", var());
    }
    return out;
}

} // namespace

/**
 * mcc: the mfcom (Multiflow compiler) analogue — a complete compiler for
 * a tiny imperative language, written in minic. Lexing, symbol interning,
 * recursive-descent parsing and stack-code emission give the keyword-
 * dispatch / table-scan branch texture of a real compiler front end.
 */
Workload
makeMcc()
{
    Workload w;
    w.name = "mcc";
    w.description = "compiler for a tiny language (mfcom analogue)";
    w.fortran_like = false;
    w.source = R"(
// mcc: tokenizer + parser + stack-code generator for the tiny language.
// Tokens: 0=eof 1=num 2=ident 3=punct 4=var 5=if 6=else 7=while 8=print
// Disabled compiler self-profiling (paper: gcc carried 2% dead code).
int time_passes = 0;
int tokens_seen = 0;
int tok = 0;
int tokval = 0;
int nsyms = 0;
int symoff[256];
int symlen[256];
int symchars[4096];
int nchars = 0;
int tmpname[64];
int tmplen = 0;
int labelno = 0;
int emitted = 0;
int errors = 0;
int lk = -2;

int rdch() {
    int c;
    if (lk != -2) {
        c = lk;
        lk = -2;
        return c;
    }
    return getc();
}

int peekc() {
    if (lk == -2)
        lk = getc();
    return lk;
}

int isalpha_(int c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

int isdigit_(int c) {
    return c >= '0' && c <= '9';
}

int intern() {
    int i, j, off, match;
    for (i = 0; i < nsyms; i++) {
        if (symlen[i] == tmplen) {
            match = 1;
            off = symoff[i];
            for (j = 0; j < tmplen; j++)
                if (symchars[off + j] != tmpname[j])
                    match = 0;
            if (match)
                return i;
        }
    }
    symoff[nsyms] = nchars;
    symlen[nsyms] = tmplen;
    for (j = 0; j < tmplen; j++) {
        symchars[nchars] = tmpname[j];
        nchars = nchars + 1;
    }
    nsyms = nsyms + 1;
    return nsyms - 1;
}

// Keyword check over tmpname; returns token type or 2 (ident).
int kwcheck() {
    if (tmplen == 3 && tmpname[0] == 'v' && tmpname[1] == 'a' &&
        tmpname[2] == 'r')
        return 4;
    if (tmplen == 2 && tmpname[0] == 'i' && tmpname[1] == 'f')
        return 5;
    if (tmplen == 4 && tmpname[0] == 'e' && tmpname[1] == 'l' &&
        tmpname[2] == 's' && tmpname[3] == 'e')
        return 6;
    if (tmplen == 5 && tmpname[0] == 'w' && tmpname[1] == 'h' &&
        tmpname[2] == 'i' && tmpname[3] == 'l' && tmpname[4] == 'e')
        return 7;
    if (tmplen == 5 && tmpname[0] == 'p' && tmpname[1] == 'r' &&
        tmpname[2] == 'i' && tmpname[3] == 'n' && tmpname[4] == 't')
        return 8;
    return 2;
}

void next() {
    int c;
    if (time_passes)
        tokens_seen = tokens_seen + 1;
    c = rdch();
    while (c == ' ' || c == '\n' || c == '\t' || c == '\r')
        c = rdch();
    if (c == -1) {
        tok = 0;
        return;
    }
    if (isdigit_(c)) {
        tokval = 0;
        while (isdigit_(c)) {
            tokval = tokval * 10 + (c - '0');
            c = peekc();
            if (isdigit_(c))
                rdch();
        }
        tok = 1;
        return;
    }
    if (isalpha_(c)) {
        tmplen = 0;
        while (isalpha_(c) || isdigit_(c)) {
            tmpname[tmplen] = c;
            tmplen = tmplen + 1;
            c = peekc();
            if (isalpha_(c) || isdigit_(c))
                rdch();
        }
        tok = kwcheck();
        if (tok == 2)
            tokval = intern();
        return;
    }
    if (c == '=' && peekc() == '=') {
        rdch();
        tok = 3;
        tokval = 'E';
        return;
    }
    if (c == '!' && peekc() == '=') {
        rdch();
        tok = 3;
        tokval = 'N';
        return;
    }
    tok = 3;
    tokval = c;
}

void emit2(int c0, int c1) {
    putc(c0);
    putc(c1);
    putc('\n');
    emitted = emitted + 1;
}

void emitarg(int c0, int v) {
    putc(c0);
    putc(' ');
    puti(v);
    putc('\n');
    emitted = emitted + 1;
}

void expect(int punct) {
    if (tok == 3 && tokval == punct) {
        next();
        return;
    }
    errors = errors + 1;
    next();
}

// expr := rel (('=='|'!='|'<'|'>') rel)?
// rel  := term (('+'|'-') term)*
// term := factor (('*'|'/') factor)*
void factor() {
    if (tok == 1) {
        emitarg('P', tokval);   // PUSH n
        next();
        return;
    }
    if (tok == 2) {
        emitarg('L', tokval);   // LOAD slot
        next();
        return;
    }
    if (tok == 3 && tokval == '(') {
        next();
        expr();
        expect(')');
        return;
    }
    if (tok == 3 && tokval == '-') {
        next();
        factor();
        emit2('N', 'G');        // NEG
        return;
    }
    errors = errors + 1;
    next();
}

void term() {
    int op;
    factor();
    while (tok == 3 && (tokval == '*' || tokval == '/')) {
        op = tokval;
        next();
        factor();
        if (op == '*')
            emit2('M', 'U');
        else
            emit2('D', 'V');
    }
}

void rel() {
    int op;
    term();
    while (tok == 3 && (tokval == '+' || tokval == '-')) {
        op = tokval;
        next();
        term();
        if (op == '+')
            emit2('A', 'D');
        else
            emit2('S', 'B');
    }
}

void expr() {
    int op;
    rel();
    while (tok == 3 && (tokval == '<' || tokval == '>' || tokval == 'E' ||
                        tokval == 'N')) {
        op = tokval;
        next();
        rel();
        if (op == '<')
            emit2('L', 'T');
        else if (op == '>')
            emit2('G', 'T');
        else if (op == 'E')
            emit2('E', 'Q');
        else
            emit2('N', 'E');
    }
}

void stmt() {
    int slot, l1, l2;
    if (tok == 4) {             // var decl
        next();
        if (tok == 2)
            next();
        expect(';');
        return;
    }
    if (tok == 5) {             // if
        next();
        expect('(');
        expr();
        expect(')');
        l1 = labelno;
        labelno = labelno + 1;
        emitarg('Z', l1);       // JZ l1
        stmt();
        if (tok == 6) {         // else
            next();
            l2 = labelno;
            labelno = labelno + 1;
            emitarg('J', l2);
            emitarg('B', l1);   // LABEL l1
            stmt();
            emitarg('B', l2);
        } else {
            emitarg('B', l1);
        }
        return;
    }
    if (tok == 7) {             // while
        next();
        l1 = labelno;
        labelno = labelno + 1;
        l2 = labelno;
        labelno = labelno + 1;
        emitarg('B', l1);
        expect('(');
        expr();
        expect(')');
        emitarg('Z', l2);
        stmt();
        emitarg('J', l1);
        emitarg('B', l2);
        return;
    }
    if (tok == 8) {             // print
        next();
        expr();
        emit2('P', 'R');
        expect(';');
        return;
    }
    if (tok == 3 && tokval == '{') {
        next();
        while (!(tok == 3 && tokval == '}') && tok != 0)
            stmt();
        expect('}');
        return;
    }
    if (tok == 2) {             // assignment
        slot = tokval;
        next();
        expect('=');
        expr();
        emitarg('S', slot);     // STORE slot
        expect(';');
        return;
    }
    errors = errors + 1;
    next();
}

int main() {
    next();
    while (tok != 0)
        stmt();
    puts("; ops=");
    puti(emitted);
    puts(" syms=");
    puti(nsyms);
    puts(" errs=");
    puti(errors);
    putc('\n');
    return 0;
}
)";
    w.datasets.push_back(
        {"c_metric", generateTinyProgram(0xCC, 48000, false)});
    w.datasets.push_back(
        {"fortran_metric", generateTinyProgram(0xFF, 48000, true)});
    return w;
}

} // namespace ifprob::workloads

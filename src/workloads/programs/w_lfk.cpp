#include "workloads/workload.h"

namespace ifprob::workloads {

/**
 * Livermore FORTRAN Kernels analogue: six of the classic loops (hydro
 * fragment, ICCG, inner product, tri-diagonal elimination, first-order
 * recurrence, numerical integration) run repeatedly, as in subroutine
 * KERNEL. Reads no dataset.
 */
Workload
makeLfk()
{
    Workload w;
    w.name = "lfk";
    w.description = "Livermore-loop kernels (6 classic loops)";
    w.fortran_like = true;
    w.source = R"(
// Livermore FORTRAN Kernel analogues.
// Disabled per-pass checksum verification (small dead-code carrier).
int verify_passes = 0;
float pass_check = 0.0;
float xv[2048];
float yv[2048];
float zv[2048];
float uv[2048];
int seed = 7;

float frand() {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed / 2147483648.0;
}

void init() {
    int i;
    for (i = 0; i < 2048; i++) {
        xv[i] = frand();
        yv[i] = frand();
        zv[i] = frand();
        uv[i] = frand();
    }
}

// Kernel 1: hydro fragment.
float k1(int n) {
    int k;
    float q, r, t;
    q = 0.5;
    r = 4.86;
    t = 276.0;
    for (k = 0; k < n; k++)
        xv[k] = q + yv[k] * (r * zv[k + 10] + t * zv[k + 11]);
    return xv[n / 2];
}

// Kernel 2: ICCG excerpt (incomplete Cholesky conjugate gradient).
float k2(int n) {
    int ipntp, ipnt, ii, i, k;
    ipntp = 0;
    ii = n;
    while (ii > 1) {
        ipnt = ipntp;
        ipntp = ipntp + ii;
        ii = ii / 2;
        i = ipntp - 1;
        for (k = ipnt + 1; k < ipntp; k += 2) {
            i = i + 1;
            xv[i] = xv[k] - uv[k] * xv[k - 1] - uv[k + 1] * xv[k + 1];
        }
    }
    return xv[ipntp];
}

// Kernel 3: inner product.
float k3(int n) {
    int k;
    float q;
    q = 0.0;
    for (k = 0; k < n; k++)
        q = q + zv[k] * xv[k];
    return q;
}

// Kernel 5: tri-diagonal elimination, below diagonal.
float k5(int n) {
    int k;
    for (k = 1; k < n; k++)
        xv[k] = zv[k] * (yv[k] - xv[k - 1]);
    return xv[n - 1];
}

// Kernel 11: first order linear recurrence.
float k11(int n) {
    int k;
    xv[0] = yv[0];
    for (k = 1; k < n; k++)
        xv[k] = xv[k - 1] + yv[k];
    return xv[n - 1];
}

// Kernel 6-flavoured: general linear recurrence equations.
float k6(int n) {
    int i, k;
    float sum;
    for (i = 1; i < n; i++) {
        sum = 0.0;
        for (k = 0; k < i; k++)
            sum = sum + zv[i - k - 1] * yv[k];
        xv[i] = xv[i] + sum * 0.0001;
    }
    return xv[n - 1];
}

int main() {
    int pass;
    float check;
    init();
    check = 0.0;
    // The authentic Livermore loop length is n=101; short loops mean the
    // loop-exit mispredictions come around often, which is why LFK sits
    // low in the paper's Table 3 (399 instrs/break) despite being pure
    // FORTRAN.
    for (pass = 0; pass < 220; pass++) {
        if (verify_passes) {
            int vi;
            pass_check = 0.0;
            for (vi = 0; vi < 2048; vi++)
                pass_check = pass_check + xv[vi];
            putf(pass_check);
        }
        check = check + k1(101);
        check = check + k2(512);
        check = check + k3(101);
        check = check + k5(101);
        check = check + k11(101);
        check = check + k6(64);
    }
    putf(check);
    putc('\n');
    return 0;
}
)";
    w.datasets.push_back({"(builtin)", ""});
    return w;
}

} // namespace ifprob::workloads

#include "workloads/workload.h"

namespace ifprob::workloads {

/**
 * matrix300 analogue: dense LU factorization with partial pivoting plus
 * triangular solves, on a deterministically generated 300x300 system.
 * Essentially branch-free inner loops; extremely predictable (paper
 * Table 3: 4853 instructions per break). Reads no dataset.
 */
Workload
makeMatrix300()
{
    Workload w;
    w.name = "matrix300";
    w.description = "dense LU solver with partial pivoting (300x300)";
    w.fortran_like = true;
    w.source = R"(
// matrix300 analogue: LU factorization + solve.
// Library-style configuration switches, compiled in but disabled — the
// paper measured 29% dynamic dead code in matrix300, dominated by
// exactly this kind of never-taken instrumentation in the hot kernel.
int count_flops = 0;
int check_growth = 0;
int refine_steps = 0;
int N = 300;
float a[90000];
float b[300];
float xs[300];
int piv[300];
int seed = 12345;
int flops = 0;
float growth = 0.0;

float frand() {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed / 2147483648.0 - 0.5;
}

void build() {
    int i, j;
    for (i = 0; i < 300; i++) {
        for (j = 0; j < 300; j++)
            a[i * 300 + j] = frand();
        a[i * 300 + i] = a[i * 300 + i] + 8.0;  // diagonal dominance
        b[i] = frand() * 4.0;
    }
}

int factor() {
    int k, i, j, p;
    float maxval, v, mult;
    for (k = 0; k < 300; k++) {
        // Partial pivot search.
        p = k;
        maxval = fabs(a[k * 300 + k]);
        for (i = k + 1; i < 300; i++) {
            v = fabs(a[i * 300 + k]);
            if (v > maxval) {
                maxval = v;
                p = i;
            }
        }
        piv[k] = p;
        if (maxval < 1.0e-12)
            return 0;
        if (p != k) {
            for (j = 0; j < 300; j++) {
                v = a[k * 300 + j];
                a[k * 300 + j] = a[p * 300 + j];
                a[p * 300 + j] = v;
            }
            v = b[k];
            b[k] = b[p];
            b[p] = v;
        }
        // Eliminate below the pivot: the hot, branch-free kernel.
        for (i = k + 1; i < 300; i++) {
            mult = a[i * 300 + k] / a[k * 300 + k];
            a[i * 300 + k] = mult;
            for (j = k + 1; j < 300; j++) {
                a[i * 300 + j] = a[i * 300 + j] - mult * a[k * 300 + j];
                if (count_flops)
                    flops = flops + 2;
                if (check_growth)
                    growth = fmax2(growth, fabs(a[i * 300 + j]));
            }
            b[i] = b[i] - mult * b[k];
        }
    }
    return 1;
}

void solve() {
    int i, j;
    float sum;
    for (i = 299; i >= 0; i--) {
        sum = b[i];
        for (j = i + 1; j < 300; j++)
            sum = sum - a[i * 300 + j] * xs[j];
        xs[i] = sum / a[i * 300 + i];
    }
}

int main() {
    int i;
    float norm;
    build();
    if (!factor()) {
        puts("singular\n");
        return 1;
    }
    solve();
    // Optional iterative refinement, disabled in this configuration.
    for (i = 0; i < refine_steps; i++) {
        int r2, c2;
        float acc;
        for (r2 = 0; r2 < 300; r2++) {
            acc = 0.0;
            for (c2 = 0; c2 < 300; c2++)
                acc = acc + a[r2 * 300 + c2] * xs[c2];
            b[r2] = b[r2] - acc;
        }
        solve();
    }
    norm = 0.0;
    for (i = 0; i < 300; i++)
        norm = norm + xs[i] * xs[i];
    putf(sqrt(norm));
    putc('\n');
    return 0;
}
)";
    w.datasets.push_back({"(builtin)", ""});
    return w;
}

} // namespace ifprob::workloads

#include "workloads/workload.h"

namespace ifprob::workloads {

namespace {

/**
 * A Lisp interpreter in minic, standing in for SPEC's li (XLISP 1.6).
 * Tagged cons cells in a large arena, an interning reader, assoc-list
 * environments, special forms (quote/if/define/set!/lambda/while/begin)
 * and a builtin table — "constantly looking at lisp instructions and
 * deciding what to do", the flow-of-control texture the paper highlights.
 */
const char kLiSource[] = R"(
// li analogue: a small Lisp. Cells are parallel arrays; nil is -1.
// tags: 0=cons, 1=int(car=value), 2=symbol(car=symtab idx),
//       3=builtin(car=op), 4=lambda(car=(params . body...), cdr=env)
int tag[16000000];
int car_[16000000];
int cdr_[16000000];
int hp = 0;

int symoff[512];
int symlen[512];
int symcell[512];
int symval[512];
int nsyms = 0;
int symchars[8192];
int nchars = 0;
int tmpname[64];
int tmplen = 0;

int s_quote = -1;
int s_if = -1;
int s_define = -1;
int s_set = -1;
int s_lambda = -1;
int s_while = -1;
int s_begin = -1;
int lk = -2;

int cons(int a, int d) {
    if (hp >= 16000000) {
        puts("heap exhausted\n");
        halt();
    }
    tag[hp] = 0;
    car_[hp] = a;
    cdr_[hp] = d;
    hp = hp + 1;
    return hp - 1;
}

int mkint(int v) {
    int c;
    c = cons(v, -1);
    tag[c] = 1;
    return c;
}

int mkbuiltin(int op) {
    int c;
    c = cons(op, -1);
    tag[c] = 3;
    return c;
}

// Intern tmpname[0..tmplen); returns the symbol-table index.
int intern() {
    int i, j, off, match;
    for (i = 0; i < nsyms; i++) {
        if (symlen[i] == tmplen) {
            match = 1;
            off = symoff[i];
            for (j = 0; j < tmplen; j++) {
                if (symchars[off + j] != tmpname[j])
                    match = 0;
            }
            if (match)
                return i;
        }
    }
    symoff[nsyms] = nchars;
    symlen[nsyms] = tmplen;
    for (j = 0; j < tmplen; j++) {
        symchars[nchars] = tmpname[j];
        nchars = nchars + 1;
    }
    symval[nsyms] = -2;   // unbound
    symcell[nsyms] = cons(nsyms, -1);
    tag[symcell[nsyms]] = 2;
    nsyms = nsyms + 1;
    return nsyms - 1;
}

// --- reader ---------------------------------------------------------------

int rdch() {
    int c;
    if (lk != -2) {
        c = lk;
        lk = -2;
        return c;
    }
    return getc();
}

int peekc() {
    if (lk == -2)
        lk = getc();
    return lk;
}

void skipws() {
    int c;
    c = peekc();
    while (c == ' ' || c == '\n' || c == '\t' || c == '\r' || c == ';') {
        if (c == ';') {
            while (c != '\n' && c != -1)
                c = rdch();
        } else {
            rdch();
        }
        c = peekc();
    }
}

int issymch(int c) {
    if (c == -1 || c == ' ' || c == '\n' || c == '\t' || c == '\r')
        return 0;
    if (c == '(' || c == ')' || c == ';')
        return 0;
    return 1;
}

int readnum(int sign) {
    int v, c;
    v = 0;
    c = peekc();
    while (c >= '0' && c <= '9') {
        v = v * 10 + (rdch() - '0');
        c = peekc();
    }
    return mkint(sign * v);
}

int readx() {
    int c, head, tail, x, q;
    skipws();
    c = peekc();
    if (c == -1)
        return -3;              // end of program text
    if (c == '(') {
        rdch();
        head = -1;
        tail = -1;
        skipws();
        while (peekc() != ')' && peekc() != -1) {
            x = readx();
            if (x == -3)
                break;
            q = cons(x, -1);
            if (head == -1)
                head = q;
            else
                cdr_[tail] = q;
            tail = q;
            skipws();
        }
        rdch();                 // ')'
        return head;
    }
    if (c == 39) {              // quote character
        rdch();
        x = readx();
        return cons(symcell[s_quote], cons(x, -1));
    }
    if (c >= '0' && c <= '9')
        return readnum(1);
    if (c == '-') {
        rdch();
        if (peekc() >= '0' && peekc() <= '9')
            return readnum(-1);
        tmpname[0] = '-';
        tmplen = 1;
        c = peekc();
        while (issymch(c)) {
            tmpname[tmplen] = rdch();
            tmplen = tmplen + 1;
            c = peekc();
        }
        return symcell[intern()];
    }
    tmplen = 0;
    while (issymch(c)) {
        tmpname[tmplen] = rdch();
        tmplen = tmplen + 1;
        c = peekc();
    }
    if (tmplen == 0) {
        rdch();                 // skip a stray character (e.g. lone ')')
        return readx();
    }
    return symcell[intern()];
}

// --- environments -----------------------------------------------------------

int lookup(int idx, int env) {
    int e, pair;
    e = env;
    while (e != -1) {
        pair = car_[e];
        if (car_[pair] == idx)
            return cdr_[pair];
        e = cdr_[e];
    }
    if (symval[idx] == -2) {
        puts("unbound symbol\n");
        halt();
    }
    return symval[idx];
}

void assign(int idx, int val, int env) {
    int e, pair;
    e = env;
    while (e != -1) {
        pair = car_[e];
        if (car_[pair] == idx) {
            cdr_[pair] = val;
            return;
        }
        e = cdr_[e];
    }
    symval[idx] = val;
}

// --- printer ----------------------------------------------------------------

void print_(int x) {
    int off, j, first;
    if (x == -1) {
        puts("nil");
        return;
    }
    if (tag[x] == 1) {
        puti(car_[x]);
        return;
    }
    if (tag[x] == 2) {
        off = symoff[car_[x]];
        for (j = 0; j < symlen[car_[x]]; j++)
            putc(symchars[off + j]);
        return;
    }
    if (tag[x] == 3) {
        puts("<builtin>");
        return;
    }
    if (tag[x] == 4) {
        puts("<lambda>");
        return;
    }
    putc('(');
    first = 1;
    while (x != -1 && tag[x] == 0) {
        if (!first)
            putc(' ');
        first = 0;
        print_(car_[x]);
        x = cdr_[x];
    }
    if (x != -1) {
        puts(" . ");
        print_(x);
    }
    putc(')');
}

// --- evaluator ----------------------------------------------------------------

int intval(int x) {
    if (x == -1 || tag[x] != 1) {
        puts("expected integer\n");
        halt();
    }
    return car_[x];
}

int truth(int v) {
    if (v)
        return symval[intern_t];
    return -1;
}

int intern_t = -1;

int builtin(int op, int args) {
    int a, b, x;
    if (op == 11) {             // null
        if (car_[args] == -1)
            return truth(1);
        return -1;
    }
    if (op == 12)               // car
        return car_[car_[args]];
    if (op == 13)               // cdr
        return cdr_[car_[args]];
    if (op == 14)               // cons
        return cons(car_[args], car_[cdr_[args]]);
    if (op == 15) {             // not
        if (car_[args] == -1)
            return truth(1);
        return -1;
    }
    if (op == 16) {             // print
        print_(car_[args]);
        return car_[args];
    }
    if (op == 17) {             // terpri
        putc('\n');
        return -1;
    }
    if (op == 18) {             // eq
        if (car_[args] == car_[cdr_[args]])
            return truth(1);
        return -1;
    }
    if (op == 19) {             // atom
        x = car_[args];
        if (x == -1 || tag[x] != 0)
            return truth(1);
        return -1;
    }
    a = intval(car_[args]);
    b = intval(car_[cdr_[args]]);
    if (op == 1) return mkint(a + b);
    if (op == 2) return mkint(a - b);
    if (op == 3) return mkint(a * b);
    if (op == 4) {
        if (b == 0) {
            puts("division by zero\n");
            halt();
        }
        return mkint(a / b);
    }
    if (op == 5) {
        if (b == 0) {
            puts("division by zero\n");
            halt();
        }
        return mkint(a % b);
    }
    if (op == 6) return truth(a < b);
    if (op == 7) return truth(a > b);
    if (op == 8) return truth(a == b);
    if (op == 9) return truth(a <= b);
    if (op == 10) return truth(a >= b);
    puts("unknown builtin\n");
    halt();
    return -1;
}

int apply(int f, int args) {
    int params, body, env, pair, r;
    if (f == -1 || (tag[f] != 3 && tag[f] != 4)) {
        puts("apply: not a function\n");
        halt();
    }
    if (tag[f] == 3)
        return builtin(car_[f], args);
    params = car_[car_[f]];
    body = cdr_[car_[f]];
    env = cdr_[f];
    while (params != -1) {
        if (args == -1) {
            puts("too few arguments\n");
            halt();
        }
        pair = cons(car_[car_[params]], car_[args]);
        env = cons(pair, env);
        params = cdr_[params];
        args = cdr_[args];
    }
    r = -1;
    while (body != -1) {
        r = eval(car_[body], env);
        body = cdr_[body];
    }
    return r;
}

int evlis(int xs, int env) {
    int head, tail, q;
    head = -1;
    tail = -1;
    while (xs != -1) {
        q = cons(eval(car_[xs], env), -1);
        if (head == -1)
            head = q;
        else
            cdr_[tail] = q;
        tail = q;
        xs = cdr_[xs];
    }
    return head;
}

int eval(int x, int env) {
    int t2, h, idx, f, args, b, r, lam;
    if (x == -1)
        return -1;
    t2 = tag[x];
    if (t2 == 1)
        return x;
    if (t2 == 2)
        return lookup(car_[x], env);
    if (t2 != 0)
        return x;
    h = car_[x];
    if (h != -1 && tag[h] == 2) {
        idx = car_[h];
        if (idx == s_quote)
            return car_[cdr_[x]];
        if (idx == s_if) {
            if (eval(car_[cdr_[x]], env) != -1)
                return eval(car_[cdr_[cdr_[x]]], env);
            if (cdr_[cdr_[cdr_[x]]] == -1)
                return -1;
            return eval(car_[cdr_[cdr_[cdr_[x]]]], env);
        }
        if (idx == s_define) {
            r = eval(car_[cdr_[cdr_[x]]], env);
            symval[car_[car_[cdr_[x]]]] = r;
            return r;
        }
        if (idx == s_set) {
            r = eval(car_[cdr_[cdr_[x]]], env);
            assign(car_[car_[cdr_[x]]], r, env);
            return r;
        }
        if (idx == s_lambda) {
            lam = cons(cdr_[x], env);
            tag[lam] = 4;
            return lam;
        }
        if (idx == s_while) {
            while (eval(car_[cdr_[x]], env) != -1) {
                b = cdr_[cdr_[x]];
                while (b != -1) {
                    eval(car_[b], env);
                    b = cdr_[b];
                }
            }
            return -1;
        }
        if (idx == s_begin) {
            r = -1;
            b = cdr_[x];
            while (b != -1) {
                r = eval(car_[b], env);
                b = cdr_[b];
            }
            return r;
        }
    }
    f = eval(h, env);
    args = evlis(cdr_[x], env);
    return apply(f, args);
}

// --- initialization --------------------------------------------------------

// Interned names, 0-separated: 7 special forms, then t, then builtins in
// op order (+ - * / rem < > = <= >= null car cdr cons not print terpri
// eq atom).
int names[140] = {
    'q','u','o','t','e',0, 'i','f',0, 'd','e','f','i','n','e',0,
    's','e','t','!',0, 'l','a','m','b','d','a',0, 'w','h','i','l','e',0,
    'b','e','g','i','n',0, 't',0,
    '+',0, '-',0, '*',0, '/',0, 'r','e','m',0,
    '<',0, '>',0, '=',0, '<','=',0, '>','=',0,
    'n','u','l','l',0, 'c','a','r',0, 'c','d','r',0, 'c','o','n','s',0,
    'n','o','t',0, 'p','r','i','n','t',0, 't','e','r','p','r','i',0,
    'e','q',0, 'a','t','o','m',0, 'n','i','l',0
};

void init() {
    int p, which, idx;
    p = 0;
    which = 0;
    while (which < 28) {
        tmplen = 0;
        while (names[p] != 0) {
            tmpname[tmplen] = names[p];
            tmplen = tmplen + 1;
            p = p + 1;
        }
        p = p + 1;
        idx = intern();
        if (which == 0) s_quote = idx;
        else if (which == 1) s_if = idx;
        else if (which == 2) s_define = idx;
        else if (which == 3) s_set = idx;
        else if (which == 4) s_lambda = idx;
        else if (which == 5) s_while = idx;
        else if (which == 6) s_begin = idx;
        else if (which == 7) {
            intern_t = idx;
            symval[idx] = symcell[idx];
        } else if (which == 27) {
            symval[idx] = -1;   // nil evaluates to the empty list
        } else {
            symval[idx] = mkbuiltin(which - 7);
        }
        which = which + 1;
    }
}

int main() {
    int x;
    init();
    x = readx();
    while (x != -3) {
        eval(x, -1);
        x = readx();
    }
    return 0;
}
)";

const char kEightQueens[] = R"(
; classic n-queens search (SPEC li input flavour)
(define nq 8)
(define count 0)
(define conflict (lambda (row placed dist)
  (if (null placed) nil
      (if (= (car placed) row) t
          (if (= (- (car placed) row) dist) t
              (if (= (- row (car placed)) dist) t
                  (conflict row (cdr placed) (+ dist 1))))))))
(define place (lambda (col placed)
  (if (= col nq)
      (set! count (+ count 1))
      (tryrow 1 col placed))))
(define tryrow (lambda (row col placed)
  (if (> row nq) nil
      (begin
        (if (conflict row placed 1)
            nil
            (place (+ col 1) (cons row placed)))
        (tryrow (+ row 1) col placed)))))
(place 0 (quote ()))
(print count)
(terpri)
)";

const char kKittyv[] = R"(
; tomcatv rewritten in lisp: fixed-point 1-D mesh relaxation
(define build (lambda (n)
  (if (= n 0) (quote ())
      (cons (* (rem (* n 37) 19) 100) (build (- n 1))))))
(define relax (lambda (xs prev)
  (if (null (cdr xs))
      (cons (car xs) (quote ()))
      (cons (/ (+ (+ prev (* 2 (car xs))) (car (cdr xs))) 4)
            (relax (cdr xs) (car xs))))))
(define total (lambda (xs)
  (if (null xs) 0 (+ (car xs) (total (cdr xs))))))
(define xs (build 200))
(define iter 0)
(while (< iter 120)
  (begin
    (set! xs (relax xs 0))
    (set! iter (+ iter 1))))
(print (total xs))
(terpri)
)";

const char kSievel[] = R"(
; sieve-of-eratosthenes, output of the pseudo-assembly to lisp simulator
(define upto 600)
(define build (lambda (n acc)
  (if (< n 2) acc (build (- n 1) (cons n acc)))))
(define filt (lambda (p xs)
  (if (null xs) (quote ())
      (if (= (rem (car xs) p) 0)
          (filt p (cdr xs))
          (cons (car xs) (filt p (cdr xs)))))))
(define nums (build upto (quote ())))
(define primes 0)
(define lastp 0)
(while (not (null nums))
  (begin
    (set! primes (+ primes 1))
    (set! lastp (car nums))
    (set! nums (filt (car nums) (cdr nums)))))
(print primes)
(terpri)
(print lastp)
(terpri)
)";

std::string
nineQueens()
{
    std::string s = kEightQueens;
    auto pos = s.find("(define nq 8)");
    s.replace(pos, 13, "(define nq 9)");
    return s;
}

} // namespace

Workload
makeLi()
{
    Workload w;
    w.name = "li";
    w.description = "Lisp interpreter (XLISP analogue) over 4 lisp programs";
    w.fortran_like = false;
    w.source = kLiSource;
    w.datasets.push_back({"8queens", kEightQueens});
    w.datasets.push_back({"9queens", nineQueens()});
    w.datasets.push_back({"kittyv", kKittyv});
    w.datasets.push_back({"sievel", kSievel});
    return w;
}

} // namespace ifprob::workloads

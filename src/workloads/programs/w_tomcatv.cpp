#include "workloads/workload.h"

namespace ifprob::workloads {

/**
 * tomcatv analogue: vectorized mesh generation with SOR relaxation on a
 * 64x64 grid. Long straight-line floating-point loop bodies with almost
 * no data-dependent branching — per the paper one of the most predictable
 * programs (Table 3: 7461 instructions per break with self-prediction).
 * Reads no dataset.
 */
Workload
makeTomcatv()
{
    Workload w;
    w.name = "tomcatv";
    w.description = "mesh generation with SOR solver (64x64 grid)";
    w.fortran_like = true;
    w.source = R"(
// tomcatv analogue: mesh generation + SOR relaxation.
// Disabled residual diagnostics (paper: tomcatv carried 14% dynamic
// dead code with DCE off).
int track_residuals = 0;
int residual_bins = 0;
int bins[16];
float worst_rx = 0.0;
int N = 64;
float x[4096];
float y[4096];
float newx[4096];
float newy[4096];

void init() {
    int i, j;
    for (i = 0; i < 64; i++) {
        for (j = 0; j < 64; j++) {
            x[i * 64 + j] = j / 63.0 + 0.08 * sin(i * 0.21);
            y[i * 64 + j] = i / 63.0 + 0.08 * cos(j * 0.17);
        }
    }
}

float relax() {
    int i, j, p;
    float xx, yx, xy, yy, a, b, c, rx, ry, maxres, omega;
    maxres = 0.0;
    omega = 0.8;
    for (i = 1; i < 63; i++) {
        for (j = 1; j < 63; j++) {
            p = i * 64 + j;
            // Central differences of the mapping.
            xx = (x[p + 1] - x[p - 1]) * 0.5;
            yx = (y[p + 1] - y[p - 1]) * 0.5;
            xy = (x[p + 64] - x[p - 64]) * 0.5;
            yy = (y[p + 64] - y[p - 64]) * 0.5;
            a = xy * xy + yy * yy;
            b = xx * xy + yx * yy;
            c = xx * xx + yx * yx;
            // Residuals of the elliptic grid equations.
            rx = a * (x[p + 1] - 2.0 * x[p] + x[p - 1])
               - 0.5 * b * (x[p + 65] - x[p + 63] - x[p - 63] + x[p - 65])
               + c * (x[p + 64] - 2.0 * x[p] + x[p - 64]);
            ry = a * (y[p + 1] - 2.0 * y[p] + y[p - 1])
               - 0.5 * b * (y[p + 65] - y[p + 63] - y[p - 63] + y[p - 65])
               + c * (y[p + 64] - 2.0 * y[p] + y[p - 64]);
            if (track_residuals)
                worst_rx = fmax2(worst_rx, fabs(rx));
            if (residual_bins)
                bins[ftoi(fabs(rx) * 1000.0) & 15] =
                    bins[ftoi(fabs(rx) * 1000.0) & 15] + 1;
            newx[p] = x[p] + omega * rx / (2.0 * (a + c) + 1.0e-9);
            newy[p] = y[p] + omega * ry / (2.0 * (a + c) + 1.0e-9);
            maxres = fmax2(maxres, fabs(rx) + fabs(ry));
        }
    }
    for (i = 1; i < 63; i++) {
        for (j = 1; j < 63; j++) {
            p = i * 64 + j;
            x[p] = newx[p];
            y[p] = newy[p];
        }
    }
    return maxres;
}

int main() {
    int iter;
    float res;
    init();
    res = 0.0;
    for (iter = 0; iter < 60; iter++)
        res = relax();
    putf(res);
    putc('\n');
    putf(x[33 * 64 + 33]);
    putc('\n');
    return 0;
}
)";
    w.datasets.push_back({"(builtin)", ""});
    return w;
}

} // namespace ifprob::workloads

#include "workloads/workload.h"

namespace ifprob::workloads {

/**
 * nasa7 analogue: seven numeric kernels (matrix multiply, 1-D complex
 * FFT, Cholesky factorization, tridiagonal solves, Gaussian elimination,
 * polynomial emission, successive over-relaxation), each printing a
 * checksum. Branch behaviour is dominated by highly regular loop tests.
 * Reads no dataset.
 */
Workload
makeNasa7()
{
    Workload w;
    w.name = "nasa7";
    w.description = "seven synthetic numeric kernels";
    w.fortran_like = true;
    w.source = R"(
// nasa7 analogue: 7 numeric kernels.
// Disabled library instrumentation (paper: nasa7 carried 20% dynamic
// dead code when DCE was off).
int trace_kernels = 0;
int count_ops = 0;
int opcount = 0;
float ma[4096];
float mb[4096];
float mc[4096];
float re[1024];
float im[1024];
float diag[1024];
float sub[1024];
float sup[1024];
float rhs[1024];
int seed = 31415;

float frand() {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed / 2147483648.0;
}

// Kernel 1: MXM - 48x48 matrix multiply.
float mxm() {
    int i, j, k;
    float sum;
    for (i = 0; i < 48; i++)
        for (j = 0; j < 48; j++) {
            ma[i * 48 + j] = frand();
            mb[i * 48 + j] = frand();
        }
    for (i = 0; i < 48; i++) {
        for (j = 0; j < 48; j++) {
            sum = 0.0;
            for (k = 0; k < 48; k++) {
                sum = sum + ma[i * 48 + k] * mb[k * 48 + j];
                if (count_ops)
                    opcount = opcount + 2;
            }
            mc[i * 48 + j] = sum;
        }
    }
    return mc[7 * 48 + 11];
}

// Kernel 2: CFFT - iterative radix-2 complex FFT, 512 points.
float cfft() {
    int n, i, j, bit, len, half, k, p;
    float wr, wi, ur, ui, tr, ti, ang;
    n = 512;
    for (i = 0; i < n; i++) {
        re[i] = sin(i * 0.1);
        im[i] = 0.0;
    }
    // Bit reversal permutation.
    j = 0;
    for (i = 0; i < n; i++) {
        if (i < j) {
            tr = re[i]; re[i] = re[j]; re[j] = tr;
            ti = im[i]; im[i] = im[j]; im[j] = ti;
        }
        bit = n / 2;
        while (bit >= 1 && j >= bit) {
            j = j - bit;
            bit = bit / 2;
        }
        j = j + bit;
    }
    // Butterflies.
    len = 2;
    while (len <= n) {
        half = len / 2;
        ang = -6.28318530717958647 / len;
        for (i = 0; i < n; i += len) {
            for (k = 0; k < half; k++) {
                wr = cos(ang * k);
                wi = sin(ang * k);
                p = i + k;
                ur = re[p];
                ui = im[p];
                if (count_ops)
                    opcount = opcount + 10;
                tr = wr * re[p + half] - wi * im[p + half];
                ti = wr * im[p + half] + wi * re[p + half];
                re[p] = ur + tr;
                im[p] = ui + ti;
                re[p + half] = ur - tr;
                im[p + half] = ui - ti;
            }
        }
        len = len * 2;
    }
    return re[31] + im[17];
}

// Kernel 3: CHOLSKY - Cholesky factorization of a 40x40 SPD matrix.
float cholsky() {
    int n, i, j, k;
    float sum;
    n = 40;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++)
            ma[i * n + j] = 1.0 / (i + j + 1.0);
        ma[i * n + i] = ma[i * n + i] + n;
    }
    for (i = 0; i < n; i++) {
        for (j = 0; j <= i; j++) {
            sum = ma[i * n + j];
            for (k = 0; k < j; k++)
                sum = sum - mb[i * n + k] * mb[j * n + k];
            if (i == j)
                mb[i * n + j] = sqrt(sum);
            else
                mb[i * n + j] = sum / mb[j * n + j];
        }
    }
    return mb[39 * n + 39];
}

// Kernel 4: VPENTA-flavoured - batched tridiagonal (Thomas) solves.
float vpenta() {
    int n, i, pass;
    float m, last;
    n = 1000;
    last = 0.0;
    for (pass = 0; pass < 40; pass++) {
        for (i = 0; i < n; i++) {
            diag[i] = 4.0 + 0.01 * i;
            sub[i] = 1.0;
            sup[i] = 1.0;
            rhs[i] = frand();
        }
        for (i = 1; i < n; i++) {
            if (count_ops)
                opcount = opcount + 5;
            m = sub[i] / diag[i - 1];
            diag[i] = diag[i] - m * sup[i - 1];
            rhs[i] = rhs[i] - m * rhs[i - 1];
        }
        rhs[n - 1] = rhs[n - 1] / diag[n - 1];
        for (i = n - 2; i >= 0; i--)
            rhs[i] = (rhs[i] - sup[i] * rhs[i + 1]) / diag[i];
        last = rhs[0];
    }
    return last;
}

// Kernel 5: GMTRY-flavoured - Gaussian elimination, 40x40.
float gmtry() {
    int n, i, j, k;
    float mult;
    n = 40;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++)
            ma[i * n + j] = frand();
        ma[i * n + i] = ma[i * n + i] + 6.0;
        rhs[i] = 1.0;
    }
    for (k = 0; k < n; k++) {
        for (i = k + 1; i < n; i++) {
            mult = ma[i * n + k] / ma[k * n + k];
            for (j = k; j < n; j++)
                ma[i * n + j] = ma[i * n + j] - mult * ma[k * n + j];
            rhs[i] = rhs[i] - mult * rhs[k];
        }
    }
    return ma[(n - 1) * n + (n - 1)];
}

// Kernel 6: EMIT-flavoured - Horner polynomial evaluation sweep.
float emit() {
    int i, d;
    float xvar, acc, total;
    total = 0.0;
    for (i = 0; i < 1200; i++) {
        xvar = i * 0.0008;
        acc = 0.0;
        for (d = 0; d < 48; d++)
            acc = acc * xvar + (d % 3 == 0 ? 1.5 : -0.5);
        total = total + acc;
    }
    return total;
}

// Kernel 7: SOR smoothing sweep on a 64x64 grid (BTRIX stand-in).
float sor() {
    int i, j, it;
    for (i = 0; i < 4096; i++)
        ma[i] = frand();
    for (it = 0; it < 10; it++) {
        for (i = 1; i < 63; i++)
            for (j = 1; j < 63; j++) {
                if (count_ops)
                    opcount = opcount + 4;
                if (trace_kernels)
                    putf(ma[i * 64 + j]);
                ma[i * 64 + j] = 0.25 * (ma[i * 64 + j - 1] +
                                         ma[i * 64 + j + 1] +
                                         ma[(i - 1) * 64 + j] +
                                         ma[(i + 1) * 64 + j]);
            }
    }
    return ma[32 * 64 + 32];
}

int main() {
    putf(mxm());    putc('\n');
    putf(cfft());   putc('\n');
    putf(cholsky());putc('\n');
    putf(vpenta()); putc('\n');
    putf(gmtry());  putc('\n');
    putf(emit());   putc('\n');
    putf(sor());    putc('\n');
    return 0;
}
)";
    w.datasets.push_back({"(builtin)", ""});
    return w;
}

} // namespace ifprob::workloads

#include "workloads/workload.h"

#include "support/str.h"

namespace ifprob::workloads {

namespace {

/**
 * Equation text for an N-bit ripple-carry adder in the "naive sum and
 * carry equations" style of the paper's add4/add5/add6 datasets.
 * Inputs: x0..xN-1 = a, xN..x2N-1 = b, x2N = carry-in. Outputs are
 * defined in order and may reference earlier outputs (z-references), as
 * eqntott's intermediate definitions allowed.
 */
std::string
adderEquations(int bits)
{
    std::string out = strPrintf("i %d\no %d\n", 2 * bits + 1, 2 * bits);
    int z = 0;
    int carry_ref = -1; // -1 means carry-in input x(2*bits)
    auto carry_term = [&](void) -> std::string {
        if (carry_ref < 0)
            return strPrintf("x%d", 2 * bits);
        return strPrintf("z%d", carry_ref);
    };
    for (int i = 0; i < bits; ++i) {
        std::string a = strPrintf("x%d", i);
        std::string b = strPrintf("x%d", bits + i);
        std::string c = carry_term();
        // Sum bit: 3-variable XOR as a naive sum of products.
        out += strPrintf(
            "z%d = (%s & !%s & !%s) | (!%s & %s & !%s) | "
            "(!%s & !%s & %s) | (%s & %s & %s) ;\n",
            z, a.c_str(), b.c_str(), c.c_str(), a.c_str(), b.c_str(),
            c.c_str(), a.c_str(), b.c_str(), c.c_str(), a.c_str(),
            b.c_str(), c.c_str());
        ++z;
        // Carry out: majority.
        out += strPrintf("z%d = (%s & %s) | (%s & %s) | (%s & %s) ;\n", z,
                         a.c_str(), b.c_str(), a.c_str(), c.c_str(),
                         b.c_str(), c.c_str());
        carry_ref = z;
        ++z;
    }
    return out;
}

/** Priority encoder: z_k = x_k & !x_{k+1} & ... & !x_{n-1}. */
std::string
priorityEquations(int bits)
{
    std::string out = strPrintf("i %d\no %d\n", bits, bits);
    for (int k = 0; k < bits; ++k) {
        out += strPrintf("z%d = x%d", k, k);
        for (int j = k + 1; j < bits; ++j)
            out += strPrintf(" & !x%d", j);
        out += " ;\n";
    }
    return out;
}

} // namespace

/**
 * eqntott analogue: parses boolean equations (infix with & | ! and
 * parentheses, inputs x<i>, back-references z<i>) and prints the full
 * truth table by enumerating every input vector. Recursive-descent
 * parsing plus a recursive tree-walking evaluator with short-circuit
 * logic make this the paper's canonical branchy C/integer program.
 */
Workload
makeEqntott()
{
    Workload w;
    w.name = "eqntott";
    w.description = "boolean equations to truth table";
    w.fortran_like = false;
    w.source = R"(
// eqntott analogue: equation parser + truth table enumeration.
// Disabled minterm statistics (paper: eqntott carried 4% dead code).
int tally_ones = 0;
int ones = 0;
int node_op[20000];   // 0=input var, 1=and, 2=or, 3=not, 4=output ref
int node_a[20000];
int node_b[20000];
int nnodes = 0;
int roots[64];
int zval[64];
int ninputs = 0;
int noutputs = 0;
int lookahead = -2;

int peekch() {
    int c;
    if (lookahead == -2) {
        c = ngetc();
        while (c == ' ' || c == '\n' || c == '\t' || c == '\r')
            c = ngetc();
        lookahead = c;
    }
    return lookahead;
}

int nextch() {
    int c;
    c = peekch();
    lookahead = -2;
    return c;
}

int newnode(int op, int a, int b) {
    node_op[nnodes] = op;
    node_a[nnodes] = a;
    node_b[nnodes] = b;
    nnodes = nnodes + 1;
    return nnodes - 1;
}

// Note: minic resolves function names program-wide, so the mutual
// recursion parse_factor -> parse_expr needs no forward declaration.
int parse_factor() {
    int c, n;
    c = nextch();
    if (c == '!')
        return newnode(3, parse_factor(), -1);
    if (c == '(') {
        n = parse_expr();
        nextch();   // ')'
        return n;
    }
    if (c == 'x')
        return newnode(0, geti(), -1);
    if (c == 'z')
        return newnode(4, geti(), -1);
    return newnode(0, 0, -1);   // malformed input: treat as x0
}

int parse_term() {
    int n;
    n = parse_factor();
    while (peekch() == '&') {
        nextch();
        n = newnode(1, n, parse_factor());
    }
    return n;
}

int parse_expr() {
    int n;
    n = parse_term();
    while (peekch() == '|') {
        nextch();
        n = newnode(2, n, parse_term());
    }
    return n;
}

int eval(int n, int row) {
    int op;
    op = node_op[n];
    if (op == 0)
        return (row >> node_a[n]) & 1;
    if (op == 1)
        return eval(node_a[n], row) && eval(node_b[n], row);
    if (op == 2)
        return eval(node_a[n], row) || eval(node_b[n], row);
    if (op == 3)
        return !eval(node_a[n], row);
    return zval[node_a[n]];
}

int main() {
    int i, row, rows, z;
    nextch();              // 'i'
    ninputs = geti();
    nextch();              // 'o'
    noutputs = geti();
    for (i = 0; i < noutputs; i++) {
        nextch();          // 'z'
        geti();            // output index (sequential)
        nextch();          // '='
        roots[i] = parse_expr();
        nextch();          // ';'
    }
    rows = 1 << ninputs;
    for (row = 0; row < rows; row++) {
        for (z = 0; z < noutputs; z++) {
            zval[z] = eval(roots[z], row);
            if (tally_ones)
                ones = ones + zval[z];
            putc('0' + zval[z]);
        }
        putc('\n');
    }
    return 0;
}
)";
    w.datasets.push_back({"add4", adderEquations(4)});
    w.datasets.push_back({"add5", adderEquations(5)});
    w.datasets.push_back({"add6", adderEquations(6)});
    w.datasets.push_back({"intpri", priorityEquations(12)});
    return w;
}

} // namespace ifprob::workloads

#include "workloads/workload.h"

#include "compiler/pipeline.h"
#include "support/error.h"
#include "vm/machine.h"
#include "workloads/datagen.h"

namespace ifprob::workloads {

namespace {

/**
 * LZW with 12-bit codes and dictionary reset, modelled on SPEC `compress`.
 * As in the paper, compression and decompression are ONE program selected
 * by a switch (here: the first input byte, 'C' or 'D'), so the two
 * workloads share every static branch site — which is what let the
 * authors observe that using one mode to predict the other "is a very
 * bad idea".
 */
const char kCompressSource[] = R"(
// LZW compress/uncompress (12-bit codes, CLEAR resets).
// Disabled compression-ratio bookkeeping (small dead-code carrier).
int show_ratio = 0;
int bytes_in = 0;
int codes_out = 0;
int ht_key[8192];
int ht_code[8192];
int dict_prefix[4096];
int dict_char[4096];
int stack[4096];
int next_code = 257;
int pending = -1;   // write-side half-pair buffer
int rpending = -1;  // read-side second-code buffer

void reset_table() {
    int i;
    for (i = 0; i < 8192; i++)
        ht_key[i] = -1;
    next_code = 257;
}

void putcode(int code) {
    if (show_ratio)
        codes_out = codes_out + 1;
    if (pending < 0) {
        pending = code;
    } else {
        putc(pending >> 4);
        putc(((pending & 15) << 4) | (code >> 8));
        putc(code & 255);
        pending = -1;
    }
}

void flushcode() {
    if (pending >= 0) {
        putc(pending >> 4);
        putc((pending & 15) << 4);
        pending = -1;
    }
}

int find(int key) {
    int h;
    h = (key * 40503) & 8191;
    while (ht_key[h] != -1 && ht_key[h] != key)
        h = (h + 1) & 8191;
    return h;
}

void compress() {
    int prefix, c, key, slot;
    reset_table();
    prefix = getc();
    if (prefix == -1) {
        flushcode();
        return;
    }
    c = getc();
    while (c != -1) {
        key = prefix * 256 + c;
        slot = find(key);
        if (ht_key[slot] == key) {
            prefix = ht_code[slot];
        } else {
            putcode(prefix);
            if (next_code < 4096) {
                ht_key[slot] = key;
                ht_code[slot] = next_code;
                next_code = next_code + 1;
            } else {
                putcode(256);   // CLEAR
                reset_table();
            }
            prefix = c;
        }
        c = getc();
    }
    putcode(prefix);
    flushcode();
}

int getcode() {
    int b0, b1, b2, code;
    if (rpending != -1) {
        code = rpending;
        rpending = -1;
        return code;
    }
    b0 = getc();
    if (b0 == -1)
        return -1;
    b1 = getc();
    if (b1 == -1)
        return -1;
    code = (b0 << 4) | (b1 >> 4);
    b2 = getc();
    if (b2 == -1)
        return code;
    rpending = ((b1 & 15) << 8) | b2;
    return code;
}

void decompress() {
    int code, old, in, k, sp;
    next_code = 257;
    old = getcode();
    if (old == -1)
        return;
    putc(old);
    k = old;
    code = getcode();
    while (code != -1) {
        if (code == 256) {      // CLEAR
            next_code = 257;
            old = getcode();
            if (old == -1)
                return;
            putc(old);
            k = old;
            code = getcode();
            continue;
        }
        in = code;
        sp = 0;
        if (code >= next_code) { // KwKwK special case
            stack[sp] = k;
            sp = sp + 1;
            code = old;
        }
        while (code >= 256) {
            stack[sp] = dict_char[code];
            sp = sp + 1;
            code = dict_prefix[code];
        }
        k = code;
        stack[sp] = k;
        sp = sp + 1;
        while (sp > 0) {
            sp = sp - 1;
            putc(stack[sp]);
        }
        if (next_code < 4096) {
            dict_prefix[next_code] = old;
            dict_char[next_code] = k;
            next_code = next_code + 1;
        }
        old = in;
        code = getcode();
    }
}

int main() {
    int mode;
    mode = getc();
    if (mode == 'C')
        compress();
    else
        decompress();
    return 0;
}
)";

/** Raw (pre-switch) inputs shared by the compress/uncompress datasets. */
std::vector<Dataset>
rawDatasets()
{
    std::vector<Dataset> out;
    out.push_back({"cmprssc", generateCSource(0x11, 60000)});
    out.push_back({"cmprss", generateBinaryish(0x22, 60000)});
    out.push_back({"long", generateProse(0x33, 180000)});
    out.push_back({"spicef", generateFortranSource(0x44, 60000)});
    out.push_back({"spice", generateNumberTable(0x55, 900, 6)});
    return out;
}

} // namespace

Workload
makeCompress()
{
    Workload w;
    w.name = "compress";
    w.description = "LZW file compression (12-bit codes)";
    w.fortran_like = false;
    w.source = kCompressSource;
    for (auto &d : rawDatasets())
        w.datasets.push_back({d.name, "C" + d.input});
    return w;
}

Workload
makeUncompress()
{
    Workload w;
    w.name = "uncompress";
    w.description = "LZW decompression (same program, decompress switch)";
    w.fortran_like = false;
    w.source = kCompressSource;

    // The uncompress inputs are the actual compressed outputs: compile the
    // shared program once and run it in compress mode over each raw
    // dataset.
    isa::Program program = compile(kCompressSource);
    vm::Machine machine(program);
    for (auto &d : rawDatasets()) {
        vm::RunResult r = machine.run("C" + d.input);
        w.datasets.push_back({d.name, "D" + r.output});
    }
    return w;
}

} // namespace ifprob::workloads

#include "workloads/workload.h"

#include "support/str.h"

namespace ifprob::workloads {

namespace {

/**
 * Netlist helpers. Format, one device per line:
 *   R a b ohms | C a b farads | D a b | Q c b e | M d g s |
 *   V a b volts | I a b amps | T steps dt | E
 * Node 0 is ground.
 */
std::string
bjtGateChain(int gates, int steps, double dt)
{
    // A cascade of resistor-transistor inverters with load capacitors:
    // the "4-bit all nand adders (ttl gates)" flavour.
    std::string out;
    out += "V 1 0 5.0\n";   // Vcc
    out += "V 2 0 0.75\n";  // input drive
    int node = 3;
    int in = 2;
    for (int g = 0; g < gates; ++g) {
        int base = node++;
        int coll = node++;
        out += strPrintf("R %d %d 4700.0\n", in, base);  // base series R
        out += strPrintf("R 1 %d 2000.0\n", coll);       // collector load
        out += strPrintf("Q %d %d 0\n", coll, base);     // c b e
        out += strPrintf("C %d 0 1e-7\n", coll);
        in = coll;
    }
    out += strPrintf("T %d %g\n", steps, dt);
    out += "E\n";
    return out;
}

std::string
fetGateChain(int gates, int steps, double dt)
{
    std::string out;
    out += "V 1 0 5.0\n";
    out += "V 2 0 2.5\n";
    int node = 3;
    int in = 2;
    for (int g = 0; g < gates; ++g) {
        int drain = node++;
        out += strPrintf("R 1 %d 4000.0\n", drain);      // drain load
        out += strPrintf("M %d %d 0\n", drain, in);      // d g s
        out += strPrintf("C %d 0 1e-7\n", drain);
        in = drain;
    }
    out += strPrintf("T %d %g\n", steps, dt);
    out += "E\n";
    return out;
}

std::string
greyCounter(int steps)
{
    // A longer MOSFET chain with feedback resistors and caps — the
    // grey-code counter stand-in. greysmall and greybig share the
    // topology and differ only in simulated length, like the SPEC inputs.
    // No regenerative feedback: a latch would have multiple DC operating
    // points, which needs .nodeset machinery this simulator (like early
    // spice) does not provide.
    std::string out;
    out += "V 1 0 5.0\n";
    out += "V 2 0 1.8\n";
    int node = 3;
    int in = 2;
    for (int g = 0; g < 8; ++g) {
        int drain = node++;
        out += strPrintf("R 1 %d %d.0\n", drain, g % 2 == 0 ? 3500 : 5100);
        out += strPrintf("M %d %d 0\n", drain, in);
        out += strPrintf("C %d 0 2e-7\n", drain);
        out += strPrintf("R %d 0 68000.0\n", drain); // bleed resistor
        in = drain;
    }
    out += strPrintf("T %d 1e-5\n", steps);
    out += "E\n";
    return out;
}

} // namespace

/**
 * spice analogue: nodal circuit simulation with Newton iteration over
 * nonlinear device models (diode, BJT, square-law MOSFET with region
 * selection), Gaussian elimination, and backward-Euler transient
 * analysis. Each device model is its own routine, so different netlists
 * exercise disjoint modules — reproducing spice2g6's reputation as the
 * hardest program to predict across datasets.
 */
Workload
makeSpice()
{
    Workload w;
    w.name = "spice";
    w.description = "nodal circuit simulator with nonlinear device models";
    w.fortran_like = true;
    w.source = R"(
// spice analogue. MNA with Norton voltage sources + Newton iteration.
// Disabled stamp tracing (paper: spice2g6 carried 1% dead code).
int trace_stamps = 0;
int stamps = 0;
int dtype[128];     // 0=R 1=C 2=D 3=Q 4=M 5=V 6=I
int dna[128];
int dnb[128];
int dnc[128];
float dval[128];
int ndev = 0;
int nn = 0;         // highest node index
int tsteps = 0;
float tdt = 1.0e-5;

float G[1024];      // conductance matrix (32x32 max)
float RHS[32];
float volt[32];
float vold[32];
float newv[32];
int nonconv = 0;
int total_iters = 0;

void stamp_g(int a, int b, float g) {
    if (trace_stamps)
        stamps = stamps + 1;
    G[a * 32 + a] = G[a * 32 + a] + g;
    G[b * 32 + b] = G[b * 32 + b] + g;
    G[a * 32 + b] = G[a * 32 + b] - g;
    G[b * 32 + a] = G[b * 32 + a] - g;
}

void stamp_i(int a, int b, float cur) {
    // Current flowing from a to b through the source.
    RHS[a] = RHS[a] - cur;
    RHS[b] = RHS[b] + cur;
}

void model_resistor(int d) {
    stamp_g(dna[d], dnb[d], 1.0 / dval[d]);
}

void model_vsource(int d) {
    float g0;
    g0 = 1.0e4;
    stamp_g(dna[d], dnb[d], g0);
    stamp_i(dnb[d], dna[d], dval[d] * g0);
}

void model_isource(int d) {
    stamp_i(dna[d], dnb[d], dval[d]);
}

void model_capacitor(int d, int transient) {
    float g, ieq;
    if (!transient)
        return;     // open circuit at DC
    g = dval[d] / tdt;
    stamp_g(dna[d], dnb[d], g);
    // Companion current source reproducing the previous-step charge.
    ieq = g * (vold[dna[d]] - vold[dnb[d]]);
    stamp_i(dnb[d], dna[d], ieq);
}

void model_diode(int d) {
    float vd, vde, is, vt, ex, g, id, ieq;
    is = 1.0e-12;
    vt = 0.026;
    vd = volt[dna[d]] - volt[dnb[d]];
    vde = vd;
    if (vde > 0.9)
        vde = 0.9;          // junction voltage limiting
    if (vde < -5.0)
        vde = -5.0;
    ex = exp(vde / vt);
    g = is / vt * ex + 1.0e-12;
    id = is * (ex - 1.0);
    ieq = id - g * vde;
    stamp_g(dna[d], dnb[d], g);
    stamp_i(dna[d], dnb[d], ieq);
}

// Ebers-Moll BJT: both junctions modelled, so the device saturates
// properly when the collector swings below the base.
void model_bjt(int d) {
    int c, b, e;
    float vbe, vbc, is, vt, betaf, betar;
    float exf, exr, ibe, gbe, ibc, gbc, ict, gmf, gmr;
    c = dna[d];
    b = dnb[d];
    e = dnc[d];
    is = 1.0e-14;
    vt = 0.026;
    betaf = 80.0;
    betar = 2.0;
    vbe = volt[b] - volt[e];
    vbc = volt[b] - volt[c];
    // Junction voltage limiting.
    if (vbe > 0.85) vbe = 0.85;
    if (vbe < -5.0) vbe = -5.0;
    if (vbc > 0.85) vbc = 0.85;
    if (vbc < -5.0) vbc = -5.0;
    exf = exp(vbe / vt);
    exr = exp(vbc / vt);
    // Base-emitter diode (scaled by 1/betaf).
    ibe = is / betaf * (exf - 1.0);
    gbe = is / betaf / vt * exf + 1.0e-12;
    stamp_g(b, e, gbe);
    stamp_i(b, e, ibe - gbe * vbe);
    // Base-collector diode (scaled by 1/betar).
    ibc = is / betar * (exr - 1.0);
    gbc = is / betar / vt * exr + 1.0e-12;
    stamp_g(b, c, gbc);
    stamp_i(b, c, ibc - gbc * vbc);
    // Transfer current c->e: ict = is * (exf - exr).
    ict = is * (exf - exr);
    gmf = is / vt * exf;
    gmr = is / vt * exr;
    G[c * 32 + b] = G[c * 32 + b] + gmf - gmr;
    G[c * 32 + e] = G[c * 32 + e] - gmf;
    G[c * 32 + c] = G[c * 32 + c] + gmr;
    G[e * 32 + b] = G[e * 32 + b] - (gmf - gmr);
    G[e * 32 + e] = G[e * 32 + e] + gmf;
    G[e * 32 + c] = G[e * 32 + c] - gmr;
    stamp_i(c, e, ict - gmf * vbe + gmr * vbc);
    // Output conductance for stability.
    stamp_g(c, e, 1.0e-7);
}

void model_mosfet(int d) {
    int dn, gn, sn;
    float vgs, vds, vt0, k, id, gm, gds, ieq;
    dn = dna[d];
    gn = dnb[d];
    sn = dnc[d];
    vt0 = 1.0;
    k = 0.002;
    vgs = volt[gn] - volt[sn];
    vds = volt[dn] - volt[sn];
    if (vds < 0.0)
        vds = 0.0;          // no body diode in this model
    if (vgs <= vt0) {
        // Cutoff region.
        id = 0.0;
        gm = 0.0;
        gds = 1.0e-9;
    } else if (vds < vgs - vt0) {
        // Linear (triode) region.
        id = k * ((vgs - vt0) * vds - 0.5 * vds * vds);
        gm = k * vds;
        gds = k * (vgs - vt0 - vds) + 1.0e-9;
    } else {
        // Saturation region.
        id = 0.5 * k * (vgs - vt0) * (vgs - vt0);
        gm = k * (vgs - vt0);
        gds = 1.0e-6;
    }
    ieq = id - gm * vgs - gds * vds;
    G[dn * 32 + gn] = G[dn * 32 + gn] + gm;
    G[dn * 32 + sn] = G[dn * 32 + sn] - gm - gds;
    G[dn * 32 + dn] = G[dn * 32 + dn] + gds;
    G[sn * 32 + gn] = G[sn * 32 + gn] - gm;
    G[sn * 32 + sn] = G[sn * 32 + sn] + gm + gds;
    G[sn * 32 + dn] = G[sn * 32 + dn] - gds;
    stamp_i(dn, sn, ieq);
}

void build(int transient) {
    int i, d;
    for (i = 0; i < 1024; i++)
        G[i] = 0.0;
    for (i = 0; i < 32; i++)
        RHS[i] = 0.0;
    for (i = 0; i <= nn; i++)
        G[i * 32 + i] = G[i * 32 + i] + 1.0e-9;   // gmin
    for (d = 0; d < ndev; d++) {
        switch (dtype[d]) {
          case 0: model_resistor(d); break;
          case 1: model_capacitor(d, transient); break;
          case 2: model_diode(d); break;
          case 3: model_bjt(d); break;
          case 4: model_mosfet(d); break;
          case 5: model_vsource(d); break;
          default: model_isource(d); break;
        }
    }
    // Ground node 0.
    for (i = 0; i <= nn; i++) {
        G[0 * 32 + i] = 0.0;
        G[i * 32 + 0] = 0.0;
    }
    G[0] = 1.0;
    RHS[0] = 0.0;
}

// Gaussian elimination with partial pivoting over nodes 0..nn.
int solve() {
    int n, i, j, k, p;
    float maxval, v, mult;
    n = nn + 1;
    for (k = 0; k < n; k++) {
        p = k;
        maxval = fabs(G[k * 32 + k]);
        for (i = k + 1; i < n; i++) {
            v = fabs(G[i * 32 + k]);
            if (v > maxval) {
                maxval = v;
                p = i;
            }
        }
        if (maxval < 1.0e-20)
            return 0;
        if (p != k) {
            for (j = 0; j < n; j++) {
                v = G[k * 32 + j];
                G[k * 32 + j] = G[p * 32 + j];
                G[p * 32 + j] = v;
            }
            v = RHS[k];
            RHS[k] = RHS[p];
            RHS[p] = v;
        }
        for (i = k + 1; i < n; i++) {
            mult = G[i * 32 + k] / G[k * 32 + k];
            for (j = k; j < n; j++)
                G[i * 32 + j] = G[i * 32 + j] - mult * G[k * 32 + j];
            RHS[i] = RHS[i] - mult * RHS[k];
        }
    }
    for (i = n - 1; i >= 0; i--) {
        v = RHS[i];
        for (j = i + 1; j < n; j++)
            v = v - G[i * 32 + j] * newv[j];
        newv[i] = v / G[i * 32 + i];
    }
    return 1;
}

// One operating point: Newton iteration with voltage-step limiting.
void operating_point(int transient) {
    int iter, i, done;
    float dv, maxdv, limit;
    iter = 0;
    done = 0;
    while (iter < 200 && !done) {
        build(transient);
        if (!solve()) {
            nonconv = nonconv + 1;
            return;
        }
        // Voltage-step limiting with a tightening schedule: large early
        // steps find the neighbourhood, shrinking steps break the region-
        // assignment limit cycles nonsmooth device models can cause.
        limit = 0.5;
        if (iter > 40)
            limit = 10.0 / (20.0 + iter);
        maxdv = 0.0;
        for (i = 0; i <= nn; i++) {
            dv = newv[i] - volt[i];
            if (dv > limit)
                dv = limit;
            if (dv < 0.0 - limit)
                dv = 0.0 - limit;
            volt[i] = volt[i] + dv;
            maxdv = fmax2(maxdv, fabs(dv));
        }
        if (maxdv < 1.0e-5)
            done = 1;
        iter = iter + 1;
    }
    total_iters = total_iters + iter;
    if (!done)
        nonconv = nonconv + 1;
}

void readnet() {
    int c, maxn;
    c = ngetc();
    while (c != -1) {
        if (c == 'R' || c == 'C' || c == 'V' || c == 'I') {
            if (c == 'R') dtype[ndev] = 0;
            else if (c == 'C') dtype[ndev] = 1;
            else if (c == 'V') dtype[ndev] = 5;
            else dtype[ndev] = 6;
            dna[ndev] = geti();
            dnb[ndev] = geti();
            dval[ndev] = getf();
            ndev = ndev + 1;
        } else if (c == 'D') {
            dtype[ndev] = 2;
            dna[ndev] = geti();
            dnb[ndev] = geti();
            ndev = ndev + 1;
        } else if (c == 'Q' || c == 'M') {
            dtype[ndev] = (c == 'Q') ? 3 : 4;
            dna[ndev] = geti();
            dnb[ndev] = geti();
            dnc[ndev] = geti();
            ndev = ndev + 1;
        } else if (c == 'T') {
            tsteps = geti();
            tdt = getf();
        } else if (c == 'E') {
            break;
        }
        // Skip to end of line.
        while (c != '\n' && c != -1)
            c = ngetc();
        c = ngetc();
    }
    maxn = 0;
    for (c = 0; c < ndev; c++) {
        maxn = imax(maxn, dna[c]);
        maxn = imax(maxn, dnb[c]);
        if (dtype[c] == 3 || dtype[c] == 4)
            maxn = imax(maxn, dnc[c]);
    }
    nn = maxn;
}

int main() {
    int i, s;
    readnet();
    for (i = 0; i <= nn; i++) {
        volt[i] = 0.0;
        vold[i] = 0.0;
    }
    // DC operating point.
    operating_point(0);
    for (i = 0; i <= nn; i++)
        vold[i] = volt[i];
    // Transient sweep (backward Euler).
    for (s = 0; s < tsteps; s++) {
        operating_point(1);
        for (i = 0; i <= nn; i++)
            vold[i] = volt[i];
    }
    for (i = 1; i <= nn; i++) {
        puts("v");
        puti(i);
        putc('=');
        putf(volt[i]);
        putc('\n');
    }
    puts("iters=");
    puti(total_iters);
    puts(" nonconv=");
    puti(nonconv);
    putc('\n');
    return 0;
}
)";
    // circuit1: purely resistive divider — linear, one DC solve, tiny.
    w.datasets.push_back({"circuit1",
                          "V 1 0 5.0\n"
                          "R 1 2 1000.0\n"
                          "R 2 3 1000.0\n"
                          "R 3 0 2000.0\n"
                          "E\n"});
    // circuit2: RC step response — capacitor module, very short run
    // (the paper notes circuit2 runs ~1/10000 as long as greybig).
    w.datasets.push_back({"circuit2",
                          "V 1 0 5.0\n"
                          "R 1 2 1000.0\n"
                          "C 2 0 1e-6\n"
                          "T 20 2e-4\n"
                          "E\n"});
    // circuit3: diode ladder — exercises the diode model.
    w.datasets.push_back({"circuit3",
                          "V 1 0 3.0\n"
                          "R 1 2 100.0\n"
                          "D 2 3\n"
                          "R 3 0 470.0\n"
                          "D 3 4\n"
                          "R 4 0 330.0\n"
                          "C 4 0 1e-6\n"
                          "T 60 1e-4\n"
                          "E\n"});
    // circuit4: BJT inverter stage.
    w.datasets.push_back({"circuit4",
                          "V 1 0 5.0\n"
                          "V 2 0 0.72\n"
                          "R 1 3 2200.0\n"
                          "Q 3 2 0\n"
                          "C 3 0 5e-8\n"
                          "T 120 5e-5\n"
                          "E\n"});
    // circuit5: mixed R/C/diode/BJT network.
    w.datasets.push_back({"circuit5",
                          "V 1 0 5.0\n"
                          "V 2 0 0.8\n"
                          "R 1 3 1800.0\n"
                          "Q 3 2 0\n"
                          "D 3 4\n"
                          "R 4 0 910.0\n"
                          "C 4 0 2e-7\n"
                          "R 1 5 5600.0\n"
                          "D 5 0\n"
                          "T 400 4e-5\n"
                          "E\n"});
    w.datasets.push_back({"add_bjt", bjtGateChain(4, 500, 4e-5)});
    w.datasets.push_back({"add_fet", fetGateChain(4, 500, 4e-5)});
    w.datasets.push_back({"greysmall", greyCounter(700)});
    w.datasets.push_back({"greybig", greyCounter(24000)});
    return w;
}

} // namespace ifprob::workloads

#include "workloads/workload.h"

#include "support/rng.h"
#include "support/str.h"

namespace ifprob::workloads {

namespace {

/** Two files in one stream, separated by a 0x01 byte. */
std::string
joinFiles(const std::string &a, const std::string &b)
{
    return a + "\x01" + b;
}

/** A file of floating-point columns; @p perturb flips some values. */
std::string
numberFile(uint64_t seed, int rows, bool perturb, double noise)
{
    // Separate streams for values and perturbation decisions, so the
    // perturbed file shares the unperturbed file's base values exactly.
    Rng vals(seed);
    Rng pert(seed ^ 0x517cc1b727220a95ull);
    std::string out;
    for (int r = 0; r < rows; ++r) {
        double base = 1.0 + 0.37 * r;
        for (int c = 0; c < 4; ++c) {
            double v = base * (c + 1) + 0.001 * static_cast<double>(vals.below(100));
            if (perturb) {
                if (pert.chance(0.12))
                    v += noise;           // beyond tolerance: a real diff
                else
                    v += 1.0e-9;          // within tolerance: same line
            }
            out += strPrintf("%.6f ", v);
        }
        out += "\n";
    }
    return out;
}

/** Directory-listing flavoured text; last lines differ when @p variant. */
std::string
listingFile(uint64_t seed, int rows, bool variant)
{
    Rng rng(seed);
    std::string out;
    for (int r = 0; r < rows; ++r) {
        out += strPrintf("-rw-r--r-- 1 user staff %lld file%03d.c\n",
                         static_cast<long long>(rng.range(100, 99999)), r);
    }
    if (variant) {
        out += "-rw-r--r-- 1 user staff 4242 extra.c\n";
        out += "-rw-r--r-- 1 user staff 17 notes.txt\n";
    } else {
        out += "-rw-r--r-- 1 user staff 99 trailer.c\n";
    }
    return out;
}

} // namespace

/**
 * spiff analogue: file comparison with numeric tolerance. Lines are
 * tokenized; numeric tokens compare within a relative tolerance, others
 * exactly. An O(n*m) LCS over the line-equality relation drives the diff,
 * exactly the shape of the SPEC-included spiff tool.
 */
Workload
makeSpiff()
{
    Workload w;
    w.name = "spiff";
    w.description = "file comparison with floating-point tolerance";
    w.fortran_like = false;
    w.source = R"(
// spiff analogue. Input: fileA 0x01 fileB. Lines <= 250 per file.
int pool[131072];     // character pool for both files
int npool = 0;
int astart[256];
int alen[256];
int na = 0;
int bstart[256];
int blen[256];
int nb = 0;
int lcs[65536];       // DP table (na+1) x (nb+1), na,nb <= 250
int eqcache[65536];   // memoized line equality (-1 unknown)

// Read one file's lines into the pool until sep/EOF. Returns line count.
int readfile(int sep, int which) {
    int c, start, count;
    count = 0;
    c = getc();
    while (c != sep && c != -1) {
        start = npool;
        while (c != '\n' && c != sep && c != -1) {
            pool[npool] = c;
            npool = npool + 1;
            c = getc();
        }
        if (which == 0) {
            astart[count] = start;
            alen[count] = npool - start;
        } else {
            bstart[count] = start;
            blen[count] = npool - start;
        }
        count = count + 1;
        if (c == '\n')
            c = getc();
    }
    return count;
}

int isnumch(int c) {
    return (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+';
}

// Parse a float from pool[p..end); returns via globals.
float numval = 0.0;
int numend = 0;
int parsenum(int p, int end) {
    int sign, anydig;
    float v, scale;
    sign = 1;
    anydig = 0;
    if (p < end && pool[p] == '-') {
        sign = -1;
        p = p + 1;
    } else if (p < end && pool[p] == '+') {
        p = p + 1;
    }
    v = 0.0;
    while (p < end && pool[p] >= '0' && pool[p] <= '9') {
        v = v * 10.0 + itof(pool[p] - '0');
        p = p + 1;
        anydig = 1;
    }
    if (p < end && pool[p] == '.') {
        p = p + 1;
        scale = 0.1;
        while (p < end && pool[p] >= '0' && pool[p] <= '9') {
            v = v + scale * itof(pool[p] - '0');
            scale = scale * 0.1;
            p = p + 1;
            anydig = 1;
        }
    }
    numval = itof(sign) * v;
    numend = p;
    return anydig;
}

// Token-wise line comparison with numeric tolerance.
int lineseq(int i, int j) {
    int pa, ea, pb, eb, ca, cb;
    float va, vb, diff, mag;
    pa = astart[i];
    ea = pa + alen[i];
    pb = bstart[j];
    eb = pb + blen[j];
    while (1) {
        while (pa < ea && (pool[pa] == ' ' || pool[pa] == '\t'))
            pa = pa + 1;
        while (pb < eb && (pool[pb] == ' ' || pool[pb] == '\t'))
            pb = pb + 1;
        if (pa >= ea && pb >= eb)
            return 1;
        if (pa >= ea || pb >= eb)
            return 0;
        ca = pool[pa];
        cb = pool[pb];
        if (isnumch(ca) && isnumch(cb)) {
            if (parsenum(pa, ea)) {
                va = numval;
                pa = numend;
                if (!parsenum(pb, eb))
                    return 0;
                vb = numval;
                pb = numend;
                diff = fabs(va - vb);
                mag = fabs(va) + fabs(vb) + 1.0e-30;
                if (diff / mag > 1.0e-5)
                    return 0;
                continue;
            }
        }
        // Exact token compare.
        while (pa < ea && pb < eb && pool[pa] != ' ' && pool[pa] != '\t' &&
               pool[pb] != ' ' && pool[pb] != '\t') {
            if (pool[pa] != pool[pb])
                return 0;
            pa = pa + 1;
            pb = pb + 1;
        }
        // Both must have hit a token boundary together.
        if (pa < ea && pool[pa] != ' ' && pool[pa] != '\t')
            return 0;
        if (pb < eb && pool[pb] != ' ' && pool[pb] != '\t')
            return 0;
    }
    return 0;
}

int eqlines(int i, int j) {
    int key, v;
    key = i * 256 + j;
    v = eqcache[key];
    if (v != -1)
        return v;
    v = lineseq(i, j);
    eqcache[key] = v;
    return v;
}

int main() {
    int i, j, common, dels, adds;
    na = readfile(1, 0);
    nb = readfile(1, 1);
    for (i = 0; i < 65536; i++)
        eqcache[i] = -1;
    // LCS DP, lcs[i][j] = LCS of a[i..), b[j..).
    for (i = na; i >= 0; i--) {
        for (j = nb; j >= 0; j--) {
            if (i == na || j == nb) {
                lcs[i * 256 + j] = 0;
            } else if (eqlines(i, j)) {
                lcs[i * 256 + j] = lcs[(i + 1) * 256 + j + 1] + 1;
            } else {
                lcs[i * 256 + j] = imax(lcs[(i + 1) * 256 + j],
                                        lcs[i * 256 + j + 1]);
            }
        }
    }
    // Emit the diff walk.
    i = 0;
    j = 0;
    common = 0;
    dels = 0;
    adds = 0;
    while (i < na && j < nb) {
        if (eqlines(i, j)) {
            common = common + 1;
            i = i + 1;
            j = j + 1;
        } else if (lcs[(i + 1) * 256 + j] >= lcs[i * 256 + j + 1]) {
            putc('<');
            puti(i);
            putc('\n');
            dels = dels + 1;
            i = i + 1;
        } else {
            putc('>');
            puti(j);
            putc('\n');
            adds = adds + 1;
            j = j + 1;
        }
    }
    while (i < na) {
        dels = dels + 1;
        i = i + 1;
    }
    while (j < nb) {
        adds = adds + 1;
        j = j + 1;
    }
    puts("common=");
    puti(common);
    puts(" del=");
    puti(dels);
    puts(" add=");
    puti(adds);
    putc('\n');
    return 0;
}
)";
    w.datasets.push_back(
        {"case1", joinFiles(numberFile(0x5a, 220, false, 0.0),
                            numberFile(0x5a, 220, true, 0.01))});
    w.datasets.push_back(
        {"case2", joinFiles(numberFile(0x6b, 180, false, 0.0),
                            numberFile(0x6b, 180, true, 0.5))});
    w.datasets.push_back(
        {"case3", joinFiles(listingFile(0x7c, 26, false),
                            listingFile(0x7c, 26, true))});
    return w;
}

} // namespace ifprob::workloads

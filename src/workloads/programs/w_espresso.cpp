#include "workloads/workload.h"

#include "support/rng.h"
#include "support/str.h"

namespace ifprob::workloads {

namespace {

/**
 * Generate a PLA in espresso's .i/.o format: @p cubes product terms over
 * @p inputs variables with @p outputs output columns. Literal density and
 * output density shape how much minimization is possible, which is what
 * distinguishes the bca/cps/ti/tial reference datasets.
 */
std::string
generatePla(uint64_t seed, int inputs, int outputs, int cubes,
            double literal_density, double output_density)
{
    Rng rng(seed);
    std::string out = strPrintf(".i %d\n.o %d\n.p %d\n", inputs, outputs,
                                cubes);
    for (int c = 0; c < cubes; ++c) {
        for (int v = 0; v < inputs; ++v) {
            if (rng.chance(literal_density))
                out.push_back(rng.chance(0.5) ? '1' : '0');
            else
                out.push_back('-');
        }
        out.push_back(' ');
        bool any = false;
        for (int o = 0; o < outputs; ++o) {
            bool on = rng.chance(output_density) || (!any && o == outputs - 1);
            any = any || on;
            out.push_back(on ? '1' : '0');
        }
        out.push_back('\n');
    }
    out += ".e\n";
    return out;
}

} // namespace

/**
 * espresso analogue: two-level PLA minimization via EXPAND (greedily
 * raising literals to don't-care, validated against the original cover)
 * followed by single-cube CONTAINMENT removal. The cube scans and
 * minterm-membership tests reproduce espresso's irregular bit-twiddling
 * control flow.
 */
Workload
makeEspresso()
{
    Workload w;
    w.name = "espresso";
    w.description = "PLA two-level minimizer (expand + containment)";
    w.fortran_like = false;
    w.source = R"(
// espresso analogue. Cube literals: 0, 1, 2='-'.
// Disabled diagnostics (paper: espresso carried 18% dynamic dead code,
// enough that the authors called out the difference as significant).
int verbose = 0;
int gather_stats = 0;
int probes = 0;
int covers_checked = 0;
int ni = 0;
int no = 0;
int ncubes = 0;
int cin_[8192];    // current cover: cube c literal v at c*ni+v
int cout_[4096];   // output part at c*no+o
int oin_[8192];    // original cover (the function definition)
int oout_[4096];
int ocubes = 0;
int alive[512];
int mt[16];        // scratch minterm (one value per input)
int free_[16];     // free-variable positions during a raise check

// Does cube c of the ORIGINAL cover cover scratch minterm mt for output o?
int ocovers(int c, int o) {
    int v, lit;
    if (gather_stats)
        covers_checked = covers_checked + 1;
    if (oout_[c * no + o] == 0)
        return 0;
    for (v = 0; v < ni; v++) {
        lit = oin_[c * ni + v];
        if (gather_stats)
            probes = probes + 1;
        if (lit != 2 && lit != mt[v])
            return 0;
    }
    return 1;
}

// Is scratch minterm mt in the function for output o?
int infunction(int o) {
    int c;
    for (c = 0; c < ocubes; c++) {
        if (ocovers(c, o))
            return 1;
    }
    return 0;
}

// Enumerate the minterms newly covered when literal v of cube c is raised
// (those with variable v at the opposite value); each must lie inside the
// function for every asserted output.
int raise_ok(int c, int v) {
    int nfree, i, j, combo, ncombo, o, oldlit;
    oldlit = cin_[c * ni + v];
    nfree = 0;
    for (i = 0; i < ni; i++) {
        if (i == v) {
            mt[i] = 1 - oldlit;   // the newly covered half-space
        } else if (cin_[c * ni + i] == 2) {
            free_[nfree] = i;
            nfree = nfree + 1;
        } else {
            mt[i] = cin_[c * ni + i];
        }
    }
    ncombo = 1 << nfree;
    for (combo = 0; combo < ncombo; combo++) {
        for (j = 0; j < nfree; j++) {
            if (verbose)
                putc('0' + ((combo >> j) & 1));
            mt[free_[j]] = (combo >> j) & 1;
        }
        for (o = 0; o < no; o++) {
            if (cout_[c * no + o] == 1) {
                if (!infunction(o))
                    return 0;
            }
        }
    }
    return 1;
}

void expand() {
    int c, v;
    for (c = 0; c < ncubes; c++) {
        for (v = 0; v < ni; v++) {
            if (cin_[c * ni + v] != 2) {
                if (raise_ok(c, v))
                    cin_[c * ni + v] = 2;
            }
        }
    }
}

// Cube d single-cube-contains cube c: d's input part covers c's and d's
// outputs include c's.
int contains(int d, int c) {
    int v, o, dl, cl;
    for (v = 0; v < ni; v++) {
        dl = cin_[d * ni + v];
        cl = cin_[c * ni + v];
        if (dl != 2 && dl != cl)
            return 0;
    }
    for (o = 0; o < no; o++) {
        if (cout_[c * no + o] == 1 && cout_[d * no + o] == 0)
            return 0;
    }
    return 1;
}

int contain() {
    int c, d, removed;
    removed = 0;
    for (c = 0; c < ncubes; c++) {
        if (!alive[c])
            continue;
        for (d = 0; d < ncubes; d++) {
            if (d != c && alive[d] && alive[c] && contains(d, c)) {
                // Break ties deterministically so exactly one of two
                // identical cubes survives.
                if (!contains(c, d) || d < c) {
                    alive[c] = 0;
                    removed = removed + 1;
                }
            }
        }
    }
    return removed;
}

void readpla() {
    int c, v, o, ch;
    ch = ngetc();
    while (ch != -1) {
        if (ch == '.') {
            ch = ngetc();
            if (ch == 'i') {
                ni = geti();
            } else if (ch == 'o') {
                no = geti();
            } else if (ch == 'p') {
                geti();   // cube count hint, unused
            } else if (ch == 'e') {
                return;
            }
            // skip to end of line
            while (ch != '\n' && ch != -1)
                ch = ngetc();
        } else if (ch == '0' || ch == '1' || ch == '-') {
            c = ncubes;
            v = 0;
            while (ch == '0' || ch == '1' || ch == '-') {
                if (ch == '-')
                    cin_[c * ni + v] = 2;
                else
                    cin_[c * ni + v] = ch - '0';
                v = v + 1;
                ch = ngetc();
            }
            while (ch == ' ' || ch == '\t')
                ch = ngetc();
            o = 0;
            while (ch == '0' || ch == '1') {
                cout_[c * no + o] = ch - '0';
                o = o + 1;
                ch = ngetc();
            }
            alive[c] = 1;
            ncubes = ncubes + 1;
        } else {
            ch = ngetc();
        }
    }
}

int main() {
    int c, v, o, live;
    readpla();
    // Snapshot the original cover as the function definition.
    ocubes = ncubes;
    for (c = 0; c < ncubes; c++) {
        for (v = 0; v < ni; v++)
            oin_[c * ni + v] = cin_[c * ni + v];
        for (o = 0; o < no; o++)
            oout_[c * no + o] = cout_[c * no + o];
    }
    expand();
    contain();
    live = 0;
    for (c = 0; c < ncubes; c++)
        if (alive[c])
            live = live + 1;
    puts(".p ");
    puti(live);
    putc('\n');
    for (c = 0; c < ncubes; c++) {
        if (!alive[c]) continue;
        for (v = 0; v < ni; v++) {
            if (cin_[c * ni + v] == 2)
                putc('-');
            else
                putc('0' + cin_[c * ni + v]);
        }
        putc(' ');
        for (o = 0; o < no; o++)
            putc('0' + cout_[c * no + o]);
        putc('\n');
    }
    puts(".e\n");
    return 0;
}
)";
    w.datasets.push_back(
        {"bca", generatePla(0xb0a, 8, 6, 48, 0.75, 0.35)});
    w.datasets.push_back(
        {"cps", generatePla(0xc95, 8, 4, 36, 0.55, 0.5)});
    w.datasets.push_back(
        {"ti", generatePla(0x71, 7, 8, 44, 0.85, 0.25)});
    w.datasets.push_back(
        {"tial", generatePla(0x7a1, 8, 8, 56, 0.65, 0.4)});
    return w;
}

} // namespace ifprob::workloads

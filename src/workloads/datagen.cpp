#include "workloads/datagen.h"

#include <array>

#include "support/rng.h"
#include "support/str.h"

namespace ifprob::workloads {

namespace {

const std::array<const char *, 24> kIdentifiers = {
    "buf", "ptr", "len", "count", "index", "state", "flags", "node", "next",
    "head", "tail", "size", "offset", "value", "result", "tmp", "ch",
    "line", "token", "table", "entry", "key", "mask", "depth",
};

const std::array<const char *, 12> kCKeywords = {
    "if", "while", "for", "return", "break", "else", "switch", "case",
    "static", "int", "char", "struct",
};

const std::array<const char *, 40> kWords = {
    "the", "of", "and", "a", "to", "in", "is", "you", "that", "it", "he",
    "was", "for", "on", "are", "as", "with", "his", "they", "at", "be",
    "this", "have", "from", "or", "one", "had", "by", "word", "but", "not",
    "what", "all", "were", "we", "when", "your", "can", "said", "there",
};

} // namespace

std::string
generateCSource(uint64_t seed, size_t target_bytes)
{
    Rng rng(seed);
    std::string out;
    out.reserve(target_bytes + 256);
    int fn = 0;
    while (out.size() < target_bytes) {
        out += strPrintf("static int fn_%d(int %s, int %s)\n{\n", fn++,
                         kIdentifiers[rng.below(kIdentifiers.size())],
                         kIdentifiers[rng.below(kIdentifiers.size())]);
        int stmts = static_cast<int>(rng.range(4, 14));
        for (int s = 0; s < stmts; ++s) {
            int indent = static_cast<int>(rng.range(1, 3));
            out.append(static_cast<size_t>(indent * 4), ' ');
            switch (rng.below(5)) {
              case 0:
                out += strPrintf("%s = %s + %lld;\n",
                                 kIdentifiers[rng.below(kIdentifiers.size())],
                                 kIdentifiers[rng.below(kIdentifiers.size())],
                                 static_cast<long long>(rng.range(0, 255)));
                break;
              case 1:
                out += strPrintf("%s (%s %s %lld) {\n",
                                 kCKeywords[rng.below(3)],
                                 kIdentifiers[rng.below(kIdentifiers.size())],
                                 rng.chance(0.5) ? "<" : "==",
                                 static_cast<long long>(rng.range(0, 64)));
                break;
              case 2:
                out += strPrintf("%s[%s] = %s(%s);\n",
                                 kIdentifiers[rng.below(kIdentifiers.size())],
                                 kIdentifiers[rng.below(kIdentifiers.size())],
                                 kIdentifiers[rng.below(kIdentifiers.size())],
                                 kIdentifiers[rng.below(kIdentifiers.size())]);
                break;
              case 3:
                out += "}\n";
                break;
              default:
                out += strPrintf("return %s & 0x%llx;\n",
                                 kIdentifiers[rng.below(kIdentifiers.size())],
                                 static_cast<unsigned long long>(
                                     rng.below(4096)));
                break;
            }
        }
        out += "}\n\n";
    }
    out.resize(target_bytes);
    return out;
}

std::string
generateFortranSource(uint64_t seed, size_t target_bytes)
{
    Rng rng(seed);
    std::string out;
    out.reserve(target_bytes + 256);
    int label = 10;
    int sub = 0;
    while (out.size() < target_bytes) {
        out += strPrintf("      SUBROUTINE SUB%d(A, B, N)\n", sub++);
        out += "      DIMENSION A(N), B(N)\n";
        int loops = static_cast<int>(rng.range(2, 6));
        for (int l = 0; l < loops; ++l) {
            out += strPrintf("      DO %d I = 1, N\n", label);
            int stmts = static_cast<int>(rng.range(1, 4));
            for (int s = 0; s < stmts; ++s) {
                out += strPrintf("         A(I) = B(I) * %lld.%lldE%lld + "
                                 "A(I)\n",
                                 static_cast<long long>(rng.range(1, 9)),
                                 static_cast<long long>(rng.range(0, 99)),
                                 static_cast<long long>(rng.range(-3, 3)));
            }
            out += strPrintf("%d    CONTINUE\n", label);
            label += 10;
        }
        out += "      RETURN\n      END\n\n";
    }
    out.resize(target_bytes);
    return out;
}

std::string
generateProse(uint64_t seed, size_t target_bytes)
{
    Rng rng(seed);
    std::string out;
    out.reserve(target_bytes + 64);
    size_t line_len = 0;
    while (out.size() < target_bytes) {
        const char *word = kWords[rng.below(kWords.size())];
        out += word;
        line_len += std::string_view(word).size() + 1;
        if (line_len > 60) {
            out += "\n";
            line_len = 0;
        } else {
            out += " ";
        }
        if (rng.chance(0.08))
            out += rng.chance(0.5) ? ". " : ", ";
    }
    out.resize(target_bytes);
    return out;
}

std::string
generateNumberTable(uint64_t seed, size_t rows, size_t cols)
{
    Rng rng(seed);
    std::string out;
    out.reserve(rows * cols * 12);
    double walk = 1.0;
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < cols; ++c) {
            walk += (rng.real() - 0.5) * 0.25;
            out += strPrintf("%.6f", walk + static_cast<double>(c));
            out += c + 1 < cols ? " " : "\n";
        }
    }
    return out;
}

std::string
generateBinaryish(uint64_t seed, size_t target_bytes)
{
    Rng rng(seed);
    std::string out;
    out.reserve(target_bytes);
    while (out.size() < target_bytes) {
        if (rng.chance(0.3)) {
            // A run (compressible).
            char b = static_cast<char>(rng.below(256));
            size_t run = static_cast<size_t>(rng.range(4, 40));
            out.append(run, b);
        } else if (rng.chance(0.5)) {
            // Structured record: small values with zero padding.
            for (int i = 0; i < 8; ++i)
                out.push_back(static_cast<char>(rng.below(16)));
            out.append(8, '\0');
        } else {
            // Noise (incompressible).
            size_t n = static_cast<size_t>(rng.range(4, 24));
            for (size_t i = 0; i < n; ++i)
                out.push_back(static_cast<char>(rng.below(256)));
        }
    }
    out.resize(target_bytes);
    return out;
}

} // namespace ifprob::workloads

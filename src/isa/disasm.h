#ifndef IFPROB_ISA_DISASM_H
#define IFPROB_ISA_DISASM_H

#include <string>

#include "isa/program.h"

namespace ifprob::isa {

/** Render one instruction as text, e.g. "add r3, r1, r2". */
std::string disassemble(const Instruction &insn);

/** Render a whole function with pc labels. */
std::string disassemble(const Function &function);

/** Render the whole program (all functions, entry marked). */
std::string disassemble(const Program &program);

} // namespace ifprob::isa

#endif // IFPROB_ISA_DISASM_H

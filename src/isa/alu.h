#ifndef IFPROB_ISA_ALU_H
#define IFPROB_ISA_ALU_H

#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>

#include "isa/opcode.h"

namespace ifprob::isa {

/**
 * Scalar operation semantics, shared by the interpreter and the constant
 * folder so that folding can never diverge from execution.
 *
 * Register values are raw 64-bit patterns; float operations reinterpret
 * them as IEEE doubles. Shift counts are masked to 6 bits (no UB); integer
 * division by zero is not evaluable (the interpreter traps, the folder
 * declines to fold).
 */

inline double
asF(int64_t bits)
{
    return std::bit_cast<double>(bits);
}

inline int64_t
fromF(double v)
{
    return std::bit_cast<int64_t>(v);
}

/** Evaluate a two-source ALU operation; nullopt when not evaluable. */
inline std::optional<int64_t>
evalBinaryAlu(Opcode op, int64_t x, int64_t y)
{
    switch (op) {
      // Two's-complement wraparound, computed through unsigned so the
      // semantics are defined (and match real hardware) even at the
      // extremes.
      case Opcode::kAdd:
        return static_cast<int64_t>(static_cast<uint64_t>(x) +
                                    static_cast<uint64_t>(y));
      case Opcode::kSub:
        return static_cast<int64_t>(static_cast<uint64_t>(x) -
                                    static_cast<uint64_t>(y));
      case Opcode::kMul:
        return static_cast<int64_t>(static_cast<uint64_t>(x) *
                                    static_cast<uint64_t>(y));
      case Opcode::kDiv:
        if (y == 0 || (x == INT64_MIN && y == -1))
            return std::nullopt;
        return x / y;
      case Opcode::kRem:
        if (y == 0 || (x == INT64_MIN && y == -1))
            return std::nullopt;
        return x % y;
      case Opcode::kAnd: return x & y;
      case Opcode::kOr: return x | y;
      case Opcode::kXor: return x ^ y;
      case Opcode::kShl:
        return static_cast<int64_t>(static_cast<uint64_t>(x) << (y & 63));
      case Opcode::kShr: return x >> (y & 63);
      case Opcode::kCmpEq: return x == y;
      case Opcode::kCmpNe: return x != y;
      case Opcode::kCmpLt: return x < y;
      case Opcode::kCmpLe: return x <= y;
      case Opcode::kCmpGt: return x > y;
      case Opcode::kCmpGe: return x >= y;
      case Opcode::kFAdd: return fromF(asF(x) + asF(y));
      case Opcode::kFSub: return fromF(asF(x) - asF(y));
      case Opcode::kFMul: return fromF(asF(x) * asF(y));
      case Opcode::kFDiv: return fromF(asF(x) / asF(y));
      case Opcode::kFCmpEq: return asF(x) == asF(y);
      case Opcode::kFCmpNe: return asF(x) != asF(y);
      case Opcode::kFCmpLt: return asF(x) < asF(y);
      case Opcode::kFCmpLe: return asF(x) <= asF(y);
      case Opcode::kFCmpGt: return asF(x) > asF(y);
      case Opcode::kFCmpGe: return asF(x) >= asF(y);
      default:
        return std::nullopt;
    }
}

/** Evaluate a single-source ALU operation; nullopt when not evaluable. */
inline std::optional<int64_t>
evalUnaryAlu(Opcode op, int64_t x)
{
    switch (op) {
      case Opcode::kNeg:
        return static_cast<int64_t>(0 - static_cast<uint64_t>(x));
      case Opcode::kNot: return ~x;
      case Opcode::kFNeg: return fromF(-asF(x));
      case Opcode::kFAbs: return fromF(std::fabs(asF(x)));
      case Opcode::kFSqrt: return fromF(std::sqrt(asF(x)));
      case Opcode::kFExp: return fromF(std::exp(asF(x)));
      case Opcode::kFLog: return fromF(std::log(asF(x)));
      case Opcode::kFSin: return fromF(std::sin(asF(x)));
      case Opcode::kFCos: return fromF(std::cos(asF(x)));
      case Opcode::kItoF: return fromF(static_cast<double>(x));
      case Opcode::kFtoI: {
        double v = asF(x);
        // Saturate instead of UB on out-of-range conversions.
        if (std::isnan(v))
            return 0;
        if (v >= 9.2233720368547758e18)
            return INT64_MAX;
        if (v <= -9.2233720368547758e18)
            return INT64_MIN;
        return static_cast<int64_t>(v);
      }
      case Opcode::kMov: return x;
      default:
        return std::nullopt;
    }
}

} // namespace ifprob::isa

#endif // IFPROB_ISA_ALU_H

#include "isa/program.h"

#include "support/error.h"
#include "support/str.h"

namespace ifprob::isa {

std::string_view
branchKindName(BranchKind kind)
{
    switch (kind) {
      case BranchKind::kIf: return "if";
      case BranchKind::kLoop: return "loop";
      case BranchKind::kLogical: return "logical";
      case BranchKind::kSwitchCase: return "switch-case";
      case BranchKind::kTernary: return "ternary";
    }
    return "?";
}

int
Program::findFunction(std::string_view name) const
{
    for (size_t i = 0; i < functions.size(); ++i) {
        if (functions[i].name == name)
            return static_cast<int>(i);
    }
    return -1;
}

int64_t
Program::staticSize() const
{
    int64_t n = 0;
    for (const auto &f : functions)
        n += static_cast<int64_t>(f.code.size());
    return n;
}

uint64_t
Program::fingerprint() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(functions.size());
    for (const auto &f : functions) {
        mix(f.code.size());
        mix(static_cast<uint64_t>(f.num_params));
        for (const auto &insn : f.code) {
            mix(static_cast<uint64_t>(insn.op));
            mix(static_cast<uint64_t>(static_cast<int64_t>(insn.a)));
            mix(static_cast<uint64_t>(static_cast<int64_t>(insn.b)));
            mix(static_cast<uint64_t>(static_cast<int64_t>(insn.c)));
            mix(static_cast<uint64_t>(static_cast<int64_t>(insn.d)));
            mix(static_cast<uint64_t>(insn.imm));
        }
    }
    mix(static_cast<uint64_t>(memory_words));
    for (const auto &di : data_init) {
        mix(static_cast<uint64_t>(di.address));
        mix(static_cast<uint64_t>(di.value));
    }
    mix(branch_sites.size());
    return h;
}

void
Program::validate() const
{
    auto fail = [](const std::string &msg) { throw Error("program validation: " + msg); };

    if (entry < 0 || entry >= static_cast<int>(functions.size()))
        fail("entry function index out of range");

    std::vector<bool> branch_id_seen(branch_sites.size(), false);

    for (size_t fi = 0; fi < functions.size(); ++fi) {
        const Function &f = functions[fi];
        const int code_size = static_cast<int>(f.code.size());
        if (f.num_params > f.num_regs) {
            fail(strPrintf("%s: %d params exceed %d regs",
                           f.name.c_str(), f.num_params, f.num_regs));
        }
        if (code_size == 0)
            fail(f.name + ": empty function body");

        auto check_reg = [&](int r, const char *what, int pc) {
            if (r < 0 || r >= f.num_regs) {
                fail(strPrintf("%s+%d: %s register %d out of frame [0,%d)",
                               f.name.c_str(), pc, what, r, f.num_regs));
            }
        };
        auto check_target = [&](int t, int pc) {
            if (t < 0 || t >= code_size) {
                fail(strPrintf("%s+%d: control target %d out of range [0,%d)",
                               f.name.c_str(), pc, t, code_size));
            }
        };

        for (int pc = 0; pc < code_size; ++pc) {
            const Instruction &insn = f.code[pc];
            switch (insn.op) {
              case Opcode::kBr: {
                check_reg(insn.a, "condition", pc);
                check_target(insn.b, pc);
                check_target(insn.c, pc);
                int id = static_cast<int>(insn.imm);
                if (id < 0 || id >= static_cast<int>(branch_sites.size()))
                    fail(strPrintf("%s+%d: branch id %d out of site table",
                                   f.name.c_str(), pc, id));
                branch_id_seen[id] = true;
                break;
              }
              case Opcode::kJmp:
                check_target(insn.a, pc);
                break;
              case Opcode::kCall:
                if (insn.b < 0 || insn.b >= static_cast<int>(functions.size()))
                    fail(strPrintf("%s+%d: callee index %d out of range",
                                   f.name.c_str(), pc, insn.b));
                if (insn.a != -1)
                    check_reg(insn.a, "call dst", pc);
                break;
              case Opcode::kICall:
                check_reg(insn.b, "callee", pc);
                if (insn.a != -1)
                    check_reg(insn.a, "icall dst", pc);
                break;
              case Opcode::kRet:
                if (insn.a != -1)
                    check_reg(insn.a, "return value", pc);
                break;
              case Opcode::kSelect:
                check_reg(insn.a, "dst", pc);
                check_reg(insn.b, "cond", pc);
                check_reg(insn.c, "if-true", pc);
                check_reg(insn.d, "if-false", pc);
                break;
              case Opcode::kLoad:
                check_reg(insn.a, "dst", pc);
                if (insn.b != -1)
                    check_reg(insn.b, "address", pc);
                break;
              case Opcode::kStore:
                check_reg(insn.a, "src", pc);
                if (insn.b != -1)
                    check_reg(insn.b, "address", pc);
                break;
              case Opcode::kArg:
                check_reg(insn.b, "argument", pc);
                break;
              default:
                if (isBinaryAlu(insn.op)) {
                    check_reg(insn.a, "dst", pc);
                    check_reg(insn.b, "src1", pc);
                    check_reg(insn.c, "src2", pc);
                } else if (isUnaryAlu(insn.op)) {
                    check_reg(insn.a, "dst", pc);
                    check_reg(insn.b, "src", pc);
                } else if (insn.op == Opcode::kMovI || insn.op == Opcode::kMovF ||
                           insn.op == Opcode::kGetc) {
                    check_reg(insn.a, "dst", pc);
                } else if (insn.op == Opcode::kPutc || insn.op == Opcode::kPutF) {
                    check_reg(insn.a, "src", pc);
                }
                break;
            }
        }
    }

    for (const auto &di : data_init) {
        if (di.address < 0 || di.address >= memory_words)
            fail("data_init address outside the memory segment");
    }
    for (size_t i = 0; i < branch_id_seen.size(); ++i) {
        if (!branch_id_seen[i])
            fail(strPrintf("branch site %zu has no kBr instruction", i));
    }
}

} // namespace ifprob::isa

#include "isa/opcode.h"

namespace ifprob::isa {

std::string_view
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kAdd: return "add";
      case Opcode::kSub: return "sub";
      case Opcode::kMul: return "mul";
      case Opcode::kDiv: return "div";
      case Opcode::kRem: return "rem";
      case Opcode::kAnd: return "and";
      case Opcode::kOr: return "or";
      case Opcode::kXor: return "xor";
      case Opcode::kShl: return "shl";
      case Opcode::kShr: return "shr";
      case Opcode::kCmpEq: return "cmpeq";
      case Opcode::kCmpNe: return "cmpne";
      case Opcode::kCmpLt: return "cmplt";
      case Opcode::kCmpLe: return "cmple";
      case Opcode::kCmpGt: return "cmpgt";
      case Opcode::kCmpGe: return "cmpge";
      case Opcode::kNeg: return "neg";
      case Opcode::kNot: return "not";
      case Opcode::kFAdd: return "fadd";
      case Opcode::kFSub: return "fsub";
      case Opcode::kFMul: return "fmul";
      case Opcode::kFDiv: return "fdiv";
      case Opcode::kFCmpEq: return "fcmpeq";
      case Opcode::kFCmpNe: return "fcmpne";
      case Opcode::kFCmpLt: return "fcmplt";
      case Opcode::kFCmpLe: return "fcmple";
      case Opcode::kFCmpGt: return "fcmpgt";
      case Opcode::kFCmpGe: return "fcmpge";
      case Opcode::kFNeg: return "fneg";
      case Opcode::kFAbs: return "fabs";
      case Opcode::kFSqrt: return "fsqrt";
      case Opcode::kFExp: return "fexp";
      case Opcode::kFLog: return "flog";
      case Opcode::kFSin: return "fsin";
      case Opcode::kFCos: return "fcos";
      case Opcode::kItoF: return "itof";
      case Opcode::kFtoI: return "ftoi";
      case Opcode::kMovI: return "movi";
      case Opcode::kMovF: return "movf";
      case Opcode::kMov: return "mov";
      case Opcode::kLoad: return "load";
      case Opcode::kStore: return "store";
      case Opcode::kBr: return "br";
      case Opcode::kJmp: return "jmp";
      case Opcode::kArg: return "arg";
      case Opcode::kCall: return "call";
      case Opcode::kICall: return "icall";
      case Opcode::kRet: return "ret";
      case Opcode::kSelect: return "select";
      case Opcode::kGetc: return "getc";
      case Opcode::kPutc: return "putc";
      case Opcode::kPutF: return "putf";
      case Opcode::kHalt: return "halt";
      case Opcode::kNop: return "nop";
    }
    return "?";
}

bool
isBinaryAlu(Opcode op)
{
    switch (op) {
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
      case Opcode::kDiv: case Opcode::kRem:
      case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor:
      case Opcode::kShl: case Opcode::kShr:
      case Opcode::kCmpEq: case Opcode::kCmpNe: case Opcode::kCmpLt:
      case Opcode::kCmpLe: case Opcode::kCmpGt: case Opcode::kCmpGe:
      case Opcode::kFAdd: case Opcode::kFSub: case Opcode::kFMul:
      case Opcode::kFDiv:
      case Opcode::kFCmpEq: case Opcode::kFCmpNe: case Opcode::kFCmpLt:
      case Opcode::kFCmpLe: case Opcode::kFCmpGt: case Opcode::kFCmpGe:
        return true;
      default:
        return false;
    }
}

bool
isUnaryAlu(Opcode op)
{
    switch (op) {
      case Opcode::kNeg: case Opcode::kNot:
      case Opcode::kFNeg: case Opcode::kFAbs: case Opcode::kFSqrt:
      case Opcode::kFExp: case Opcode::kFLog: case Opcode::kFSin:
      case Opcode::kFCos:
      case Opcode::kItoF: case Opcode::kFtoI:
      case Opcode::kMov:
        return true;
      default:
        return false;
    }
}

bool
isIntCompare(Opcode op)
{
    return op >= Opcode::kCmpEq && op <= Opcode::kCmpGe;
}

bool
isFloatCompare(Opcode op)
{
    return op >= Opcode::kFCmpEq && op <= Opcode::kFCmpGe;
}

int
binaryAluIndex(Opcode op)
{
    // Both runs are contiguous in the enum; kNeg/kNot sit between them.
    if (op >= Opcode::kAdd && op <= Opcode::kCmpGe)
        return static_cast<int>(op) - static_cast<int>(Opcode::kAdd);
    if (op >= Opcode::kFAdd && op <= Opcode::kFCmpGe)
        return 16 + static_cast<int>(op) - static_cast<int>(Opcode::kFAdd);
    return -1;
}

int
unaryAluIndex(Opcode op)
{
    if (op == Opcode::kNeg)
        return 0;
    if (op == Opcode::kNot)
        return 1;
    if (op >= Opcode::kFNeg && op <= Opcode::kFCos)
        return 2 + static_cast<int>(op) - static_cast<int>(Opcode::kFNeg);
    if (op == Opcode::kItoF)
        return 9;
    if (op == Opcode::kFtoI)
        return 10;
    return -1;
}

bool
writesDst(Opcode op)
{
    if (isBinaryAlu(op) || isUnaryAlu(op))
        return true;
    switch (op) {
      case Opcode::kMovI: case Opcode::kMovF:
      case Opcode::kLoad: case Opcode::kSelect: case Opcode::kGetc:
        return true;
      // Calls write `a` as well, but only when a != -1; callers that care
      // must check. They are excluded here because they also have side
      // effects and must never be treated as pure register writes.
      default:
        return false;
    }
}

bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::kBr: case Opcode::kJmp: case Opcode::kCall:
      case Opcode::kICall: case Opcode::kRet: case Opcode::kHalt:
        return true;
      default:
        return false;
    }
}

} // namespace ifprob::isa

#ifndef IFPROB_ISA_CFG_H
#define IFPROB_ISA_CFG_H

#include <cstdint>
#include <vector>

#include "isa/program.h"

namespace ifprob::isa {

/** How control reaches a successor block. */
enum class EdgeKind : uint8_t {
    kFallthrough, ///< straight-line or past a call
    kJump,        ///< unconditional kJmp
    kBranchTaken, ///< kBr condition true
    kBranchFall,  ///< kBr condition false
};

/** One control-flow edge between basic blocks. */
struct CfgEdge
{
    int to = -1;           ///< successor block index
    EdgeKind kind = EdgeKind::kFallthrough;
    int branch_site = -1;  ///< static site id for branch edges, else -1
};

/**
 * Basic-block view of one function: block boundaries, per-pc block
 * membership, and the successor/predecessor edge lists. Used by the
 * trace-selection analysis (and available to optimization passes).
 */
class BlockGraph
{
  public:
    explicit BlockGraph(const Function &function);

    int numBlocks() const { return static_cast<int>(starts_.size()); }

    /** First pc of block @p b. */
    int start(int b) const { return starts_[static_cast<size_t>(b)]; }

    /** One-past-last pc of block @p b. */
    int end(int b) const { return ends_[static_cast<size_t>(b)]; }

    /** Number of instructions in block @p b. */
    int size(int b) const { return end(b) - start(b); }

    /** Block containing @p pc. */
    int blockOf(int pc) const { return block_of_[static_cast<size_t>(pc)]; }

    const std::vector<CfgEdge> &
    successors(int b) const
    {
        return succs_[static_cast<size_t>(b)];
    }

    const std::vector<CfgEdge> &
    predecessors(int b) const
    {
        // Each predecessor edge's `to` field holds the predecessor block.
        return preds_[static_cast<size_t>(b)];
    }

  private:
    std::vector<int> starts_;
    std::vector<int> ends_;
    std::vector<int> block_of_;
    std::vector<std::vector<CfgEdge>> succs_;
    std::vector<std::vector<CfgEdge>> preds_;
};

} // namespace ifprob::isa

#endif // IFPROB_ISA_CFG_H

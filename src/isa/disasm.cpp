#include "isa/disasm.h"

#include "support/str.h"

namespace ifprob::isa {

std::string
disassemble(const Instruction &insn)
{
    const std::string name(opcodeName(insn.op));
    switch (insn.op) {
      case Opcode::kMovI:
        return strPrintf("%-7s r%d, %lld", name.c_str(), insn.a,
                         static_cast<long long>(insn.imm));
      case Opcode::kMovF:
        return strPrintf("%-7s r%d, %g", name.c_str(), insn.a, insn.fimm());
      case Opcode::kLoad:
        if (insn.b == -1)
            return strPrintf("%-7s r%d, [%lld]", name.c_str(), insn.a,
                             static_cast<long long>(insn.imm));
        return strPrintf("%-7s r%d, [r%d+%lld]", name.c_str(), insn.a, insn.b,
                         static_cast<long long>(insn.imm));
      case Opcode::kStore:
        if (insn.b == -1)
            return strPrintf("%-7s [%lld], r%d", name.c_str(),
                             static_cast<long long>(insn.imm), insn.a);
        return strPrintf("%-7s [r%d+%lld], r%d", name.c_str(), insn.b,
                         static_cast<long long>(insn.imm), insn.a);
      case Opcode::kBr:
        return strPrintf("%-7s r%d, @%d, @%d   ; site %lld", name.c_str(),
                         insn.a, insn.b, insn.c,
                         static_cast<long long>(insn.imm));
      case Opcode::kJmp:
        return strPrintf("%-7s @%d", name.c_str(), insn.a);
      case Opcode::kArg:
        return strPrintf("%-7s #%d, r%d", name.c_str(), insn.a, insn.b);
      case Opcode::kCall:
        if (insn.a == -1)
            return strPrintf("%-7s f%d", name.c_str(), insn.b);
        return strPrintf("%-7s r%d, f%d", name.c_str(), insn.a, insn.b);
      case Opcode::kICall:
        if (insn.a == -1)
            return strPrintf("%-7s (r%d)", name.c_str(), insn.b);
        return strPrintf("%-7s r%d, (r%d)", name.c_str(), insn.a, insn.b);
      case Opcode::kRet:
        if (insn.a == -1)
            return name;
        return strPrintf("%-7s r%d", name.c_str(), insn.a);
      case Opcode::kSelect:
        return strPrintf("%-7s r%d, r%d ? r%d : r%d", name.c_str(), insn.a,
                         insn.b, insn.c, insn.d);
      case Opcode::kGetc:
      case Opcode::kPutc:
      case Opcode::kPutF:
        return strPrintf("%-7s r%d", name.c_str(), insn.a);
      case Opcode::kHalt:
      case Opcode::kNop:
        return name;
      default:
        break;
    }
    if (isBinaryAlu(insn.op)) {
        return strPrintf("%-7s r%d, r%d, r%d", name.c_str(), insn.a, insn.b,
                         insn.c);
    }
    // Unary ALU / mov.
    return strPrintf("%-7s r%d, r%d", name.c_str(), insn.a, insn.b);
}

std::string
disassemble(const Function &function)
{
    std::string out = strPrintf("%s(params=%d, regs=%d)%s:\n",
                                function.name.c_str(), function.num_params,
                                function.num_regs,
                                function.returns_float ? " -> float" : "");
    for (size_t pc = 0; pc < function.code.size(); ++pc) {
        out += strPrintf("  %4zu: %s\n", pc,
                         disassemble(function.code[pc]).c_str());
    }
    return out;
}

std::string
disassemble(const Program &program)
{
    std::string out = strPrintf(
        "; program: %zu functions, %lld memory words, %zu branch sites\n",
        program.functions.size(),
        static_cast<long long>(program.memory_words),
        program.branch_sites.size());
    for (size_t i = 0; i < program.functions.size(); ++i) {
        if (static_cast<int>(i) == program.entry)
            out += "; entry\n";
        out += disassemble(program.functions[i]);
        out += "\n";
    }
    return out;
}

} // namespace ifprob::isa

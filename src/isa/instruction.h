#ifndef IFPROB_ISA_INSTRUCTION_H
#define IFPROB_ISA_INSTRUCTION_H

#include <bit>
#include <cstdint>

#include "isa/opcode.h"

namespace ifprob::isa {

/**
 * One RISC operation.
 *
 * Operand meaning depends on the opcode; see the per-opcode comments in
 * opcode.h. Register operands are indices into the executing function's
 * (unbounded) register frame; -1 means "no register" where permitted.
 * Branch / jump targets are instruction indices within the same function.
 */
struct Instruction
{
    Opcode op = Opcode::kNop;
    int32_t a = -1;
    int32_t b = -1;
    int32_t c = -1;
    int32_t d = -1;      ///< fourth operand, used only by kSelect
    int64_t imm = 0;     ///< integer immediate / float bit pattern / branch id

    /** Float immediate accessor for kMovF. */
    double
    fimm() const
    {
        return std::bit_cast<double>(imm);
    }

    /** Set the float immediate (stores the bit pattern in imm). */
    void
    setFimm(double v)
    {
        imm = std::bit_cast<int64_t>(v);
    }
};

// --- Factories. Keeping construction in named helpers keeps the code
// generator readable and makes operand roles explicit at the call site. ---

inline Instruction
makeBinary(Opcode op, int dst, int src1, int src2)
{
    return {op, dst, src1, src2, -1, 0};
}

inline Instruction
makeUnary(Opcode op, int dst, int src)
{
    return {op, dst, src, -1, -1, 0};
}

inline Instruction
makeMovI(int dst, int64_t value)
{
    return {Opcode::kMovI, dst, -1, -1, -1, value};
}

inline Instruction
makeMovF(int dst, double value)
{
    Instruction insn{Opcode::kMovF, dst, -1, -1, -1, 0};
    insn.setFimm(value);
    return insn;
}

inline Instruction
makeLoad(int dst, int addr_reg, int64_t offset)
{
    return {Opcode::kLoad, dst, addr_reg, -1, -1, offset};
}

inline Instruction
makeStore(int src, int addr_reg, int64_t offset)
{
    return {Opcode::kStore, src, addr_reg, -1, -1, offset};
}

inline Instruction
makeBr(int cond_reg, int taken_pc, int fall_pc, int branch_id)
{
    return {Opcode::kBr, cond_reg, taken_pc, fall_pc, -1, branch_id};
}

inline Instruction
makeJmp(int target_pc)
{
    return {Opcode::kJmp, target_pc, -1, -1, -1, 0};
}

inline Instruction
makeArg(int index, int src_reg)
{
    return {Opcode::kArg, index, src_reg, -1, -1, 0};
}

inline Instruction
makeCall(int dst_reg, int callee)
{
    return {Opcode::kCall, dst_reg, callee, -1, -1, 0};
}

inline Instruction
makeICall(int dst_reg, int callee_reg)
{
    return {Opcode::kICall, dst_reg, callee_reg, -1, -1, 0};
}

inline Instruction
makeRet(int src_reg)
{
    return {Opcode::kRet, src_reg, -1, -1, -1, 0};
}

inline Instruction
makeSelect(int dst, int cond, int if_true, int if_false)
{
    return {Opcode::kSelect, dst, cond, if_true, if_false, 0};
}

inline Instruction
makeNop()
{
    return {Opcode::kNop, -1, -1, -1, -1, 0};
}

} // namespace ifprob::isa

#endif // IFPROB_ISA_INSTRUCTION_H

#ifndef IFPROB_ISA_OPCODE_H
#define IFPROB_ISA_OPCODE_H

#include <cstdint>
#include <string_view>

namespace ifprob::isa {

/**
 * The RISC-level operation set of the simulated machine.
 *
 * This models the individual RISC operations of a Multiflow-Trace-like CPU:
 * fixed-format three-register operations, memory accessed only through
 * explicit loads and stores, a two-target conditional branch, direct and
 * indirect calls, and a SELECT operation (the Trace front ends converted
 * simple ifs to selects; see paper footnote 2).
 *
 * Every *executed* operation counts as exactly one instruction for the
 * "instructions per break in control" measure, matching how the paper
 * counted Trace RISC operations with speculation disabled.
 */
enum class Opcode : uint8_t {
    // Integer ALU: a=dst, b=src1, c=src2.
    kAdd, kSub, kMul, kDiv, kRem,
    kAnd, kOr, kXor, kShl, kShr,
    // Integer compares produce 0/1 in dst.
    kCmpEq, kCmpNe, kCmpLt, kCmpLe, kCmpGt, kCmpGe,
    // Integer unary: a=dst, b=src.
    kNeg, kNot,

    // Floating-point ALU: a=dst, b=src1, c=src2 (doubles).
    kFAdd, kFSub, kFMul, kFDiv,
    kFCmpEq, kFCmpNe, kFCmpLt, kFCmpLe, kFCmpGt, kFCmpGe,
    // Floating-point unary: a=dst, b=src.
    kFNeg, kFAbs, kFSqrt, kFExp, kFLog, kFSin, kFCos,

    // Conversions: a=dst, b=src.
    kItoF, kFtoI,

    // Moves and constants.
    kMovI,   ///< a=dst, imm = 64-bit integer constant
    kMovF,   ///< a=dst, imm = bit pattern of a double constant
    kMov,    ///< a=dst, b=src

    // Memory. Addresses are word indices into the flat data memory.
    kLoad,   ///< a=dst, b=addr reg (or -1 for absolute), imm=offset
    kStore,  ///< a=src, b=addr reg (or -1 for absolute), imm=offset

    // Control.
    kBr,     ///< a=cond reg, b=taken pc, c=fallthrough pc, imm=branch site id
    kJmp,    ///< a=target pc
    kArg,    ///< a=argument index, b=src reg (stages a call argument)
    kCall,   ///< a=dst reg (or -1), b=callee function index
    kICall,  ///< a=dst reg (or -1), b=reg holding callee function index
    kRet,    ///< a=src reg (or -1 for void return)
    kSelect, ///< a=dst, b=cond reg, c=src if cond!=0, d=src if cond==0

    // Environment.
    kGetc,   ///< a=dst; next input byte, or -1 at end of input
    kPutc,   ///< a=src; append byte to output
    kPutF,   ///< a=src; append formatted double ("%.6g") to output
    kHalt,   ///< stop the machine (exit code 0)

    // Compiler-internal no-op; removed by code compaction, never executed.
    kNop,
};

/** Number of distinct opcodes (for table sizing). */
constexpr int kNumOpcodes = static_cast<int>(Opcode::kNop) + 1;

/** Mnemonic for @p op, e.g. "add", "br", "fmul". */
std::string_view opcodeName(Opcode op);

/** True for the two-source integer/float ALU operations. */
bool isBinaryAlu(Opcode op);

/** True for single-source register-to-register operations (incl. conversions). */
bool isUnaryAlu(Opcode op);

/** True for the integer compare operations (kCmpEq..kCmpGe). */
bool isIntCompare(Opcode op);

/** True for the floating-point compare operations (kFCmpEq..kFCmpGe). */
bool isFloatCompare(Opcode op);

/**
 * Dense ordinal of a binary ALU operation, in declaration order
 * (kAdd..kCmpGe = 0..15, kFAdd..kFCmpGe = 16..25); -1 for non-binary
 * operations. The VM's pre-decoder uses this to resolve every ALU opcode
 * to its own dispatch-table slot instead of the isBinaryAlu fallback
 * chain; kNumBinaryAlu sizes such tables.
 */
int binaryAluIndex(Opcode op);
constexpr int kNumBinaryAlu = 26;

/**
 * Dense ordinal of a unary ALU operation (kNeg, kNot = 0, 1;
 * kFNeg..kFCos = 2..8; kItoF, kFtoI = 9, 10); -1 otherwise. kMov is
 * excluded — it has its own dispatch slot.
 */
int unaryAluIndex(Opcode op);
constexpr int kNumUnaryAlu = 11;

/** True when the operation writes register operand `a` as a destination. */
bool writesDst(Opcode op);

/** True for operations that transfer control (br/jmp/call/icall/ret/halt). */
bool isControl(Opcode op);

} // namespace ifprob::isa

#endif // IFPROB_ISA_OPCODE_H

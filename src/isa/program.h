#ifndef IFPROB_ISA_PROGRAM_H
#define IFPROB_ISA_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace ifprob::isa {

/**
 * Source-level classification of a conditional branch site.
 *
 * The static heuristic predictors (paper §3, "Simple opcode heuristics")
 * and the feedback annotations both key off this information, which the
 * front end records at code-generation time.
 */
enum class BranchKind : uint8_t {
    kIf,         ///< if-statement condition
    kLoop,       ///< loop back-edge test (while/for/do)
    kLogical,    ///< short-circuit && / || evaluation
    kSwitchCase, ///< one arm of a lowered switch cascade
    kTernary,    ///< ?: lowered to a branch diamond (not a select)
};

/** Name of a BranchKind, for reports. */
std::string_view branchKindName(BranchKind kind);

/**
 * Static description of one conditional branch site.
 *
 * Branch site ids are assigned in deterministic program order at code
 * generation time, so they are stable across runs and across datasets of
 * the same program — the property the paper's IFPROBBER achieved by keying
 * counters to source branches.
 */
struct BranchSite
{
    int function = -1;     ///< index of the containing function
    int line = 0;          ///< source line of the condition
    BranchKind kind = BranchKind::kIf;
    bool backward = false; ///< taken target precedes the branch (loop-shaped)
    /** Comparison opcode feeding the branch, or kNop if not a compare. */
    Opcode compare = Opcode::kNop;
};

/**
 * A global memory object (scalar or array). The code generator records
 * one slot per global; dynamic (indexed) stores always use the owning
 * array's base address as their immediate, so this table lets
 * whole-program passes reason about which scalars are never written.
 */
struct GlobalSlot
{
    std::string name;
    int64_t address = 0;
    int64_t size = 1; ///< 1 for scalars
};

/** One compiled function. */
struct Function
{
    std::string name;
    int num_params = 0;
    int num_regs = 0;          ///< register frame size (params occupy 0..n-1)
    bool returns_float = false;
    std::vector<Instruction> code;
};

/**
 * A complete compiled program: functions + flat word-addressed data memory
 * layout + the static branch site table.
 */
struct Program
{
    /** One initialized memory word (sparse: most globals start at 0). */
    struct DataInit
    {
        int64_t address = 0;
        int64_t value = 0;
    };

    std::vector<Function> functions;
    int entry = -1;                   ///< index of main()
    int64_t memory_words = 0;         ///< data segment size, in 64-bit words
    /** Sparse initial memory image; unlisted words start at 0. */
    std::vector<DataInit> data_init;
    /** Static branch sites, indexed by the kBr instruction's imm field. */
    std::vector<BranchSite> branch_sites;
    /** Global memory objects, in address order. */
    std::vector<GlobalSlot> globals;

    /** Find a function index by name; -1 when absent. */
    int findFunction(std::string_view name) const;

    /** Total static instruction count across all functions. */
    int64_t staticSize() const;

    /**
     * Structural checksum over the code (FNV-1a). Profiles carry this
     * fingerprint so a profile database can detect being applied to a
     * different compilation of the program.
     */
    uint64_t fingerprint() const;

    /**
     * Validate structural invariants: branch/jump targets in range,
     * register indices within frames, branch ids dense and within the
     * site table, entry resolvable. Throws ifprob::Error on violation.
     */
    void validate() const;
};

} // namespace ifprob::isa

#endif // IFPROB_ISA_PROGRAM_H

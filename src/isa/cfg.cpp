#include "isa/cfg.h"

namespace ifprob::isa {

BlockGraph::BlockGraph(const Function &function)
{
    const auto &code = function.code;
    const int n = static_cast<int>(code.size());
    std::vector<bool> leader(static_cast<size_t>(n), false);
    if (n == 0)
        return;
    leader[0] = true;
    for (int pc = 0; pc < n; ++pc) {
        const Instruction &insn = code[static_cast<size_t>(pc)];
        switch (insn.op) {
          case Opcode::kBr:
            leader[static_cast<size_t>(insn.b)] = true;
            leader[static_cast<size_t>(insn.c)] = true;
            if (pc + 1 < n)
                leader[static_cast<size_t>(pc + 1)] = true;
            break;
          case Opcode::kJmp:
            leader[static_cast<size_t>(insn.a)] = true;
            if (pc + 1 < n)
                leader[static_cast<size_t>(pc + 1)] = true;
            break;
          case Opcode::kRet:
          case Opcode::kHalt:
            if (pc + 1 < n)
                leader[static_cast<size_t>(pc + 1)] = true;
            break;
          default:
            break;
        }
    }

    block_of_.resize(static_cast<size_t>(n));
    for (int pc = 0; pc < n; ++pc) {
        if (leader[static_cast<size_t>(pc)]) {
            if (!starts_.empty())
                ends_.push_back(pc);
            starts_.push_back(pc);
        }
        block_of_[static_cast<size_t>(pc)] =
            static_cast<int>(starts_.size()) - 1;
    }
    ends_.push_back(n);

    succs_.resize(starts_.size());
    preds_.resize(starts_.size());
    for (int b = 0; b < numBlocks(); ++b) {
        const Instruction &last = code[static_cast<size_t>(end(b) - 1)];
        auto add = [&](int target_pc, EdgeKind kind, int site) {
            CfgEdge edge{blockOf(target_pc), kind, site};
            succs_[static_cast<size_t>(b)].push_back(edge);
            preds_[static_cast<size_t>(edge.to)].push_back(
                CfgEdge{b, kind, site});
        };
        switch (last.op) {
          case Opcode::kBr:
            add(last.b, EdgeKind::kBranchTaken,
                static_cast<int>(last.imm));
            add(last.c, EdgeKind::kBranchFall, static_cast<int>(last.imm));
            break;
          case Opcode::kJmp:
            add(last.a, EdgeKind::kJump, -1);
            break;
          case Opcode::kRet:
          case Opcode::kHalt:
            break;
          default:
            if (end(b) < n)
                add(end(b), EdgeKind::kFallthrough, -1);
            break;
        }
    }
}

} // namespace ifprob::isa

#ifndef IFPROB_SUPPORT_MAPPED_FILE_H
#define IFPROB_SUPPORT_MAPPED_FILE_H

#include <cstddef>
#include <memory>
#include <streambuf>
#include <string>
#include <string_view>

namespace ifprob::support {

/**
 * Read-only view of a whole file, backed by mmap when the platform
 * allows it and by one buffered read of the full contents otherwise.
 *
 * The mapped variant is what makes the `IFPROBTR` disk cache zero-copy:
 * a Trace loaded from a MappedFile keeps its four event streams as
 * string_views into the mapping, so warm replay decodes straight out of
 * the page cache without ever copying stream bytes. Consumers that hold
 * views into data() must keep the MappedFile alive (the Trace does this
 * with a shared_ptr).
 *
 * Setting IFPROB_NO_MMAP=1 forces the buffered-read fallback, which is
 * also used automatically for empty files and when mmap fails.
 */
class MappedFile
{
  public:
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;
    ~MappedFile();

    /**
     * Opens and maps @p path. Returns nullptr if the file cannot be
     * opened or its size cannot be determined — callers treat that the
     * same as a cache miss.
     */
    static std::shared_ptr<MappedFile> tryOpen(const std::string &path);

    const char *data() const { return data_; }
    size_t size() const { return size_; }
    std::string_view view() const { return {data_, size_}; }

    /** True when backed by mmap rather than the buffered-read copy. */
    bool isMapped() const { return mapped_; }

  private:
    MappedFile() = default;

    const char *data_ = nullptr;
    size_t size_ = 0;
    bool mapped_ = false;
    std::string fallback_; // owns the bytes when !mapped_
};

/**
 * Minimal read-only streambuf over a string_view, used to hand a
 * mapped byte range to istream-based parsers (e.g. the RunStats blob
 * embedded in a trace file) without copying it into a stringstream.
 */
class ViewStreamBuf final : public std::streambuf
{
  public:
    explicit ViewStreamBuf(std::string_view bytes)
    {
        char *base = const_cast<char *>(bytes.data());
        setg(base, base, base + bytes.size());
    }
};

} // namespace ifprob::support

#endif // IFPROB_SUPPORT_MAPPED_FILE_H

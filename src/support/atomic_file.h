#ifndef IFPROB_SUPPORT_ATOMIC_FILE_H
#define IFPROB_SUPPORT_ATOMIC_FILE_H

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

namespace ifprob {

/** Size of @p path in bytes, or 0 when it cannot be stat'd. */
int64_t fileSizeOf(const std::string &path);

/**
 * Write a file via a temp sibling + rename so a concurrent reader (or a
 * process killed mid-write) never observes a torn entry; rename() is
 * atomic within the target directory. @p payload receives the open
 * temp-file stream (binary mode) and writes the contents. Returns the
 * bytes now at @p path, or 0 when the write could not complete — cache
 * degradation, not an error, so callers keep running uncached.
 *
 * This is the write idiom shared by the Runner's .stats cache, the
 * trace plane's .trace cache, and the ingest plane's .seg segments.
 */
int64_t
writeFileAtomically(const std::string &path,
                    const std::function<void(std::ofstream &)> &payload);

} // namespace ifprob

#endif // IFPROB_SUPPORT_ATOMIC_FILE_H

#include "support/mapped_file.h"

#include <cstdlib>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define IFPROB_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ifprob::support {

namespace {

bool
mmapDisabled()
{
    const char *env = std::getenv("IFPROB_NO_MMAP");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

bool
readWholeFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return false;
    const std::streamoff size = in.tellg();
    if (size < 0)
        return false;
    out.resize(static_cast<size_t>(size));
    in.seekg(0);
    if (size > 0 && !in.read(out.data(), size))
        return false;
    return true;
}

} // namespace

MappedFile::~MappedFile()
{
#ifdef IFPROB_HAVE_MMAP
    if (mapped_)
        ::munmap(const_cast<char *>(data_), size_);
#endif
}

std::shared_ptr<MappedFile>
MappedFile::tryOpen(const std::string &path)
{
    // Private constructor: make_shared can't reach it.
    std::shared_ptr<MappedFile> file(new MappedFile());

#ifdef IFPROB_HAVE_MMAP
    if (!mmapDisabled()) {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd >= 0) {
            struct stat st;
            if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) &&
                st.st_size > 0) {
                void *addr =
                    ::mmap(nullptr, static_cast<size_t>(st.st_size),
                           PROT_READ, MAP_PRIVATE, fd, 0);
                if (addr != MAP_FAILED) {
                    ::close(fd);
                    file->data_ = static_cast<const char *>(addr);
                    file->size_ = static_cast<size_t>(st.st_size);
                    file->mapped_ = true;
                    return file;
                }
            }
            ::close(fd);
        }
        // Fall through: unopenable files are retried below so the
        // buffered path decides (it distinguishes missing from empty).
    }
#endif

    if (!readWholeFile(path, file->fallback_))
        return nullptr;
    file->data_ = file->fallback_.data();
    file->size_ = file->fallback_.size();
    return file;
}

} // namespace ifprob::support

#include "support/atomic_file.h"

#include <atomic>
#include <filesystem>

#include <unistd.h>

#include "support/str.h"

namespace ifprob {

int64_t
fileSizeOf(const std::string &path)
{
    std::error_code ec;
    auto size = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<int64_t>(size);
}

int64_t
writeFileAtomically(const std::string &path,
                    const std::function<void(std::ofstream &)> &payload)
{
    static std::atomic<uint64_t> temp_seq{0};
    std::string tmp = strPrintf(
        "%s.tmp.%d.%llu", path.c_str(), static_cast<int>(::getpid()),
        static_cast<unsigned long long>(
            temp_seq.fetch_add(1, std::memory_order_relaxed)));
    std::ofstream out(tmp, std::ios::binary);
    if (!out)
        return 0;
    payload(out);
    out.close();
    if (!out) {
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return 0;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return 0;
    }
    return fileSizeOf(path);
}

} // namespace ifprob

#ifndef IFPROB_SUPPORT_SHARDED_MAP_H
#define IFPROB_SUPPORT_SHARDED_MAP_H

#include <algorithm>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace ifprob {

/**
 * A map from Key to shared_ptr<Slot>, partitioned across a fixed set of
 * independently locked shards so concurrent get-or-create calls on
 * different keys rarely contend. This is the memoization idiom the
 * Runner's run-once stats cache and record-once trace cache both grew
 * independently; the ingest ProfileStore is the third user.
 *
 * The map only ever hands out shared_ptrs, so a returned Slot stays
 * valid after clear() and regardless of concurrent mutation. Typical
 * use pairs the Slot with a std::once_flag: the map guarantees one
 * shared Slot per key, call_once guarantees one initialization.
 *
 * Hash picks the shard only — within a shard, keys live in an ordered
 * std::map, which keys() relies on for deterministic iteration.
 */
template <typename Key, typename Slot, typename Hash = std::hash<Key>>
class ShardedSlotMap
{
  public:
    static constexpr size_t kShards = 16;

    /** The slot for @p key, default-constructed on first request.
     *  Exactly one Slot ever exists per key; concurrent callers for the
     *  same new key race only on the shard mutex, and all receive the
     *  same shared_ptr. */
    std::shared_ptr<Slot>
    slot(const Key &key)
    {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mu);
        auto &entry = shard.slots[key];
        if (!entry)
            entry = std::make_shared<Slot>();
        return entry;
    }

    /** The slot for @p key, or nullptr when none exists. Never creates. */
    std::shared_ptr<Slot>
    peek(const Key &key) const
    {
        const Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.slots.find(key);
        return it == shard.slots.end() ? nullptr : it->second;
    }

    /** Every key currently present, globally sorted (Key::operator<).
     *  A point-in-time union of the shards, not a cross-shard atomic
     *  snapshot. */
    std::vector<Key>
    keys() const
    {
        std::vector<Key> out;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            for (const auto &[key, slot] : shard.slots)
                out.push_back(key);
        }
        std::sort(out.begin(), out.end());
        return out;
    }

    size_t
    size() const
    {
        size_t n = 0;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            n += shard.slots.size();
        }
        return n;
    }

    /** Drop every entry. Slots handed out earlier stay alive through
     *  their shared_ptrs; callers must not race clear() with slot use
     *  if they rely on key-to-slot identity. */
    void
    clear()
    {
        for (Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mu);
            shard.slots.clear();
        }
    }

  private:
    struct Shard
    {
        mutable std::mutex mu;
        std::map<Key, std::shared_ptr<Slot>> slots;
    };

    Shard &
    shardFor(const Key &key)
    {
        return shards_[Hash{}(key) % kShards];
    }
    const Shard &
    shardFor(const Key &key) const
    {
        return shards_[Hash{}(key) % kShards];
    }

    Shard shards_[kShards];
};

} // namespace ifprob

#endif // IFPROB_SUPPORT_SHARDED_MAP_H

#include "support/str.h"

#include <cctype>
#include <cstdio>

namespace ifprob {

std::string
strPrintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view text)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        size_t start = i;
        while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        if (i > start)
            out.emplace_back(text.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string_view
trim(std::string_view text)
{
    size_t b = 0;
    while (b < text.size() && std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    size_t e = text.size();
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    return text.substr(b, e - b);
}

std::string
withCommas(long long value)
{
    bool neg = value < 0;
    unsigned long long v = neg ? -static_cast<unsigned long long>(value) : value;
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count > 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    if (neg)
        out.push_back('-');
    return std::string(out.rbegin(), out.rend());
}

std::string
sanitizeFileName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(c);
        else
            out.push_back('_');
    }
    return out;
}

} // namespace ifprob

#ifndef IFPROB_SUPPORT_BINIO_H
#define IFPROB_SUPPORT_BINIO_H

#include <cstdint>
#include <string>

#include "support/error.h"
#include "support/str.h"

namespace ifprob::binio {

/**
 * Little-endian scalar, LEB128 varint, and FNV-1a helpers shared by
 * every versioned binary cache format (IFPROBRS run stats, IFPROBTR
 * traces, IFPROBPS profile segments). Byte-explicit rather than
 * memcpy-of-struct so the on-disk formats are identical on any host.
 */

inline void
putU32(std::string &buf, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void
putU64(std::string &buf, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void
putI64(std::string &buf, int64_t v)
{
    putU64(buf, static_cast<uint64_t>(v));
}

inline uint32_t
getU32(const unsigned char *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

inline uint64_t
getU64(const unsigned char *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

inline int64_t
getI64(const unsigned char *p)
{
    return static_cast<int64_t>(getU64(p));
}

inline void
putVarint(std::string &buf, uint64_t v)
{
    while (v >= 0x80) {
        buf.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    buf.push_back(static_cast<char>(v));
}

/** Decode one varint, advancing @p p; throws on stream overrun. */
inline uint64_t
getVarint(const unsigned char *&p, const unsigned char *end,
          const char *what)
{
    uint64_t v = 0;
    int shift = 0;
    while (true) {
        if (p == end || shift > 63)
            throw Error(strPrintf("corrupt %s varint stream", what));
        const unsigned char byte = *p++;
        v |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return v;
        shift += 7;
    }
}

/** FNV-1a 64 starting point for payload checksums. */
inline constexpr uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;

/** Fold @p n bytes of @p data into the running FNV-1a 64 hash @p h. */
inline uint64_t
fnv1a(uint64_t h, const void *data, size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace ifprob::binio

#endif // IFPROB_SUPPORT_BINIO_H

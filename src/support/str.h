#ifndef IFPROB_SUPPORT_STR_H
#define IFPROB_SUPPORT_STR_H

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace ifprob {

/**
 * printf-style formatting into a std::string.
 *
 * GCC 12 (our toolchain) does not ship std::format, so the library uses
 * this small helper for all diagnostics and report rendering.
 */
std::string strPrintf(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Split @p text on @p sep; empty fields are preserved. */
std::vector<std::string> split(std::string_view text, char sep);

/** Split @p text into whitespace-separated tokens; empty tokens dropped. */
std::vector<std::string> splitWhitespace(std::string_view text);

/** True when @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/**
 * Render a number with thousands separators ("12,345,678") for the
 * human-readable experiment tables.
 */
std::string withCommas(long long value);

/**
 * Reduce @p name to a safe file-name component: alphanumerics pass
 * through, everything else becomes '_'. Shared by every cache that keys
 * files on workload/program names (stats, trace, ingest segments).
 */
std::string sanitizeFileName(const std::string &name);

} // namespace ifprob

#endif // IFPROB_SUPPORT_STR_H

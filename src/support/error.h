#ifndef IFPROB_SUPPORT_ERROR_H
#define IFPROB_SUPPORT_ERROR_H

#include <stdexcept>
#include <string>

namespace ifprob {

/**
 * Base class for all errors raised by the ifprob library.
 *
 * The library separates two failure domains:
 *  - CompileError: the minic source presented to the compiler is invalid
 *    (syntax error, type error, unresolved name, ...). The message contains
 *    every diagnostic collected by the front end, one per line.
 *  - RuntimeError: a compiled program trapped while executing on the VM
 *    (out-of-bounds access, division by zero, stack overflow, instruction
 *    budget exceeded, ...).
 */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg) : std::runtime_error(msg) {}
};

/** Raised when minic source fails to compile. */
class CompileError : public Error
{
  public:
    explicit CompileError(const std::string &msg) : Error(msg) {}
};

/** Raised when a program traps while running on the VM. */
class RuntimeError : public Error
{
  public:
    explicit RuntimeError(const std::string &msg) : Error(msg) {}
};

} // namespace ifprob

#endif // IFPROB_SUPPORT_ERROR_H

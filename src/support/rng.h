#ifndef IFPROB_SUPPORT_RNG_H
#define IFPROB_SUPPORT_RNG_H

#include <cstdint>

namespace ifprob {

/**
 * Deterministic 64-bit PRNG (splitmix64).
 *
 * Used by the dataset generators and the property tests. The entire
 * experiment pipeline must be reproducible bit-for-bit from a seed, so
 * std::mt19937 (whose distributions are implementation-defined) is avoided
 * in favour of this fully specified generator.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be positive. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

  private:
    uint64_t state_;
};

} // namespace ifprob

#endif // IFPROB_SUPPORT_RNG_H

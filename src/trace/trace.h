#ifndef IFPROB_TRACE_TRACE_H
#define IFPROB_TRACE_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/mapped_file.h"
#include "vm/machine.h"
#include "vm/observer.h"
#include "vm/run_stats.h"

namespace ifprob::trace {

/**
 * One (program, input) run's full control-flow event stream, recorded
 * once and replayable through any number of vm::BranchObservers without
 * touching the VM (see docs/trace.md).
 *
 * The paper's methodology is itself trace-driven — IFPROBBER/MFPixie
 * record a run once and every analysis reads the recording — and this
 * is the same inversion: `dynamic_baselines` used to re-execute each
 * workload once per predictor; with a Trace the VM runs once and every
 * observer simulates from the recording at memory speed.
 *
 * Storage is four split streams plus a site dictionary, sized so the
 * common event costs ~2 bytes:
 *  - deltas: one LEB128 varint per event — the instruction-count delta
 *    since the previous event (branches average 5-10 instructions
 *    apart, so most deltas fit one byte; a >2^32 gap still round-trips).
 *  - tags: one bit per event (LSB-first) — 0 = conditional branch,
 *    1 = unavoidable break (indirect call or its matching return),
 *    interleaving onUnavoidableBreak events in stream order.
 *  - taken: one bit per *branch* event — the direction.
 *  - sites: one varint per *branch* event — an index into site_dict,
 *    which lists static site ids in order of first appearance.
 *
 * The final RunStats of the recorded run are embedded, so trace
 * consumers that only need aggregate counters (e.g. the layout bench's
 * feedback pass) skip the VM entirely on a cache hit.
 */
struct Trace
{
    /** Fingerprint of the executed image (cache invalidation key). */
    uint64_t fingerprint = 0;
    std::string workload;
    std::string dataset;

    /** Aggregate counters of the recorded run (bit-identical to an
     *  unobserved Machine::run of the same program and input). */
    vm::RunStats stats;

    int64_t events = 0;        ///< branch_events + break_events
    int64_t branch_events = 0; ///< onBranch callbacks recorded
    int64_t break_events = 0;  ///< onUnavoidableBreak callbacks recorded

    /** Dictionary: compact index -> static branch site id, in order of
     *  first appearance in the stream. */
    std::vector<int32_t> site_dict;

    std::string deltas; ///< varint instruction-count deltas, 1/event
    std::string tags;   ///< bitstream, 1 bit/event (1 = break)
    std::string taken;  ///< bitstream, 1 bit/branch event
    std::string sites;  ///< varint dictionary indexes, 1/branch event

    /**
     * Zero-copy backing for traces loaded via loadMapped: the four
     * streams live as views into the mapped file (the owned strings
     * above stay empty), so warm replay decodes straight out of the
     * page cache without copying stream bytes. Everything that reads
     * stream bytes goes through the *Bytes() accessors, which pick the
     * views when a backing file is present.
     */
    struct StreamViews
    {
        std::string_view deltas, tags, taken, sites;
    };
    std::shared_ptr<support::MappedFile> backing;
    StreamViews views;

    std::string_view deltasBytes() const
    {
        return backing ? views.deltas : std::string_view(deltas);
    }
    std::string_view tagsBytes() const
    {
        return backing ? views.tags : std::string_view(tags);
    }
    std::string_view takenBytes() const
    {
        return backing ? views.taken : std::string_view(taken);
    }
    std::string_view sitesBytes() const
    {
        return backing ? views.sites : std::string_view(sites);
    }

    /** In-memory footprint of the encoded streams (metrics currency). */
    int64_t byteSize() const;

    /**
     * Versioned little-endian on-disk form, following the IFPROBRS
     * RunStats cache format: magic, version, fingerprint, event counts,
     * an FNV-1a checksum of the payload, the names, the dictionary, the
     * four streams, then the embedded RunStats binary blob.
     */
    static constexpr char kMagic[8] = {'I', 'F', 'P', 'R',
                                       'O', 'B', 'T', 'R'};
    static constexpr uint32_t kVersion = 1;

    /** Write the binary form (open @p os with std::ios::binary). */
    void save(std::ostream &os) const;

    /**
     * Read the binary form. Throws Error on a bad magic, an unsupported
     * version, truncation, implausible counts, a payload checksum
     * mismatch, or — when @p expected_fingerprint is nonzero — a
     * fingerprint mismatch. Callers (Runner::traceOf) treat any throw
     * as a corrupt cache entry and fall back to re-recording.
     */
    static Trace load(std::istream &is, uint64_t expected_fingerprint = 0);

    /**
     * Parse the binary form straight out of @p file without copying the
     * event streams: the returned Trace keeps them as views into the
     * mapping (see StreamViews) and holds @p file alive via `backing`.
     * Same validation and throw conditions as load(); the checksum pass
     * faults the pages in but copies nothing.
     */
    static Trace loadMapped(std::shared_ptr<support::MappedFile> file,
                            uint64_t expected_fingerprint = 0);
};

/**
 * The recording observer: attach to Machine::run, then take() the
 * finished Trace. Appends to the split streams inline in the callbacks
 * (a few ns per event), so a recording run costs barely more than any
 * other observed run.
 */
class Recorder : public vm::BranchObserver
{
  public:
    Recorder() = default;

    void onBranch(int site_id, bool taken, int64_t instructions) override;
    void onUnavoidableBreak(int64_t instructions) override;

    /** Finalize into a Trace (stats/identity filled by the caller). */
    Trace take() &&;

  private:
    void pushDelta(int64_t instructions);
    void pushBit(std::string &stream, int64_t index, bool bit);

    Trace trace_;
    int64_t last_instructions_ = 0;
    /** site id -> dictionary index (-1 = not yet seen). */
    std::vector<int32_t> dict_index_;
};

/**
 * Incremental block decoder for the batched replay path: decodes the
 * deltas/tags/taken/sites streams vm::EventBlock::kCapacity events at a
 * time into a caller-provided reusable block. The constructor validates
 * the stream invariants against the Trace header (exact bitstream
 * lengths, tag-bit population == break_events), so decode never reads
 * past a stream; next() raises named errors for short varint streams,
 * out-of-dictionary site indexes, and — once all header-declared events
 * have decoded — trailing stream bytes.
 */
class BlockReader
{
  public:
    /** @p materialize_instructions false (every observer declared
     *  !wantsInstructionCounts()) skips computing cumulative
     *  instruction counts; EventBlock::instructions is then
     *  unspecified. The delta stream is still consumed and validated
     *  identically, so error behavior does not depend on the flag. */
    explicit BlockReader(const Trace &t,
                         bool materialize_instructions = true);

    /** Decode the next block; false when all events are consumed (the
     *  false-returning call performs the trailing-bytes check). */
    bool next(vm::EventBlock &block);

  private:
    const Trace &t_;
    const unsigned char *dp_, *dend_; ///< deltas cursor
    const unsigned char *sp_, *send_; ///< sites cursor
    std::string_view tags_, taken_;
    const int32_t *dict_;
    size_t dict_size_;
    int32_t dict_max_ = -1; ///< max site id in the dictionary
    bool materialize_instructions_;
    int64_t ev_ = 0, branch_ = 0, instructions_ = 0;
};

/**
 * IFPROB_TRACE_BATCH=off (or =0) pins trace::replay to the original
 * one-event-at-a-time scalar decode loop, kept verbatim as the
 * differential oracle for the batched path (CI byte-diffs bench output
 * under both settings). Anything else — the default — replays in
 * EventBlock batches through BranchObserver::onBatch. Read per replay
 * call so tests can flip it at runtime.
 */
bool batchReplay();

/** Stream @p t's events through one observer, in recorded order. */
void replay(const Trace &t, vm::BranchObserver &observer);

/**
 * Stream @p t's events through a fan-out of observers: each event is
 * delivered to every observer (in vector order) before the next event,
 * so one decode pass simulates N predictors. For observers that do not
 * read each other's state this is indistinguishable from N sequential
 * replays — tests/test_trace.cpp holds both orderings bit-identical.
 */
void replay(const Trace &t,
            const std::vector<vm::BranchObserver *> &observers);

/**
 * Execute @p program over @p input with a Recorder attached and return
 * the finished Trace (stats embedded, identity fields filled from the
 * arguments). The convenience entry point Runner::traceOf wraps with
 * memoization and the on-disk cache.
 */
Trace record(const isa::Program &program, std::string_view input,
             const vm::RunLimits &limits, std::string workload,
             std::string dataset);

/**
 * IFPROB_TRACE_PLANE=reference selects the live-observed path in the
 * ported bench binaries — one full VM execution per observer, kept as
 * the differential oracle (CI diffs the two planes' tables byte for
 * byte). Anything else (the default) records once via Runner::traceOf
 * and replays. Read per call: the entry points are not hot, and tests
 * flip the variable at runtime.
 */
bool referencePlane();

} // namespace ifprob::trace

#endif // IFPROB_TRACE_TRACE_H

#include "trace/trace.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>

#include "isa/program.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/binio.h"
#include "support/error.h"
#include "support/str.h"

namespace ifprob::trace {

namespace {

// Little-endian scalars, LEB128 varints, and FNV-1a come from
// support/binio.h — the encoding discipline shared by every versioned
// binary cache format in the repo.
using binio::getU32;
using binio::getU64;
using binio::getVarint;
using binio::putU32;
using binio::putU64;
using binio::putVarint;

bool
getBit(std::string_view stream, int64_t index)
{
    return (static_cast<unsigned char>(
                stream[static_cast<size_t>(index >> 3)]) >>
            (index & 7)) &
           1;
}

/** FNV-1a 64 over the variable-length payload (names, dict, streams). */
uint64_t
payloadChecksum(const Trace &t)
{
    using binio::fnv1a;
    uint64_t h = binio::kFnv1aOffset;
    h = fnv1a(h, t.workload.data(), t.workload.size());
    h = fnv1a(h, t.dataset.data(), t.dataset.size());
    h = fnv1a(h, t.site_dict.data(),
              t.site_dict.size() * sizeof(int32_t));
    const std::string_view streams[] = {t.deltasBytes(), t.tagsBytes(),
                                        t.takenBytes(), t.sitesBytes()};
    for (std::string_view s : streams)
        h = fnv1a(h, s.data(), s.size());
    return h;
}

/** Fill @p buf from the stream or throw the truncation error. */
void
readExact(std::istream &is, std::vector<unsigned char> &buf, size_t n)
{
    buf.resize(n);
    is.read(reinterpret_cast<char *>(buf.data()),
            static_cast<std::streamsize>(n));
    if (static_cast<size_t>(is.gcount()) != n)
        throw Error("Trace::load: truncated input");
}

void
readString(std::istream &is, std::string &out, size_t n, const char *what)
{
    if (n > (1ull << 40))
        throw Error(strPrintf("Trace::load: implausible %s size", what));
    out.resize(n);
    is.read(out.data(), static_cast<std::streamsize>(n));
    if (static_cast<size_t>(is.gcount()) != n)
        throw Error("Trace::load: truncated input");
}

/** magic + version + reserved + fingerprint + 3 counts + checksum. */
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 3 * 8 + 8;

} // namespace

int64_t
Trace::byteSize() const
{
    return static_cast<int64_t>(
        deltasBytes().size() + tagsBytes().size() + takenBytes().size() +
        sitesBytes().size() + site_dict.size() * sizeof(int32_t));
}

void
Trace::save(std::ostream &os) const
{
    std::string buf;
    buf.reserve(kHeaderBytes + 2 * 4 + workload.size() + dataset.size() +
                8 + site_dict.size() * 4 + 4 * 8 +
                static_cast<size_t>(byteSize()));
    buf.append(kMagic, sizeof(kMagic));
    putU32(buf, kVersion);
    putU32(buf, 0); // reserved
    putU64(buf, fingerprint);
    putU64(buf, static_cast<uint64_t>(events));
    putU64(buf, static_cast<uint64_t>(branch_events));
    putU64(buf, static_cast<uint64_t>(break_events));
    putU64(buf, payloadChecksum(*this));
    putU32(buf, static_cast<uint32_t>(workload.size()));
    buf.append(workload);
    putU32(buf, static_cast<uint32_t>(dataset.size()));
    buf.append(dataset);
    putU64(buf, site_dict.size());
    for (int32_t site : site_dict)
        putU32(buf, static_cast<uint32_t>(site));
    const std::string_view streams[] = {deltasBytes(), tagsBytes(),
                                        takenBytes(), sitesBytes()};
    for (std::string_view s : streams) {
        putU64(buf, s.size());
        buf.append(s);
    }
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    stats.saveBinary(os, fingerprint);
}

Trace
Trace::load(std::istream &is, uint64_t expected_fingerprint)
{
    std::vector<unsigned char> buf;
    readExact(is, buf, kHeaderBytes);
    if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0)
        throw Error("Trace::load: bad magic");
    const uint32_t version = getU32(buf.data() + 8);
    if (version != kVersion) {
        throw Error(
            strPrintf("Trace::load: unsupported version %u", version));
    }
    Trace t;
    t.fingerprint = getU64(buf.data() + 16);
    if (expected_fingerprint != 0 &&
        t.fingerprint != expected_fingerprint) {
        throw Error(strPrintf("Trace::load: fingerprint mismatch "
                              "(%016llx vs %016llx)",
                              static_cast<unsigned long long>(
                                  t.fingerprint),
                              static_cast<unsigned long long>(
                                  expected_fingerprint)));
    }
    t.events = static_cast<int64_t>(getU64(buf.data() + 24));
    t.branch_events = static_cast<int64_t>(getU64(buf.data() + 32));
    t.break_events = static_cast<int64_t>(getU64(buf.data() + 40));
    const uint64_t checksum = getU64(buf.data() + 48);
    if (t.events < 0 || t.branch_events < 0 || t.break_events < 0 ||
        t.events > (1ll << 40) ||
        t.branch_events + t.break_events != t.events)
        throw Error("Trace::load: corrupt event counts");

    readExact(is, buf, 4);
    readString(is, t.workload, getU32(buf.data()), "workload name");
    readExact(is, buf, 4);
    readString(is, t.dataset, getU32(buf.data()), "dataset name");

    readExact(is, buf, 8);
    const uint64_t dict_count = getU64(buf.data());
    if (dict_count > (1u << 26) ||
        dict_count > static_cast<uint64_t>(t.branch_events))
        throw Error("Trace::load: corrupt site dictionary size");
    readExact(is, buf, static_cast<size_t>(dict_count) * 4);
    t.site_dict.resize(static_cast<size_t>(dict_count));
    for (size_t i = 0; i < t.site_dict.size(); ++i)
        t.site_dict[i] = static_cast<int32_t>(getU32(buf.data() + i * 4));

    const struct
    {
        std::string *stream;
        uint64_t max_len;
        bool exact; ///< bitstreams have one valid length; replay's
                    ///< getBit relies on it, so enforce here
        const char *what;
    } streams[] = {
        // A varint spans at most 10 bytes; bitstreams are 1 bit/event.
        {&t.deltas, static_cast<uint64_t>(t.events) * 10, false,
         "deltas"},
        {&t.tags, static_cast<uint64_t>(t.events + 7) / 8, true, "tags"},
        {&t.taken, static_cast<uint64_t>(t.branch_events + 7) / 8, true,
         "taken"},
        {&t.sites, static_cast<uint64_t>(t.branch_events) * 10, false,
         "sites"},
    };
    for (const auto &s : streams) {
        readExact(is, buf, 8);
        const uint64_t len = getU64(buf.data());
        if (len > s.max_len || (s.exact && len != s.max_len)) {
            throw Error(
                strPrintf("Trace::load: implausible %s size", s.what));
        }
        readString(is, *s.stream, static_cast<size_t>(len), s.what);
    }
    if (payloadChecksum(t) != checksum)
        throw Error("Trace::load: payload checksum mismatch");
    t.stats = vm::RunStats::loadBinary(is, t.fingerprint);
    return t;
}

namespace {

/** Bounds-checked cursor over the mapped bytes for loadMapped. */
struct ByteCursor
{
    const unsigned char *p;
    const unsigned char *end;

    void
    need(size_t n) const
    {
        if (static_cast<size_t>(end - p) < n)
            throw Error("Trace::load: truncated input");
    }
    uint32_t
    u32()
    {
        need(4);
        const uint32_t v = getU32(p);
        p += 4;
        return v;
    }
    uint64_t
    u64()
    {
        need(8);
        const uint64_t v = getU64(p);
        p += 8;
        return v;
    }
    std::string_view
    bytes(size_t n, const char *what)
    {
        if (n > (1ull << 40))
            throw Error(
                strPrintf("Trace::load: implausible %s size", what));
        need(n);
        const auto v =
            std::string_view(reinterpret_cast<const char *>(p), n);
        p += n;
        return v;
    }
};

} // namespace

Trace
Trace::loadMapped(std::shared_ptr<support::MappedFile> file,
                  uint64_t expected_fingerprint)
{
    if (!file)
        throw Error("Trace::loadMapped: null file");
    ByteCursor c{
        reinterpret_cast<const unsigned char *>(file->data()),
        reinterpret_cast<const unsigned char *>(file->data()) +
            file->size()};

    c.need(kHeaderBytes);
    if (std::memcmp(c.p, kMagic, sizeof(kMagic)) != 0)
        throw Error("Trace::load: bad magic");
    c.p += sizeof(kMagic);
    const uint32_t version = c.u32();
    if (version != kVersion) {
        throw Error(
            strPrintf("Trace::load: unsupported version %u", version));
    }
    c.u32(); // reserved
    Trace t;
    t.fingerprint = c.u64();
    if (expected_fingerprint != 0 &&
        t.fingerprint != expected_fingerprint) {
        throw Error(strPrintf("Trace::load: fingerprint mismatch "
                              "(%016llx vs %016llx)",
                              static_cast<unsigned long long>(
                                  t.fingerprint),
                              static_cast<unsigned long long>(
                                  expected_fingerprint)));
    }
    t.events = static_cast<int64_t>(c.u64());
    t.branch_events = static_cast<int64_t>(c.u64());
    t.break_events = static_cast<int64_t>(c.u64());
    const uint64_t checksum = c.u64();
    if (t.events < 0 || t.branch_events < 0 || t.break_events < 0 ||
        t.events > (1ll << 40) ||
        t.branch_events + t.break_events != t.events)
        throw Error("Trace::load: corrupt event counts");

    t.workload = std::string(c.bytes(c.u32(), "workload name"));
    t.dataset = std::string(c.bytes(c.u32(), "dataset name"));

    const uint64_t dict_count = c.u64();
    if (dict_count > (1u << 26) ||
        dict_count > static_cast<uint64_t>(t.branch_events))
        throw Error("Trace::load: corrupt site dictionary size");
    c.need(static_cast<size_t>(dict_count) * 4);
    t.site_dict.resize(static_cast<size_t>(dict_count));
    for (size_t i = 0; i < t.site_dict.size(); ++i) {
        t.site_dict[i] = static_cast<int32_t>(getU32(c.p));
        c.p += 4;
    }

    const struct
    {
        std::string_view *view;
        uint64_t max_len;
        bool exact;
        const char *what;
    } streams[] = {
        {&t.views.deltas, static_cast<uint64_t>(t.events) * 10, false,
         "deltas"},
        {&t.views.tags, static_cast<uint64_t>(t.events + 7) / 8, true,
         "tags"},
        {&t.views.taken, static_cast<uint64_t>(t.branch_events + 7) / 8,
         true, "taken"},
        {&t.views.sites, static_cast<uint64_t>(t.branch_events) * 10,
         false, "sites"},
    };
    for (const auto &s : streams) {
        const uint64_t len = c.u64();
        if (len > s.max_len || (s.exact && len != s.max_len)) {
            throw Error(
                strPrintf("Trace::load: implausible %s size", s.what));
        }
        *s.view = c.bytes(static_cast<size_t>(len), s.what);
    }
    t.backing = std::move(file); // activates the *Bytes() views
    if (payloadChecksum(t) != checksum)
        throw Error("Trace::load: payload checksum mismatch");

    // The embedded RunStats blob is the tail of the mapping; parse it
    // through a view-backed streambuf rather than copying it out.
    support::ViewStreamBuf tail_buf(std::string_view(
        reinterpret_cast<const char *>(c.p),
        static_cast<size_t>(c.end - c.p)));
    std::istream tail(&tail_buf);
    t.stats = vm::RunStats::loadBinary(tail, t.fingerprint);
    return t;
}

// --- Recorder ---------------------------------------------------------------

void
Recorder::pushDelta(int64_t instructions)
{
    putVarint(trace_.deltas,
              static_cast<uint64_t>(instructions - last_instructions_));
    last_instructions_ = instructions;
}

void
Recorder::pushBit(std::string &stream, int64_t index, bool bit)
{
    if ((index & 7) == 0)
        stream.push_back('\0');
    if (bit)
        stream.back() |= static_cast<char>(1 << (index & 7));
}

void
Recorder::onBranch(int site_id, bool taken, int64_t instructions)
{
    pushDelta(instructions);
    pushBit(trace_.tags, trace_.events, false);
    pushBit(trace_.taken, trace_.branch_events, taken);
    if (static_cast<size_t>(site_id) >= dict_index_.size())
        dict_index_.resize(static_cast<size_t>(site_id) + 1, -1);
    int32_t idx = dict_index_[static_cast<size_t>(site_id)];
    if (idx < 0) {
        idx = static_cast<int32_t>(trace_.site_dict.size());
        dict_index_[static_cast<size_t>(site_id)] = idx;
        trace_.site_dict.push_back(site_id);
    }
    putVarint(trace_.sites, static_cast<uint64_t>(idx));
    ++trace_.events;
    ++trace_.branch_events;
}

void
Recorder::onUnavoidableBreak(int64_t instructions)
{
    pushDelta(instructions);
    pushBit(trace_.tags, trace_.events, true);
    ++trace_.events;
    ++trace_.break_events;
}

Trace
Recorder::take() &&
{
    return std::move(trace_);
}

// --- Replay -----------------------------------------------------------------

namespace {

/**
 * Validate stream invariants against the Trace header before decoding,
 * so the decode loops can index the bitstreams unchecked: exact
 * bitstream lengths, and the tag-bit population must equal the declared
 * break count (which bounds every `taken` bit index to branch_events).
 * Shared by the scalar and batched paths so both raise identical named
 * errors on corrupt hand-built traces.
 */
void
validateForReplay(const Trace &t)
{
    if (t.events < 0 || t.branch_events < 0 || t.break_events < 0 ||
        t.branch_events + t.break_events != t.events)
        throw Error("Trace::replay: header event counts disagree");
    const std::string_view tags = t.tagsBytes();
    const std::string_view taken = t.takenBytes();
    const auto tags_expect = static_cast<size_t>(t.events + 7) / 8;
    const auto taken_expect =
        static_cast<size_t>(t.branch_events + 7) / 8;
    if (tags.size() != tags_expect) {
        throw Error(strPrintf("Trace::replay: tags stream is %zu bytes, "
                              "expected %zu",
                              tags.size(), tags_expect));
    }
    if (taken.size() != taken_expect) {
        throw Error(strPrintf("Trace::replay: taken stream is %zu "
                              "bytes, expected %zu",
                              taken.size(), taken_expect));
    }
    int64_t breaks = 0;
    for (size_t i = 0; i < tags.size(); ++i) {
        unsigned char byte = static_cast<unsigned char>(tags[i]);
        if (i + 1 == tags.size() && (t.events & 7) != 0)
            byte &= static_cast<unsigned char>((1u << (t.events & 7)) -
                                               1); // mask padding bits
        breaks += __builtin_popcount(byte);
    }
    if (breaks != t.break_events) {
        throw Error(strPrintf("Trace::replay: tag stream has %lld break "
                              "bits, header declares %lld",
                              static_cast<long long>(breaks),
                              static_cast<long long>(t.break_events)));
    }
}

void
checkTrailing(const unsigned char *p, const unsigned char *end,
              const char *what)
{
    if (p != end) {
        throw Error(strPrintf("Trace::replay: %zu trailing bytes in %s "
                              "stream after final event",
                              static_cast<size_t>(end - p), what));
    }
}

[[noreturn]] void
throwShortStream(const char *what, int64_t decoded, int64_t expected)
{
    throw Error(strPrintf("Trace::replay: short %s stream (%lld of "
                          "%lld events decoded)",
                          what, static_cast<long long>(decoded),
                          static_cast<long long>(expected)));
}

/** The scalar decode loop — the pre-batching replay path, kept intact
 *  as the differential oracle behind IFPROB_TRACE_BATCH=off. @p Sink
 *  receives fully decoded events and fans them out (inlined away for
 *  the single-observer case). */
template <typename Sink>
void
replayEvents(const Trace &t, Sink &&sink)
{
    const int64_t t0 = obs::nowMicros();
    const std::string_view deltas = t.deltasBytes();
    const std::string_view sites = t.sitesBytes();
    const std::string_view tags = t.tagsBytes();
    const std::string_view taken = t.takenBytes();
    const auto *dp =
        reinterpret_cast<const unsigned char *>(deltas.data());
    const auto *dend = dp + deltas.size();
    const auto *sp = reinterpret_cast<const unsigned char *>(sites.data());
    const auto *send = sp + sites.size();
    const size_t dict_size = t.site_dict.size();
    int64_t instructions = 0;
    int64_t branch = 0;
    for (int64_t ev = 0; ev < t.events; ++ev) {
        if (dp == dend)
            throwShortStream("deltas", ev, t.events);
        instructions +=
            static_cast<int64_t>(getVarint(dp, dend, "deltas"));
        if (getBit(tags, ev)) {
            sink.onBreak(instructions);
            continue;
        }
        if (sp == send)
            throwShortStream("sites", ev, t.events);
        const uint64_t idx = getVarint(sp, send, "sites");
        if (idx >= dict_size)
            throw Error("Trace: site index out of dictionary range");
        sink.onBranch(t.site_dict[idx], getBit(taken, branch),
                      instructions);
        ++branch;
    }
    checkTrailing(dp, dend, "deltas");
    checkTrailing(sp, send, "sites");
    obs::counter("trace.replay_events").add(t.events);
    obs::counter("trace.replay_micros").add(obs::nowMicros() - t0);
}

struct SingleSink
{
    vm::BranchObserver &observer;
    void
    onBranch(int site, bool taken, int64_t instructions)
    {
        observer.onBranch(site, taken, instructions);
    }
    void
    onBreak(int64_t instructions)
    {
        observer.onUnavoidableBreak(instructions);
    }
};

struct FanOutSink
{
    const std::vector<vm::BranchObserver *> &observers;
    void
    onBranch(int site, bool taken, int64_t instructions)
    {
        for (vm::BranchObserver *o : observers)
            o->onBranch(site, taken, instructions);
    }
    void
    onBreak(int64_t instructions)
    {
        for (vm::BranchObserver *o : observers)
            o->onUnavoidableBreak(instructions);
    }
};

} // namespace

// --- Batched replay ---------------------------------------------------------

BlockReader::BlockReader(const Trace &t, bool materialize_instructions)
    : t_(t), materialize_instructions_(materialize_instructions)
{
    validateForReplay(t);
    const std::string_view deltas = t.deltasBytes();
    const std::string_view sites = t.sitesBytes();
    dp_ = reinterpret_cast<const unsigned char *>(deltas.data());
    dend_ = dp_ + deltas.size();
    sp_ = reinterpret_cast<const unsigned char *>(sites.data());
    send_ = sp_ + sites.size();
    tags_ = t.tagsBytes();
    taken_ = t.takenBytes();
    dict_ = t.site_dict.data();
    dict_size_ = t.site_dict.size();
    for (int32_t id : t.site_dict)
        dict_max_ = std::max(dict_max_, id);
}

bool
BlockReader::next(vm::EventBlock &block)
{
    if (ev_ == t_.events) {
        checkTrailing(dp_, dend_, "deltas");
        checkTrailing(sp_, send_, "sites");
        return false;
    }
    const int n = static_cast<int>(
        std::min<int64_t>(vm::EventBlock::kCapacity, t_.events - ev_));
    // Hoist every cursor into a local: the compiler cannot prove @p
    // block and *this apart, so member-resident cursors would be
    // reloaded and stored through memory on every event.
    const unsigned char *dp = dp_;
    const unsigned char *const dend = dend_;
    const unsigned char *sp = sp_;
    const unsigned char *const send = send_;
    const auto *const tagp =
        reinterpret_cast<const unsigned char *>(tags_.data());
    const auto *const takenp =
        reinterpret_cast<const unsigned char *>(taken_.data());
    const int32_t *const dict = dict_;
    const uint64_t dict_size = dict_size_;
    const bool want_instructions = materialize_instructions_;
    int64_t ev = ev_;
    int64_t branch = branch_;
    int64_t instructions = instructions_;
    int branches = 0;
    int i = 0;
    while (i < n) {
        // Dense group: a zero tag byte is 8 straight branch events, and
        // when their deltas and site indexes are all one-byte varints
        // (branches average 5-10 instructions apart and dictionaries
        // are small, so almost always) the whole group decodes with two
        // 8-byte loads and no per-event stream branches. Breaks and
        // multi-byte varints fall through to the scalar event below and
        // the loop re-aligns at the next multiple of 8.
        if ((ev & 7) == 0 && i + 8 <= n && tagp[ev >> 3] == 0 &&
            dend - dp >= 8 && send - sp >= 8) {
            uint64_t dchunk, schunk;
            std::memcpy(&dchunk, dp, 8);
            std::memcpy(&schunk, sp, 8);
            if (((dchunk | schunk) & 0x8080808080808080ull) == 0) {
                if (want_instructions) {
                    for (int j = 0; j < 8; ++j) {
                        instructions += static_cast<int64_t>(dp[j]);
                        block.instructions[i + j] = instructions;
                    }
                }
                if (dict_size < 128) {
                    // Larger dictionaries cannot be overflowed by a
                    // one-byte index, so the bounds check hoists out.
                    for (int j = 0; j < 8; ++j) {
                        if (sp[j] >= dict_size)
                            throw Error("Trace: site index out of "
                                        "dictionary range");
                    }
                }
                for (int j = 0; j < 8; ++j)
                    block.site_id[i + j] = dict[sp[j]];
                // Bits branch..branch+7 exist (the popcount invariant
                // bounds branch_events), so byte0+1 is in range when
                // the group straddles a byte boundary.
                const auto byte0 = static_cast<size_t>(branch >> 3);
                const auto shift = static_cast<unsigned>(branch & 7);
                unsigned bits = takenp[byte0] >> shift;
                if (shift != 0)
                    bits |= static_cast<unsigned>(takenp[byte0 + 1])
                            << (8 - shift);
                for (int j = 0; j < 8; ++j)
                    block.taken[i + j] =
                        static_cast<uint8_t>((bits >> j) & 1);
                dp += 8;
                sp += 8;
                ev += 8;
                branch += 8;
                branches += 8;
                i += 8;
                continue;
            }
        }
        if (dp == dend) {
            ev_ = ev;
            throwShortStream("deltas", ev, t_.events);
        }
        // Nearly every delta is the one-byte varint case; keep it
        // inline.
        uint64_t d = *dp;
        if (d < 0x80)
            ++dp;
        else
            d = getVarint(dp, dend, "deltas");
        instructions += static_cast<int64_t>(d);
        block.instructions[i] = instructions;
        if ((tagp[ev >> 3] >> (ev & 7)) & 1) {
            block.site_id[i] = -1;
            block.taken[i] = 0;
            ++i;
            ++ev;
            continue;
        }
        if (sp == send) {
            ev_ = ev;
            throwShortStream("sites", ev, t_.events);
        }
        uint64_t idx = *sp;
        if (idx < 0x80)
            ++sp;
        else
            idx = getVarint(sp, send, "sites");
        if (idx >= dict_size)
            throw Error("Trace: site index out of dictionary range");
        block.site_id[i] = dict[idx];
        block.taken[i] = static_cast<uint8_t>(
            (takenp[branch >> 3] >> (branch & 7)) & 1);
        ++branch;
        ++branches;
        ++i;
        ++ev;
    }
    dp_ = dp;
    sp_ = sp;
    ev_ = ev;
    branch_ = branch;
    instructions_ = instructions;
    block.size = n;
    block.branch_count = branches;
    block.max_site = dict_max_;
    return true;
}

bool
batchReplay()
{
    const char *env = std::getenv("IFPROB_TRACE_BATCH");
    if (!env)
        return true;
    const std::string_view v(env);
    return v != "off" && v != "0";
}

namespace {

/** Decode block-by-block, handing each finished block to @p dispatch
 *  before decoding the next (the block stays cache-resident across all
 *  its observers). Decode and dispatch time are metered separately —
 *  two clock reads per ~4096 events — so benches can attribute the
 *  replay budget. */
template <typename Dispatch>
void
replayBlocks(const Trace &t, bool want_instructions, Dispatch &&dispatch)
{
    const int64_t t0 = obs::nowMicros();
    vm::EventBlock block;
    BlockReader reader(t, want_instructions);
    int64_t blocks = 0;
    int64_t decode_micros = 0;
    int64_t dispatch_micros = 0;
    int64_t mark = t0;
    while (reader.next(block)) {
        const int64_t decoded = obs::nowMicros();
        dispatch(block);
        const int64_t dispatched = obs::nowMicros();
        decode_micros += decoded - mark;
        dispatch_micros += dispatched - decoded;
        mark = dispatched;
        ++blocks;
    }
    const int64_t t1 = obs::nowMicros();
    decode_micros += t1 - mark; // final next(): trailing-bytes check
    obs::counter("replay.blocks").add(blocks);
    obs::counter("replay.decode_micros").add(decode_micros);
    obs::counter("replay.dispatch_micros").add(dispatch_micros);
    obs::counter("trace.replay_events").add(t.events);
    obs::counter("trace.replay_micros").add(t1 - t0);
}

} // namespace

void
replay(const Trace &t, vm::BranchObserver &observer)
{
    if (!batchReplay()) {
        validateForReplay(t);
        SingleSink sink{observer};
        replayEvents(t, sink);
        return;
    }
    replayBlocks(t, observer.wantsInstructionCounts(),
                 [&](const vm::EventBlock &b) { observer.onBatch(b); });
}

void
replay(const Trace &t, const std::vector<vm::BranchObserver *> &observers)
{
    if (!batchReplay()) {
        validateForReplay(t);
        FanOutSink sink{observers};
        replayEvents(t, sink);
        return;
    }
    bool want_instructions = false;
    for (vm::BranchObserver *o : observers)
        want_instructions |= o->wantsInstructionCounts();
    replayBlocks(t, want_instructions, [&](const vm::EventBlock &b) {
        for (vm::BranchObserver *o : observers)
            o->onBatch(b);
    });
}

// --- Recording entry point --------------------------------------------------

Trace
record(const isa::Program &program, std::string_view input,
       const vm::RunLimits &limits, std::string workload,
       std::string dataset)
{
    vm::Machine machine(program);
    Recorder recorder;
    vm::RunResult result = machine.run(input, limits, &recorder);
    Trace t = std::move(recorder).take();
    t.fingerprint = program.fingerprint();
    t.workload = std::move(workload);
    t.dataset = std::move(dataset);
    t.stats = std::move(result.stats);
    obs::counter("trace.record_events").add(t.events);
    obs::counter("trace.record_bytes").add(t.byteSize());
    return t;
}

bool
referencePlane()
{
    const char *env = std::getenv("IFPROB_TRACE_PLANE");
    return env && std::string_view(env) == "reference";
}

} // namespace ifprob::trace

#include "trace/trace.h"

#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>

#include "isa/program.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/binio.h"
#include "support/error.h"
#include "support/str.h"

namespace ifprob::trace {

namespace {

// Little-endian scalars, LEB128 varints, and FNV-1a come from
// support/binio.h — the encoding discipline shared by every versioned
// binary cache format in the repo.
using binio::getU32;
using binio::getU64;
using binio::getVarint;
using binio::putU32;
using binio::putU64;
using binio::putVarint;

bool
getBit(const std::string &stream, int64_t index)
{
    return (static_cast<unsigned char>(
                stream[static_cast<size_t>(index >> 3)]) >>
            (index & 7)) &
           1;
}

/** FNV-1a 64 over the variable-length payload (names, dict, streams). */
uint64_t
payloadChecksum(const Trace &t)
{
    using binio::fnv1a;
    uint64_t h = binio::kFnv1aOffset;
    h = fnv1a(h, t.workload.data(), t.workload.size());
    h = fnv1a(h, t.dataset.data(), t.dataset.size());
    h = fnv1a(h, t.site_dict.data(),
              t.site_dict.size() * sizeof(int32_t));
    h = fnv1a(h, t.deltas.data(), t.deltas.size());
    h = fnv1a(h, t.tags.data(), t.tags.size());
    h = fnv1a(h, t.taken.data(), t.taken.size());
    h = fnv1a(h, t.sites.data(), t.sites.size());
    return h;
}

/** Fill @p buf from the stream or throw the truncation error. */
void
readExact(std::istream &is, std::vector<unsigned char> &buf, size_t n)
{
    buf.resize(n);
    is.read(reinterpret_cast<char *>(buf.data()),
            static_cast<std::streamsize>(n));
    if (static_cast<size_t>(is.gcount()) != n)
        throw Error("Trace::load: truncated input");
}

void
readString(std::istream &is, std::string &out, size_t n, const char *what)
{
    if (n > (1ull << 40))
        throw Error(strPrintf("Trace::load: implausible %s size", what));
    out.resize(n);
    is.read(out.data(), static_cast<std::streamsize>(n));
    if (static_cast<size_t>(is.gcount()) != n)
        throw Error("Trace::load: truncated input");
}

/** magic + version + reserved + fingerprint + 3 counts + checksum. */
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 8 + 3 * 8 + 8;

} // namespace

int64_t
Trace::byteSize() const
{
    return static_cast<int64_t>(
        deltas.size() + tags.size() + taken.size() + sites.size() +
        site_dict.size() * sizeof(int32_t));
}

void
Trace::save(std::ostream &os) const
{
    std::string buf;
    buf.reserve(kHeaderBytes + 2 * 4 + workload.size() + dataset.size() +
                8 + site_dict.size() * 4 + 4 * 8 +
                static_cast<size_t>(byteSize()));
    buf.append(kMagic, sizeof(kMagic));
    putU32(buf, kVersion);
    putU32(buf, 0); // reserved
    putU64(buf, fingerprint);
    putU64(buf, static_cast<uint64_t>(events));
    putU64(buf, static_cast<uint64_t>(branch_events));
    putU64(buf, static_cast<uint64_t>(break_events));
    putU64(buf, payloadChecksum(*this));
    putU32(buf, static_cast<uint32_t>(workload.size()));
    buf.append(workload);
    putU32(buf, static_cast<uint32_t>(dataset.size()));
    buf.append(dataset);
    putU64(buf, site_dict.size());
    for (int32_t site : site_dict)
        putU32(buf, static_cast<uint32_t>(site));
    putU64(buf, deltas.size());
    buf.append(deltas);
    putU64(buf, tags.size());
    buf.append(tags);
    putU64(buf, taken.size());
    buf.append(taken);
    putU64(buf, sites.size());
    buf.append(sites);
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    stats.saveBinary(os, fingerprint);
}

Trace
Trace::load(std::istream &is, uint64_t expected_fingerprint)
{
    std::vector<unsigned char> buf;
    readExact(is, buf, kHeaderBytes);
    if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0)
        throw Error("Trace::load: bad magic");
    const uint32_t version = getU32(buf.data() + 8);
    if (version != kVersion) {
        throw Error(
            strPrintf("Trace::load: unsupported version %u", version));
    }
    Trace t;
    t.fingerprint = getU64(buf.data() + 16);
    if (expected_fingerprint != 0 &&
        t.fingerprint != expected_fingerprint) {
        throw Error(strPrintf("Trace::load: fingerprint mismatch "
                              "(%016llx vs %016llx)",
                              static_cast<unsigned long long>(
                                  t.fingerprint),
                              static_cast<unsigned long long>(
                                  expected_fingerprint)));
    }
    t.events = static_cast<int64_t>(getU64(buf.data() + 24));
    t.branch_events = static_cast<int64_t>(getU64(buf.data() + 32));
    t.break_events = static_cast<int64_t>(getU64(buf.data() + 40));
    const uint64_t checksum = getU64(buf.data() + 48);
    if (t.events < 0 || t.branch_events < 0 || t.break_events < 0 ||
        t.events > (1ll << 40) ||
        t.branch_events + t.break_events != t.events)
        throw Error("Trace::load: corrupt event counts");

    readExact(is, buf, 4);
    readString(is, t.workload, getU32(buf.data()), "workload name");
    readExact(is, buf, 4);
    readString(is, t.dataset, getU32(buf.data()), "dataset name");

    readExact(is, buf, 8);
    const uint64_t dict_count = getU64(buf.data());
    if (dict_count > (1u << 26) ||
        dict_count > static_cast<uint64_t>(t.branch_events))
        throw Error("Trace::load: corrupt site dictionary size");
    readExact(is, buf, static_cast<size_t>(dict_count) * 4);
    t.site_dict.resize(static_cast<size_t>(dict_count));
    for (size_t i = 0; i < t.site_dict.size(); ++i)
        t.site_dict[i] = static_cast<int32_t>(getU32(buf.data() + i * 4));

    const struct
    {
        std::string *stream;
        uint64_t max_len;
        bool exact; ///< bitstreams have one valid length; replay's
                    ///< getBit relies on it, so enforce here
        const char *what;
    } streams[] = {
        // A varint spans at most 10 bytes; bitstreams are 1 bit/event.
        {&t.deltas, static_cast<uint64_t>(t.events) * 10, false,
         "deltas"},
        {&t.tags, static_cast<uint64_t>(t.events + 7) / 8, true, "tags"},
        {&t.taken, static_cast<uint64_t>(t.branch_events + 7) / 8, true,
         "taken"},
        {&t.sites, static_cast<uint64_t>(t.branch_events) * 10, false,
         "sites"},
    };
    for (const auto &s : streams) {
        readExact(is, buf, 8);
        const uint64_t len = getU64(buf.data());
        if (len > s.max_len || (s.exact && len != s.max_len)) {
            throw Error(
                strPrintf("Trace::load: implausible %s size", s.what));
        }
        readString(is, *s.stream, static_cast<size_t>(len), s.what);
    }
    if (payloadChecksum(t) != checksum)
        throw Error("Trace::load: payload checksum mismatch");
    t.stats = vm::RunStats::loadBinary(is, t.fingerprint);
    return t;
}

// --- Recorder ---------------------------------------------------------------

void
Recorder::pushDelta(int64_t instructions)
{
    putVarint(trace_.deltas,
              static_cast<uint64_t>(instructions - last_instructions_));
    last_instructions_ = instructions;
}

void
Recorder::pushBit(std::string &stream, int64_t index, bool bit)
{
    if ((index & 7) == 0)
        stream.push_back('\0');
    if (bit)
        stream.back() |= static_cast<char>(1 << (index & 7));
}

void
Recorder::onBranch(int site_id, bool taken, int64_t instructions)
{
    pushDelta(instructions);
    pushBit(trace_.tags, trace_.events, false);
    pushBit(trace_.taken, trace_.branch_events, taken);
    if (static_cast<size_t>(site_id) >= dict_index_.size())
        dict_index_.resize(static_cast<size_t>(site_id) + 1, -1);
    int32_t idx = dict_index_[static_cast<size_t>(site_id)];
    if (idx < 0) {
        idx = static_cast<int32_t>(trace_.site_dict.size());
        dict_index_[static_cast<size_t>(site_id)] = idx;
        trace_.site_dict.push_back(site_id);
    }
    putVarint(trace_.sites, static_cast<uint64_t>(idx));
    ++trace_.events;
    ++trace_.branch_events;
}

void
Recorder::onUnavoidableBreak(int64_t instructions)
{
    pushDelta(instructions);
    pushBit(trace_.tags, trace_.events, true);
    ++trace_.events;
    ++trace_.break_events;
}

Trace
Recorder::take() &&
{
    return std::move(trace_);
}

// --- Replay -----------------------------------------------------------------

namespace {

/** The decode loop, shared by both replay overloads. @p Sink receives
 *  fully decoded events and fans them out (inlined away for the
 *  single-observer case). */
template <typename Sink>
void
replayEvents(const Trace &t, Sink &&sink)
{
    const int64_t t0 = obs::nowMicros();
    const auto *dp =
        reinterpret_cast<const unsigned char *>(t.deltas.data());
    const auto *dend = dp + t.deltas.size();
    const auto *sp =
        reinterpret_cast<const unsigned char *>(t.sites.data());
    const auto *send = sp + t.sites.size();
    const size_t dict_size = t.site_dict.size();
    int64_t instructions = 0;
    int64_t branch = 0;
    for (int64_t ev = 0; ev < t.events; ++ev) {
        instructions +=
            static_cast<int64_t>(getVarint(dp, dend, "deltas"));
        if (getBit(t.tags, ev)) {
            sink.onBreak(instructions);
            continue;
        }
        const uint64_t idx = getVarint(sp, send, "sites");
        if (idx >= dict_size)
            throw Error("Trace: site index out of dictionary range");
        sink.onBranch(t.site_dict[idx], getBit(t.taken, branch),
                      instructions);
        ++branch;
    }
    obs::counter("trace.replay_events").add(t.events);
    obs::counter("trace.replay_micros").add(obs::nowMicros() - t0);
}

struct SingleSink
{
    vm::BranchObserver &observer;
    void
    onBranch(int site, bool taken, int64_t instructions)
    {
        observer.onBranch(site, taken, instructions);
    }
    void
    onBreak(int64_t instructions)
    {
        observer.onUnavoidableBreak(instructions);
    }
};

struct FanOutSink
{
    const std::vector<vm::BranchObserver *> &observers;
    void
    onBranch(int site, bool taken, int64_t instructions)
    {
        for (vm::BranchObserver *o : observers)
            o->onBranch(site, taken, instructions);
    }
    void
    onBreak(int64_t instructions)
    {
        for (vm::BranchObserver *o : observers)
            o->onUnavoidableBreak(instructions);
    }
};

} // namespace

void
replay(const Trace &t, vm::BranchObserver &observer)
{
    SingleSink sink{observer};
    replayEvents(t, sink);
}

void
replay(const Trace &t, const std::vector<vm::BranchObserver *> &observers)
{
    FanOutSink sink{observers};
    replayEvents(t, sink);
}

// --- Recording entry point --------------------------------------------------

Trace
record(const isa::Program &program, std::string_view input,
       const vm::RunLimits &limits, std::string workload,
       std::string dataset)
{
    vm::Machine machine(program);
    Recorder recorder;
    vm::RunResult result = machine.run(input, limits, &recorder);
    Trace t = std::move(recorder).take();
    t.fingerprint = program.fingerprint();
    t.workload = std::move(workload);
    t.dataset = std::move(dataset);
    t.stats = std::move(result.stats);
    obs::counter("trace.record_events").add(t.events);
    obs::counter("trace.record_bytes").add(t.byteSize());
    return t;
}

bool
referencePlane()
{
    const char *env = std::getenv("IFPROB_TRACE_PLANE");
    return env && std::string_view(env) == "reference";
}

} // namespace ifprob::trace

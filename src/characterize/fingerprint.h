#ifndef IFPROB_CHARACTERIZE_FINGERPRINT_H
#define IFPROB_CHARACTERIZE_FINGERPRINT_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "ilp/runlength.h"
#include "vm/observer.h"

namespace ifprob::characterize {

/**
 * Per-static-branch predictability fingerprints (docs/characterization.md).
 *
 * The paper reports *aggregate* mispredict rates; this module asks the
 * per-branch question the later characterization literature formalized
 * ("Workload Characterization for Branch Predictability", "Branch
 * Prediction Is Not a Solved Problem" — PAPERS.md): which static
 * branches make fpppp easy and li hard, and which ones break
 * cross-dataset profile prediction. Everything here is pure replay-plane
 * compute: a FingerprintBuilder consumes one recorded trace::Trace
 * through the BranchObserver interface and accumulates, per static site,
 *
 *  - taken counts (-> taken rate and the Bernoulli entropy H0),
 *  - direction transition counts (-> the order-1 conditional entropy H1,
 *    i.e. how much knowing the previous direction helps),
 *  - same-direction run lengths (ilp::RunLengthHist — the per-branch
 *    analogue of the paper's instructions-between-breaks distribution),
 *  - an RLE compressed-size proxy (varint-encoded run lengths, in
 *    bits/branch: low for streaky streams even when H0 is high),
 *  - agreement of a per-branch last-k history table vs a shared global
 *    history register, k in {1,2,4,8} (self-correlated vs neighbor-
 *    correlated branches — the axis TAGE/gshare exploit),
 *  - the best-static loss: mispredicts remaining under the
 *    profile-optimal static direction, min(taken, not taken) — the
 *    site's contribution to the gap between the paper's scheme and
 *    perfect prediction.
 */

/** History depths probed by the local/global agreement tables. */
inline constexpr std::array<int, 4> kHistoryDepths = {1, 2, 4, 8};

/** One static branch site's fingerprint over one direction stream. */
struct BranchFingerprint
{
    int site_id = -1;
    int64_t executed = 0;
    int64_t taken = 0;

    /** Direction transition counts: transitions[prev][next], counted
     *  from the site's second execution onward. */
    std::array<std::array<int64_t, 2>, 2> transitions{};

    /** Same-direction streak lengths (a run ends when the direction
     *  flips; the final, still-open streak is included). */
    ilp::RunLengthHist runs;

    /** Bytes of the LEB128-encoded run-length stream (the
     *  compressed-size proxy's numerator). */
    int64_t rle_bytes = 0;

    /** Correct predictions of a per-site table indexed by the site's
     *  own last-k directions, one entry per kHistoryDepths. */
    std::array<int64_t, kHistoryDepths.size()> local_correct{};
    /** Same, for a per-site table indexed by the last k directions of
     *  *all* branches (a shared global history register). */
    std::array<int64_t, kHistoryDepths.size()> global_correct{};

    double takenRate() const;

    /** Order-0 (Bernoulli) entropy of the direction stream, bits/branch. */
    double entropyH0() const;

    /** Order-1 entropy: H(direction | previous direction), bits/branch.
     *  0 when the site executed fewer than twice. */
    double entropyH1() const;

    /** Compressed-size proxy: 8 * rle_bytes / executed, bits/branch.
     *  Near 0 for streaky streams, approaches 8 for alternating ones
     *  (every branch starts a fresh one-byte run). */
    double rleBitsPerBranch() const;

    /** Mispredicts under the profile-optimal static direction:
     *  min(taken, executed - taken). */
    int64_t bestStaticLoss() const;

    /** Percent of branches the last-k local-history table got right. */
    double localAgreement(size_t depth_index) const;
    /** Percent the shared-global-history table got right. */
    double globalAgreement(size_t depth_index) const;
};

/**
 * The replay-plane observer that builds fingerprints for every site of
 * one (program, dataset) stream. Attach to trace::replay (or a live
 * Machine::run); then take() the per-site fingerprints.
 *
 * State per site is O(1): counters, a 32-bucket run histogram, and
 * 2-bit saturating predictor tables of 2 + 4 + 16 + 256 entries for the
 * local and global history probes (~0.6 KiB per site), so a builder per
 * (workload, dataset) cell is cheap enough to fan out across the pool.
 */
class FingerprintBuilder : public vm::BranchObserver
{
  public:
    /** @p num_sites: the program's static site count
     *  (program.branch_sites.size()); events outside it are ignored. */
    explicit FingerprintBuilder(size_t num_sites);
    ~FingerprintBuilder(); // out of line: SiteState is private/incomplete

    void onBranch(int site_id, bool taken, int64_t instructions) override;

    /** Batch kernel: one virtual call per decoded block, branch-free
     *  history-table updates. State after a block is bit-identical to
     *  feeding the same events through onBranch one at a time (both
     *  dispatch into the same per-event step). */
    void onBatch(const vm::EventBlock &block) override;

    /** Fingerprints consume (site, taken) only; the batched decoder
     *  may skip materializing instruction counts. */
    bool wantsInstructionCounts() const override { return false; }

    /**
     * Finalize (closes each site's open streak) and return fingerprints
     * for every site that executed at least once, ordered by site id.
     */
    std::vector<BranchFingerprint> take() &&;

  private:
    struct SiteState;
    void step(SiteState &s, uint32_t tk);

    std::vector<SiteState> sites_;
    uint32_t global_history_ = 0;
};

} // namespace ifprob::characterize

#endif // IFPROB_CHARACTERIZE_FINGERPRINT_H

#include "characterize/characterize.h"

#include <algorithm>

#include "exec/pool.h"
#include "isa/program.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/str.h"
#include "workloads/workload.h"

namespace ifprob::characterize {

namespace {

/** Index of k = 8 in kHistoryDepths (the deepest probe, reported in
 *  the hard-branch table). */
constexpr size_t kDepth8 = kHistoryDepths.size() - 1;
static_assert(kHistoryDepths[kDepth8] == 8);

/** Pooled per-site direction counts (assemble pass 1 scratch). */
struct BranchCountsPooled
{
    int64_t executed = 0;
    int64_t taken = 0;
};

/**
 * Merge one workload's per-dataset fingerprints into site summaries
 * and roll-ups. Serial, in dataset order, so the result — floating
 * point included — is independent of how the fingerprints were
 * computed (any job count, any schedule).
 */
WorkloadReport
assemble(const isa::Program &program, const workloads::Workload &workload,
         std::vector<DatasetFingerprint> per_dataset, int top_n)
{
    WorkloadReport report;
    report.workload = workload.name;
    report.fortran_like = workload.fortran_like;
    report.datasets = static_cast<int>(per_dataset.size());
    report.static_sites = static_cast<int>(program.branch_sites.size());

    // Pass 1: pooled per-site direction counts decide the cross-dataset
    // majority each dataset is compared against.
    std::vector<BranchCountsPooled> pooled(program.branch_sites.size());
    for (const DatasetFingerprint &df : per_dataset) {
        for (const BranchFingerprint &fp : df.sites) {
            pooled[static_cast<size_t>(fp.site_id)].executed += fp.executed;
            pooled[static_cast<size_t>(fp.site_id)].taken += fp.taken;
        }
    }

    // Pass 2: per-site summaries, dataset-major accumulation order.
    std::vector<SiteSummary> sites(program.branch_sites.size());
    for (const DatasetFingerprint &df : per_dataset) {
        report.instructions += df.instructions;
        report.branches += df.branches;
        for (const BranchFingerprint &fp : df.sites) {
            SiteSummary &s = sites[static_cast<size_t>(fp.site_id)];
            s.site_id = fp.site_id;
            ++s.datasets_executed;
            s.executed += fp.executed;
            s.taken += fp.taken;
            s.best_static_loss += fp.bestStaticLoss();
            const bool pooled_taken =
                2 * pooled[static_cast<size_t>(fp.site_id)].taken >=
                pooled[static_cast<size_t>(fp.site_id)].executed;
            s.pooled_static_loss +=
                pooled_taken ? fp.executed - fp.taken : fp.taken;
            const bool dataset_taken = 2 * fp.taken >= fp.executed;
            if (dataset_taken == pooled_taken)
                ++s.datasets_agreeing;
            s.h0_weighted +=
                static_cast<double>(fp.executed) * fp.entropyH0();
            s.h1_weighted +=
                static_cast<double>(fp.executed) * fp.entropyH1();
            s.rle_bytes += fp.rle_bytes;
            s.local8_correct += fp.local_correct[kDepth8];
            s.global8_correct += fp.global_correct[kDepth8];
            s.runs.merge(fp.runs);
        }
    }

    int64_t stable_branches = 0;
    int64_t full_coverage_branches = 0;
    for (const SiteSummary &s : sites) {
        if (s.datasets_executed == 0)
            continue;
        ++report.executed_sites;
        report.taken += s.taken;
        report.best_static_loss += s.best_static_loss;
        report.pooled_static_loss += s.pooled_static_loss;
        report.mean_h0 += s.h0_weighted;
        report.mean_h1 += s.h1_weighted;
        if (s.datasets_agreeing == s.datasets_executed)
            stable_branches += s.executed;
        if (s.datasets_executed == report.datasets)
            full_coverage_branches += s.executed;
    }
    if (report.branches > 0) {
        report.mean_h0 /= static_cast<double>(report.branches);
        report.mean_h1 /= static_cast<double>(report.branches);
        report.stable_branch_pct = 100.0 *
                                   static_cast<double>(stable_branches) /
                                   static_cast<double>(report.branches);
        report.full_coverage_pct =
            100.0 * static_cast<double>(full_coverage_branches) /
            static_cast<double>(report.branches);
    }

    // The ranked hard-branch table: loss descending, site id ascending.
    std::vector<const SiteSummary *> ranked;
    for (const SiteSummary &s : sites) {
        if (s.datasets_executed > 0)
            ranked.push_back(&s);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const SiteSummary *a, const SiteSummary *b) {
                  if (a->best_static_loss != b->best_static_loss)
                      return a->best_static_loss > b->best_static_loss;
                  return a->site_id < b->site_id;
              });
    if (top_n >= 0 && ranked.size() > static_cast<size_t>(top_n))
        ranked.resize(static_cast<size_t>(top_n));
    for (const SiteSummary *s : ranked) {
        const isa::BranchSite &site =
            program.branch_sites[static_cast<size_t>(s->site_id)];
        HardBranch hb;
        hb.site_id = s->site_id;
        const char *function =
            site.function >= 0 &&
                    static_cast<size_t>(site.function) <
                        program.functions.size()
                ? program.functions[static_cast<size_t>(site.function)]
                      .name.c_str()
                : "?";
        hb.where = strPrintf("%s:%d", function, site.line);
        hb.kind = std::string(isa::branchKindName(site.kind));
        hb.executed = s->executed;
        hb.loss = s->best_static_loss;
        hb.loss_share = report.best_static_loss > 0
                            ? static_cast<double>(s->best_static_loss) /
                                  static_cast<double>(
                                      report.best_static_loss)
                            : 0.0;
        hb.taken_pct = s->executed > 0
                           ? 100.0 * static_cast<double>(s->taken) /
                                 static_cast<double>(s->executed)
                           : 0.0;
        hb.h0 = s->executed > 0
                    ? s->h0_weighted / static_cast<double>(s->executed)
                    : 0.0;
        hb.local8_pct =
            s->executed > 0
                ? 100.0 * static_cast<double>(s->local8_correct) /
                      static_cast<double>(s->executed)
                : 0.0;
        hb.global8_pct =
            s->executed > 0
                ? 100.0 * static_cast<double>(s->global8_correct) /
                      static_cast<double>(s->executed)
                : 0.0;
        hb.stability_pct = s->stabilityPct();
        hb.datasets_executed = s->datasets_executed;
        report.hard.push_back(std::move(hb));
    }

    // Keep only executed sites in the summary vector (dense, ordered).
    for (SiteSummary &s : sites) {
        if (s.datasets_executed > 0)
            report.sites.push_back(std::move(s));
    }
    report.dataset_fingerprints = std::move(per_dataset);

    obs::counter("characterize.workloads").add();
    obs::counter("characterize.sites").add(report.executed_sites);
    return report;
}

} // namespace

double
SiteSummary::stabilityPct() const
{
    if (datasets_executed <= 0)
        return 100.0;
    return 100.0 * static_cast<double>(datasets_agreeing) /
           static_cast<double>(datasets_executed);
}

double
WorkloadReport::instrPerMispredict() const
{
    return static_cast<double>(instructions) /
           static_cast<double>(std::max<int64_t>(best_static_loss, 1));
}

double
WorkloadReport::pooledInstrPerMispredict() const
{
    return static_cast<double>(instructions) /
           static_cast<double>(std::max<int64_t>(pooled_static_loss, 1));
}

DatasetFingerprint
fingerprintTrace(const trace::Trace &trace, size_t num_sites)
{
    const int64_t t0 = obs::nowMicros();
    DatasetFingerprint df;
    df.dataset = trace.dataset;
    df.instructions = trace.stats.instructions;
    df.branches = trace.branch_events;
    FingerprintBuilder builder(num_sites);
    trace::replay(trace, builder);
    df.sites = std::move(builder).take();
    obs::counter("characterize.datasets").add();
    obs::counter("characterize.branch_events").add(trace.branch_events);
    obs::counter("characterize.micros").add(obs::nowMicros() - t0);
    return df;
}

WorkloadReport
characterizeWorkload(harness::Runner &runner, const std::string &workload,
                     int top_n)
{
    std::vector<WorkloadReport> reports =
        characterizeAll(runner, {workload}, top_n);
    return std::move(reports.front());
}

std::vector<WorkloadReport>
characterizeAll(harness::Runner &runner,
                const std::vector<std::string> &names, int top_n)
{
    // Select workloads in registry order regardless of name order.
    std::vector<const workloads::Workload *> selected;
    for (const workloads::Workload &w : workloads::all()) {
        if (names.empty() ||
            std::find(names.begin(), names.end(), w.name) != names.end())
            selected.push_back(&w);
    }
    for (const std::string &name : names)
        workloads::get(name); // throw on unknown names, with context

    // One pool job per (workload, dataset) cell: record-or-load the
    // trace, replay it through a FingerprintBuilder. Each cell writes
    // only its own slot, so the fan-out is schedule-independent.
    struct Cell
    {
        const workloads::Workload *workload;
        size_t dataset;
        size_t slot;
    };
    std::vector<Cell> cells;
    std::vector<std::vector<DatasetFingerprint>> fingerprints(
        selected.size());
    for (size_t wi = 0; wi < selected.size(); ++wi) {
        fingerprints[wi].resize(selected[wi]->datasets.size());
        for (size_t di = 0; di < selected[wi]->datasets.size(); ++di)
            cells.push_back(Cell{selected[wi], di, wi});
    }
    // Compile every image first: cells of one workload share the
    // compile-once slot anyway, and the site count must exist before
    // the fan-out reads it.
    std::vector<size_t> num_sites(selected.size());
    for (size_t wi = 0; wi < selected.size(); ++wi)
        num_sites[wi] =
            runner.program(selected[wi]->name).branch_sites.size();

    exec::parallelFor(
        exec::globalPool(), cells.size(), [&](size_t i) {
            const Cell &cell = cells[i];
            const trace::Trace &trace = runner.traceOf(
                cell.workload->name,
                cell.workload->datasets[cell.dataset].name);
            fingerprints[cell.slot][cell.dataset] =
                fingerprintTrace(trace, num_sites[cell.slot]);
        });

    std::vector<WorkloadReport> reports;
    reports.reserve(selected.size());
    for (size_t wi = 0; wi < selected.size(); ++wi) {
        obs::ScopedSpan span("characterize.workload", "characterize");
        if (span.active())
            span.arg("workload", selected[wi]->name);
        reports.push_back(assemble(runner.program(selected[wi]->name),
                                   *selected[wi],
                                   std::move(fingerprints[wi]), top_n));
        if (span.active()) {
            span.arg("sites",
                     static_cast<int64_t>(reports.back().executed_sites));
            span.arg("branches", reports.back().branches);
        }
    }
    return reports;
}

} // namespace ifprob::characterize

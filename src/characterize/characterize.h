#ifndef IFPROB_CHARACTERIZE_CHARACTERIZE_H
#define IFPROB_CHARACTERIZE_CHARACTERIZE_H

#include <cstdint>
#include <string>
#include <vector>

#include "characterize/fingerprint.h"
#include "harness/runner.h"
#include "trace/trace.h"

namespace ifprob::characterize {

/**
 * Workload-level characterization reports (docs/characterization.md):
 * per-branch fingerprints for every dataset of a workload, merged into
 * cross-dataset site summaries and a ranked hard-branch table, scored
 * on the paper's instructions-per-mispredict currency. All of it is
 * replay-plane compute over Runner::traceOf recordings — record once,
 * fingerprint every branch at memory speed, embarrassingly parallel
 * over exec::Pool.
 */

/** Every site fingerprint of one (workload, dataset) stream. */
struct DatasetFingerprint
{
    std::string dataset;
    int64_t instructions = 0;
    int64_t branches = 0; ///< conditional branch events in the stream
    /** Sites that executed at least once, ascending site id. */
    std::vector<BranchFingerprint> sites;
};

/**
 * One static branch site merged across a workload's datasets — the
 * cross-dataset stability view. "Agreement" compares each dataset's
 * majority direction with the pooled (count-weighted) majority: a site
 * whose datasets disagree is exactly the kind that makes the paper's
 * Figure 3 worst-case predictors collapse.
 */
struct SiteSummary
{
    int site_id = -1;
    int datasets_executed = 0;
    /** Datasets whose own majority direction matches the pooled one. */
    int datasets_agreeing = 0;

    int64_t executed = 0;
    int64_t taken = 0;
    /** Sum over datasets of that dataset's min(taken, not taken):
     *  mispredicts under per-dataset-optimal static directions. */
    int64_t best_static_loss = 0;
    /** Mispredicts when every dataset is predicted with the single
     *  pooled majority direction (the cross-dataset static choice). */
    int64_t pooled_static_loss = 0;

    /** Execution-weighted entropy sums (divide by executed to read). */
    double h0_weighted = 0.0;
    double h1_weighted = 0.0;
    int64_t rle_bytes = 0;
    /** Last-k history agreement at k = 8, summed over datasets. */
    int64_t local8_correct = 0;
    int64_t global8_correct = 0;
    ilp::RunLengthHist runs;

    /** Percent of executing datasets agreeing with the pooled
     *  direction; 100 for single-dataset sites. */
    double stabilityPct() const;
    /** Extra mispredicts the direction disagreement costs: pooled
     *  minus per-dataset-optimal loss. >= 0. */
    int64_t flipLoss() const { return pooled_static_loss - best_static_loss; }
};

/** One row of the ranked hard-branch table. */
struct HardBranch
{
    int site_id = -1;
    std::string where; ///< "function:line"
    std::string kind;  ///< isa::branchKindName
    int64_t executed = 0;
    int64_t loss = 0;       ///< best_static_loss, the ranking key
    double loss_share = 0.0; ///< loss / workload best_static_loss
    double taken_pct = 0.0;
    double h0 = 0.0;
    double local8_pct = 0.0;
    double global8_pct = 0.0;
    double stability_pct = 0.0;
    int datasets_executed = 0;
};

/** One workload's full characterization. */
struct WorkloadReport
{
    std::string workload;
    bool fortran_like = false;
    int datasets = 0;
    int static_sites = 0;
    int executed_sites = 0; ///< union over datasets

    int64_t instructions = 0;
    int64_t branches = 0;
    int64_t taken = 0;
    int64_t best_static_loss = 0;
    int64_t pooled_static_loss = 0;

    /** Execution-weighted mean direction-stream entropies. */
    double mean_h0 = 0.0;
    double mean_h1 = 0.0;
    /** Percent of dynamic branches at sites every dataset agrees on. */
    double stable_branch_pct = 0.0;
    /** Percent of dynamic branches at sites every dataset executes —
     *  100 minus this is the Figure 3 coverage-gap exposure. */
    double full_coverage_pct = 0.0;

    std::vector<DatasetFingerprint> dataset_fingerprints;
    /** Cross-dataset site summaries, ascending site id. */
    std::vector<SiteSummary> sites;
    /** Top-N sites by best-static loss (descending; site id breaks
     *  ties), with source locations resolved. */
    std::vector<HardBranch> hard;

    /** The paper's currency under per-dataset-optimal static
     *  prediction: instructions / max(1, best_static_loss). */
    double instrPerMispredict() const;
    /** Same under the single pooled direction — the cross-dataset
     *  static predictor's currency. */
    double pooledInstrPerMispredict() const;
};

/** Fingerprint one recorded stream (pure function of the trace). */
DatasetFingerprint fingerprintTrace(const trace::Trace &trace,
                                    size_t num_sites);

/**
 * Characterize @p workload over all its datasets. Traces come from
 * Runner::traceOf (recorded or cache-served once, then replayed);
 * datasets fingerprint in parallel on the global exec::Pool. The
 * result is bit-identical at any job count: every per-dataset
 * fingerprint is independent, and the merge runs serially in registry
 * dataset order.
 */
WorkloadReport characterizeWorkload(harness::Runner &runner,
                                    const std::string &workload,
                                    int top_n = 10);

/**
 * Characterize several workloads (all of them when @p names is empty),
 * fanning every (workload, dataset) cell out on the global pool.
 * Reports come back in registry order.
 */
std::vector<WorkloadReport>
characterizeAll(harness::Runner &runner,
                const std::vector<std::string> &names = {}, int top_n = 10);

} // namespace ifprob::characterize

#endif // IFPROB_CHARACTERIZE_CHARACTERIZE_H

#include "characterize/fingerprint.h"

#include <cmath>

#include "predict/sat2.h"

namespace ifprob::characterize {

namespace {

/** H(p) in bits; 0 at the endpoints (0 log 0 == 0). */
double
bernoulliEntropy(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

/** Bytes LEB128 needs for @p v (the Recorder's varint width rule). */
int64_t
varintBytes(uint64_t v)
{
    int64_t n = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++n;
    }
    return n;
}

/** Total entries of one per-site predictor table set: sum of 2^k. */
constexpr size_t
tableEntries()
{
    size_t n = 0;
    for (int k : kHistoryDepths)
        n += size_t{1} << k;
    return n;
}

/** Offset of depth @p di's table inside the flat entry array. */
constexpr size_t
tableOffset(size_t di)
{
    size_t off = 0;
    for (size_t i = 0; i < di; ++i)
        off += size_t{1} << kHistoryDepths[i];
    return off;
}

} // namespace

double
BranchFingerprint::takenRate() const
{
    if (executed <= 0)
        return 0.0;
    return static_cast<double>(taken) / static_cast<double>(executed);
}

double
BranchFingerprint::entropyH0() const
{
    return bernoulliEntropy(takenRate());
}

double
BranchFingerprint::entropyH1() const
{
    const int64_t total = transitions[0][0] + transitions[0][1] +
                          transitions[1][0] + transitions[1][1];
    if (total <= 0)
        return 0.0;
    double h = 0.0;
    for (int prev = 0; prev < 2; ++prev) {
        const int64_t n = transitions[prev][0] + transitions[prev][1];
        if (n <= 0)
            continue;
        const double p_taken = static_cast<double>(transitions[prev][1]) /
                               static_cast<double>(n);
        h += static_cast<double>(n) / static_cast<double>(total) *
             bernoulliEntropy(p_taken);
    }
    return h;
}

double
BranchFingerprint::rleBitsPerBranch() const
{
    if (executed <= 0)
        return 0.0;
    return 8.0 * static_cast<double>(rle_bytes) /
           static_cast<double>(executed);
}

int64_t
BranchFingerprint::bestStaticLoss() const
{
    const int64_t not_taken = executed - taken;
    return taken < not_taken ? taken : not_taken;
}

double
BranchFingerprint::localAgreement(size_t depth_index) const
{
    if (executed <= 0)
        return 100.0;
    return 100.0 * static_cast<double>(local_correct[depth_index]) /
           static_cast<double>(executed);
}

double
BranchFingerprint::globalAgreement(size_t depth_index) const
{
    if (executed <= 0)
        return 100.0;
    return 100.0 * static_cast<double>(global_correct[depth_index]) /
           static_cast<double>(executed);
}

/**
 * Per-site accumulator. The local/global predictor tables are 2-bit
 * saturating counters starting weakly not-taken (the TwoBitPredictor
 * convention), one flat array per history kind with the four depths'
 * tables packed back to back.
 */
struct FingerprintBuilder::SiteState
{
    BranchFingerprint fp;
    int8_t prev = -1;        ///< -1 = not executed yet
    int64_t current_run = 0; ///< open same-direction streak
    uint32_t local_history = 0;
    std::array<uint8_t, tableEntries()> local_table;
    std::array<uint8_t, tableEntries()> global_table;

    SiteState()
    {
        local_table.fill(predict::kSat2WeaklyNotTaken);
        global_table.fill(predict::kSat2WeaklyNotTaken);
    }
};

FingerprintBuilder::FingerprintBuilder(size_t num_sites)
    : sites_(num_sites)
{
    for (size_t i = 0; i < sites_.size(); ++i)
        sites_[i].fp.site_id = static_cast<int>(i);
}

FingerprintBuilder::~FingerprintBuilder() = default;

/**
 * Per-event accumulation, shared by the scalar and batch entry points
 * so the two paths cannot diverge. @p tk is 0/1. The history probes
 * predict *before* seeing the outcome and advance through the shared
 * predict::sat2 transition (the one 2-bit saturating-counter
 * implementation the predictor zoo also runs on).
 */
inline void
FingerprintBuilder::step(SiteState &s, uint32_t tk)
{
    BranchFingerprint &fp = s.fp;

    for (size_t di = 0; di < kHistoryDepths.size(); ++di) {
        const uint32_t mask =
            (1u << kHistoryDepths[di]) - 1; // k <= 8 < 31 bits
        const size_t off = tableOffset(di);
        uint8_t &local = s.local_table[off + (s.local_history & mask)];
        uint8_t &global = s.global_table[off + (global_history_ & mask)];
        fp.local_correct[di] +=
            (static_cast<uint32_t>(predict::sat2Taken(local)) == tk);
        fp.global_correct[di] +=
            (static_cast<uint32_t>(predict::sat2Taken(global)) == tk);
        local = predict::sat2Next(local, tk);
        global = predict::sat2Next(global, tk);
    }

    ++fp.executed;
    fp.taken += tk;
    if (s.prev >= 0) {
        ++fp.transitions[s.prev][tk];
        if (static_cast<uint32_t>(s.prev != 0) == tk) {
            ++s.current_run;
        } else {
            fp.runs.add(s.current_run);
            fp.rle_bytes +=
                varintBytes(static_cast<uint64_t>(s.current_run));
            s.current_run = 1;
        }
    } else {
        s.current_run = 1;
    }
    s.prev = static_cast<int8_t>(tk);
    s.local_history = (s.local_history << 1) | tk;
    global_history_ = (global_history_ << 1) | tk;
}

void
FingerprintBuilder::onBranch(int site_id, bool taken,
                             int64_t /*instructions*/)
{
    if (site_id < 0 || static_cast<size_t>(site_id) >= sites_.size())
        return;
    step(sites_[static_cast<size_t>(site_id)], taken ? 1u : 0u);
}

void
FingerprintBuilder::onBatch(const vm::EventBlock &block)
{
    const auto limit = static_cast<uint32_t>(sites_.size());
    SiteState *sites = sites_.data();
    const int n = block.size;
    for (int i = 0; i < n; ++i) {
        // -1 break markers wrap past any site count, so one unsigned
        // compare rejects breaks and out-of-range ids alike.
        const auto s = static_cast<uint32_t>(block.site_id[i]);
        if (s >= limit)
            continue;
        step(sites[s], block.taken[i]);
    }
}

std::vector<BranchFingerprint>
FingerprintBuilder::take() &&
{
    std::vector<BranchFingerprint> out;
    for (SiteState &s : sites_) {
        if (s.fp.executed == 0)
            continue;
        // Close the still-open streak so runs cover the whole stream.
        s.fp.runs.add(s.current_run);
        s.fp.rle_bytes += varintBytes(static_cast<uint64_t>(s.current_run));
        out.push_back(s.fp);
    }
    return out;
}

} // namespace ifprob::characterize

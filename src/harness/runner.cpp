#include "harness/runner.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "analysis/analysis_cache.h"
#include "compiler/pipeline.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "support/atomic_file.h"
#include "support/error.h"
#include "support/mapped_file.h"
#include "support/str.h"
#include "trace/trace.h"
#include "vm/machine.h"

namespace ifprob::harness {

namespace {

/** Best-possible static mispredicts: each site predicted its majority
 *  direction, so it mispredicts min(taken, not taken) times. */
int64_t
selfMispredicts(const vm::RunStats &stats)
{
    int64_t misses = 0;
    for (const auto &site : stats.branches)
        misses += std::min(site.taken, site.executed - site.taken);
    return misses;
}

/** @p dataset of @p workload, or throw the usual lookup error. */
const workloads::Dataset &
findDataset(const std::string &workload, const std::string &dataset)
{
    const workloads::Workload &w = workloads::get(workload);
    for (const auto &d : w.datasets) {
        if (d.name == dataset)
            return d;
    }
    throw Error("workload " + workload + " has no dataset " + dataset);
}

} // namespace

void
CacheStats::noteFailure(std::string detail)
{
    if (failures.size() < kMaxFailureDetails)
        failures.push_back(std::move(detail));
    else
        ++failures_dropped;
}

CompileOptions
Runner::experimentOptions()
{
    CompileOptions options;
    options.optimize = true;
    options.eliminate_dead_code = false; // as in the paper (see Table 1)
    options.use_select = true;
    return options;
}

Runner::~Runner() = default;

analysis::AnalysisCache &
Runner::analysis()
{
    std::lock_guard<std::mutex> lock(analysis_mu_);
    if (!analysis_)
        analysis_ = std::make_unique<analysis::AnalysisCache>(*this);
    return *analysis_;
}

void
Runner::resetAnalysis()
{
    std::lock_guard<std::mutex> lock(analysis_mu_);
    analysis_.reset();
}

Runner::Runner(CompileOptions options) : options_(options)
{
    const char *env = std::getenv("IFPROB_CACHE");
    if (env && std::string_view(env) == "off") {
        cache_dir_.clear();
    } else {
        cache_dir_ = env ? env : ".ifprob-cache";
        std::error_code ec;
        std::filesystem::create_directories(cache_dir_, ec);
        if (ec)
            cache_dir_.clear(); // fall back to uncached operation
    }
}

std::shared_ptr<Runner::CompileSlot>
Runner::compileSlot(const std::string &workload)
{
    std::shared_ptr<CompileSlot> slot;
    bool compiler_thread = false;
    {
        std::lock_guard<std::mutex> lock(programs_mu_);
        auto &entry = programs_[workload];
        if (!entry) {
            entry = std::make_shared<CompileSlot>();
            entry->ready = entry->promise.get_future().share();
            compiler_thread = true;
        }
        slot = entry;
    }
    if (compiler_thread) {
        try {
            const workloads::Workload &w = workloads::get(workload);
            obs::ScopedSpan span("runner.compile", "harness");
            if (span.active())
                span.arg("workload", workload);
            const int64_t t0 = obs::nowMicros();
            slot->program = compile(w.source, options_);
            slot->compile_micros = obs::nowMicros() - t0;
            obs::counter("runner.compile_micros")
                .add(slot->compile_micros);
            slot->promise.set_value();
        } catch (...) {
            slot->promise.set_exception(std::current_exception());
        }
    }
    slot->ready.get(); // waits for the compiler; rethrows its failure
    return slot;
}

const isa::Program &
Runner::program(const std::string &workload)
{
    return compileSlot(workload)->program;
}

std::string
Runner::cachePath(const std::string &workload, const std::string &dataset,
                  uint64_t fingerprint) const
{
    return strPrintf("%s/%s.%s.%016llx.stats", cache_dir_.c_str(),
                     sanitizeFileName(workload).c_str(),
                     sanitizeFileName(dataset).c_str(),
                     static_cast<unsigned long long>(fingerprint));
}

const vm::RunStats &
Runner::stats(const std::string &workload, const std::string &dataset)
{
    std::shared_ptr<StatsSlot> slot =
        stats_slots_.slot(std::make_pair(workload, dataset));
    // Exactly one thread computes; concurrent callers block here. An
    // exception leaves the flag unset, so each caller observes it.
    std::call_once(slot->once,
                   [&] { computeStats(*slot, workload, dataset); });
    return slot->stats;
}

void
Runner::computeStats(StatsSlot &slot, const std::string &workload,
                     const std::string &dataset)
{
    std::shared_ptr<CompileSlot> compiled = compileSlot(workload);
    const isa::Program &prog = compiled->program;

    obs::RunRecord record;
    record.workload = workload;
    record.dataset = dataset;
    record.fingerprint =
        strPrintf("%016llx",
                  static_cast<unsigned long long>(prog.fingerprint()));
    record.cache = cache_dir_.empty() ? "off" : "miss";
    if (!compiled->micros_claimed.exchange(true))
        record.compile_micros = compiled->compile_micros;

    auto finish = [&](vm::RunStats &&stats) {
        record.instructions = stats.instructions;
        record.cond_branches = stats.cond_branches;
        record.taken_branches = stats.taken_branches;
        record.self_mispredicts = selfMispredicts(stats);
        record.instr_per_mispredict =
            static_cast<double>(stats.instructions) /
            static_cast<double>(std::max<int64_t>(
                record.self_mispredicts, 1));
        obs::ReportSink::global().write(record);
        slot.stats = std::move(stats);
    };

    if (!cache_dir_.empty()) {
        std::string path = cachePath(workload, dataset, prog.fingerprint());
        std::ifstream in(path, std::ios::binary);
        if (in) {
            try {
                // New entries are binary (magic-sniffed); the text
                // loader remains the fallback for cache directories
                // written before the binary format existed.
                const bool binary = vm::RunStats::sniffBinary(in);
                vm::RunStats cached =
                    binary ? vm::RunStats::loadBinary(in,
                                                      prog.fingerprint())
                           : vm::RunStats::load(in);
                int64_t bytes = fileSizeOf(path);
                {
                    std::lock_guard<std::mutex> lock(cache_stats_mu_);
                    ++cache_stats_.hits;
                    ++(binary ? cache_stats_.binary_hits
                              : cache_stats_.text_hits);
                    cache_stats_.bytes_read += bytes;
                }
                obs::counter("runner.cache_hits").add(1);
                obs::counter(binary ? "runner.cache_hits_binary"
                                    : "runner.cache_hits_text")
                    .add(1);
                obs::counter("runner.cache_bytes_read").add(bytes);
                record.cache = "hit";
                record.stats_cache_format = binary ? "binary" : "text";
                finish(std::move(cached));
                return;
            } catch (const Error &e) {
                // Corrupt cache entry: record the failure, then re-run.
                // Writes are atomic (temp + rename), so this is genuine
                // corruption, never a torn concurrent write.
                {
                    std::lock_guard<std::mutex> lock(cache_stats_mu_);
                    ++cache_stats_.read_failures;
                    cache_stats_.noteFailure(path + ": " + e.what());
                }
                obs::counter("runner.cache_read_failures").add(1);
                obs::TraceSession::global().emitInstant(
                    "runner.cache_read_failure", "harness",
                    obs::nowMicros(),
                    obs::JsonObject().field("path", path).field(
                        "error", std::string_view(e.what())));
                record.cache = "error";
            }
        } else {
            {
                std::lock_guard<std::mutex> lock(cache_stats_mu_);
                ++cache_stats_.misses;
            }
            obs::counter("runner.cache_misses").add(1);
        }
    }

    const workloads::Dataset *ds = &findDataset(workload, dataset);

    vm::RunResult result;
    {
        obs::ScopedSpan span("runner.execute", "harness");
        if (span.active()) {
            span.arg("workload", workload);
            span.arg("dataset", dataset);
        }
        const int64_t t0 = obs::nowMicros();
        vm::Machine machine(prog);
        vm::RunLimits limits;
        limits.max_instructions = 4'000'000'000ll;
        result = machine.run(ds->input, limits);
        record.execute_micros = obs::nowMicros() - t0;
        record.engine = std::string(vm::engineName(machine.engine()));
        record.decode_micros = machine.decodeMicros();
        record.jit_micros = machine.jitCompileMicros();
        obs::counter("runner.execute_micros").add(record.execute_micros);
    }

    if (!cache_dir_.empty()) {
        std::string path = cachePath(workload, dataset, prog.fingerprint());
        int64_t written =
            writeFileAtomically(path, [&](std::ofstream &out) {
                result.stats.saveBinary(out, prog.fingerprint());
            });
        if (written > 0) {
            {
                std::lock_guard<std::mutex> lock(cache_stats_mu_);
                cache_stats_.bytes_written += written;
            }
            obs::counter("runner.cache_bytes_written").add(written);
        }
    }
    finish(std::move(result.stats));
}

std::string
Runner::tracePath(const std::string &workload, const std::string &dataset,
                  uint64_t fingerprint) const
{
    return strPrintf("%s/%s.%s.%016llx.trace", cache_dir_.c_str(),
                     sanitizeFileName(workload).c_str(),
                     sanitizeFileName(dataset).c_str(),
                     static_cast<unsigned long long>(fingerprint));
}

const trace::Trace &
Runner::traceOf(const std::string &workload, const std::string &dataset)
{
    return traceOf(workload, dataset, program(workload));
}

const trace::Trace &
Runner::traceOf(const std::string &workload, const std::string &dataset,
                const isa::Program &variant)
{
    std::shared_ptr<TraceSlot> slot = trace_slots_.slot(
        std::make_tuple(workload, dataset, variant.fingerprint()));
    // Exactly one thread records (or loads); concurrent callers block
    // here. An exception leaves the flag unset, so each caller observes
    // it.
    std::call_once(slot->once, [&] {
        computeTrace(*slot, workload, dataset, variant);
    });
    return *slot->trace;
}

void
Runner::computeTrace(TraceSlot &slot, const std::string &workload,
                     const std::string &dataset,
                     const isa::Program &program)
{
    const uint64_t fingerprint = program.fingerprint();
    std::string path;
    if (!cache_dir_.empty()) {
        path = tracePath(workload, dataset, fingerprint);
        // mmap the cache entry so the loaded Trace keeps its event
        // streams as views into the page cache (zero-copy warm replay);
        // tryOpen falls back to one buffered read when mmap is
        // unavailable, and nullptr means plain cache miss.
        auto mapped = support::MappedFile::tryOpen(path);
        if (mapped) {
            try {
                const int64_t t0 = obs::nowMicros();
                const int64_t bytes =
                    static_cast<int64_t>(mapped->size());
                auto loaded = std::make_shared<trace::Trace>(
                    trace::Trace::loadMapped(std::move(mapped),
                                             fingerprint));
                const int64_t load_micros = obs::nowMicros() - t0;
                {
                    std::lock_guard<std::mutex> lock(cache_stats_mu_);
                    ++cache_stats_.trace_hits;
                    cache_stats_.trace_bytes_read += bytes;
                }
                obs::counter("runner.trace_cache_hits").add(1);
                obs::counter("runner.trace_cache_bytes_read").add(bytes);
                obs::counter("runner.trace_load_micros").add(load_micros);
                slot.trace = std::move(loaded);
                return;
            } catch (const Error &e) {
                // Corrupt trace entry: record the failure, then
                // re-record. Writes are atomic (temp + rename), so this
                // is genuine corruption, never a torn concurrent write.
                {
                    std::lock_guard<std::mutex> lock(cache_stats_mu_);
                    ++cache_stats_.trace_read_failures;
                    cache_stats_.noteFailure(path + ": " + e.what());
                }
                obs::counter("runner.trace_cache_read_failures").add(1);
                obs::TraceSession::global().emitInstant(
                    "runner.trace_cache_read_failure", "harness",
                    obs::nowMicros(),
                    obs::JsonObject().field("path", path).field(
                        "error", std::string_view(e.what())));
            }
        } else {
            {
                std::lock_guard<std::mutex> lock(cache_stats_mu_);
                ++cache_stats_.trace_misses;
            }
            obs::counter("runner.trace_cache_misses").add(1);
        }
    } else {
        std::lock_guard<std::mutex> lock(cache_stats_mu_);
        ++cache_stats_.trace_misses;
    }

    const workloads::Dataset &ds = findDataset(workload, dataset);

    obs::RunRecord record;
    record.workload = workload;
    record.dataset = dataset;
    record.fingerprint = strPrintf(
        "%016llx", static_cast<unsigned long long>(fingerprint));
    record.cache = cache_dir_.empty() ? "off" : "miss";

    std::shared_ptr<trace::Trace> recorded;
    {
        obs::ScopedSpan span("runner.record_trace", "harness");
        if (span.active()) {
            span.arg("workload", workload);
            span.arg("dataset", dataset);
        }
        const int64_t t0 = obs::nowMicros();
        vm::RunLimits limits;
        limits.max_instructions = 4'000'000'000ll;
        recorded = std::make_shared<trace::Trace>(trace::record(
            program, ds.input, limits, workload, dataset));
        record.execute_micros = obs::nowMicros() - t0;
        obs::counter("runner.trace_record_micros")
            .add(record.execute_micros);
    }

    int64_t trace_micros = 0;
    if (!cache_dir_.empty()) {
        const int64_t t0 = obs::nowMicros();
        int64_t written = writeFileAtomically(
            path, [&](std::ofstream &out) { recorded->save(out); });
        trace_micros = obs::nowMicros() - t0;
        if (written > 0) {
            {
                std::lock_guard<std::mutex> lock(cache_stats_mu_);
                cache_stats_.trace_bytes_written += written;
            }
            obs::counter("runner.trace_cache_bytes_written").add(written);
        }
    }

    // One run record per recording execution: the usual counters from
    // the embedded stats, plus the trace-plane overhead (encode + cache
    // write) in trace_micros.
    const vm::RunStats &stats = recorded->stats;
    record.instructions = stats.instructions;
    record.cond_branches = stats.cond_branches;
    record.taken_branches = stats.taken_branches;
    record.self_mispredicts = selfMispredicts(stats);
    record.instr_per_mispredict =
        static_cast<double>(stats.instructions) /
        static_cast<double>(
            std::max<int64_t>(record.self_mispredicts, 1));
    record.engine = std::string(vm::engineName(vm::defaultEngine()));
    record.trace_micros = trace_micros;
    obs::ReportSink::global().write(record);

    slot.trace = std::move(recorded);
}

void
Runner::resetTraces()
{
    trace_slots_.clear();
}

CacheStats
Runner::cacheStats() const
{
    std::lock_guard<std::mutex> lock(cache_stats_mu_);
    return cache_stats_;
}

std::vector<std::string>
Runner::datasetNames(const std::string &workload) const
{
    std::vector<std::string> out;
    for (const auto &d : workloads::get(workload).datasets)
        out.push_back(d.name);
    return out;
}

} // namespace ifprob::harness

#include "harness/runner.h"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "compiler/pipeline.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/str.h"
#include "vm/machine.h"

namespace ifprob::harness {

namespace {

std::string
sanitize(const std::string &name)
{
    std::string out;
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(c);
        else
            out.push_back('_');
    }
    return out;
}

int64_t
fileSize(const std::string &path)
{
    std::error_code ec;
    auto size = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<int64_t>(size);
}

/** Best-possible static mispredicts: each site predicted its majority
 *  direction, so it mispredicts min(taken, not taken) times. */
int64_t
selfMispredicts(const vm::RunStats &stats)
{
    int64_t misses = 0;
    for (const auto &site : stats.branches)
        misses += std::min(site.taken, site.executed - site.taken);
    return misses;
}

} // namespace

CompileOptions
Runner::experimentOptions()
{
    CompileOptions options;
    options.optimize = true;
    options.eliminate_dead_code = false; // as in the paper (see Table 1)
    options.use_select = true;
    return options;
}

Runner::Runner(CompileOptions options) : options_(options)
{
    const char *env = std::getenv("IFPROB_CACHE");
    if (env && std::string_view(env) == "off") {
        cache_dir_.clear();
    } else {
        cache_dir_ = env ? env : ".ifprob-cache";
        std::error_code ec;
        std::filesystem::create_directories(cache_dir_, ec);
        if (ec)
            cache_dir_.clear(); // fall back to uncached operation
    }
}

const isa::Program &
Runner::program(const std::string &workload)
{
    auto it = programs_.find(workload);
    if (it != programs_.end())
        return it->second;
    const workloads::Workload &w = workloads::get(workload);
    obs::ScopedSpan span("runner.compile", "harness");
    if (span.active())
        span.arg("workload", workload);
    const int64_t t0 = obs::nowMicros();
    isa::Program compiled = compile(w.source, options_);
    const int64_t micros = obs::nowMicros() - t0;
    obs::counter("runner.compile_micros").add(micros);
    pending_compile_micros_[workload] = micros;
    return programs_.emplace(workload, std::move(compiled)).first->second;
}

std::string
Runner::cachePath(const std::string &workload, const std::string &dataset,
                  uint64_t fingerprint) const
{
    return strPrintf("%s/%s.%s.%016llx.stats", cache_dir_.c_str(),
                     sanitize(workload).c_str(), sanitize(dataset).c_str(),
                     static_cast<unsigned long long>(fingerprint));
}

const vm::RunStats &
Runner::stats(const std::string &workload, const std::string &dataset)
{
    auto key = std::make_pair(workload, dataset);
    auto it = stats_.find(key);
    if (it != stats_.end())
        return it->second;

    const isa::Program &prog = program(workload);

    obs::RunRecord record;
    record.workload = workload;
    record.dataset = dataset;
    record.fingerprint =
        strPrintf("%016llx",
                  static_cast<unsigned long long>(prog.fingerprint()));
    record.cache = cache_dir_.empty() ? "off" : "miss";
    {
        auto pending = pending_compile_micros_.find(workload);
        if (pending != pending_compile_micros_.end()) {
            record.compile_micros = pending->second;
            pending_compile_micros_.erase(pending);
        }
    }

    auto finish = [&](vm::RunStats &&stats) -> const vm::RunStats & {
        record.instructions = stats.instructions;
        record.cond_branches = stats.cond_branches;
        record.taken_branches = stats.taken_branches;
        record.self_mispredicts = selfMispredicts(stats);
        record.instr_per_mispredict =
            static_cast<double>(stats.instructions) /
            static_cast<double>(std::max<int64_t>(
                record.self_mispredicts, 1));
        obs::ReportSink::global().write(record);
        return stats_.emplace(key, std::move(stats)).first->second;
    };

    if (!cache_dir_.empty()) {
        std::string path = cachePath(workload, dataset, prog.fingerprint());
        std::ifstream in(path);
        if (in) {
            try {
                vm::RunStats cached = vm::RunStats::load(in);
                ++cache_stats_.hits;
                cache_stats_.bytes_read += fileSize(path);
                obs::counter("runner.cache_hits").add(1);
                obs::counter("runner.cache_bytes_read")
                    .add(fileSize(path));
                record.cache = "hit";
                return finish(std::move(cached));
            } catch (const Error &e) {
                // Corrupt cache entry: record the failure, then re-run.
                ++cache_stats_.read_failures;
                cache_stats_.failures.push_back(path + ": " + e.what());
                obs::counter("runner.cache_read_failures").add(1);
                obs::TraceSession::global().emitInstant(
                    "runner.cache_read_failure", "harness",
                    obs::nowMicros(),
                    obs::JsonObject().field("path", path).field(
                        "error", std::string_view(e.what())));
                record.cache = "error";
            }
        } else {
            ++cache_stats_.misses;
            obs::counter("runner.cache_misses").add(1);
        }
    }

    const workloads::Workload &w = workloads::get(workload);
    const workloads::Dataset *ds = nullptr;
    for (const auto &d : w.datasets) {
        if (d.name == dataset)
            ds = &d;
    }
    if (!ds)
        throw Error("workload " + workload + " has no dataset " + dataset);

    vm::RunResult result;
    {
        obs::ScopedSpan span("runner.execute", "harness");
        if (span.active()) {
            span.arg("workload", workload);
            span.arg("dataset", dataset);
        }
        const int64_t t0 = obs::nowMicros();
        vm::Machine machine(prog);
        vm::RunLimits limits;
        limits.max_instructions = 4'000'000'000ll;
        result = machine.run(ds->input, limits);
        record.execute_micros = obs::nowMicros() - t0;
        obs::counter("runner.execute_micros").add(record.execute_micros);
    }

    if (!cache_dir_.empty()) {
        std::string path = cachePath(workload, dataset, prog.fingerprint());
        std::ofstream out(path);
        if (out) {
            result.stats.save(out);
            out.close();
            int64_t written = fileSize(path);
            cache_stats_.bytes_written += written;
            obs::counter("runner.cache_bytes_written").add(written);
        }
    }
    return finish(std::move(result.stats));
}

std::vector<std::string>
Runner::datasetNames(const std::string &workload) const
{
    std::vector<std::string> out;
    for (const auto &d : workloads::get(workload).datasets)
        out.push_back(d.name);
    return out;
}

} // namespace ifprob::harness

#include "harness/runner.h"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "compiler/pipeline.h"
#include "support/error.h"
#include "support/str.h"
#include "vm/machine.h"

namespace ifprob::harness {

namespace {

std::string
sanitize(const std::string &name)
{
    std::string out;
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(c);
        else
            out.push_back('_');
    }
    return out;
}

} // namespace

CompileOptions
Runner::experimentOptions()
{
    CompileOptions options;
    options.optimize = true;
    options.eliminate_dead_code = false; // as in the paper (see Table 1)
    options.use_select = true;
    return options;
}

Runner::Runner(CompileOptions options) : options_(options)
{
    const char *env = std::getenv("IFPROB_CACHE");
    if (env && std::string_view(env) == "off") {
        cache_dir_.clear();
    } else {
        cache_dir_ = env ? env : ".ifprob-cache";
        std::error_code ec;
        std::filesystem::create_directories(cache_dir_, ec);
        if (ec)
            cache_dir_.clear(); // fall back to uncached operation
    }
}

const isa::Program &
Runner::program(const std::string &workload)
{
    auto it = programs_.find(workload);
    if (it != programs_.end())
        return it->second;
    const workloads::Workload &w = workloads::get(workload);
    isa::Program compiled = compile(w.source, options_);
    return programs_.emplace(workload, std::move(compiled)).first->second;
}

std::string
Runner::cachePath(const std::string &workload, const std::string &dataset,
                  uint64_t fingerprint) const
{
    return strPrintf("%s/%s.%s.%016llx.stats", cache_dir_.c_str(),
                     sanitize(workload).c_str(), sanitize(dataset).c_str(),
                     static_cast<unsigned long long>(fingerprint));
}

const vm::RunStats &
Runner::stats(const std::string &workload, const std::string &dataset)
{
    auto key = std::make_pair(workload, dataset);
    auto it = stats_.find(key);
    if (it != stats_.end())
        return it->second;

    const isa::Program &prog = program(workload);
    if (!cache_dir_.empty()) {
        std::ifstream in(cachePath(workload, dataset, prog.fingerprint()));
        if (in) {
            try {
                vm::RunStats cached = vm::RunStats::load(in);
                return stats_.emplace(key, std::move(cached)).first->second;
            } catch (const Error &) {
                // Corrupt cache entry: fall through and re-run.
            }
        }
    }

    const workloads::Workload &w = workloads::get(workload);
    const workloads::Dataset *ds = nullptr;
    for (const auto &d : w.datasets) {
        if (d.name == dataset)
            ds = &d;
    }
    if (!ds)
        throw Error("workload " + workload + " has no dataset " + dataset);

    vm::Machine machine(prog);
    vm::RunLimits limits;
    limits.max_instructions = 4'000'000'000ll;
    vm::RunResult result = machine.run(ds->input, limits);

    if (!cache_dir_.empty()) {
        std::ofstream out(cachePath(workload, dataset, prog.fingerprint()));
        if (out)
            result.stats.save(out);
    }
    return stats_.emplace(key, std::move(result.stats)).first->second;
}

std::vector<std::string>
Runner::datasetNames(const std::string &workload) const
{
    std::vector<std::string> out;
    for (const auto &d : workloads::get(workload).datasets)
        out.push_back(d.name);
    return out;
}

} // namespace ifprob::harness

#ifndef IFPROB_HARNESS_EXPERIMENTS_H
#define IFPROB_HARNESS_EXPERIMENTS_H

#include <string>
#include <vector>

#include "harness/runner.h"
#include "predict/heuristic_predictor.h"
#include "profile/profile_db.h"

namespace ifprob::harness {

/**
 * The paper's experiments, each returning typed rows. The bench binaries
 * render these as tables/ASCII charts and EXPERIMENTS.md records the
 * measured values next to the paper's.
 */

/** Figure 1: instructions per break in control, no prediction. */
struct Fig1Row
{
    std::string program;
    std::string dataset;
    bool fortran_like = false;
    double per_break = 0.0;            ///< black bar: calls not counted
    double per_break_with_calls = 0.0; ///< white bar: + direct calls/returns
};
std::vector<Fig1Row> figure1(Runner &runner);

/** Figure 2 / Table 3: instructions per mispredicted branch. */
struct Fig2Row
{
    std::string program;
    std::string dataset;
    bool fortran_like = false;
    int num_datasets = 1;
    double self_per_break = 0.0;   ///< black bar: dataset predicts itself
    double others_per_break = 0.0; ///< white bar: scaled sum of the others
                                   ///< (== self when only one dataset)
};
std::vector<Fig2Row> figure2(Runner &runner,
                             profile::MergeMode mode =
                                 profile::MergeMode::kScaled);

/** Figure 3: best/worst single-other-dataset predictor, % of self. */
struct Fig3Row
{
    std::string program;
    std::string dataset;
    bool fortran_like = false;
    double best_pct = 0.0;
    double worst_pct = 0.0;
    std::string best_predictor;
    std::string worst_predictor;
};
std::vector<Fig3Row> figure3(Runner &runner);

/** Table 1: dynamic dead-code fraction per program (primary dataset). */
struct Table1Row
{
    std::string program;
    double dead_fraction = 0.0; ///< 0.18 == 18% of dynamic instructions
};
std::vector<Table1Row> table1();

/** Percent-taken per dataset ("branch percent taken as a program
 *  constant", §3 informal observations). */
struct TakenRow
{
    std::string program;
    std::string dataset;
    double percent_taken = 0.0;
};
std::vector<TakenRow> percentTaken(Runner &runner);

/** Heuristic-vs-profile comparison (§3: heuristics give up ~2x). */
struct HeuristicRow
{
    std::string program;
    std::string dataset;
    double self_per_break = 0.0;
    double others_per_break = 0.0;
    double backward_taken_per_break = 0.0;
    double opcode_rules_per_break = 0.0;
    double always_taken_per_break = 0.0;
};
std::vector<HeuristicRow> heuristics(Runner &runner);

/** Combination-strategy ablation (scaled / unscaled / polling). */
struct CombineRow
{
    std::string program;
    std::string dataset;
    double scaled_per_break = 0.0;
    double unscaled_per_break = 0.0;
    double polling_per_break = 0.0;
};
std::vector<CombineRow> combineAblation(Runner &runner);

/**
 * The "Coverage" investigation (§3 informal observations): the authors
 * suspected bad predictor pairs emphasized *different parts of the
 * program* rather than flipping branch directions, but "nothing we
 * tried seemed to correlate well". This experiment computes, for every
 * predictor/target dataset pair, (a) the coverage gap — the share of the
 * target's dynamic branches at sites the predictor never executed — and
 * (b) the direction-flip loss — mispredictions at sites both datasets
 * executed but disagree on; the bench correlates both against the
 * prediction loss.
 */
struct CoverageRow
{
    std::string program;
    std::string target;
    std::string predictor;
    /** % of target's dynamic branches at predictor-unseen sites. */
    double coverage_gap_pct = 0.0;
    /** % of target's dynamic branches at sites where the two datasets'
     *  majority directions disagree. */
    double disagreement_pct = 0.0;
    /** Cross-prediction quality: instrs/break as % of the self bound. */
    double quality_pct = 0.0;
};
std::vector<CoverageRow> coverageStudy(Runner &runner);

// --- shared helpers ---------------------------------------------------------

/** Instructions per break for @p target under self-prediction. */
double selfPredictedPerBreak(Runner &runner, const std::string &workload,
                             const std::string &dataset);

/**
 * Instructions per break for @p target predicted by the (mode-combined)
 * profiles of every *other* dataset of the program. Falls back to
 * self-prediction when the program has a single dataset.
 */
double othersPredictedPerBreak(Runner &runner, const std::string &workload,
                               const std::string &dataset,
                               profile::MergeMode mode);

/** Build the profile database of one run. */
profile::ProfileDb profileOf(Runner &runner, const std::string &workload,
                             const std::string &dataset);

} // namespace ifprob::harness

#endif // IFPROB_HARNESS_EXPERIMENTS_H

#include "harness/experiments.h"

#include <cstdlib>
#include <functional>

#include "analysis/analysis_cache.h"
#include "compiler/pipeline.h"
#include "exec/graph.h"
#include "exec/pool.h"
#include "metrics/breaks.h"
#include "predict/evaluate.h"
#include "predict/profile_predictor.h"
#include "vm/machine.h"

namespace ifprob::harness {

using analysis::AnalysisCache;
using metrics::BreakConfig;
using predict::ProfilePredictor;
using profile::MergeMode;
using profile::ProfileDb;

namespace {

/**
 * IFPROB_ANALYSIS=reference selects the original analysis plane — a
 * fresh ProfileDb per profileOf() call, a full O(n^2) re-merge per
 * leave-one-out predictor, virtual predictTaken() dispatch per site.
 * Anything else (the default) routes through Runner::analysis(), the
 * memoized AnalysisCache with SoA kernels. The differential tests in
 * tests/test_analysis.cpp hold the two paths' outputs identical.
 *
 * Read per call: the experiment entry points are not hot, and tests
 * flip the variable at runtime.
 */
bool
useReferenceAnalysis()
{
    const char *env = std::getenv("IFPROB_ANALYSIS");
    return env && std::string_view(env) == "reference";
}

/** One (workload, dataset) cell of the experiment matrix, flattened so
 *  the exec pool can fan out over it. */
struct Cell
{
    const workloads::Workload *workload = nullptr;
    size_t dataset = 0; ///< index into workload->datasets
};

std::vector<Cell>
matrixCells()
{
    std::vector<Cell> cells;
    for (const auto &w : workloads::all()) {
        for (size_t d = 0; d < w.datasets.size(); ++d)
            cells.push_back(Cell{&w, d});
    }
    return cells;
}

/**
 * The three-stage graph shape figure3 and coverageStudy share: for each
 * workload with at least two datasets, one stats node per dataset, one
 * materialization node that builds the workload's profile set once the
 * stats are in, then one row node per target dataset. Workloads overlap:
 * one workload's row nodes run while the next workload's stats execute.
 *
 * @p stage names the row nodes in traces ("fig3", "coverage").
 * @p materialize runs once per eligible workload; @p row once per
 * (workload index, target index).
 */
void
runTargetGraph(Runner &runner, const char *stage,
               const std::function<void(size_t wi)> &materialize,
               const std::function<void(size_t wi, size_t t)> &row)
{
    const auto &all = workloads::all();
    exec::Graph graph;
    for (size_t wi = 0; wi < all.size(); ++wi) {
        const workloads::Workload &w = all[wi];
        if (w.datasets.size() < 2)
            continue;
        std::vector<exec::Graph::NodeId> stat_nodes;
        for (const auto &d : w.datasets) {
            stat_nodes.push_back(graph.add(
                "stats:" + w.name + "/" + d.name,
                [&runner, &w, &d] { runner.stats(w.name, d.name); }));
        }
        exec::Graph::NodeId profile_node =
            graph.add("profiles:" + w.name, [&materialize, wi] {
                materialize(wi);
            }, stat_nodes);
        for (size_t t = 0; t < w.datasets.size(); ++t) {
            graph.add(std::string(stage) + ":" + w.name + "/" +
                          w.datasets[t].name,
                      [&row, wi, t] { row(wi, t); }, {profile_node});
        }
    }
    graph.run(exec::globalPool());
}

} // namespace

profile::ProfileDb
profileOf(Runner &runner, const std::string &workload,
          const std::string &dataset)
{
    const isa::Program &prog = runner.program(workload);
    return ProfileDb(workload, prog.fingerprint(),
                     runner.stats(workload, dataset));
}

double
selfPredictedPerBreak(Runner &runner, const std::string &workload,
                      const std::string &dataset)
{
    if (!useReferenceAnalysis())
        return runner.analysis().selfPerBreak(workload, dataset);
    const vm::RunStats &stats = runner.stats(workload, dataset);
    ProfilePredictor self(profileOf(runner, workload, dataset));
    return metrics::breaksWithPredictor(stats, self).instructionsPerBreak();
}

double
othersPredictedPerBreak(Runner &runner, const std::string &workload,
                        const std::string &dataset, MergeMode mode)
{
    if (!useReferenceAnalysis())
        return runner.analysis().othersPerBreak(workload, dataset, mode);
    std::vector<ProfileDb> others;
    for (const std::string &name : runner.datasetNames(workload)) {
        if (name != dataset)
            others.push_back(profileOf(runner, workload, name));
    }
    if (others.empty())
        return selfPredictedPerBreak(runner, workload, dataset);
    ProfileDb merged = ProfileDb::merge(others, mode);
    ProfilePredictor predictor(merged);
    const vm::RunStats &stats = runner.stats(workload, dataset);
    return metrics::breaksWithPredictor(stats, predictor)
        .instructionsPerBreak();
}

std::vector<Fig1Row>
figure1(Runner &runner)
{
    auto cells = matrixCells();
    std::vector<Fig1Row> rows(cells.size());
    exec::parallelFor(exec::globalPool(), cells.size(), [&](size_t i) {
        const workloads::Workload &w = *cells[i].workload;
        const workloads::Dataset &d = w.datasets[cells[i].dataset];
        const vm::RunStats &stats = runner.stats(w.name, d.name);
        Fig1Row &row = rows[i];
        row.program = w.name;
        row.dataset = d.name;
        row.fortran_like = w.fortran_like;
        BreakConfig no_calls{.count_calls = false};
        BreakConfig with_calls{.count_calls = true};
        row.per_break = metrics::breaksWithoutPrediction(stats, no_calls)
                            .instructionsPerBreak();
        row.per_break_with_calls =
            metrics::breaksWithoutPrediction(stats, with_calls)
                .instructionsPerBreak();
    });
    return rows;
}

std::vector<Fig2Row>
figure2(Runner &runner, MergeMode mode)
{
    // The cross-dataset predictor of row (w, d) needs every dataset of
    // w, so the graph runs one stats node per matrix cell and releases
    // each workload's row nodes as soon as that workload's cells are
    // done — rows of one workload overlap stats of the next. The
    // per-row prediction work dispatches through the shared helpers
    // (reference path or AnalysisCache, per IFPROB_ANALYSIS).
    auto cells = matrixCells();
    std::vector<Fig2Row> rows(cells.size());
    exec::Graph graph;
    size_t cell = 0;
    for (const auto &w : workloads::all()) {
        std::vector<exec::Graph::NodeId> stat_nodes;
        size_t first = cell;
        for (const auto &d : w.datasets) {
            stat_nodes.push_back(graph.add(
                "stats:" + w.name + "/" + d.name,
                [&runner, &w, &d] { runner.stats(w.name, d.name); }));
            ++cell;
        }
        for (size_t i = first; i < cell; ++i) {
            const workloads::Dataset &d = w.datasets[cells[i].dataset];
            graph.add(
                "fig2:" + w.name + "/" + d.name,
                [&runner, &rows, &w, &d, i, mode] {
                    Fig2Row &row = rows[i];
                    row.program = w.name;
                    row.dataset = d.name;
                    row.fortran_like = w.fortran_like;
                    row.num_datasets = static_cast<int>(w.datasets.size());
                    row.self_per_break =
                        selfPredictedPerBreak(runner, w.name, d.name);
                    row.others_per_break = othersPredictedPerBreak(
                        runner, w.name, d.name, mode);
                },
                stat_nodes);
        }
    }
    graph.run(exec::globalPool());
    return rows;
}

std::vector<Fig3Row>
figure3(Runner &runner)
{
    const auto &all = workloads::all();
    std::vector<Fig3Row> rows;
    std::vector<size_t> row_base(all.size(), 0); ///< first row of workload
    for (size_t wi = 0; wi < all.size(); ++wi) {
        row_base[wi] = rows.size();
        if (all[wi].datasets.size() >= 2)
            rows.resize(rows.size() + all[wi].datasets.size());
    }

    const bool reference = useReferenceAnalysis();
    std::vector<std::vector<ProfileDb>> profiles(all.size());

    auto materialize = [&](size_t wi) {
        const workloads::Workload &w = all[wi];
        if (reference) {
            std::vector<ProfileDb> built;
            for (const auto &d : w.datasets)
                built.push_back(profileOf(runner, w.name, d.name));
            profiles[wi] = std::move(built);
        } else {
            runner.analysis().workload(w.name);
        }
    };

    auto row = [&](size_t wi, size_t t) {
        const workloads::Workload &w = all[wi];
        double self = selfPredictedPerBreak(runner, w.name,
                                            w.datasets[t].name);
        Fig3Row &out = rows[row_base[wi] + t];
        out.program = w.name;
        out.dataset = w.datasets[t].name;
        out.fortran_like = w.fortran_like;
        out.best_pct = -1.0;
        out.worst_pct = 1e300;
        const vm::RunStats &target =
            runner.stats(w.name, w.datasets[t].name);
        const AnalysisCache::WorkloadProfiles *wp =
            reference ? nullptr : &runner.analysis().workload(w.name);
        for (size_t p = 0; p < w.datasets.size(); ++p) {
            if (p == t)
                continue;
            double per_break;
            if (reference) {
                ProfilePredictor predictor(profiles[wi][p]);
                per_break = metrics::breaksWithPredictor(target, predictor)
                                .instructionsPerBreak();
            } else {
                const int64_t mis = analysis::mispredictsLowered(
                    wp->counts[t], wp->directions[p]);
                per_break = metrics::breaksWithMispredicts(target, mis)
                                .instructionsPerBreak();
            }
            double pct = self > 0.0 ? 100.0 * per_break / self : 100.0;
            if (pct > out.best_pct) {
                out.best_pct = pct;
                out.best_predictor = w.datasets[p].name;
            }
            if (pct < out.worst_pct) {
                out.worst_pct = pct;
                out.worst_predictor = w.datasets[p].name;
            }
        }
    };

    runTargetGraph(runner, "fig3", materialize, row);
    return rows;
}

std::vector<Table1Row>
table1()
{
    // Dead-code measurement needs a second compilation per program, so it
    // bypasses the Runner's shared image and builds both pipelines here.
    const auto &all = workloads::all();
    std::vector<Table1Row> rows(all.size());
    Runner plain(Runner::experimentOptions());
    CompileOptions dce_options = Runner::experimentOptions();
    dce_options.eliminate_dead_code = true;
    Runner dce(dce_options);
    exec::parallelFor(exec::globalPool(), all.size(), [&](size_t i) {
        const workloads::Workload &w = all[i];
        const std::string &primary = w.datasets.front().name;
        rows[i].program = w.name;
        rows[i].dead_fraction = metrics::deadCodeFraction(
            plain.stats(w.name, primary).instructions,
            dce.stats(w.name, primary).instructions);
    });
    return rows;
}

std::vector<TakenRow>
percentTaken(Runner &runner)
{
    auto cells = matrixCells();
    std::vector<TakenRow> rows(cells.size());
    exec::parallelFor(exec::globalPool(), cells.size(), [&](size_t i) {
        const workloads::Workload &w = *cells[i].workload;
        const workloads::Dataset &d = w.datasets[cells[i].dataset];
        rows[i] = {w.name, d.name,
                   runner.stats(w.name, d.name).percentTaken()};
    });
    return rows;
}

std::vector<HeuristicRow>
heuristics(Runner &runner)
{
    using predict::Heuristic;
    using predict::HeuristicPredictor;
    const bool reference = useReferenceAnalysis();
    const auto &all = workloads::all();
    std::vector<std::vector<HeuristicRow>> per_workload(all.size());
    exec::parallelFor(exec::globalPool(), all.size(), [&](size_t i) {
        const workloads::Workload &w = all[i];
        const isa::Program &prog = runner.program(w.name);
        HeuristicPredictor backward(prog, Heuristic::kBackwardTaken);
        HeuristicPredictor opcode(prog, Heuristic::kOpcodeRules);
        HeuristicPredictor taken(prog, Heuristic::kAlwaysTaken);
        // Fast path: pay the per-site virtual predictTaken() calls once
        // per workload, then score every dataset with the SoA kernel.
        const AnalysisCache::WorkloadProfiles *wp = nullptr;
        std::vector<uint8_t> backward_dir, opcode_dir, taken_dir;
        if (!reference) {
            wp = &runner.analysis().workload(w.name);
            const size_t sites = prog.branch_sites.size();
            backward_dir = predict::lowerPredictor(backward, sites);
            opcode_dir = predict::lowerPredictor(opcode, sites);
            taken_dir = predict::lowerPredictor(taken, sites);
        }
        for (size_t d = 0; d < w.datasets.size(); ++d) {
            const std::string &dataset = w.datasets[d].name;
            const vm::RunStats &stats = runner.stats(w.name, dataset);
            HeuristicRow row;
            row.program = w.name;
            row.dataset = dataset;
            row.self_per_break =
                selfPredictedPerBreak(runner, w.name, dataset);
            row.others_per_break = othersPredictedPerBreak(
                runner, w.name, dataset, MergeMode::kScaled);
            auto heuristic_per_break =
                [&](const predict::StaticPredictor &predictor,
                    const std::vector<uint8_t> &dir) {
                    if (reference) {
                        return metrics::breaksWithPredictor(stats,
                                                            predictor)
                            .instructionsPerBreak();
                    }
                    const int64_t mis = analysis::mispredictsLowered(
                        wp->counts[d], dir);
                    return metrics::breaksWithMispredicts(stats, mis)
                        .instructionsPerBreak();
                };
            row.backward_taken_per_break =
                heuristic_per_break(backward, backward_dir);
            row.opcode_rules_per_break =
                heuristic_per_break(opcode, opcode_dir);
            row.always_taken_per_break =
                heuristic_per_break(taken, taken_dir);
            per_workload[i].push_back(std::move(row));
        }
    });
    std::vector<HeuristicRow> rows;
    for (auto &chunk : per_workload) {
        for (auto &row : chunk)
            rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<CoverageRow>
coverageStudy(Runner &runner)
{
    const auto &all = workloads::all();
    size_t total_rows = 0;
    std::vector<size_t> row_base(all.size(), 0);
    for (size_t wi = 0; wi < all.size(); ++wi) {
        row_base[wi] = total_rows;
        if (all[wi].datasets.size() >= 2)
            total_rows +=
                all[wi].datasets.size() * (all[wi].datasets.size() - 1);
    }
    std::vector<CoverageRow> rows(total_rows);

    const bool reference = useReferenceAnalysis();
    std::vector<std::vector<ProfileDb>> profiles(all.size());

    auto materialize = [&](size_t wi) {
        const workloads::Workload &w = all[wi];
        if (reference) {
            std::vector<ProfileDb> built;
            for (const auto &d : w.datasets)
                built.push_back(profileOf(runner, w.name, d.name));
            profiles[wi] = std::move(built);
        } else {
            runner.analysis().workload(w.name);
        }
    };

    auto row = [&](size_t wi, size_t t) {
        const workloads::Workload &w = all[wi];
        const vm::RunStats &target =
            runner.stats(w.name, w.datasets[t].name);
        double self_bound = selfPredictedPerBreak(runner, w.name,
                                                  w.datasets[t].name);
        const AnalysisCache::WorkloadProfiles *wp =
            reference ? nullptr : &runner.analysis().workload(w.name);
        size_t slot = row_base[wi] + t * (w.datasets.size() - 1);
        for (size_t p = 0; p < w.datasets.size(); ++p) {
            if (p == t)
                continue;
            CoverageRow out;
            out.program = w.name;
            out.target = w.datasets[t].name;
            out.predictor = w.datasets[p].name;

            int64_t total = 0, unseen = 0, disagree = 0;
            double per_break;
            if (reference) {
                for (size_t site = 0; site < target.branches.size();
                     ++site) {
                    int64_t executed = target.branches[site].executed;
                    if (executed == 0)
                        continue;
                    total += executed;
                    const auto &pw = profiles[wi][p].site(site);
                    if (pw.executed <= 0.0) {
                        unseen += executed;
                        continue;
                    }
                    bool predictor_taken = pw.taken * 2.0 > pw.executed;
                    bool target_taken =
                        2 * target.branches[site].taken > executed;
                    if (predictor_taken != target_taken)
                        disagree += executed;
                }
                ProfilePredictor cross(profiles[wi][p]);
                per_break = metrics::breaksWithPredictor(target, cross)
                                .instructionsPerBreak();
            } else {
                analysis::PairTallies tallies = analysis::pairKernel(
                    wp->counts[t], wp->directions[p], wp->seen[p]);
                total = tallies.total;
                unseen = tallies.unseen;
                disagree = tallies.disagree;
                per_break = metrics::breaksWithMispredicts(
                                target, tallies.mispredicted)
                                .instructionsPerBreak();
            }
            if (total > 0) {
                out.coverage_gap_pct = 100.0 *
                                       static_cast<double>(unseen) /
                                       static_cast<double>(total);
                out.disagreement_pct = 100.0 *
                                       static_cast<double>(disagree) /
                                       static_cast<double>(total);
            }
            out.quality_pct = self_bound > 0.0
                                  ? 100.0 * per_break / self_bound
                                  : 100.0;
            rows[slot++] = std::move(out);
        }
    };

    runTargetGraph(runner, "coverage", materialize, row);
    return rows;
}

std::vector<CombineRow>
combineAblation(Runner &runner)
{
    auto &pool = exec::globalPool();
    std::vector<CombineRow> rows;
    std::vector<Cell> cells;
    for (const auto &w : workloads::all()) {
        if (w.datasets.size() < 3)
            continue; // combination is interesting with >= 2 others
        for (size_t d = 0; d < w.datasets.size(); ++d)
            cells.push_back(Cell{&w, d});
    }
    rows.resize(cells.size());

    exec::Graph graph;
    size_t cell = 0;
    while (cell < cells.size()) {
        const workloads::Workload &w = *cells[cell].workload;
        std::vector<exec::Graph::NodeId> stat_nodes;
        size_t first = cell;
        for (const auto &d : w.datasets) {
            stat_nodes.push_back(graph.add(
                "stats:" + w.name + "/" + d.name,
                [&runner, &w, &d] { runner.stats(w.name, d.name); }));
            ++cell;
        }
        for (size_t i = first; i < cell; ++i) {
            const workloads::Dataset &d = w.datasets[cells[i].dataset];
            graph.add(
                "combine:" + w.name + "/" + d.name,
                [&runner, &rows, &w, &d, i] {
                    CombineRow &row = rows[i];
                    row.program = w.name;
                    row.dataset = d.name;
                    row.scaled_per_break = othersPredictedPerBreak(
                        runner, w.name, d.name, MergeMode::kScaled);
                    row.unscaled_per_break = othersPredictedPerBreak(
                        runner, w.name, d.name, MergeMode::kUnscaled);
                    row.polling_per_break = othersPredictedPerBreak(
                        runner, w.name, d.name, MergeMode::kPolling);
                },
                stat_nodes);
        }
    }
    graph.run(pool);
    return rows;
}

} // namespace ifprob::harness

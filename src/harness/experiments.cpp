#include "harness/experiments.h"

#include "compiler/pipeline.h"
#include "metrics/breaks.h"
#include "predict/profile_predictor.h"
#include "vm/machine.h"

namespace ifprob::harness {

using metrics::BreakConfig;
using predict::ProfilePredictor;
using profile::MergeMode;
using profile::ProfileDb;

profile::ProfileDb
profileOf(Runner &runner, const std::string &workload,
          const std::string &dataset)
{
    const isa::Program &prog = runner.program(workload);
    return ProfileDb(workload, prog.fingerprint(),
                     runner.stats(workload, dataset));
}

double
selfPredictedPerBreak(Runner &runner, const std::string &workload,
                      const std::string &dataset)
{
    const vm::RunStats &stats = runner.stats(workload, dataset);
    ProfilePredictor self(profileOf(runner, workload, dataset));
    return metrics::breaksWithPredictor(stats, self).instructionsPerBreak();
}

double
othersPredictedPerBreak(Runner &runner, const std::string &workload,
                        const std::string &dataset, MergeMode mode)
{
    std::vector<ProfileDb> others;
    for (const std::string &name : runner.datasetNames(workload)) {
        if (name != dataset)
            others.push_back(profileOf(runner, workload, name));
    }
    if (others.empty())
        return selfPredictedPerBreak(runner, workload, dataset);
    ProfileDb merged = ProfileDb::merge(others, mode);
    ProfilePredictor predictor(merged);
    const vm::RunStats &stats = runner.stats(workload, dataset);
    return metrics::breaksWithPredictor(stats, predictor)
        .instructionsPerBreak();
}

std::vector<Fig1Row>
figure1(Runner &runner)
{
    std::vector<Fig1Row> rows;
    for (const auto &w : workloads::all()) {
        for (const auto &d : w.datasets) {
            const vm::RunStats &stats = runner.stats(w.name, d.name);
            Fig1Row row;
            row.program = w.name;
            row.dataset = d.name;
            row.fortran_like = w.fortran_like;
            BreakConfig no_calls{.count_calls = false};
            BreakConfig with_calls{.count_calls = true};
            row.per_break = metrics::breaksWithoutPrediction(stats, no_calls)
                                .instructionsPerBreak();
            row.per_break_with_calls =
                metrics::breaksWithoutPrediction(stats, with_calls)
                    .instructionsPerBreak();
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

std::vector<Fig2Row>
figure2(Runner &runner, MergeMode mode)
{
    std::vector<Fig2Row> rows;
    for (const auto &w : workloads::all()) {
        for (const auto &d : w.datasets) {
            Fig2Row row;
            row.program = w.name;
            row.dataset = d.name;
            row.fortran_like = w.fortran_like;
            row.num_datasets = static_cast<int>(w.datasets.size());
            row.self_per_break =
                selfPredictedPerBreak(runner, w.name, d.name);
            row.others_per_break =
                othersPredictedPerBreak(runner, w.name, d.name, mode);
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

std::vector<Fig3Row>
figure3(Runner &runner)
{
    std::vector<Fig3Row> rows;
    for (const auto &w : workloads::all()) {
        if (w.datasets.size() < 2)
            continue;
        // Precompute per-dataset profiles once.
        std::vector<ProfileDb> profiles;
        for (const auto &d : w.datasets)
            profiles.push_back(profileOf(runner, w.name, d.name));
        for (size_t t = 0; t < w.datasets.size(); ++t) {
            const vm::RunStats &target = runner.stats(w.name,
                                                      w.datasets[t].name);
            double self = selfPredictedPerBreak(runner, w.name,
                                                w.datasets[t].name);
            Fig3Row row;
            row.program = w.name;
            row.dataset = w.datasets[t].name;
            row.fortran_like = w.fortran_like;
            row.best_pct = -1.0;
            row.worst_pct = 1e300;
            for (size_t p = 0; p < w.datasets.size(); ++p) {
                if (p == t)
                    continue;
                ProfilePredictor predictor(profiles[p]);
                double per_break =
                    metrics::breaksWithPredictor(target, predictor)
                        .instructionsPerBreak();
                double pct = self > 0.0 ? 100.0 * per_break / self : 100.0;
                if (pct > row.best_pct) {
                    row.best_pct = pct;
                    row.best_predictor = w.datasets[p].name;
                }
                if (pct < row.worst_pct) {
                    row.worst_pct = pct;
                    row.worst_predictor = w.datasets[p].name;
                }
            }
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

std::vector<Table1Row>
table1()
{
    // Dead-code measurement needs a second compilation per program, so it
    // bypasses the Runner's shared image and builds both pipelines here.
    std::vector<Table1Row> rows;
    Runner plain(Runner::experimentOptions());
    CompileOptions dce_options = Runner::experimentOptions();
    dce_options.eliminate_dead_code = true;
    Runner dce(dce_options);
    for (const auto &w : workloads::all()) {
        const std::string &primary = w.datasets.front().name;
        Table1Row row;
        row.program = w.name;
        row.dead_fraction = metrics::deadCodeFraction(
            plain.stats(w.name, primary).instructions,
            dce.stats(w.name, primary).instructions);
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<TakenRow>
percentTaken(Runner &runner)
{
    std::vector<TakenRow> rows;
    for (const auto &w : workloads::all()) {
        for (const auto &d : w.datasets) {
            rows.push_back({w.name, d.name,
                            runner.stats(w.name, d.name).percentTaken()});
        }
    }
    return rows;
}

std::vector<HeuristicRow>
heuristics(Runner &runner)
{
    using predict::Heuristic;
    using predict::HeuristicPredictor;
    std::vector<HeuristicRow> rows;
    for (const auto &w : workloads::all()) {
        const isa::Program &prog = runner.program(w.name);
        HeuristicPredictor backward(prog, Heuristic::kBackwardTaken);
        HeuristicPredictor opcode(prog, Heuristic::kOpcodeRules);
        HeuristicPredictor taken(prog, Heuristic::kAlwaysTaken);
        for (const auto &d : w.datasets) {
            const vm::RunStats &stats = runner.stats(w.name, d.name);
            HeuristicRow row;
            row.program = w.name;
            row.dataset = d.name;
            row.self_per_break =
                selfPredictedPerBreak(runner, w.name, d.name);
            row.others_per_break = othersPredictedPerBreak(
                runner, w.name, d.name, MergeMode::kScaled);
            row.backward_taken_per_break =
                metrics::breaksWithPredictor(stats, backward)
                    .instructionsPerBreak();
            row.opcode_rules_per_break =
                metrics::breaksWithPredictor(stats, opcode)
                    .instructionsPerBreak();
            row.always_taken_per_break =
                metrics::breaksWithPredictor(stats, taken)
                    .instructionsPerBreak();
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

std::vector<CoverageRow>
coverageStudy(Runner &runner)
{
    std::vector<CoverageRow> rows;
    for (const auto &w : workloads::all()) {
        if (w.datasets.size() < 2)
            continue;
        std::vector<ProfileDb> profiles;
        for (const auto &d : w.datasets)
            profiles.push_back(profileOf(runner, w.name, d.name));
        for (size_t t = 0; t < w.datasets.size(); ++t) {
            const vm::RunStats &target =
                runner.stats(w.name, w.datasets[t].name);
            double self_bound = selfPredictedPerBreak(
                runner, w.name, w.datasets[t].name);
            for (size_t p = 0; p < w.datasets.size(); ++p) {
                if (p == t)
                    continue;
                CoverageRow row;
                row.program = w.name;
                row.target = w.datasets[t].name;
                row.predictor = w.datasets[p].name;

                int64_t total = 0, unseen = 0, disagree = 0;
                for (size_t site = 0; site < target.branches.size();
                     ++site) {
                    int64_t executed = target.branches[site].executed;
                    if (executed == 0)
                        continue;
                    total += executed;
                    const auto &pw = profiles[p].site(site);
                    if (pw.executed <= 0.0) {
                        unseen += executed;
                        continue;
                    }
                    bool predictor_taken = pw.taken * 2.0 > pw.executed;
                    bool target_taken = 2 * target.branches[site].taken >
                                        executed;
                    if (predictor_taken != target_taken)
                        disagree += executed;
                }
                if (total > 0) {
                    row.coverage_gap_pct =
                        100.0 * static_cast<double>(unseen) /
                        static_cast<double>(total);
                    row.disagreement_pct =
                        100.0 * static_cast<double>(disagree) /
                        static_cast<double>(total);
                }
                ProfilePredictor cross(profiles[p]);
                double per_break =
                    metrics::breaksWithPredictor(target, cross)
                        .instructionsPerBreak();
                row.quality_pct = self_bound > 0.0
                                      ? 100.0 * per_break / self_bound
                                      : 100.0;
                rows.push_back(std::move(row));
            }
        }
    }
    return rows;
}

std::vector<CombineRow>
combineAblation(Runner &runner)
{
    std::vector<CombineRow> rows;
    for (const auto &w : workloads::all()) {
        if (w.datasets.size() < 3)
            continue; // combination is interesting with >= 2 others
        for (const auto &d : w.datasets) {
            CombineRow row;
            row.program = w.name;
            row.dataset = d.name;
            row.scaled_per_break = othersPredictedPerBreak(
                runner, w.name, d.name, MergeMode::kScaled);
            row.unscaled_per_break = othersPredictedPerBreak(
                runner, w.name, d.name, MergeMode::kUnscaled);
            row.polling_per_break = othersPredictedPerBreak(
                runner, w.name, d.name, MergeMode::kPolling);
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

} // namespace ifprob::harness

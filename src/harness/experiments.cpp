#include "harness/experiments.h"

#include "compiler/pipeline.h"
#include "exec/graph.h"
#include "exec/pool.h"
#include "metrics/breaks.h"
#include "predict/profile_predictor.h"
#include "vm/machine.h"

namespace ifprob::harness {

using metrics::BreakConfig;
using predict::ProfilePredictor;
using profile::MergeMode;
using profile::ProfileDb;

namespace {

/** One (workload, dataset) cell of the experiment matrix, flattened so
 *  the exec pool can fan out over it. */
struct Cell
{
    const workloads::Workload *workload = nullptr;
    size_t dataset = 0; ///< index into workload->datasets
};

std::vector<Cell>
matrixCells()
{
    std::vector<Cell> cells;
    for (const auto &w : workloads::all()) {
        for (size_t d = 0; d < w.datasets.size(); ++d)
            cells.push_back(Cell{&w, d});
    }
    return cells;
}

} // namespace

profile::ProfileDb
profileOf(Runner &runner, const std::string &workload,
          const std::string &dataset)
{
    const isa::Program &prog = runner.program(workload);
    return ProfileDb(workload, prog.fingerprint(),
                     runner.stats(workload, dataset));
}

double
selfPredictedPerBreak(Runner &runner, const std::string &workload,
                      const std::string &dataset)
{
    const vm::RunStats &stats = runner.stats(workload, dataset);
    ProfilePredictor self(profileOf(runner, workload, dataset));
    return metrics::breaksWithPredictor(stats, self).instructionsPerBreak();
}

double
othersPredictedPerBreak(Runner &runner, const std::string &workload,
                        const std::string &dataset, MergeMode mode)
{
    std::vector<ProfileDb> others;
    for (const std::string &name : runner.datasetNames(workload)) {
        if (name != dataset)
            others.push_back(profileOf(runner, workload, name));
    }
    if (others.empty())
        return selfPredictedPerBreak(runner, workload, dataset);
    ProfileDb merged = ProfileDb::merge(others, mode);
    ProfilePredictor predictor(merged);
    const vm::RunStats &stats = runner.stats(workload, dataset);
    return metrics::breaksWithPredictor(stats, predictor)
        .instructionsPerBreak();
}

std::vector<Fig1Row>
figure1(Runner &runner)
{
    auto cells = matrixCells();
    std::vector<Fig1Row> rows(cells.size());
    exec::parallelFor(exec::globalPool(), cells.size(), [&](size_t i) {
        const workloads::Workload &w = *cells[i].workload;
        const workloads::Dataset &d = w.datasets[cells[i].dataset];
        const vm::RunStats &stats = runner.stats(w.name, d.name);
        Fig1Row &row = rows[i];
        row.program = w.name;
        row.dataset = d.name;
        row.fortran_like = w.fortran_like;
        BreakConfig no_calls{.count_calls = false};
        BreakConfig with_calls{.count_calls = true};
        row.per_break = metrics::breaksWithoutPrediction(stats, no_calls)
                            .instructionsPerBreak();
        row.per_break_with_calls =
            metrics::breaksWithoutPrediction(stats, with_calls)
                .instructionsPerBreak();
    });
    return rows;
}

std::vector<Fig2Row>
figure2(Runner &runner, MergeMode mode)
{
    // The cross-dataset predictor of row (w, d) needs every dataset of
    // w, so the graph runs one stats node per matrix cell and releases
    // each workload's row nodes as soon as that workload's cells are
    // done — rows of one workload overlap stats of the next.
    auto cells = matrixCells();
    std::vector<Fig2Row> rows(cells.size());
    exec::Graph graph;
    size_t cell = 0;
    for (const auto &w : workloads::all()) {
        std::vector<exec::Graph::NodeId> stat_nodes;
        size_t first = cell;
        for (const auto &d : w.datasets) {
            stat_nodes.push_back(graph.add(
                "stats:" + w.name + "/" + d.name,
                [&runner, &w, &d] { runner.stats(w.name, d.name); }));
            ++cell;
        }
        for (size_t i = first; i < cell; ++i) {
            const workloads::Dataset &d = w.datasets[cells[i].dataset];
            graph.add(
                "fig2:" + w.name + "/" + d.name,
                [&runner, &rows, &w, &d, i, mode] {
                    Fig2Row &row = rows[i];
                    row.program = w.name;
                    row.dataset = d.name;
                    row.fortran_like = w.fortran_like;
                    row.num_datasets = static_cast<int>(w.datasets.size());
                    row.self_per_break =
                        selfPredictedPerBreak(runner, w.name, d.name);
                    row.others_per_break = othersPredictedPerBreak(
                        runner, w.name, d.name, mode);
                },
                stat_nodes);
        }
    }
    graph.run(exec::globalPool());
    return rows;
}

std::vector<Fig3Row>
figure3(Runner &runner)
{
    // Three-stage graph per workload: dataset stats -> one shared
    // profile-build node -> one node per target row (each target scans
    // every other dataset's profile).
    const auto &all = workloads::all();
    std::vector<std::vector<ProfileDb>> profiles(all.size());
    std::vector<Fig3Row> rows;
    std::vector<std::pair<size_t, size_t>> row_keys; ///< (workload, target)
    for (size_t wi = 0; wi < all.size(); ++wi) {
        if (all[wi].datasets.size() < 2)
            continue;
        for (size_t t = 0; t < all[wi].datasets.size(); ++t)
            row_keys.emplace_back(wi, t);
    }
    rows.resize(row_keys.size());

    exec::Graph graph;
    size_t row_index = 0;
    for (size_t wi = 0; wi < all.size(); ++wi) {
        const workloads::Workload &w = all[wi];
        if (w.datasets.size() < 2)
            continue;
        std::vector<exec::Graph::NodeId> stat_nodes;
        for (const auto &d : w.datasets) {
            stat_nodes.push_back(graph.add(
                "stats:" + w.name + "/" + d.name,
                [&runner, &w, &d] { runner.stats(w.name, d.name); }));
        }
        exec::Graph::NodeId profile_node = graph.add(
            "profiles:" + w.name,
            [&runner, &profiles, &w, wi] {
                std::vector<ProfileDb> built;
                for (const auto &d : w.datasets)
                    built.push_back(profileOf(runner, w.name, d.name));
                profiles[wi] = std::move(built);
            },
            stat_nodes);
        for (size_t t = 0; t < w.datasets.size(); ++t) {
            graph.add(
                "fig3:" + w.name + "/" + w.datasets[t].name,
                [&runner, &profiles, &rows, &w, wi, t, row_index] {
                    const vm::RunStats &target =
                        runner.stats(w.name, w.datasets[t].name);
                    double self = selfPredictedPerBreak(
                        runner, w.name, w.datasets[t].name);
                    Fig3Row &row = rows[row_index];
                    row.program = w.name;
                    row.dataset = w.datasets[t].name;
                    row.fortran_like = w.fortran_like;
                    row.best_pct = -1.0;
                    row.worst_pct = 1e300;
                    for (size_t p = 0; p < w.datasets.size(); ++p) {
                        if (p == t)
                            continue;
                        ProfilePredictor predictor(profiles[wi][p]);
                        double per_break =
                            metrics::breaksWithPredictor(target, predictor)
                                .instructionsPerBreak();
                        double pct = self > 0.0
                                         ? 100.0 * per_break / self
                                         : 100.0;
                        if (pct > row.best_pct) {
                            row.best_pct = pct;
                            row.best_predictor = w.datasets[p].name;
                        }
                        if (pct < row.worst_pct) {
                            row.worst_pct = pct;
                            row.worst_predictor = w.datasets[p].name;
                        }
                    }
                },
                {profile_node});
            ++row_index;
        }
    }
    graph.run(exec::globalPool());
    return rows;
}

std::vector<Table1Row>
table1()
{
    // Dead-code measurement needs a second compilation per program, so it
    // bypasses the Runner's shared image and builds both pipelines here.
    const auto &all = workloads::all();
    std::vector<Table1Row> rows(all.size());
    Runner plain(Runner::experimentOptions());
    CompileOptions dce_options = Runner::experimentOptions();
    dce_options.eliminate_dead_code = true;
    Runner dce(dce_options);
    exec::parallelFor(exec::globalPool(), all.size(), [&](size_t i) {
        const workloads::Workload &w = all[i];
        const std::string &primary = w.datasets.front().name;
        rows[i].program = w.name;
        rows[i].dead_fraction = metrics::deadCodeFraction(
            plain.stats(w.name, primary).instructions,
            dce.stats(w.name, primary).instructions);
    });
    return rows;
}

std::vector<TakenRow>
percentTaken(Runner &runner)
{
    auto cells = matrixCells();
    std::vector<TakenRow> rows(cells.size());
    exec::parallelFor(exec::globalPool(), cells.size(), [&](size_t i) {
        const workloads::Workload &w = *cells[i].workload;
        const workloads::Dataset &d = w.datasets[cells[i].dataset];
        rows[i] = {w.name, d.name,
                   runner.stats(w.name, d.name).percentTaken()};
    });
    return rows;
}

std::vector<HeuristicRow>
heuristics(Runner &runner)
{
    using predict::Heuristic;
    using predict::HeuristicPredictor;
    const auto &all = workloads::all();
    std::vector<std::vector<HeuristicRow>> per_workload(all.size());
    exec::parallelFor(exec::globalPool(), all.size(), [&](size_t i) {
        const workloads::Workload &w = all[i];
        const isa::Program &prog = runner.program(w.name);
        HeuristicPredictor backward(prog, Heuristic::kBackwardTaken);
        HeuristicPredictor opcode(prog, Heuristic::kOpcodeRules);
        HeuristicPredictor taken(prog, Heuristic::kAlwaysTaken);
        for (const auto &d : w.datasets) {
            const vm::RunStats &stats = runner.stats(w.name, d.name);
            HeuristicRow row;
            row.program = w.name;
            row.dataset = d.name;
            row.self_per_break =
                selfPredictedPerBreak(runner, w.name, d.name);
            row.others_per_break = othersPredictedPerBreak(
                runner, w.name, d.name, MergeMode::kScaled);
            row.backward_taken_per_break =
                metrics::breaksWithPredictor(stats, backward)
                    .instructionsPerBreak();
            row.opcode_rules_per_break =
                metrics::breaksWithPredictor(stats, opcode)
                    .instructionsPerBreak();
            row.always_taken_per_break =
                metrics::breaksWithPredictor(stats, taken)
                    .instructionsPerBreak();
            per_workload[i].push_back(std::move(row));
        }
    });
    std::vector<HeuristicRow> rows;
    for (auto &chunk : per_workload) {
        for (auto &row : chunk)
            rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<CoverageRow>
coverageStudy(Runner &runner)
{
    // Same three-stage shape as figure3; each target node emits the
    // (n-1) predictor rows for that target in dataset order.
    const auto &all = workloads::all();
    std::vector<std::vector<ProfileDb>> profiles(all.size());
    size_t total_rows = 0;
    for (const auto &w : all) {
        if (w.datasets.size() >= 2)
            total_rows += w.datasets.size() * (w.datasets.size() - 1);
    }
    std::vector<CoverageRow> rows(total_rows);

    exec::Graph graph;
    size_t row_base = 0;
    for (size_t wi = 0; wi < all.size(); ++wi) {
        const workloads::Workload &w = all[wi];
        if (w.datasets.size() < 2)
            continue;
        std::vector<exec::Graph::NodeId> stat_nodes;
        for (const auto &d : w.datasets) {
            stat_nodes.push_back(graph.add(
                "stats:" + w.name + "/" + d.name,
                [&runner, &w, &d] { runner.stats(w.name, d.name); }));
        }
        exec::Graph::NodeId profile_node = graph.add(
            "profiles:" + w.name,
            [&runner, &profiles, &w, wi] {
                std::vector<ProfileDb> built;
                for (const auto &d : w.datasets)
                    built.push_back(profileOf(runner, w.name, d.name));
                profiles[wi] = std::move(built);
            },
            stat_nodes);
        for (size_t t = 0; t < w.datasets.size(); ++t) {
            size_t out = row_base;
            graph.add(
                "coverage:" + w.name + "/" + w.datasets[t].name,
                [&runner, &profiles, &rows, &w, wi, t, out] {
                    const vm::RunStats &target =
                        runner.stats(w.name, w.datasets[t].name);
                    double self_bound = selfPredictedPerBreak(
                        runner, w.name, w.datasets[t].name);
                    size_t slot = out;
                    for (size_t p = 0; p < w.datasets.size(); ++p) {
                        if (p == t)
                            continue;
                        CoverageRow row;
                        row.program = w.name;
                        row.target = w.datasets[t].name;
                        row.predictor = w.datasets[p].name;

                        int64_t total = 0, unseen = 0, disagree = 0;
                        for (size_t site = 0;
                             site < target.branches.size(); ++site) {
                            int64_t executed =
                                target.branches[site].executed;
                            if (executed == 0)
                                continue;
                            total += executed;
                            const auto &pw = profiles[wi][p].site(site);
                            if (pw.executed <= 0.0) {
                                unseen += executed;
                                continue;
                            }
                            bool predictor_taken =
                                pw.taken * 2.0 > pw.executed;
                            bool target_taken =
                                2 * target.branches[site].taken > executed;
                            if (predictor_taken != target_taken)
                                disagree += executed;
                        }
                        if (total > 0) {
                            row.coverage_gap_pct =
                                100.0 * static_cast<double>(unseen) /
                                static_cast<double>(total);
                            row.disagreement_pct =
                                100.0 * static_cast<double>(disagree) /
                                static_cast<double>(total);
                        }
                        ProfilePredictor cross(profiles[wi][p]);
                        double per_break =
                            metrics::breaksWithPredictor(target, cross)
                                .instructionsPerBreak();
                        row.quality_pct =
                            self_bound > 0.0
                                ? 100.0 * per_break / self_bound
                                : 100.0;
                        rows[slot++] = std::move(row);
                    }
                },
                {profile_node});
            row_base += w.datasets.size() - 1;
        }
    }
    graph.run(exec::globalPool());
    return rows;
}

std::vector<CombineRow>
combineAblation(Runner &runner)
{
    auto &pool = exec::globalPool();
    std::vector<CombineRow> rows;
    std::vector<Cell> cells;
    for (const auto &w : workloads::all()) {
        if (w.datasets.size() < 3)
            continue; // combination is interesting with >= 2 others
        for (size_t d = 0; d < w.datasets.size(); ++d)
            cells.push_back(Cell{&w, d});
    }
    rows.resize(cells.size());

    exec::Graph graph;
    size_t cell = 0;
    while (cell < cells.size()) {
        const workloads::Workload &w = *cells[cell].workload;
        std::vector<exec::Graph::NodeId> stat_nodes;
        size_t first = cell;
        for (const auto &d : w.datasets) {
            stat_nodes.push_back(graph.add(
                "stats:" + w.name + "/" + d.name,
                [&runner, &w, &d] { runner.stats(w.name, d.name); }));
            ++cell;
        }
        for (size_t i = first; i < cell; ++i) {
            const workloads::Dataset &d = w.datasets[cells[i].dataset];
            graph.add(
                "combine:" + w.name + "/" + d.name,
                [&runner, &rows, &w, &d, i] {
                    CombineRow &row = rows[i];
                    row.program = w.name;
                    row.dataset = d.name;
                    row.scaled_per_break = othersPredictedPerBreak(
                        runner, w.name, d.name, MergeMode::kScaled);
                    row.unscaled_per_break = othersPredictedPerBreak(
                        runner, w.name, d.name, MergeMode::kUnscaled);
                    row.polling_per_break = othersPredictedPerBreak(
                        runner, w.name, d.name, MergeMode::kPolling);
                },
                stat_nodes);
        }
    }
    graph.run(pool);
    return rows;
}

} // namespace ifprob::harness

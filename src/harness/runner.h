#ifndef IFPROB_HARNESS_RUNNER_H
#define IFPROB_HARNESS_RUNNER_H

#include <map>
#include <memory>
#include <string>

#include "compiler/options.h"
#include "isa/program.h"
#include "vm/run_stats.h"
#include "workloads/workload.h"

namespace ifprob::harness {

/**
 * Compiles workloads and collects per-dataset run statistics, with an
 * on-disk cache so that the eight benchmark binaries do not re-execute
 * the full program x dataset matrix each.
 *
 * Cache entries are keyed by workload, dataset, and the compiled image's
 * fingerprint, so a compiler change silently invalidates stale entries.
 * Set the IFPROB_CACHE environment variable to relocate the cache
 * directory (default: ./.ifprob-cache); set it to "off" to disable.
 */
class Runner
{
  public:
    explicit Runner(CompileOptions options = experimentOptions());

    /**
     * The paper's experimental compiler configuration: classical
     * optimizations on, dead-code elimination off (to keep branch sites
     * stable), select lowering on.
     */
    static CompileOptions experimentOptions();

    /** Compiled image for @p workload (cached in memory). */
    const isa::Program &program(const std::string &workload);

    /** Run statistics for one workload/dataset (memory + disk cached). */
    const vm::RunStats &stats(const std::string &workload,
                              const std::string &dataset);

    /** Convenience: every dataset of @p workload, in registry order. */
    std::vector<std::string> datasetNames(const std::string &workload) const;

  private:
    std::string cachePath(const std::string &workload,
                          const std::string &dataset,
                          uint64_t fingerprint) const;

    CompileOptions options_;
    std::string cache_dir_; ///< empty = caching disabled
    std::map<std::string, isa::Program> programs_;
    std::map<std::pair<std::string, std::string>, vm::RunStats> stats_;
};

} // namespace ifprob::harness

#endif // IFPROB_HARNESS_RUNNER_H

#ifndef IFPROB_HARNESS_RUNNER_H
#define IFPROB_HARNESS_RUNNER_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/options.h"
#include "isa/program.h"
#include "vm/run_stats.h"
#include "workloads/workload.h"

namespace ifprob::harness {

/**
 * Disk-cache effectiveness counters for one Runner, mirrored into the
 * obs metrics registry (runner.cache_*). A read failure means a cache
 * file existed but did not parse; the Runner re-runs the workload and
 * records what went wrong here instead of failing (or hiding it).
 */
struct CacheStats
{
    int64_t hits = 0;
    int64_t misses = 0;          ///< no cache file (includes cache off)
    int64_t read_failures = 0;   ///< file present but unreadable/corrupt
    int64_t bytes_read = 0;
    int64_t bytes_written = 0;
    /** One "path: reason" entry per read failure, in occurrence order. */
    std::vector<std::string> failures;
};

/**
 * Compiles workloads and collects per-dataset run statistics, with an
 * on-disk cache so that the eight benchmark binaries do not re-execute
 * the full program x dataset matrix each.
 *
 * Cache entries are keyed by workload, dataset, and the compiled image's
 * fingerprint, so a compiler change silently invalidates stale entries.
 * Set the IFPROB_CACHE environment variable to relocate the cache
 * directory (default: ./.ifprob-cache); set it to "off" to disable.
 */
class Runner
{
  public:
    explicit Runner(CompileOptions options = experimentOptions());

    /**
     * The paper's experimental compiler configuration: classical
     * optimizations on, dead-code elimination off (to keep branch sites
     * stable), select lowering on.
     */
    static CompileOptions experimentOptions();

    /** Compiled image for @p workload (cached in memory). */
    const isa::Program &program(const std::string &workload);

    /** Run statistics for one workload/dataset (memory + disk cached). */
    const vm::RunStats &stats(const std::string &workload,
                              const std::string &dataset);

    /** Convenience: every dataset of @p workload, in registry order. */
    std::vector<std::string> datasetNames(const std::string &workload) const;

    /** Disk-cache effectiveness so far (hits/misses/failures/bytes). */
    const CacheStats &cacheStats() const { return cache_stats_; }

  private:
    std::string cachePath(const std::string &workload,
                          const std::string &dataset,
                          uint64_t fingerprint) const;

    CompileOptions options_;
    std::string cache_dir_; ///< empty = caching disabled
    CacheStats cache_stats_;
    std::map<std::string, isa::Program> programs_;
    /** Compile wall-clock per workload, consumed by the first run
     *  record that mentions the workload (so aggregation over records
     *  counts each compile once). */
    std::map<std::string, int64_t> pending_compile_micros_;
    std::map<std::pair<std::string, std::string>, vm::RunStats> stats_;
};

} // namespace ifprob::harness

#endif // IFPROB_HARNESS_RUNNER_H

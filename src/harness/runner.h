#ifndef IFPROB_HARNESS_RUNNER_H
#define IFPROB_HARNESS_RUNNER_H

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "compiler/options.h"
#include "isa/program.h"
#include "support/sharded_map.h"
#include "vm/run_stats.h"
#include "workloads/workload.h"

namespace ifprob::analysis {
class AnalysisCache;
}

namespace ifprob::trace {
struct Trace;
}

namespace ifprob::harness {

/**
 * Disk-cache effectiveness counters for one Runner, mirrored into the
 * obs metrics registry (runner.cache_*). A read failure means a cache
 * file existed but did not parse; the Runner re-runs the workload and
 * records what went wrong here instead of failing (or hiding it).
 */
struct CacheStats
{
    /** Detailed failure strings retained before capping (a pathological
     *  cache directory must not grow the vector unboundedly; the
     *  overflow is counted in failures_dropped and surfaced by
     *  tools/obsreport). */
    static constexpr size_t kMaxFailureDetails = 32;

    int64_t hits = 0;
    int64_t binary_hits = 0;     ///< hits served from the binary format
    int64_t text_hits = 0;       ///< hits served by the text fallback
    int64_t misses = 0;          ///< no cache file (includes cache off)
    int64_t read_failures = 0;   ///< file present but unreadable/corrupt
    int64_t bytes_read = 0;
    int64_t bytes_written = 0;
    /** Failure details dropped once kMaxFailureDetails was reached. */
    int64_t failures_dropped = 0;
    /** Trace-plane cache effectiveness (Runner::traceOf; the .trace
     *  files next to the .stats entries — see docs/trace.md). */
    int64_t trace_hits = 0;
    int64_t trace_misses = 0;         ///< no trace file (or cache off)
    int64_t trace_read_failures = 0;  ///< file present but corrupt
    int64_t trace_bytes_read = 0;
    int64_t trace_bytes_written = 0;
    /** One "path: reason" entry per read failure, in occurrence order,
     *  capped at kMaxFailureDetails entries (shared with trace-cache
     *  failures). */
    std::vector<std::string> failures;

    /** Record one failure detail, honouring the cap. */
    void noteFailure(std::string detail);
};

/**
 * Compiles workloads and collects per-dataset run statistics, with an
 * on-disk cache so that the eight benchmark binaries do not re-execute
 * the full program x dataset matrix each.
 *
 * Cache entries are keyed by workload, dataset, and the compiled image's
 * fingerprint, so a compiler change silently invalidates stale entries.
 * Set the IFPROB_CACHE environment variable to relocate the cache
 * directory (default: ./.ifprob-cache); set it to "off" to disable.
 *
 * Thread-safety contract (see docs/parallelism.md): program() and
 * stats() may be called from any number of threads concurrently. Each
 * workload is compiled exactly once — the first caller compiles while
 * later callers wait on a shared future — and each (workload, dataset)
 * pair executes exactly once, guarded by a per-pair std::call_once
 * behind sharded mutexes. Returned references remain valid for the
 * Runner's lifetime. Disk-cache writes go to a temp file and are
 * rename()d into place, so concurrent (or killed) benches never
 * observe a torn .stats file.
 */
class Runner
{
  public:
    explicit Runner(CompileOptions options = experimentOptions());
    ~Runner();

    /**
     * The paper's experimental compiler configuration: classical
     * optimizations on, dead-code elimination off (to keep branch sites
     * stable), select lowering on.
     */
    static CompileOptions experimentOptions();

    /** Compiled image for @p workload (cached in memory; compiled by
     *  exactly one thread, concurrent callers wait). */
    const isa::Program &program(const std::string &workload);

    /** Run statistics for one workload/dataset (memory + disk cached;
     *  executed by exactly one thread, concurrent callers wait). */
    const vm::RunStats &stats(const std::string &workload,
                              const std::string &dataset);

    /** Convenience: every dataset of @p workload, in registry order. */
    std::vector<std::string> datasetNames(const std::string &workload) const;

    /** Snapshot of disk-cache effectiveness so far (hits/misses/
     *  failures/bytes). A copy: safe while other threads keep running. */
    CacheStats cacheStats() const;

    /**
     * The recorded branch-event trace of one workload/dataset run (see
     * docs/trace.md): executed and recorded by exactly one thread via
     * per-pair std::call_once behind sharded mutexes, memory + disk
     * cached (atomic temp+rename writes, corrupt entries fall back to
     * re-recording), replayable through any number of BranchObservers
     * with trace::replay without touching the VM. The returned
     * reference stays valid for the Runner's lifetime (or until
     * resetTraces()).
     */
    const trace::Trace &traceOf(const std::string &workload,
                                const std::string &dataset);

    /**
     * Same, for a variant image of @p workload (e.g. a re-laid-out
     * program): keyed — in memory and on disk — by @p variant's
     * fingerprint, so traces of different layouts of one workload
     * coexist. @p variant must preserve the workload's observable
     * behaviour on @p dataset's input and must outlive the call.
     */
    const trace::Trace &traceOf(const std::string &workload,
                                const std::string &dataset,
                                const isa::Program &variant);

    /**
     * Drop every memoized trace (bench hook for measuring cold/warm
     * trace-plane behaviour; the disk cache is untouched). Invalidates
     * references previously returned by traceOf(); callers must not
     * race this with trace use.
     */
    void resetTraces();

    /**
     * The Runner's analysis-plane memoization layer (profiles, SoA
     * counters, leave-one-out predictors; see docs/analysis.md).
     * Created on first use; thread-safe like stats()/program().
     */
    analysis::AnalysisCache &analysis();

    /**
     * Drop every memoized analysis artifact (bench hook for measuring
     * cold-cache analysis). Invalidates references previously returned
     * by analysis(); callers must not race this with analysis use.
     */
    void resetAnalysis();

  private:
    /** One workload's compile-once slot. The first thread to claim the
     *  slot compiles and fulfils the promise; everyone else waits on
     *  the shared future (which also propagates compile errors). */
    struct CompileSlot
    {
        std::promise<void> promise;
        std::shared_future<void> ready;
        isa::Program program;
        int64_t compile_micros = 0;
        /** Compile wall-clock is consumed by the first run record that
         *  mentions the workload, so aggregation over records counts
         *  each compile once. */
        std::atomic<bool> micros_claimed{false};
    };

    /** One (workload, dataset) run-once slot. */
    struct StatsSlot
    {
        std::once_flag once;
        vm::RunStats stats;
    };

    /** One (workload, dataset, fingerprint) record-once trace slot.
     *  The Trace lives behind a shared_ptr (incomplete type here). */
    struct TraceSlot
    {
        std::once_flag once;
        std::shared_ptr<trace::Trace> trace;
    };

    using StatsKey = std::pair<std::string, std::string>;
    using TraceKey = std::tuple<std::string, std::string, uint64_t>;

    struct StatsKeyHash
    {
        size_t
        operator()(const StatsKey &key) const
        {
            return std::hash<std::string>{}(key.first) * 31 +
                   std::hash<std::string>{}(key.second);
        }
    };

    struct TraceKeyHash
    {
        size_t
        operator()(const TraceKey &key) const
        {
            return std::hash<std::string>{}(std::get<0>(key)) * 31 +
                   std::hash<std::string>{}(std::get<1>(key)) * 7 +
                   std::hash<uint64_t>{}(std::get<2>(key));
        }
    };

    std::shared_ptr<CompileSlot> compileSlot(const std::string &workload);
    std::string cachePath(const std::string &workload,
                          const std::string &dataset,
                          uint64_t fingerprint) const;
    std::string tracePath(const std::string &workload,
                          const std::string &dataset,
                          uint64_t fingerprint) const;
    void computeStats(StatsSlot &slot, const std::string &workload,
                      const std::string &dataset);
    void computeTrace(TraceSlot &slot, const std::string &workload,
                      const std::string &dataset,
                      const isa::Program &program);

    CompileOptions options_;
    std::string cache_dir_; ///< empty = caching disabled

    mutable std::mutex cache_stats_mu_;
    CacheStats cache_stats_;

    mutable std::mutex programs_mu_;
    std::map<std::string, std::shared_ptr<CompileSlot>> programs_;

    /** Run-once and record-once memo tables, behind 16 sharded mutexes
     *  each (the ShardedSlotMap idiom shared with ingest::ProfileStore). */
    ShardedSlotMap<StatsKey, StatsSlot, StatsKeyHash> stats_slots_;
    ShardedSlotMap<TraceKey, TraceSlot, TraceKeyHash> trace_slots_;

    std::mutex analysis_mu_;
    std::unique_ptr<analysis::AnalysisCache> analysis_;
};

} // namespace ifprob::harness

#endif // IFPROB_HARNESS_RUNNER_H

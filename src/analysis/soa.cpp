#include "analysis/soa.h"

#include <algorithm>

#include "obs/metrics.h"

namespace ifprob::analysis {

namespace {

/** Looked up once; hot kernels then pay one relaxed atomic add. */
void
countKernelInvocation()
{
    static obs::Counter &c = obs::counter("analysis.kernel_invocations");
    c.add(1);
}

} // namespace

SiteCounts
SiteCounts::fromStats(const vm::RunStats &stats)
{
    SiteCounts out;
    out.executed.resize(stats.branches.size());
    out.taken.resize(stats.branches.size());
    for (size_t i = 0; i < stats.branches.size(); ++i) {
        out.executed[i] = stats.branches[i].executed;
        out.taken[i] = stats.branches[i].taken;
    }
    return out;
}

void
SiteCountObserver::onBatch(const vm::EventBlock &block)
{
    const auto limit = static_cast<uint32_t>(counts_.size());
    if (limit == 0)
        return; // every site is out of range; slot 0 below needs to exist
    // Two interleaved banks of packed (executed << 32 | taken)
    // accumulators: one read-modify-write per event instead of two, and
    // consecutive events land in different banks so a site executing in
    // a tight loop doesn't serialize on store-to-load forwarding of its
    // own counter. A block holds at most kCapacity (< 2^32) events, so
    // the packed taken field cannot carry into executed before the
    // per-block unpack below.
    uint64_t *bank0 = packed_.data();
    uint64_t *bank1 = packed_.data() + counts_.size();
    const int n = block.size;
    int i = 0;
    if (block.branch_count == n &&
        static_cast<uint32_t>(block.max_site) < limit) {
        // Break-free block whose dictionary bound fits the counter
        // arrays: no event can be masked, so the range check (and its
        // cmov) drops out of the loop entirely.
        for (; i + 2 <= n; i += 2) {
            bank0[block.site_id[i]] +=
                (uint64_t{1} << 32) | block.taken[i];
            bank1[block.site_id[i + 1]] +=
                (uint64_t{1} << 32) | block.taken[i + 1];
        }
        if (i < n)
            bank0[block.site_id[i]] +=
                (uint64_t{1} << 32) | block.taken[i];
        i = n;
    }
    for (; i + 2 <= n; i += 2) {
        // -1 break markers wrap to UINT32_MAX, so one unsigned compare
        // masks both breaks and out-of-range sites; the masked events
        // add 0 to slot 0 rather than branching.
        const auto sa = static_cast<uint32_t>(block.site_id[i]);
        const auto sb = static_cast<uint32_t>(block.site_id[i + 1]);
        const uint64_t oka = sa < limit;
        const uint64_t okb = sb < limit;
        bank0[oka ? sa : 0] +=
            (oka << 32) | (oka & block.taken[i]);
        bank1[okb ? sb : 0] +=
            (okb << 32) | (okb & block.taken[i + 1]);
    }
    if (i < n) {
        const auto s = static_cast<uint32_t>(block.site_id[i]);
        const uint64_t ok = s < limit;
        bank0[ok ? s : 0] += (ok << 32) | (ok & block.taken[i]);
    }
    int64_t *executed = counts_.executed.data();
    int64_t *taken = counts_.taken.data();
    const size_t sites = counts_.size();
    for (size_t s = 0; s < sites; ++s) {
        const uint64_t p = bank0[s] + bank1[s];
        bank0[s] = 0;
        bank1[s] = 0;
        executed[s] += static_cast<int64_t>(p >> 32);
        taken[s] += static_cast<int64_t>(p & 0xffffffffull);
    }
}

int64_t
mispredictsLowered(const SiteCounts &target, std::span<const uint8_t> dir)
{
    countKernelInvocation();
    const int64_t *executed = target.executed.data();
    const int64_t *taken = target.taken.data();
    const size_t n = target.size();
    int64_t mis = 0;
    // dir == 1 mispredicts the not-taken executions (e - t), dir == 0
    // the taken ones (t); branch-free form so the loop vectorizes.
    // Sites with executed == 0 contribute 0 either way.
    for (size_t i = 0; i < n; ++i) {
        const int64_t e = executed[i];
        const int64_t t = taken[i];
        mis += t + static_cast<int64_t>(dir[i]) * (e - 2 * t);
    }
    return mis;
}

PairTallies
pairKernel(const SiteCounts &target, std::span<const uint8_t> predictor_dir,
           std::span<const uint8_t> predictor_seen)
{
    countKernelInvocation();
    const int64_t *executed = target.executed.data();
    const int64_t *taken = target.taken.data();
    const size_t n = target.size();
    PairTallies out;
    for (size_t i = 0; i < n; ++i) {
        const int64_t e = executed[i];
        const int64_t t = taken[i];
        const int64_t seen = predictor_seen[i];
        const int64_t pd = predictor_dir[i];
        const int64_t td = 2 * t > e ? 1 : 0;
        out.total += e;
        out.unseen += (1 - seen) * e;
        out.disagree += seen * (pd ^ td) * e;
        out.mispredicted += t + pd * (e - 2 * t);
    }
    return out;
}

int64_t
selfMispredicts(const SiteCounts &counts)
{
    const int64_t *executed = counts.executed.data();
    const int64_t *taken = counts.taken.data();
    const size_t n = counts.size();
    int64_t mis = 0;
    for (size_t i = 0; i < n; ++i)
        mis += std::min(taken[i], executed[i] - taken[i]);
    return mis;
}

} // namespace ifprob::analysis

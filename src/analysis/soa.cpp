#include "analysis/soa.h"

#include <algorithm>

#include "obs/metrics.h"

namespace ifprob::analysis {

namespace {

/** Looked up once; hot kernels then pay one relaxed atomic add. */
void
countKernelInvocation()
{
    static obs::Counter &c = obs::counter("analysis.kernel_invocations");
    c.add(1);
}

} // namespace

SiteCounts
SiteCounts::fromStats(const vm::RunStats &stats)
{
    SiteCounts out;
    out.executed.resize(stats.branches.size());
    out.taken.resize(stats.branches.size());
    for (size_t i = 0; i < stats.branches.size(); ++i) {
        out.executed[i] = stats.branches[i].executed;
        out.taken[i] = stats.branches[i].taken;
    }
    return out;
}

int64_t
mispredictsLowered(const SiteCounts &target, std::span<const uint8_t> dir)
{
    countKernelInvocation();
    const int64_t *executed = target.executed.data();
    const int64_t *taken = target.taken.data();
    const size_t n = target.size();
    int64_t mis = 0;
    // dir == 1 mispredicts the not-taken executions (e - t), dir == 0
    // the taken ones (t); branch-free form so the loop vectorizes.
    // Sites with executed == 0 contribute 0 either way.
    for (size_t i = 0; i < n; ++i) {
        const int64_t e = executed[i];
        const int64_t t = taken[i];
        mis += t + static_cast<int64_t>(dir[i]) * (e - 2 * t);
    }
    return mis;
}

PairTallies
pairKernel(const SiteCounts &target, std::span<const uint8_t> predictor_dir,
           std::span<const uint8_t> predictor_seen)
{
    countKernelInvocation();
    const int64_t *executed = target.executed.data();
    const int64_t *taken = target.taken.data();
    const size_t n = target.size();
    PairTallies out;
    for (size_t i = 0; i < n; ++i) {
        const int64_t e = executed[i];
        const int64_t t = taken[i];
        const int64_t seen = predictor_seen[i];
        const int64_t pd = predictor_dir[i];
        const int64_t td = 2 * t > e ? 1 : 0;
        out.total += e;
        out.unseen += (1 - seen) * e;
        out.disagree += seen * (pd ^ td) * e;
        out.mispredicted += t + pd * (e - 2 * t);
    }
    return out;
}

int64_t
selfMispredicts(const SiteCounts &counts)
{
    const int64_t *executed = counts.executed.data();
    const int64_t *taken = counts.taken.data();
    const size_t n = counts.size();
    int64_t mis = 0;
    for (size_t i = 0; i < n; ++i)
        mis += std::min(taken[i], executed[i] - taken[i]);
    return mis;
}

} // namespace ifprob::analysis

#ifndef IFPROB_ANALYSIS_SOA_H
#define IFPROB_ANALYSIS_SOA_H

#include <cstdint>
#include <span>
#include <vector>

#include "vm/observer.h"
#include "vm/run_stats.h"

namespace ifprob::analysis {

/**
 * One run's per-site branch counters in structure-of-arrays form, the
 * layout the prediction kernels iterate. The AoS `RunStats::branches`
 * vector is what the VM increments during execution; the analysis plane
 * flattens it once per (workload, dataset) so every subsequent predictor
 * evaluation is a single tight loop over two contiguous int64 arrays —
 * no virtual dispatch, no struct striding, auto-vectorizable.
 */
struct SiteCounts
{
    std::vector<int64_t> executed;
    std::vector<int64_t> taken;

    size_t size() const { return executed.size(); }

    static SiteCounts fromStats(const vm::RunStats &stats);
};

/**
 * Replay-side profile counter: rebuilds a run's per-site SiteCounts
 * from its control-flow event stream instead of from embedded RunStats.
 * This is the recorder-side consumer the batched replay path is tuned
 * for — the counting-observer path micro_trace holds to the >= 10x
 * hot-vs-live bar — so onBatch is fully branch-free: break events
 * (site_id -1) and out-of-range sites fold into the same masked no-op
 * instead of taking a per-event branch.
 *
 * Sites at or beyond @p num_sites are ignored (the FingerprintBuilder
 * convention); pass program.branch_sites.size() to cover them all.
 */
class SiteCountObserver final : public vm::BranchObserver
{
  public:
    explicit SiteCountObserver(size_t num_sites)
    {
        counts_.executed.assign(num_sites, 0);
        counts_.taken.assign(num_sites, 0);
        packed_.assign(num_sites * 2, 0);
    }

    void
    onBranch(int site_id, bool taken, int64_t /*instructions*/) override
    {
        if (static_cast<uint32_t>(site_id) >=
            static_cast<uint32_t>(counts_.size()))
            return;
        ++counts_.executed[static_cast<uint32_t>(site_id)];
        counts_.taken[static_cast<uint32_t>(site_id)] += taken ? 1 : 0;
    }

    void onBatch(const vm::EventBlock &block) override;

    /** Counting ignores instruction counts; the batched decoder may
     *  skip materializing them. */
    bool wantsInstructionCounts() const override { return false; }

    const SiteCounts &counts() const { return counts_; }

  private:
    SiteCounts counts_;
    /// onBatch scratch: two banks of (executed << 32 | taken) packed
    /// accumulators, zeroed again before each onBatch returns.
    std::vector<uint64_t> packed_;
};

/**
 * Everything the coverage study needs for one (predictor, target) pair,
 * produced by a single pass over the target's counters:
 *
 *  - total:        target's dynamic branches at sites it executed
 *  - unseen:       ... at sites the predictor dataset never executed
 *  - disagree:     ... at sites both datasets executed but whose
 *                  majority directions differ
 *  - mispredicted: mispredicts of the predictor's lowered directions
 *                  against the target (identical integer arithmetic to
 *                  predict::evaluate over a ProfilePredictor)
 */
struct PairTallies
{
    int64_t total = 0;
    int64_t unseen = 0;
    int64_t disagree = 0;
    int64_t mispredicted = 0;
};

/**
 * SoA mispredict kernel: the number of target branches a predictor with
 * per-site directions @p dir (1 = taken, 0 = not taken, one byte per
 * site) gets wrong. Exactly equal to
 * `predict::evaluate(stats, predictor).mispredicted` for any predictor
 * whose predictTaken(i) == dir[i]: both reduce to integer sums of
 * min/max terms, so the result is bit-identical regardless of order.
 */
int64_t mispredictsLowered(const SiteCounts &target,
                           std::span<const uint8_t> dir);

/**
 * Fused coverage + disagreement + mispredict kernel for one
 * (predictor, target) pair. @p predictor_seen marks sites the predictor
 * dataset executed; @p predictor_dir must be 0 at unseen sites (the
 * ProfilePredictor's not-taken default).
 */
PairTallies pairKernel(const SiteCounts &target,
                       std::span<const uint8_t> predictor_dir,
                       std::span<const uint8_t> predictor_seen);

/** Best-possible static mispredicts: sum over sites of
 *  min(taken, executed - taken), the self-prediction bound. */
int64_t selfMispredicts(const SiteCounts &counts);

} // namespace ifprob::analysis

#endif // IFPROB_ANALYSIS_SOA_H

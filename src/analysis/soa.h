#ifndef IFPROB_ANALYSIS_SOA_H
#define IFPROB_ANALYSIS_SOA_H

#include <cstdint>
#include <span>
#include <vector>

#include "vm/run_stats.h"

namespace ifprob::analysis {

/**
 * One run's per-site branch counters in structure-of-arrays form, the
 * layout the prediction kernels iterate. The AoS `RunStats::branches`
 * vector is what the VM increments during execution; the analysis plane
 * flattens it once per (workload, dataset) so every subsequent predictor
 * evaluation is a single tight loop over two contiguous int64 arrays —
 * no virtual dispatch, no struct striding, auto-vectorizable.
 */
struct SiteCounts
{
    std::vector<int64_t> executed;
    std::vector<int64_t> taken;

    size_t size() const { return executed.size(); }

    static SiteCounts fromStats(const vm::RunStats &stats);
};

/**
 * Everything the coverage study needs for one (predictor, target) pair,
 * produced by a single pass over the target's counters:
 *
 *  - total:        target's dynamic branches at sites it executed
 *  - unseen:       ... at sites the predictor dataset never executed
 *  - disagree:     ... at sites both datasets executed but whose
 *                  majority directions differ
 *  - mispredicted: mispredicts of the predictor's lowered directions
 *                  against the target (identical integer arithmetic to
 *                  predict::evaluate over a ProfilePredictor)
 */
struct PairTallies
{
    int64_t total = 0;
    int64_t unseen = 0;
    int64_t disagree = 0;
    int64_t mispredicted = 0;
};

/**
 * SoA mispredict kernel: the number of target branches a predictor with
 * per-site directions @p dir (1 = taken, 0 = not taken, one byte per
 * site) gets wrong. Exactly equal to
 * `predict::evaluate(stats, predictor).mispredicted` for any predictor
 * whose predictTaken(i) == dir[i]: both reduce to integer sums of
 * min/max terms, so the result is bit-identical regardless of order.
 */
int64_t mispredictsLowered(const SiteCounts &target,
                           std::span<const uint8_t> dir);

/**
 * Fused coverage + disagreement + mispredict kernel for one
 * (predictor, target) pair. @p predictor_seen marks sites the predictor
 * dataset executed; @p predictor_dir must be 0 at unseen sites (the
 * ProfilePredictor's not-taken default).
 */
PairTallies pairKernel(const SiteCounts &target,
                       std::span<const uint8_t> predictor_dir,
                       std::span<const uint8_t> predictor_seen);

/** Best-possible static mispredicts: sum over sites of
 *  min(taken, executed - taken), the self-prediction bound. */
int64_t selfMispredicts(const SiteCounts &counts);

} // namespace ifprob::analysis

#endif // IFPROB_ANALYSIS_SOA_H

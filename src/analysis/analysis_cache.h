#ifndef IFPROB_ANALYSIS_ANALYSIS_CACHE_H
#define IFPROB_ANALYSIS_ANALYSIS_CACHE_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/loo.h"
#include "analysis/soa.h"
#include "harness/runner.h"
#include "profile/profile_db.h"

namespace ifprob::analysis {

/**
 * Fingerprint-keyed, thread-safe memoization layer for the analysis
 * plane, sitting on top of harness::Runner the same way the Runner sits
 * on top of the VM: the Runner guarantees each (workload, dataset) runs
 * once, the AnalysisCache guarantees each *derived* artifact — profile
 * database, SoA counter arrays, lowered predictor directions,
 * leave-one-out merged predictors, self-prediction bounds — is
 * materialized once and shared by reference.
 *
 * Concurrency contract mirrors the Runner's: every accessor may be
 * called from any number of threads; the first caller materializes
 * under a per-workload std::call_once while the rest wait, and returned
 * references stay valid for the cache's lifetime. Experiment code
 * reaches the per-Runner instance through Runner::analysis().
 *
 * Metrics (see docs/analysis.md): analysis.workloads_materialized,
 * analysis.profile_builds, analysis.loo_requests, analysis.loo_builds,
 * analysis.exact_refolds, analysis.kernel_invocations.
 */
class AnalysisCache
{
  public:
    explicit AnalysisCache(harness::Runner &runner) : runner_(runner) {}

    AnalysisCache(const AnalysisCache &) = delete;
    AnalysisCache &operator=(const AnalysisCache &) = delete;

    harness::Runner &runner() const { return runner_; }

    /** Everything derived from one workload's per-dataset runs,
     *  materialized together (dataset order == registry order). */
    struct WorkloadProfiles
    {
        uint64_t fingerprint = 0;
        std::vector<std::string> dataset_names;
        /** Stable references into the Runner's per-dataset stats. */
        std::vector<const vm::RunStats *> stats;
        std::vector<profile::ProfileDb> profiles;
        /** SoA mirror of each dataset's branch counters. */
        std::vector<SiteCounts> counts;
        /** ProfilePredictor directions of each dataset's own profile
         *  (unseen sites 0 = not taken). */
        std::vector<std::vector<uint8_t>> directions;
        /** Sites each dataset executed at least once. */
        std::vector<std::vector<uint8_t>> seen;
        /** Memoized self-prediction bound (instructions per break with
         *  the default BreakConfig). */
        std::vector<double> self_per_break;

        /** Index of @p dataset in dataset order; throws Error. */
        size_t indexOf(const std::string &dataset) const;
    };

    /** The workload's materialized profile set (built on first use). */
    const WorkloadProfiles &workload(const std::string &name);

    /** One dataset's profile database, by shared reference. */
    const profile::ProfileDb &profile(const std::string &workload,
                                      const std::string &dataset);

    /** Leave-one-out merged predictor directions for every target of
     *  @p workload under @p mode (built in one O(n) pass on first use). */
    const LeaveOneOutTable &leaveOneOut(const std::string &workload,
                                        profile::MergeMode mode);

    /** Memoized instructions-per-break under self prediction. */
    double selfPerBreak(const std::string &workload,
                        const std::string &dataset);

    /** Instructions-per-break under the leave-one-out merge of every
     *  other dataset; falls back to the self bound when the workload has
     *  a single dataset (mirroring othersPredictedPerBreak). */
    double othersPerBreak(const std::string &workload,
                          const std::string &dataset,
                          profile::MergeMode mode);

  private:
    struct Entry
    {
        std::once_flag once;
        WorkloadProfiles data;
        std::once_flag loo_once[3]; ///< one per MergeMode
        LeaveOneOutTable loo[3];
    };

    std::shared_ptr<Entry> entryFor(const std::string &workload);
    void materialize(Entry &entry, const std::string &workload);

    harness::Runner &runner_;
    std::mutex mu_;
    std::map<std::string, std::shared_ptr<Entry>> entries_;
};

} // namespace ifprob::analysis

#endif // IFPROB_ANALYSIS_ANALYSIS_CACHE_H

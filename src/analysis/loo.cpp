#include "analysis/loo.h"

#include <cmath>

#include "support/error.h"
#include "support/str.h"

namespace ifprob::analysis {

namespace {

using profile::MergeMode;
using profile::ProfileDb;

/** Element-wise (executed, taken) contribution of one dataset to the
 *  merged predictor, exactly as ProfileDb::merge would add it. A
 *  dataset merge skips entirely (scaled mode with no executions,
 *  polling votes at unexecuted sites) contributes explicit zeros:
 *  x + 0.0 == x for the non-negative weights involved, so folding the
 *  zeros is bit-identical to skipping them. */
struct Contribution
{
    std::vector<double> executed;
    std::vector<double> taken;
};

Contribution
contributionOf(const ProfileDb &db, MergeMode mode)
{
    const size_t sites = db.numSites();
    Contribution c;
    c.executed.assign(sites, 0.0);
    c.taken.assign(sites, 0.0);
    switch (mode) {
      case MergeMode::kUnscaled:
        for (size_t i = 0; i < sites; ++i) {
            c.executed[i] = db.site(i).executed;
            c.taken[i] = db.site(i).taken;
        }
        break;
      case MergeMode::kScaled: {
        const double total = db.totalExecuted();
        if (total <= 0.0)
            break; // an empty run contributes nothing
        for (size_t i = 0; i < sites; ++i) {
            c.executed[i] = db.site(i).executed / total;
            c.taken[i] = db.site(i).taken / total;
        }
        break;
      }
      case MergeMode::kPolling:
        for (size_t i = 0; i < sites; ++i) {
            const auto &w = db.site(i);
            if (w.executed <= 0.0)
                continue;
            c.executed[i] = 1.0;
            if (w.taken * 2.0 > w.executed)
                c.taken[i] = 1.0;
        }
        break;
    }
    return c;
}

} // namespace

LeaveOneOutTable
leaveOneOutTable(std::span<const ProfileDb> dbs, MergeMode mode)
{
    if (dbs.empty())
        throw Error("leaveOneOutTable: no inputs");
    const size_t n = dbs.size();
    const size_t sites = dbs[0].numSites();
    for (const ProfileDb &db : dbs) {
        if (db.fingerprint() != dbs[0].fingerprint() ||
            db.numSites() != sites) {
            throw Error(strPrintf(
                "leaveOneOutTable: profile set for '%s' is not uniform "
                "(fingerprint or site count mismatch)",
                dbs[0].programName().c_str()));
        }
    }

    std::vector<Contribution> contrib;
    contrib.reserve(n);
    for (const ProfileDb &db : dbs)
        contrib.push_back(contributionOf(db, mode));

    // prefix[t] = left fold of datasets [0, t) — exactly the first part
    // of the reference merge for target t; suffix[t] = fold of [t, n).
    std::vector<Contribution> prefix(n + 1), suffix(n + 1);
    prefix[0].executed.assign(sites, 0.0);
    prefix[0].taken.assign(sites, 0.0);
    for (size_t j = 0; j < n; ++j) {
        prefix[j + 1] = prefix[j];
        for (size_t i = 0; i < sites; ++i) {
            prefix[j + 1].executed[i] += contrib[j].executed[i];
            prefix[j + 1].taken[i] += contrib[j].taken[i];
        }
    }
    suffix[n].executed.assign(sites, 0.0);
    suffix[n].taken.assign(sites, 0.0);
    for (size_t j = n; j-- > 0;) {
        suffix[j] = suffix[j + 1];
        for (size_t i = 0; i < sites; ++i) {
            suffix[j].executed[i] += contrib[j].executed[i];
            suffix[j].taken[i] += contrib[j].taken[i];
        }
    }

    LeaveOneOutTable out;
    out.directions.assign(n, std::vector<uint8_t>(sites, 0));
    out.seen.assign(n, std::vector<uint8_t>(sites, 0));
    for (size_t t = 0; t < n; ++t) {
        for (size_t i = 0; i < sites; ++i) {
            double e = prefix[t].executed[i] + suffix[t + 1].executed[i];
            double tk = prefix[t].taken[i] + suffix[t + 1].taken[i];
            if (mode == MergeMode::kScaled && e > 0.0 &&
                std::fabs(2.0 * tk - e) <= 1e-9 * e) {
                // Margin inside the guard band: association error could
                // in principle flip the strict comparison, so replay the
                // exact reference fold for this site (same operation
                // sequence as ProfileDb::merge over all-but-t).
                e = 0.0;
                tk = 0.0;
                for (size_t j = 0; j < n; ++j) {
                    if (j == t)
                        continue;
                    e += contrib[j].executed[i];
                    tk += contrib[j].taken[i];
                }
                ++out.exact_refolds;
            }
            // ProfilePredictor semantics: unseen sites default to
            // not-taken, seen sites take the strict majority.
            out.seen[t][i] = e > 0.0 ? 1 : 0;
            out.directions[t][i] = (e > 0.0 && tk * 2.0 > e) ? 1 : 0;
        }
    }
    return out;
}

} // namespace ifprob::analysis

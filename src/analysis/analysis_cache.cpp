#include "analysis/analysis_cache.h"

#include "metrics/breaks.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace ifprob::analysis {

size_t
AnalysisCache::WorkloadProfiles::indexOf(const std::string &dataset) const
{
    for (size_t i = 0; i < dataset_names.size(); ++i) {
        if (dataset_names[i] == dataset)
            return i;
    }
    throw Error("AnalysisCache: no dataset " + dataset);
}

std::shared_ptr<AnalysisCache::Entry>
AnalysisCache::entryFor(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &entry = entries_[workload];
    if (!entry)
        entry = std::make_shared<Entry>();
    return entry;
}

void
AnalysisCache::materialize(Entry &entry, const std::string &workload)
{
    const isa::Program &prog = runner_.program(workload);
    WorkloadProfiles &wp = entry.data;
    wp.fingerprint = prog.fingerprint();
    wp.dataset_names = runner_.datasetNames(workload);
    const size_t n = wp.dataset_names.size();
    wp.stats.reserve(n);
    wp.profiles.reserve(n);
    wp.counts.reserve(n);
    wp.directions.reserve(n);
    wp.seen.reserve(n);
    wp.self_per_break.reserve(n);
    for (const std::string &dataset : wp.dataset_names) {
        const vm::RunStats &stats = runner_.stats(workload, dataset);
        wp.stats.push_back(&stats);
        wp.profiles.emplace_back(workload, wp.fingerprint, stats);
        wp.counts.push_back(SiteCounts::fromStats(stats));
        const SiteCounts &counts = wp.counts.back();
        const size_t sites = counts.size();
        std::vector<uint8_t> dir(sites, 0), seen(sites, 0);
        for (size_t i = 0; i < sites; ++i) {
            const int64_t e = counts.executed[i];
            seen[i] = e > 0 ? 1 : 0;
            dir[i] = (e > 0 && 2 * counts.taken[i] > e) ? 1 : 0;
        }
        wp.directions.push_back(std::move(dir));
        wp.seen.push_back(std::move(seen));
        wp.self_per_break.push_back(
            metrics::breaksWithMispredicts(stats, selfMispredicts(counts))
                .instructionsPerBreak());
    }
    obs::counter("analysis.workloads_materialized").add(1);
    obs::counter("analysis.profile_builds").add(static_cast<int64_t>(n));
}

const AnalysisCache::WorkloadProfiles &
AnalysisCache::workload(const std::string &name)
{
    std::shared_ptr<Entry> entry = entryFor(name);
    std::call_once(entry->once, [&] { materialize(*entry, name); });
    return entry->data;
}

const profile::ProfileDb &
AnalysisCache::profile(const std::string &workload_name,
                       const std::string &dataset)
{
    const WorkloadProfiles &wp = workload(workload_name);
    return wp.profiles[wp.indexOf(dataset)];
}

const LeaveOneOutTable &
AnalysisCache::leaveOneOut(const std::string &workload_name,
                           profile::MergeMode mode)
{
    obs::counter("analysis.loo_requests").add(1);
    std::shared_ptr<Entry> entry = entryFor(workload_name);
    std::call_once(entry->once,
                   [&] { materialize(*entry, workload_name); });
    const size_t m = static_cast<size_t>(mode);
    std::call_once(entry->loo_once[m], [&] {
        entry->loo[m] = leaveOneOutTable(entry->data.profiles, mode);
        obs::counter("analysis.loo_builds").add(1);
        obs::counter("analysis.exact_refolds")
            .add(entry->loo[m].exact_refolds);
    });
    return entry->loo[m];
}

double
AnalysisCache::selfPerBreak(const std::string &workload_name,
                            const std::string &dataset)
{
    const WorkloadProfiles &wp = workload(workload_name);
    return wp.self_per_break[wp.indexOf(dataset)];
}

double
AnalysisCache::othersPerBreak(const std::string &workload_name,
                              const std::string &dataset,
                              profile::MergeMode mode)
{
    const WorkloadProfiles &wp = workload(workload_name);
    const size_t t = wp.indexOf(dataset);
    if (wp.dataset_names.size() < 2)
        return wp.self_per_break[t];
    const LeaveOneOutTable &loo = leaveOneOut(workload_name, mode);
    const int64_t mis = mispredictsLowered(wp.counts[t],
                                           loo.directions[t]);
    return metrics::breaksWithMispredicts(*wp.stats[t], mis)
        .instructionsPerBreak();
}

} // namespace ifprob::analysis

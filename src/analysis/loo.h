#ifndef IFPROB_ANALYSIS_LOO_H
#define IFPROB_ANALYSIS_LOO_H

#include <cstdint>
#include <span>
#include <vector>

#include "profile/profile_db.h"

namespace ifprob::analysis {

/**
 * Per-target leave-one-out predictor directions for one workload's
 * profile set under one merge mode: `directions[t][site]` is the
 * direction a ProfilePredictor over `merge(all datasets except t, mode)`
 * predicts (1 = taken; unseen sites are 0, the not-taken default), and
 * `seen[t][site]` marks sites that merged predictor ever saw execute.
 *
 * Computed in O(n * sites) for all n targets at once via per-mode
 * prefix/suffix weight sums, replacing the O(n^2 * sites) per-target
 * re-merge. The directions are guaranteed identical to the re-merge:
 *
 *  - unscaled and polling weights are integer-valued doubles, so any
 *    summation order is exact;
 *  - scaled weights are fractional, so prefix+suffix association can
 *    round differently from the reference left-fold — but only by
 *    ~n*ulp, and any site whose merged (2*taken - executed) margin falls
 *    inside a 1e-9 relative guard band is re-derived by replaying the
 *    exact reference fold for that site alone (rare, O(n) each).
 */
struct LeaveOneOutTable
{
    std::vector<std::vector<uint8_t>> directions; ///< [target][site]
    std::vector<std::vector<uint8_t>> seen;       ///< [target][site]
    /** Scaled-mode sites re-derived by the exact reference fold because
     *  their margin fell inside the tie guard band (telemetry). */
    int64_t exact_refolds = 0;
};

/**
 * Build the leave-one-out table for @p dbs (one ProfileDb per dataset,
 * in dataset order — the order ProfileDb::merge would consume them).
 * All inputs must share a fingerprint and site count; throws Error
 * otherwise, and on an empty input span (mirroring ProfileDb::merge).
 */
LeaveOneOutTable leaveOneOutTable(std::span<const profile::ProfileDb> dbs,
                                  profile::MergeMode mode);

} // namespace ifprob::analysis

#endif // IFPROB_ANALYSIS_LOO_H

#ifndef IFPROB_VM_OBSERVER_H
#define IFPROB_VM_OBSERVER_H

#include <cstdint>
#include <utility>
#include <vector>

namespace ifprob::vm {

/**
 * Receives dynamic control-flow events in execution order.
 *
 * Aggregate counts (RunStats) suffice for evaluating *static* predictors,
 * but two analyses need the event sequence: dynamic baseline predictors
 * (1-bit, 2-bit) and the ILP run-length analysis, which measures the
 * *spacing* of breaks in control rather than just their rate.
 *
 * @p instructions is the number of instructions executed so far,
 * including the one raising the event.
 */
class BranchObserver
{
  public:
    virtual ~BranchObserver() = default;

    /** Called after each executed conditional branch. */
    virtual void onBranch(int site_id, bool taken,
                          int64_t instructions) = 0;

    /**
     * Called on each unavoidable break in control: an indirect call, or
     * the return matching one. Default: ignored (dynamic predictors only
     * care about conditional branches).
     */
    virtual void onUnavoidableBreak(int64_t instructions)
    {
        (void)instructions;
    }
};

/**
 * Fans every event out to a list of observers, in list order, so one
 * live run can feed N independent analyses (e.g. several dynamic
 * predictors) instead of re-executing the program once per observer.
 * For observers that do not read each other's state the result is
 * indistinguishable from N sequential runs. Does not own the observers;
 * they must outlive the run.
 */
class MultiObserver final : public BranchObserver
{
  public:
    MultiObserver() = default;
    explicit MultiObserver(std::vector<BranchObserver *> observers)
        : observers_(std::move(observers))
    {
    }

    void add(BranchObserver *observer) { observers_.push_back(observer); }

    void
    onBranch(int site_id, bool taken, int64_t instructions) override
    {
        for (BranchObserver *o : observers_)
            o->onBranch(site_id, taken, instructions);
    }

    void
    onUnavoidableBreak(int64_t instructions) override
    {
        for (BranchObserver *o : observers_)
            o->onUnavoidableBreak(instructions);
    }

  private:
    std::vector<BranchObserver *> observers_;
};

} // namespace ifprob::vm

#endif // IFPROB_VM_OBSERVER_H

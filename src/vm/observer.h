#ifndef IFPROB_VM_OBSERVER_H
#define IFPROB_VM_OBSERVER_H

#include <cstdint>
#include <utility>
#include <vector>

namespace ifprob::vm {

/**
 * A decoded block of control-flow events in structure-of-arrays form.
 *
 * The batched replay path (`trace::replay`) decodes the compressed
 * streams ~4096 events at a time into one reusable EventBlock, then
 * hands the whole block to each observer. Layout:
 *
 *   site_id[i]      dictionary-resolved branch site, or -1 for an
 *                   unavoidable break (indirect call / matching return)
 *   taken[i]        0/1; meaningful only when site_id[i] >= 0
 *   instructions[i] cumulative instruction count at the event,
 *                   including the instruction raising it
 *
 * `branch_count` counts the events with site_id >= 0. When
 * `branch_count == size` the block is break-free, and batch kernels
 * may skip the per-event break test entirely.
 */
struct EventBlock
{
    static constexpr int kCapacity = 4096;

    int32_t size = 0;
    int32_t branch_count = 0;
    /// Upper bound on the site_id values in the block (not necessarily
    /// attained): the decoder's dictionary maximum. -1 when unknown;
    /// kernels must then fall back to per-event range checks.
    int32_t max_site = -1;
    int32_t site_id[kCapacity];
    uint8_t taken[kCapacity];
    int64_t instructions[kCapacity];
};

/**
 * Receives dynamic control-flow events in execution order.
 *
 * Aggregate counts (RunStats) suffice for evaluating *static* predictors,
 * but two analyses need the event sequence: dynamic baseline predictors
 * (1-bit, 2-bit) and the ILP run-length analysis, which measures the
 * *spacing* of breaks in control rather than just their rate.
 *
 * @p instructions is the number of instructions executed so far,
 * including the one raising the event.
 */
class BranchObserver
{
  public:
    virtual ~BranchObserver() = default;

    /** Called after each executed conditional branch. */
    virtual void onBranch(int site_id, bool taken,
                          int64_t instructions) = 0;

    /**
     * Called on each unavoidable break in control: an indirect call, or
     * the return matching one. Default: ignored (dynamic predictors only
     * care about conditional branches).
     */
    virtual void onUnavoidableBreak(int64_t instructions)
    {
        (void)instructions;
    }

    /**
     * Whether this observer reads the @p instructions argument (or
     * EventBlock::instructions). Observers that only consume
     * (site, taken) — profile counters, direction predictors — override
     * this to return false: when every observer in a batched replay
     * opts out, the decoder skips materializing cumulative instruction
     * counts entirely, and EventBlock::instructions holds unspecified
     * values. An opted-out observer must therefore never read them.
     */
    virtual bool wantsInstructionCounts() const { return true; }

    /**
     * Called with a decoded block of events by the batched replay path.
     * The default forwards each event to onBranch/onUnavoidableBreak in
     * order, so any observer is correct without opting in; hot observers
     * override this with a branch-free kernel. Overrides must produce
     * state bit-identical to the scalar loop for the same event
     * sequence.
     */
    virtual void onBatch(const EventBlock &block)
    {
        const int n = block.size;
        if (block.branch_count == n) {
            for (int i = 0; i < n; ++i)
                onBranch(block.site_id[i], block.taken[i] != 0,
                         block.instructions[i]);
            return;
        }
        for (int i = 0; i < n; ++i) {
            if (block.site_id[i] >= 0)
                onBranch(block.site_id[i], block.taken[i] != 0,
                         block.instructions[i]);
            else
                onUnavoidableBreak(block.instructions[i]);
        }
    }
};

/**
 * Fans every event out to a list of observers, in list order, so one
 * live run can feed N independent analyses (e.g. several dynamic
 * predictors) instead of re-executing the program once per observer.
 * For observers that do not read each other's state the result is
 * indistinguishable from N sequential runs. Does not own the observers;
 * they must outlive the run.
 */
class MultiObserver final : public BranchObserver
{
  public:
    MultiObserver() = default;
    explicit MultiObserver(std::vector<BranchObserver *> observers)
        : observers_(std::move(observers))
    {
    }

    void add(BranchObserver *observer) { observers_.push_back(observer); }

    void
    onBranch(int site_id, bool taken, int64_t instructions) override
    {
        for (BranchObserver *o : observers_)
            o->onBranch(site_id, taken, instructions);
    }

    void
    onUnavoidableBreak(int64_t instructions) override
    {
        for (BranchObserver *o : observers_)
            o->onUnavoidableBreak(instructions);
    }

    void
    onBatch(const EventBlock &block) override
    {
        for (BranchObserver *o : observers_)
            o->onBatch(block);
    }

    bool
    wantsInstructionCounts() const override
    {
        for (BranchObserver *o : observers_) {
            if (o->wantsInstructionCounts())
                return true;
        }
        return false;
    }

  private:
    std::vector<BranchObserver *> observers_;
};

} // namespace ifprob::vm

#endif // IFPROB_VM_OBSERVER_H

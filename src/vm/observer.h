#ifndef IFPROB_VM_OBSERVER_H
#define IFPROB_VM_OBSERVER_H

#include <cstdint>

namespace ifprob::vm {

/**
 * Receives dynamic control-flow events in execution order.
 *
 * Aggregate counts (RunStats) suffice for evaluating *static* predictors,
 * but two analyses need the event sequence: dynamic baseline predictors
 * (1-bit, 2-bit) and the ILP run-length analysis, which measures the
 * *spacing* of breaks in control rather than just their rate.
 *
 * @p instructions is the number of instructions executed so far,
 * including the one raising the event.
 */
class BranchObserver
{
  public:
    virtual ~BranchObserver() = default;

    /** Called after each executed conditional branch. */
    virtual void onBranch(int site_id, bool taken,
                          int64_t instructions) = 0;

    /**
     * Called on each unavoidable break in control: an indirect call, or
     * the return matching one. Default: ignored (dynamic predictors only
     * care about conditional branches).
     */
    virtual void onUnavoidableBreak(int64_t instructions)
    {
        (void)instructions;
    }
};

} // namespace ifprob::vm

#endif // IFPROB_VM_OBSERVER_H

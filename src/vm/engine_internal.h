#ifndef IFPROB_VM_ENGINE_INTERNAL_H
#define IFPROB_VM_ENGINE_INTERNAL_H

#include <string>
#include <string_view>
#include <vector>

#include "isa/program.h"
#include "support/error.h"
#include "support/str.h"
#include "vm/decode.h"
#include "vm/machine.h"
#include "vm/observer.h"

/**
 * Execution-state plumbing shared by the interpreter cores in
 * engine.cpp and the trace-tier executor in jit/executor.cpp. Internal
 * to the VM: nothing outside src/vm includes this.
 */

namespace ifprob::vm::jit {
struct TraceProgram;
}

namespace ifprob::vm::detail {

/** One activation record. Registers live in a shared stack (reg_base). */
struct Frame
{
    int func_index = -1;
    int pc = 0;
    size_t reg_base = 0;
    int ret_dst = -1;     ///< caller register receiving the return value
    bool via_icall = false;
};

/** "trap at <function>+<pc>: <msg>", identical across all cores. */
inline RuntimeError
trapError(const isa::Program &program, const std::vector<Frame> &frames,
          const std::string &msg)
{
    std::string where = "?";
    if (!frames.empty()) {
        const Frame &f = frames.back();
        where = strPrintf(
            "%s+%d",
            program.functions[static_cast<size_t>(f.func_index)]
                .name.c_str(),
            f.pc);
    }
    return RuntimeError("trap at " + where + ": " + msg);
}

struct ExecState
{
    ExecState(const isa::Program &p, const DecodedProgram &d,
              std::string_view in, const RunLimits &l, BranchObserver *o,
              RunResult &r)
        : program(p), decoded(d), input(in), limits(l), observer(o),
          result(r)
    {
    }

    const isa::Program &program;
    const DecodedProgram &decoded;
    const std::string_view input;
    const RunLimits &limits;
    BranchObserver *const observer;
    RunResult &result;

    /** Non-null only under the trace engine: the compiled tier whose
     *  patched stream `decoded` references. */
    const jit::TraceProgram *jit = nullptr;

    std::vector<int64_t> memory;
    std::vector<int64_t> reg_stack;
    std::vector<Frame> frames;
    int64_t pending_args[kMaxArgs] = {};
    int pending_count = 0;
    size_t input_pos = 0;
    int64_t icount = 0; ///< instructions retired (live copy of the loop's)
    bool done = false;  ///< run completed (vs yielded to the checked loop)
};

inline void
pushFrame(ExecState &s, int func_index, int ret_dst, bool via_icall)
{
    const isa::Function &fn =
        s.program.functions[static_cast<size_t>(func_index)];
    Frame frame;
    frame.func_index = func_index;
    frame.pc = 0;
    frame.reg_base = s.reg_stack.size();
    frame.ret_dst = ret_dst;
    frame.via_icall = via_icall;
    s.reg_stack.resize(s.reg_stack.size() +
                           static_cast<size_t>(fn.num_regs),
                       0);
    for (int i = 0; i < fn.num_params && i < s.pending_count; ++i)
        s.reg_stack[frame.reg_base + static_cast<size_t>(i)] =
            s.pending_args[i];
    s.frames.push_back(frame);
}

} // namespace ifprob::vm::detail

#endif // IFPROB_VM_ENGINE_INTERNAL_H

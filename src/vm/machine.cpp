#include "vm/machine.h"

#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "vm/engine.h"
#include "vm/jit/tier.h"

namespace ifprob::vm {

std::string_view
engineName(Engine engine)
{
    switch (engine) {
      case Engine::kSwitch:
        return "switch";
      case Engine::kTrace:
        return "trace";
      case Engine::kFast:
      default:
        return "fast";
    }
}

Engine
parseEngineName(std::string_view name)
{
    if (name == "fast")
        return Engine::kFast;
    if (name == "switch" || name == "reference")
        return Engine::kSwitch;
    if (name == "trace")
        return Engine::kTrace;
    throw Error("IFPROB_VM_ENGINE: unknown engine \"" +
                std::string(name) +
                "\" (expected \"fast\", \"switch\", or \"trace\")");
}

Engine
defaultEngine()
{
    static const Engine cached = [] {
        const char *env = std::getenv("IFPROB_VM_ENGINE");
        if (env == nullptr || *env == '\0')
            return Engine::kFast;
        return parseEngineName(env);
    }();
    return cached;
}

Machine::Machine(const isa::Program &program, Engine engine)
    : program_(program), engine_(engine)
{
    program_.validate();
    if (engine_ == Engine::kFast || engine_ == Engine::kTrace) {
        obs::ScopedSpan span("vm.decode", "vm");
        const int64_t t0 = obs::nowMicros();
        decoded_ = decodeProgram(program_);
        decoded_.stats.decode_micros = obs::nowMicros() - t0;
        obs::counter("vm.decodes").add(1);
        obs::histogram("vm.decode_micros")
            .record(decoded_.stats.decode_micros);
        if (span.active()) {
            span.arg("instructions", decoded_.stats.instructions);
            span.arg("fused_slots", decoded_.stats.fusedSlots());
            span.arg("micros", decoded_.stats.decode_micros);
        }
    }
    if (engine_ == Engine::kTrace) {
        obs::ScopedSpan span("jit.compile", "vm");
        tier_ = std::make_shared<jit::TierController>(program_, decoded_);
        const jit::JitBuildStats build = tier_->buildStats();
        obs::counter("jit.traces_compiled").add(build.traces);
        obs::histogram("jit.compile_micros").record(build.compile_micros);
        if (span.active()) {
            span.arg("traces", build.traces);
            span.arg("steps", build.steps);
            span.arg("source", build.source);
            span.arg("micros", build.compile_micros);
        }
    }
}

int64_t
Machine::jitCompileMicros() const
{
    return tier_ != nullptr ? tier_->compileMicros() : 0;
}

jit::JitBuildStats
Machine::jitBuildStats() const
{
    return tier_ != nullptr ? tier_->buildStats() : jit::JitBuildStats{};
}

RunResult
Machine::run(std::string_view input, const RunLimits &limits,
             BranchObserver *observer) const
{
    // All accounting happens per run, outside the dispatch loop: when
    // tracing is off this is two clock reads and a handful of relaxed
    // atomic adds per run (micro_vm guards the <2% budget).
    obs::ScopedSpan span("vm.run", "vm");
    const int64_t t0 = obs::nowMicros();

    auto record = [&](const RunResult &r, bool trapped) {
        const RunStats &stats = r.stats;
        const int64_t micros = obs::nowMicros() - t0;
        obs::counter("vm.runs").add(1);
        obs::counter("vm.instructions").add(stats.instructions);
        obs::counter("vm.cond_branches").add(stats.cond_branches);
        if (trapped)
            obs::counter("vm.traps").add(1);
        if (observer) {
            // onBranch fires per conditional branch, onUnavoidableBreak
            // per indirect call/return; totalling here keeps the
            // per-event cost out of the loop.
            obs::counter("vm.observer_callbacks")
                .add(stats.cond_branches + stats.indirect_calls +
                     stats.indirect_returns);
        }
        obs::histogram("vm.run_micros").record(micros);
        if (engine_ == Engine::kTrace) {
            obs::counter("jit.trace_entries").add(r.jit.trace_entries);
            obs::counter("jit.trace_instructions")
                .add(r.jit.trace_instructions);
            obs::counter("jit.side_exits").add(r.jit.side_exits);
            obs::counter("jit.trap_exits").add(r.jit.trap_exits);
        }
        if (span.active()) {
            span.arg("engine", engineName(engine_));
            span.arg("instructions", stats.instructions);
            span.arg("cond_branches", stats.cond_branches);
            if (micros > 0)
                span.arg("mips", static_cast<double>(stats.instructions) /
                                     static_cast<double>(micros));
            if (trapped)
                span.arg("trapped", int64_t{1});
            if (r.jit.trace_entries > 0)
                span.arg("trace_instructions", r.jit.trace_instructions);
        }
    };

    RunResult result;
    try {
        if (engine_ == Engine::kTrace) {
            // Hold the tier for the whole run: a concurrent tier-up
            // swap must not invalidate the stream we are executing.
            const std::shared_ptr<const jit::TraceProgram> tier =
                tier_->current();
            runTraceEngine(program_, *tier, input, limits, observer,
                           result);
            const int64_t before = tier_->tierUps();
            tier_->onRunCompleted(result.stats);
            if (tier_->tierUps() != before) {
                obs::counter("jit.tier_ups").add(1);
                obs::counter("jit.traces_compiled")
                    .add(tier_->buildStats().traces);
            }
        } else if (engine_ == Engine::kFast) {
            runFastEngine(program_, decoded_, input, limits, observer,
                          result);
        } else {
            runSwitchEngine(program_, input, limits, observer, result);
        }
        record(result, /*trapped=*/false);
        return result;
    } catch (const RuntimeError &) {
        // The engines fill `result` in place, so the statistics (and
        // output) accumulated up to the trap site are recorded.
        record(result, /*trapped=*/true);
        throw;
    }
}

} // namespace ifprob::vm

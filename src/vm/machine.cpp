#include "vm/machine.h"

#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "vm/engine.h"

namespace ifprob::vm {

std::string_view
engineName(Engine engine)
{
    return engine == Engine::kFast ? "fast" : "switch";
}

Engine
defaultEngine()
{
    static const Engine cached = [] {
        const char *env = std::getenv("IFPROB_VM_ENGINE");
        if (env == nullptr || *env == '\0')
            return Engine::kFast;
        const std::string v(env);
        if (v == "fast")
            return Engine::kFast;
        if (v == "switch" || v == "reference")
            return Engine::kSwitch;
        throw Error("IFPROB_VM_ENGINE: unknown engine \"" + v +
                    "\" (expected \"fast\" or \"switch\")");
    }();
    return cached;
}

Machine::Machine(const isa::Program &program, Engine engine)
    : program_(program), engine_(engine)
{
    program_.validate();
    if (engine_ == Engine::kFast) {
        obs::ScopedSpan span("vm.decode", "vm");
        const int64_t t0 = obs::nowMicros();
        decoded_ = decodeProgram(program_);
        decoded_.stats.decode_micros = obs::nowMicros() - t0;
        obs::counter("vm.decodes").add(1);
        obs::histogram("vm.decode_micros")
            .record(decoded_.stats.decode_micros);
        if (span.active()) {
            span.arg("instructions", decoded_.stats.instructions);
            span.arg("fused_slots", decoded_.stats.fusedSlots());
            span.arg("micros", decoded_.stats.decode_micros);
        }
    }
}

RunResult
Machine::run(std::string_view input, const RunLimits &limits,
             BranchObserver *observer) const
{
    // All accounting happens per run, outside the dispatch loop: when
    // tracing is off this is two clock reads and a handful of relaxed
    // atomic adds per run (micro_vm guards the <2% budget).
    obs::ScopedSpan span("vm.run", "vm");
    const int64_t t0 = obs::nowMicros();

    auto record = [&](const RunStats &stats, bool trapped) {
        const int64_t micros = obs::nowMicros() - t0;
        obs::counter("vm.runs").add(1);
        obs::counter("vm.instructions").add(stats.instructions);
        obs::counter("vm.cond_branches").add(stats.cond_branches);
        if (trapped)
            obs::counter("vm.traps").add(1);
        if (observer) {
            // onBranch fires per conditional branch, onUnavoidableBreak
            // per indirect call/return; totalling here keeps the
            // per-event cost out of the loop.
            obs::counter("vm.observer_callbacks")
                .add(stats.cond_branches + stats.indirect_calls +
                     stats.indirect_returns);
        }
        obs::histogram("vm.run_micros").record(micros);
        if (span.active()) {
            span.arg("engine", engineName(engine_));
            span.arg("instructions", stats.instructions);
            span.arg("cond_branches", stats.cond_branches);
            if (micros > 0)
                span.arg("mips", static_cast<double>(stats.instructions) /
                                     static_cast<double>(micros));
            if (trapped)
                span.arg("trapped", int64_t{1});
        }
    };

    RunResult result;
    try {
        if (engine_ == Engine::kFast)
            runFastEngine(program_, decoded_, input, limits, observer,
                          result);
        else
            runSwitchEngine(program_, input, limits, observer, result);
        record(result.stats, /*trapped=*/false);
        return result;
    } catch (const RuntimeError &) {
        // The engines fill `result` in place, so the statistics (and
        // output) accumulated up to the trap site are recorded.
        record(result.stats, /*trapped=*/true);
        throw;
    }
}

} // namespace ifprob::vm

#include "vm/machine.h"

#include <vector>

#include "isa/alu.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/str.h"

namespace ifprob::vm {

using isa::Instruction;
using isa::Opcode;

namespace {

/** One activation record. Registers live in a shared stack (reg_base). */
struct Frame
{
    int func_index = -1;
    int pc = 0;
    size_t reg_base = 0;
    int ret_dst = -1;     ///< caller register receiving the return value
    bool via_icall = false;
};

} // namespace

Machine::Machine(const isa::Program &program) : program_(program)
{
    program_.validate();
}

RunResult
Machine::run(std::string_view input, const RunLimits &limits,
             BranchObserver *observer) const
{
    // All accounting happens per run, outside the dispatch loop: when
    // tracing is off this is two clock reads and a handful of relaxed
    // atomic adds per run (micro_vm guards the <2% budget).
    obs::ScopedSpan span("vm.run", "vm");
    const int64_t t0 = obs::nowMicros();

    auto record = [&](const RunStats &stats, bool trapped) {
        const int64_t micros = obs::nowMicros() - t0;
        obs::counter("vm.runs").add(1);
        obs::counter("vm.instructions").add(stats.instructions);
        obs::counter("vm.cond_branches").add(stats.cond_branches);
        if (trapped)
            obs::counter("vm.traps").add(1);
        if (observer) {
            // onBranch fires per conditional branch, onUnavoidableBreak
            // per indirect call/return; totalling here keeps the
            // per-event cost out of the loop.
            obs::counter("vm.observer_callbacks")
                .add(stats.cond_branches + stats.indirect_calls +
                     stats.indirect_returns);
        }
        obs::histogram("vm.run_micros").record(micros);
        if (span.active()) {
            span.arg("instructions", stats.instructions);
            span.arg("cond_branches", stats.cond_branches);
            if (micros > 0)
                span.arg("mips", static_cast<double>(stats.instructions) /
                                     static_cast<double>(micros));
            if (trapped)
                span.arg("trapped", int64_t{1});
        }
    };

    try {
        RunResult result = runImpl(input, limits, observer);
        record(result.stats, /*trapped=*/false);
        return result;
    } catch (const RuntimeError &) {
        record(RunStats{}, /*trapped=*/true);
        throw;
    }
}

RunResult
Machine::runImpl(std::string_view input, const RunLimits &limits,
                 BranchObserver *observer) const
{
    RunResult result;
    RunStats &stats = result.stats;
    stats.branches.resize(program_.branch_sites.size());

    // Data memory.
    std::vector<int64_t> memory(static_cast<size_t>(program_.memory_words),
                                0);
    for (const auto &di : program_.data_init)
        memory[static_cast<size_t>(di.address)] = di.value;

    // Register stack shared by all frames.
    std::vector<int64_t> reg_stack;
    reg_stack.reserve(1 << 16);

    std::vector<Frame> frames;
    frames.reserve(256);

    // Call argument staging area (kArg ... kCall must be contiguous, which
    // the code generator guarantees).
    constexpr int kMaxArgs = 64;
    int64_t pending_args[kMaxArgs] = {};
    int pending_count = 0;

    size_t input_pos = 0;

    auto push_frame = [&](int func_index, int ret_dst, bool via_icall) {
        const isa::Function &fn =
            program_.functions[static_cast<size_t>(func_index)];
        Frame frame;
        frame.func_index = func_index;
        frame.pc = 0;
        frame.reg_base = reg_stack.size();
        frame.ret_dst = ret_dst;
        frame.via_icall = via_icall;
        reg_stack.resize(reg_stack.size() +
                             static_cast<size_t>(fn.num_regs),
                         0);
        for (int i = 0; i < fn.num_params && i < pending_count; ++i)
            reg_stack[frame.reg_base + static_cast<size_t>(i)] =
                pending_args[i];
        frames.push_back(frame);
    };

    auto trap = [&](const std::string &msg) -> RuntimeError {
        std::string where = "?";
        if (!frames.empty()) {
            const Frame &f = frames.back();
            where = strPrintf(
                "%s+%d",
                program_.functions[static_cast<size_t>(f.func_index)]
                    .name.c_str(),
                f.pc);
        }
        return RuntimeError("trap at " + where + ": " + msg);
    };

    push_frame(program_.entry, -1, false);

    while (!frames.empty()) {
        Frame &frame = frames.back();
        const isa::Function &fn =
            program_.functions[static_cast<size_t>(frame.func_index)];
        const Instruction *code = fn.code.data();
        const int code_size = static_cast<int>(fn.code.size());
        int64_t *regs = reg_stack.data() + frame.reg_base;
        int pc = frame.pc;

        // Inner loop: run within this frame until a call or return.
        bool switch_frame = false;
        while (!switch_frame) {
            if (pc < 0 || pc >= code_size) {
                frame.pc = pc;
                throw trap("pc out of range");
            }
            const Instruction &insn = code[pc];
            ++stats.instructions;
            if (stats.instructions > limits.max_instructions) {
                frame.pc = pc;
                throw trap(strPrintf(
                    "instruction budget exceeded (%lld)",
                    static_cast<long long>(limits.max_instructions)));
            }

            switch (insn.op) {
              case Opcode::kMovI:
              case Opcode::kMovF:
                regs[insn.a] = insn.imm;
                ++pc;
                break;
              case Opcode::kMov:
                regs[insn.a] = regs[insn.b];
                ++pc;
                break;
              case Opcode::kLoad: {
                int64_t addr =
                    (insn.b == -1 ? 0 : regs[insn.b]) + insn.imm;
                if (addr < 0 || addr >= program_.memory_words) {
                    frame.pc = pc;
                    throw trap(strPrintf("load address %lld out of "
                                         "[0,%lld)",
                                         static_cast<long long>(addr),
                                         static_cast<long long>(
                                             program_.memory_words)));
                }
                regs[insn.a] = memory[static_cast<size_t>(addr)];
                ++pc;
                break;
              }
              case Opcode::kStore: {
                int64_t addr =
                    (insn.b == -1 ? 0 : regs[insn.b]) + insn.imm;
                if (addr < 0 || addr >= program_.memory_words) {
                    frame.pc = pc;
                    throw trap(strPrintf("store address %lld out of "
                                         "[0,%lld)",
                                         static_cast<long long>(addr),
                                         static_cast<long long>(
                                             program_.memory_words)));
                }
                memory[static_cast<size_t>(addr)] = regs[insn.a];
                ++pc;
                break;
              }
              case Opcode::kBr: {
                ++stats.cond_branches;
                bool taken = regs[insn.a] != 0;
                auto &site = stats.branches[static_cast<size_t>(insn.imm)];
                ++site.executed;
                if (taken) {
                    ++site.taken;
                    ++stats.taken_branches;
                    pc = insn.b;
                } else {
                    pc = insn.c;
                }
                if (observer) {
                    observer->onBranch(static_cast<int>(insn.imm), taken,
                                       stats.instructions);
                }
                break;
              }
              case Opcode::kJmp:
                ++stats.jumps;
                pc = insn.a;
                break;
              case Opcode::kArg:
                if (insn.a >= kMaxArgs) {
                    frame.pc = pc;
                    throw trap("too many call arguments");
                }
                pending_args[insn.a] = regs[insn.b];
                pending_count = std::max(pending_count, insn.a + 1);
                ++pc;
                break;
              case Opcode::kCall: {
                ++stats.direct_calls;
                if (static_cast<int>(frames.size()) >=
                    limits.max_call_depth) {
                    frame.pc = pc;
                    throw trap("call stack overflow");
                }
                frame.pc = pc + 1; // resume point
                push_frame(insn.b, insn.a, false);
                pending_count = 0;
                switch_frame = true;
                break;
              }
              case Opcode::kICall: {
                ++stats.indirect_calls;
                int64_t target = regs[insn.b];
                if (target < 0 ||
                    target >= static_cast<int64_t>(
                                  program_.functions.size())) {
                    frame.pc = pc;
                    throw trap(strPrintf("indirect call to bad function "
                                         "index %lld",
                                         static_cast<long long>(target)));
                }
                const isa::Function &callee =
                    program_.functions[static_cast<size_t>(target)];
                if (callee.num_params != pending_count) {
                    frame.pc = pc;
                    throw trap(strPrintf(
                        "indirect call to %s: %d args staged, %d expected",
                        callee.name.c_str(), pending_count,
                        callee.num_params));
                }
                if (static_cast<int>(frames.size()) >=
                    limits.max_call_depth) {
                    frame.pc = pc;
                    throw trap("call stack overflow");
                }
                frame.pc = pc + 1;
                push_frame(static_cast<int>(target), insn.a, true);
                pending_count = 0;
                switch_frame = true;
                if (observer)
                    observer->onUnavoidableBreak(stats.instructions);
                break;
              }
              case Opcode::kRet: {
                // The entry frame's return ends the run; it has no
                // matching call, so it is not counted as a return.
                if (frames.size() > 1) {
                    if (frames.back().via_icall) {
                        ++stats.indirect_returns;
                        if (observer)
                            observer->onUnavoidableBreak(
                                stats.instructions);
                    } else {
                        ++stats.direct_returns;
                    }
                }
                int64_t value = insn.a == -1 ? 0 : regs[insn.a];
                int ret_dst = frame.ret_dst;
                reg_stack.resize(frame.reg_base);
                frames.pop_back();
                if (frames.empty()) {
                    stats.exit_code = value;
                    return result;
                }
                if (ret_dst != -1) {
                    Frame &caller = frames.back();
                    reg_stack[caller.reg_base +
                              static_cast<size_t>(ret_dst)] = value;
                }
                switch_frame = true;
                break;
              }
              case Opcode::kSelect:
                ++stats.selects;
                regs[insn.a] = regs[insn.b] != 0 ? regs[insn.c]
                                                 : regs[insn.d];
                ++pc;
                break;
              case Opcode::kGetc:
                regs[insn.a] = input_pos < input.size()
                                   ? static_cast<unsigned char>(
                                         input[input_pos++])
                                   : -1;
                ++pc;
                break;
              case Opcode::kPutc:
                result.output.push_back(
                    static_cast<char>(regs[insn.a] & 0xff));
                ++pc;
                break;
              case Opcode::kPutF:
                result.output += strPrintf("%.6g", isa::asF(regs[insn.a]));
                ++pc;
                break;
              case Opcode::kHalt:
                stats.exit_code = 0;
                return result;
              case Opcode::kNop:
                ++pc;
                break;
              default: {
                if (isa::isBinaryAlu(insn.op)) {
                    auto v = isa::evalBinaryAlu(insn.op, regs[insn.b],
                                                regs[insn.c]);
                    if (!v) {
                        frame.pc = pc;
                        throw trap(std::string("integer division by zero "
                                               "in ") +
                                   std::string(isa::opcodeName(insn.op)));
                    }
                    regs[insn.a] = *v;
                    ++pc;
                    break;
                }
                if (isa::isUnaryAlu(insn.op)) {
                    auto v = isa::evalUnaryAlu(insn.op, regs[insn.b]);
                    if (!v) {
                        frame.pc = pc;
                        throw trap("unevaluable unary op");
                    }
                    regs[insn.a] = *v;
                    ++pc;
                    break;
                }
                frame.pc = pc;
                throw trap("unimplemented opcode");
              }
            }
        }
    }

    return result;
}

} // namespace ifprob::vm

#include "vm/run_stats.h"

#include <istream>
#include <ostream>

#include "support/error.h"
#include "support/str.h"

namespace ifprob::vm {

double
RunStats::branchDensity() const
{
    if (instructions == 0)
        return 0.0;
    return static_cast<double>(cond_branches) /
           static_cast<double>(instructions);
}

double
RunStats::percentTaken() const
{
    if (cond_branches == 0)
        return 0.0;
    return 100.0 * static_cast<double>(taken_branches) /
           static_cast<double>(cond_branches);
}

void
RunStats::accumulate(const RunStats &other)
{
    if (branches.size() != other.branches.size()) {
        throw Error(strPrintf(
            "RunStats::accumulate: branch table size mismatch (%zu vs %zu)",
            branches.size(), other.branches.size()));
    }
    instructions += other.instructions;
    cond_branches += other.cond_branches;
    taken_branches += other.taken_branches;
    jumps += other.jumps;
    direct_calls += other.direct_calls;
    indirect_calls += other.indirect_calls;
    direct_returns += other.direct_returns;
    indirect_returns += other.indirect_returns;
    selects += other.selects;
    for (size_t i = 0; i < branches.size(); ++i) {
        branches[i].executed += other.branches[i].executed;
        branches[i].taken += other.branches[i].taken;
    }
}

void
RunStats::save(std::ostream &os) const
{
    os << "runstats v1\n";
    os << instructions << ' ' << cond_branches << ' ' << taken_branches
       << ' ' << jumps << ' ' << direct_calls << ' ' << indirect_calls
       << ' ' << direct_returns << ' ' << indirect_returns << ' ' << selects
       << ' ' << exit_code << '\n';
    os << branches.size() << '\n';
    for (const auto &b : branches)
        os << b.executed << ' ' << b.taken << '\n';
}

RunStats
RunStats::load(std::istream &is)
{
    std::string tag, version;
    is >> tag >> version;
    if (tag != "runstats" || version != "v1")
        throw Error("RunStats::load: bad header");
    RunStats stats;
    is >> stats.instructions >> stats.cond_branches >> stats.taken_branches >>
        stats.jumps >> stats.direct_calls >> stats.indirect_calls >>
        stats.direct_returns >> stats.indirect_returns >> stats.selects >>
        stats.exit_code;
    size_t n = 0;
    is >> n;
    if (!is || n > (1u << 26))
        throw Error("RunStats::load: corrupt branch table size");
    stats.branches.resize(n);
    for (auto &b : stats.branches)
        is >> b.executed >> b.taken;
    if (!is)
        throw Error("RunStats::load: truncated input");
    return stats;
}

} // namespace ifprob::vm

#include "vm/run_stats.h"

#include <cstring>
#include <istream>
#include <ostream>
#include <vector>

#include "support/binio.h"
#include "support/error.h"
#include "support/str.h"

namespace ifprob::vm {

double
RunStats::branchDensity() const
{
    if (instructions == 0)
        return 0.0;
    return static_cast<double>(cond_branches) /
           static_cast<double>(instructions);
}

double
RunStats::percentTaken() const
{
    if (cond_branches == 0)
        return 0.0;
    return 100.0 * static_cast<double>(taken_branches) /
           static_cast<double>(cond_branches);
}

void
RunStats::accumulate(const RunStats &other)
{
    if (branches.size() != other.branches.size()) {
        throw Error(strPrintf(
            "RunStats::accumulate: branch table size mismatch (%zu vs %zu)",
            branches.size(), other.branches.size()));
    }
    instructions += other.instructions;
    cond_branches += other.cond_branches;
    taken_branches += other.taken_branches;
    jumps += other.jumps;
    direct_calls += other.direct_calls;
    indirect_calls += other.indirect_calls;
    direct_returns += other.direct_returns;
    indirect_returns += other.indirect_returns;
    selects += other.selects;
    for (size_t i = 0; i < branches.size(); ++i) {
        branches[i].executed += other.branches[i].executed;
        branches[i].taken += other.branches[i].taken;
    }
}

void
RunStats::save(std::ostream &os) const
{
    os << "runstats v1\n";
    os << instructions << ' ' << cond_branches << ' ' << taken_branches
       << ' ' << jumps << ' ' << direct_calls << ' ' << indirect_calls
       << ' ' << direct_returns << ' ' << indirect_returns << ' ' << selects
       << ' ' << exit_code << '\n';
    os << branches.size() << '\n';
    for (const auto &b : branches)
        os << b.executed << ' ' << b.taken << '\n';
}

namespace {

// Little-endian encode/decode helpers from support/binio.h —
// byte-explicit so the on-disk format is identical on any host.
using binio::getI64;
using binio::getU32;
using binio::getU64;
using binio::putI64;
using binio::putU32;
using binio::putU64;

/** Fill @p buf from the stream or throw the truncation error. */
void
readExact(std::istream &is, std::vector<unsigned char> &buf, size_t n)
{
    buf.resize(n);
    is.read(reinterpret_cast<char *>(buf.data()),
            static_cast<std::streamsize>(n));
    if (static_cast<size_t>(is.gcount()) != n)
        throw Error("RunStats::loadBinary: truncated input");
}

/** magic + version + reserved + fingerprint. */
constexpr size_t kBinaryHeaderBytes = 8 + 4 + 4 + 8;
constexpr size_t kBinaryScalars = 10;

} // namespace

void
RunStats::saveBinary(std::ostream &os, uint64_t fingerprint) const
{
    std::string buf;
    buf.reserve(kBinaryHeaderBytes + (kBinaryScalars + 1) * 8 +
                branches.size() * 16);
    buf.append(kBinaryMagic, sizeof(kBinaryMagic));
    putU32(buf, kBinaryVersion);
    putU32(buf, 0); // reserved
    putU64(buf, fingerprint);
    putI64(buf, instructions);
    putI64(buf, cond_branches);
    putI64(buf, taken_branches);
    putI64(buf, jumps);
    putI64(buf, direct_calls);
    putI64(buf, indirect_calls);
    putI64(buf, direct_returns);
    putI64(buf, indirect_returns);
    putI64(buf, selects);
    putI64(buf, exit_code);
    putU64(buf, branches.size());
    for (const auto &b : branches) {
        putI64(buf, b.executed);
        putI64(buf, b.taken);
    }
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

RunStats
RunStats::loadBinary(std::istream &is, uint64_t expected_fingerprint)
{
    std::vector<unsigned char> buf;
    readExact(is, buf, kBinaryHeaderBytes + (kBinaryScalars + 1) * 8);
    if (std::memcmp(buf.data(), kBinaryMagic, sizeof(kBinaryMagic)) != 0)
        throw Error("RunStats::loadBinary: bad magic");
    const uint32_t version = getU32(buf.data() + 8);
    if (version != kBinaryVersion) {
        throw Error(strPrintf(
            "RunStats::loadBinary: unsupported version %u", version));
    }
    const uint64_t fingerprint = getU64(buf.data() + 16);
    if (expected_fingerprint != 0 && fingerprint != expected_fingerprint) {
        throw Error(strPrintf(
            "RunStats::loadBinary: fingerprint mismatch "
            "(%016llx vs %016llx)",
            static_cast<unsigned long long>(fingerprint),
            static_cast<unsigned long long>(expected_fingerprint)));
    }
    RunStats stats;
    const unsigned char *p = buf.data() + kBinaryHeaderBytes;
    stats.instructions = getI64(p + 0 * 8);
    stats.cond_branches = getI64(p + 1 * 8);
    stats.taken_branches = getI64(p + 2 * 8);
    stats.jumps = getI64(p + 3 * 8);
    stats.direct_calls = getI64(p + 4 * 8);
    stats.indirect_calls = getI64(p + 5 * 8);
    stats.direct_returns = getI64(p + 6 * 8);
    stats.indirect_returns = getI64(p + 7 * 8);
    stats.selects = getI64(p + 8 * 8);
    stats.exit_code = getI64(p + 9 * 8);
    const uint64_t n = getU64(p + 10 * 8);
    if (n > (1u << 26))
        throw Error("RunStats::loadBinary: corrupt branch table size");
    readExact(is, buf, static_cast<size_t>(n) * 16);
    stats.branches.resize(static_cast<size_t>(n));
    for (size_t i = 0; i < stats.branches.size(); ++i) {
        stats.branches[i].executed = getI64(buf.data() + i * 16);
        stats.branches[i].taken = getI64(buf.data() + i * 16 + 8);
    }
    return stats;
}

bool
RunStats::sniffBinary(std::istream &is)
{
    char head[sizeof(kBinaryMagic)] = {};
    is.read(head, sizeof(head));
    const bool full = static_cast<size_t>(is.gcount()) == sizeof(head);
    const bool magic =
        full && std::memcmp(head, kBinaryMagic, sizeof(head)) == 0;
    is.clear();
    is.seekg(0, std::ios::beg);
    return magic;
}

RunStats
RunStats::load(std::istream &is)
{
    std::string tag, version;
    is >> tag >> version;
    if (tag != "runstats" || version != "v1")
        throw Error("RunStats::load: bad header");
    RunStats stats;
    is >> stats.instructions >> stats.cond_branches >> stats.taken_branches >>
        stats.jumps >> stats.direct_calls >> stats.indirect_calls >>
        stats.direct_returns >> stats.indirect_returns >> stats.selects >>
        stats.exit_code;
    size_t n = 0;
    is >> n;
    if (!is || n > (1u << 26))
        throw Error("RunStats::load: corrupt branch table size");
    stats.branches.resize(n);
    for (auto &b : stats.branches)
        is >> b.executed >> b.taken;
    if (!is)
        throw Error("RunStats::load: truncated input");
    return stats;
}

} // namespace ifprob::vm

#ifndef IFPROB_VM_MACHINE_H
#define IFPROB_VM_MACHINE_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "isa/program.h"
#include "vm/decode.h"
#include "vm/observer.h"
#include "vm/run_stats.h"

namespace ifprob::vm {

namespace jit {
class TierController;
struct JitBuildStats;
}

/** Execution limits; exceeding either raises RuntimeError. */
struct RunLimits
{
    int64_t max_instructions = 1ll << 40;
    int max_call_depth = 65536;
};

/**
 * Trace-tier accounting for one run. Zero for the switch and fast
 * engines. Deliberately OUTSIDE the engine contract: RunStats, output,
 * observer events, and traps are bit-identical across engines, while
 * these counters describe *how* the trace engine got there (entries,
 * instructions retired inside compiled traces, completed passes, guard
 * volume, side exits, pre-trap exits).
 */
struct JitRunStats
{
    int64_t trace_entries = 0;
    int64_t trace_instructions = 0;
    int64_t trace_loop_iterations = 0; ///< fully committed passes
    int64_t guards = 0;                ///< guard (branch) executions
    int64_t side_exits = 0;            ///< guard mispredict exits
    int64_t trap_exits = 0;            ///< exits handing a trap back
};

/** The result of one run: counters plus everything the program printed. */
struct RunResult
{
    RunStats stats;
    std::string output;
    JitRunStats jit; ///< trace engine only; zeros otherwise
};

/**
 * Which interpreter core executes the program (see docs/vm.md).
 *
 * kFast pre-decodes the instruction stream at Machine construction and
 * dispatches through a dense handler table (computed goto where the
 * compiler supports it); kSwitch is the original decode-on-the-fly
 * switch interpreter, kept as the behavioural reference; kTrace layers
 * the profile-guided superblock tier (src/vm/jit/) on top of the fast
 * core. All three produce bit-for-bit identical RunStats, output,
 * observer event sequences, and trap messages — the differential tests
 * in tests/test_vm_engines.cpp hold them to that.
 */
enum class Engine : uint8_t {
    kFast,
    kSwitch,
    kTrace,
};

/** Engine tag for reports and trace spans ("fast"/"switch"/"trace"). */
std::string_view engineName(Engine engine);

/**
 * Parse an engine name as IFPROB_VM_ENGINE spells them: "fast",
 * "switch" (alias "reference"), "trace". Any other value — including
 * empty — raises Error naming the valid engines.
 */
Engine parseEngineName(std::string_view name);

/**
 * The process default: Engine::kFast, unless the IFPROB_VM_ENGINE
 * environment variable selects another engine (parseEngineName). An
 * unknown value raises Error. Read once and cached.
 */
Engine defaultEngine();

/**
 * The simulated machine: executes an isa::Program against an input byte
 * stream, counting every RISC operation by category (MFPixie) and every
 * conditional branch direction by static site (IFPROBBER).
 *
 * Registers are 64-bit patterns, zero-initialized per frame. Data memory
 * is a flat array of 64-bit words. Runtime violations (bad address,
 * division by zero, call-depth or instruction-budget overflow, argument
 * count mismatch on direct or indirect calls) raise RuntimeError with a
 * function+pc context string.
 */
class Machine
{
  public:
    /** @p program must outlive the machine. Constructing with the fast
     *  engine pre-decodes the program (recorded in vm.decode_micros). */
    explicit Machine(const isa::Program &program,
                     Engine engine = defaultEngine());

    /** Deleted: binding a temporary would leave a dangling reference
     *  (e.g. Machine(compile(src))). Name the program first. */
    explicit Machine(isa::Program &&, Engine = defaultEngine()) = delete;

    /**
     * Run the program to completion over @p input.
     *
     * Each run is observable through the obs layer: a "vm.run" trace
     * span when IFPROB_TRACE is set, and vm.* registry counters
     * (instructions retired, run wall-clock, observer-callback volume)
     * always — all recorded once per run, never inside the dispatch
     * loop, so the interpreter's throughput is unaffected. A trapped
     * run records the statistics accumulated up to the trap.
     *
     * @param observer optional per-branch event sink (may be nullptr).
     */
    RunResult run(std::string_view input, const RunLimits &limits = {},
                  BranchObserver *observer = nullptr) const;

    Engine engine() const { return engine_; }

    /** Decode-time accounting; zeros for the switch engine. */
    const DecodeStats &decodeStats() const { return decoded_.stats; }
    int64_t decodeMicros() const { return decoded_.stats.decode_micros; }

    /** Trace-tier compile wall-clock so far; 0 for other engines. */
    int64_t jitCompileMicros() const;

    /** Build accounting of the live trace tier; zeros for other
     *  engines. (Callers include vm/jit/trace_unit.h for the type.) */
    jit::JitBuildStats jitBuildStats() const;

  private:
    const isa::Program &program_;
    Engine engine_;
    DecodedProgram decoded_; ///< populated for kFast and kTrace
    std::shared_ptr<jit::TierController> tier_; ///< kTrace only
};

} // namespace ifprob::vm

#endif // IFPROB_VM_MACHINE_H

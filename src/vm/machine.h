#ifndef IFPROB_VM_MACHINE_H
#define IFPROB_VM_MACHINE_H

#include <cstdint>
#include <string>
#include <string_view>

#include "isa/program.h"
#include "vm/observer.h"
#include "vm/run_stats.h"

namespace ifprob::vm {

/** Execution limits; exceeding either raises RuntimeError. */
struct RunLimits
{
    int64_t max_instructions = 1ll << 40;
    int max_call_depth = 65536;
};

/** The result of one run: counters plus everything the program printed. */
struct RunResult
{
    RunStats stats;
    std::string output;
};

/**
 * The simulated machine: executes an isa::Program against an input byte
 * stream, counting every RISC operation by category (MFPixie) and every
 * conditional branch direction by static site (IFPROBBER).
 *
 * Registers are 64-bit patterns, zero-initialized per frame. Data memory
 * is a flat array of 64-bit words. Runtime violations (bad address,
 * division by zero, call-depth or instruction-budget overflow, argument
 * count mismatch on indirect calls) raise RuntimeError with a
 * function+pc context string.
 */
class Machine
{
  public:
    /** @p program must outlive the machine. */
    explicit Machine(const isa::Program &program);

    /** Deleted: binding a temporary would leave a dangling reference
     *  (e.g. Machine(compile(src))). Name the program first. */
    explicit Machine(isa::Program &&) = delete;

    /**
     * Run the program to completion over @p input.
     *
     * Each run is observable through the obs layer: a "vm.run" trace
     * span when IFPROB_TRACE is set, and vm.* registry counters
     * (instructions retired, run wall-clock, observer-callback volume)
     * always — all recorded once per run, never inside the dispatch
     * loop, so the interpreter's throughput is unaffected.
     *
     * @param observer optional per-branch event sink (may be nullptr).
     */
    RunResult run(std::string_view input, const RunLimits &limits = {},
                  BranchObserver *observer = nullptr) const;

  private:
    RunResult runImpl(std::string_view input, const RunLimits &limits,
                      BranchObserver *observer) const;

    const isa::Program &program_;
};

} // namespace ifprob::vm

#endif // IFPROB_VM_MACHINE_H

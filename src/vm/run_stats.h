#ifndef IFPROB_VM_RUN_STATS_H
#define IFPROB_VM_RUN_STATS_H

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace ifprob::vm {

/** Per-branch-site counters: the IFPROBBER's (encountered, taken) pair. */
struct BranchCounts
{
    int64_t executed = 0;
    int64_t taken = 0;
};

/**
 * Everything one run of a program produces for the experiment machinery:
 * the MFPixie-style dynamic instruction counters by category, plus the
 * IFPROBBER-style per-branch-site direction counters.
 */
struct RunStats
{
    int64_t instructions = 0;     ///< every executed RISC operation
    int64_t cond_branches = 0;    ///< executed kBr
    int64_t taken_branches = 0;   ///< kBr that went to the taken target
    int64_t jumps = 0;            ///< executed kJmp
    int64_t direct_calls = 0;     ///< executed kCall
    int64_t indirect_calls = 0;   ///< executed kICall
    int64_t direct_returns = 0;   ///< kRet matching a kCall
    int64_t indirect_returns = 0; ///< kRet matching a kICall
    int64_t selects = 0;          ///< executed kSelect
    int64_t exit_code = 0;        ///< main()'s return value (0 for kHalt)

    /** Indexed by static branch site id. */
    std::vector<BranchCounts> branches;

    /** Dynamic fraction of executed instructions that were conditional
     *  branches (the branch density that motivates the paper's
     *  instructions-per-mispredict measure). */
    double branchDensity() const;

    /** Percent of executed conditional branches that were taken. */
    double percentTaken() const;

    /** Merge another run's counters into this one (the IFPROBBER database
     *  accumulation across runs). Branch tables must be the same size. */
    void accumulate(const RunStats &other);

    /** Plain-text serialization (human-inspectable; retained as the
     *  load fallback for cache directories written before the binary
     *  format existed). */
    void save(std::ostream &os) const;
    static RunStats load(std::istream &is);

    /**
     * Versioned little-endian binary cache serialization: an 8-byte
     * magic, a u32 format version, a u32 reserved word, the compiled
     * image's u64 fingerprint, the ten i64 scalar counters, a u64 site
     * count, then (executed, taken) i64 pairs. Fixed-width fields mean
     * the Runner's warm start is a handful of bulk reads instead of
     * iostream text parsing. See docs/analysis.md for the layout.
     */
    static constexpr char kBinaryMagic[8] = {'I', 'F', 'P', 'R',
                                             'O', 'B', 'R', 'S'};
    static constexpr uint32_t kBinaryVersion = 1;

    /** Write the binary form (open @p os with std::ios::binary). */
    void saveBinary(std::ostream &os, uint64_t fingerprint) const;

    /**
     * Read the binary form. Throws Error on a bad magic, an unsupported
     * version, truncation, an implausible site count, or — when
     * @p expected_fingerprint is nonzero — a fingerprint mismatch.
     */
    static RunStats loadBinary(std::istream &is,
                               uint64_t expected_fingerprint = 0);

    /** True when @p is starts with the binary magic; the stream
     *  position is restored either way (format sniff for loaders that
     *  must fall back to the text format). */
    static bool sniffBinary(std::istream &is);
};

} // namespace ifprob::vm

#endif // IFPROB_VM_RUN_STATS_H

#ifndef IFPROB_VM_ENGINE_H
#define IFPROB_VM_ENGINE_H

#include <string_view>

#include "isa/program.h"
#include "vm/decode.h"
#include "vm/machine.h"

namespace ifprob::vm {

namespace jit {
struct TraceProgram;
}

/**
 * The interpreter cores behind Machine::run (see docs/vm.md).
 *
 * All fill @p result in place — stats, program output, exit code — so
 * a run that traps leaves its partial statistics behind for
 * Machine::run to record. Their observable behaviour is bit-for-bit
 * identical by contract: same RunStats (including per-site counters),
 * same output, same observer event sequence, and the same RuntimeError
 * message at the same instruction count on every trap path
 * (tests/test_vm_engines.cpp enforces this differentially).
 */

/** Reference core: decode-on-the-fly switch over isa::Instruction. */
void runSwitchEngine(const isa::Program &program, std::string_view input,
                     const RunLimits &limits, BranchObserver *observer,
                     RunResult &result);

/**
 * Fast core: threaded dispatch over the pre-decoded stream, run loops
 * specialized on observer presence, block-granular fuel checks.
 */
void runFastEngine(const isa::Program &program,
                   const DecodedProgram &decoded, std::string_view input,
                   const RunLimits &limits, BranchObserver *observer,
                   RunResult &result);

/**
 * Trace-tier core: the fast core running @p tier's patched stream,
 * entering compiled superblocks (jit::runTraceUnit) at their heads and
 * falling back to plain fast-path dispatch everywhere else. The tier's
 * RunResult::jit counters are filled in addition to the contract
 * fields.
 */
void runTraceEngine(const isa::Program &program,
                    const jit::TraceProgram &tier, std::string_view input,
                    const RunLimits &limits, BranchObserver *observer,
                    RunResult &result);

/** True when the fast core was compiled with computed-goto dispatch
 *  (GCC/Clang labels-as-values); false for the portable switch build. */
bool fastEngineUsesComputedGoto();

} // namespace ifprob::vm

#endif // IFPROB_VM_ENGINE_H

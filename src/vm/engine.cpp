#include "vm/engine.h"

#include <algorithm>
#include <vector>

#include "isa/alu.h"
#include "support/error.h"
#include "support/str.h"
#include "vm/engine_internal.h"
#include "vm/jit/executor.h"
#include "vm/jit/trace_unit.h"

// Dispatch strategy for the fast core: labels-as-values (computed goto)
// on GCC/Clang, portable dense switch elsewhere or when forced off for
// comparison (-DIFPROB_VM_FORCE_SWITCH_DISPATCH).
#if !defined(IFPROB_VM_FORCE_SWITCH_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define IFPROB_VM_COMPUTED_GOTO 1
#else
#define IFPROB_VM_COMPUTED_GOTO 0
#endif

namespace ifprob::vm {

using isa::Instruction;
using isa::Opcode;

// Frame/ExecState/trapError/pushFrame live in engine_internal.h so the
// trace-tier executor (jit/executor.cpp) shares them.
using detail::ExecState;
using detail::Frame;
using detail::pushFrame;
using detail::trapError;

bool
fastEngineUsesComputedGoto()
{
    return IFPROB_VM_COMPUTED_GOTO != 0;
}

// ---------------------------------------------------------------------------
// Reference core: decode-on-the-fly switch over isa::Instruction. This is
// the behavioural baseline the fast core is differentially tested against.
// ---------------------------------------------------------------------------

void
runSwitchEngine(const isa::Program &program, std::string_view input,
                const RunLimits &limits, BranchObserver *observer,
                RunResult &result)
{
    RunStats &stats = result.stats;
    stats.branches.resize(program.branch_sites.size());

    // Data memory.
    std::vector<int64_t> memory(static_cast<size_t>(program.memory_words),
                                0);
    for (const auto &di : program.data_init)
        memory[static_cast<size_t>(di.address)] = di.value;

    // Register stack shared by all frames.
    std::vector<int64_t> reg_stack;
    reg_stack.reserve(1 << 16);

    std::vector<Frame> frames;
    frames.reserve(256);

    // Call argument staging area (kArg ... kCall must be contiguous, which
    // the code generator guarantees).
    int64_t pending_args[kMaxArgs] = {};
    int pending_count = 0;

    size_t input_pos = 0;

    auto push_frame = [&](int func_index, int ret_dst, bool via_icall) {
        const isa::Function &fn =
            program.functions[static_cast<size_t>(func_index)];
        Frame frame;
        frame.func_index = func_index;
        frame.pc = 0;
        frame.reg_base = reg_stack.size();
        frame.ret_dst = ret_dst;
        frame.via_icall = via_icall;
        reg_stack.resize(reg_stack.size() +
                             static_cast<size_t>(fn.num_regs),
                         0);
        for (int i = 0; i < fn.num_params && i < pending_count; ++i)
            reg_stack[frame.reg_base + static_cast<size_t>(i)] =
                pending_args[i];
        frames.push_back(frame);
    };

    auto trap = [&](const std::string &msg) -> RuntimeError {
        return trapError(program, frames, msg);
    };

    push_frame(program.entry, -1, false);

    while (!frames.empty()) {
        Frame &frame = frames.back();
        const isa::Function &fn =
            program.functions[static_cast<size_t>(frame.func_index)];
        const Instruction *code = fn.code.data();
        const int code_size = static_cast<int>(fn.code.size());
        int64_t *regs = reg_stack.data() + frame.reg_base;
        int pc = frame.pc;

        // Inner loop: run within this frame until a call or return.
        bool switch_frame = false;
        while (!switch_frame) {
            if (pc < 0 || pc >= code_size) {
                frame.pc = pc;
                throw trap("pc out of range");
            }
            const Instruction &insn = code[pc];
            ++stats.instructions;
            if (stats.instructions > limits.max_instructions) {
                frame.pc = pc;
                throw trap(strPrintf(
                    "instruction budget exceeded (%lld)",
                    static_cast<long long>(limits.max_instructions)));
            }

            switch (insn.op) {
              case Opcode::kMovI:
              case Opcode::kMovF:
                regs[insn.a] = insn.imm;
                ++pc;
                break;
              case Opcode::kMov:
                regs[insn.a] = regs[insn.b];
                ++pc;
                break;
              case Opcode::kLoad: {
                int64_t addr =
                    (insn.b == -1 ? 0 : regs[insn.b]) + insn.imm;
                if (addr < 0 || addr >= program.memory_words) {
                    frame.pc = pc;
                    throw trap(strPrintf("load address %lld out of "
                                         "[0,%lld)",
                                         static_cast<long long>(addr),
                                         static_cast<long long>(
                                             program.memory_words)));
                }
                regs[insn.a] = memory[static_cast<size_t>(addr)];
                ++pc;
                break;
              }
              case Opcode::kStore: {
                int64_t addr =
                    (insn.b == -1 ? 0 : regs[insn.b]) + insn.imm;
                if (addr < 0 || addr >= program.memory_words) {
                    frame.pc = pc;
                    throw trap(strPrintf("store address %lld out of "
                                         "[0,%lld)",
                                         static_cast<long long>(addr),
                                         static_cast<long long>(
                                             program.memory_words)));
                }
                memory[static_cast<size_t>(addr)] = regs[insn.a];
                ++pc;
                break;
              }
              case Opcode::kBr: {
                ++stats.cond_branches;
                bool taken = regs[insn.a] != 0;
                auto &site = stats.branches[static_cast<size_t>(insn.imm)];
                ++site.executed;
                if (taken) {
                    ++site.taken;
                    ++stats.taken_branches;
                    pc = insn.b;
                } else {
                    pc = insn.c;
                }
                if (observer) {
                    observer->onBranch(static_cast<int>(insn.imm), taken,
                                       stats.instructions);
                }
                break;
              }
              case Opcode::kJmp:
                ++stats.jumps;
                pc = insn.a;
                break;
              case Opcode::kArg:
                if (insn.a < 0) {
                    frame.pc = pc;
                    throw trap("negative call argument index");
                }
                if (insn.a >= kMaxArgs) {
                    frame.pc = pc;
                    throw trap("too many call arguments");
                }
                pending_args[insn.a] = regs[insn.b];
                pending_count = std::max(pending_count, insn.a + 1);
                ++pc;
                break;
              case Opcode::kCall: {
                ++stats.direct_calls;
                const isa::Function &callee =
                    program.functions[static_cast<size_t>(insn.b)];
                if (callee.num_params != pending_count) {
                    frame.pc = pc;
                    throw trap(strPrintf(
                        "call to %s: %d args staged, %d expected",
                        callee.name.c_str(), pending_count,
                        callee.num_params));
                }
                if (static_cast<int>(frames.size()) >=
                    limits.max_call_depth) {
                    frame.pc = pc;
                    throw trap("call stack overflow");
                }
                frame.pc = pc + 1; // resume point
                push_frame(insn.b, insn.a, false);
                pending_count = 0;
                switch_frame = true;
                break;
              }
              case Opcode::kICall: {
                ++stats.indirect_calls;
                int64_t target = regs[insn.b];
                if (target < 0 ||
                    target >= static_cast<int64_t>(
                                  program.functions.size())) {
                    frame.pc = pc;
                    throw trap(strPrintf("indirect call to bad function "
                                         "index %lld",
                                         static_cast<long long>(target)));
                }
                const isa::Function &callee =
                    program.functions[static_cast<size_t>(target)];
                if (callee.num_params != pending_count) {
                    frame.pc = pc;
                    throw trap(strPrintf(
                        "indirect call to %s: %d args staged, %d expected",
                        callee.name.c_str(), pending_count,
                        callee.num_params));
                }
                if (static_cast<int>(frames.size()) >=
                    limits.max_call_depth) {
                    frame.pc = pc;
                    throw trap("call stack overflow");
                }
                frame.pc = pc + 1;
                push_frame(static_cast<int>(target), insn.a, true);
                pending_count = 0;
                switch_frame = true;
                if (observer)
                    observer->onUnavoidableBreak(stats.instructions);
                break;
              }
              case Opcode::kRet: {
                // The entry frame's return ends the run; it has no
                // matching call, so it is not counted as a return.
                if (frames.size() > 1) {
                    if (frames.back().via_icall) {
                        ++stats.indirect_returns;
                        if (observer)
                            observer->onUnavoidableBreak(
                                stats.instructions);
                    } else {
                        ++stats.direct_returns;
                    }
                }
                int64_t value = insn.a == -1 ? 0 : regs[insn.a];
                int ret_dst = frame.ret_dst;
                reg_stack.resize(frame.reg_base);
                frames.pop_back();
                if (frames.empty()) {
                    stats.exit_code = value;
                    return;
                }
                if (ret_dst != -1) {
                    Frame &caller = frames.back();
                    reg_stack[caller.reg_base +
                              static_cast<size_t>(ret_dst)] = value;
                }
                switch_frame = true;
                break;
              }
              case Opcode::kSelect:
                ++stats.selects;
                regs[insn.a] = regs[insn.b] != 0 ? regs[insn.c]
                                                 : regs[insn.d];
                ++pc;
                break;
              case Opcode::kGetc:
                regs[insn.a] = input_pos < input.size()
                                   ? static_cast<unsigned char>(
                                         input[input_pos++])
                                   : -1;
                ++pc;
                break;
              case Opcode::kPutc:
                result.output.push_back(
                    static_cast<char>(regs[insn.a] & 0xff));
                ++pc;
                break;
              case Opcode::kPutF:
                result.output += strPrintf("%.6g", isa::asF(regs[insn.a]));
                ++pc;
                break;
              case Opcode::kHalt:
                stats.exit_code = 0;
                return;
              case Opcode::kNop:
                ++pc;
                break;
              default: {
                if (isa::isBinaryAlu(insn.op)) {
                    auto v = isa::evalBinaryAlu(insn.op, regs[insn.b],
                                                regs[insn.c]);
                    if (!v) {
                        frame.pc = pc;
                        throw trap(std::string("integer division by zero "
                                               "in ") +
                                   std::string(isa::opcodeName(insn.op)));
                    }
                    regs[insn.a] = *v;
                    ++pc;
                    break;
                }
                if (isa::isUnaryAlu(insn.op)) {
                    auto v = isa::evalUnaryAlu(insn.op, regs[insn.b]);
                    if (!v) {
                        frame.pc = pc;
                        throw trap("unevaluable unary op");
                    }
                    regs[insn.a] = *v;
                    ++pc;
                    break;
                }
                frame.pc = pc;
                throw trap("unimplemented opcode");
              }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fast core: pre-decoded threaded dispatch over an instruction pointer.
//
// The run loop is instantiated four ways: HasObserver specializes away
// the per-branch callback check for profiling-off runs, and Checked
// selects between the unchecked fast loop (block-granular fuel: yields
// once icount crosses max_instructions - max_block_cost, so no executed
// instruction can overshoot the budget) and the per-instruction-checked
// tail loop, which dispatches each slot's `unfused` handler and thus
// reproduces the reference engine's trap point and message exactly.
// ---------------------------------------------------------------------------

namespace {

/** The decoded pc of the instruction @p insn points at. */
#define CUR_PC() static_cast<int>(insn - code)

// TRAP flushes the live instruction count into the stats (the partial
// statistics Machine::run records for trapped runs) before throwing
// with the same function+pc context string as the reference engine.
#define TRAP(msg_expr)                                                    \
    do {                                                                  \
        s.frames.back().pc = CUR_PC();                                    \
        s.icount = icount;                                                \
        stats.instructions = icount;                                      \
        throw trapError(s.program, s.frames, (msg_expr));                 \
    } while (0)

// Per-instruction accounting. Only the Checked instantiation compares
// against the budget — the fast loop's yield checks make overshoot
// impossible, so its handlers pay a single register increment.
#define COUNT1()                                                          \
    do {                                                                  \
        ++icount;                                                         \
        if (Checked && icount > max_insns)                                \
            TRAP(strPrintf("instruction budget exceeded (%lld)",          \
                           static_cast<long long>(max_insns)));           \
    } while (0)

// Fast-loop fuel checkpoint, placed on every intra-frame control
// transfer (the only way icount grows without passing frame_switch).
// `insn` already points at the transfer target when this runs.
#define MAYBE_YIELD()                                                     \
    do {                                                                  \
        if (!Checked && icount > fast_limit) {                            \
            s.frames.back().pc = CUR_PC();                                \
            s.icount = icount;                                            \
            return;                                                       \
        }                                                                 \
    } while (0)

#if IFPROB_VM_COMPUTED_GOTO
#define DEF(h) L_##h:
#define NEXT() goto *kLabels[Checked ? insn->unfused : insn->handler]
// Dispatch the current slot's single-operation handler regardless of
// fusion/patching — used after a trace hands back an instruction that
// must execute exactly once on the unfused path (pre-trap exits).
#define DISPATCH_UNFUSED() goto *kLabels[insn->unfused]
// Dispatch an explicit handler index for the current slot (the trace
// head's pre-patch handler when fuel rules out entering the trace).
#define DISPATCH_ORIG(h) goto *kLabels[(h)]
#else
#define DEF(h) case k##h:
#define NEXT() goto dispatch
#define DISPATCH_UNFUSED()                                                \
    do {                                                                  \
        dispatch_h = insn->unfused;                                       \
        goto dispatch_direct;                                             \
    } while (0)
#define DISPATCH_ORIG(h)                                                  \
    do {                                                                  \
        dispatch_h = (h);                                                 \
        goto dispatch_direct;                                             \
    } while (0)
#endif

#define H_BINARY(h, OPC)                                                  \
    DEF(h)                                                                \
    {                                                                     \
        COUNT1();                                                         \
        regs[insn->a] = *isa::evalBinaryAlu(                              \
            Opcode::OPC, regs[insn->b], regs[insn->c]);                   \
        ++insn;                                                           \
    }                                                                     \
    NEXT();

#define H_BINARY_DIV(h, OPC)                                              \
    DEF(h)                                                                \
    {                                                                     \
        COUNT1();                                                         \
        auto v = isa::evalBinaryAlu(Opcode::OPC, regs[insn->b],           \
                                    regs[insn->c]);                       \
        if (!v)                                                           \
            TRAP(std::string("integer division by zero in ") +            \
                 std::string(isa::opcodeName(Opcode::OPC)));              \
        regs[insn->a] = *v;                                               \
        ++insn;                                                           \
    }                                                                     \
    NEXT();

#define H_UNARY(h, OPC)                                                   \
    DEF(h)                                                                \
    {                                                                     \
        COUNT1();                                                         \
        regs[insn->a] = *isa::evalUnaryAlu(Opcode::OPC, regs[insn->b]);   \
        ++insn;                                                           \
    }                                                                     \
    NEXT();

// Shared tail of every fused group ending in a branch: per-site
// accounting, redirect, observer callback — identical to dispatching
// the group's instructions separately. @p br points at the kBr slot and
// @p cond holds the already-written test result.
#define FUSED_BRANCH_TAIL(br, cond)                                       \
    do {                                                                  \
        ++stats.cond_branches;                                            \
        BranchCounts &site = sites[static_cast<size_t>((br)->imm)];       \
        ++site.executed;                                                  \
        if ((cond) != 0) {                                                \
            ++site.taken;                                                 \
            ++stats.taken_branches;                                       \
            insn = code + (br)->b;                                        \
        } else {                                                          \
            insn = code + (br)->c;                                        \
        }                                                                 \
        if (HasObserver)                                                  \
            s.observer->onBranch(static_cast<int>((br)->imm),             \
                                 (cond) != 0, icount);                    \
        MAYBE_YIELD();                                                    \
    } while (0)

// Superinstruction: compare + branch on its result in one dispatch. The
// compare's destination is still written (later code may read it) and
// both component instructions are counted. Never dispatched by the
// Checked loop (it uses the unfused indices).
#define H_FUSE_CMP_BR(h, OPC)                                             \
    DEF(h)                                                                \
    {                                                                     \
        icount += 2;                                                      \
        const DecodedInsn *br = insn + 1;                                 \
        const int64_t cond = *isa::evalBinaryAlu(                         \
            Opcode::OPC, regs[insn->b], regs[insn->c]);                   \
        regs[insn->a] = cond;                                             \
        FUSED_BRANCH_TAIL(br, cond);                                      \
    }                                                                     \
    NEXT();

// Superinstruction: movI staging a constant into the next ALU op's
// src2. The constant's register is written first, then the ALU operands
// are read back from the frame, so aliasing (ALU src1 or dst being the
// constant's register) behaves exactly as the unfused pair.
#define H_FUSE_MOVI(h, OPC)                                               \
    DEF(h)                                                                \
    {                                                                     \
        icount += 2;                                                      \
        const DecodedInsn *alu = insn + 1;                                \
        regs[insn->a] = insn->imm;                                        \
        regs[alu->a] = *isa::evalBinaryAlu(Opcode::OPC, regs[alu->b],     \
                                           regs[alu->c]);                 \
        insn += 2;                                                        \
    }                                                                     \
    NEXT();

// Superinstruction: movI + test-against-constant + branch — the shape
// of `if (x OP C)` and counted-loop conditions. Three instructions,
// one dispatch.
#define H_FUSE_MOVI_BR(h, OPC)                                            \
    DEF(h)                                                                \
    {                                                                     \
        icount += 3;                                                      \
        const DecodedInsn *alu = insn + 1;                                \
        const DecodedInsn *br = insn + 2;                                 \
        regs[insn->a] = insn->imm;                                        \
        const int64_t cond = *isa::evalBinaryAlu(                         \
            Opcode::OPC, regs[alu->b], regs[alu->c]);                     \
        regs[alu->a] = cond;                                              \
        FUSED_BRANCH_TAIL(br, cond);                                      \
    }                                                                     \
    NEXT();

template <bool HasObserver, bool Checked>
void
executeLoop(ExecState &s)
{
    RunStats &stats = s.result.stats;
    BranchCounts *const sites = stats.branches.data();
    int64_t *const mem = s.memory.data();
    const int64_t memory_words = s.program.memory_words;
    const int64_t max_insns = s.limits.max_instructions;
    const int64_t fast_limit = max_insns - s.decoded.max_block_cost;

    const DecodedInsn *code = nullptr;
    const DecodedInsn *insn = nullptr;
    int64_t *regs = nullptr;
    int64_t icount = s.icount;
    int64_t ret_value = 0;

#if IFPROB_VM_COMPUTED_GOTO
    static const void *kLabels[kNumHandlers] = {
#define IFPROB_VM_LABEL_ADDR(h) &&L_##h,
        IFPROB_VM_HANDLERS(IFPROB_VM_LABEL_ADDR)
#undef IFPROB_VM_LABEL_ADDR
    };
#endif

    goto frame_switch;

frame_switch:
    // Reached after every call and return (and on entry/resume). The
    // fast loop yields here and at intra-frame transfers once the
    // remaining fuel no longer covers a worst-case straight-line block.
    if (!Checked && icount > fast_limit) {
        s.icount = icount;
        return;
    }
    {
        const Frame &fr = s.frames.back();
        code = s.decoded.functions[static_cast<size_t>(fr.func_index)]
                   .code.data();
        regs = s.reg_stack.data() + fr.reg_base;
        insn = code + fr.pc;
    }
#if IFPROB_VM_COMPUTED_GOTO
    NEXT();
#else
    uint16_t dispatch_h;
dispatch:
    dispatch_h = Checked ? insn->unfused : insn->handler;
dispatch_direct:
    switch (dispatch_h) {
#endif

    H_BINARY(HAdd, kAdd)
    H_BINARY(HSub, kSub)
    H_BINARY(HMul, kMul)
    H_BINARY_DIV(HDiv, kDiv)
    H_BINARY_DIV(HRem, kRem)
    H_BINARY(HAnd, kAnd)
    H_BINARY(HOr, kOr)
    H_BINARY(HXor, kXor)
    H_BINARY(HShl, kShl)
    H_BINARY(HShr, kShr)
    H_BINARY(HCmpEq, kCmpEq)
    H_BINARY(HCmpNe, kCmpNe)
    H_BINARY(HCmpLt, kCmpLt)
    H_BINARY(HCmpLe, kCmpLe)
    H_BINARY(HCmpGt, kCmpGt)
    H_BINARY(HCmpGe, kCmpGe)
    H_BINARY(HFAdd, kFAdd)
    H_BINARY(HFSub, kFSub)
    H_BINARY(HFMul, kFMul)
    H_BINARY(HFDiv, kFDiv)
    H_BINARY(HFCmpEq, kFCmpEq)
    H_BINARY(HFCmpNe, kFCmpNe)
    H_BINARY(HFCmpLt, kFCmpLt)
    H_BINARY(HFCmpLe, kFCmpLe)
    H_BINARY(HFCmpGt, kFCmpGt)
    H_BINARY(HFCmpGe, kFCmpGe)

    H_UNARY(HNeg, kNeg)
    H_UNARY(HNot, kNot)
    H_UNARY(HFNeg, kFNeg)
    H_UNARY(HFAbs, kFAbs)
    H_UNARY(HFSqrt, kFSqrt)
    H_UNARY(HFExp, kFExp)
    H_UNARY(HFLog, kFLog)
    H_UNARY(HFSin, kFSin)
    H_UNARY(HFCos, kFCos)
    H_UNARY(HItoF, kItoF)
    H_UNARY(HFtoI, kFtoI)

    DEF(HMov)
    {
        COUNT1();
        regs[insn->a] = regs[insn->b];
        ++insn;
    }
    NEXT();

    DEF(HMovI)
    {
        COUNT1();
        regs[insn->a] = insn->imm;
        ++insn;
    }
    NEXT();

    DEF(HLoadReg)
    {
        COUNT1();
        const int64_t addr = regs[insn->b] + insn->imm;
        if (addr < 0 || addr >= memory_words)
            TRAP(strPrintf("load address %lld out of [0,%lld)",
                           static_cast<long long>(addr),
                           static_cast<long long>(memory_words)));
        regs[insn->a] = mem[addr];
        ++insn;
    }
    NEXT();

    DEF(HLoadAbs)
    {
        COUNT1();
        regs[insn->a] = mem[insn->imm];
        ++insn;
    }
    NEXT();

    DEF(HLoadTrap)
    {
        COUNT1();
        TRAP(strPrintf("load address %lld out of [0,%lld)",
                       static_cast<long long>(insn->imm),
                       static_cast<long long>(memory_words)));
    }
    NEXT();

    DEF(HStoreReg)
    {
        COUNT1();
        const int64_t addr = regs[insn->b] + insn->imm;
        if (addr < 0 || addr >= memory_words)
            TRAP(strPrintf("store address %lld out of [0,%lld)",
                           static_cast<long long>(addr),
                           static_cast<long long>(memory_words)));
        mem[addr] = regs[insn->a];
        ++insn;
    }
    NEXT();

    DEF(HStoreAbs)
    {
        COUNT1();
        mem[insn->imm] = regs[insn->a];
        ++insn;
    }
    NEXT();

    DEF(HStoreTrap)
    {
        COUNT1();
        TRAP(strPrintf("store address %lld out of [0,%lld)",
                       static_cast<long long>(insn->imm),
                       static_cast<long long>(memory_words)));
    }
    NEXT();

    DEF(HBr)
    {
        COUNT1();
        ++stats.cond_branches;
        const bool taken = regs[insn->a] != 0;
        BranchCounts &site = sites[static_cast<size_t>(insn->imm)];
        ++site.executed;
        const DecodedInsn *const br = insn;
        if (taken) {
            ++site.taken;
            ++stats.taken_branches;
            insn = code + br->b;
        } else {
            insn = code + br->c;
        }
        if (HasObserver)
            s.observer->onBranch(static_cast<int>(br->imm), taken,
                                 icount);
        MAYBE_YIELD();
    }
    NEXT();

    DEF(HJmp)
    {
        COUNT1();
        ++stats.jumps;
        insn = code + insn->a;
        MAYBE_YIELD();
    }
    NEXT();

    DEF(HArg)
    {
        COUNT1();
        s.pending_args[insn->a] = regs[insn->b];
        s.pending_count =
            std::max(s.pending_count, static_cast<int>(insn->a) + 1);
        ++insn;
    }
    NEXT();

    DEF(HArgTrap)
    {
        COUNT1();
        TRAP(insn->a < 0 ? "negative call argument index"
                         : "too many call arguments");
    }
    NEXT();

    DEF(HCall)
    {
        COUNT1();
        ++stats.direct_calls;
        const isa::Function &callee =
            s.program.functions[static_cast<size_t>(insn->b)];
        if (callee.num_params != s.pending_count)
            TRAP(strPrintf("call to %s: %d args staged, %d expected",
                           callee.name.c_str(), s.pending_count,
                           callee.num_params));
        if (static_cast<int>(s.frames.size()) >= s.limits.max_call_depth)
            TRAP("call stack overflow");
        s.frames.back().pc = CUR_PC() + 1; // resume point
        pushFrame(s, insn->b, insn->a, false);
        s.pending_count = 0;
        goto frame_switch;
    }

    DEF(HICall)
    {
        COUNT1();
        ++stats.indirect_calls;
        const int64_t target = regs[insn->b];
        if (target < 0 ||
            target >= static_cast<int64_t>(s.program.functions.size()))
            TRAP(strPrintf("indirect call to bad function index %lld",
                           static_cast<long long>(target)));
        const isa::Function &callee =
            s.program.functions[static_cast<size_t>(target)];
        if (callee.num_params != s.pending_count)
            TRAP(strPrintf(
                "indirect call to %s: %d args staged, %d expected",
                callee.name.c_str(), s.pending_count, callee.num_params));
        if (static_cast<int>(s.frames.size()) >= s.limits.max_call_depth)
            TRAP("call stack overflow");
        s.frames.back().pc = CUR_PC() + 1;
        pushFrame(s, static_cast<int>(target), insn->a, true);
        s.pending_count = 0;
        if (HasObserver)
            s.observer->onUnavoidableBreak(icount);
        goto frame_switch;
    }

    DEF(HRet)
    {
        COUNT1();
        ret_value = regs[insn->a];
        goto do_return;
    }

    DEF(HRetVoid)
    {
        COUNT1();
        ret_value = 0;
        goto do_return;
    }

do_return:
    {
        // The entry frame's return ends the run; it has no matching
        // call, so it is not counted as a return.
        const Frame &frame = s.frames.back();
        if (s.frames.size() > 1) {
            if (frame.via_icall) {
                ++stats.indirect_returns;
                if (HasObserver)
                    s.observer->onUnavoidableBreak(icount);
            } else {
                ++stats.direct_returns;
            }
        }
        const int ret_dst = frame.ret_dst;
        s.reg_stack.resize(frame.reg_base);
        s.frames.pop_back();
        if (s.frames.empty()) {
            stats.exit_code = ret_value;
            stats.instructions = icount;
            s.icount = icount;
            s.done = true;
            return;
        }
        if (ret_dst != -1) {
            const Frame &caller = s.frames.back();
            s.reg_stack[caller.reg_base + static_cast<size_t>(ret_dst)] =
                ret_value;
        }
    }
    goto frame_switch;

    DEF(HSelect)
    {
        COUNT1();
        ++stats.selects;
        regs[insn->a] = regs[insn->b] != 0
                            ? regs[insn->c]
                            : regs[static_cast<int32_t>(insn->imm)];
        ++insn;
    }
    NEXT();

    DEF(HGetc)
    {
        COUNT1();
        regs[insn->a] =
            s.input_pos < s.input.size()
                ? static_cast<unsigned char>(s.input[s.input_pos++])
                : -1;
        ++insn;
    }
    NEXT();

    DEF(HPutc)
    {
        COUNT1();
        s.result.output.push_back(static_cast<char>(regs[insn->a] & 0xff));
        ++insn;
    }
    NEXT();

    DEF(HPutF)
    {
        COUNT1();
        s.result.output += strPrintf("%.6g", isa::asF(regs[insn->a]));
        ++insn;
    }
    NEXT();

    DEF(HHalt)
    {
        COUNT1();
        stats.exit_code = 0;
        stats.instructions = icount;
        s.icount = icount;
        s.done = true;
        return;
    }

    DEF(HNop)
    {
        COUNT1();
        ++insn;
    }
    NEXT();

    DEF(HOffEnd)
    {
        // Sentinel slot past the last instruction; the reference engine
        // fails its pc bounds check before counting, so no COUNT1 here.
        TRAP("pc out of range");
    }

    H_FUSE_CMP_BR(HFuseCmpEqBr, kCmpEq)
    H_FUSE_CMP_BR(HFuseCmpNeBr, kCmpNe)
    H_FUSE_CMP_BR(HFuseCmpLtBr, kCmpLt)
    H_FUSE_CMP_BR(HFuseCmpLeBr, kCmpLe)
    H_FUSE_CMP_BR(HFuseCmpGtBr, kCmpGt)
    H_FUSE_CMP_BR(HFuseCmpGeBr, kCmpGe)
    H_FUSE_CMP_BR(HFuseFCmpEqBr, kFCmpEq)
    H_FUSE_CMP_BR(HFuseFCmpNeBr, kFCmpNe)
    H_FUSE_CMP_BR(HFuseFCmpLtBr, kFCmpLt)
    H_FUSE_CMP_BR(HFuseFCmpLeBr, kFCmpLe)
    H_FUSE_CMP_BR(HFuseFCmpGtBr, kFCmpGt)
    H_FUSE_CMP_BR(HFuseFCmpGeBr, kFCmpGe)

    H_FUSE_MOVI(HFuseMovIAdd, kAdd)
    H_FUSE_MOVI(HFuseMovISub, kSub)
    H_FUSE_MOVI(HFuseMovIMul, kMul)
    H_FUSE_MOVI(HFuseMovIAnd, kAnd)
    H_FUSE_MOVI(HFuseMovIOr, kOr)
    H_FUSE_MOVI(HFuseMovIXor, kXor)
    H_FUSE_MOVI(HFuseMovIShl, kShl)
    H_FUSE_MOVI(HFuseMovIShr, kShr)
    H_FUSE_MOVI(HFuseMovICmpEq, kCmpEq)
    H_FUSE_MOVI(HFuseMovICmpNe, kCmpNe)
    H_FUSE_MOVI(HFuseMovICmpLt, kCmpLt)
    H_FUSE_MOVI(HFuseMovICmpLe, kCmpLe)
    H_FUSE_MOVI(HFuseMovICmpGt, kCmpGt)
    H_FUSE_MOVI(HFuseMovICmpGe, kCmpGe)

    H_FUSE_MOVI_BR(HFuseMovIAndBr, kAnd)
    H_FUSE_MOVI_BR(HFuseMovICmpEqBr, kCmpEq)
    H_FUSE_MOVI_BR(HFuseMovICmpNeBr, kCmpNe)
    H_FUSE_MOVI_BR(HFuseMovICmpLtBr, kCmpLt)
    H_FUSE_MOVI_BR(HFuseMovICmpLeBr, kCmpLe)
    H_FUSE_MOVI_BR(HFuseMovICmpGtBr, kCmpGt)
    H_FUSE_MOVI_BR(HFuseMovICmpGeBr, kCmpGe)

    DEF(HEnterTrace)
    {
        // A compiled superblock's head (trace engine only: the tier
        // patches head slots' fast-path handler; `unfused` slots are
        // untouched, so the Checked loop never lands here).
        if (Checked || s.jit == nullptr)
            TRAP("unimplemented opcode"); // unreachable by construction
        const jit::CompiledTrace &t = s.jit->units[static_cast<size_t>(
            s.jit->entry[static_cast<size_t>(
                s.frames.back().func_index)][static_cast<size_t>(
                CUR_PC())])];
        if (icount + t.total_cost > fast_limit) {
            // Remaining fuel cannot cover one full pass: run the head's
            // pre-patch handler once; the checked tail takes over soon.
            DISPATCH_ORIG(t.head_handler);
        }
        const jit::TraceExit ex =
            HasObserver
                ? jit::runTraceUnit<true>(s, t, regs, icount, fast_limit)
                : jit::runTraceUnit<false>(s, t, regs, icount,
                                           fast_limit);
        insn = code + ex.resume_pc;
        if (ex.reenter) {
            MAYBE_YIELD();
            NEXT();
        }
        // A pre-trap exit: the landing instruction must execute exactly
        // once via its unfused handler (reference trap message), and
        // must not re-enter a trace patched over the same slot.
        DISPATCH_UNFUSED();
    }

#if !IFPROB_VM_COMPUTED_GOTO
      default:
        TRAP("unimplemented opcode");
    }
#endif
}

#undef H_FUSE_MOVI_BR
#undef H_FUSE_MOVI
#undef H_FUSE_CMP_BR
#undef FUSED_BRANCH_TAIL
#undef H_UNARY
#undef H_BINARY_DIV
#undef H_BINARY
#undef DISPATCH_ORIG
#undef DISPATCH_UNFUSED
#undef NEXT
#undef DEF
#undef MAYBE_YIELD
#undef COUNT1
#undef TRAP
#undef CUR_PC

/** Shared driver for the pre-decoded cores (fast, trace): set up the
 *  run state, then alternate the unchecked and checked loops. */
void
runDecoded(ExecState &s)
{
    s.result.stats.branches.resize(s.program.branch_sites.size());
    s.memory.assign(static_cast<size_t>(s.program.memory_words), 0);
    for (const auto &di : s.program.data_init)
        s.memory[static_cast<size_t>(di.address)] = di.value;
    s.reg_stack.reserve(1 << 16);
    s.frames.reserve(256);
    pushFrame(s, s.program.entry, -1, false);

    // The unchecked loop yields (done == false) once the remaining
    // instruction budget stops covering a worst-case block; the checked
    // loop then finishes the run with reference-exact fuel accounting.
    if (s.observer) {
        executeLoop<true, false>(s);
        if (!s.done)
            executeLoop<true, true>(s);
    } else {
        executeLoop<false, false>(s);
        if (!s.done)
            executeLoop<false, true>(s);
    }
}

} // namespace

void
runFastEngine(const isa::Program &program, const DecodedProgram &decoded,
              std::string_view input, const RunLimits &limits,
              BranchObserver *observer, RunResult &result)
{
    ExecState s{program, decoded, input, limits, observer, result};
    runDecoded(s);
}

void
runTraceEngine(const isa::Program &program, const jit::TraceProgram &tier,
               std::string_view input, const RunLimits &limits,
               BranchObserver *observer, RunResult &result)
{
    ExecState s{program, tier.decoded, input, limits, observer, result};
    s.jit = &tier;
    runDecoded(s);
}

} // namespace ifprob::vm

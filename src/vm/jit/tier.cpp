#include "vm/jit/tier.h"

#include <cstdlib>

#include "vm/jit/code_cache.h"
#include "vm/jit/trace_compile.h"

namespace ifprob::vm::jit {

namespace {

std::string
cacheDirFromEnv()
{
    const char *dir = std::getenv("IFPROB_JIT_CACHE_DIR");
    return dir != nullptr ? std::string(dir) : std::string();
}

} // namespace

TierController::TierController(const isa::Program &program,
                               const DecodedProgram &decoded,
                               Config config)
    : program_(program), decoded_(decoded), config_(config),
      fingerprint_(program.fingerprint()), cache_dir_(cacheDirFromEnv())
{
    if (!cache_dir_.empty()) {
        if (auto plan = loadCompiledPlan(cache_dir_, fingerprint_)) {
            auto tp = std::make_shared<TraceProgram>(
                compileTraces(program_, decoded_, *plan, "disk"));
            compile_micros_ += tp->build.compile_micros;
            current_ = std::move(tp);
            profiled_ = true;
            return;
        }
    }
    const SuperblockPlan plan =
        selectSuperblocks(program_, decoded_, nullptr, config_.superblock);
    auto tp = std::make_shared<TraceProgram>(
        compileTraces(program_, decoded_, plan, "static"));
    compile_micros_ += tp->build.compile_micros;
    current_ = std::move(tp);
}

std::shared_ptr<const TraceProgram>
TierController::current() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
}

void
TierController::onRunCompleted(const RunStats &stats)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (profiled_)
        return;
    if (accum_.size() != stats.branches.size())
        accum_.resize(stats.branches.size());
    for (size_t i = 0; i < stats.branches.size(); ++i) {
        accum_[i].executed += stats.branches[i].executed;
        accum_[i].taken += stats.branches[i].taken;
    }
    accum_branches_ += stats.cond_branches;
    if (accum_branches_ < config_.hot_threshold)
        return;

    const SuperblockPlan plan =
        selectSuperblocks(program_, decoded_, &accum_, config_.superblock);
    auto tp = std::make_shared<TraceProgram>(
        compileTraces(program_, decoded_, plan, "profile"));
    compile_micros_ += tp->build.compile_micros;
    current_ = std::move(tp);
    profiled_ = true;
    ++tier_ups_;
    if (!cache_dir_.empty())
        saveCompiledPlan(cache_dir_, fingerprint_, plan);
}

JitBuildStats
TierController::buildStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return current_->build;
}

int64_t
TierController::tierUps() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tier_ups_;
}

int64_t
TierController::compileMicros() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return compile_micros_;
}

} // namespace ifprob::vm::jit

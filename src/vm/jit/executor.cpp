#include "vm/jit/executor.h"

#include "isa/alu.h"
#include "support/str.h"

// Same dispatch strategy selection as the fast core in engine.cpp:
// labels-as-values on GCC/Clang, portable dense switch otherwise.
#if !defined(IFPROB_VM_FORCE_SWITCH_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define IFPROB_JIT_COMPUTED_GOTO 1
#else
#define IFPROB_JIT_COMPUTED_GOTO 0
#endif

namespace ifprob::vm::jit {

using isa::Opcode;

namespace {

/** Apply @p n full passes' worth of the trace's precomputed counter
 *  aggregate. Valid because a fully committed pass implies every guard
 *  went its predicted way, making the per-pass delta a constant. */
void
applyAggregate(RunStats &stats, JitRunStats &jr, const CompiledTrace &t,
               int64_t n)
{
    if (n == 0)
        return;
    stats.cond_branches += t.agg_guards * n;
    stats.taken_branches += t.agg_taken * n;
    stats.jumps += t.agg_jumps * n;
    stats.selects += t.agg_selects * n;
    jr.guards += t.agg_guards * n;
    BranchCounts *const sites = stats.branches.data();
    for (const SiteDelta &d : t.site_deltas) {
        sites[d.site].executed += static_cast<int64_t>(d.executed) * n;
        sites[d.site].taken += static_cast<int64_t>(d.taken) * n;
    }
}

/** Commit the counters of a partial pass: every step in [begin, end)
 *  executed, and every guard among them went its predicted way (a
 *  mispredict or trap ends the pass at `end`). Walks `base` ops, so
 *  fused dispatch grouping is invisible here. */
void
replayPrefix(RunStats &stats, JitRunStats &jr, const TraceStep *begin,
             const TraceStep *end)
{
    for (const TraceStep *p = begin; p != end; ++p) {
        switch (p->base) {
          case kTGuard: {
            ++stats.cond_branches;
            ++jr.guards;
            BranchCounts &site =
                stats.branches[static_cast<size_t>(p->imm)];
            ++site.executed;
            if ((p->flags & kStepPredTaken) != 0) {
                ++site.taken;
                ++stats.taken_branches;
            }
            break;
          }
          case kTJmp:
            ++stats.jumps;
            break;
          case kTSelect:
            ++stats.selects;
            break;
          default:
            break;
        }
    }
}

} // namespace

template <bool HasObserver>
TraceExit
runTraceUnit(detail::ExecState &s, const CompiledTrace &t, int64_t *regs,
             int64_t &icount, int64_t fast_limit)
{
    RunStats &stats = s.result.stats;
    JitRunStats &jr = s.result.jit;
    int64_t *const mem = s.memory.data();
    const int64_t memory_words = s.program.memory_words;
    const TraceStep *const steps = t.steps.data();
    const TraceStep *st = steps;

    // Pass bookkeeping: `base` is the retired-instruction count at the
    // current pass's entry; no per-step icount increments happen on the
    // hot path (exit icounts come from base + end_icount prefix sums).
    const int64_t entry_icount = icount;
    int64_t base = icount;
    int64_t full_iters = 0;
    const TraceStep *miss = nullptr; // guard_miss / trap_exit operand
    bool miss_taken = false;
    ++jr.trace_entries;

#if IFPROB_JIT_COMPUTED_GOTO
#define TDEF(o) L_##o:
#define TNEXT() goto *kLabels[st->op]
    static const void *kLabels[kNumTraceOps] = {
#define IFPROB_JIT_LABEL_ADDR(o) &&L_##o,
        IFPROB_JIT_TRACE_OPS(IFPROB_JIT_LABEL_ADDR)
#undef IFPROB_JIT_LABEL_ADDR
    };
    TNEXT();
#else
#define TDEF(o) case k##o:
#define TNEXT() goto dispatch
dispatch:
    switch (st->op) {
#endif

// Guard commit shared by every guard-carrying dispatch group: emit the
// observer event (exact reference icount via the guard's prefix sum),
// fall through on the predicted direction, side-exit otherwise. Counter
// writes happen only on the exit paths.
#define T_GUARD_TAIL(gstep, taken_expr, width)                            \
    do {                                                                  \
        const TraceStep *const g = (gstep);                               \
        const bool tk = (taken_expr);                                     \
        if (HasObserver)                                                  \
            s.observer->onBranch(static_cast<int>(g->imm), tk,            \
                                 base + g->end_icount);                   \
        if (tk != ((g->flags & kStepPredTaken) != 0)) {                   \
            miss = g;                                                     \
            miss_taken = tk;                                              \
            goto guard_miss;                                              \
        }                                                                 \
        st += (width);                                                    \
        if ((g->flags & kStepClosesPass) != 0)                            \
            goto end_of_pass;                                             \
    } while (0)

#define T_BINARY(o, OPC)                                                  \
    TDEF(o)                                                               \
    {                                                                     \
        regs[st->a] = *isa::evalBinaryAlu(Opcode::OPC, regs[st->b],       \
                                          regs[st->c]);                   \
        ++st;                                                             \
    }                                                                     \
    TNEXT();

// Division that would trap side-exits *before* executing; the fast
// engine re-dispatches the slot's unfused handler and raises the
// reference trap.
#define T_BINARY_DIV(o, OPC)                                              \
    TDEF(o)                                                               \
    {                                                                     \
        const auto v = isa::evalBinaryAlu(Opcode::OPC, regs[st->b],       \
                                          regs[st->c]);                   \
        if (!v) {                                                         \
            miss = st;                                                    \
            goto trap_exit;                                               \
        }                                                                 \
        regs[st->a] = *v;                                                 \
        ++st;                                                             \
    }                                                                     \
    TNEXT();

#define T_UNARY(o, OPC)                                                   \
    TDEF(o)                                                               \
    {                                                                     \
        regs[st->a] = *isa::evalUnaryAlu(Opcode::OPC, regs[st->b]);       \
        ++st;                                                             \
    }                                                                     \
    TNEXT();

#define T_FUSE_CMP_GUARD(o, OPC)                                          \
    TDEF(o)                                                               \
    {                                                                     \
        const int64_t cond = *isa::evalBinaryAlu(                         \
            Opcode::OPC, regs[st->b], regs[st->c]);                       \
        regs[st->a] = cond;                                               \
        T_GUARD_TAIL(st + 1, cond != 0, 2);                               \
    }                                                                     \
    TNEXT();

#define T_FUSE_MOVI(o, OPC)                                               \
    TDEF(o)                                                               \
    {                                                                     \
        const TraceStep *const alu = st + 1;                              \
        regs[st->a] = st->imm;                                            \
        regs[alu->a] = *isa::evalBinaryAlu(Opcode::OPC, regs[alu->b],     \
                                           regs[alu->c]);                 \
        st += 2;                                                          \
    }                                                                     \
    TNEXT();

#define T_FUSE_MOVI_GUARD(o, OPC)                                         \
    TDEF(o)                                                               \
    {                                                                     \
        const TraceStep *const alu = st + 1;                              \
        regs[st->a] = st->imm;                                            \
        const int64_t cond = *isa::evalBinaryAlu(                         \
            Opcode::OPC, regs[alu->b], regs[alu->c]);                     \
        regs[alu->a] = cond;                                              \
        T_GUARD_TAIL(st + 2, cond != 0, 3);                               \
    }                                                                     \
    TNEXT();

    T_BINARY(TAdd, kAdd)
    T_BINARY(TSub, kSub)
    T_BINARY(TMul, kMul)
    T_BINARY_DIV(TDivGuard, kDiv)
    T_BINARY_DIV(TRemGuard, kRem)
    T_BINARY(TAnd, kAnd)
    T_BINARY(TOr, kOr)
    T_BINARY(TXor, kXor)
    T_BINARY(TShl, kShl)
    T_BINARY(TShr, kShr)
    T_BINARY(TCmpEq, kCmpEq)
    T_BINARY(TCmpNe, kCmpNe)
    T_BINARY(TCmpLt, kCmpLt)
    T_BINARY(TCmpLe, kCmpLe)
    T_BINARY(TCmpGt, kCmpGt)
    T_BINARY(TCmpGe, kCmpGe)
    T_BINARY(TFAdd, kFAdd)
    T_BINARY(TFSub, kFSub)
    T_BINARY(TFMul, kFMul)
    T_BINARY(TFDiv, kFDiv)
    T_BINARY(TFCmpEq, kFCmpEq)
    T_BINARY(TFCmpNe, kFCmpNe)
    T_BINARY(TFCmpLt, kFCmpLt)
    T_BINARY(TFCmpLe, kFCmpLe)
    T_BINARY(TFCmpGt, kFCmpGt)
    T_BINARY(TFCmpGe, kFCmpGe)

    T_UNARY(TNeg, kNeg)
    T_UNARY(TNot, kNot)
    T_UNARY(TFNeg, kFNeg)
    T_UNARY(TFAbs, kFAbs)
    T_UNARY(TFSqrt, kFSqrt)
    T_UNARY(TFExp, kFExp)
    T_UNARY(TFLog, kFLog)
    T_UNARY(TFSin, kFSin)
    T_UNARY(TFCos, kFCos)
    T_UNARY(TItoF, kItoF)
    T_UNARY(TFtoI, kFtoI)

    TDEF(TMov)
    {
        regs[st->a] = regs[st->b];
        ++st;
    }
    TNEXT();

    TDEF(TMovI)
    {
        regs[st->a] = st->imm;
        ++st;
    }
    TNEXT();

    TDEF(TLoadRegGuard)
    {
        const int64_t addr = regs[st->b] + st->imm;
        if (addr < 0 || addr >= memory_words) {
            miss = st;
            goto trap_exit;
        }
        regs[st->a] = mem[addr];
        ++st;
    }
    TNEXT();

    TDEF(TLoadAbs)
    {
        regs[st->a] = mem[st->imm];
        ++st;
    }
    TNEXT();

    TDEF(TStoreRegGuard)
    {
        const int64_t addr = regs[st->b] + st->imm;
        if (addr < 0 || addr >= memory_words) {
            miss = st;
            goto trap_exit;
        }
        mem[addr] = regs[st->a];
        ++st;
    }
    TNEXT();

    TDEF(TStoreAbs)
    {
        mem[st->imm] = regs[st->a];
        ++st;
    }
    TNEXT();

    TDEF(TSelect)
    {
        regs[st->a] = regs[st->b] != 0
                          ? regs[st->c]
                          : regs[static_cast<int32_t>(st->imm)];
        ++st;
    }
    TNEXT();

    TDEF(TGetc)
    {
        regs[st->a] =
            s.input_pos < s.input.size()
                ? static_cast<unsigned char>(s.input[s.input_pos++])
                : -1;
        ++st;
    }
    TNEXT();

    TDEF(TPutc)
    {
        s.result.output.push_back(static_cast<char>(regs[st->a] & 0xff));
        ++st;
    }
    TNEXT();

    TDEF(TPutF)
    {
        s.result.output += strPrintf("%.6g", isa::asF(regs[st->a]));
        ++st;
    }
    TNEXT();

    TDEF(TArg)
    {
        s.pending_args[st->a] = regs[st->b];
        s.pending_count =
            std::max(s.pending_count, static_cast<int>(st->a) + 1);
        ++st;
    }
    TNEXT();

    TDEF(TNop)
    {
        ++st;
    }
    TNEXT();

    TDEF(TJmp)
    {
        // Linearized away: the successor is the next step. Kept as a
        // step so replay/aggregate counting sees the jump.
        ++st;
    }
    TNEXT();

    TDEF(TGuard)
    {
        T_GUARD_TAIL(st, regs[st->a] != 0, 1);
    }
    TNEXT();

    T_FUSE_CMP_GUARD(TFuseCmpEqGuard, kCmpEq)
    T_FUSE_CMP_GUARD(TFuseCmpNeGuard, kCmpNe)
    T_FUSE_CMP_GUARD(TFuseCmpLtGuard, kCmpLt)
    T_FUSE_CMP_GUARD(TFuseCmpLeGuard, kCmpLe)
    T_FUSE_CMP_GUARD(TFuseCmpGtGuard, kCmpGt)
    T_FUSE_CMP_GUARD(TFuseCmpGeGuard, kCmpGe)
    T_FUSE_CMP_GUARD(TFuseFCmpEqGuard, kFCmpEq)
    T_FUSE_CMP_GUARD(TFuseFCmpNeGuard, kFCmpNe)
    T_FUSE_CMP_GUARD(TFuseFCmpLtGuard, kFCmpLt)
    T_FUSE_CMP_GUARD(TFuseFCmpLeGuard, kFCmpLe)
    T_FUSE_CMP_GUARD(TFuseFCmpGtGuard, kFCmpGt)
    T_FUSE_CMP_GUARD(TFuseFCmpGeGuard, kFCmpGe)

    T_FUSE_MOVI(TFuseMovIAdd, kAdd)
    T_FUSE_MOVI(TFuseMovISub, kSub)
    T_FUSE_MOVI(TFuseMovIMul, kMul)
    T_FUSE_MOVI(TFuseMovIAnd, kAnd)
    T_FUSE_MOVI(TFuseMovIOr, kOr)
    T_FUSE_MOVI(TFuseMovIXor, kXor)
    T_FUSE_MOVI(TFuseMovIShl, kShl)
    T_FUSE_MOVI(TFuseMovIShr, kShr)
    T_FUSE_MOVI(TFuseMovICmpEq, kCmpEq)
    T_FUSE_MOVI(TFuseMovICmpNe, kCmpNe)
    T_FUSE_MOVI(TFuseMovICmpLt, kCmpLt)
    T_FUSE_MOVI(TFuseMovICmpLe, kCmpLe)
    T_FUSE_MOVI(TFuseMovICmpGt, kCmpGt)
    T_FUSE_MOVI(TFuseMovICmpGe, kCmpGe)

    T_FUSE_MOVI_GUARD(TFuseMovIAndGuard, kAnd)
    T_FUSE_MOVI_GUARD(TFuseMovICmpEqGuard, kCmpEq)
    T_FUSE_MOVI_GUARD(TFuseMovICmpNeGuard, kCmpNe)
    T_FUSE_MOVI_GUARD(TFuseMovICmpLtGuard, kCmpLt)
    T_FUSE_MOVI_GUARD(TFuseMovICmpLeGuard, kCmpLe)
    T_FUSE_MOVI_GUARD(TFuseMovICmpGtGuard, kCmpGt)
    T_FUSE_MOVI_GUARD(TFuseMovICmpGeGuard, kCmpGe)

    TDEF(TJmpEnd)
    {
        // A trailing jump fused with the pass end (the loop-closing
        // back-edge, linearized away): step to the TEnd sentinel and
        // fall directly into its logic — one dispatch for the whole
        // bottom of the loop instead of two.
        ++st;
        goto end_of_pass;
    }

    TDEF(TEnd)
    {
    end_of_pass:
        // One full pass committed. Loop-closing traces iterate in place
        // while the remaining fuel still covers a whole pass — one
        // compare per iteration replaces the fast engine's per-transfer
        // yield check and per-branch counter writes.
        base += t.total_cost;
        ++full_iters;
        if ((st->flags & kStepLoops) != 0 &&
            base + t.total_cost <= fast_limit) {
            st = steps;
            TNEXT();
        }
        applyAggregate(stats, jr, t, full_iters);
        jr.trace_loop_iterations += full_iters;
        icount = base;
        jr.trace_instructions += icount - entry_icount;
        return {st->exit_pc, true};
    }

#if !IFPROB_JIT_COMPUTED_GOTO
      default:
        // Unreachable: compileTraces emits only the ops above. Degrade
        // by handing the head back to the fast engine's unfused path.
        icount = base;
        jr.trace_instructions += icount - entry_icount;
        return {t.head_pc, false};
    }
#endif

#undef T_FUSE_MOVI_GUARD
#undef T_FUSE_MOVI
#undef T_FUSE_CMP_GUARD
#undef T_UNARY
#undef T_BINARY_DIV
#undef T_BINARY
#undef T_GUARD_TAIL
#undef TNEXT
#undef TDEF

guard_miss:
    // The guard executed and went off-trace: commit the completed
    // passes, the prefix, and the guard itself with its actual
    // direction, then resume the fast engine at the off-trace target.
    applyAggregate(stats, jr, t, full_iters);
    replayPrefix(stats, jr, steps, miss);
    {
        ++stats.cond_branches;
        ++jr.guards;
        BranchCounts &site = stats.branches[static_cast<size_t>(miss->imm)];
        ++site.executed;
        if (miss_taken) {
            ++site.taken;
            ++stats.taken_branches;
        }
    }
    ++jr.side_exits;
    jr.trace_loop_iterations += full_iters;
    icount = base + miss->end_icount;
    jr.trace_instructions += icount - entry_icount;
    return {miss->exit_pc, true};

trap_exit:
    // The step at `miss` would trap and has NOT executed: commit
    // everything before it and let the fast engine re-dispatch the
    // original instruction, which raises the reference trap at the
    // reference icount.
    applyAggregate(stats, jr, t, full_iters);
    replayPrefix(stats, jr, steps, miss);
    ++jr.trap_exits;
    jr.trace_loop_iterations += full_iters;
    icount = base + miss->end_icount - 1;
    jr.trace_instructions += icount - entry_icount;
    return {miss->pc, false};
}

template TraceExit runTraceUnit<false>(detail::ExecState &,
                                       const CompiledTrace &, int64_t *,
                                       int64_t &, int64_t);
template TraceExit runTraceUnit<true>(detail::ExecState &,
                                      const CompiledTrace &, int64_t *,
                                      int64_t &, int64_t);

} // namespace ifprob::vm::jit

#include "vm/jit/superblock.h"

#include <algorithm>

#include "vm/jit/trace_compile.h"

namespace ifprob::vm::jit {

namespace {

/** Predicted direction for one branch along a growing path, or nullopt
 *  when the trace should end before the branch. */
struct Decision
{
    bool follow = false;
    bool taken = false;
};

Decision
decideBranch(const isa::Program &program,
             const std::vector<BranchCounts> *profile, int64_t site,
             const SuperblockConfig &cfg)
{
    Decision d;
    if (profile == nullptr) {
        // BTFNT — the paper's loop heuristic: backward branches are
        // predicted taken, forward branches not taken.
        d.follow = true;
        d.taken = program.branch_sites[static_cast<size_t>(site)].backward;
        return d;
    }
    const BranchCounts &bc = (*profile)[static_cast<size_t>(site)];
    if (bc.executed < cfg.min_site_executed)
        return d; // too cold to trust either way
    const int64_t not_taken = bc.executed - bc.taken;
    const int64_t majority = std::max(bc.taken, not_taken);
    if (static_cast<double>(majority) <
        cfg.min_bias * static_cast<double>(bc.executed))
        return d; // unbiased: end the trace at the branch
    d.follow = true;
    d.taken = bc.taken >= not_taken;
    return d;
}

} // namespace

SuperblockPlan
selectSuperblocks(const isa::Program &program, const DecodedProgram &decoded,
                  const std::vector<BranchCounts> *profile,
                  const SuperblockConfig &cfg)
{
    SuperblockPlan plan;
    plan.profile_guided = profile != nullptr;

    int32_t stamp = 0;
    for (size_t fi = 0; fi < decoded.functions.size(); ++fi) {
        const auto &dcode = decoded.functions[fi].code;
        const int32_t size = static_cast<int32_t>(dcode.size());

        // Seeds: loop heads — any backward target of a branch or jump,
        // in pc order, deduplicated.
        std::vector<int32_t> seeds;
        std::vector<uint8_t> is_seed(dcode.size(), 0);
        auto add_seed = [&](int32_t target, int32_t from) {
            if (target >= 0 && target <= from && !is_seed[target]) {
                is_seed[static_cast<size_t>(target)] = 1;
                seeds.push_back(target);
            }
        };
        for (int32_t pc = 0; pc < size; ++pc) {
            const DecodedInsn &d = dcode[static_cast<size_t>(pc)];
            if (d.unfused == kHBr) {
                add_seed(d.b, pc);
                add_seed(d.c, pc);
            } else if (d.unfused == kHJmp) {
                add_seed(d.a, pc);
            }
        }
        std::sort(seeds.begin(), seeds.end());

        // Grow each seed along the dominant direction. `mark` is
        // generation-stamped so one allocation serves every seed.
        std::vector<int32_t> mark(dcode.size(), -1);
        for (int32_t head : seeds) {
            if (static_cast<int>(plan.blocks.size()) >= cfg.max_traces)
                return plan;
            ++stamp;
            Superblock sb;
            sb.func = static_cast<int32_t>(fi);
            sb.head_pc = head;
            bool loops = false;
            int32_t pc = head;
            while (true) {
                if (sb.steps >= cfg.max_steps)
                    break;
                if (mark[static_cast<size_t>(pc)] == stamp)
                    break; // interior cycle not through the head
                const DecodedInsn &d = dcode[static_cast<size_t>(pc)];
                const StepClass cls = classifyStep(d.unfused);
                if (cls == StepClass::kEnd)
                    break;
                int32_t next;
                if (cls == StepClass::kStraight) {
                    next = pc + 1;
                } else if (cls == StepClass::kJump) {
                    next = d.a;
                } else {
                    const Decision dec =
                        decideBranch(program, profile, d.imm, cfg);
                    if (!dec.follow)
                        break;
                    sb.guard_taken.push_back(dec.taken ? 1 : 0);
                    next = dec.taken ? d.b : d.c;
                }
                mark[static_cast<size_t>(pc)] = stamp;
                ++sb.steps;
                if (next == head) {
                    loops = true;
                    break;
                }
                pc = next;
            }
            const bool has_guards = !sb.guard_taken.empty();
            if (sb.steps < cfg.min_steps)
                continue;
            if (!loops &&
                (!has_guards || sb.steps < cfg.min_straight_steps))
                continue;
            plan.blocks.push_back(std::move(sb));
        }
    }
    return plan;
}

} // namespace ifprob::vm::jit

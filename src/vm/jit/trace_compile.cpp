#include "vm/jit/trace_compile.h"

#include <chrono>

namespace ifprob::vm::jit {

StepClass
classifyStep(uint16_t h)
{
    switch (h) {
      case kHBr:
        return StepClass::kBranch;
      case kHJmp:
        return StepClass::kJump;
      case kHLoadTrap:
      case kHStoreTrap:
      case kHArgTrap:
      case kHCall:
      case kHICall:
      case kHRet:
      case kHRetVoid:
      case kHHalt:
      case kHOffEnd:
        return StepClass::kEnd;
      default:
        return StepClass::kStraight;
    }
}

namespace {

/** Unfused handler -> single-operation trace op (kNumTraceOps when the
 *  operation cannot live inside a trace). */
uint16_t
baseTraceOp(uint16_t h)
{
    if (h >= kHAdd && h <= kHFCmpGe)
        return static_cast<uint16_t>(kTAdd + (h - kHAdd));
    if (h >= kHNeg && h <= kHFtoI)
        return static_cast<uint16_t>(kTNeg + (h - kHNeg));
    switch (h) {
      case kHMov:      return kTMov;
      case kHMovI:     return kTMovI;
      case kHLoadReg:  return kTLoadRegGuard;
      case kHLoadAbs:  return kTLoadAbs;
      case kHStoreReg: return kTStoreRegGuard;
      case kHStoreAbs: return kTStoreAbs;
      case kHSelect:   return kTSelect;
      case kHGetc:     return kTGetc;
      case kHPutc:     return kTPutc;
      case kHPutF:     return kTPutF;
      case kHArg:      return kTArg;
      case kHNop:      return kTNop;
      case kHJmp:      return kTJmp;
      case kHBr:       return kTGuard;
      default:         return kNumTraceOps;
    }
}

bool
isIntCompareOp(uint16_t b)
{
    return b >= kTCmpEq && b <= kTCmpGe;
}

bool
isFloatCompareOp(uint16_t b)
{
    return b >= kTFCmpEq && b <= kTFCmpGe;
}

/** compare + guard -> fused dispatch code. */
uint16_t
cmpGuardFuse(uint16_t b)
{
    if (isIntCompareOp(b))
        return static_cast<uint16_t>(kTFuseCmpEqGuard + (b - kTCmpEq));
    if (isFloatCompareOp(b))
        return static_cast<uint16_t>(kTFuseFCmpEqGuard + (b - kTFCmpEq));
    return kNumTraceOps;
}

/** movI + ALU -> fused dispatch code (non-trapping ALU ops only — the
 *  same set the fast engine's decoder fuses). */
uint16_t
movIFuse(uint16_t b)
{
    switch (b) {
      case kTAdd: return kTFuseMovIAdd;
      case kTSub: return kTFuseMovISub;
      case kTMul: return kTFuseMovIMul;
      case kTAnd: return kTFuseMovIAnd;
      case kTOr:  return kTFuseMovIOr;
      case kTXor: return kTFuseMovIXor;
      case kTShl: return kTFuseMovIShl;
      case kTShr: return kTFuseMovIShr;
      default:
        if (isIntCompareOp(b))
            return static_cast<uint16_t>(kTFuseMovICmpEq + (b - kTCmpEq));
        return kNumTraceOps;
    }
}

/** movI + test-against-constant + guard -> 3-wide fused dispatch. */
uint16_t
tripleFuse(uint16_t b)
{
    if (b == kTAnd)
        return kTFuseMovIAndGuard;
    if (isIntCompareOp(b))
        return static_cast<uint16_t>(kTFuseMovICmpEqGuard +
                                     (b - kTCmpEq));
    return kNumTraceOps;
}

/** Accumulate one site touch into the per-pass delta table (first-touch
 *  order; paths are short, so a linear probe beats a map). */
void
touchSite(CompiledTrace &ct, int64_t site, bool taken)
{
    for (SiteDelta &d : ct.site_deltas) {
        if (d.site == static_cast<int32_t>(site)) {
            ++d.executed;
            d.taken += taken ? 1 : 0;
            return;
        }
    }
    SiteDelta d;
    d.site = static_cast<int32_t>(site);
    d.executed = 1;
    d.taken = taken ? 1 : 0;
    ct.site_deltas.push_back(d);
}

/**
 * Re-walk one superblock over the decoded stream and lower it. Returns
 * false when the walk no longer matches the plan (stale disk plan, or a
 * guard-count mismatch) — the caller drops the block.
 */
bool
lowerBlock(const DecodedProgram &decoded, const Superblock &sb,
           CompiledTrace &ct)
{
    if (sb.func < 0 ||
        sb.func >= static_cast<int32_t>(decoded.functions.size()))
        return false;
    const auto &dcode =
        decoded.functions[static_cast<size_t>(sb.func)].code;
    if (sb.head_pc < 0 ||
        sb.head_pc >= static_cast<int32_t>(dcode.size()))
        return false;
    if (sb.steps <= 0 || sb.steps > static_cast<int32_t>(UINT16_MAX))
        return false;

    ct.func = sb.func;
    ct.head_pc = sb.head_pc;
    int32_t pc = sb.head_pc;
    size_t gi = 0;
    uint16_t count = 0;
    ct.steps.reserve(static_cast<size_t>(sb.steps) + 1);
    for (int32_t i = 0; i < sb.steps; ++i) {
        if (pc < 0 || pc >= static_cast<int32_t>(dcode.size()))
            return false;
        const DecodedInsn &d = dcode[static_cast<size_t>(pc)];
        const uint16_t op = baseTraceOp(d.unfused);
        if (op == kNumTraceOps)
            return false;
        TraceStep st;
        st.op = op;
        st.base = op;
        st.a = d.a;
        st.b = d.b;
        st.c = d.c;
        st.imm = d.imm;
        st.pc = pc;
        st.end_icount = ++count;
        int32_t next;
        if (op == kTGuard) {
            if (gi >= sb.guard_taken.size())
                return false;
            const bool pred = sb.guard_taken[gi++] != 0;
            if (pred)
                st.flags |= kStepPredTaken;
            st.exit_pc = pred ? d.c : d.b;
            next = pred ? d.b : d.c;
            ++ct.agg_guards;
            if (pred)
                ++ct.agg_taken;
            touchSite(ct, d.imm, pred);
        } else if (op == kTJmp) {
            next = d.a;
            ++ct.agg_jumps;
        } else {
            if (op == kTSelect)
                ++ct.agg_selects;
            next = pc + 1;
        }
        ct.steps.push_back(st);
        pc = next;
    }
    if (gi != sb.guard_taken.size())
        return false;

    ct.total_cost = sb.steps;
    ct.loops = pc == sb.head_pc;
    TraceStep end;
    end.op = kTEnd;
    end.base = kTEnd;
    end.cost = 0;
    end.end_icount = count;
    end.exit_pc = pc;
    end.pc = pc;
    if (ct.loops)
        end.flags |= kStepLoops;
    ct.steps.push_back(end);
    return true;
}

/**
 * Plant the fast engine's superinstruction shapes over a lowered step
 * array. Only the group head's dispatch code changes — component steps
 * keep their single-op `base`, so side-exit replay and observer
 * instruction counts are untouched. Trace entries always start at step
 * 0, so unlike the decoder's first-slot-only rule there is no mid-group
 * entry to protect.
 */
int64_t
fuseTraceSteps(CompiledTrace &ct)
{
    int64_t fused = 0;
    std::vector<TraceStep> &s = ct.steps;
    const size_t n = s.size() - 1; // exclude the TEnd sentinel
    size_t i = 0;
    while (i < n) {
        TraceStep &cur = s[i];
        if (cur.base == kTMovI && i + 1 < n && s[i + 1].c == cur.a) {
            const TraceStep &alu = s[i + 1];
            if (i + 2 < n && s[i + 2].base == kTGuard &&
                s[i + 2].a == alu.a) {
                const uint16_t fop = tripleFuse(alu.base);
                if (fop != kNumTraceOps) {
                    cur.op = fop;
                    cur.cost = 3;
                    ++fused;
                    i += 3;
                    continue;
                }
            }
            const uint16_t fop = movIFuse(alu.base);
            if (fop != kNumTraceOps) {
                cur.op = fop;
                cur.cost = 2;
                ++fused;
                i += 2;
                continue;
            }
        }
        if ((isIntCompareOp(cur.base) || isFloatCompareOp(cur.base)) &&
            i + 1 < n && s[i + 1].base == kTGuard &&
            s[i + 1].a == cur.a) {
            cur.op = cmpGuardFuse(cur.base);
            cur.cost = 2;
            ++fused;
            i += 2;
            continue;
        }
        ++i;
    }
    return fused;
}

} // namespace

TraceProgram
compileTraces(const isa::Program &program, const DecodedProgram &decoded,
              const SuperblockPlan &plan, std::string_view source)
{
    (void)program;
    const auto t0 = std::chrono::steady_clock::now();
    TraceProgram tp;
    tp.decoded = decoded;
    tp.build.source = std::string(source);
    tp.entry.resize(decoded.functions.size());
    for (size_t fi = 0; fi < decoded.functions.size(); ++fi)
        tp.entry[fi].assign(decoded.functions[fi].code.size(), -1);

    for (const Superblock &sb : plan.blocks) {
        CompiledTrace ct;
        if (!lowerBlock(decoded, sb, ct))
            continue; // stale plan entry: degrade, don't fail
        auto &slot = tp.entry[static_cast<size_t>(sb.func)];
        if (slot[static_cast<size_t>(sb.head_pc)] != -1)
            continue; // duplicate head
        tp.build.fused_steps += fuseTraceSteps(ct);
        // Fuse the trace's closing transfer with the pass end, so the
        // bottom of a loop costs one dispatch instead of two. Two
        // shapes: a trailing unconditional jump (rare — jump threading
        // removes most) becomes kTJmpEnd, and a trailing guard (the
        // bottom test of a rotated loop, the common shape) is flagged
        // kStepClosesPass so its predicted path skips the TEnd
        // dispatch. `base` and guard semantics are untouched, so
        // replay, aggregates, and side exits are unaffected.
        if (ct.steps.size() >= 2) {
            TraceStep &last = ct.steps[ct.steps.size() - 2];
            if (last.op == kTJmp)
                last.op = kTJmpEnd;
            else if (last.base == kTGuard)
                last.flags |= kStepClosesPass;
        }
        tp.build.steps += static_cast<int64_t>(ct.steps.size()) - 1;
        tp.build.guards += ct.agg_guards;
        if (ct.loops)
            ++tp.build.loop_traces;

        DecodedInsn &head =
            tp.decoded.functions[static_cast<size_t>(sb.func)]
                .code[static_cast<size_t>(sb.head_pc)];
        ct.head_handler = head.handler;
        head.handler = kHEnterTrace;
        slot[static_cast<size_t>(sb.head_pc)] =
            static_cast<int32_t>(tp.units.size());
        tp.units.push_back(std::move(ct));
    }
    tp.build.traces = static_cast<int64_t>(tp.units.size());
    tp.build.compile_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return tp;
}

} // namespace ifprob::vm::jit

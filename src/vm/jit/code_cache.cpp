#include "vm/jit/code_cache.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "support/atomic_file.h"
#include "support/binio.h"
#include "support/str.h"

namespace ifprob::vm::jit {

using namespace binio;

std::string
encodePlan(const SuperblockPlan &plan, uint64_t fingerprint)
{
    std::string buf;
    buf.append(kCodeCacheMagic, sizeof(kCodeCacheMagic));
    putU32(buf, kCodeCacheVersion);
    putU32(buf, 0); // reserved
    putU64(buf, fingerprint);
    putVarint(buf, plan.blocks.size());
    for (const Superblock &sb : plan.blocks) {
        putVarint(buf, static_cast<uint64_t>(sb.func));
        putVarint(buf, static_cast<uint64_t>(sb.head_pc));
        putVarint(buf, static_cast<uint64_t>(sb.steps));
        putVarint(buf, sb.guard_taken.size());
        for (uint8_t g : sb.guard_taken)
            buf.push_back(static_cast<char>(g ? 1 : 0));
    }
    putU64(buf, fnv1a(kFnv1aOffset, buf.data(), buf.size()));
    return buf;
}

std::optional<SuperblockPlan>
decodePlan(const std::string &payload, uint64_t expected_fingerprint)
{
    constexpr size_t kHeader = 8 + 4 + 4 + 8;
    if (payload.size() < kHeader + 8)
        return std::nullopt;
    const auto *data =
        reinterpret_cast<const unsigned char *>(payload.data());
    if (std::memcmp(data, kCodeCacheMagic, sizeof(kCodeCacheMagic)) != 0)
        return std::nullopt;
    if (getU32(data + 8) != kCodeCacheVersion)
        return std::nullopt;
    const uint64_t fingerprint = getU64(data + 16);
    if (expected_fingerprint != 0 && fingerprint != expected_fingerprint)
        return std::nullopt;
    const size_t body = payload.size() - 8;
    if (getU64(data + body) != fnv1a(kFnv1aOffset, data, body))
        return std::nullopt;

    const unsigned char *p = data + kHeader;
    const unsigned char *end = data + body;
    SuperblockPlan plan;
    plan.profile_guided = true; // only profile-guided plans are saved
    try {
        const uint64_t count = getVarint(p, end, "jit plan");
        if (count > (1u << 20))
            return std::nullopt;
        plan.blocks.reserve(static_cast<size_t>(count));
        for (uint64_t i = 0; i < count; ++i) {
            Superblock sb;
            sb.func = static_cast<int32_t>(getVarint(p, end, "jit plan"));
            sb.head_pc =
                static_cast<int32_t>(getVarint(p, end, "jit plan"));
            sb.steps = static_cast<int32_t>(getVarint(p, end, "jit plan"));
            const uint64_t guards = getVarint(p, end, "jit plan");
            if (guards > static_cast<uint64_t>(end - p))
                return std::nullopt;
            sb.guard_taken.reserve(static_cast<size_t>(guards));
            for (uint64_t g = 0; g < guards; ++g)
                sb.guard_taken.push_back(*p++ ? 1 : 0);
            plan.blocks.push_back(std::move(sb));
        }
    } catch (const Error &) {
        return std::nullopt;
    }
    if (p != end)
        return std::nullopt; // trailing bytes: treat as corrupt
    return plan;
}

std::string
codeCachePath(const std::string &dir, uint64_t fingerprint)
{
    return dir + strPrintf("/jit_%016llx.plan",
                           static_cast<unsigned long long>(fingerprint));
}

bool
saveCompiledPlan(const std::string &dir, uint64_t fingerprint,
                 const SuperblockPlan &plan)
{
    const std::string payload = encodePlan(plan, fingerprint);
    return writeFileAtomically(codeCachePath(dir, fingerprint),
                               [&](std::ofstream &os) {
                                   os.write(payload.data(),
                                            static_cast<std::streamsize>(
                                                payload.size()));
                               }) > 0;
}

std::optional<SuperblockPlan>
loadCompiledPlan(const std::string &dir, uint64_t fingerprint)
{
    std::ifstream in(codeCachePath(dir, fingerprint),
                     std::ios::in | std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return decodePlan(ss.str(), fingerprint);
}

} // namespace ifprob::vm::jit

#ifndef IFPROB_VM_JIT_TRACE_UNIT_H
#define IFPROB_VM_JIT_TRACE_UNIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "vm/decode.h"

namespace ifprob::vm::jit {

/**
 * The trace tier's compiled execution units (see docs/vm.md).
 *
 * A superblock — one hot path through the control-flow graph, selected
 * from profile data or the BTFNT heuristic — is template-compiled into
 * a straight-line array of TraceSteps. Interior dispatch disappears
 * (steps fall through), per-instruction fuel accounting is hoisted to a
 * single entry/iteration guard, and branches become *guards*: the
 * branch fully commits (site counts, observer event) and execution
 * falls through while the actual direction matches the predicted one,
 * or side-exits back into the fast engine at the off-trace target.
 *
 * Statistics bookkeeping is batched: the hot path writes no counters at
 * all. A fully committed pass applies the trace's precomputed per-pass
 * aggregate (guards executed, jumps, selects, per-site deltas); a side
 * exit replays the committed prefix step-by-step from the step array.
 * Both reproduce the reference engine's counters bit for bit — the
 * contract tests/test_vm_engines.cpp enforces three ways.
 */

/** X-macro over every trace-step op, keeping the enum, the executor's
 *  computed-goto label table, and traceOpName in lockstep. The first
 *  two groups must stay in isa::binaryAluIndex / isa::unaryAluIndex
 *  order (mirroring IFPROB_VM_HANDLERS). Ops suffixed `Guard` can
 *  side-exit *before* executing so the fast engine re-executes the
 *  instruction and traps with the reference message. */
#define IFPROB_JIT_TRACE_OPS(X)                                           \
    /* two-source ALU */                                                  \
    X(TAdd) X(TSub) X(TMul) X(TDivGuard) X(TRemGuard)                     \
    X(TAnd) X(TOr) X(TXor) X(TShl) X(TShr)                                \
    X(TCmpEq) X(TCmpNe) X(TCmpLt) X(TCmpLe) X(TCmpGt) X(TCmpGe)           \
    X(TFAdd) X(TFSub) X(TFMul) X(TFDiv)                                   \
    X(TFCmpEq) X(TFCmpNe) X(TFCmpLt) X(TFCmpLe) X(TFCmpGt) X(TFCmpGe)     \
    /* single-source ALU */                                               \
    X(TNeg) X(TNot) X(TFNeg) X(TFAbs) X(TFSqrt) X(TFExp) X(TFLog)         \
    X(TFSin) X(TFCos) X(TItoF) X(TFtoI)                                   \
    /* moves, memory, environment */                                      \
    X(TMov) X(TMovI)                                                      \
    X(TLoadRegGuard) X(TLoadAbs) X(TStoreRegGuard) X(TStoreAbs)           \
    X(TSelect) X(TGetc) X(TPutc) X(TPutF) X(TArg) X(TNop)                 \
    /* control inside the trace (TJmpEnd: a trailing jump fused with    \
       the pass end, so a loop's bottom costs one dispatch, not two) */   \
    X(TJmp) X(TJmpEnd) X(TGuard)                                          \
    /* fused compare+guard (this step + the guard in the next step) */    \
    X(TFuseCmpEqGuard) X(TFuseCmpNeGuard) X(TFuseCmpLtGuard)              \
    X(TFuseCmpLeGuard) X(TFuseCmpGtGuard) X(TFuseCmpGeGuard)              \
    X(TFuseFCmpEqGuard) X(TFuseFCmpNeGuard) X(TFuseFCmpLtGuard)           \
    X(TFuseFCmpLeGuard) X(TFuseFCmpGtGuard) X(TFuseFCmpGeGuard)           \
    /* fused movI+ALU (constant staged into the next step's src2) */      \
    X(TFuseMovIAdd) X(TFuseMovISub) X(TFuseMovIMul) X(TFuseMovIAnd)       \
    X(TFuseMovIOr) X(TFuseMovIXor) X(TFuseMovIShl) X(TFuseMovIShr)        \
    X(TFuseMovICmpEq) X(TFuseMovICmpNe) X(TFuseMovICmpLt)                 \
    X(TFuseMovICmpLe) X(TFuseMovICmpGt) X(TFuseMovICmpGe)                 \
    /* fused movI+ALU+guard: test against a constant, then guard */       \
    X(TFuseMovIAndGuard)                                                  \
    X(TFuseMovICmpEqGuard) X(TFuseMovICmpNeGuard) X(TFuseMovICmpLtGuard)  \
    X(TFuseMovICmpLeGuard) X(TFuseMovICmpGtGuard) X(TFuseMovICmpGeGuard)  \
    /* sentinel terminating every step array */                           \
    X(TEnd)

enum TraceOp : uint16_t {
#define IFPROB_JIT_TRACE_OP_ENUM(op) k##op,
    IFPROB_JIT_TRACE_OPS(IFPROB_JIT_TRACE_OP_ENUM)
#undef IFPROB_JIT_TRACE_OP_ENUM
    kNumTraceOps
};

/** Trace-op mnemonic, for tests and debugging. */
std::string_view traceOpName(TraceOp op);

/** TraceStep::flags bits. */
enum : uint8_t {
    kStepPredTaken = 1, ///< guard steps: the predicted (fall-through) way
    kStepLoops = 2,     ///< TEnd: the trace's tail falls back to its head
    /** Guard steps: the predicted successor is the TEnd sentinel (the
     *  loop-closing bottom test of a rotated loop). The executor's
     *  guard tail falls straight into the end-of-pass logic, skipping
     *  the TEnd dispatch. */
    kStepClosesPass = 4,
};

/**
 * One step of a compiled trace: 40 bytes, hot fields first.
 *
 * `op` is the dispatch code (a fused group's head carries the fused op;
 * its component steps remain in the array as data with their own
 * single-op codes). `base` is always the single-op code — the side-exit
 * replay walks it to reconstruct exact counters. `end_icount` is the
 * number of original instructions retired once this step's group has
 * committed, relative to the pass's entry; the executor turns these
 * prefix offsets into exact observer instruction counts and exit
 * icounts without per-step increments.
 */
struct TraceStep
{
    uint16_t op = kTNop;
    uint16_t base = kTNop;
    uint16_t end_icount = 0;
    uint8_t cost = 1;  ///< original instructions in this dispatch group
    uint8_t flags = 0;
    int32_t a = -1;
    int32_t b = -1;
    int32_t c = -1;
    int64_t imm = 0;   ///< immediate; guards: the branch site id
    int32_t exit_pc = -1; ///< guards: off-trace resume pc; TEnd: resume pc
    int32_t pc = -1;      ///< original decoded pc of this instruction
};
static_assert(sizeof(TraceStep) == 40, "keep the step stream compact");

/** Per-pass branch-site delta, applied in bulk on commit. */
struct SiteDelta
{
    int32_t site = 0;
    int32_t executed = 0;
    int32_t taken = 0;
};

/** One compiled superblock. */
struct CompiledTrace
{
    int32_t func = 0;
    int32_t head_pc = 0;
    /** The head slot's pre-patch fast-path handler: dispatched instead
     *  of entering when the remaining fuel cannot cover a full pass. */
    uint16_t head_handler = 0;
    /** Original instructions retired by one full pass; the fuel guard
     *  admits a pass only while icount + total_cost stays within the
     *  fast engine's unchecked budget. */
    int64_t total_cost = 0;
    bool loops = false; ///< tail falls through to head (executor iterates)
    std::vector<TraceStep> steps; ///< terminated by one TEnd step
    /** Per-pass counter aggregate (see batched bookkeeping above). */
    int64_t agg_guards = 0;
    int64_t agg_taken = 0;
    int64_t agg_jumps = 0;
    int64_t agg_selects = 0;
    std::vector<SiteDelta> site_deltas;
};

/** Compile-time accounting, surfaced through obs and bench/micro_vm. */
struct JitBuildStats
{
    int64_t traces = 0;
    int64_t steps = 0;        ///< step entries excluding TEnd sentinels
    int64_t guards = 0;       ///< guard steps across all traces
    int64_t fused_steps = 0;  ///< steps carrying a fused dispatch code
    int64_t loop_traces = 0;
    int64_t compile_micros = 0;
    std::string source;       ///< "static" | "profile" | "disk"
};

/**
 * A full trace tier for one program: a patched copy of the pre-decoded
 * stream whose superblock-head slots dispatch kHEnterTrace (only the
 * fast-path `handler` field is patched — `unfused` is untouched, so the
 * budget-checked tail loop and trap parity are unaffected), plus the
 * per-function entry index and the compiled units. Immutable after
 * construction; the tier controller swaps whole TracePrograms.
 */
struct TraceProgram
{
    DecodedProgram decoded;
    /** Per function, per decoded pc: unit index or -1. Sized like the
     *  decoded stream (sentinel slot included). */
    std::vector<std::vector<int32_t>> entry;
    std::vector<CompiledTrace> units;
    JitBuildStats build;
};

} // namespace ifprob::vm::jit

#endif // IFPROB_VM_JIT_TRACE_UNIT_H

#include "vm/jit/trace_unit.h"

namespace ifprob::vm::jit {

std::string_view
traceOpName(TraceOp op)
{
    static constexpr std::string_view kNames[] = {
#define IFPROB_JIT_TRACE_OP_NAME(o) #o,
        IFPROB_JIT_TRACE_OPS(IFPROB_JIT_TRACE_OP_NAME)
#undef IFPROB_JIT_TRACE_OP_NAME
    };
    if (op >= kNumTraceOps)
        return "?";
    return kNames[op];
}

} // namespace ifprob::vm::jit

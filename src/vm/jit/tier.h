#ifndef IFPROB_VM_JIT_TIER_H
#define IFPROB_VM_JIT_TIER_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "isa/program.h"
#include "vm/decode.h"
#include "vm/jit/superblock.h"
#include "vm/jit/trace_unit.h"
#include "vm/run_stats.h"

namespace ifprob::vm::jit {

/**
 * Hotness-triggered tiering for one Machine (see docs/vm.md).
 *
 * Construction compiles the tier-0 plan: the on-disk code cache when
 * IFPROB_JIT_CACHE_DIR names a directory holding a valid plan for this
 * program's fingerprint, else BTFNT-static selection. Completed runs
 * feed their branch profiles back through onRunCompleted(); once the
 * accumulated conditional-branch volume crosses hot_threshold the
 * controller re-selects superblocks from the measured profile,
 * recompiles once, atomically swaps the tier, and persists the
 * profile-guided plan to the cache directory (when set).
 *
 * Thread-safe: concurrent const Machine::run calls race current()
 * against onRunCompleted(); readers hold a shared_ptr to an immutable
 * TraceProgram, so a swap never invalidates an in-flight run. The
 * engine contract makes tiering invisible to results — every
 * TraceProgram produces bit-identical RunStats/output/events.
 */
struct TierConfig
{
    /** Accumulated conditional branches that trigger the one
     *  profile-guided recompile. */
    int64_t hot_threshold = 20000;
    SuperblockConfig superblock;
};

class TierController
{
  public:
    using Config = TierConfig;

    /** @p program must outlive the controller; @p decoded is copied
     *  (recompiles re-lower against the unpatched stream). */
    TierController(const isa::Program &program,
                   const DecodedProgram &decoded, Config config = {});

    /** The live tier. Never null; may be superseded by a later swap. */
    std::shared_ptr<const TraceProgram> current() const;

    /** Fold one completed (un-trapped) run's profile into the hotness
     *  accumulator; may trigger the profile recompile. */
    void onRunCompleted(const RunStats &stats);

    /** Build accounting of the live tier (copy). */
    JitBuildStats buildStats() const;

    /** Profile-guided recompiles performed (0 or 1). */
    int64_t tierUps() const;

    /** Wall-clock spent compiling across all tiers, microseconds. */
    int64_t compileMicros() const;

  private:
    const isa::Program &program_;
    const DecodedProgram decoded_; ///< unpatched copy for recompiles
    const Config config_;
    const uint64_t fingerprint_;
    const std::string cache_dir_; ///< IFPROB_JIT_CACHE_DIR at ctor, or ""

    mutable std::mutex mu_;
    std::shared_ptr<const TraceProgram> current_;
    std::vector<BranchCounts> accum_;
    int64_t accum_branches_ = 0;
    int64_t tier_ups_ = 0;
    int64_t compile_micros_ = 0;
    bool profiled_ = false; ///< live tier already profile-guided
};

} // namespace ifprob::vm::jit

#endif // IFPROB_VM_JIT_TIER_H

#ifndef IFPROB_VM_JIT_EXECUTOR_H
#define IFPROB_VM_JIT_EXECUTOR_H

#include <cstdint>

#include "vm/engine_internal.h"
#include "vm/jit/trace_unit.h"

namespace ifprob::vm::jit {

/** Where a trace pass hands control back to the fast engine. */
struct TraceExit
{
    int32_t resume_pc = 0;
    /**
     * true: resume normal fast-path dispatch at resume_pc (the trace
     * committed through a guard mispredict or its end). false: the next
     * instruction *will trap* (zero divisor, out-of-range address) and
     * has not executed — the fast engine must dispatch that slot's
     * unfused handler exactly once so the trap carries the reference
     * message, and must not re-enter a trace patched over it.
     */
    bool reenter = true;
};

/**
 * Execute passes of @p t starting at its head until a side exit, a trap
 * guard, or fuel/end. The caller (kHEnterTrace in engine.cpp) has
 * already checked icount + t.total_cost <= fast_limit; loop-closing
 * traces iterate in place while that invariant holds. @p icount is
 * advanced to the exact retired-instruction count at exit; RunStats and
 * RunResult::jit are updated via the batched scheme described in
 * trace_unit.h.
 */
template <bool HasObserver>
TraceExit runTraceUnit(detail::ExecState &s, const CompiledTrace &t,
                       int64_t *regs, int64_t &icount,
                       int64_t fast_limit);

extern template TraceExit runTraceUnit<false>(detail::ExecState &,
                                              const CompiledTrace &,
                                              int64_t *, int64_t &,
                                              int64_t);
extern template TraceExit runTraceUnit<true>(detail::ExecState &,
                                             const CompiledTrace &,
                                             int64_t *, int64_t &,
                                             int64_t);

} // namespace ifprob::vm::jit

#endif // IFPROB_VM_JIT_EXECUTOR_H

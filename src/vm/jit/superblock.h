#ifndef IFPROB_VM_JIT_SUPERBLOCK_H
#define IFPROB_VM_JIT_SUPERBLOCK_H

#include <cstdint>
#include <vector>

#include "isa/program.h"
#include "vm/decode.h"
#include "vm/run_stats.h"

namespace ifprob::vm::jit {

/**
 * One selected superblock: a head pc plus the branch directions taken
 * along the path, in encounter order. The path itself is not stored —
 * compileTraces re-walks the decoded stream from the head applying the
 * directions, which keeps the on-disk plan format compact and makes a
 * stale plan (program changed under the cache) detectable as a walk
 * mismatch.
 */
struct Superblock
{
    int32_t func = 0;
    int32_t head_pc = 0;
    int32_t steps = 0; ///< original instructions included in the path
    std::vector<uint8_t> guard_taken; ///< per-guard predicted direction
};

struct SuperblockPlan
{
    std::vector<Superblock> blocks;
    bool profile_guided = false;
};

struct SuperblockConfig
{
    /** Longest path one superblock may cover (original instructions). */
    int max_steps = 256;
    /** Program-wide cap on selected superblocks. */
    int max_traces = 1024;
    /** Follow a profiled branch only when its majority direction holds
     *  at least this fraction of executions; below it the trace ends at
     *  the branch (the fast engine dispatches it as usual). */
    double min_bias = 0.70;
    /** Profile support below this falls back to ending the trace (the
     *  site is too cold to trust either direction). */
    int64_t min_site_executed = 16;
    /** Keep a non-loop trace only when it covers at least this many
     *  instructions — short straight-line prefixes cost more in
     *  entry/exit overhead than their hoisted checks save. Loop-closing
     *  traces are always kept (the executor iterates them in place). */
    int min_straight_steps = 16;
    /** Any trace must cover at least this many instructions. */
    int min_steps = 3;
};

/**
 * Select superblocks for @p program: seeds at loop heads (targets of
 * backward branches and jumps), grown along the dominant branch
 * direction. With @p profile (per-site BranchCounts, RunStats.branches
 * shape) directions follow the measured majority subject to
 * SuperblockConfig's bias/support thresholds; with profile == nullptr
 * the BTFNT heuristic decides (backward taken, forward not taken —
 * the paper's loop heuristic). Deterministic for identical inputs.
 */
SuperblockPlan selectSuperblocks(const isa::Program &program,
                                 const DecodedProgram &decoded,
                                 const std::vector<BranchCounts> *profile,
                                 const SuperblockConfig &config = {});

} // namespace ifprob::vm::jit

#endif // IFPROB_VM_JIT_SUPERBLOCK_H

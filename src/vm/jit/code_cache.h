#ifndef IFPROB_VM_JIT_CODE_CACHE_H
#define IFPROB_VM_JIT_CODE_CACHE_H

#include <cstdint>
#include <optional>
#include <string>

#include "vm/jit/superblock.h"

namespace ifprob::vm::jit {

/**
 * On-disk compiled-trace index (the trace tier's code cache).
 *
 * What persists is the superblock *plan* — head pcs plus guard
 * directions — not the lowered step arrays: compileTraces re-lowers a
 * loaded plan against the current decoded stream in microseconds, and
 * the re-walk doubles as a staleness check (a block that no longer
 * matches is dropped). Format, all little-endian via support/binio:
 *
 *   "IFPROBJC" | u32 version | u32 reserved | u64 program fingerprint
 *   | varint block count | per block: varint func, head_pc, steps,
 *   guard count, then one byte per guard direction | u64 FNV-1a
 *   checksum of everything before it.
 *
 * Only profile-guided plans are saved (a BTFNT plan is recomputed
 * faster than it is read). Writes go through writeFileAtomically, so a
 * concurrent reader never sees a torn entry; any load failure —
 * missing file, bad magic/version/fingerprint/checksum, truncation —
 * returns nullopt and the tier falls back to fresh selection.
 */

inline constexpr char kCodeCacheMagic[8] = {'I', 'F', 'P', 'R',
                                            'O', 'B', 'J', 'C'};
inline constexpr uint32_t kCodeCacheVersion = 1;

/** Serialized form of @p plan for @p fingerprint. */
std::string encodePlan(const SuperblockPlan &plan, uint64_t fingerprint);

/** Parse @p payload; nullopt on any corruption or on a fingerprint
 *  mismatch (when @p expected_fingerprint is nonzero). */
std::optional<SuperblockPlan> decodePlan(const std::string &payload,
                                         uint64_t expected_fingerprint);

/** Cache-entry path for @p fingerprint under @p dir. */
std::string codeCachePath(const std::string &dir, uint64_t fingerprint);

/** Atomically persist @p plan; returns false when the write could not
 *  complete (cache degradation, not an error). */
bool saveCompiledPlan(const std::string &dir, uint64_t fingerprint,
                      const SuperblockPlan &plan);

/** Load the plan cached for @p fingerprint, or nullopt. */
std::optional<SuperblockPlan> loadCompiledPlan(const std::string &dir,
                                               uint64_t fingerprint);

} // namespace ifprob::vm::jit

#endif // IFPROB_VM_JIT_CODE_CACHE_H

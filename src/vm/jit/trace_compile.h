#ifndef IFPROB_VM_JIT_TRACE_COMPILE_H
#define IFPROB_VM_JIT_TRACE_COMPILE_H

#include "isa/program.h"
#include "vm/decode.h"
#include "vm/jit/superblock.h"
#include "vm/jit/trace_unit.h"

namespace ifprob::vm::jit {

/** How the superblock walker treats one decoded operation. */
enum class StepClass : uint8_t {
    kStraight, ///< falls through to pc+1 (loads/stores/ALU/env included)
    kBranch,   ///< kBr: becomes a guard when a trace crosses it
    kJump,     ///< kJmp: linearized away inside a trace
    kEnd,      ///< ends any trace (calls, returns, halt, static traps)
};

/** Classify the *unfused* handler @p h (superblock selection and trace
 *  compilation must walk the same single-operation stream). */
StepClass classifyStep(uint16_t h);

/**
 * Template-compile @p plan against the pre-decoded stream: each
 * superblock is re-walked from its head applying the recorded guard
 * directions and lowered to a straight-line TraceStep array (interior
 * jumps disappear, branches become guards, a re-fusion peephole plants
 * the same superinstruction shapes the fast engine uses), then the head
 * slots of a *copy* of @p decoded are patched to dispatch kHEnterTrace.
 *
 * A superblock whose walk no longer matches the decoded stream (a stale
 * on-disk plan) is dropped rather than compiled — the remaining blocks
 * still form a valid tier, and a fully stale plan degrades to the plain
 * fast engine. @p source tags JitBuildStats ("static" / "profile" /
 * "disk").
 */
TraceProgram compileTraces(const isa::Program &program,
                           const DecodedProgram &decoded,
                           const SuperblockPlan &plan,
                           std::string_view source);

} // namespace ifprob::vm::jit

#endif // IFPROB_VM_JIT_TRACE_COMPILE_H

#ifndef IFPROB_VM_DECODE_H
#define IFPROB_VM_DECODE_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "isa/program.h"

namespace ifprob::vm {

/** Most arguments one call may stage (shared by both interpreter cores
 *  and the pre-decoder's kArg range check). */
constexpr int kMaxArgs = 64;

/**
 * The fast engine's pre-decoded instruction stream (see docs/vm.md).
 *
 * At Machine construction every isa::Instruction is resolved to a dense
 * Handler index: each ALU opcode gets its own slot (no
 * isBinaryAlu/isUnaryAlu fallback chain), loads/stores are split into
 * register-relative and pre-validated absolute forms, kMovF collapses
 * into kHMovI (the immediate already carries the bit pattern), and
 * statically invalid operations (out-of-range absolute address,
 * out-of-range kArg index) become dedicated trap handlers so the run
 * loop carries no redundant validation.
 *
 * A peephole pass then plants superinstructions: a slot whose following
 * slot completes a compare+branch or movI+ALU pair gets a fused handler
 * that executes both operations in one dispatch. Fusion rewrites only
 * the fused slot's fast-path handler; the second slot keeps its own
 * handler, so control entering mid-pair (a branch target, a call resume
 * point) still executes correctly, and decoded pcs stay identical to
 * isa pcs — no target rewriting, and trap contexts match the reference
 * engine exactly.
 */

/** X-macro over every handler, keeping the enum and the computed-goto
 *  label table in engine.cpp in lockstep. Order of the first two groups
 *  must match isa::binaryAluIndex / isa::unaryAluIndex. */
#define IFPROB_VM_HANDLERS(X)                                             \
    /* two-source ALU, one handler per opcode */                          \
    X(HAdd) X(HSub) X(HMul) X(HDiv) X(HRem)                               \
    X(HAnd) X(HOr) X(HXor) X(HShl) X(HShr)                                \
    X(HCmpEq) X(HCmpNe) X(HCmpLt) X(HCmpLe) X(HCmpGt) X(HCmpGe)           \
    X(HFAdd) X(HFSub) X(HFMul) X(HFDiv)                                   \
    X(HFCmpEq) X(HFCmpNe) X(HFCmpLt) X(HFCmpLe) X(HFCmpGt) X(HFCmpGe)     \
    /* single-source ALU */                                               \
    X(HNeg) X(HNot) X(HFNeg) X(HFAbs) X(HFSqrt) X(HFExp) X(HFLog)         \
    X(HFSin) X(HFCos) X(HItoF) X(HFtoI)                                   \
    /* moves */                                                           \
    X(HMov) X(HMovI)                                                      \
    /* memory */                                                          \
    X(HLoadReg) X(HLoadAbs) X(HLoadTrap)                                  \
    X(HStoreReg) X(HStoreAbs) X(HStoreTrap)                               \
    /* control and environment */                                         \
    X(HBr) X(HJmp) X(HArg) X(HArgTrap) X(HCall) X(HICall)                 \
    X(HRet) X(HRetVoid) X(HSelect)                                        \
    X(HGetc) X(HPutc) X(HPutF) X(HHalt) X(HNop)                           \
    /* sentinel appended after each function's last instruction */        \
    X(HOffEnd)                                                            \
    /* fused compare+branch (this slot + the kBr in the next slot) */     \
    X(HFuseCmpEqBr) X(HFuseCmpNeBr) X(HFuseCmpLtBr) X(HFuseCmpLeBr)       \
    X(HFuseCmpGtBr) X(HFuseCmpGeBr)                                       \
    X(HFuseFCmpEqBr) X(HFuseFCmpNeBr) X(HFuseFCmpLtBr) X(HFuseFCmpLeBr)   \
    X(HFuseFCmpGtBr) X(HFuseFCmpGeBr)                                     \
    /* fused movI+ALU (constant staged into the next slot's src2) */      \
    X(HFuseMovIAdd) X(HFuseMovISub) X(HFuseMovIMul) X(HFuseMovIAnd)       \
    X(HFuseMovIOr) X(HFuseMovIXor) X(HFuseMovIShl) X(HFuseMovIShr)        \
    X(HFuseMovICmpEq) X(HFuseMovICmpNe) X(HFuseMovICmpLt)                 \
    X(HFuseMovICmpLe) X(HFuseMovICmpGt) X(HFuseMovICmpGe)                 \
    /* fused movI+ALU+branch (test against a constant, then branch):      \
       three instructions, one dispatch */                                \
    X(HFuseMovIAndBr)                                                     \
    X(HFuseMovICmpEqBr) X(HFuseMovICmpNeBr) X(HFuseMovICmpLtBr)           \
    X(HFuseMovICmpLeBr) X(HFuseMovICmpGtBr) X(HFuseMovICmpGeBr)           \
    /* trace-tier entry: a compiled superblock head (the jit tier         \
       patches this into a *copy* of the stream; only the fast-path       \
       handler field, never `unfused`) */                                 \
    X(HEnterTrace)

enum Handler : uint16_t {
#define IFPROB_VM_HANDLER_ENUM(h) k##h,
    IFPROB_VM_HANDLERS(IFPROB_VM_HANDLER_ENUM)
#undef IFPROB_VM_HANDLER_ENUM
    kNumHandlers
};

/** Handler mnemonic, for the disassembling tests and decode debugging. */
std::string_view handlerName(Handler h);

/**
 * One pre-decoded operation: 24 bytes, hot fields first. `handler` is
 * the fast-path dispatch index (possibly fused); `unfused` is always
 * the single-operation handler, dispatched by the budget-checked tail
 * loop so fuel exhaustion traps at exactly the same instruction as the
 * reference engine. kSelect's fourth register moves into imm.
 */
struct DecodedInsn
{
    uint16_t handler = kHNop;
    uint16_t unfused = kHNop;
    int32_t a = -1;
    int32_t b = -1;
    int32_t c = -1;
    int64_t imm = 0;
};
static_assert(sizeof(DecodedInsn) == 24, "keep the decoded stream compact");

struct DecodedFunction
{
    /** function code plus one kHOffEnd sentinel, so the run loop needs
     *  no per-instruction pc bounds check. */
    std::vector<DecodedInsn> code;
};

/** Decode-time accounting, surfaced through obs and bench/micro_vm. */
struct DecodeStats
{
    int64_t instructions = 0;  ///< decoded slots (sentinels excluded)
    int64_t fused_cmp_br = 0;  ///< slots carrying a compare+branch handler
    int64_t fused_movi_alu = 0;///< slots carrying a movI+ALU handler
    int64_t fused_movi_alu_br = 0; ///< slots carrying a 3-wide handler
    int64_t decode_micros = 0; ///< wall-clock spent decoding

    int64_t fusedSlots() const
    {
        return fused_cmp_br + fused_movi_alu + fused_movi_alu_br;
    }
    /** Static fraction of slots that dispatch as superinstructions. */
    double fusionRate() const
    {
        return instructions > 0 ? static_cast<double>(fusedSlots()) /
                                      static_cast<double>(instructions)
                                : 0.0;
    }
};

struct DecodedProgram
{
    std::vector<DecodedFunction> functions;
    /**
     * Upper bound on instructions executed between two budget
     * checkpoints of the fast run loop: the longest straight-line
     * extent (ending at a control transfer or a function's sentinel)
     * in the program. The fast loop runs unchecked while
     * icount <= max_instructions - max_block_cost, then hands the tail
     * to the per-instruction-checked loop.
     */
    int64_t max_block_cost = 1;
    DecodeStats stats;
};

/** Pre-decode @p program (which must already validate()). */
DecodedProgram decodeProgram(const isa::Program &program);

} // namespace ifprob::vm

#endif // IFPROB_VM_DECODE_H

#include "vm/decode.h"

#include <algorithm>

#include "support/error.h"

namespace ifprob::vm {

using isa::Instruction;
using isa::Opcode;

std::string_view
handlerName(Handler h)
{
    static constexpr std::string_view kNames[] = {
#define IFPROB_VM_HANDLER_NAME(n) #n,
        IFPROB_VM_HANDLERS(IFPROB_VM_HANDLER_NAME)
#undef IFPROB_VM_HANDLER_NAME
    };
    if (h >= kNumHandlers)
        return "?";
    return kNames[h];
}

namespace {

/** Fused handler for a compare opcode followed by a kBr on its result. */
Handler
fusedCompareBranch(Opcode op)
{
    switch (op) {
      case Opcode::kCmpEq: return kHFuseCmpEqBr;
      case Opcode::kCmpNe: return kHFuseCmpNeBr;
      case Opcode::kCmpLt: return kHFuseCmpLtBr;
      case Opcode::kCmpLe: return kHFuseCmpLeBr;
      case Opcode::kCmpGt: return kHFuseCmpGtBr;
      case Opcode::kCmpGe: return kHFuseCmpGeBr;
      case Opcode::kFCmpEq: return kHFuseFCmpEqBr;
      case Opcode::kFCmpNe: return kHFuseFCmpNeBr;
      case Opcode::kFCmpLt: return kHFuseFCmpLtBr;
      case Opcode::kFCmpLe: return kHFuseFCmpLeBr;
      case Opcode::kFCmpGt: return kHFuseFCmpGtBr;
      case Opcode::kFCmpGe: return kHFuseFCmpGeBr;
      default: return kNumHandlers;
    }
}

/** Fused handler for kMovI feeding the next ALU op's src2; restricted
 *  to operations that can never trap (no kDiv/kRem). */
Handler
fusedMovIAlu(Opcode op)
{
    switch (op) {
      case Opcode::kAdd: return kHFuseMovIAdd;
      case Opcode::kSub: return kHFuseMovISub;
      case Opcode::kMul: return kHFuseMovIMul;
      case Opcode::kAnd: return kHFuseMovIAnd;
      case Opcode::kOr: return kHFuseMovIOr;
      case Opcode::kXor: return kHFuseMovIXor;
      case Opcode::kShl: return kHFuseMovIShl;
      case Opcode::kShr: return kHFuseMovIShr;
      case Opcode::kCmpEq: return kHFuseMovICmpEq;
      case Opcode::kCmpNe: return kHFuseMovICmpNe;
      case Opcode::kCmpLt: return kHFuseMovICmpLt;
      case Opcode::kCmpLe: return kHFuseMovICmpLe;
      case Opcode::kCmpGt: return kHFuseMovICmpGt;
      case Opcode::kCmpGe: return kHFuseMovICmpGe;
      default: return kNumHandlers;
    }
}

/** Fused handler for kMovI feeding a test op whose result the next kBr
 *  branches on; the common shape of `if (x & C)` / `if (x OP C)` and of
 *  counted-loop conditions. Three instructions, one dispatch. */
Handler
tripleMovIAluBr(Opcode op)
{
    switch (op) {
      case Opcode::kAnd: return kHFuseMovIAndBr;
      case Opcode::kCmpEq: return kHFuseMovICmpEqBr;
      case Opcode::kCmpNe: return kHFuseMovICmpNeBr;
      case Opcode::kCmpLt: return kHFuseMovICmpLtBr;
      case Opcode::kCmpLe: return kHFuseMovICmpLeBr;
      case Opcode::kCmpGt: return kHFuseMovICmpGtBr;
      case Opcode::kCmpGe: return kHFuseMovICmpGeBr;
      default: return kNumHandlers;
    }
}

Handler
baseHandler(const Instruction &insn, int64_t memory_words)
{
    int bi = isa::binaryAluIndex(insn.op);
    if (bi >= 0)
        return static_cast<Handler>(kHAdd + bi);
    int ui = isa::unaryAluIndex(insn.op);
    if (ui >= 0)
        return static_cast<Handler>(kHNeg + ui);
    switch (insn.op) {
      case Opcode::kMov: return kHMov;
      // kMovF's immediate already holds the double's bit pattern, so at
      // run time it is exactly kMovI.
      case Opcode::kMovI:
      case Opcode::kMovF: return kHMovI;
      case Opcode::kLoad:
        if (insn.b >= 0)
            return kHLoadReg;
        return insn.imm >= 0 && insn.imm < memory_words ? kHLoadAbs
                                                        : kHLoadTrap;
      case Opcode::kStore:
        if (insn.b >= 0)
            return kHStoreReg;
        return insn.imm >= 0 && insn.imm < memory_words ? kHStoreAbs
                                                        : kHStoreTrap;
      case Opcode::kBr: return kHBr;
      case Opcode::kJmp: return kHJmp;
      case Opcode::kArg:
        return insn.a >= 0 && insn.a < kMaxArgs ? kHArg : kHArgTrap;
      case Opcode::kCall: return kHCall;
      case Opcode::kICall: return kHICall;
      case Opcode::kRet: return insn.a == -1 ? kHRetVoid : kHRet;
      case Opcode::kSelect: return kHSelect;
      case Opcode::kGetc: return kHGetc;
      case Opcode::kPutc: return kHPutc;
      case Opcode::kPutF: return kHPutF;
      case Opcode::kHalt: return kHHalt;
      case Opcode::kNop: return kHNop;
      default:
        throw Error("decode: unimplemented opcode");
    }
}

} // namespace

DecodedProgram
decodeProgram(const isa::Program &program)
{
    DecodedProgram out;
    out.functions.resize(program.functions.size());
    int64_t max_block = 1;

    for (size_t fi = 0; fi < program.functions.size(); ++fi) {
        const auto &code = program.functions[fi].code;
        auto &dcode = out.functions[fi].code;
        dcode.resize(code.size() + 1);

        for (size_t pc = 0; pc < code.size(); ++pc) {
            const Instruction &insn = code[pc];
            DecodedInsn &d = dcode[pc];
            d.a = insn.a;
            d.b = insn.b;
            d.c = insn.c;
            d.imm = insn.op == Opcode::kSelect ? insn.d : insn.imm;
            d.handler = d.unfused =
                static_cast<uint16_t>(baseHandler(insn, program.memory_words));
            ++out.stats.instructions;
        }
        dcode[code.size()].handler = dcode[code.size()].unfused = kHOffEnd;

        // Superinstruction peephole: rewrite only the first slot's fast
        // handler, so the group stays enterable at its later slots.
        for (size_t pc = 0; pc + 1 < code.size(); ++pc) {
            const Instruction &cur = code[pc];
            const Instruction &nxt = code[pc + 1];
            if (pc + 2 < code.size() && cur.op == Opcode::kMovI &&
                nxt.c == cur.a && code[pc + 2].op == Opcode::kBr &&
                code[pc + 2].a == nxt.a &&
                tripleMovIAluBr(nxt.op) != kNumHandlers) {
                dcode[pc].handler =
                    static_cast<uint16_t>(tripleMovIAluBr(nxt.op));
                ++out.stats.fused_movi_alu_br;
                continue;
            }
            if ((isa::isIntCompare(cur.op) || isa::isFloatCompare(cur.op)) &&
                nxt.op == Opcode::kBr && nxt.a == cur.a) {
                dcode[pc].handler =
                    static_cast<uint16_t>(fusedCompareBranch(cur.op));
                ++out.stats.fused_cmp_br;
            } else if (cur.op == Opcode::kMovI && nxt.c == cur.a &&
                       fusedMovIAlu(nxt.op) != kNumHandlers) {
                dcode[pc].handler =
                    static_cast<uint16_t>(fusedMovIAlu(nxt.op));
                ++out.stats.fused_movi_alu;
            }
        }

        // Longest straight-line extent: instructions executed from any
        // entry point up to and including the next control transfer (or
        // up to the sentinel when code falls off the end).
        int64_t run = 0;
        for (const Instruction &insn : code) {
            ++run;
            if (isa::isControl(insn.op)) {
                max_block = std::max(max_block, run);
                run = 0;
            }
        }
        max_block = std::max(max_block, run);
    }

    out.max_block_cost = max_block;
    return out;
}

} // namespace ifprob::vm

#ifndef IFPROB_PREDICT_EVALUATE_H
#define IFPROB_PREDICT_EVALUATE_H

#include <cstdint>
#include <vector>

#include "predict/static_predictor.h"
#include "vm/run_stats.h"

namespace ifprob::predict {

/**
 * Score a static predictor against one target run.
 *
 * Because a static predictor fixes one direction per site, its dynamic
 * accuracy is fully determined by the per-site (executed, taken) counters:
 * predicting taken scores `taken` correct, predicting not-taken scores
 * `executed - taken`. No re-execution is needed.
 */
PredictionQuality evaluate(const vm::RunStats &target,
                           const StaticPredictor &predictor);

/**
 * Flatten a predictor's per-site decisions to one byte per site
 * (1 = taken). This pays the virtual predictTaken() calls exactly once;
 * the analysis plane's SoA kernels (analysis/soa.h) then evaluate the
 * lowered form against any number of targets without dispatch.
 */
std::vector<uint8_t> lowerPredictor(const StaticPredictor &predictor,
                                    size_t num_sites);

} // namespace ifprob::predict

#endif // IFPROB_PREDICT_EVALUATE_H

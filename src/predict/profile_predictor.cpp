#include "predict/profile_predictor.h"

namespace ifprob::predict {

ProfilePredictor::ProfilePredictor(const profile::ProfileDb &db,
                                   UnseenPolicy unseen)
{
    decisions_.resize(db.numSites());
    for (size_t i = 0; i < db.numSites(); ++i) {
        const auto &w = db.site(i);
        if (w.executed <= 0.0)
            decisions_[i] = unseen == UnseenPolicy::kTaken;
        else
            decisions_[i] = w.taken * 2.0 > w.executed;
    }
}

ProfilePredictor::ProfilePredictor(const profile::ProfileDb &db,
                                   const StaticPredictor &fallback)
{
    decisions_.resize(db.numSites());
    for (size_t i = 0; i < db.numSites(); ++i) {
        const auto &w = db.site(i);
        if (w.executed <= 0.0)
            decisions_[i] = fallback.predictTaken(static_cast<int>(i));
        else
            decisions_[i] = w.taken * 2.0 > w.executed;
    }
}

} // namespace ifprob::predict

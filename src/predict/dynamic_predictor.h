#ifndef IFPROB_PREDICT_DYNAMIC_PREDICTOR_H
#define IFPROB_PREDICT_DYNAMIC_PREDICTOR_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "predict/sat2.h"
#include "predict/static_predictor.h"
#include "vm/observer.h"

namespace ifprob::predict {

/**
 * Base for dynamic (hardware-style) predictors, attached to the VM as a
 * branch observer. These are the baselines the paper's related-work
 * section cites ([Smith 81], [Lee and Smith 84]): simple schemes predicted
 * 80-90% of branches in systems codes and 95-100% in scientific FORTRAN.
 *
 * Tables are per static site with no aliasing (an idealized
 * infinite-entry branch history table).
 */
class DynamicPredictor : public vm::BranchObserver
{
  public:
    void
    onBranch(int site_id, bool taken, int64_t /*instructions*/) final
    {
        ++total_;
        if (predict(site_id) == taken)
            ++correct_;
        update(site_id, taken);
    }

    /** Convenience overload for direct (non-VM) event feeding in tests. */
    void
    onBranch(int site_id, bool taken)
    {
        onBranch(site_id, taken, 0);
    }

    /** Dynamic predictors consume (site, taken) only; the batched
     *  decoder may skip materializing instruction counts. */
    bool wantsInstructionCounts() const override { return false; }

    int64_t total() const { return total_; }
    int64_t correct() const { return correct_; }
    int64_t mispredicted() const { return total_ - correct_; }

    double
    percentCorrect() const
    {
        if (total_ == 0)
            return 100.0;
        return 100.0 * static_cast<double>(correct_) /
               static_cast<double>(total_);
    }

  protected:
    virtual bool predict(int site_id) const = 0;
    virtual void update(int site_id, bool taken) = 0;

    /** Publish one decoded block's outcome from a batch kernel. The
     *  kernels accumulate in locals and tally once per block, keeping
     *  the running totals out of the inner loop. */
    void
    tally(int64_t total, int64_t correct)
    {
        total_ += total;
        correct_ += correct;
    }

  private:
    int64_t total_ = 0;
    int64_t correct_ = 0;
};

/** 1-bit last-direction predictor. One byte per site rather than a
 *  packed bit-vector: the batch kernel reads and writes a site's slot
 *  with plain loads/stores, and table size is not the point of an
 *  idealized infinite-entry predictor. */
class OneBitPredictor : public DynamicPredictor
{
  public:
    explicit OneBitPredictor(size_t num_sites, bool initial_taken = false)
        : last_(num_sites, initial_taken ? 1 : 0)
    {
    }

    void
    onBatch(const vm::EventBlock &block) override
    {
        uint8_t *last = last_.data();
        int64_t correct = 0;
        const int n = block.size;
        for (int i = 0; i < n; ++i) {
            const int32_t site = block.site_id[i];
            if (site < 0) // unavoidable break; statically predictable
                continue;
            const uint8_t tk = block.taken[i];
            uint8_t &slot = last[static_cast<uint32_t>(site)];
            // Store only on direction change: a repeating loop branch
            // re-reads its own byte every iteration, and skipping the
            // steady-state store keeps that load off the
            // store-to-load forwarding path (same trick as
            // zoo::BimodalPredictor::stepPacked).
            if (slot == tk) {
                ++correct;
            } else {
                slot = tk;
            }
        }
        tally(block.branch_count, correct);
    }

  protected:
    bool
    predict(int site_id) const override
    {
        return last_[static_cast<size_t>(site_id)] != 0;
    }

    void
    update(int site_id, bool taken) override
    {
        last_[static_cast<size_t>(site_id)] = taken ? 1 : 0;
    }

  private:
    std::vector<uint8_t> last_;
};

/** 2-bit saturating-counter predictor (counters start weakly not-taken;
 *  the transition function lives in predict/sat2.h, shared with every
 *  other counter-based scheme in the tree). */
class TwoBitPredictor : public DynamicPredictor
{
  public:
    explicit TwoBitPredictor(size_t num_sites,
                             uint8_t initial = kSat2WeaklyNotTaken)
        : counters_(num_sites, initial)
    {
    }

    void
    onBatch(const vm::EventBlock &block) override
    {
        uint8_t *counters = counters_.data();
        int64_t correct = 0;
        const int n = block.size;
        for (int i = 0; i < n; ++i) {
            const int32_t site = block.site_id[i];
            if (site < 0)
                continue;
            const uint8_t tk = block.taken[i];
            uint8_t &c = counters[static_cast<uint32_t>(site)];
            const uint8_t cur = c;
            correct += (sat2Taken(cur) == (tk != 0));
            const uint8_t next = sat2Next(cur, tk);
            // Saturated-counter skip: see zoo::BimodalPredictor.
            if (cur != next)
                c = next;
        }
        tally(block.branch_count, correct);
    }

  protected:
    bool
    predict(int site_id) const override
    {
        return sat2Taken(counters_[static_cast<size_t>(site_id)]);
    }

    void
    update(int site_id, bool taken) override
    {
        uint8_t &c = counters_[static_cast<size_t>(site_id)];
        c = sat2Next(c, taken ? 1u : 0u);
    }

  private:
    std::vector<uint8_t> counters_;
};

/**
 * gshare two-level adaptive predictor [McFarling 93]: a table of 2-bit
 * counters indexed by (site id XOR global history). Post-dates the paper
 * — included as the "what came next" baseline for dynamic prediction,
 * and, unlike the per-site tables above, models a *finite* table, so
 * aliasing effects are visible at small sizes.
 */
class GSharePredictor : public DynamicPredictor
{
  public:
    /** @p log2_entries in [1, 30]; @p history_bits in [0, 30]. */
    explicit GSharePredictor(int log2_entries, int history_bits = 12)
        : mask_((1u << log2_entries) - 1),
          history_mask_((history_bits >= 31)
                            ? 0x7fffffffu
                            : (1u << history_bits) - 1),
          counters_(1u << log2_entries, kSat2WeaklyNotTaken)
    {
    }

    void
    onBatch(const vm::EventBlock &block) override
    {
        uint8_t *counters = counters_.data();
        uint32_t history = history_;
        int64_t correct = 0;
        const int n = block.size;
        for (int i = 0; i < n; ++i) {
            const int32_t site = block.site_id[i];
            if (site < 0)
                continue;
            const uint32_t tk = block.taken[i];
            const size_t idx =
                (static_cast<uint32_t>(site) ^ history) & mask_;
            const uint8_t c = counters[idx];
            correct += (sat2Taken(c) == (tk != 0));
            const uint8_t next = sat2Next(c, tk);
            // Saturated-counter skip: see zoo::BimodalPredictor.
            if (c != next)
                counters[idx] = next;
            history = ((history << 1) | tk) & history_mask_;
        }
        history_ = history;
        tally(block.branch_count, correct);
    }

  protected:
    bool
    predict(int site_id) const override
    {
        return sat2Taken(counters_[index(site_id)]);
    }

    void
    update(int site_id, bool taken) override
    {
        uint8_t &c = counters_[index(site_id)];
        c = sat2Next(c, taken ? 1u : 0u);
        history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
    }

  private:
    size_t
    index(int site_id) const
    {
        return (static_cast<uint32_t>(site_id) ^ history_) & mask_;
    }

    uint32_t mask_;
    uint32_t history_mask_;
    uint32_t history_ = 0;
    std::vector<uint8_t> counters_;
};

/**
 * A static predictor observed dynamically. Exists to cross-check
 * evaluate() (the closed-form scoring) against event-by-event scoring in
 * tests, and to make static/dynamic comparisons under one interface.
 */
class StaticAsDynamic : public DynamicPredictor
{
  public:
    explicit StaticAsDynamic(const StaticPredictor &inner) : inner_(inner) {}

  protected:
    bool
    predict(int site_id) const override
    {
        return inner_.predictTaken(site_id);
    }

    void update(int, bool) override {}

  private:
    const StaticPredictor &inner_;
};

} // namespace ifprob::predict

#endif // IFPROB_PREDICT_DYNAMIC_PREDICTOR_H

#ifndef IFPROB_PREDICT_STATIC_PREDICTOR_H
#define IFPROB_PREDICT_STATIC_PREDICTOR_H

#include <cstdint>

namespace ifprob::predict {

/**
 * A static branch predictor: one fixed direction per static branch site,
 * decided before the program runs (the compile-time annotation the
 * IFPROBBER directives carried back into the source).
 */
class StaticPredictor
{
  public:
    virtual ~StaticPredictor() = default;

    /** True to predict the branch at @p site_id goes taken. */
    virtual bool predictTaken(int site_id) const = 0;
};

/** Quality of a static predictor against one target run. */
struct PredictionQuality
{
    int64_t executed = 0;     ///< dynamic conditional branches
    int64_t correct = 0;
    int64_t mispredicted = 0;

    double
    percentCorrect() const
    {
        if (executed == 0)
            return 100.0;
        return 100.0 * static_cast<double>(correct) /
               static_cast<double>(executed);
    }
};

} // namespace ifprob::predict

#endif // IFPROB_PREDICT_STATIC_PREDICTOR_H

#include "predict/evaluate.h"

namespace ifprob::predict {

PredictionQuality
evaluate(const vm::RunStats &target, const StaticPredictor &predictor)
{
    PredictionQuality q;
    for (size_t i = 0; i < target.branches.size(); ++i) {
        const auto &b = target.branches[i];
        if (b.executed == 0)
            continue;
        q.executed += b.executed;
        int64_t correct = predictor.predictTaken(static_cast<int>(i))
                              ? b.taken
                              : b.executed - b.taken;
        q.correct += correct;
        q.mispredicted += b.executed - correct;
    }
    return q;
}

std::vector<uint8_t>
lowerPredictor(const StaticPredictor &predictor, size_t num_sites)
{
    std::vector<uint8_t> dir(num_sites, 0);
    for (size_t i = 0; i < num_sites; ++i)
        dir[i] = predictor.predictTaken(static_cast<int>(i)) ? 1 : 0;
    return dir;
}

} // namespace ifprob::predict

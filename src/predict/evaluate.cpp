#include "predict/evaluate.h"

namespace ifprob::predict {

PredictionQuality
evaluate(const vm::RunStats &target, const StaticPredictor &predictor)
{
    PredictionQuality q;
    for (size_t i = 0; i < target.branches.size(); ++i) {
        const auto &b = target.branches[i];
        if (b.executed == 0)
            continue;
        q.executed += b.executed;
        int64_t correct = predictor.predictTaken(static_cast<int>(i))
                              ? b.taken
                              : b.executed - b.taken;
        q.correct += correct;
        q.mispredicted += b.executed - correct;
    }
    return q;
}

} // namespace ifprob::predict

#ifndef IFPROB_PREDICT_HEURISTIC_PREDICTOR_H
#define IFPROB_PREDICT_HEURISTIC_PREDICTOR_H

#include <string_view>
#include <vector>

#include "isa/program.h"
#include "predict/static_predictor.h"

namespace ifprob::predict {

/**
 * Compile-time heuristic predictors that look only at the program, never
 * at a profile — the class of "very naive heuristics" the paper's
 * compiler used by default and found to give up about a factor of two in
 * instructions per break.
 */
enum class Heuristic {
    kAlwaysTaken,
    kAlwaysNotTaken,
    /** Loop heuristic: backward branches taken, forward not taken (the
     *  loop/non-loop distinction the paper tried). */
    kBackwardTaken,
    /**
     * Opcode/shape rules, in the spirit of [Bandyopadhyay 87] /
     * Ball-Larus: loops taken; switch-case tests not taken; equality
     * tests not taken, inequality tests taken; other comparisons fall
     * back to the loop rule.
     */
    kOpcodeRules,
};

std::string_view heuristicName(Heuristic heuristic);

/** Static predictor driven by one of the Heuristic rule sets. */
class HeuristicPredictor : public StaticPredictor
{
  public:
    HeuristicPredictor(const isa::Program &program, Heuristic heuristic);

    bool
    predictTaken(int site_id) const override
    {
        return decisions_[static_cast<size_t>(site_id)];
    }

  private:
    std::vector<bool> decisions_;
};

} // namespace ifprob::predict

#endif // IFPROB_PREDICT_HEURISTIC_PREDICTOR_H

#include "predict/zoo/zoo.h"

#include "predict/evaluate.h"
#include "predict/heuristic_predictor.h"
#include "predict/profile_predictor.h"
#include "predict/zoo/bimodal.h"
#include "predict/zoo/perceptron.h"
#include "predict/zoo/static_kernel.h"
#include "predict/zoo/tage.h"
#include "predict/zoo/twolevel.h"
#include "profile/profile_db.h"
#include "support/error.h"

namespace ifprob::predict::zoo {

namespace {

size_t
numSites(const ZooContext &context)
{
    return context.program.branch_sites.size();
}

/** Lower any StaticPredictor to a flat direction-byte observer. */
std::unique_ptr<DynamicPredictor>
lowered(const StaticPredictor &predictor, const ZooContext &context)
{
    return std::make_unique<StaticDirectionPredictor>(
        lowerPredictor(predictor, numSites(context)));
}

template <Heuristic H>
std::unique_ptr<DynamicPredictor>
makeHeuristic(const ZooContext &context)
{
    return lowered(HeuristicPredictor(context.program, H), context);
}

std::unique_ptr<DynamicPredictor>
makeProfileSelf(const ZooContext &context)
{
    const profile::ProfileDb db(context.workload, context.fingerprint,
                                context.self_profile);
    return lowered(ProfilePredictor(db), context);
}

std::unique_ptr<DynamicPredictor>
makeLastDirection(const ZooContext &context)
{
    return std::make_unique<OneBitPredictor>(numSites(context));
}

std::unique_ptr<DynamicPredictor>
makeTwoBitIdeal(const ZooContext &context)
{
    return std::make_unique<TwoBitPredictor>(numSites(context));
}

template <int Log2>
std::unique_ptr<DynamicPredictor>
makeBimodal(const ZooContext &)
{
    return std::make_unique<BimodalPredictor>(Log2);
}

template <int Log2, int HistoryBits>
std::unique_ptr<DynamicPredictor>
makeGShare(const ZooContext &)
{
    return std::make_unique<GSharePredictor>(Log2, HistoryBits);
}

template <int Log2, int HistoryBits>
std::unique_ptr<DynamicPredictor>
makeGSelect(const ZooContext &)
{
    return std::make_unique<GSelectPredictor>(Log2, HistoryBits);
}

std::unique_ptr<DynamicPredictor>
makePerceptron(const ZooContext &)
{
    return std::make_unique<PerceptronPredictor>();
}

std::unique_ptr<DynamicPredictor>
makeTage(const ZooContext &)
{
    return std::make_unique<TagePredictor>();
}

} // namespace

const std::vector<ZooSpec> &
defaultZoo()
{
    static const std::vector<ZooSpec> zoo = {
        // The 1992 schemes: the paper's profile predictor and the
        // static heuristics it compares against (Figure 1 / Table 4).
        {"always-taken", "static-1992", false,
         makeHeuristic<Heuristic::kAlwaysTaken>},
        {"always-not-taken", "static-1992", false,
         makeHeuristic<Heuristic::kAlwaysNotTaken>},
        {"btfnt", "static-1992", false,
         makeHeuristic<Heuristic::kBackwardTaken>},
        {"opcode-rules", "static-1992", false,
         makeHeuristic<Heuristic::kOpcodeRules>},
        {"profile-self", "static-1992", false, makeProfileSelf},
        // One-level counter schemes [Smith 81] / [Lee and Smith 84].
        {"last-direction", "one-level", true, makeLastDirection},
        {"two-bit-ideal", "one-level", true, makeTwoBitIdeal},
        {"bimodal-1k", "one-level", true, makeBimodal<10>},
        {"bimodal-4k", "one-level", true, makeBimodal<12>},
        // Two-level / global-history schemes [Yeh and Patt 92],
        // [McFarling 93].
        {"gshare-4k", "two-level", true, makeGShare<12, 12>},
        {"gshare-64k", "two-level", true, makeGShare<16, 14>},
        {"gselect-16k", "two-level", true, makeGSelect<14, 6>},
        // Long-history learners [Jimenez and Lin 01], [Seznec and
        // Michaud 06].
        {"perceptron-h16", "neural", true, makePerceptron},
        {"tage-4x1k", "tage", true, makeTage},
    };
    return zoo;
}

const ZooSpec &
zooSpec(const std::string &name)
{
    for (const ZooSpec &spec : defaultZoo())
        if (spec.name == name)
            return spec;
    throw Error("unknown zoo predictor: " + name);
}

} // namespace ifprob::predict::zoo

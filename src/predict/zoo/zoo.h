#ifndef IFPROB_PREDICT_ZOO_ZOO_H
#define IFPROB_PREDICT_ZOO_ZOO_H

#include <memory>
#include <string>
#include <vector>

#include "isa/program.h"
#include "predict/dynamic_predictor.h"
#include "vm/run_stats.h"

namespace ifprob::predict::zoo {

/**
 * The predictor zoo (docs/predictors.md): one registry naming every
 * scheme the tournament runs — the paper's 1992 static predictors, the
 * Smith/Lee-and-Smith counter schemes the paper benchmarked against,
 * and the lineage that came after (two-level, gshare, perceptron,
 * TAGE) — all as DynamicPredictor observers so a single fan-out replay
 * scores the whole family per (workload, dataset) trace.
 */

/** What a predictor factory may look at. Everything is derived from
 *  the cell's own recorded trace: static predictors lower against the
 *  program, "profile-self" trains on the trace's embedded RunStats. */
struct ZooContext
{
    const isa::Program &program;
    /** The cell's own recorded run counters (trace.stats). */
    const vm::RunStats &self_profile;
    /** Image fingerprint of the recorded run (profile identity). */
    uint64_t fingerprint = 0;
    /** Workload name (profile identity). */
    std::string workload;
};

/** One zoo member: a stable name (table/JSON key), a taxonomy family
 *  (docs/predictors.md), and a factory building a fresh instance for
 *  one cell. Factories are stateless function pointers so a ZooSpec
 *  can be copied freely across pool workers. */
struct ZooSpec
{
    std::string name;
    std::string family;
    /** True for schemes that learn during the run (hardware-style). */
    bool dynamic = false;
    std::unique_ptr<DynamicPredictor> (*make)(const ZooContext &context);
};

/** The default tournament roster, in taxonomy order (statics first,
 *  then counter schemes, then history-based). Order is stable: tables
 *  and JSON records index into it. */
const std::vector<ZooSpec> &defaultZoo();

/** Look up one member by name; throws ifprob::Error when missing. */
const ZooSpec &zooSpec(const std::string &name);

} // namespace ifprob::predict::zoo

#endif // IFPROB_PREDICT_ZOO_ZOO_H
